//===- examples/estimate_parameters.cpp - PE with FST-PSO -----------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// Parameter estimation: hide some kinetic constants of a model, generate
// a target dynamics with the true values, then recover them with the
// fuzzy self-tuning PSO whose swarm is evaluated through the batched
// engine -- each optimizer iteration is one GPU batch. This is the shape
// of the metabolic case study's 78-parameter PE; here a 6-parameter
// Lotka-Volterra-style fit keeps the example interactive.
//
//===----------------------------------------------------------------------===//

#include "analysis/Fitness.h"
#include "rbm/CuratedModels.h"

#include <cstdio>

using namespace psg;

int main() {
  // The "unknown" model: a decay chain whose middle rate constants are to
  // be estimated.
  ReactionNetwork Net = makeDecayChainNetwork(/*Length=*/7,
                                              /*RateSpread=*/1.5);
  const std::vector<size_t> Unknown = {1, 2, 3, 4};
  std::printf("estimating %zu of %zu rate constants of '%s'\n",
              Unknown.size(), Net.numReactions(), Net.name().c_str());

  EngineOptions Opts;
  Opts.SimulatorName = "psg-engine";
  Opts.EndTime = 8.0;
  Opts.OutputSamples = 33;
  BatchEngine Engine(CostModel::paperSetup(), Opts);

  // Target dynamics from the true parameterization.
  Parameterization Truth;
  Truth.InitialState = Net.initialState();
  for (size_t R = 0; R < Net.numReactions(); ++R)
    Truth.RateConstants.push_back(Net.reaction(R).RateConstant);
  EngineReport TargetRun = Engine.runParameterizations(Net, {Truth});
  Trajectory Target = TargetRun.Outcomes[0].Dynamics;

  // Parameter space: one log axis per unknown constant.
  ParameterSpace Space(Net);
  std::vector<std::pair<double, double>> Bounds;
  for (size_t R : Unknown) {
    ParameterAxis Axis;
    Axis.Name = "k" + std::to_string(R);
    Axis.Target = AxisTarget::RateConstant;
    Axis.Reactions = {R};
    Axis.Lo = 1e-2;
    Axis.Hi = 1e2;
    Axis.LogScale = true;
    Space.addAxis(Axis);
    // PSO searches log10-space directly for better conditioning.
    Bounds.emplace_back(-2.0, 2.0);
  }

  // Observe every species of the chain.
  std::vector<size_t> Observed;
  for (size_t SpeciesIdx = 0; SpeciesIdx < Net.numSpecies(); ++SpeciesIdx)
    Observed.push_back(SpeciesIdx);

  // PSO positions are log10(k); map them onto the axis values before
  // handing the swarm to the engine.
  BatchObjective EngineFit = makeTrajectoryFitObjective(
      Engine, Space, Target, Observed);
  BatchObjective Objective =
      [&EngineFit](const std::vector<std::vector<double>> &LogPositions) {
        std::vector<std::vector<double>> Points(LogPositions.size());
        for (size_t P = 0; P < LogPositions.size(); ++P) {
          Points[P].reserve(LogPositions[P].size());
          for (double L : LogPositions[P])
            Points[P].push_back(std::pow(10.0, L));
        }
        return EngineFit(Points);
      };

  PsoOptions Pso;
  Pso.SwarmSize = 24;
  Pso.Iterations = 30;
  Pso.FuzzySelfTuning = true;
  PsoResult Fit = runPso(Bounds, Objective, Pso);

  std::printf("\nconverged to fitness %.3e after %zu evaluations\n",
              Fit.BestFitness, Fit.Evaluations);
  std::printf("%-6s %12s %12s %9s\n", "param", "true", "estimated",
              "rel.err");
  for (size_t I = 0; I < Unknown.size(); ++I) {
    const double True = Net.reaction(Unknown[I]).RateConstant;
    const double Est = std::pow(10.0, Fit.BestPosition[I]);
    std::printf("%-6s %12.5f %12.5f %8.2f%%\n",
                ("k" + std::to_string(Unknown[I])).c_str(), True, Est,
                100.0 * std::abs(Est - True) / True);
  }
  std::printf("\nconvergence: ");
  for (size_t I = 0; I < Fit.ConvergenceHistory.size(); I += 5)
    std::printf("%.2e ", Fit.ConvergenceHistory[I]);
  std::printf("\n");
  return 0;
}
