//===- examples/psa_oscillator.cpp - PSA-2D of the autophagy switch -------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// Two-dimensional parameter sweep of the autophagy/translation-switch
// surrogate: the stress input (AMPK*-analogue initial amount) against the
// inhibition strength (P9-analogue scaling of the cross-inhibition
// constants). Prints an ASCII amplitude map of the EIF4EBP-analogue
// reporter -- the dark region is the non-oscillating regime -- and the
// modeled throughput against the CPU baseline.
//
// A scaled-down surrogate (8 oscillator units) keeps this example quick;
// bench_psa2d runs the paper-sized version of the experiment.
//
//===----------------------------------------------------------------------===//

#include "analysis/Psa.h"
#include "io/ResultsIo.h"
#include "rbm/CuratedModels.h"

#include <cstdio>

using namespace psg;

int main() {
  AutophagySurrogate Model = makeAutophagySurrogate(/*Units=*/8,
                                                    /*ChainLength=*/4);
  std::printf("autophagy surrogate: %zu species, %zu reactions, "
              "%zu P9-scaled constants\n",
              Model.Net.numSpecies(), Model.Net.numReactions(),
              Model.P9Reactions.size());

  // The two sweep axes of the case study.
  ParameterSpace Space(Model.Net);
  ParameterAxis Stress;
  Stress.Name = "AMPK*";
  Stress.Target = AxisTarget::InitialConcentration;
  Stress.SpeciesIndex = Model.StressSpecies;
  Stress.Lo = 0.2;
  Stress.Hi = 2.5;
  Space.addAxis(Stress);
  ParameterAxis P9;
  P9.Name = "P9";
  P9.Target = AxisTarget::RateConstantGroup;
  P9.Reactions = Model.P9Reactions;
  P9.Lo = 1e-6;
  P9.Hi = 3e-2;
  P9.LogScale = true;
  Space.addAxis(P9);

  EngineOptions Opts;
  Opts.SimulatorName = "psg-engine";
  Opts.EndTime = 80.0;
  Opts.OutputSamples = 161;
  BatchEngine Engine(CostModel::paperSetup(), Opts);

  const size_t Res = 12;
  Psa2dResult Map = runPsa2d(Engine, Space, Res, Res,
                             oscillationAmplitudeReducer(
                                 Model.ReporterEif4ebp));

  // ASCII map: rows = stress, columns = P9 (log scale).
  double MaxAmp = 0.0;
  for (double A : Map.Metric)
    MaxAmp = std::max(MaxAmp, A);
  const char *Shades = " .:-=+*#%@";
  std::printf("\nEIF4EBP oscillation amplitude "
              "(rows: AMPK* %.2f..%.2f; cols: P9 %.0e..%.0e log)\n\n",
              Stress.Lo, Stress.Hi, P9.Lo, P9.Hi);
  for (size_t I0 = 0; I0 < Res; ++I0) {
    std::printf("  %6.2f |", Map.Axis0Values[I0]);
    for (size_t I1 = 0; I1 < Res; ++I1) {
      const double Norm = MaxAmp > 0 ? Map.at(I0, I1) / MaxAmp : 0.0;
      const int Shade = static_cast<int>(Norm * 9.0);
      std::printf("%c", Shades[Shade]);
    }
    std::printf("|\n");
  }

  std::printf("\nengine: %zu simulations, %zu failures, modeled %.3f s, "
              "modeled throughput %.0f sims/hour\n",
              Map.Report.Simulations, Map.Report.Failures,
              Map.Report.SimulationTime.total(),
              Map.Report.modeledThroughputPerHour());

  CsvWriter Csv = psa2dToCsv(Map, "ampk_star", "p9", "amplitude");
  if (Csv.saveToFile("psa2d_amplitude.csv"))
    std::printf("wrote psa2d_amplitude.csv (%zu rows)\n", Csv.numRows());
  return 0;
}
