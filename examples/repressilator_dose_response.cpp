//===- examples/repressilator_dose_response.cpp - Hill kinetics tour ------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// Tour of the saturating-kinetics extension: the protein-only
// repressilator (Hill-repression rate laws) swept through its Hopf
// bifurcation, followed by a dose-response curve computed with the
// steady-state search. Shows that the same model file drives both an
// oscillation analysis and a steady-state analysis.
//
//===----------------------------------------------------------------------===//

#include "analysis/Oscillation.h"
#include "analysis/Psa.h"
#include "analysis/SteadyState.h"
#include "rbm/CuratedModels.h"
#include "rbm/ModelIo.h"

#include <cmath>
#include <cstdio>

using namespace psg;

int main() {
  // 1. Sweep the production strength alpha through the Hopf point: the
  //    ring is quiescent for weak production and oscillates beyond it.
  std::printf("repressilator: oscillation amplitude vs production "
              "strength alpha\n\n");
  std::printf("%10s %12s %10s\n", "alpha", "amplitude", "period");
  double HopfAlpha = -1.0;
  for (double Alpha : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0}) {
    ReactionNetwork Net = makeRepressilatorNetwork(Alpha);
    EngineOptions Opts;
    Opts.SimulatorName = "psg-engine";
    Opts.EndTime = 120.0;
    Opts.OutputSamples = 601;
    BatchEngine Engine(CostModel::paperSetup(), Opts);
    Parameterization P;
    P.InitialState = Net.initialState();
    for (size_t R = 0; R < Net.numReactions(); ++R)
      P.RateConstants.push_back(Net.reaction(R).RateConstant);
    EngineReport Report = Engine.runParameterizations(Net, {P});
    OscillationMetrics M =
        analyzeOscillation(Report.Outcomes[0].Dynamics, 0);
    std::printf("%10.1f %12.4f %10.2f\n", Alpha, M.Amplitude,
                M.Oscillating ? M.Period : 0.0);
    if (M.Oscillating && HopfAlpha < 0)
      HopfAlpha = Alpha;
  }
  std::printf("\nfirst oscillating alpha in the sweep: %.1f\n\n",
              HopfAlpha);

  // 2. Below the bifurcation the ring has a steady state; compute the
  //    dose-response of P0's steady level against alpha.
  ReactionNetwork Net = makeRepressilatorNetwork(/*Alpha=*/2.0);
  ParameterSpace Space(Net);
  ParameterAxis Axis;
  Axis.Name = "alpha";
  Axis.Target = AxisTarget::RateConstantGroup;
  Axis.Reactions = {0, 2, 4}; // The three production reactions.
  Axis.Lo = 0.2;
  Axis.Hi = 2.5;
  Space.addAxis(Axis);
  SteadyStateOptions SsOpts;
  SsOpts.MaxTime = 2000.0;
  DoseResponse Curve =
      computeDoseResponse(Space, 10, *Net.findSpecies("P0"), SsOpts);
  std::printf("steady-state dose-response (P0 level vs alpha):\n\n");
  std::printf("%10s %14s\n", "alpha", "steady P0");
  for (size_t I = 0; I < Curve.Dose.size(); ++I) {
    if (std::isnan(Curve.Response[I]))
      std::printf("%10.3f %14s\n", Curve.Dose[I], "(no steady state)");
    else
      std::printf("%10.3f %14.6f\n", Curve.Dose[I], Curve.Response[I]);
  }
  std::printf("\n(%zu of %zu doses did not converge)\n", Curve.Unconverged,
              Curve.Dose.size());
  return 0;
}
