//===- examples/sensitivity_isoforms.cpp - Sobol SA of isoforms -----------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// Sobol sensitivity analysis of the metabolic-pathway surrogate: vary the
// initial concentrations of the 11 hexokinase-isoform species and measure
// the effect on the R5P reporter at the end of a 10-hour window, printing
// the first- and total-order indices with 95% confidence intervals (the
// shape of the paper's Table 1). bench_sobol_sa runs the full 512-base-
// point design; this example uses a smaller one to stay interactive.
//
//===----------------------------------------------------------------------===//

#include "analysis/Sobol.h"
#include "io/ResultsIo.h"
#include "rbm/CuratedModels.h"

#include <cstdio>

using namespace psg;

int main() {
  MetabolicSurrogate Model = makeMetabolicSurrogate();
  std::printf("metabolic surrogate: %zu species, %zu reactions; "
              "analyzing %zu isoform species -> R5P\n",
              Model.Net.numSpecies(), Model.Net.numReactions(),
              Model.IsoformSpecies.size());

  ParameterSpace Space(Model.Net);
  for (unsigned SpeciesIdx : Model.IsoformSpecies) {
    ParameterAxis Axis;
    Axis.Name = Model.Net.species(SpeciesIdx).Name;
    Axis.Target = AxisTarget::InitialConcentration;
    Axis.SpeciesIndex = SpeciesIdx;
    Axis.Lo = 0.0;
    Axis.Hi = 1e-2;
    Space.addAxis(Axis);
  }

  EngineOptions Opts;
  Opts.SimulatorName = "psg-engine";
  Opts.EndTime = 10.0;
  Opts.OutputSamples = 2; // Endpoints are enough for a final-value output.
  BatchEngine Engine(CostModel::paperSetup(), Opts);

  // Output: deviation of the final R5P level from the unperturbed
  // reference, as in the case study.
  EngineReport RefRun = Engine.runParameterizations(
      Model.Net, {Parameterization{
                     [&] {
                       std::vector<double> K;
                       for (size_t R = 0; R < Model.Net.numReactions(); ++R)
                         K.push_back(Model.Net.reaction(R).RateConstant);
                       return K;
                     }(),
                     Model.Net.initialState()}});
  const double Reference =
      finalValueReducer(Model.ReporterR5P)(RefRun.Outcomes[0]);
  std::printf("reference R5P(10h) = %.6f\n", Reference);

  TrajectoryReducer Deviation =
      [Reporter = Model.ReporterR5P,
       Reference](const SimulationOutcome &O) {
        const double Final = finalValueReducer(Reporter)(O);
        return Final - Reference;
      };

  SobolOptions SaOpts;
  SaOpts.BaseSamples = 96; // Interactive scale; the bench uses 512.
  SaOpts.BootstrapRounds = 100;
  SobolResult Sa = runSobolSa(Engine, Space, Deviation, SaOpts);

  std::printf("\n%zu simulations; output variance %.3e\n\n",
              Sa.TotalSimulations, Sa.OutputVariance);
  std::printf("%-16s %8s %8s %8s %8s\n", "species", "S1", "S1conf", "ST",
              "STconf");
  for (const SobolIndex &Index : Sa.Indices)
    std::printf("%-16s %8.3f %8.3f %8.3f %8.3f\n", Index.Factor.c_str(),
                Index.S1, Index.S1Conf, Index.ST, Index.STConf);

  CsvWriter Csv = sobolToCsv(Sa);
  if (Csv.saveToFile("sobol_isoforms.csv"))
    std::printf("\nwrote sobol_isoforms.csv\n");
  return 0;
}
