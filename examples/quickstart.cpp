//===- examples/quickstart.cpp - psg in five minutes ----------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// Quickstart: define a reaction-based model, simulate a batch of
// perturbed parameterizations through the fine+coarse engine, and look at
// the results. Run from the build directory:
//
//   ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/BatchEngine.h"
#include "io/ResultsIo.h"
#include "rbm/CuratedModels.h"
#include "rbm/ModelIo.h"
#include "rbm/SyntheticGenerator.h"

#include <cstdio>

using namespace psg;

int main() {
  // 1. A model: the Brusselator limit-cycle oscillator, as a mass-action
  //    reaction network. (parseModelText / loadModelFile read the same
  //    thing from the BioSimWare-style text format.)
  ReactionNetwork Net = makeBrusselatorNetwork();
  std::printf("model '%s': %zu species, %zu reactions\n",
              Net.name().c_str(), Net.numSpecies(), Net.numReactions());
  std::printf("--- serialized form ---\n%s-----------------------\n",
              writeModelText(Net).c_str());

  // 2. A batch: 64 copies with +/-25%% log-uniform kinetic perturbations.
  Rng Generator(2024);
  std::vector<Parameterization> Batch;
  for (int I = 0; I < 64; ++I) {
    Parameterization P;
    P.InitialState = Net.initialState();
    for (size_t R = 0; R < Net.numReactions(); ++R)
      P.RateConstants.push_back(Net.reaction(R).RateConstant);
    perturbRateConstants(P.RateConstants, Generator);
    Batch.push_back(std::move(P));
  }

  // 3. The engine: fine+coarse strategy on the modeled Titan X, sampling
  //    every trajectory at 101 points over [0, 40].
  EngineOptions Opts;
  Opts.SimulatorName = "psg-engine";
  Opts.EndTime = 40.0;
  Opts.OutputSamples = 101;
  BatchEngine Engine(CostModel::paperSetup(), Opts);
  EngineReport Report = Engine.runParameterizations(Net, std::move(Batch));

  std::printf("ran %zu simulations (%zu failures)\n",
              Report.Outcomes.size(), Report.Failures);
  std::printf("operation counts: %llu steps, %llu rhs evaluations\n",
              (unsigned long long)Report.TotalStats.Steps,
              (unsigned long long)Report.TotalStats.RhsEvaluations);
  std::printf("modeled GPU time: %.3f ms integration, %.3f ms simulation\n",
              1e3 * Report.IntegrationTime.total(),
              1e3 * Report.SimulationTime.total());
  std::printf("host wall time:   %.3f ms (virtual device, %s)\n",
              1e3 * Report.HostWallSeconds, "real numerics");

  // 4. Results: print the first trajectory's X column, and save the full
  //    CSV next to the binary.
  const Trajectory &T = Report.Outcomes[0].Dynamics;
  const unsigned X = *Net.findSpecies("X");
  std::printf("\nfirst simulation, species X (every 10th sample):\n");
  for (size_t S = 0; S < T.numSamples(); S += 10)
    std::printf("  t=%6.2f  X=%8.5f\n", T.time(S), T.value(S, X));

  CsvWriter Csv = trajectoryToCsv(T, &Net);
  if (Status S = Csv.saveToFile("quickstart_trajectory.csv"); !S)
    std::printf("could not save CSV: %s\n", S.message().c_str());
  else
    std::printf("\nwrote quickstart_trajectory.csv (%zu rows)\n",
                Csv.numRows());
  return 0;
}
