//===- bench/bench_sobol_sa.cpp - Experiment T2 ---------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// T2: the Sobol sensitivity analysis of the metabolic surrogate -- the
// 11 hexokinase-isoform states against the R5P reporter, printing the
// Table-1-style table of first-/total-order indices with 95% confidence
// intervals, plus the running-time comparison of the engine against the
// CPU LSODA baseline on the same design (paper-line shape: ~8 minutes vs
// 103-of-12288 simulations, i.e. ~119x).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "analysis/Sobol.h"
#include "io/ResultsIo.h"
#include "rbm/CuratedModels.h"

using namespace psg;
using namespace psg::bench;

int main(int Argc, char **Argv) {
  const bool Full = Argc > 1 && std::string(Argv[1]) == "--full";
  MetabolicSurrogate Model = makeMetabolicSurrogate();
  std::printf("== T2: Sobol SA of the metabolic surrogate ==\n");
  std::printf("model: %zu species, %zu reactions; 11 isoform factors -> "
              "R5P deviation at 10 h\n\n",
              Model.Net.numSpecies(), Model.Net.numReactions());

  ParameterSpace Space(Model.Net);
  for (unsigned SpeciesIdx : Model.IsoformSpecies) {
    ParameterAxis Axis;
    Axis.Name = Model.Net.species(SpeciesIdx).Name;
    Axis.Target = AxisTarget::InitialConcentration;
    Axis.SpeciesIndex = SpeciesIdx;
    Axis.Lo = 0.0;
    Axis.Hi = 1e-2;
    Space.addAxis(Axis);
  }

  EngineOptions Opts;
  Opts.SimulatorName = "psg-engine";
  Opts.EndTime = 10.0;
  Opts.OutputSamples = 2;
  BatchEngine Engine(CostModel::paperSetup(), Opts);

  // Reference run for the deviation output.
  Parameterization Base;
  Base.InitialState = Model.Net.initialState();
  for (size_t R = 0; R < Model.Net.numReactions(); ++R)
    Base.RateConstants.push_back(Model.Net.reaction(R).RateConstant);
  EngineReport BaseRun = Engine.runParameterizations(Model.Net, {Base});
  const double Reference =
      finalValueReducer(Model.ReporterR5P)(BaseRun.Outcomes[0]);
  TrajectoryReducer Deviation =
      [Reporter = Model.ReporterR5P, Reference](const SimulationOutcome &O) {
        return finalValueReducer(Reporter)(O) - Reference;
      };

  SobolOptions SaOpts;
  SaOpts.BaseSamples = Full ? 512 : 128;
  SaOpts.BootstrapRounds = 100;
  SobolResult Sa = runSobolSa(Engine, Space, Deviation, SaOpts);

  std::printf("design: %zu base points x (11 + 2) blocks = %zu "
              "simulations%s\n",
              SaOpts.BaseSamples, Sa.TotalSimulations,
              Full ? " (paper-scale base)" : " (reduced; --full for 512)");
  std::printf("failures: %zu; output variance %.4e\n\n",
              Sa.Report.Failures, Sa.OutputVariance);

  std::printf("%-16s %8s %8s %8s %8s\n", "species", "S1", "S1conf", "ST",
              "STconf");
  for (const SobolIndex &Index : Sa.Indices)
    std::printf("%-16s %8.3f %8.3f %8.3f %8.3f\n", Index.Factor.c_str(),
                Index.S1, Index.S1Conf, Index.ST, Index.STConf);

  // Timing comparison on a profiling slice of the same design.
  std::printf("\nmodeled analysis time:\n");
  CsvWriter Timing({"simulator", "modeled_seconds_full_design"});
  double EngineSeconds = 0;
  for (const char *Name : {"psg-engine", "cpu-lsoda"}) {
    EngineOptions ProfOpts = Opts;
    ProfOpts.SimulatorName = Name;
    BatchEngine Prof(CostModel::paperSetup(), ProfOpts);
    Rng SampleRng(3);
    EngineReport Slice = Prof.run(Space, Space.randomSample(64, SampleRng));
    const double PerSim = Slice.SimulationTime.total() / 64.0;
    const double FullDesign =
        PerSim * static_cast<double>(Sa.TotalSimulations);
    if (std::string(Name) == "psg-engine")
      EngineSeconds = FullDesign;
    std::printf("  %-12s %10.2f s (%.3g s/sim)\n", Name, FullDesign,
                PerSim);
    Timing.addRow({Name, formatString("%.4f", FullDesign)});
    if (std::string(Name) == "cpu-lsoda" && EngineSeconds > 0)
      std::printf("  engine speedup on the SA task: %.0fx (paper-line "
                  "~119x)\n",
                  FullDesign / EngineSeconds);
  }
  std::printf("\n");
  saveCsv(sobolToCsv(Sa), "t2_sobol_indices.csv");
  saveCsv(Timing, "t2_sobol_timing.csv");
  return 0;
}
