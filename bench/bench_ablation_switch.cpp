//===- bench/bench_ablation_switch.cpp - Ablation A1 ----------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// A1: the engine's P2 routing heuristic (dominant-eigenvalue threshold
// 500 choosing DOPRI5 vs Radau IIA) against forcing either method for
// every simulation, on a mixed batch of stiff and non-stiff models.
// The auto router should approach the cheaper method on each class and
// avoid the failures/step-explosions of the mismatched choice.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "rbm/CuratedModels.h"
#include "sim/Simulators.h"

using namespace psg;
using namespace psg::bench;

int main() {
  CostModel Model = CostModel::paperSetup();
  std::printf("== A1: solver-routing ablation (auto vs forced) ==\n\n");

  struct Case {
    const char *Label;
    ReactionNetwork Net;
    double EndTime;
  };
  std::vector<Case> Cases;
  Cases.push_back({"non-stiff (lotka-volterra)",
                   makeLotkaVolterraNetwork(), 10.0});
  Cases.push_back({"stiff (robertson)", makeRobertsonNetwork(), 40.0});
  Cases.push_back({"stiff chain (decay 6 decades)",
                   makeDecayChainNetwork(12, 6.0), 5.0});

  CsvWriter Csv({"workload", "mode", "modeled_integration_s", "failures",
                 "steps", "switches"});
  std::printf("%-30s %-8s %20s %9s %8s %9s\n", "workload", "mode",
              "modeled int. time", "failures", "steps", "switches");
  for (Case &C : Cases) {
    for (const char *Mode : {"auto", "dopri5", "radau5"}) {
      FineCoarseSimulator Sim(Model);
      Sim.ForcedMethod = Mode;
      BatchSpec Spec;
      Spec.Model = &C.Net;
      Spec.Batch = 16;
      Spec.EndTime = C.EndTime;
      Spec.Options.MaxSteps = 200000;
      Rng Generator(7);
      for (int I = 0; I < 16; ++I) {
        std::vector<double> K;
        for (size_t R = 0; R < C.Net.numReactions(); ++R)
          K.push_back(C.Net.reaction(R).RateConstant);
        perturbRateConstants(K, Generator);
        Spec.RateConstantSets.push_back(std::move(K));
      }
      BatchResult Result = Sim.run(Spec);
      std::printf("%-30s %-8s %18.4gs %9zu %8llu %9llu\n", C.Label, Mode,
                  Result.IntegrationTime.total(), Result.Failures,
                  (unsigned long long)Result.TotalStats.Steps,
                  (unsigned long long)Result.TotalStats.SolverSwitches);
      Csv.addRow({C.Label, Mode,
                  formatString("%.6g", Result.IntegrationTime.total()),
                  formatString("%zu", Result.Failures),
                  formatString("%llu",
                               (unsigned long long)Result.TotalStats.Steps),
                  formatString(
                      "%llu",
                      (unsigned long long)Result.TotalStats.SolverSwitches)});
    }
    std::printf("\n");
  }
  saveCsv(Csv, "a1_ablation_switch.csv");
  return 0;
}
