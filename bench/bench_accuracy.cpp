//===- bench/bench_accuracy.cpp - Experiment T4 ---------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// T4: solver accuracy on the stiff/non-stiff reference problems at the
// evaluation tolerances (abs 1e-12, rel 1e-6), reporting the relative
// end-state error against the literature reference together with the
// operation counts -- the "similar and often higher precision" claim of
// the paper line, quantified.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "ode/SolverRegistry.h"
#include "ode/TestProblems.h"

#include <cmath>

using namespace psg;
using namespace psg::bench;

int main() {
  std::printf("== T4: solver accuracy on reference problems ==\n");
  std::printf("(tolerances: abs 1e-12, rel 1e-6; error = max scaled "
              "relative end-state error)\n\n");
  std::printf("%-10s %-14s %-20s %10s %8s %9s\n", "solver", "problem",
              "status", "error", "steps", "rhs");

  CsvWriter Csv({"solver", "problem", "status", "max_rel_error", "steps",
                 "rhs_evaluations"});
  for (const std::string &Name :
       {std::string("dopri5"), std::string("rkf45"), std::string("radau5"),
        std::string("adams"), std::string("bdf"), std::string("lsoda"),
        std::string("vode")}) {
    auto Solver = createSolver(Name);
    for (const TestProblem &P : allTestProblems()) {
      if (P.Reference.empty())
        continue;
      // Explicit-only methods skip the heavily stiff problems.
      const bool Explicit =
          Name == "dopri5" || Name == "rkf45" || Name == "adams";
      if (P.Stiff && Explicit && P.System->name() != "linear-stiff")
        continue;
      SolverOptions Opts;
      Opts.MaxSteps = 500000;
      Opts.EnableStiffnessDetection = false;
      std::vector<double> Y = P.InitialState;
      IntegrationResult R =
          (*Solver)->integrate(*P.System, P.StartTime, P.EndTime, Y, Opts);
      double Scale = 1e-10;
      for (double W : P.Reference)
        Scale = std::max(Scale, std::abs(W));
      double Err = 0;
      for (size_t I = 0; I < Y.size(); ++I)
        Err = std::max(Err, std::abs(Y[I] - P.Reference[I]) /
                                std::max(std::abs(P.Reference[I]),
                                         1e-3 * Scale));
      std::printf("%-10s %-14s %-20s %10.2e %8llu %9llu\n", Name.c_str(),
                  P.System->name().c_str(),
                  integrationStatusName(R.Status), Err,
                  (unsigned long long)R.Stats.AcceptedSteps,
                  (unsigned long long)R.Stats.RhsEvaluations);
      Csv.addRow({Name, P.System->name(),
                  integrationStatusName(R.Status),
                  formatString("%.3e", Err),
                  formatString("%llu",
                               (unsigned long long)R.Stats.AcceptedSteps),
                  formatString("%llu",
                               (unsigned long long)R.Stats.RhsEvaluations)});
    }
  }
  std::printf("\n");
  saveCsv(Csv, "t4_accuracy.csv");
  return 0;
}
