//===- bench/bench_micro_rhs.cpp ------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Kind-partitioned kinetics kernel microbenchmark. Measures, per model,
/// raw rhs and analytic-Jacobian evaluation throughput of the partitioned
/// kernels (contiguous per-class runs, sparsity-patterned Jacobian fill)
/// against the reference kernels (per-reaction kind branching, dense
/// Jacobian resize per call), plus the end-to-end stiff simulation rate
/// of the coarse-grained personality with the partitioned kernels and
/// convergence-driven Jacobian reuse versus the reference kernels with
/// the historical fixed 25-step refresh.
///
/// Hill-heavy models (repressilator, saturating-toy) are flagged in the
/// output: they are where the partition pays most, since every Hill rate
/// in a run shares one branch-free loop over positional parameter arrays.
///
/// Output: a psg-bench-rhs-v1 JSON document (default BENCH_rhs.json) with
/// the measured cases, kernel-vs-reference speedups, and the Jacobian
/// economy counters. `--baseline FILE` embeds a previously saved run
/// object verbatim so the committed file carries before/after numbers.
///
//===----------------------------------------------------------------------===//

#include "rbm/CuratedModels.h"
#include "rbm/MassAction.h"
#include "rbm/SyntheticGenerator.h"
#include "sim/Simulators.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "vgpu/CostModel.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace psg;

namespace {

struct CaseResult {
  std::string ModelName;
  std::string Op;      ///< "rhs", "jacobian", or "stiff".
  std::string Variant; ///< "kernels" or "reference".
  bool HillHeavy = false;
  size_t Species = 0;
  size_t Reactions = 0;
  uint64_t Work = 0; ///< Evaluations (rhs/jacobian) or batch size (stiff).
  double BestWallSeconds = 0.0;
  double MeanWallSeconds = 0.0;
  double Throughput = 0.0; ///< evals/s or sims/s.
  size_t Failures = 0;
};

struct BenchModel {
  ReactionNetwork Net;
  std::string Name;
  bool HillHeavy;
  double StiffEndTime; ///< <= 0 disables the end-to-end stiff case.
};

/// A pool of states around the initial concentrations, cycled through the
/// evaluation loops so throughput is not measured on one lucky cache line
/// of a single state vector.
std::vector<std::vector<double>> makeStates(const ReactionNetwork &Net,
                                            size_t Count) {
  std::vector<std::vector<double>> States;
  Rng Generator(7);
  const std::vector<double> Y0 = Net.initialState();
  for (size_t I = 0; I < Count; ++I) {
    States.push_back(Y0);
    for (double &V : States.back())
      V *= 0.5 + Generator.uniform();
  }
  return States;
}

double checksumSink = 0.0; ///< Defeats dead-code elimination of the loops.

CaseResult measureRhs(const BenchModel &BM, bool Reference, uint64_t Evals,
                      unsigned Reps) {
  CompiledOdeSystem Sys(BM.Net);
  const size_t N = Sys.dimension();
  const auto States = makeStates(BM.Net, 16);
  std::vector<double> DyDt(N);

  CaseResult R;
  R.ModelName = BM.Name;
  R.Op = "rhs";
  R.Variant = Reference ? "reference" : "kernels";
  R.HillHeavy = BM.HillHeavy;
  R.Species = BM.Net.numSpecies();
  R.Reactions = BM.Net.numReactions();
  R.Work = Evals;
  double Best = 0.0, Sum = 0.0;
  for (unsigned Rep = 0; Rep <= Reps; ++Rep) {
    WallTimer Timer;
    for (uint64_t E = 0; E < Evals; ++E) {
      const std::vector<double> &Y = States[E % States.size()];
      if (Reference)
        Sys.rhsReference(0.0, Y.data(), DyDt.data());
      else
        Sys.rhs(0.0, Y.data(), DyDt.data());
      checksumSink += DyDt[0];
    }
    const double Wall = Timer.seconds();
    if (Rep == 0)
      continue; // Warmup rep: caches, page faults.
    Sum += Wall;
    if (Rep == 1 || Wall < Best)
      Best = Wall;
  }
  R.BestWallSeconds = Best;
  R.MeanWallSeconds = Sum / Reps;
  R.Throughput = Best > 0.0 ? static_cast<double>(Evals) / Best : 0.0;
  return R;
}

CaseResult measureJacobian(const BenchModel &BM, bool Reference,
                           uint64_t Evals, unsigned Reps) {
  CompiledOdeSystem Sys(BM.Net);
  const auto States = makeStates(BM.Net, 16);
  Matrix J;

  CaseResult R;
  R.ModelName = BM.Name;
  R.Op = "jacobian";
  R.Variant = Reference ? "reference" : "kernels";
  R.HillHeavy = BM.HillHeavy;
  R.Species = BM.Net.numSpecies();
  R.Reactions = BM.Net.numReactions();
  R.Work = Evals;
  double Best = 0.0, Sum = 0.0;
  for (unsigned Rep = 0; Rep <= Reps; ++Rep) {
    WallTimer Timer;
    for (uint64_t E = 0; E < Evals; ++E) {
      const std::vector<double> &Y = States[E % States.size()];
      if (Reference)
        Sys.analyticJacobianReference(0.0, Y.data(), J);
      else
        Sys.analyticJacobian(0.0, Y.data(), J);
      checksumSink += J(0, 0);
    }
    const double Wall = Timer.seconds();
    if (Rep == 0)
      continue;
    Sum += Wall;
    if (Rep == 1 || Wall < Best)
      Best = Wall;
  }
  R.BestWallSeconds = Best;
  R.MeanWallSeconds = Sum / Reps;
  R.Throughput = Best > 0.0 ? static_cast<double>(Evals) / Best : 0.0;
  return R;
}

/// End-to-end stiff batch through the coarse-grained personality. The
/// reference variant routes every evaluation through the pre-partition
/// kernels AND restores the fixed 25-step Jacobian refresh — together
/// they are the historical configuration this PR replaces.
CaseResult measureStiff(const BenchModel &BM, bool Reference, uint64_t Batch,
                        unsigned Reps) {
  CostModel M = CostModel::paperSetup();
  auto SimOr = createSimulator("gpu-coarse", M);
  if (!SimOr.ok()) {
    std::fprintf(stderr, "cannot create gpu-coarse: %s\n",
                 SimOr.message().c_str());
    std::exit(1);
  }
  Simulator &Sim = **SimOr;

  BatchSpec Spec;
  Spec.Model = &BM.Net;
  Spec.Batch = Batch;
  Spec.EndTime = BM.StiffEndTime;
  Spec.OutputSamples = 0;
  Spec.Options.RelTol = 1e-6;
  Spec.Options.AbsTol = 1e-9;
  Spec.Options.MaxSteps = 500000;
  Spec.Options.AdaptiveJacobianReuse = !Reference;

  std::vector<double> Defaults;
  for (size_t R = 0; R < BM.Net.numReactions(); ++R)
    Defaults.push_back(BM.Net.reaction(R).RateConstant);
  Rng Generator(42);
  Spec.RateConstantSets.resize(Batch);
  for (uint64_t I = 0; I < Batch; ++I) {
    Spec.RateConstantSets[I] = Defaults;
    for (double &K : Spec.RateConstantSets[I])
      K *= 0.9 + 0.2 * Generator.uniform();
  }

  CompiledOdeSystem::setUseReferenceKernelsForTesting(Reference);
  Sim.run(Spec); // Warmup.

  CaseResult R;
  R.ModelName = BM.Name;
  R.Op = "stiff";
  R.Variant = Reference ? "reference" : "kernels";
  R.HillHeavy = BM.HillHeavy;
  R.Species = BM.Net.numSpecies();
  R.Reactions = BM.Net.numReactions();
  R.Work = Batch;
  double Best = 0.0, Sum = 0.0;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    WallTimer Timer;
    BatchResult Result = Sim.run(Spec);
    const double Wall = Timer.seconds();
    Sum += Wall;
    if (Rep == 0 || Wall < Best)
      Best = Wall;
    R.Failures = Result.Failures;
  }
  CompiledOdeSystem::setUseReferenceKernelsForTesting(false);
  R.BestWallSeconds = Best;
  R.MeanWallSeconds = Sum / Reps;
  R.Throughput = Best > 0.0 ? static_cast<double>(Batch) / Best : 0.0;
  return R;
}

void printCase(const CaseResult &R) {
  std::printf("  %-16s %-8s %-9s %12.0f %s/s%s\n", R.ModelName.c_str(),
              R.Op.c_str(), R.Variant.c_str(), R.Throughput,
              R.Op == "stiff" ? "sims" : "evals",
              R.HillHeavy ? "  [hill-heavy]" : "");
}

void appendJsonCase(std::string &Out, const CaseResult &R, bool Last) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "      {\"model\": \"%s\", \"op\": \"%s\", \"variant\": \"%s\", "
      "\"hill_heavy\": %s, \"species\": %zu, \"reactions\": %zu, "
      "\"work\": %llu, \"best_wall_s\": %.6e, \"mean_wall_s\": %.6e, "
      "\"throughput\": %.1f, \"failures\": %zu}%s\n",
      R.ModelName.c_str(), R.Op.c_str(), R.Variant.c_str(),
      R.HillHeavy ? "true" : "false", R.Species, R.Reactions,
      (unsigned long long)R.Work, R.BestWallSeconds, R.MeanWallSeconds,
      R.Throughput, R.Failures, Last ? "" : ",");
  Out += Buf;
}

std::string runObjectJson(const std::string &Label,
                          const std::vector<CaseResult> &Results) {
  std::string Out;
  Out += "{\n    \"label\": \"" + Label + "\",\n";
  Out += "    \"cases\": [\n";
  for (size_t I = 0; I < Results.size(); ++I)
    appendJsonCase(Out, Results[I], I + 1 == Results.size());
  Out += "    ],\n";
  // Kernel/reference results alternate per (model, op); pair them up.
  Out += "    \"speedups\": [\n";
  std::string Rows;
  for (size_t I = 0; I + 1 < Results.size(); I += 2) {
    const CaseResult &Kernels = Results[I];
    const CaseResult &Reference = Results[I + 1];
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "      {\"model\": \"%s\", \"op\": \"%s\", "
                  "\"hill_heavy\": %s, \"speedup\": %.3f}%s\n",
                  Kernels.ModelName.c_str(), Kernels.Op.c_str(),
                  Kernels.HillHeavy ? "true" : "false",
                  Reference.Throughput > 0.0
                      ? Kernels.Throughput / Reference.Throughput
                      : 0.0,
                  I + 2 < Results.size() ? "," : "");
    Rows += Buf;
  }
  Out += Rows;
  Out += "    ]\n  }";
  return Out;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return "";
  std::ostringstream Ss;
  Ss << In.rdbuf();
  std::string S = Ss.str();
  while (!S.empty() && (S.back() == '\n' || S.back() == ' '))
    S.pop_back();
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = "BENCH_rhs.json";
  std::string BaselinePath;
  std::string Label = "current";
  bool CasesOnly = false;
  unsigned Reps = 5;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto next = [&]() -> std::string {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--json")
      JsonPath = next();
    else if (Arg == "--baseline")
      BaselinePath = next();
    else if (Arg == "--label")
      Label = next();
    else if (Arg == "--cases-only")
      CasesOnly = true;
    else if (Arg == "--reps")
      Reps = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--baseline PATH] [--label TEXT] "
                   "[--reps N] [--cases-only]\n",
                   Argv[0]);
      return 2;
    }
  }

  std::printf("== micro-rhs: kind-partitioned vs reference kernels ==\n");

  // The batch-sweep regime the partition targets: models whose reaction
  // lists interleave kinetics kinds in arbitrary order, so the reference
  // evaluation alternates between rate-law branches and strides through
  // the per-reaction parameter records, while the partitioned kernels run
  // one branch-free loop per class over contiguous positional arrays.
  RandomRbmOptions HillOpts;
  HillOpts.Seed = 23;
  HillOpts.HillFraction = 0.5;
  HillOpts.MichaelisMentenFraction = 0.3;
  HillOpts.MinSpecies = HillOpts.MaxSpecies = 16;
  HillOpts.MinReactions = HillOpts.MaxReactions = 64;

  RandomRbmOptions MixedOpts;
  MixedOpts.Seed = 11;
  MixedOpts.HillFraction = 0.25;
  MixedOpts.MichaelisMentenFraction = 0.25;
  MixedOpts.MinSpecies = MixedOpts.MaxSpecies = 12;
  MixedOpts.MinReactions = MixedOpts.MaxReactions = 24;
  MixedOpts.StiffnessSpread = 30.0; // Stiff: timescales span ~900x.

  std::vector<BenchModel> Models;
  Models.push_back({generateRandomRbm(HillOpts), "hill-rbm-16x64",
                    /*HillHeavy=*/true, /*StiffEndTime=*/-1.0});
  Models.push_back({makeRepressilatorNetwork(), "repressilator",
                    /*HillHeavy=*/true, /*StiffEndTime=*/20.0});
  Models.push_back({makeSaturatingToyNetwork(), "saturating-toy",
                    /*HillHeavy=*/true, /*StiffEndTime=*/-1.0});
  Models.push_back({makeDecayChainNetwork(12, 4.0), "decay-chain-12",
                    /*HillHeavy=*/false, /*StiffEndTime=*/-1.0});
  Models.push_back({makeRobertsonNetwork(), "robertson",
                    /*HillHeavy=*/false, /*StiffEndTime=*/100.0});
  Models.push_back({generateRandomRbm(MixedOpts), "stiff-rbm-12x24",
                    /*HillHeavy=*/false, /*StiffEndTime=*/5.0});

  metrics().reset();
  std::vector<CaseResult> Results;
  const uint64_t RhsEvals = 400000, JacEvals = 100000, StiffBatch = 64;
  for (const BenchModel &BM : Models) {
    // Kernels first, reference second: runObjectJson pairs them in order.
    Results.push_back(measureRhs(BM, /*Reference=*/false, RhsEvals, Reps));
    printCase(Results.back());
    Results.push_back(measureRhs(BM, /*Reference=*/true, RhsEvals, Reps));
    printCase(Results.back());
    Results.push_back(
        measureJacobian(BM, /*Reference=*/false, JacEvals, Reps));
    printCase(Results.back());
    Results.push_back(measureJacobian(BM, /*Reference=*/true, JacEvals, Reps));
    printCase(Results.back());
    if (BM.StiffEndTime > 0.0) {
      Results.push_back(
          measureStiff(BM, /*Reference=*/false, StiffBatch, Reps));
      printCase(Results.back());
      Results.push_back(
          measureStiff(BM, /*Reference=*/true, StiffBatch, Reps));
      printCase(Results.back());
    }
  }

  const MetricsSnapshot Snapshot = metrics().snapshot();
  const std::string RunJson = runObjectJson(Label, Results);

  std::string Doc;
  if (CasesOnly) {
    Doc = RunJson;
    Doc += "\n";
  } else {
    Doc += "{\n  \"schema\": \"psg-bench-rhs-v1\",\n";
    std::string Baseline = BaselinePath.empty() ? "" : slurp(BaselinePath);
    Doc += "  \"baseline\": ";
    Doc += Baseline.empty() ? "null" : Baseline;
    Doc += ",\n  \"current\": ";
    Doc += RunJson;
    char Buf[256];
    std::snprintf(
        Buf, sizeof(Buf),
        ",\n  \"counters\": {\"psg.ode.jacobian_reuses\": %llu, "
        "\"psg.ode.fd_jacobian_evals\": %llu}\n}\n",
        (unsigned long long)Snapshot.counterValue("psg.ode.jacobian_reuses"),
        (unsigned long long)Snapshot.counterValue(
            "psg.ode.fd_jacobian_evals"));
    Doc += Buf;
  }

  std::ofstream Out(JsonPath);
  Out << Doc;
  Out.close();
  std::printf("wrote %s (checksum %g)\n", JsonPath.c_str(), checksumSink);
  return 0;
}
