//===- bench/bench_micro_solvers.cpp - Experiment M1 ----------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// M1: google-benchmark microbenchmarks of the numerical kernels that the
// cost model prices: mass-action rhs evaluation, analytic Jacobian
// assembly, LU factorization/solve, and whole integrations with the two
// engine solvers, across model sizes.
//
//===----------------------------------------------------------------------===//

#include "linalg/Lu.h"
#include "ode/Dopri5.h"
#include "ode/Radau5.h"
#include "rbm/MassAction.h"
#include "rbm/SyntheticGenerator.h"
#include "support/Random.h"

#include <benchmark/benchmark.h>

using namespace psg;

namespace {
ReactionNetwork modelOfSize(size_t N) {
  SyntheticModelOptions Opts;
  Opts.NumSpecies = N;
  Opts.NumReactions = N;
  Opts.Seed = 42 + N;
  return generateSyntheticModel(Opts);
}

void BM_MassActionRhs(benchmark::State &State) {
  const size_t N = State.range(0);
  ReactionNetwork Net = modelOfSize(N);
  CompiledOdeSystem Sys(Net);
  std::vector<double> Y = Net.initialState(), D(N);
  for (auto _ : State) {
    Sys.rhs(0.0, Y.data(), D.data());
    benchmark::DoNotOptimize(D.data());
  }
  State.SetItemsProcessed(State.iterations() * N);
}
BENCHMARK(BM_MassActionRhs)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_AnalyticJacobian(benchmark::State &State) {
  const size_t N = State.range(0);
  ReactionNetwork Net = modelOfSize(N);
  CompiledOdeSystem Sys(Net);
  std::vector<double> Y = Net.initialState();
  Matrix J;
  for (auto _ : State) {
    Sys.analyticJacobian(0.0, Y.data(), J);
    benchmark::DoNotOptimize(J.rowData(0));
  }
}
BENCHMARK(BM_AnalyticJacobian)->Arg(8)->Arg(32)->Arg(128);

void BM_RealLuFactor(benchmark::State &State) {
  const size_t N = State.range(0);
  Rng R(7);
  Matrix A(N, N);
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = 0; J < N; ++J)
      A(I, J) = R.uniform(-1, 1);
    A(I, I) += static_cast<double>(N);
  }
  RealLu Lu;
  for (auto _ : State) {
    benchmark::DoNotOptimize(Lu.factor(A));
  }
}
BENCHMARK(BM_RealLuFactor)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

void BM_LuSolve(benchmark::State &State) {
  const size_t N = State.range(0);
  Rng R(7);
  Matrix A(N, N);
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = 0; J < N; ++J)
      A(I, J) = R.uniform(-1, 1);
    A(I, I) += static_cast<double>(N);
  }
  RealLu Lu;
  Lu.factor(A);
  std::vector<double> B(N, 1.0);
  for (auto _ : State) {
    std::vector<double> X = B;
    Lu.solve(X.data());
    benchmark::DoNotOptimize(X.data());
  }
}
BENCHMARK(BM_LuSolve)->Arg(8)->Arg(32)->Arg(128)->Arg(256);

void BM_Dopri5Integration(benchmark::State &State) {
  const size_t N = State.range(0);
  ReactionNetwork Net = modelOfSize(N);
  CompiledOdeSystem Sys(Net);
  Dopri5Solver Solver;
  SolverOptions Opts;
  Opts.MaxSteps = 100000;
  Opts.EnableStiffnessDetection = false;
  for (auto _ : State) {
    std::vector<double> Y = Net.initialState();
    IntegrationResult R = Solver.integrate(Sys, 0.0, 2.0, Y, Opts);
    benchmark::DoNotOptimize(R.Stats.RhsEvaluations);
  }
}
BENCHMARK(BM_Dopri5Integration)->Arg(8)->Arg(32)->Arg(128);

void BM_Radau5Integration(benchmark::State &State) {
  const size_t N = State.range(0);
  ReactionNetwork Net = modelOfSize(N);
  CompiledOdeSystem Sys(Net);
  Radau5Solver Solver;
  SolverOptions Opts;
  Opts.MaxSteps = 100000;
  for (auto _ : State) {
    std::vector<double> Y = Net.initialState();
    IntegrationResult R = Solver.integrate(Sys, 0.0, 2.0, Y, Opts);
    benchmark::DoNotOptimize(R.Stats.NewtonIterations);
  }
}
BENCHMARK(BM_Radau5Integration)->Arg(8)->Arg(32)->Arg(64);
} // namespace

BENCHMARK_MAIN();
