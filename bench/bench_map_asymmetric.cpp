//===- bench/bench_map_asymmetric.cpp - Experiments F2 and F3 -------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// F2/F3: the comparison maps for asymmetric RBMs. F2 sweeps models with
// more species than reactions (N > M, more fine-grained width per unit
// of work); F3 sweeps models with more reactions than species (M > N,
// longer ODEs per thread -- the regime where GPU benefits shrink and the
// CPU solvers stay competitive longest, up to the paper-line 213x640
// single-simulation case).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace psg;
using namespace psg::bench;

namespace {
void runMap(const char *Title, const char *CsvName,
            const std::vector<std::pair<size_t, size_t>> &Shapes,
            const std::vector<uint64_t> &Batches) {
  CostModel Model = CostModel::paperSetup();
  auto Sims = createAllSimulators(Model);

  std::printf("== %s ==\n", Title);
  CsvWriter Csv({"n", "m", "batch", "simulator", "modeled_simulation_s",
                 "modeled_integration_s", "failures"});
  std::printf("%12s |", "N x M");
  for (uint64_t B : Batches)
    std::printf(" %16s",
                formatString("batch %llu", (unsigned long long)B).c_str());
  std::printf("\n");

  for (auto [N, M] : Shapes) {
    ReactionNetwork Net = syntheticModel(N, M, /*Seed=*/77 + N + M);
    std::printf("%12s |", formatString("%zux%zu", N, M).c_str());
    for (uint64_t Batch : Batches) {
      std::string Winner;
      double Best = 1e300;
      for (auto &Sim : Sims) {
        CellTiming T = measureCell(*Sim, Model, Net, Batch,
                                   sampleFor(N, Batch), /*EndTime=*/5.0,
                                   /*OutputSamples=*/20,
                                   /*Seed=*/N * 17 + M * 3 + Batch);
        Csv.addRow({formatString("%zu", N), formatString("%zu", M),
                    formatString("%llu", (unsigned long long)Batch),
                    Sim->name(), formatString("%.6g", T.SimulationSeconds),
                    formatString("%.6g", T.IntegrationSeconds),
                    formatString("%zu", T.Failures)});
        if (T.SimulationSeconds < Best) {
          Best = T.SimulationSeconds;
          Winner = Sim->name();
        }
      }
      std::printf(" %16s", Winner.c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
  saveCsv(CsvWriter(Csv), CsvName);
}
} // namespace

int main() {
  // F2: more species than reactions.
  runMap("F2: asymmetric RBMs, N > M", "f2_map_n_gt_m.csv",
         {{32, 8}, {64, 16}, {128, 32}, {256, 64}, {512, 128}},
         {1, 128, 1024});
  // F3: more reactions than species (includes the 213x640-like shape).
  runMap("F3: asymmetric RBMs, M > N", "f3_map_m_gt_n.csv",
         {{8, 24}, {21, 64}, {71, 213}, {213, 640}, {256, 768}},
         {1, 128, 1024});
  return 0;
}
