//===- bench/bench_micro_lanes.cpp ----------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Scalar-vs-lane-batched integration throughput microbenchmark. Runs the
/// same adaptive-solver parameter sweeps through the scalar coarse-grained
/// personality (`gpu-coarse`, one LSODA integration per parameterization)
/// and the SIMD lane-batched personality (`simd-lanes`, lockstep DOPRI5
/// over 8 SoA lanes) and reports sims/s for each plus the per-case
/// speedup. Sweeps use curated nonstiff models with ±10% rate-constant
/// perturbations — the coherent-neighbour regime the lane mapping is
/// built for, mirroring the paper's coarse-grained GPU batches.
///
/// Besides throughput the run records the lane telemetry (occupancy,
/// lockstep replays, scalar fallbacks) proving the lanes were actually
/// populated rather than idling: a lockstep win with occupancy near zero
/// would mean the batch degenerated to scalar work.
///
/// Output: a psg-bench-lanes-v1 JSON document (default BENCH_lanes.json)
/// with the measured cases, speedups, and lane counters. `--baseline
/// FILE` embeds a previously saved run object verbatim so the committed
/// file carries before/after numbers across PRs.
///
//===----------------------------------------------------------------------===//

#include "rbm/CuratedModels.h"
#include "sim/Simulators.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "vgpu/CostModel.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace psg;

namespace {

struct CaseResult {
  std::string ModelName;
  std::string Simulator;
  size_t Species = 0;
  size_t Reactions = 0;
  uint64_t Batch = 0;
  double EndTime = 0.0;
  double BestWallSeconds = 0.0;
  double MeanWallSeconds = 0.0;
  double SimsPerSecond = 0.0;
  size_t Failures = 0;
};

/// A sweep batch: every simulation gets the curated defaults with ±10%
/// rate-constant jitter, the regime where lockstep lanes stay coherent.
void fillSweep(BatchSpec &Spec, const ReactionNetwork &Net, uint64_t Batch,
               uint64_t Seed) {
  std::vector<double> Defaults;
  Defaults.reserve(Net.numReactions());
  for (size_t R = 0; R < Net.numReactions(); ++R)
    Defaults.push_back(Net.reaction(R).RateConstant);

  Rng Generator(Seed);
  Spec.RateConstantSets.resize(Batch);
  for (uint64_t I = 0; I < Batch; ++I) {
    Spec.RateConstantSets[I] = Defaults;
    for (double &K : Spec.RateConstantSets[I])
      K *= 0.9 + 0.2 * Generator.uniform();
  }
}

CaseResult measureCase(const ReactionNetwork &Net, const std::string &Name,
                       double EndTime, uint64_t Batch,
                       const std::string &SimName, unsigned Reps) {
  CostModel M = CostModel::paperSetup();
  auto SimOr = createSimulator(SimName, M);
  if (!SimOr.ok()) {
    std::fprintf(stderr, "cannot create %s: %s\n", SimName.c_str(),
                 SimOr.message().c_str());
    std::exit(1);
  }
  Simulator &Sim = **SimOr;

  BatchSpec Spec;
  Spec.Model = &Net;
  Spec.Batch = Batch;
  Spec.EndTime = EndTime;
  Spec.OutputSamples = 0;
  Spec.Options.RelTol = 1e-6;
  Spec.Options.AbsTol = 1e-9;
  Spec.Options.MaxSteps = 500000;
  fillSweep(Spec, Net, Batch, /*Seed=*/42);

  // Warmup: populates the worker pool's compiled model, lane system, and
  // solver workspaces so the timed reps measure steady-state throughput.
  Sim.run(Spec);

  CaseResult R;
  R.ModelName = Name;
  R.Simulator = SimName;
  R.Species = Net.numSpecies();
  R.Reactions = Net.numReactions();
  R.Batch = Batch;
  R.EndTime = EndTime;
  double Best = 0.0, Sum = 0.0;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    WallTimer Timer;
    BatchResult Result = Sim.run(Spec);
    const double Wall = Timer.seconds();
    Sum += Wall;
    if (Rep == 0 || Wall < Best)
      Best = Wall;
    R.Failures = Result.Failures;
  }
  R.BestWallSeconds = Best;
  R.MeanWallSeconds = Sum / Reps;
  R.SimsPerSecond = Best > 0.0 ? static_cast<double>(Batch) / Best : 0.0;
  std::printf("  %-14s batch %5llu  %-10s %10.0f sims/s (best of %u, "
              "%zu failures)\n",
              Name.c_str(), (unsigned long long)Batch, SimName.c_str(),
              R.SimsPerSecond, Reps, R.Failures);
  return R;
}

void appendJsonCase(std::string &Out, const CaseResult &R, bool Last) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "      {\"model\": \"%s\", \"simulator\": \"%s\", \"species\": %zu, "
      "\"reactions\": %zu, \"batch\": %llu, \"end_time\": %.3f, "
      "\"best_wall_s\": %.6e, \"mean_wall_s\": %.6e, "
      "\"sims_per_sec\": %.1f, \"failures\": %zu}%s\n",
      R.ModelName.c_str(), R.Simulator.c_str(), R.Species, R.Reactions,
      (unsigned long long)R.Batch, R.EndTime, R.BestWallSeconds,
      R.MeanWallSeconds, R.SimsPerSecond, R.Failures, Last ? "" : ",");
  Out += Buf;
}

std::string runObjectJson(const std::string &Label,
                          const std::vector<CaseResult> &Results) {
  std::string Out;
  Out += "{\n    \"label\": \"" + Label + "\",\n";
  Out += "    \"scalar_simulator\": \"gpu-coarse\",\n";
  Out += "    \"lane_simulator\": \"simd-lanes\",\n";
  Out += "    \"cases\": [\n";
  for (size_t I = 0; I < Results.size(); ++I)
    appendJsonCase(Out, Results[I], I + 1 == Results.size());
  Out += "    ],\n";
  // Scalar/lane results alternate per (model, batch); pair them up.
  Out += "    \"speedups\": [\n";
  std::string Rows;
  for (size_t I = 0; I + 1 < Results.size(); I += 2) {
    const CaseResult &Scalar = Results[I];
    const CaseResult &Lane = Results[I + 1];
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "      {\"model\": \"%s\", \"batch\": %llu, "
                  "\"speedup\": %.3f}%s\n",
                  Scalar.ModelName.c_str(),
                  (unsigned long long)Scalar.Batch,
                  Scalar.SimsPerSecond > 0.0
                      ? Lane.SimsPerSecond / Scalar.SimsPerSecond
                      : 0.0,
                  I + 2 < Results.size() ? "," : "");
    Rows += Buf;
  }
  Out += Rows;
  Out += "    ]\n  }";
  return Out;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return "";
  std::ostringstream Ss;
  Ss << In.rdbuf();
  std::string S = Ss.str();
  while (!S.empty() && (S.back() == '\n' || S.back() == ' '))
    S.pop_back();
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = "BENCH_lanes.json";
  std::string BaselinePath;
  std::string Label = "current";
  bool CasesOnly = false;
  unsigned Reps = 3;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto next = [&]() -> std::string {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--json")
      JsonPath = next();
    else if (Arg == "--baseline")
      BaselinePath = next();
    else if (Arg == "--label")
      Label = next();
    else if (Arg == "--cases-only")
      CasesOnly = true;
    else if (Arg == "--reps")
      Reps = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--baseline PATH] [--label TEXT] "
                   "[--reps N] [--cases-only]\n",
                   Argv[0]);
      return 2;
    }
  }

  std::printf("== micro-lanes: scalar vs SIMD lane-batched integration ==\n");
  const ReactionNetwork Lotka = makeLotkaVolterraNetwork();
  const ReactionNetwork Repress = makeRepressilatorNetwork();
  const ReactionNetwork Decay = makeDecayChainNetwork(8, 0.5);

  struct Sweep {
    const ReactionNetwork *Net;
    const char *Name;
    double EndTime;
  };
  const Sweep Sweeps[] = {{&Lotka, "lotka-volterra", 10.0},
                          {&Repress, "repressilator", 10.0},
                          {&Decay, "decay-chain-8", 5.0}};

  metrics().reset();
  std::vector<CaseResult> Results;
  const uint64_t Batches[] = {64, 256};
  for (const Sweep &S : Sweeps) {
    for (uint64_t Batch : Batches) {
      // Scalar first, lane second: runObjectJson pairs them in order.
      Results.push_back(measureCase(*S.Net, S.Name, S.EndTime, Batch,
                                    "gpu-coarse", Reps));
      Results.push_back(measureCase(*S.Net, S.Name, S.EndTime, Batch,
                                    "simd-lanes", Reps));
    }
  }

  const MetricsSnapshot Snapshot = metrics().snapshot();
  const std::string RunJson = runObjectJson(Label, Results);

  std::string Doc;
  if (CasesOnly) {
    Doc = RunJson;
    Doc += "\n";
  } else {
    Doc += "{\n  \"schema\": \"psg-bench-lanes-v1\",\n";
    std::string Baseline = BaselinePath.empty() ? "" : slurp(BaselinePath);
    Doc += "  \"baseline\": ";
    Doc += Baseline.empty() ? "null" : Baseline;
    Doc += ",\n  \"current\": ";
    Doc += RunJson;
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        ",\n  \"counters\": {\"psg.sim.lane_occupancy\": %.4f, "
        "\"psg.sim.lane_step_replays\": %llu, "
        "\"psg.sim.lane_fallbacks\": %llu}\n}\n",
        Snapshot.gaugeValue("psg.sim.lane_occupancy"),
        (unsigned long long)Snapshot.counterValue(
            "psg.sim.lane_step_replays"),
        (unsigned long long)Snapshot.counterValue("psg.sim.lane_fallbacks"));
    Doc += Buf;
  }

  std::ofstream Out(JsonPath);
  Out << Doc;
  Out.close();
  std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
