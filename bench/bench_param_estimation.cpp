//===- bench/bench_param_estimation.cpp - Experiment T3 -------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// T3: parameter estimation of the metabolic surrogate's unknown kinetic
// constants with FST-PSO, coupling the optimizer once with the engine
// and once with the CPU LSODA baseline. Reports fit quality and the
// modeled wall-time of the whole PE (paper-line shape: engine ~30x
// faster than LSODA on the PE task).
//
// Default: 12 of the 78 unknown constants (--full estimates all 78).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "analysis/Fitness.h"
#include "rbm/CuratedModels.h"

using namespace psg;
using namespace psg::bench;

int main(int Argc, char **Argv) {
  const bool Full = Argc > 1 && std::string(Argv[1]) == "--full";
  MetabolicSurrogate Model = makeMetabolicSurrogate();
  const size_t NumUnknowns = Full ? Model.UnknownParameters.size() : 12;

  std::printf("== T3: PE of the metabolic surrogate with FST-PSO ==\n");
  std::printf("estimating %zu of %zu flagged unknown constants%s\n\n",
              NumUnknowns, Model.UnknownParameters.size(),
              Full ? "" : " (--full for all 78)");

  // Target dynamics with the true constants.
  ParameterSpace Space(Model.Net);
  std::vector<std::pair<double, double>> Bounds;
  std::vector<double> Truth;
  for (size_t I = 0; I < NumUnknowns; ++I) {
    const size_t R = Model.UnknownParameters[I];
    ParameterAxis Axis;
    Axis.Name = formatString("k%zu", R);
    Axis.Target = AxisTarget::RateConstant;
    Axis.Reactions = {R};
    const double True = Model.Net.reaction(R).RateConstant;
    Axis.Lo = True * 0.1;
    Axis.Hi = True * 10.0;
    Axis.LogScale = true;
    Space.addAxis(Axis);
    Bounds.emplace_back(Axis.Lo, Axis.Hi);
    Truth.push_back(True);
  }

  std::vector<size_t> Observed = {Model.ReporterR5P};
  // Observe a handful of core metabolites, as a wet-lab target would.
  for (size_t V = 0; V < 6; ++V)
    Observed.push_back(V);

  CsvWriter Csv({"coupling", "best_fitness", "evaluations",
                 "modeled_pe_seconds"});
  double EngineSeconds = 0;
  for (const char *Name : {"psg-engine", "cpu-lsoda"}) {
    EngineOptions Opts;
    Opts.SimulatorName = Name;
    Opts.EndTime = 10.0;
    Opts.OutputSamples = 21;
    BatchEngine Engine(CostModel::paperSetup(), Opts);

    Parameterization True;
    True.InitialState = Model.Net.initialState();
    for (size_t R = 0; R < Model.Net.numReactions(); ++R)
      True.RateConstants.push_back(Model.Net.reaction(R).RateConstant);
    EngineReport TargetRun =
        Engine.runParameterizations(Model.Net, {True});

    // Like makeTrajectoryFitObjective, but also accumulating the modeled
    // time of every swarm
    // evaluation (the PE cost is simulation-dominated).
    double ModeledSeconds = 0;
    BatchObjective Timed =
        [&](const std::vector<std::vector<double>> &Positions) {
          EngineReport Rep = Engine.run(Space, Positions);
          std::vector<double> F(Positions.size(), 1e6);
          for (size_t I = 0; I < Rep.Outcomes.size(); ++I)
            if (Rep.Outcomes[I].Result.ok())
              F[I] = relativeTrajectoryDistance(
                  Rep.Outcomes[I].Dynamics,
                  TargetRun.Outcomes[0].Dynamics, Observed);
          ModeledSeconds += Rep.SimulationTime.total();
          return F;
        };

    PsoOptions Pso;
    Pso.SwarmSize = 16;
    Pso.Iterations = Full ? 40 : 15;
    Pso.FuzzySelfTuning = true;
    PsoResult Fit = runPso(Bounds, Timed, Pso);

    if (std::string(Name) == "psg-engine")
      EngineSeconds = ModeledSeconds;
    std::printf("%-12s best fitness %.4e after %zu evaluations, modeled "
                "PE time %.2f s\n",
                Name, Fit.BestFitness, Fit.Evaluations, ModeledSeconds);
    Csv.addRow({Name, formatString("%.6e", Fit.BestFitness),
                formatString("%zu", Fit.Evaluations),
                formatString("%.4f", ModeledSeconds)});
    if (std::string(Name) == "cpu-lsoda" && EngineSeconds > 0)
      std::printf("\nengine speedup on the PE task: %.0fx "
                  "(paper-line ~30x)\n",
                  ModeledSeconds / EngineSeconds);
  }
  std::printf("\n");
  saveCsv(Csv, "t3_param_estimation.csv");
  return 0;
}
