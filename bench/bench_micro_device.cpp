//===- bench/bench_micro_device.cpp ---------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Device-runtime pipelining microbenchmark: the eager serial schedule
/// against the asynchronous double-buffered one, with and without the
/// pooled buffer allocator, on a transfer-heavy sharded sweep.
///
/// Each case streams the same short-horizon sweep through a one-device
/// sched::ShardedExecutor. The short integration horizon and small shard
/// chunk make the per-shard host work — parameterization packing, buffer
/// allocation, upload/download copies, delivery — a large fraction of the
/// schedule, which is exactly the regime where the async runtime's
/// three-stream pipeline (upload k+1 / integrate k / download k-1) earns
/// its keep. The eager rows run the identical dataflow with every stage
/// completing inline, i.e. the pre-pipeline serial schedule.
///
/// Unlike the engine-level stream bench, the overlap ratio recorded here
/// is MEASURED: stage intervals are timestamped on the stream workers
/// themselves and intersected with the compute-stream cover
/// (ShardScheduleReport::MeasuredTransferOverlap). Eager rows must show
/// ~0 overlap; async rows must genuinely hide transfers. The gated
/// quantity is host wall-clock sims/s — this bench exists to prove the
/// async pipeline wins real time, not modeled time.
///
/// Output: a psg-bench-device-v1 JSON document (default
/// BENCH_device.json) with per-case throughput, measured overlap, and
/// pool counter deltas, plus per-model async-vs-eager speedups.
/// `--baseline FILE` embeds a previously saved run object verbatim.
///
//===----------------------------------------------------------------------===//

#include "core/BatchEngine.h"
#include "rbm/CuratedModels.h"
#include "sched/ShardedExecutor.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "vgpu/CostModel.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace psg;

namespace {

struct RuntimeCase {
  const char *Label;   ///< "eager", "async", "async+pool".
  const char *Runtime; ///< EngineOptions::Runtime name.
  size_t PoolBytes;    ///< EngineOptions::PoolMaxCachedBytes.
};

struct CaseResult {
  std::string ModelName;
  std::string Runtime; ///< The case label, the baseline match key.
  unsigned Devices = 0;
  uint64_t Sims = 0;
  uint64_t Chunk = 0;
  uint64_t Shards = 0;
  double BestWallSeconds = 0.0;
  double MeanWallSeconds = 0.0;
  double SimsPerSecond = 0.0; ///< Host wall-clock throughput.
  double OverlapRatio = 0.0;  ///< Measured, from stream timestamps.
  double TransferWallSeconds = 0.0;
  double TransferHiddenSeconds = 0.0;
  uint64_t PoolHits = 0;   ///< Delta across the timed reps.
  uint64_t PoolMisses = 0; ///< Delta across the timed reps.
  size_t Failures = 0;
};

/// The sweep every case runs: curated defaults with ±10% rate-constant
/// jitter, identical draws per case so the integration work matches.
std::vector<Parameterization> makeSweep(const ReactionNetwork &Net,
                                        uint64_t Sims, uint64_t Seed) {
  std::vector<double> Defaults;
  Defaults.reserve(Net.numReactions());
  for (size_t R = 0; R < Net.numReactions(); ++R)
    Defaults.push_back(Net.reaction(R).RateConstant);

  Rng Generator(Seed);
  std::vector<Parameterization> Params(Sims);
  for (Parameterization &P : Params) {
    P.InitialState = Net.initialState();
    P.RateConstants = Defaults;
    for (double &K : P.RateConstants)
      K *= 0.9 + 0.2 * Generator.uniform();
  }
  return Params;
}

/// Discards every outcome; the bench measures the pipeline, not a
/// reduction.
class NullSink final : public OutcomeSink {
public:
  size_t Count = 0;
  void consumeSubBatch(size_t, std::vector<SimulationOutcome> &B) override {
    Count += B.size();
  }
};

CaseResult measureCase(const ReactionNetwork &Net, const std::string &Name,
                       double EndTime, uint64_t Sims, uint64_t Chunk,
                       const RuntimeCase &RC, unsigned Reps) {
  EngineOptions Opts;
  Opts.SubBatchSize = Chunk;
  Opts.EndTime = EndTime;
  Opts.OutputSamples = 0;
  Opts.Solver.RelTol = 1e-6;
  Opts.Solver.AbsTol = 1e-9;
  Opts.Runtime = RC.Runtime;
  Opts.PoolMaxCachedBytes = RC.PoolBytes;
  Opts.Sched.Devices = {"gpu-coarse"};
  Opts.Sched.ChunkSize = Chunk;
  Opts.Sched.WorkersPerDevice = 1;
  ShardedExecutor Executor(CostModel::paperSetup(), Opts, Opts.Sched);

  const std::vector<Parameterization> Params = makeSweep(Net, Sims, 42);
  auto runOnce = [&]() -> ShardScheduleReport {
    size_t Next = 0;
    ParameterizationSource Source =
        [&](size_t MaxCount, std::vector<Parameterization> &Out) -> size_t {
      const size_t Count = std::min(MaxCount, Params.size() - Next);
      for (size_t I = 0; I < Count; ++I)
        Out.push_back(Params[Next + I]);
      Next += Count;
      return Count;
    };
    NullSink Sink;
    return Executor.streamParameterizations(Net, nullptr, Source, Sink);
  };

  // Warmup: worker pools, the compiled model, throughput estimates, and
  // (on the pooled row) the allocator bins reach steady state.
  runOnce();

  CaseResult R;
  R.ModelName = Name;
  R.Runtime = RC.Label;
  R.Devices = 1;
  R.Sims = Sims;
  R.Chunk = Chunk;
  const MetricsSnapshot Before = metrics().snapshot();
  double Best = 0.0, Sum = 0.0;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    WallTimer Timer;
    const ShardScheduleReport Report = runOnce();
    const double Wall = Timer.seconds();
    Sum += Wall;
    if (Rep == 0 || Wall < Best) {
      Best = Wall;
      R.Shards = Report.Shards;
      R.OverlapRatio = Report.MeasuredTransferOverlap;
      R.TransferWallSeconds = Report.MeasuredTransferSeconds;
      R.TransferHiddenSeconds = Report.MeasuredHiddenTransferSeconds;
      R.Failures = Report.Stream.Failures;
    }
  }
  const MetricsSnapshot After = metrics().snapshot();
  R.PoolHits = After.counterValue("psg.device.pool_hits") -
               Before.counterValue("psg.device.pool_hits");
  R.PoolMisses = After.counterValue("psg.device.pool_misses") -
                 Before.counterValue("psg.device.pool_misses");
  R.BestWallSeconds = Best;
  R.MeanWallSeconds = Sum / Reps;
  R.SimsPerSecond =
      Best > 0.0 ? static_cast<double>(Sims) / Best : 0.0;
  std::printf("  %-14s %-10s %10.0f sims/s wall (overlap %.3f, "
              "transfers %.3gs hidden %.3gs, pool %llu/%llu)\n",
              Name.c_str(), RC.Label, R.SimsPerSecond, R.OverlapRatio,
              R.TransferWallSeconds, R.TransferHiddenSeconds,
              (unsigned long long)R.PoolHits,
              (unsigned long long)R.PoolMisses);
  return R;
}

void appendJsonCase(std::string &Out, const CaseResult &R, bool Last) {
  char Buf[640];
  std::snprintf(
      Buf, sizeof(Buf),
      "      {\"model\": \"%s\", \"runtime\": \"%s\", \"devices\": %u, "
      "\"sims\": %llu, \"chunk\": %llu, \"shards\": %llu, "
      "\"best_wall_s\": %.6e, \"mean_wall_s\": %.6e, "
      "\"sims_per_sec\": %.1f, \"overlap_ratio\": %.6f, "
      "\"transfer_wall_s\": %.6e, \"transfer_hidden_s\": %.6e, "
      "\"pool_hits\": %llu, \"pool_misses\": %llu, \"failures\": %zu}%s\n",
      R.ModelName.c_str(), R.Runtime.c_str(), R.Devices,
      (unsigned long long)R.Sims, (unsigned long long)R.Chunk,
      (unsigned long long)R.Shards, R.BestWallSeconds, R.MeanWallSeconds,
      R.SimsPerSecond, R.OverlapRatio, R.TransferWallSeconds,
      R.TransferHiddenSeconds, (unsigned long long)R.PoolHits,
      (unsigned long long)R.PoolMisses, R.Failures, Last ? "" : ",");
  Out += Buf;
}

std::string runObjectJson(const std::string &Label,
                          const std::vector<CaseResult> &Results) {
  std::string Out;
  Out += "{\n    \"label\": \"" + Label + "\",\n";
  Out += "    \"personality\": \"gpu-coarse\",\n";
  Out += "    \"metric\": \"host_wall_throughput\",\n";
  // Wall-clock overlap needs at least two hardware threads; the gate
  // in psg-bench-compare reads this to avoid failing a uniprocessor.
  Out += "    \"hw_threads\": " +
         std::to_string(std::max(1u, std::thread::hardware_concurrency())) +
         ",\n";
  Out += "    \"cases\": [\n";
  for (size_t I = 0; I < Results.size(); ++I)
    appendJsonCase(Out, Results[I], I + 1 == Results.size());
  Out += "    ],\n";
  // Cases per model run eager first; each async row's speedup is its
  // wall throughput over its model's eager row.
  Out += "    \"speedups\": [\n";
  std::string Rows;
  double EagerThroughput = 0.0;
  for (size_t I = 0; I < Results.size(); ++I) {
    const CaseResult &R = Results[I];
    if (R.Runtime == "eager") {
      EagerThroughput = R.SimsPerSecond;
      continue;
    }
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "      {\"model\": \"%s\", \"runtime\": \"%s\", "
                  "\"speedup\": %.3f}%s\n",
                  R.ModelName.c_str(), R.Runtime.c_str(),
                  EagerThroughput > 0.0
                      ? R.SimsPerSecond / EagerThroughput
                      : 0.0,
                  I + 1 < Results.size() ? "," : "");
    Rows += Buf;
  }
  if (!Rows.empty() && Rows[Rows.size() - 2] == ',')
    Rows.erase(Rows.size() - 2, 1);
  Out += Rows;
  Out += "    ]\n  }";
  return Out;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return "";
  std::ostringstream Ss;
  Ss << In.rdbuf();
  std::string S = Ss.str();
  while (!S.empty() && (S.back() == '\n' || S.back() == ' '))
    S.pop_back();
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = "BENCH_device.json";
  std::string BaselinePath;
  std::string Label = "current";
  bool CasesOnly = false;
  unsigned Reps = 3;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto next = [&]() -> std::string {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--json")
      JsonPath = next();
    else if (Arg == "--baseline")
      BaselinePath = next();
    else if (Arg == "--label")
      Label = next();
    else if (Arg == "--cases-only")
      CasesOnly = true;
    else if (Arg == "--reps")
      Reps = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--baseline PATH] [--label TEXT] "
                   "[--reps N] [--cases-only]\n",
                   Argv[0]);
      return 2;
    }
  }

  std::printf("== micro-device: eager vs async double-buffered runtime ==\n");
  const ReactionNetwork Brussel = makeBrusselatorNetwork();
  const ReactionNetwork Decay = makeDecayChainNetwork(8, 0.5);

  // Short horizons and small chunks: many shards, little integration
  // per shard, so staging/transfer/delivery is a large slice of the
  // schedule — the transfer-heavy regime the async pipeline targets.
  struct Sweep {
    const ReactionNetwork *Net;
    const char *Name;
    double EndTime;
    uint64_t Sims;
    uint64_t Chunk;
  };
  const Sweep Sweeps[] = {{&Brussel, "brusselator", 2.0, 1024, 32},
                          {&Decay, "decay-chain-8", 2.0, 1024, 32}};

  const RuntimeCase Runtimes[] = {
      {"eager", "host", 0},
      {"async", "host-async", 0},
      {"async+pool", "host-async", 64ull << 20},
  };

  metrics().reset();
  std::vector<CaseResult> Results;
  for (const Sweep &S : Sweeps)
    for (const RuntimeCase &RC : Runtimes)
      Results.push_back(
          measureCase(*S.Net, S.Name, S.EndTime, S.Sims, S.Chunk, RC, Reps));

  const MetricsSnapshot Snapshot = metrics().snapshot();
  const std::string RunJson = runObjectJson(Label, Results);

  std::string Doc;
  if (CasesOnly) {
    Doc = RunJson;
    Doc += "\n";
  } else {
    Doc += "{\n  \"schema\": \"psg-bench-device-v1\",\n";
    std::string Baseline = BaselinePath.empty() ? "" : slurp(BaselinePath);
    Doc += "  \"baseline\": ";
    Doc += Baseline.empty() ? "null" : Baseline;
    Doc += ",\n  \"current\": ";
    Doc += RunJson;
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        ",\n  \"counters\": {\"psg.device.pool_hits\": %llu, "
        "\"psg.device.pool_misses\": %llu, "
        "\"psg.device.upload_bytes\": %llu, "
        "\"psg.device.download_bytes\": %llu, "
        "\"psg.sched.lost_simulations\": %llu}\n}\n",
        (unsigned long long)Snapshot.counterValue("psg.device.pool_hits"),
        (unsigned long long)Snapshot.counterValue("psg.device.pool_misses"),
        (unsigned long long)Snapshot.counterValue("psg.device.upload_bytes"),
        (unsigned long long)Snapshot.counterValue("psg.device.download_bytes"),
        (unsigned long long)Snapshot.counterValue(
            "psg.sched.lost_simulations"));
    Doc += Buf;
  }

  std::ofstream Out(JsonPath);
  Out << Doc;
  Out.close();
  std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
