//===- bench/bench_micro_stream.cpp ---------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming-pipeline microbenchmark: the bounded-memory stream() path
/// against the materializing run() path on the same sweeps.
///
/// For each case the sweep is a random sample of a one-axis rate-constant
/// space over a short integration horizon (a few accepted steps, as in
/// the dispatch microbenchmark's "short-horizon" rows). The materialized
/// rows sample every point up front and hold every outcome until the run
/// returns; the streaming rows pull points lazily with two sub-batches in
/// flight and discard each sub-batch at the sink, so the comparison
/// isolates the pipeline overhead (generator pulls, sink calls, buffer
/// recycling) at equal numerical work.
///
/// Recorded per case: wall times, throughput, peak resident outcomes
/// (batch size for materialized rows, the streaming bound otherwise), and
/// the modeled overlap ratio of the double-buffered rows. Output is a
/// psg-bench-stream-v1 JSON document (default BENCH_streaming.json);
/// `--baseline FILE` embeds a previously saved run object verbatim.
///
//===----------------------------------------------------------------------===//

#include "core/BatchEngine.h"
#include "core/PointGenerator.h"
#include "rbm/CuratedModels.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "vgpu/CostModel.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace psg;

namespace {

struct CaseResult {
  std::string ModelName;
  uint64_t Batch = 0;
  uint64_t SubBatches = 0;
  std::string Mode; ///< "materialized" or "streaming".
  uint64_t InFlight = 0;
  double BestWallSeconds = 0.0;
  double MeanWallSeconds = 0.0;
  double SimsPerSecond = 0.0;
  size_t PeakResidentOutcomes = 0;
  double OverlapRatio = 0.0;
  size_t Failures = 0;
};

/// Consumes and forgets every sub-batch: the streaming row's cost is the
/// pipeline itself, not a reduction.
class DiscardSink final : public OutcomeSink {
public:
  size_t Count = 0;
  void consumeSubBatch(size_t,
                       std::vector<SimulationOutcome> &Batch) override {
    Count += Batch.size();
  }
};

ParameterSpace makeSweepSpace(const ReactionNetwork &Net) {
  ParameterSpace Space(Net);
  ParameterAxis Axis;
  Axis.Name = "k0";
  Axis.Target = AxisTarget::RateConstant;
  Axis.Reactions = {0};
  Axis.Lo = Net.reaction(0).RateConstant * 0.9;
  Axis.Hi = Net.reaction(0).RateConstant * 1.1;
  Space.addAxis(Axis);
  return Space;
}

EngineOptions makeOptions(uint64_t InFlight) {
  EngineOptions Opts;
  Opts.SimulatorName = "gpu-coarse";
  Opts.SubBatchSize = 512;
  Opts.InFlight = InFlight;
  Opts.OutputSamples = 0;
  Opts.StartTime = 0.0;
  Opts.EndTime = 1e-4; // A few accepted steps per simulation.
  Opts.Solver.RelTol = 1e-4;
  Opts.Solver.AbsTol = 1e-9;
  return Opts;
}

CaseResult measureStreaming(const std::string &Name,
                            const ParameterSpace &Space, uint64_t Batch,
                            uint64_t InFlight, unsigned Reps) {
  BatchEngine Engine(CostModel::paperSetup(), makeOptions(InFlight));

  // Warmup: compilation cache and solver pools reach steady state.
  {
    auto Warm = makeRandomGenerator(Space, 64, 7);
    DiscardSink Sink;
    Engine.stream(Space, *Warm, Sink);
  }

  CaseResult R;
  R.ModelName = Name;
  R.Batch = Batch;
  R.Mode = "streaming";
  R.InFlight = InFlight;
  double Best = 0.0, Sum = 0.0;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    auto Gen = makeRandomGenerator(Space, Batch, 42);
    DiscardSink Sink;
    WallTimer Timer;
    StreamReport Report = Engine.stream(Space, *Gen, Sink);
    const double Wall = Timer.seconds();
    Sum += Wall;
    if (Rep == 0 || Wall < Best)
      Best = Wall;
    R.SubBatches = Report.SubBatches;
    R.Failures = Report.Failures;
    R.PeakResidentOutcomes = Report.PeakResidentOutcomes;
    R.OverlapRatio = Report.OverlapRatio;
  }
  R.BestWallSeconds = Best;
  R.MeanWallSeconds = Sum / Reps;
  R.SimsPerSecond = Best > 0.0 ? static_cast<double>(Batch) / Best : 0.0;
  std::printf("  %-20s batch %5llu %-13s %10.0f sims/s (peak resident "
              "%zu, overlap %.3f)\n",
              Name.c_str(), (unsigned long long)Batch, R.Mode.c_str(),
              R.SimsPerSecond, R.PeakResidentOutcomes, R.OverlapRatio);
  return R;
}

CaseResult measureMaterialized(const std::string &Name,
                               const ParameterSpace &Space, uint64_t Batch,
                               unsigned Reps) {
  BatchEngine Engine(CostModel::paperSetup(), makeOptions(2));

  {
    Rng Warmup(7);
    Engine.run(Space, Space.randomSample(64, Warmup));
  }

  CaseResult R;
  R.ModelName = Name;
  R.Batch = Batch;
  R.Mode = "materialized";
  R.InFlight = 2;
  double Best = 0.0, Sum = 0.0;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    // Sampling inside the timed region: the materialized row pays for
    // building the full point set, like the pre-streaming drivers did.
    WallTimer Timer;
    Rng Generator(42);
    EngineReport Report =
        Engine.run(Space, Space.randomSample(Batch, Generator));
    const double Wall = Timer.seconds();
    Sum += Wall;
    if (Rep == 0 || Wall < Best)
      Best = Wall;
    R.SubBatches = Report.SubBatches;
    R.Failures = Report.Failures;
    R.PeakResidentOutcomes = Report.Outcomes.size();
  }
  R.BestWallSeconds = Best;
  R.MeanWallSeconds = Sum / Reps;
  R.SimsPerSecond = Best > 0.0 ? static_cast<double>(Batch) / Best : 0.0;
  std::printf("  %-20s batch %5llu %-13s %10.0f sims/s (peak resident "
              "%zu)\n",
              Name.c_str(), (unsigned long long)Batch, R.Mode.c_str(),
              R.SimsPerSecond, R.PeakResidentOutcomes);
  return R;
}

void appendJsonCase(std::string &Out, const CaseResult &R, bool Last) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "      {\"model\": \"%s\", \"batch\": %llu, \"sub_batches\": %llu, "
      "\"mode\": \"%s\", \"in_flight\": %llu, \"best_wall_s\": %.6e, "
      "\"mean_wall_s\": %.6e, \"sims_per_sec\": %.1f, "
      "\"peak_resident_outcomes\": %zu, \"overlap_ratio\": %.6f, "
      "\"failures\": %zu}%s\n",
      R.ModelName.c_str(), (unsigned long long)R.Batch,
      (unsigned long long)R.SubBatches, R.Mode.c_str(),
      (unsigned long long)R.InFlight, R.BestWallSeconds, R.MeanWallSeconds,
      R.SimsPerSecond, R.PeakResidentOutcomes, R.OverlapRatio,
      R.Failures, Last ? "" : ",");
  Out += Buf;
}

std::string runObjectJson(const std::string &Label,
                          const std::vector<CaseResult> &Results) {
  std::string Out;
  Out += "{\n    \"label\": \"" + Label + "\",\n";
  Out += "    \"simulator\": \"gpu-coarse\",\n";
  Out += "    \"sub_batch_size\": 512,\n";
  Out += "    \"cases\": [\n";
  for (size_t I = 0; I < Results.size(); ++I)
    appendJsonCase(Out, Results[I], I + 1 == Results.size());
  Out += "    ]\n  }";
  return Out;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return "";
  std::ostringstream Ss;
  Ss << In.rdbuf();
  std::string S = Ss.str();
  while (!S.empty() && (S.back() == '\n' || S.back() == ' '))
    S.pop_back();
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = "BENCH_streaming.json";
  std::string BaselinePath;
  std::string Label = "current";
  bool CasesOnly = false;
  unsigned Reps = 3;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto next = [&]() -> std::string {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--json")
      JsonPath = next();
    else if (Arg == "--baseline")
      BaselinePath = next();
    else if (Arg == "--label")
      Label = next();
    else if (Arg == "--cases-only")
      CasesOnly = true;
    else if (Arg == "--reps")
      Reps = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--baseline PATH] [--label TEXT] "
                   "[--reps N] [--cases-only]\n",
                   Argv[0]);
      return 2;
    }
  }

  std::printf("== micro-stream: bounded-memory pipeline vs materialized "
              "runs ==\n");
  const ReactionNetwork Small = makeRepressilatorNetwork();
  const AutophagySurrogate Large = makeAutophagySurrogate();

  metrics().reset();
  std::vector<CaseResult> Results;
  const uint64_t Batches[] = {512, 4096};
  for (const auto &[Net, Name] :
       {std::pair<const ReactionNetwork &, const char *>{Small,
                                                         "repressilator"},
        std::pair<const ReactionNetwork &, const char *>{
            Large.Net, "autophagy-surrogate"}}) {
    const ParameterSpace Space = makeSweepSpace(Net);
    for (uint64_t Batch : Batches) {
      Results.push_back(measureMaterialized(Name, Space, Batch, Reps));
      Results.push_back(
          measureStreaming(Name, Space, Batch, /*InFlight=*/2, Reps));
    }
  }

  const MetricsSnapshot Snapshot = metrics().snapshot();
  const std::string RunJson = runObjectJson(Label, Results);

  std::string Doc;
  if (CasesOnly) {
    Doc = RunJson;
    Doc += "\n";
  } else {
    Doc += "{\n  \"schema\": \"psg-bench-stream-v1\",\n";
    std::string Baseline = BaselinePath.empty() ? "" : slurp(BaselinePath);
    Doc += "  \"baseline\": ";
    Doc += Baseline.empty() ? "null" : Baseline;
    Doc += ",\n  \"current\": ";
    Doc += RunJson;
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        ",\n  \"counters\": {\"psg.engine.sub_batches\": %llu, "
        "\"psg.sim.outcome_buffer_reuses\": %llu, "
        "\"psg.rbm.compilations\": %llu, "
        "\"psg.rbm.compile_reuses\": %llu}\n}\n",
        (unsigned long long)Snapshot.counterValue("psg.engine.sub_batches"),
        (unsigned long long)
            Snapshot.counterValue("psg.sim.outcome_buffer_reuses"),
        (unsigned long long)Snapshot.counterValue("psg.rbm.compilations"),
        (unsigned long long)Snapshot.counterValue("psg.rbm.compile_reuses"));
    Doc += Buf;
  }

  std::ofstream Out(JsonPath);
  Out << Doc;
  Out.close();
  std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
