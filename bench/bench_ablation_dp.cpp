//===- bench/bench_ablation_dp.cpp - Ablation A3 --------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// A3: dynamic-parallelism cost ablation. The engine's fine-grained child
// grids pay a per-step launch latency; this sweep evaluates the same
// measured workloads under three child-launch costs (free, the Titan-X
// calibration, and 4x) across model sizes, showing that DP overhead
// dominates small models and washes out for large ones -- the paper
// line's explanation for the engine's small-model weakness.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace psg;
using namespace psg::bench;

int main() {
  std::printf("== A3: dynamic-parallelism launch-cost ablation ==\n\n");
  std::printf("%10s %16s %16s %16s %18s\n", "N=M", "DP free",
              "DP calibrated", "DP 4x", "overhead share");

  CsvWriter Csv({"n", "dp_child_launch_us", "modeled_simulation_s"});
  for (size_t N : {16, 64, 256, 512}) {
    ReactionNetwork Net = syntheticModel(N, N, /*Seed=*/88 + N);
    double Times[3] = {0, 0, 0};
    int Slot = 0;
    for (double ChildUs : {0.0, 1.6, 6.4}) {
      DeviceSpec Gpu = DeviceSpec::titanX();
      Gpu.ChildLaunchUs = ChildUs;
      CostModel Model(Gpu, DeviceSpec::cpuCore());
      auto Engine = createSimulator("psg-engine", Model);
      CellTiming T = measureCell(**Engine, Model, Net, /*FullBatch=*/256,
                                 sampleFor(N, 256), 5.0, 20,
                                 /*Seed=*/N);
      Times[Slot++] = T.SimulationSeconds;
      Csv.addRow({formatString("%zu", N), formatString("%.1f", ChildUs),
                  formatString("%.6g", T.SimulationSeconds)});
    }
    const double Share = (Times[1] - Times[0]) / Times[1];
    std::printf("%10zu %15.4gs %15.4gs %15.4gs %17.1f%%\n", N, Times[0],
                Times[1], Times[2], 100.0 * Share);
  }
  std::printf("\n(overhead share = fraction of calibrated time spent on "
              "child-grid launches)\n\n");
  saveCsv(Csv, "a3_ablation_dp.csv");

  // Future-work variant (A3b): let the fine+coarse kernels keep small
  // models in constant/shared memory, the improvement the paper line
  // plans for its small-model weakness.
  std::printf("== A3b: fast-memory fine+coarse variant (future work) ==\n\n");
  std::printf("%10s %18s %18s %12s\n", "N=M", "global-only",
              "fast-memory", "gain");
  CsvWriter FmCsv({"n", "variant", "modeled_simulation_s"});
  for (size_t N : {16, 64, 256}) {
    ReactionNetwork Net = syntheticModel(N, N, /*Seed=*/88 + N);
    double Times[2] = {0, 0};
    int Slot = 0;
    for (bool Fast : {false, true}) {
      CostModel::Tunables Knobs;
      Knobs.FineCoarseFastMemory = Fast;
      CostModel Model(DeviceSpec::titanX(), DeviceSpec::cpuCore(), Knobs);
      auto Engine = createSimulator("psg-engine", Model);
      CellTiming T = measureCell(**Engine, Model, Net, /*FullBatch=*/256,
                                 sampleFor(N, 256), 5.0, 20, /*Seed=*/N);
      Times[Slot++] = T.SimulationSeconds;
      FmCsv.addRow({formatString("%zu", N),
                    Fast ? "fast-memory" : "global-only",
                    formatString("%.6g", T.SimulationSeconds)});
    }
    std::printf("%10zu %17.4gs %17.4gs %11.2fx\n", N, Times[0], Times[1],
                Times[0] / Times[1]);
  }
  std::printf("\n");
  saveCsv(FmCsv, "a3b_fastmem_variant.csv");
  return 0;
}
