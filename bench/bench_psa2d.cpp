//===- bench/bench_psa2d.cpp - Experiment F4 ------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// F4: the PSA-2D case study on the autophagy/translation-switch
// surrogate. Sweeps the stress input (AMPK*-analogue) against the
// inhibition strength (P9-analogue, rescaling the paper-matched group of
// cross-inhibition constants), producing the oscillation-amplitude maps
// of the two reporters and the 24-hour-throughput comparison between the
// engine and the CPU baselines (paper-line shape: 36864 engine
// simulations vs ~2090 LSODA vs ~1363 VODE in the same budget).
//
// Default: a 16-unit surrogate and a 12x12 grid keep the bench quick;
// --full builds the 74-unit (173 species / 6581 reactions) network.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "analysis/Psa.h"
#include "io/ResultsIo.h"
#include "rbm/CuratedModels.h"

using namespace psg;
using namespace psg::bench;

int main(int Argc, char **Argv) {
  const bool Full = Argc > 1 && std::string(Argv[1]) == "--full";
  AutophagySurrogate Surrogate =
      Full ? makeAutophagySurrogate() : makeAutophagySurrogate(16, 8);
  const size_t Res = Full ? 16 : 12;

  std::printf("== F4: PSA-2D of the autophagy-switch surrogate ==\n");
  std::printf("model: %zu species, %zu reactions, %zu P9-scaled "
              "constants%s\n\n",
              Surrogate.Net.numSpecies(), Surrogate.Net.numReactions(),
              Surrogate.P9Reactions.size(),
              Full ? " (paper-matched size)" : " (reduced; --full for 74 "
                                               "units)");

  ParameterSpace Space(Surrogate.Net);
  ParameterAxis Stress;
  Stress.Name = "AMPK*";
  Stress.Target = AxisTarget::InitialConcentration;
  Stress.SpeciesIndex = Surrogate.StressSpecies;
  Stress.Lo = 0.2;
  Stress.Hi = 2.5;
  Space.addAxis(Stress);
  ParameterAxis P9;
  P9.Name = "P9";
  P9.Target = AxisTarget::RateConstantGroup;
  P9.Reactions = Surrogate.P9Reactions;
  P9.Lo = 1e-6;
  P9.Hi = 3e-2;
  P9.LogScale = true;
  Space.addAxis(P9);

  auto sweepWith = [&](const char *SimName) {
    EngineOptions Opts;
    Opts.SimulatorName = SimName;
    Opts.EndTime = 80.0;
    Opts.OutputSamples = 161;
    Opts.SubBatchSize = 512; // The throughput-maximizing batch.
    BatchEngine Engine(CostModel::paperSetup(), Opts);
    return runPsa2d(Engine, Space, Res, Res,
                    oscillationAmplitudeReducer(Surrogate.ReporterEif4ebp));
  };

  Psa2dResult EngineMap = sweepWith("psg-engine");
  std::printf("engine: %zu simulations, %zu failures, modeled %.3f s\n",
              EngineMap.Report.Simulations, EngineMap.Report.Failures,
              EngineMap.Report.SimulationTime.total());

  // Oscillating fraction sanity (the map must have structure).
  size_t Oscillating = 0;
  for (double A : EngineMap.Metric)
    Oscillating += A > 1e-3;
  std::printf("oscillating cells: %zu / %zu\n\n", Oscillating,
              EngineMap.Metric.size());

  // Throughput comparison: how many simulations fit in 24 modeled hours.
  std::printf("%12s %22s %26s\n", "simulator", "modeled s / simulation",
              "simulations per 24 h");
  CsvWriter Csv({"simulator", "modeled_seconds_per_sim", "sims_per_24h"});
  double EnginePerDay = 0;
  for (const char *Name : {"psg-engine", "cpu-lsoda", "cpu-vode"}) {
    EngineOptions Opts;
    Opts.SimulatorName = Name;
    Opts.EndTime = 80.0;
    Opts.OutputSamples = 161;
    BatchEngine Engine(CostModel::paperSetup(), Opts);
    // One sub-batch suffices to profile the per-simulation cost.
    Rng SampleRng(99);
    auto Points = Space.randomSample(32, SampleRng);
    EngineReport Report = Engine.run(Space, Points);
    const double PerSim = Report.SimulationTime.total() /
                          static_cast<double>(Report.Outcomes.size());
    const double PerDay = 24.0 * 3600.0 / PerSim;
    if (std::string(Name) == "psg-engine")
      EnginePerDay = PerDay;
    std::printf("%12s %22.4g %26.0f\n", Name, PerSim, PerDay);
    Csv.addRow({Name, formatString("%.6g", PerSim),
                formatString("%.0f", PerDay)});
  }
  std::printf("\n(engine advantage over cpu baselines mirrors the "
              "36864-vs-2090-vs-1363 shape; engine/day = %.0f)\n\n",
              EnginePerDay);

  saveCsv(psa2dToCsv(EngineMap, "ampk_star", "p9", "amplitude"),
          "f4_psa2d_amplitude.csv");
  saveCsv(Csv, "f4_throughput.csv");
  return 0;
}
