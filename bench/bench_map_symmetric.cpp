//===- bench/bench_map_symmetric.cpp - Experiment F1 ----------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// F1: the comparison map for symmetric RBMs (N = M). For every model size
// and batch size, all five simulator personalities run the workload and
// the winner by modeled simulation time is reported -- the reproduction
// of the paper-line "best simulator" map (CPU solvers winning single
// small simulations, cupSODA-style coarse GPU winning small models at
// moderate batches, the fine+coarse engine winning everything large).
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace psg;
using namespace psg::bench;

int main(int Argc, char **Argv) {
  const bool Full = Argc > 1 && std::string(Argv[1]) == "--full";
  std::vector<size_t> Sizes = {16, 32, 64, 128, 256, 512};
  std::vector<uint64_t> Batches = {1, 16, 128, 512, 2048};

  CostModel Model = CostModel::paperSetup();
  auto Sims = createAllSimulators(Model);

  std::printf("== F1: comparison map, symmetric RBMs (N = M) ==\n");
  std::printf("cells: %zu sizes x %zu batch sizes; winner by modeled "
              "simulation time\n\n",
              Sizes.size(), Batches.size());

  CsvWriter Csv({"n", "m", "batch", "simulator", "modeled_simulation_s",
                 "modeled_integration_s", "failures"});
  std::printf("%8s |", "N=M");
  for (uint64_t B : Batches)
    std::printf(" %16s", formatString("batch %llu",
                                      (unsigned long long)B)
                             .c_str());
  std::printf("\n");

  for (size_t N : Sizes) {
    ReactionNetwork Net = syntheticModel(N, N, /*Seed=*/10 + N);
    std::printf("%8zu |", N);
    for (uint64_t Batch : Batches) {
      const uint64_t Sample =
          Full ? Batch : sampleFor(N, Batch);
      std::string Winner;
      double Best = 1e300;
      for (auto &Sim : Sims) {
        CellTiming T = measureCell(*Sim, Model, Net, Batch, Sample,
                                   /*EndTime=*/5.0, /*OutputSamples=*/20,
                                   /*Seed=*/N * 131 + Batch);
        Csv.addRow({formatString("%zu", N), formatString("%zu", N),
                    formatString("%llu", (unsigned long long)Batch),
                    Sim->name(), formatString("%.6g", T.SimulationSeconds),
                    formatString("%.6g", T.IntegrationSeconds),
                    formatString("%zu", T.Failures)});
        if (T.SimulationSeconds < Best) {
          Best = T.SimulationSeconds;
          Winner = Sim->name();
        }
      }
      std::printf(" %16s", Winner.c_str());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n");
  saveCsv(Csv, "f1_map_symmetric.csv");
  return 0;
}
