//===- bench/bench_micro_fabric.cpp ---------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-node fabric scaling microbenchmark. Runs the same streaming
/// parameter sweep two ways:
///
///  * mode "sched": the in-process ShardedExecutor on one gpu-coarse
///    device — the single-node reference the fabric must not tax.
///  * mode "fabric": a NodeCoordinator over the in-process loopback
///    fabric feeding 1, 2, and 4 worker nodes (one gpu-coarse device
///    each), every grant crossing the full wire path — serialization,
///    framing, CRC, deserialization — in both directions.
///
/// Reported throughput is simulations per modeled makespan second
/// (the busiest node's modeled time); host wall time is recorded for
/// reference but not gated, so the bench holds on slow CI runners. A
/// healthy fabric shows near-linear modeled node scaling (>1.5x at 4
/// nodes) and a 1-node modeled throughput close to the in-process
/// executor's: the wire adds host-side cost, not modeled-device cost.
///
/// Output: a psg-bench-fabric-v1 JSON document (default
/// BENCH_fabric.json) gated by tools/psg-bench-compare. `--baseline
/// FILE` embeds a previously saved run object verbatim so the committed
/// file carries before/after numbers across PRs.
///
//===----------------------------------------------------------------------===//

#include "core/BatchEngine.h"
#include "fabric/LoopbackFabric.h"
#include "fabric/NodeCoordinator.h"
#include "fabric/NodeWorker.h"
#include "rbm/CuratedModels.h"
#include "sched/ShardedExecutor.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "vgpu/CostModel.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace psg;

namespace {

struct CaseResult {
  std::string ModelName;
  std::string Mode; ///< "sched" (in-process) or "fabric" (loopback).
  unsigned Nodes = 0;
  unsigned Devices = 0; ///< Total devices across the fleet.
  uint64_t Sims = 0;
  uint64_t Chunk = 0;
  uint64_t Shards = 0;
  uint64_t Requeues = 0;
  uint64_t Deaths = 0;
  uint64_t Duplicates = 0;
  double ModeledMakespanSeconds = 0.0;
  double SimsPerSecond = 0.0; ///< Modeled fleet throughput.
  double ShardImbalance = 0.0;
  double HostWallSeconds = 0.0;
  size_t Failures = 0;
};

/// The sweep every case runs: curated defaults with ±10% rate-constant
/// jitter, the coherent-neighbour regime of the paper's batches.
std::vector<Parameterization> makeSweep(const ReactionNetwork &Net,
                                        uint64_t Sims, uint64_t Seed) {
  std::vector<double> Defaults;
  Defaults.reserve(Net.numReactions());
  for (size_t R = 0; R < Net.numReactions(); ++R)
    Defaults.push_back(Net.reaction(R).RateConstant);

  Rng Generator(Seed);
  std::vector<Parameterization> Params(Sims);
  for (Parameterization &P : Params) {
    P.InitialState = Net.initialState();
    P.RateConstants = Defaults;
    for (double &K : P.RateConstants)
      K *= 0.9 + 0.2 * Generator.uniform();
  }
  return Params;
}

ParameterizationSource sourceOver(const std::vector<Parameterization> &Params,
                                  size_t &Next) {
  return [&Params, &Next](size_t MaxCount,
                          std::vector<Parameterization> &Out) -> size_t {
    const size_t Count = std::min(MaxCount, Params.size() - Next);
    for (size_t I = 0; I < Count; ++I)
      Out.push_back(Params[Next + I]);
    Next += Count;
    return Count;
  };
}

/// Discards every outcome; the bench measures distribution, not
/// reduction.
class NullSink final : public OutcomeSink {
public:
  size_t Count = 0;
  void consumeSubBatch(size_t, std::vector<SimulationOutcome> &B) override {
    Count += B.size();
  }
};

EngineOptions baseOptions(double EndTime, uint64_t Chunk) {
  EngineOptions Opts;
  Opts.SubBatchSize = Chunk;
  Opts.EndTime = EndTime;
  Opts.OutputSamples = 0;
  Opts.Solver.RelTol = 1e-6;
  Opts.Solver.AbsTol = 1e-9;
  return Opts;
}

/// In-process single-device reference: the throughput the 1-node fabric
/// case is judged against.
CaseResult measureSchedCase(const ReactionNetwork &Net,
                            const std::string &Name, double EndTime,
                            uint64_t Sims, uint64_t Chunk, unsigned Reps) {
  EngineOptions Opts = baseOptions(EndTime, Chunk);
  Opts.Sched.Devices = {"gpu-coarse"};
  Opts.Sched.ChunkSize = Chunk;
  Opts.Sched.WorkersPerDevice = 1;
  ShardedExecutor Executor(CostModel::paperSetup(), Opts, Opts.Sched);

  const std::vector<Parameterization> Params = makeSweep(Net, Sims, 42);
  auto runOnce = [&]() -> ShardScheduleReport {
    size_t Next = 0;
    ParameterizationSource Source = sourceOver(Params, Next);
    NullSink Sink;
    return Executor.streamParameterizations(Net, nullptr, Source, Sink);
  };
  runOnce(); // Warmup: worker pools, compiled model, throughput estimates.

  CaseResult R;
  R.ModelName = Name;
  R.Mode = "sched";
  R.Nodes = 1;
  R.Devices = 1;
  R.Sims = Sims;
  R.Chunk = Chunk;
  double BestMakespan = 0.0;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    WallTimer Timer;
    const ShardScheduleReport Report = runOnce();
    const double Wall = Timer.seconds();
    if (Rep == 0 || Report.ModeledMakespanSeconds < BestMakespan) {
      BestMakespan = Report.ModeledMakespanSeconds;
      R.Shards = Report.Shards;
      R.ShardImbalance = Report.ShardImbalance;
      R.HostWallSeconds = Wall;
      R.Failures = Report.Stream.Failures;
    }
  }
  R.ModeledMakespanSeconds = BestMakespan;
  R.SimsPerSecond =
      BestMakespan > 0.0 ? static_cast<double>(Sims) / BestMakespan : 0.0;
  std::printf("  %-14s in-process      %10.0f sims/s modeled (makespan "
              "%.4gs)\n",
              Name.c_str(), R.SimsPerSecond, R.ModeledMakespanSeconds);
  return R;
}

/// One full distributed sweep: fresh loopback fabric, worker threads,
/// coordinator, teardown. Cold-start cost lands in host wall time only.
FabricScheduleReport runFabricOnce(const ReactionNetwork &Net,
                                   const std::vector<Parameterization> &Params,
                                   const EngineOptions &Base, unsigned Nodes) {
  LoopbackFabric Fabric;
  std::unique_ptr<FabricEndpoint> CoordEp =
      Fabric.createEndpoint(CoordinatorNode);
  std::vector<std::unique_ptr<FabricEndpoint>> WorkerEps;
  for (unsigned N = 1; N <= Nodes; ++N)
    WorkerEps.push_back(Fabric.createEndpoint(N));

  FabricOptions Fab;
  Fab.Endpoint = CoordEp.get();
  for (unsigned N = 1; N <= Nodes; ++N)
    Fab.Workers.push_back(N);
  Fab.HeartbeatIntervalSeconds = 0.002;

  std::vector<std::thread> Threads;
  for (unsigned N = 0; N < Nodes; ++N)
    Threads.emplace_back([&, N] {
      SchedOptions Local;
      Local.Devices = {"gpu-coarse"};
      Local.WorkersPerDevice = 1;
      NodeWorker Worker(CostModel::paperSetup(), *WorkerEps[N], Local,
                        /*HeartbeatIntervalSeconds=*/0.005);
      Worker.serve(Net);
    });

  NodeCoordinator Coord(Base, Fab);
  size_t Next = 0;
  ParameterizationSource Source = sourceOver(Params, Next);
  NullSink Sink;
  FabricScheduleReport Report =
      Coord.streamParameterizations(Net, Source, Sink);
  Fabric.shutdown();
  for (std::thread &T : Threads)
    T.join();
  return Report;
}

CaseResult measureFabricCase(const ReactionNetwork &Net,
                             const std::string &Name, double EndTime,
                             uint64_t Sims, uint64_t Chunk, unsigned Nodes,
                             unsigned Reps) {
  EngineOptions Base = baseOptions(EndTime, Chunk);
  const std::vector<Parameterization> Params = makeSweep(Net, Sims, 42);
  runFabricOnce(Net, Params, Base, Nodes); // Warmup.

  CaseResult R;
  R.ModelName = Name;
  R.Mode = "fabric";
  R.Nodes = Nodes;
  R.Devices = Nodes;
  R.Sims = Sims;
  R.Chunk = Chunk;
  double BestMakespan = 0.0;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    WallTimer Timer;
    const FabricScheduleReport Report =
        runFabricOnce(Net, Params, Base, Nodes);
    const double Wall = Timer.seconds();
    if (Rep == 0 || Report.ModeledMakespanSeconds < BestMakespan) {
      BestMakespan = Report.ModeledMakespanSeconds;
      R.Shards = Report.Shards;
      R.Requeues = Report.Requeues;
      R.Deaths = Report.NodeDeaths;
      R.Duplicates = Report.DuplicateBatches;
      R.ShardImbalance = Report.ShardImbalance;
      R.HostWallSeconds = Wall;
      R.Failures = Report.Stream.Failures;
    }
  }
  R.ModeledMakespanSeconds = BestMakespan;
  R.SimsPerSecond =
      BestMakespan > 0.0 ? static_cast<double>(Sims) / BestMakespan : 0.0;
  std::printf("  %-14s %u node(s)       %10.0f sims/s modeled (makespan "
              "%.4gs, imbalance %.3f)\n",
              Name.c_str(), Nodes, R.SimsPerSecond, R.ModeledMakespanSeconds,
              R.ShardImbalance);
  return R;
}

void appendJsonCase(std::string &Out, const CaseResult &R, bool Last) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "      {\"model\": \"%s\", \"mode\": \"%s\", \"nodes\": %u, "
      "\"devices\": %u, \"sims\": %llu, \"chunk\": %llu, \"shards\": %llu, "
      "\"requeues\": %llu, \"deaths\": %llu, \"duplicates\": %llu, "
      "\"modeled_makespan_s\": %.6e, \"sims_per_sec\": %.1f, "
      "\"imbalance\": %.4f, \"host_wall_s\": %.6e, \"failures\": %zu}%s\n",
      R.ModelName.c_str(), R.Mode.c_str(), R.Nodes, R.Devices,
      (unsigned long long)R.Sims, (unsigned long long)R.Chunk,
      (unsigned long long)R.Shards, (unsigned long long)R.Requeues,
      (unsigned long long)R.Deaths, (unsigned long long)R.Duplicates,
      R.ModeledMakespanSeconds, R.SimsPerSecond, R.ShardImbalance,
      R.HostWallSeconds, R.Failures, Last ? "" : ",");
  Out += Buf;
}

std::string runObjectJson(const std::string &Label,
                          const std::vector<CaseResult> &Results) {
  std::string Out;
  Out += "{\n    \"label\": \"" + Label + "\",\n";
  Out += "    \"personality\": \"gpu-coarse\",\n";
  Out += "    \"metric\": \"modeled_makespan_throughput\",\n";
  Out += "    \"cases\": [\n";
  for (size_t I = 0; I < Results.size(); ++I)
    appendJsonCase(Out, Results[I], I + 1 == Results.size());
  Out += "    ],\n";

  // Node scaling per model: each fabric entry's throughput over its
  // model's 1-node fabric case.
  Out += "    \"scaling\": [\n";
  std::string Rows;
  double BaseThroughput = 0.0;
  for (const CaseResult &R : Results) {
    if (R.Mode != "fabric")
      continue;
    if (R.Nodes == 1) {
      BaseThroughput = R.SimsPerSecond;
      continue;
    }
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "      {\"model\": \"%s\", \"nodes\": %u, "
                  "\"speedup\": %.3f},\n",
                  R.ModelName.c_str(), R.Nodes,
                  BaseThroughput > 0.0 ? R.SimsPerSecond / BaseThroughput
                                       : 0.0);
    Rows += Buf;
  }
  if (Rows.size() >= 2)
    Rows.erase(Rows.size() - 2, 1); // Trailing comma.
  Out += Rows;
  Out += "    ],\n";

  // Fabric tax per model: 1-node loopback modeled throughput over the
  // in-process single-device executor's. The wire moves bytes, not
  // modeled device time, so this must stay near 1.
  Out += "    \"overhead\": [\n";
  Rows.clear();
  std::map<std::string, double> SchedBase;
  for (const CaseResult &R : Results)
    if (R.Mode == "sched")
      SchedBase[R.ModelName] = R.SimsPerSecond;
  for (const CaseResult &R : Results) {
    if (R.Mode != "fabric" || R.Nodes != 1)
      continue;
    const double Base = SchedBase.count(R.ModelName)
                            ? SchedBase[R.ModelName]
                            : 0.0;
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "      {\"model\": \"%s\", "
                  "\"fabric_vs_sched\": %.3f},\n",
                  R.ModelName.c_str(),
                  Base > 0.0 ? R.SimsPerSecond / Base : 0.0);
    Rows += Buf;
  }
  if (Rows.size() >= 2)
    Rows.erase(Rows.size() - 2, 1);
  Out += Rows;
  Out += "    ]\n  }";
  return Out;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return "";
  std::ostringstream Ss;
  Ss << In.rdbuf();
  std::string S = Ss.str();
  while (!S.empty() && (S.back() == '\n' || S.back() == ' '))
    S.pop_back();
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = "BENCH_fabric.json";
  std::string BaselinePath;
  std::string Label = "current";
  bool CasesOnly = false;
  unsigned Reps = 3;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto next = [&]() -> std::string {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--json")
      JsonPath = next();
    else if (Arg == "--baseline")
      BaselinePath = next();
    else if (Arg == "--label")
      Label = next();
    else if (Arg == "--cases-only")
      CasesOnly = true;
    else if (Arg == "--reps")
      Reps = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--baseline PATH] [--label TEXT] "
                   "[--reps N] [--cases-only]\n",
                   Argv[0]);
      return 2;
    }
  }

  std::printf("== micro-fabric: cross-node loopback sweep scaling ==\n");
  const ReactionNetwork Brussel = makeBrusselatorNetwork();
  const ReactionNetwork Decay = makeDecayChainNetwork(8, 0.5);

  struct Sweep {
    const ReactionNetwork *Net;
    const char *Name;
    double EndTime;
    uint64_t Sims;
    uint64_t Chunk;
  };
  const Sweep Sweeps[] = {{&Brussel, "brusselator", 2.0, 512, 32},
                          {&Decay, "decay-chain-8", 2.0, 512, 32}};

  metrics().reset();
  std::vector<CaseResult> Results;
  const unsigned NodeCounts[] = {1, 2, 4};
  for (const Sweep &S : Sweeps) {
    Results.push_back(
        measureSchedCase(*S.Net, S.Name, S.EndTime, S.Sims, S.Chunk, Reps));
    for (unsigned Nodes : NodeCounts)
      Results.push_back(measureFabricCase(*S.Net, S.Name, S.EndTime, S.Sims,
                                          S.Chunk, Nodes, Reps));
  }

  const MetricsSnapshot Snapshot = metrics().snapshot();
  const std::string RunJson = runObjectJson(Label, Results);

  std::string Doc;
  if (CasesOnly) {
    Doc = RunJson;
    Doc += "\n";
  } else {
    Doc += "{\n  \"schema\": \"psg-bench-fabric-v1\",\n";
    std::string Baseline = BaselinePath.empty() ? "" : slurp(BaselinePath);
    Doc += "  \"baseline\": ";
    Doc += Baseline.empty() ? "null" : Baseline;
    Doc += ",\n  \"current\": ";
    Doc += RunJson;
    char Buf[640];
    std::snprintf(
        Buf, sizeof(Buf),
        ",\n  \"counters\": {\"psg.fabric.shards\": %llu, "
        "\"psg.fabric.lost_simulations\": %llu, "
        "\"psg.fabric.node_deaths\": %llu, "
        "\"psg.fabric.duplicates_suppressed\": %llu, "
        "\"psg.fabric.frames_sent\": %llu, "
        "\"psg.fabric.bytes_sent\": %llu}\n}\n",
        (unsigned long long)Snapshot.counterValue("psg.fabric.shards"),
        (unsigned long long)Snapshot.counterValue(
            "psg.fabric.lost_simulations"),
        (unsigned long long)Snapshot.counterValue("psg.fabric.node_deaths"),
        (unsigned long long)Snapshot.counterValue(
            "psg.fabric.duplicates_suppressed"),
        (unsigned long long)Snapshot.counterValue("psg.fabric.frames_sent"),
        (unsigned long long)Snapshot.counterValue("psg.fabric.bytes_sent"));
    Doc += Buf;
  }

  std::ofstream Out(JsonPath);
  Out << Doc;
  Out.close();
  std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
