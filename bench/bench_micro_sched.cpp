//===- bench/bench_micro_sched.cpp ----------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multi-device scheduler scaling microbenchmark. Runs the same streaming
/// parameter sweep through the sched::ShardedExecutor at 1, 2, and 4
/// logical gpu-coarse devices (one host worker each) and reports the
/// fleet's modeled throughput — simulations per modeled makespan second,
/// where the makespan is the busiest device's modeled time, the devices
/// running concurrently in the model even where the host serializes
/// them. Host wall time is recorded for reference but is NOT the gated
/// quantity: the bench must hold on single-core CI runners, and the
/// repo's contract is the modeled-hardware timing throughout.
///
/// A healthy scheduler shows near-linear modeled scaling on these
/// homogeneous fleets (the acceptance gate is >1.5x at 4 devices) with
/// low shard imbalance; a scheduling regression — skewed assignment,
/// broken stealing, serialization — shows up as a collapsed speedup or a
/// ballooning imbalance long before it would be visible on real wall
/// clocks.
///
/// Output: a psg-bench-sched-v1 JSON document (default BENCH_sched.json)
/// with per-case modeled throughput and scheduling telemetry plus the
/// per-model scaling table. `--baseline FILE` embeds a previously saved
/// run object verbatim so the committed file carries before/after
/// numbers across PRs.
///
//===----------------------------------------------------------------------===//

#include "core/BatchEngine.h"
#include "rbm/CuratedModels.h"
#include "sched/ShardedExecutor.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "vgpu/CostModel.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace psg;

namespace {

struct CaseResult {
  std::string ModelName;
  std::string Personality;
  unsigned Devices = 0;
  uint64_t Sims = 0;
  uint64_t Chunk = 0;
  uint64_t Shards = 0;
  uint64_t Steals = 0;
  double ModeledMakespanSeconds = 0.0;
  double SimsPerSecond = 0.0; ///< Modeled fleet throughput.
  double ShardImbalance = 0.0;
  double HostWallSeconds = 0.0;
  size_t Failures = 0;
};

/// The sweep every case runs: curated defaults with ±10% rate-constant
/// jitter, the coherent-neighbour regime of the paper's batches.
std::vector<Parameterization> makeSweep(const ReactionNetwork &Net,
                                        uint64_t Sims, uint64_t Seed) {
  std::vector<double> Defaults;
  Defaults.reserve(Net.numReactions());
  for (size_t R = 0; R < Net.numReactions(); ++R)
    Defaults.push_back(Net.reaction(R).RateConstant);

  Rng Generator(Seed);
  std::vector<Parameterization> Params(Sims);
  for (Parameterization &P : Params) {
    P.InitialState = Net.initialState();
    P.RateConstants = Defaults;
    for (double &K : P.RateConstants)
      K *= 0.9 + 0.2 * Generator.uniform();
  }
  return Params;
}

/// Discards every outcome; the bench measures scheduling, not reduction.
class NullSink final : public OutcomeSink {
public:
  size_t Count = 0;
  void consumeSubBatch(size_t, std::vector<SimulationOutcome> &B) override {
    Count += B.size();
  }
};

CaseResult measureCase(const ReactionNetwork &Net, const std::string &Name,
                       double EndTime, uint64_t Sims, uint64_t Chunk,
                       unsigned Devices, unsigned Reps) {
  EngineOptions Opts;
  Opts.SubBatchSize = Chunk;
  Opts.EndTime = EndTime;
  Opts.OutputSamples = 0;
  Opts.Solver.RelTol = 1e-6;
  Opts.Solver.AbsTol = 1e-9;
  Opts.Sched.Devices.assign(Devices, "gpu-coarse");
  Opts.Sched.ChunkSize = Chunk;
  Opts.Sched.WorkersPerDevice = 1;
  ShardedExecutor Executor(CostModel::paperSetup(), Opts, Opts.Sched);

  const std::vector<Parameterization> Params = makeSweep(Net, Sims, 42);
  auto runOnce = [&]() -> ShardScheduleReport {
    size_t Next = 0;
    ParameterizationSource Source =
        [&](size_t MaxCount, std::vector<Parameterization> &Out) -> size_t {
      const size_t Count = std::min(MaxCount, Params.size() - Next);
      for (size_t I = 0; I < Count; ++I)
        Out.push_back(Params[Next + I]);
      Next += Count;
      return Count;
    };
    NullSink Sink;
    return Executor.streamParameterizations(Net, nullptr, Source, Sink);
  };

  // Warmup: populates worker pools, the compiled model, and the
  // scheduler's per-device throughput estimates.
  runOnce();

  CaseResult R;
  R.ModelName = Name;
  R.Personality = "gpu-coarse";
  R.Devices = Devices;
  R.Sims = Sims;
  R.Chunk = Chunk;
  double BestMakespan = 0.0;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    WallTimer Timer;
    const ShardScheduleReport Report = runOnce();
    const double Wall = Timer.seconds();
    const double Makespan = Report.ModeledMakespanSeconds;
    if (Rep == 0 || Makespan < BestMakespan) {
      BestMakespan = Makespan;
      R.Shards = Report.Shards;
      R.Steals = Report.Steals;
      R.ShardImbalance = Report.ShardImbalance;
      R.HostWallSeconds = Wall;
      R.Failures = Report.Stream.Failures;
    }
  }
  R.ModeledMakespanSeconds = BestMakespan;
  R.SimsPerSecond =
      BestMakespan > 0.0 ? static_cast<double>(Sims) / BestMakespan : 0.0;
  std::printf("  %-14s %u device(s)  %10.0f sims/s modeled (makespan "
              "%.4gs, imbalance %.3f, %llu steals)\n",
              Name.c_str(), Devices, R.SimsPerSecond,
              R.ModeledMakespanSeconds, R.ShardImbalance,
              (unsigned long long)R.Steals);
  return R;
}

void appendJsonCase(std::string &Out, const CaseResult &R, bool Last) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "      {\"model\": \"%s\", \"personality\": \"%s\", \"devices\": %u, "
      "\"sims\": %llu, \"chunk\": %llu, \"shards\": %llu, \"steals\": %llu, "
      "\"modeled_makespan_s\": %.6e, \"sims_per_sec\": %.1f, "
      "\"imbalance\": %.4f, \"host_wall_s\": %.6e, \"failures\": %zu}%s\n",
      R.ModelName.c_str(), R.Personality.c_str(), R.Devices,
      (unsigned long long)R.Sims, (unsigned long long)R.Chunk,
      (unsigned long long)R.Shards, (unsigned long long)R.Steals,
      R.ModeledMakespanSeconds, R.SimsPerSecond, R.ShardImbalance,
      R.HostWallSeconds, R.Failures, Last ? "" : ",");
  Out += Buf;
}

std::string runObjectJson(const std::string &Label,
                          const std::vector<CaseResult> &Results) {
  std::string Out;
  Out += "{\n    \"label\": \"" + Label + "\",\n";
  Out += "    \"personality\": \"gpu-coarse\",\n";
  Out += "    \"metric\": \"modeled_makespan_throughput\",\n";
  Out += "    \"cases\": [\n";
  for (size_t I = 0; I < Results.size(); ++I)
    appendJsonCase(Out, Results[I], I + 1 == Results.size());
  Out += "    ],\n";
  // Cases per model run in device-count order starting at 1; the scaling
  // table is each entry's throughput over its model's 1-device case.
  Out += "    \"scaling\": [\n";
  std::string Rows;
  double BaseThroughput = 0.0;
  for (size_t I = 0; I < Results.size(); ++I) {
    const CaseResult &R = Results[I];
    if (R.Devices == 1) {
      BaseThroughput = R.SimsPerSecond;
      continue;
    }
    char Buf[256];
    std::snprintf(Buf, sizeof(Buf),
                  "      {\"model\": \"%s\", \"devices\": %u, "
                  "\"speedup\": %.3f}%s\n",
                  R.ModelName.c_str(), R.Devices,
                  BaseThroughput > 0.0 ? R.SimsPerSecond / BaseThroughput
                                       : 0.0,
                  I + 1 < Results.size() ? "," : "");
    Rows += Buf;
  }
  if (!Rows.empty() && Rows[Rows.size() - 2] == ',')
    Rows.erase(Rows.size() - 2, 1);
  Out += Rows;
  Out += "    ]\n  }";
  return Out;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return "";
  std::ostringstream Ss;
  Ss << In.rdbuf();
  std::string S = Ss.str();
  while (!S.empty() && (S.back() == '\n' || S.back() == ' '))
    S.pop_back();
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = "BENCH_sched.json";
  std::string BaselinePath;
  std::string Label = "current";
  bool CasesOnly = false;
  unsigned Reps = 3;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto next = [&]() -> std::string {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--json")
      JsonPath = next();
    else if (Arg == "--baseline")
      BaselinePath = next();
    else if (Arg == "--label")
      Label = next();
    else if (Arg == "--cases-only")
      CasesOnly = true;
    else if (Arg == "--reps")
      Reps = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--baseline PATH] [--label TEXT] "
                   "[--reps N] [--cases-only]\n",
                   Argv[0]);
      return 2;
    }
  }

  std::printf("== micro-sched: multi-device sharded sweep scaling ==\n");
  const ReactionNetwork Brussel = makeBrusselatorNetwork();
  const ReactionNetwork Decay = makeDecayChainNetwork(8, 0.5);

  struct Sweep {
    const ReactionNetwork *Net;
    const char *Name;
    double EndTime;
    uint64_t Sims;
    uint64_t Chunk;
  };
  const Sweep Sweeps[] = {{&Brussel, "brusselator", 2.0, 512, 32},
                          {&Decay, "decay-chain-8", 2.0, 512, 32}};

  metrics().reset();
  std::vector<CaseResult> Results;
  const unsigned DeviceCounts[] = {1, 2, 4};
  for (const Sweep &S : Sweeps)
    for (unsigned Devices : DeviceCounts)
      Results.push_back(measureCase(*S.Net, S.Name, S.EndTime, S.Sims,
                                    S.Chunk, Devices, Reps));

  const MetricsSnapshot Snapshot = metrics().snapshot();
  const std::string RunJson = runObjectJson(Label, Results);

  std::string Doc;
  if (CasesOnly) {
    Doc = RunJson;
    Doc += "\n";
  } else {
    Doc += "{\n  \"schema\": \"psg-bench-sched-v1\",\n";
    std::string Baseline = BaselinePath.empty() ? "" : slurp(BaselinePath);
    Doc += "  \"baseline\": ";
    Doc += Baseline.empty() ? "null" : Baseline;
    Doc += ",\n  \"current\": ";
    Doc += RunJson;
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        ",\n  \"counters\": {\"psg.sched.shards\": %llu, "
        "\"psg.sched.steals\": %llu, \"psg.sched.requeues\": %llu, "
        "\"psg.sched.lost_simulations\": %llu}\n}\n",
        (unsigned long long)Snapshot.counterValue("psg.sched.shards"),
        (unsigned long long)Snapshot.counterValue("psg.sched.steals"),
        (unsigned long long)Snapshot.counterValue("psg.sched.requeues"),
        (unsigned long long)Snapshot.counterValue(
            "psg.sched.lost_simulations"));
    Doc += Buf;
  }

  std::ofstream Out(JsonPath);
  Out << Doc;
  Out.close();
  std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
