//===- bench/bench_micro_dispatch.cpp -------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Host-side dispatch overhead microbenchmark. Measures how many
/// simulations per second the engine can *dispatch* — model resolution,
/// per-simulation parameterization, solver acquisition, and outcome
/// collection — separately from the numerical integration itself:
///
/// - "dispatch" rows integrate over an empty time window (TEnd == T0), so
///   every solver returns immediately and the measured wall time is pure
///   host dispatch overhead (the `batch x reactions` term of the seed
///   implementation);
/// - "short-horizon" rows integrate a tiny window (a few accepted steps)
///   as a realism check that dispatch savings survive contact with actual
///   numerics.
///
/// Cases: small (repressilator) and large (autophagy surrogate) curated
/// models, batch in {64, 512, 2048}, through a BatchEngine with the
/// default 512-point sub-batches (so batch 2048 exercises 4 sub-batch
/// dispatches and the engine's cross-run compilation cache).
///
/// Output: a psg-bench-dispatch-v1 JSON document (default
/// BENCH_dispatch.json) holding the measured cases plus the reuse
/// counters proving shared-compilation behaviour. `--baseline FILE`
/// embeds a previously saved run object verbatim so the committed file
/// carries before/after numbers across PRs.
///
//===----------------------------------------------------------------------===//

#include "core/BatchEngine.h"
#include "rbm/CuratedModels.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "vgpu/CostModel.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace psg;

namespace {

struct CaseResult {
  std::string ModelName;
  size_t Species = 0;
  size_t Reactions = 0;
  uint64_t Batch = 0;
  uint64_t SubBatches = 0;
  std::string Mode; ///< "dispatch" or "short-horizon".
  double BestWallSeconds = 0.0;
  double MeanWallSeconds = 0.0;
  double SimsPerSecond = 0.0;
  size_t Failures = 0;
};

/// Perturbed full-batch parameterizations (the per-rep copies are taken
/// outside the timed region).
std::vector<Parameterization> makeParams(const ReactionNetwork &Net,
                                         uint64_t Batch, uint64_t Seed) {
  std::vector<double> Defaults;
  Defaults.reserve(Net.numReactions());
  for (size_t R = 0; R < Net.numReactions(); ++R)
    Defaults.push_back(Net.reaction(R).RateConstant);
  const std::vector<double> Y0 = Net.initialState();

  Rng Generator(Seed);
  std::vector<Parameterization> Params(Batch);
  for (uint64_t I = 0; I < Batch; ++I) {
    Params[I].RateConstants = Defaults;
    for (double &K : Params[I].RateConstants)
      K *= 0.9 + 0.2 * Generator.uniform();
    Params[I].InitialState = Y0;
  }
  return Params;
}

CaseResult measureCase(const ReactionNetwork &Net, const std::string &Name,
                       uint64_t Batch, bool ShortHorizon,
                       const std::string &SimName, unsigned Reps) {
  EngineOptions Opts;
  Opts.SimulatorName = SimName;
  Opts.SubBatchSize = 512;
  Opts.OutputSamples = 0;
  Opts.StartTime = 0.0;
  Opts.EndTime = ShortHorizon ? 1e-4 : 0.0;
  Opts.Solver.RelTol = 1e-4;
  Opts.Solver.AbsTol = 1e-9;
  BatchEngine Engine(CostModel::paperSetup(), Opts);

  const std::vector<Parameterization> Base = makeParams(Net, Batch, 42);

  // Warmup dispatch: brings the engine to its steady state (compilation
  // cache warm, per-worker solver pools populated).
  {
    std::vector<Parameterization> Warm(
        Base.begin(), Base.begin() + std::min<uint64_t>(Batch, 64));
    Engine.runParameterizations(Net, std::move(Warm));
  }

  CaseResult R;
  R.ModelName = Name;
  R.Species = Net.numSpecies();
  R.Reactions = Net.numReactions();
  R.Batch = Batch;
  R.Mode = ShortHorizon ? "short-horizon" : "dispatch";
  double Best = 0.0, Sum = 0.0;
  for (unsigned Rep = 0; Rep < Reps; ++Rep) {
    std::vector<Parameterization> Params = Base;
    WallTimer Timer;
    EngineReport Report = Engine.runParameterizations(Net, std::move(Params));
    const double Wall = Timer.seconds();
    Sum += Wall;
    if (Rep == 0 || Wall < Best)
      Best = Wall;
    R.SubBatches = Report.SubBatches;
    R.Failures = Report.Failures;
  }
  R.BestWallSeconds = Best;
  R.MeanWallSeconds = Sum / Reps;
  R.SimsPerSecond =
      Best > 0.0 ? static_cast<double>(Batch) / Best : 0.0;
  std::printf("  %-20s batch %5llu %-13s %10.0f sims/s (best of %u, "
              "%zu failures)\n",
              Name.c_str(), (unsigned long long)Batch, R.Mode.c_str(),
              R.SimsPerSecond, Reps, R.Failures);
  return R;
}

void appendJsonCase(std::string &Out, const CaseResult &R, bool Last) {
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "      {\"model\": \"%s\", \"species\": %zu, \"reactions\": %zu, "
      "\"batch\": %llu, \"sub_batches\": %llu, \"mode\": \"%s\", "
      "\"best_wall_s\": %.6e, \"mean_wall_s\": %.6e, "
      "\"sims_per_sec\": %.1f, \"failures\": %zu}%s\n",
      R.ModelName.c_str(), R.Species, R.Reactions,
      (unsigned long long)R.Batch, (unsigned long long)R.SubBatches,
      R.Mode.c_str(), R.BestWallSeconds, R.MeanWallSeconds, R.SimsPerSecond,
      R.Failures, Last ? "" : ",");
  Out += Buf;
}

std::string runObjectJson(const std::string &Label,
                          const std::vector<CaseResult> &Results) {
  std::string Out;
  Out += "{\n    \"label\": \"" + Label + "\",\n";
  Out += "    \"simulator\": \"gpu-coarse\",\n";
  Out += "    \"cases\": [\n";
  for (size_t I = 0; I < Results.size(); ++I)
    appendJsonCase(Out, Results[I], I + 1 == Results.size());
  Out += "    ]\n  }";
  return Out;
}

std::string slurp(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return "";
  std::ostringstream Ss;
  Ss << In.rdbuf();
  std::string S = Ss.str();
  while (!S.empty() && (S.back() == '\n' || S.back() == ' '))
    S.pop_back();
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath = "BENCH_dispatch.json";
  std::string BaselinePath;
  std::string Label = "current";
  bool CasesOnly = false;
  unsigned Reps = 3;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto next = [&]() -> std::string {
      return I + 1 < Argc ? Argv[++I] : "";
    };
    if (Arg == "--json")
      JsonPath = next();
    else if (Arg == "--baseline")
      BaselinePath = next();
    else if (Arg == "--label")
      Label = next();
    else if (Arg == "--cases-only")
      CasesOnly = true;
    else if (Arg == "--reps")
      Reps = static_cast<unsigned>(std::strtoul(next().c_str(), nullptr, 10));
    else {
      std::fprintf(stderr,
                   "usage: %s [--json PATH] [--baseline PATH] [--label TEXT] "
                   "[--reps N] [--cases-only]\n",
                   Argv[0]);
      return 2;
    }
  }

  std::printf("== micro-dispatch: host-side batch dispatch overhead ==\n");
  const ReactionNetwork Small = makeRepressilatorNetwork();
  const AutophagySurrogate Large = makeAutophagySurrogate();

  metrics().reset();
  std::vector<CaseResult> Results;
  const uint64_t Batches[] = {64, 512, 2048};
  for (const auto &[Net, Name] :
       {std::pair<const ReactionNetwork &, const char *>{Small,
                                                         "repressilator"},
        std::pair<const ReactionNetwork &, const char *>{
            Large.Net, "autophagy-surrogate"}}) {
    for (uint64_t Batch : Batches) {
      Results.push_back(
          measureCase(Net, Name, Batch, /*ShortHorizon=*/false, "gpu-coarse",
                      Reps));
      Results.push_back(
          measureCase(Net, Name, Batch, /*ShortHorizon=*/true, "gpu-coarse",
                      Reps));
    }
  }

  const MetricsSnapshot Snapshot = metrics().snapshot();
  const std::string RunJson = runObjectJson(Label, Results);

  std::string Doc;
  if (CasesOnly) {
    Doc = RunJson;
    Doc += "\n";
  } else {
    Doc += "{\n  \"schema\": \"psg-bench-dispatch-v1\",\n";
    std::string Baseline =
        BaselinePath.empty() ? "" : slurp(BaselinePath);
    Doc += "  \"baseline\": ";
    Doc += Baseline.empty() ? "null" : Baseline;
    Doc += ",\n  \"current\": ";
    Doc += RunJson;
    char Buf[512];
    std::snprintf(
        Buf, sizeof(Buf),
        ",\n  \"counters\": {\"psg.rbm.compilations\": %llu, "
        "\"psg.rbm.compile_reuses\": %llu, "
        "\"psg.ode.workspace_reuses\": %llu, "
        "\"psg.engine.sub_batches\": %llu}\n}\n",
        (unsigned long long)Snapshot.counterValue("psg.rbm.compilations"),
        (unsigned long long)Snapshot.counterValue("psg.rbm.compile_reuses"),
        (unsigned long long)Snapshot.counterValue("psg.ode.workspace_reuses"),
        (unsigned long long)Snapshot.counterValue("psg.engine.sub_batches"));
    Doc += Buf;
  }

  std::ofstream Out(JsonPath);
  Out << Doc;
  Out.close();
  std::printf("wrote %s\n", JsonPath.c_str());
  return 0;
}
