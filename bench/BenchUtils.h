//===- bench/BenchUtils.h - Shared experiment machinery ---------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the experiment benches: sampled batch measurement
/// (operation counts measured on a representative subset of a batch,
/// modeled time evaluated at the full batch size -- documented in
/// EXPERIMENTS.md), winner maps, and CSV output locations.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_BENCH_BENCHUTILS_H
#define PSG_BENCH_BENCHUTILS_H

#include "rbm/SyntheticGenerator.h"
#include "sim/Simulator.h"
#include "support/Csv.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <memory>
#include <string>
#include <sys/stat.h>

namespace psg {
namespace bench {

/// Where bench CSVs land (created on demand).
inline std::string resultsDir() {
  const char *Dir = "bench_results";
  ::mkdir(Dir, 0755);
  return Dir;
}

/// Saves \p Csv under bench_results/, reporting on stdout.
inline void saveCsv(const CsvWriter &Csv, const std::string &Name) {
  const std::string Path = resultsDir() + "/" + Name;
  if (Status S = Csv.saveToFile(Path); !S)
    std::printf("  (could not save %s: %s)\n", Path.c_str(),
                S.message().c_str());
  else
    std::printf("  wrote %s (%zu rows)\n", Path.c_str(), Csv.numRows());
}

/// Modeled times of one simulator on one workload cell.
struct CellTiming {
  double SimulationSeconds = 0;
  double IntegrationSeconds = 0;
  size_t Failures = 0;
};

/// Measures one (model, batch) cell for one simulator personality.
///
/// Operation counts are measured by really integrating \p SampleCount
/// representative perturbed parameterizations; the modeled time is then
/// evaluated at the requested \p FullBatch. SampleCount == FullBatch
/// reproduces the exhaustive measurement.
inline CellTiming measureCell(Simulator &Sim, const CostModel &Model,
                              const ReactionNetwork &Net, uint64_t FullBatch,
                              uint64_t SampleCount, double EndTime,
                              size_t OutputSamples, uint64_t Seed) {
  BatchSpec Spec;
  Spec.Model = &Net;
  Spec.Batch = std::min<uint64_t>(SampleCount, FullBatch);
  Spec.EndTime = EndTime;
  Spec.OutputSamples = OutputSamples;
  Spec.Options.MaxSteps = 200000;
  Rng Generator(Seed);
  for (uint64_t I = 0; I < Spec.Batch; ++I) {
    std::vector<double> K;
    K.reserve(Net.numReactions());
    for (size_t R = 0; R < Net.numReactions(); ++R)
      K.push_back(Net.reaction(R).RateConstant);
    perturbRateConstants(K, Generator);
    Spec.RateConstantSets.push_back(std::move(K));
  }
  BatchResult Result = Sim.run(Spec);

  CellTiming Timing;
  Timing.Failures = Result.Failures;
  Timing.SimulationSeconds =
      Model.simulationTime(Sim.backend(), Result.AverageWork, FullBatch)
          .total();
  Timing.IntegrationSeconds =
      Model.integrationTime(Sim.backend(), Result.AverageWork, FullBatch)
          .total();
  return Timing;
}

/// Generates the evaluation's synthetic RBM of size N x M.
inline ReactionNetwork syntheticModel(size_t N, size_t M, uint64_t Seed) {
  SyntheticModelOptions Opts;
  Opts.NumSpecies = N;
  Opts.NumReactions = M;
  Opts.Seed = Seed;
  return generateSyntheticModel(Opts);
}

/// Picks the per-cell measurement sample: smaller models afford more
/// real simulations.
inline uint64_t sampleFor(size_t N, uint64_t Batch) {
  const uint64_t Cap = N <= 64 ? 24 : (N <= 128 ? 12 : 4);
  return std::min<uint64_t>(Cap, Batch);
}

} // namespace bench
} // namespace psg

#endif // PSG_BENCH_BENCHUTILS_H
