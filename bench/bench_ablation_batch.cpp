//===- bench/bench_ablation_batch.cpp - Ablation A2 -----------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// A2: batch-size sweep of the fine+coarse engine. Reproduces the two
// saturation findings of the paper line: per-simulation modeled time is
// minimized around batches of 512 (the sub-batch the engine defaults
// to), and throughput degrades beyond ~2048 concurrent simulations as
// dynamic-parallelism launch queues saturate.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace psg;
using namespace psg::bench;

int main() {
  CostModel Model = CostModel::paperSetup();
  auto Engine = createSimulator("psg-engine", Model);

  ReactionNetwork Net = syntheticModel(128, 128, /*Seed=*/321);
  std::printf("== A2: batch-size sweep (model 128x128) ==\n\n");
  std::printf("%10s %24s %24s\n", "batch", "modeled s / simulation",
              "dp penalty factor");

  CsvWriter Csv({"batch", "modeled_seconds_per_sim", "dp_penalty"});
  double Best = 1e300;
  uint64_t BestBatch = 0;
  for (uint64_t Batch :
       {1ull, 8ull, 32ull, 128ull, 512ull, 1024ull, 2048ull, 4096ull,
        8192ull}) {
    CellTiming T = measureCell(**Engine, Model, Net, Batch,
                               sampleFor(128, Batch), 5.0, 20,
                               /*Seed=*/5);
    const double PerSim =
        T.SimulationSeconds / static_cast<double>(Batch);
    if (PerSim < Best) {
      Best = PerSim;
      BestBatch = Batch;
    }
    std::printf("%10llu %24.4g %24.3f\n", (unsigned long long)Batch,
                PerSim, Model.dpPenalty(Batch));
    Csv.addRow({formatString("%llu", (unsigned long long)Batch),
                formatString("%.6g", PerSim),
                formatString("%.4f", Model.dpPenalty(Batch))});
  }
  std::printf("\nthroughput-optimal batch: %llu (the engine's default "
              "sub-batch is 512)\n\n",
              (unsigned long long)BestBatch);
  saveCsv(Csv, "a2_ablation_batch.csv");
  return 0;
}
