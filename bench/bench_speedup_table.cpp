//===- bench/bench_speedup_table.cpp - Experiment T1 ----------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// T1: headline speedups of the fine+coarse engine over every comparator,
// for simulation time (with I/O) and integration time only -- the
// reproduction of the paper-line table reporting up to ~855x vs VODE,
// ~366x/~79x vs LSODA, ~298x/760x vs the fine-grained comparator and
// ~7x/17x vs the coarse-grained one.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

using namespace psg;
using namespace psg::bench;

int main() {
  CostModel Model = CostModel::paperSetup();
  auto Sims = createAllSimulators(Model);
  Simulator *Engine = Sims.back().get(); // psg-engine.

  struct Workload {
    size_t N, M;
    uint64_t Batch;
  };
  const Workload Workloads[] = {
      {64, 64, 512}, {128, 128, 512}, {256, 256, 512},
      {256, 256, 2048}, {512, 512, 512}};

  std::printf("== T1: engine speedup over the comparators ==\n");
  std::printf("(speedup = comparator modeled time / engine modeled time; "
              "sim = with I/O, int = integration only)\n\n");
  std::printf("%16s |", "workload");
  for (size_t I = 0; I + 1 < Sims.size(); ++I)
    std::printf(" %22s", Sims[I]->name().c_str());
  std::printf("\n");

  CsvWriter Csv({"n", "m", "batch", "comparator", "speedup_simulation",
                 "speedup_integration"});
  for (const Workload &W : Workloads) {
    ReactionNetwork Net = syntheticModel(W.N, W.M, /*Seed=*/5 + W.N);
    CellTiming EngineTime =
        measureCell(*Engine, Model, Net, W.Batch, sampleFor(W.N, W.Batch),
                    5.0, 20, /*Seed=*/W.N + W.Batch);
    std::printf("%16s |",
                formatString("%zux%zu b=%llu", W.N, W.M,
                             (unsigned long long)W.Batch)
                    .c_str());
    for (size_t I = 0; I + 1 < Sims.size(); ++I) {
      CellTiming T =
          measureCell(*Sims[I], Model, Net, W.Batch,
                      sampleFor(W.N, W.Batch), 5.0, 20,
                      /*Seed=*/W.N + W.Batch);
      const double SpeedSim =
          T.SimulationSeconds / EngineTime.SimulationSeconds;
      const double SpeedInt =
          T.IntegrationSeconds / EngineTime.IntegrationSeconds;
      std::printf(" %10.1fx /%8.1fx", SpeedSim, SpeedInt);
      Csv.addRow({formatString("%zu", W.N), formatString("%zu", W.M),
                  formatString("%llu", (unsigned long long)W.Batch),
                  Sims[I]->name(), formatString("%.3f", SpeedSim),
                  formatString("%.3f", SpeedInt)});
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n");
  saveCsv(Csv, "t1_speedup_table.csv");
  return 0;
}
