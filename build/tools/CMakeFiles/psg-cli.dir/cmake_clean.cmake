file(REMOVE_RECURSE
  "CMakeFiles/psg-cli.dir/psg-cli.cpp.o"
  "CMakeFiles/psg-cli.dir/psg-cli.cpp.o.d"
  "psg-cli"
  "psg-cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psg-cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
