# Empty compiler generated dependencies file for psg-cli.
# This may be replaced when dependencies are built.
