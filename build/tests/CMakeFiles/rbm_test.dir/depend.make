# Empty dependencies file for rbm_test.
# This may be replaced when dependencies are built.
