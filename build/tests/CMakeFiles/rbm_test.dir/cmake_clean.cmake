file(REMOVE_RECURSE
  "CMakeFiles/rbm_test.dir/rbm_test.cpp.o"
  "CMakeFiles/rbm_test.dir/rbm_test.cpp.o.d"
  "rbm_test"
  "rbm_test.pdb"
  "rbm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
