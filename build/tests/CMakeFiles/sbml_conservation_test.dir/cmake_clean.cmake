file(REMOVE_RECURSE
  "CMakeFiles/sbml_conservation_test.dir/sbml_conservation_test.cpp.o"
  "CMakeFiles/sbml_conservation_test.dir/sbml_conservation_test.cpp.o.d"
  "sbml_conservation_test"
  "sbml_conservation_test.pdb"
  "sbml_conservation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbml_conservation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
