# Empty compiler generated dependencies file for sbml_conservation_test.
# This may be replaced when dependencies are built.
