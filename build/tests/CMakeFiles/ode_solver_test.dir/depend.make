# Empty dependencies file for ode_solver_test.
# This may be replaced when dependencies are built.
