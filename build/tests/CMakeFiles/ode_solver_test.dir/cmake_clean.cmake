file(REMOVE_RECURSE
  "CMakeFiles/ode_solver_test.dir/ode_solver_test.cpp.o"
  "CMakeFiles/ode_solver_test.dir/ode_solver_test.cpp.o.d"
  "ode_solver_test"
  "ode_solver_test.pdb"
  "ode_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
