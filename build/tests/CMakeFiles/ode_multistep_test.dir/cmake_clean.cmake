file(REMOVE_RECURSE
  "CMakeFiles/ode_multistep_test.dir/ode_multistep_test.cpp.o"
  "CMakeFiles/ode_multistep_test.dir/ode_multistep_test.cpp.o.d"
  "ode_multistep_test"
  "ode_multistep_test.pdb"
  "ode_multistep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ode_multistep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
