# Empty compiler generated dependencies file for ode_multistep_test.
# This may be replaced when dependencies are built.
