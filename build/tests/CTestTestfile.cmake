# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/ode_solver_test[1]_include.cmake")
include("/root/repo/build/tests/ode_multistep_test[1]_include.cmake")
include("/root/repo/build/tests/rbm_test[1]_include.cmake")
include("/root/repo/build/tests/vgpu_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/sbml_conservation_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
