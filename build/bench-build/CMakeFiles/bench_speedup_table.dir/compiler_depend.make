# Empty compiler generated dependencies file for bench_speedup_table.
# This may be replaced when dependencies are built.
