file(REMOVE_RECURSE
  "../bench/bench_speedup_table"
  "../bench/bench_speedup_table.pdb"
  "CMakeFiles/bench_speedup_table.dir/bench_speedup_table.cpp.o"
  "CMakeFiles/bench_speedup_table.dir/bench_speedup_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_speedup_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
