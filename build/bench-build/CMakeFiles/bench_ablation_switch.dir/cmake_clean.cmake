file(REMOVE_RECURSE
  "../bench/bench_ablation_switch"
  "../bench/bench_ablation_switch.pdb"
  "CMakeFiles/bench_ablation_switch.dir/bench_ablation_switch.cpp.o"
  "CMakeFiles/bench_ablation_switch.dir/bench_ablation_switch.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
