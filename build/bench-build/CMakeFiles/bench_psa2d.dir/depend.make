# Empty dependencies file for bench_psa2d.
# This may be replaced when dependencies are built.
