file(REMOVE_RECURSE
  "../bench/bench_psa2d"
  "../bench/bench_psa2d.pdb"
  "CMakeFiles/bench_psa2d.dir/bench_psa2d.cpp.o"
  "CMakeFiles/bench_psa2d.dir/bench_psa2d.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_psa2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
