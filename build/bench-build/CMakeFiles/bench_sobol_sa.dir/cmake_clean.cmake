file(REMOVE_RECURSE
  "../bench/bench_sobol_sa"
  "../bench/bench_sobol_sa.pdb"
  "CMakeFiles/bench_sobol_sa.dir/bench_sobol_sa.cpp.o"
  "CMakeFiles/bench_sobol_sa.dir/bench_sobol_sa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sobol_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
