# Empty dependencies file for bench_sobol_sa.
# This may be replaced when dependencies are built.
