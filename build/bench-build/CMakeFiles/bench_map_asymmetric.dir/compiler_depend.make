# Empty compiler generated dependencies file for bench_map_asymmetric.
# This may be replaced when dependencies are built.
