
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_map_asymmetric.cpp" "bench-build/CMakeFiles/bench_map_asymmetric.dir/bench_map_asymmetric.cpp.o" "gcc" "bench-build/CMakeFiles/bench_map_asymmetric.dir/bench_map_asymmetric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/psg_io.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/psg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/psg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/psg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rbm/CMakeFiles/psg_rbm.dir/DependInfo.cmake"
  "/root/repo/build/src/ode/CMakeFiles/psg_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/psg_vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/psg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
