file(REMOVE_RECURSE
  "../bench/bench_map_asymmetric"
  "../bench/bench_map_asymmetric.pdb"
  "CMakeFiles/bench_map_asymmetric.dir/bench_map_asymmetric.cpp.o"
  "CMakeFiles/bench_map_asymmetric.dir/bench_map_asymmetric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_map_asymmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
