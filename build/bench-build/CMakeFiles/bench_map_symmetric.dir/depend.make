# Empty dependencies file for bench_map_symmetric.
# This may be replaced when dependencies are built.
