file(REMOVE_RECURSE
  "../bench/bench_map_symmetric"
  "../bench/bench_map_symmetric.pdb"
  "CMakeFiles/bench_map_symmetric.dir/bench_map_symmetric.cpp.o"
  "CMakeFiles/bench_map_symmetric.dir/bench_map_symmetric.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_map_symmetric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
