# Empty compiler generated dependencies file for bench_param_estimation.
# This may be replaced when dependencies are built.
