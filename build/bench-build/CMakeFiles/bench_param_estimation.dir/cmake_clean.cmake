file(REMOVE_RECURSE
  "../bench/bench_param_estimation"
  "../bench/bench_param_estimation.pdb"
  "CMakeFiles/bench_param_estimation.dir/bench_param_estimation.cpp.o"
  "CMakeFiles/bench_param_estimation.dir/bench_param_estimation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_param_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
