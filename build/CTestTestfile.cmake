# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("src/support")
subdirs("src/linalg")
subdirs("src/rbm")
subdirs("src/ode")
subdirs("src/vgpu")
subdirs("src/sim")
subdirs("src/core")
subdirs("src/analysis")
subdirs("src/io")
subdirs("tools")
subdirs("examples")
subdirs("tests")
subdirs("bench-build")
