
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ode/Dopri5.cpp" "src/ode/CMakeFiles/psg_ode.dir/Dopri5.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/Dopri5.cpp.o.d"
  "/root/repo/src/ode/IntegrationResult.cpp" "src/ode/CMakeFiles/psg_ode.dir/IntegrationResult.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/IntegrationResult.cpp.o.d"
  "/root/repo/src/ode/Interpolant.cpp" "src/ode/CMakeFiles/psg_ode.dir/Interpolant.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/Interpolant.cpp.o.d"
  "/root/repo/src/ode/Lsoda.cpp" "src/ode/CMakeFiles/psg_ode.dir/Lsoda.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/Lsoda.cpp.o.d"
  "/root/repo/src/ode/Multistep.cpp" "src/ode/CMakeFiles/psg_ode.dir/Multistep.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/Multistep.cpp.o.d"
  "/root/repo/src/ode/OdeSolver.cpp" "src/ode/CMakeFiles/psg_ode.dir/OdeSolver.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/OdeSolver.cpp.o.d"
  "/root/repo/src/ode/OdeSystem.cpp" "src/ode/CMakeFiles/psg_ode.dir/OdeSystem.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/OdeSystem.cpp.o.d"
  "/root/repo/src/ode/Radau5.cpp" "src/ode/CMakeFiles/psg_ode.dir/Radau5.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/Radau5.cpp.o.d"
  "/root/repo/src/ode/Rkf45.cpp" "src/ode/CMakeFiles/psg_ode.dir/Rkf45.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/Rkf45.cpp.o.d"
  "/root/repo/src/ode/RungeKutta4.cpp" "src/ode/CMakeFiles/psg_ode.dir/RungeKutta4.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/RungeKutta4.cpp.o.d"
  "/root/repo/src/ode/SolverRegistry.cpp" "src/ode/CMakeFiles/psg_ode.dir/SolverRegistry.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/SolverRegistry.cpp.o.d"
  "/root/repo/src/ode/StepControl.cpp" "src/ode/CMakeFiles/psg_ode.dir/StepControl.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/StepControl.cpp.o.d"
  "/root/repo/src/ode/TestProblems.cpp" "src/ode/CMakeFiles/psg_ode.dir/TestProblems.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/TestProblems.cpp.o.d"
  "/root/repo/src/ode/Trajectory.cpp" "src/ode/CMakeFiles/psg_ode.dir/Trajectory.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/Trajectory.cpp.o.d"
  "/root/repo/src/ode/Vode.cpp" "src/ode/CMakeFiles/psg_ode.dir/Vode.cpp.o" "gcc" "src/ode/CMakeFiles/psg_ode.dir/Vode.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/psg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
