file(REMOVE_RECURSE
  "CMakeFiles/psg_ode.dir/Dopri5.cpp.o"
  "CMakeFiles/psg_ode.dir/Dopri5.cpp.o.d"
  "CMakeFiles/psg_ode.dir/IntegrationResult.cpp.o"
  "CMakeFiles/psg_ode.dir/IntegrationResult.cpp.o.d"
  "CMakeFiles/psg_ode.dir/Interpolant.cpp.o"
  "CMakeFiles/psg_ode.dir/Interpolant.cpp.o.d"
  "CMakeFiles/psg_ode.dir/Lsoda.cpp.o"
  "CMakeFiles/psg_ode.dir/Lsoda.cpp.o.d"
  "CMakeFiles/psg_ode.dir/Multistep.cpp.o"
  "CMakeFiles/psg_ode.dir/Multistep.cpp.o.d"
  "CMakeFiles/psg_ode.dir/OdeSolver.cpp.o"
  "CMakeFiles/psg_ode.dir/OdeSolver.cpp.o.d"
  "CMakeFiles/psg_ode.dir/OdeSystem.cpp.o"
  "CMakeFiles/psg_ode.dir/OdeSystem.cpp.o.d"
  "CMakeFiles/psg_ode.dir/Radau5.cpp.o"
  "CMakeFiles/psg_ode.dir/Radau5.cpp.o.d"
  "CMakeFiles/psg_ode.dir/Rkf45.cpp.o"
  "CMakeFiles/psg_ode.dir/Rkf45.cpp.o.d"
  "CMakeFiles/psg_ode.dir/RungeKutta4.cpp.o"
  "CMakeFiles/psg_ode.dir/RungeKutta4.cpp.o.d"
  "CMakeFiles/psg_ode.dir/SolverRegistry.cpp.o"
  "CMakeFiles/psg_ode.dir/SolverRegistry.cpp.o.d"
  "CMakeFiles/psg_ode.dir/StepControl.cpp.o"
  "CMakeFiles/psg_ode.dir/StepControl.cpp.o.d"
  "CMakeFiles/psg_ode.dir/TestProblems.cpp.o"
  "CMakeFiles/psg_ode.dir/TestProblems.cpp.o.d"
  "CMakeFiles/psg_ode.dir/Trajectory.cpp.o"
  "CMakeFiles/psg_ode.dir/Trajectory.cpp.o.d"
  "CMakeFiles/psg_ode.dir/Vode.cpp.o"
  "CMakeFiles/psg_ode.dir/Vode.cpp.o.d"
  "libpsg_ode.a"
  "libpsg_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psg_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
