file(REMOVE_RECURSE
  "libpsg_ode.a"
)
