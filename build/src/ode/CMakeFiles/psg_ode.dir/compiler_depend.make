# Empty compiler generated dependencies file for psg_ode.
# This may be replaced when dependencies are built.
