file(REMOVE_RECURSE
  "CMakeFiles/psg_core.dir/BatchEngine.cpp.o"
  "CMakeFiles/psg_core.dir/BatchEngine.cpp.o.d"
  "CMakeFiles/psg_core.dir/ParameterSpace.cpp.o"
  "CMakeFiles/psg_core.dir/ParameterSpace.cpp.o.d"
  "libpsg_core.a"
  "libpsg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
