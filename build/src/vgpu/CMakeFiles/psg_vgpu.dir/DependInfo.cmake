
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgpu/CostModel.cpp" "src/vgpu/CMakeFiles/psg_vgpu.dir/CostModel.cpp.o" "gcc" "src/vgpu/CMakeFiles/psg_vgpu.dir/CostModel.cpp.o.d"
  "/root/repo/src/vgpu/DeviceSpec.cpp" "src/vgpu/CMakeFiles/psg_vgpu.dir/DeviceSpec.cpp.o" "gcc" "src/vgpu/CMakeFiles/psg_vgpu.dir/DeviceSpec.cpp.o.d"
  "/root/repo/src/vgpu/ThreadPool.cpp" "src/vgpu/CMakeFiles/psg_vgpu.dir/ThreadPool.cpp.o" "gcc" "src/vgpu/CMakeFiles/psg_vgpu.dir/ThreadPool.cpp.o.d"
  "/root/repo/src/vgpu/VirtualDevice.cpp" "src/vgpu/CMakeFiles/psg_vgpu.dir/VirtualDevice.cpp.o" "gcc" "src/vgpu/CMakeFiles/psg_vgpu.dir/VirtualDevice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/psg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
