file(REMOVE_RECURSE
  "CMakeFiles/psg_vgpu.dir/CostModel.cpp.o"
  "CMakeFiles/psg_vgpu.dir/CostModel.cpp.o.d"
  "CMakeFiles/psg_vgpu.dir/DeviceSpec.cpp.o"
  "CMakeFiles/psg_vgpu.dir/DeviceSpec.cpp.o.d"
  "CMakeFiles/psg_vgpu.dir/ThreadPool.cpp.o"
  "CMakeFiles/psg_vgpu.dir/ThreadPool.cpp.o.d"
  "CMakeFiles/psg_vgpu.dir/VirtualDevice.cpp.o"
  "CMakeFiles/psg_vgpu.dir/VirtualDevice.cpp.o.d"
  "libpsg_vgpu.a"
  "libpsg_vgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psg_vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
