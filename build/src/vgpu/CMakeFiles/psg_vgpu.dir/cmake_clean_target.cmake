file(REMOVE_RECURSE
  "libpsg_vgpu.a"
)
