# Empty compiler generated dependencies file for psg_vgpu.
# This may be replaced when dependencies are built.
