file(REMOVE_RECURSE
  "CMakeFiles/psg_sim.dir/Simulators.cpp.o"
  "CMakeFiles/psg_sim.dir/Simulators.cpp.o.d"
  "CMakeFiles/psg_sim.dir/WorkProfile.cpp.o"
  "CMakeFiles/psg_sim.dir/WorkProfile.cpp.o.d"
  "libpsg_sim.a"
  "libpsg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
