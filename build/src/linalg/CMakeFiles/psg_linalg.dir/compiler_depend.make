# Empty compiler generated dependencies file for psg_linalg.
# This may be replaced when dependencies are built.
