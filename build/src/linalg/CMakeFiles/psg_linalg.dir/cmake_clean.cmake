file(REMOVE_RECURSE
  "CMakeFiles/psg_linalg.dir/Eigen.cpp.o"
  "CMakeFiles/psg_linalg.dir/Eigen.cpp.o.d"
  "CMakeFiles/psg_linalg.dir/Jacobian.cpp.o"
  "CMakeFiles/psg_linalg.dir/Jacobian.cpp.o.d"
  "CMakeFiles/psg_linalg.dir/Lu.cpp.o"
  "CMakeFiles/psg_linalg.dir/Lu.cpp.o.d"
  "CMakeFiles/psg_linalg.dir/Matrix.cpp.o"
  "CMakeFiles/psg_linalg.dir/Matrix.cpp.o.d"
  "CMakeFiles/psg_linalg.dir/VectorOps.cpp.o"
  "CMakeFiles/psg_linalg.dir/VectorOps.cpp.o.d"
  "libpsg_linalg.a"
  "libpsg_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psg_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
