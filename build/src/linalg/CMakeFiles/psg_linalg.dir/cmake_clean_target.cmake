file(REMOVE_RECURSE
  "libpsg_linalg.a"
)
