
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/Eigen.cpp" "src/linalg/CMakeFiles/psg_linalg.dir/Eigen.cpp.o" "gcc" "src/linalg/CMakeFiles/psg_linalg.dir/Eigen.cpp.o.d"
  "/root/repo/src/linalg/Jacobian.cpp" "src/linalg/CMakeFiles/psg_linalg.dir/Jacobian.cpp.o" "gcc" "src/linalg/CMakeFiles/psg_linalg.dir/Jacobian.cpp.o.d"
  "/root/repo/src/linalg/Lu.cpp" "src/linalg/CMakeFiles/psg_linalg.dir/Lu.cpp.o" "gcc" "src/linalg/CMakeFiles/psg_linalg.dir/Lu.cpp.o.d"
  "/root/repo/src/linalg/Matrix.cpp" "src/linalg/CMakeFiles/psg_linalg.dir/Matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/psg_linalg.dir/Matrix.cpp.o.d"
  "/root/repo/src/linalg/VectorOps.cpp" "src/linalg/CMakeFiles/psg_linalg.dir/VectorOps.cpp.o" "gcc" "src/linalg/CMakeFiles/psg_linalg.dir/VectorOps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/psg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
