# Empty dependencies file for psg_support.
# This may be replaced when dependencies are built.
