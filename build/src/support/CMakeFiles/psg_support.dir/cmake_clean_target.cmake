file(REMOVE_RECURSE
  "libpsg_support.a"
)
