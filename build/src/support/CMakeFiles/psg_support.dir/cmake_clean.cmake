file(REMOVE_RECURSE
  "CMakeFiles/psg_support.dir/Csv.cpp.o"
  "CMakeFiles/psg_support.dir/Csv.cpp.o.d"
  "CMakeFiles/psg_support.dir/Error.cpp.o"
  "CMakeFiles/psg_support.dir/Error.cpp.o.d"
  "CMakeFiles/psg_support.dir/Logging.cpp.o"
  "CMakeFiles/psg_support.dir/Logging.cpp.o.d"
  "CMakeFiles/psg_support.dir/Random.cpp.o"
  "CMakeFiles/psg_support.dir/Random.cpp.o.d"
  "CMakeFiles/psg_support.dir/StringUtils.cpp.o"
  "CMakeFiles/psg_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/psg_support.dir/Timer.cpp.o"
  "CMakeFiles/psg_support.dir/Timer.cpp.o.d"
  "libpsg_support.a"
  "libpsg_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psg_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
