file(REMOVE_RECURSE
  "libpsg_analysis.a"
)
