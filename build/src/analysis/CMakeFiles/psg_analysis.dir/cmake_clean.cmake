file(REMOVE_RECURSE
  "CMakeFiles/psg_analysis.dir/Fitness.cpp.o"
  "CMakeFiles/psg_analysis.dir/Fitness.cpp.o.d"
  "CMakeFiles/psg_analysis.dir/Oscillation.cpp.o"
  "CMakeFiles/psg_analysis.dir/Oscillation.cpp.o.d"
  "CMakeFiles/psg_analysis.dir/Psa.cpp.o"
  "CMakeFiles/psg_analysis.dir/Psa.cpp.o.d"
  "CMakeFiles/psg_analysis.dir/Pso.cpp.o"
  "CMakeFiles/psg_analysis.dir/Pso.cpp.o.d"
  "CMakeFiles/psg_analysis.dir/Sobol.cpp.o"
  "CMakeFiles/psg_analysis.dir/Sobol.cpp.o.d"
  "CMakeFiles/psg_analysis.dir/SteadyState.cpp.o"
  "CMakeFiles/psg_analysis.dir/SteadyState.cpp.o.d"
  "libpsg_analysis.a"
  "libpsg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
