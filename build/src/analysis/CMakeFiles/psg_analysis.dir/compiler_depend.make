# Empty compiler generated dependencies file for psg_analysis.
# This may be replaced when dependencies are built.
