file(REMOVE_RECURSE
  "CMakeFiles/psg_rbm.dir/Conservation.cpp.o"
  "CMakeFiles/psg_rbm.dir/Conservation.cpp.o.d"
  "CMakeFiles/psg_rbm.dir/CuratedModels.cpp.o"
  "CMakeFiles/psg_rbm.dir/CuratedModels.cpp.o.d"
  "CMakeFiles/psg_rbm.dir/MassAction.cpp.o"
  "CMakeFiles/psg_rbm.dir/MassAction.cpp.o.d"
  "CMakeFiles/psg_rbm.dir/ModelIo.cpp.o"
  "CMakeFiles/psg_rbm.dir/ModelIo.cpp.o.d"
  "CMakeFiles/psg_rbm.dir/ReactionNetwork.cpp.o"
  "CMakeFiles/psg_rbm.dir/ReactionNetwork.cpp.o.d"
  "CMakeFiles/psg_rbm.dir/SbmlIo.cpp.o"
  "CMakeFiles/psg_rbm.dir/SbmlIo.cpp.o.d"
  "CMakeFiles/psg_rbm.dir/SyntheticGenerator.cpp.o"
  "CMakeFiles/psg_rbm.dir/SyntheticGenerator.cpp.o.d"
  "libpsg_rbm.a"
  "libpsg_rbm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psg_rbm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
