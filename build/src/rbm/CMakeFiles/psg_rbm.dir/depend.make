# Empty dependencies file for psg_rbm.
# This may be replaced when dependencies are built.
