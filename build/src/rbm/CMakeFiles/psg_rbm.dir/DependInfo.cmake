
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rbm/Conservation.cpp" "src/rbm/CMakeFiles/psg_rbm.dir/Conservation.cpp.o" "gcc" "src/rbm/CMakeFiles/psg_rbm.dir/Conservation.cpp.o.d"
  "/root/repo/src/rbm/CuratedModels.cpp" "src/rbm/CMakeFiles/psg_rbm.dir/CuratedModels.cpp.o" "gcc" "src/rbm/CMakeFiles/psg_rbm.dir/CuratedModels.cpp.o.d"
  "/root/repo/src/rbm/MassAction.cpp" "src/rbm/CMakeFiles/psg_rbm.dir/MassAction.cpp.o" "gcc" "src/rbm/CMakeFiles/psg_rbm.dir/MassAction.cpp.o.d"
  "/root/repo/src/rbm/ModelIo.cpp" "src/rbm/CMakeFiles/psg_rbm.dir/ModelIo.cpp.o" "gcc" "src/rbm/CMakeFiles/psg_rbm.dir/ModelIo.cpp.o.d"
  "/root/repo/src/rbm/ReactionNetwork.cpp" "src/rbm/CMakeFiles/psg_rbm.dir/ReactionNetwork.cpp.o" "gcc" "src/rbm/CMakeFiles/psg_rbm.dir/ReactionNetwork.cpp.o.d"
  "/root/repo/src/rbm/SbmlIo.cpp" "src/rbm/CMakeFiles/psg_rbm.dir/SbmlIo.cpp.o" "gcc" "src/rbm/CMakeFiles/psg_rbm.dir/SbmlIo.cpp.o.d"
  "/root/repo/src/rbm/SyntheticGenerator.cpp" "src/rbm/CMakeFiles/psg_rbm.dir/SyntheticGenerator.cpp.o" "gcc" "src/rbm/CMakeFiles/psg_rbm.dir/SyntheticGenerator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ode/CMakeFiles/psg_ode.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/psg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/psg_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
