file(REMOVE_RECURSE
  "libpsg_rbm.a"
)
