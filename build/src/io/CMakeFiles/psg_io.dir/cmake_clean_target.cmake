file(REMOVE_RECURSE
  "libpsg_io.a"
)
