file(REMOVE_RECURSE
  "CMakeFiles/psg_io.dir/ResultsIo.cpp.o"
  "CMakeFiles/psg_io.dir/ResultsIo.cpp.o.d"
  "libpsg_io.a"
  "libpsg_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psg_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
