# Empty compiler generated dependencies file for psg_io.
# This may be replaced when dependencies are built.
