file(REMOVE_RECURSE
  "CMakeFiles/psa_oscillator.dir/psa_oscillator.cpp.o"
  "CMakeFiles/psa_oscillator.dir/psa_oscillator.cpp.o.d"
  "psa_oscillator"
  "psa_oscillator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psa_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
