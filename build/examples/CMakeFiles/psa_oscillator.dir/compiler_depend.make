# Empty compiler generated dependencies file for psa_oscillator.
# This may be replaced when dependencies are built.
