file(REMOVE_RECURSE
  "CMakeFiles/sensitivity_isoforms.dir/sensitivity_isoforms.cpp.o"
  "CMakeFiles/sensitivity_isoforms.dir/sensitivity_isoforms.cpp.o.d"
  "sensitivity_isoforms"
  "sensitivity_isoforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensitivity_isoforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
