# Empty dependencies file for sensitivity_isoforms.
# This may be replaced when dependencies are built.
