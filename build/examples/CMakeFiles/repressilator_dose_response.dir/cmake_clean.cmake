file(REMOVE_RECURSE
  "CMakeFiles/repressilator_dose_response.dir/repressilator_dose_response.cpp.o"
  "CMakeFiles/repressilator_dose_response.dir/repressilator_dose_response.cpp.o.d"
  "repressilator_dose_response"
  "repressilator_dose_response.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repressilator_dose_response.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
