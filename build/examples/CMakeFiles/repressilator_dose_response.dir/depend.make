# Empty dependencies file for repressilator_dose_response.
# This may be replaced when dependencies are built.
