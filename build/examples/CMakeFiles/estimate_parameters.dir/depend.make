# Empty dependencies file for estimate_parameters.
# This may be replaced when dependencies are built.
