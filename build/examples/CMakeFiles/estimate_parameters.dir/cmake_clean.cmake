file(REMOVE_RECURSE
  "CMakeFiles/estimate_parameters.dir/estimate_parameters.cpp.o"
  "CMakeFiles/estimate_parameters.dir/estimate_parameters.cpp.o.d"
  "estimate_parameters"
  "estimate_parameters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
