//===- core/PointGenerator.h - Lazy parameter-space designs -----*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy point generators over a ParameterSpace: the sampling designs of
/// the analyses (full-factorial grids, independent random draws, Latin
/// hypercubes, the Saltelli matrix set of the Sobol analysis) emitted in
/// sub-batch-sized chunks on demand instead of materializing the whole
/// design up front. Generators are the producer side of
/// BatchEngine::stream: a 10^6-point sweep never holds more than one
/// chunk of points (and one in-flight window of parameterizations and
/// outcomes) at a time.
///
/// Every generator is bit-identical to its materializing counterpart on
/// ParameterSpace: chunk boundaries never change a coordinate.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_CORE_POINTGENERATOR_H
#define PSG_CORE_POINTGENERATOR_H

#include "core/ParameterSpace.h"

#include <memory>

namespace psg {

/// A restartable stream of parameter-space points.
class PointGenerator {
public:
  virtual ~PointGenerator();

  /// Total points the full stream yields.
  virtual size_t totalPoints() const = 0;

  /// Appends up to \p MaxCount further points to \p Out; returns the
  /// number appended (0 when the stream is exhausted).
  virtual size_t next(size_t MaxCount,
                      std::vector<std::vector<double>> &Out) = 0;

  /// Rewinds the stream to its first point (replaying identical values).
  virtual void reset() = 0;
};

/// Full-factorial grid over all axes of \p Space, row-major with the
/// last axis fastest — chunked gridSample().
std::unique_ptr<PointGenerator>
makeGridGenerator(const ParameterSpace &Space,
                  std::vector<size_t> PointsPerAxis);

/// \p Count independent uniform (or log-uniform) draws — chunked
/// randomSample() with a private Rng(\p Seed) stream.
std::unique_ptr<PointGenerator>
makeRandomGenerator(const ParameterSpace &Space, size_t Count,
                    uint64_t Seed);

/// \p Count Latin-hypercube points with a private Rng(\p Seed) stream.
/// Stratification needs the per-axis permutations of the whole design,
/// so this generator carries O(Count x Axes) state — the streaming
/// savings are the parameterizations and trajectories downstream, not
/// the raw coordinates.
std::unique_ptr<PointGenerator>
makeLatinHypercubeGenerator(const ParameterSpace &Space, size_t Count,
                            uint64_t Seed);

/// The Saltelli design of the Sobol analysis over the K axes of
/// \p Space: N rows of matrix A, N of B, the K radial blocks AB_i, and
/// (when \p SecondOrder) the K blocks BA_i, in that order. Rows are
/// recomputed from the Halton sequence on demand under the
/// Cranley-Patterson rotation \p Shift (2K values in [0,1)), so the
/// generator state is O(K).
std::unique_ptr<PointGenerator>
makeSaltelliGenerator(const ParameterSpace &Space, size_t BaseSamples,
                      std::vector<double> Shift, bool SecondOrder);

/// Streams an already-materialized point set (not owned; \p Points must
/// outlive the generator). Lets explicit designs — a PSO swarm, a test
/// vector — ride the same streaming path.
std::unique_ptr<PointGenerator>
makeMaterializedGenerator(const std::vector<std::vector<double>> &Points);

/// The Halton low-discrepancy point (Index >= 1) in \p Dims dimensions.
std::vector<double> haltonPoint(uint64_t Index, size_t Dims);

} // namespace psg

#endif // PSG_CORE_POINTGENERATOR_H
