//===- core/PointGenerator.cpp --------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "core/PointGenerator.h"

#include <algorithm>

using namespace psg;

PointGenerator::~PointGenerator() = default;

std::vector<double> psg::haltonPoint(uint64_t Index, size_t Dims) {
  static const unsigned Primes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29,
                                    31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
                                    73, 79, 83, 89, 97, 101};
  assert(Index >= 1 && "Halton indices start at 1");
  assert(Dims <= sizeof(Primes) / sizeof(Primes[0]) &&
         "too many dimensions for the prime table");
  std::vector<double> Point(Dims);
  for (size_t D = 0; D < Dims; ++D) {
    const double Base = Primes[D];
    double Fraction = 1.0, Value = 0.0;
    uint64_t I = Index;
    while (I > 0) {
      Fraction /= Base;
      Value += Fraction * static_cast<double>(I % Primes[D]);
      I /= Primes[D];
    }
    Point[D] = Value;
  }
  return Point;
}

namespace {

/// Chunked gridSample: per-axis value lists plus an odometer with the
/// last axis fastest, so the emitted sequence is bit-identical to the
/// materialized cartesian product.
class GridGenerator final : public PointGenerator {
public:
  GridGenerator(const ParameterSpace &Space,
                std::vector<size_t> PointsPerAxis)
      : Space(Space), PointsPerAxis(std::move(PointsPerAxis)) {
    assert(this->PointsPerAxis.size() == Space.numAxes() &&
           "one resolution per axis required");
    Values.resize(Space.numAxes());
    Total = 1;
    for (size_t A = 0; A < Space.numAxes(); ++A) {
      Values[A] = Space.gridAxisValues(A, this->PointsPerAxis[A]);
      Total *= this->PointsPerAxis[A];
    }
    reset();
  }

  size_t totalPoints() const override { return Total; }

  size_t next(size_t MaxCount,
              std::vector<std::vector<double>> &Out) override {
    size_t Produced = 0;
    while (Produced < MaxCount && Emitted < Total) {
      std::vector<double> Point(Values.size());
      for (size_t A = 0; A < Values.size(); ++A)
        Point[A] = Values[A][Index[A]];
      Out.push_back(std::move(Point));
      for (size_t A = Values.size(); A-- > 0;) {
        if (++Index[A] < PointsPerAxis[A])
          break;
        Index[A] = 0;
      }
      ++Emitted;
      ++Produced;
    }
    return Produced;
  }

  void reset() override {
    Index.assign(Values.size(), 0);
    Emitted = 0;
  }

private:
  const ParameterSpace &Space;
  std::vector<size_t> PointsPerAxis;
  std::vector<std::vector<double>> Values;
  std::vector<size_t> Index;
  size_t Total = 1;
  size_t Emitted = 0;
};

/// Chunked randomSample: draws point-major (axes inner) from a private
/// generator, matching the materialized draw order exactly.
class RandomGenerator final : public PointGenerator {
public:
  RandomGenerator(const ParameterSpace &Space, size_t Count, uint64_t Seed)
      : Space(Space), Count(Count), Seed(Seed), Generator(Seed) {}

  size_t totalPoints() const override { return Count; }

  size_t next(size_t MaxCount,
              std::vector<std::vector<double>> &Out) override {
    size_t Produced = 0;
    while (Produced < MaxCount && Emitted < Count) {
      std::vector<double> U(Space.numAxes());
      for (double &V : U)
        V = Generator.uniform();
      Out.push_back(Space.fromUnitCube(U));
      ++Emitted;
      ++Produced;
    }
    return Produced;
  }

  void reset() override {
    Generator = Rng(Seed);
    Emitted = 0;
  }

private:
  const ParameterSpace &Space;
  size_t Count;
  uint64_t Seed;
  Rng Generator;
  size_t Emitted = 0;
};

/// Latin hypercube: the stratified permutations couple every point to
/// every other, so the design is computed once up front (O(Count x
/// Axes)) and drained in chunks.
class LatinHypercubeGenerator final : public PointGenerator {
public:
  LatinHypercubeGenerator(const ParameterSpace &Space, size_t Count,
                          uint64_t Seed) {
    Rng Generator(Seed);
    Points = Space.latinHypercube(Count, Generator);
  }

  size_t totalPoints() const override { return Points.size(); }

  size_t next(size_t MaxCount,
              std::vector<std::vector<double>> &Out) override {
    const size_t Produced = std::min(MaxCount, Points.size() - Emitted);
    for (size_t I = 0; I < Produced; ++I)
      Out.push_back(Points[Emitted + I]);
    Emitted += Produced;
    return Produced;
  }

  void reset() override { Emitted = 0; }

private:
  std::vector<std::vector<double>> Points;
  size_t Emitted = 0;
};

/// The Saltelli matrix set, recomputed row-by-row from the Halton
/// sequence: block 0 is A, block 1 is B, blocks 2..K+1 are AB_i, and
/// (second order) blocks K+2..2K+1 are BA_i.
class SaltelliGenerator final : public PointGenerator {
public:
  SaltelliGenerator(const ParameterSpace &Space, size_t BaseSamples,
                    std::vector<double> Shift, bool SecondOrder)
      : Space(Space), N(BaseSamples), K(Space.numAxes()),
        Shift(std::move(Shift)), SecondOrder(SecondOrder) {
    assert(this->Shift.size() == 2 * K && "need one rotation per column");
  }

  size_t totalPoints() const override {
    return N * (SecondOrder ? 2 * K + 2 : K + 2);
  }

  size_t next(size_t MaxCount,
              std::vector<std::vector<double>> &Out) override {
    const size_t Total = totalPoints();
    size_t Produced = 0;
    while (Produced < MaxCount && Emitted < Total) {
      Out.push_back(pointAt(Emitted));
      ++Emitted;
      ++Produced;
    }
    return Produced;
  }

  void reset() override { Emitted = 0; }

private:
  /// The rotated 2K-dimensional Halton row \p I split into the A and B
  /// unit-cube rows.
  void cubeRows(size_t I, std::vector<double> &RowA,
                std::vector<double> &RowB) const {
    std::vector<double> Row = haltonPoint(I + 1, 2 * K);
    for (size_t D = 0; D < 2 * K; ++D) {
      Row[D] += Shift[D];
      if (Row[D] >= 1.0)
        Row[D] -= 1.0;
    }
    RowA.assign(Row.begin(), Row.begin() + K);
    RowB.assign(Row.begin() + K, Row.end());
  }

  std::vector<double> pointAt(size_t Global) const {
    const size_t Block = Global / N;
    const size_t I = Global % N;
    std::vector<double> RowA, RowB;
    cubeRows(I, RowA, RowB);
    if (Block == 0)
      return Space.fromUnitCube(RowA);
    if (Block == 1)
      return Space.fromUnitCube(RowB);
    if (Block < K + 2) {
      const size_t D = Block - 2;
      RowA[D] = RowB[D];
      return Space.fromUnitCube(RowA);
    }
    const size_t D = Block - K - 2;
    RowB[D] = RowA[D];
    return Space.fromUnitCube(RowB);
  }

  const ParameterSpace &Space;
  size_t N;
  size_t K;
  std::vector<double> Shift;
  bool SecondOrder;
  size_t Emitted = 0;
};

/// Streams copies of a caller-owned point set.
class MaterializedGenerator final : public PointGenerator {
public:
  explicit MaterializedGenerator(
      const std::vector<std::vector<double>> &Points)
      : Points(Points) {}

  size_t totalPoints() const override { return Points.size(); }

  size_t next(size_t MaxCount,
              std::vector<std::vector<double>> &Out) override {
    const size_t Produced = std::min(MaxCount, Points.size() - Emitted);
    for (size_t I = 0; I < Produced; ++I)
      Out.push_back(Points[Emitted + I]);
    Emitted += Produced;
    return Produced;
  }

  void reset() override { Emitted = 0; }

private:
  const std::vector<std::vector<double>> &Points;
  size_t Emitted = 0;
};

} // namespace

std::unique_ptr<PointGenerator>
psg::makeGridGenerator(const ParameterSpace &Space,
                       std::vector<size_t> PointsPerAxis) {
  return std::make_unique<GridGenerator>(Space, std::move(PointsPerAxis));
}

std::unique_ptr<PointGenerator>
psg::makeRandomGenerator(const ParameterSpace &Space, size_t Count,
                         uint64_t Seed) {
  return std::make_unique<RandomGenerator>(Space, Count, Seed);
}

std::unique_ptr<PointGenerator>
psg::makeLatinHypercubeGenerator(const ParameterSpace &Space, size_t Count,
                                 uint64_t Seed) {
  return std::make_unique<LatinHypercubeGenerator>(Space, Count, Seed);
}

std::unique_ptr<PointGenerator>
psg::makeSaltelliGenerator(const ParameterSpace &Space, size_t BaseSamples,
                           std::vector<double> Shift, bool SecondOrder) {
  return std::make_unique<SaltelliGenerator>(Space, BaseSamples,
                                             std::move(Shift), SecondOrder);
}

std::unique_ptr<PointGenerator>
psg::makeMaterializedGenerator(const std::vector<std::vector<double>> &Points) {
  return std::make_unique<MaterializedGenerator>(Points);
}
