//===- core/ParameterSpace.h - Parameter space definition -------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parameter space over a reaction network: named axes that control
/// initial concentrations, single kinetic constants, or whole groups of
/// kinetic constants (as the autophagy model's P9 parameter rescales 5476
/// constants at once), together with the sampling schemes the analyses
/// use (grids, random, log-uniform, Latin hypercube).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_CORE_PARAMETERSPACE_H
#define PSG_CORE_PARAMETERSPACE_H

#include "rbm/ReactionNetwork.h"
#include "support/Random.h"

#include <string>
#include <vector>

namespace psg {

/// What a parameter axis manipulates.
enum class AxisTarget {
  InitialConcentration, ///< Sets one species' initial concentration.
  RateConstant,         ///< Sets one reaction's kinetic constant.
  RateConstantGroup     ///< Sets (or scales) a group of kinetic constants.
};

/// One dimension of the parameter space.
struct ParameterAxis {
  std::string Name;
  AxisTarget Target = AxisTarget::RateConstant;
  double Lo = 0.0;
  double Hi = 1.0;
  bool LogScale = false; ///< Sample log-uniformly within [Lo, Hi].
  unsigned SpeciesIndex = 0;      ///< For InitialConcentration.
  std::vector<size_t> Reactions;  ///< For RateConstant(Group).
  /// For RateConstantGroup: multiply baselines by the axis value instead
  /// of overwriting them.
  bool Multiplicative = false;
};

/// A concrete parameterization produced from a space point.
struct Parameterization {
  std::vector<double> RateConstants;
  std::vector<double> InitialState;
};

/// An ordered set of axes plus samplers and point application.
class ParameterSpace {
public:
  explicit ParameterSpace(const ReactionNetwork &Net) : Net(&Net) {}

  /// Adds an axis; returns its index. Axis targets are validated against
  /// the network (asserted).
  size_t addAxis(ParameterAxis Axis);

  size_t numAxes() const { return Axes.size(); }
  const ParameterAxis &axis(size_t I) const { return Axes[I]; }
  const ReactionNetwork &network() const { return *Net; }

  /// Full-factorial grid: PointsPerAxis[i] values on axis i (endpoints
  /// included; log-spaced on log axes). Returns row-major points.
  std::vector<std::vector<double>>
  gridSample(const std::vector<size_t> &PointsPerAxis) const;

  /// The \p Count grid values of axis \p AxisIndex (endpoints included;
  /// log-spaced on log axes) — exactly the per-axis values gridSample
  /// combines, so analyses can label grid axes without materializing the
  /// cartesian product.
  std::vector<double> gridAxisValues(size_t AxisIndex, size_t Count) const;

  /// \p Count points sampled independently uniform (or log-uniform).
  std::vector<std::vector<double>> randomSample(size_t Count,
                                                Rng &Generator) const;

  /// \p Count points by Latin hypercube sampling.
  std::vector<std::vector<double>> latinHypercube(size_t Count,
                                                  Rng &Generator) const;

  /// Maps a unit-cube row (each coordinate in [0,1)) onto axis ranges.
  std::vector<double> fromUnitCube(const std::vector<double> &U) const;

  /// Applies \p Point (one value per axis) to the network's baseline,
  /// producing the concrete rate constants and initial state.
  Parameterization applyPoint(const std::vector<double> &Point) const;

private:
  const ReactionNetwork *Net;
  std::vector<ParameterAxis> Axes;

  double axisValueFromUnit(const ParameterAxis &Axis, double U) const;
};

} // namespace psg

#endif // PSG_CORE_PARAMETERSPACE_H
