//===- core/ParameterSpace.cpp --------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "core/ParameterSpace.h"

#include <algorithm>
#include <cmath>

using namespace psg;

size_t ParameterSpace::addAxis(ParameterAxis Axis) {
  assert(Axis.Lo < Axis.Hi && "empty axis range");
  assert((!Axis.LogScale || Axis.Lo > 0.0) &&
         "log axes need a positive lower bound");
  if (Axis.Target == AxisTarget::InitialConcentration)
    assert(Axis.SpeciesIndex < Net->numSpecies() && "bad species index");
  else {
    assert(!Axis.Reactions.empty() && "rate axis without target reactions");
    for (size_t R : Axis.Reactions) {
      assert(R < Net->numReactions() && "bad reaction index");
      (void)R;
    }
  }
  Axes.push_back(std::move(Axis));
  return Axes.size() - 1;
}

double ParameterSpace::axisValueFromUnit(const ParameterAxis &Axis,
                                         double U) const {
  if (Axis.LogScale)
    return std::exp(std::log(Axis.Lo) +
                    (std::log(Axis.Hi) - std::log(Axis.Lo)) * U);
  return Axis.Lo + (Axis.Hi - Axis.Lo) * U;
}

std::vector<double> ParameterSpace::gridAxisValues(size_t AxisIndex,
                                                   size_t Count) const {
  assert(AxisIndex < Axes.size() && "bad axis index");
  assert(Count >= 1 && "empty axis resolution");
  std::vector<double> Values(Count);
  for (size_t I = 0; I < Count; ++I) {
    const double U = Count == 1 ? 0.5
                                : static_cast<double>(I) /
                                      static_cast<double>(Count - 1);
    Values[I] = axisValueFromUnit(Axes[AxisIndex], U);
  }
  return Values;
}

std::vector<std::vector<double>>
ParameterSpace::gridSample(const std::vector<size_t> &PointsPerAxis) const {
  assert(PointsPerAxis.size() == Axes.size() &&
         "one resolution per axis required");
  // Per-axis value lists.
  std::vector<std::vector<double>> Values(Axes.size());
  for (size_t A = 0; A < Axes.size(); ++A)
    Values[A] = gridAxisValues(A, PointsPerAxis[A]);
  // Cartesian product, last axis fastest.
  size_t Total = 1;
  for (size_t Count : PointsPerAxis)
    Total *= Count;
  std::vector<std::vector<double>> Points;
  Points.reserve(Total);
  std::vector<size_t> Index(Axes.size(), 0);
  for (size_t P = 0; P < Total; ++P) {
    std::vector<double> Point(Axes.size());
    for (size_t A = 0; A < Axes.size(); ++A)
      Point[A] = Values[A][Index[A]];
    Points.push_back(std::move(Point));
    for (size_t A = Axes.size(); A-- > 0;) {
      if (++Index[A] < PointsPerAxis[A])
        break;
      Index[A] = 0;
    }
  }
  return Points;
}

std::vector<std::vector<double>>
ParameterSpace::randomSample(size_t Count, Rng &Generator) const {
  std::vector<std::vector<double>> Points(Count);
  for (auto &Point : Points) {
    Point.resize(Axes.size());
    for (size_t A = 0; A < Axes.size(); ++A)
      Point[A] = axisValueFromUnit(Axes[A], Generator.uniform());
  }
  return Points;
}

std::vector<std::vector<double>>
ParameterSpace::latinHypercube(size_t Count, Rng &Generator) const {
  std::vector<std::vector<double>> Points(Count,
                                          std::vector<double>(Axes.size()));
  std::vector<size_t> Permutation(Count);
  for (size_t A = 0; A < Axes.size(); ++A) {
    for (size_t I = 0; I < Count; ++I)
      Permutation[I] = I;
    // Fisher-Yates shuffle.
    for (size_t I = Count; I-- > 1;)
      std::swap(Permutation[I], Permutation[Generator.uniformInt(I + 1)]);
    for (size_t I = 0; I < Count; ++I) {
      const double U = (static_cast<double>(Permutation[I]) +
                        Generator.uniform()) /
                       static_cast<double>(Count);
      Points[I][A] = axisValueFromUnit(Axes[A], U);
    }
  }
  return Points;
}

std::vector<double>
ParameterSpace::fromUnitCube(const std::vector<double> &U) const {
  assert(U.size() == Axes.size() && "unit-cube dimension mismatch");
  std::vector<double> Point(Axes.size());
  for (size_t A = 0; A < Axes.size(); ++A)
    Point[A] = axisValueFromUnit(Axes[A], U[A]);
  return Point;
}

Parameterization
ParameterSpace::applyPoint(const std::vector<double> &Point) const {
  assert(Point.size() == Axes.size() && "one value per axis required");
  Parameterization P;
  P.InitialState = Net->initialState();
  P.RateConstants.resize(Net->numReactions());
  for (size_t R = 0; R < Net->numReactions(); ++R)
    P.RateConstants[R] = Net->reaction(R).RateConstant;

  for (size_t A = 0; A < Axes.size(); ++A) {
    const ParameterAxis &Axis = Axes[A];
    const double Value = Point[A];
    switch (Axis.Target) {
    case AxisTarget::InitialConcentration:
      P.InitialState[Axis.SpeciesIndex] = Value;
      break;
    case AxisTarget::RateConstant:
    case AxisTarget::RateConstantGroup:
      for (size_t R : Axis.Reactions)
        P.RateConstants[R] =
            Axis.Multiplicative ? P.RateConstants[R] * Value : Value;
      break;
    }
  }
  return P;
}
