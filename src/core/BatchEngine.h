//===- core/BatchEngine.h - Batched parameter-space execution ---*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine that turns parameter-space points into batched simulations:
/// it splits large point sets into device-sized sub-batches (512 by
/// default, the throughput-maximizing value of the evaluation), runs each
/// through a Simulator personality, and aggregates numerical results,
/// operation counts and modeled device times.
///
/// Execution is a streaming pipeline with bounded residency: a
/// PointGenerator (or parameterization source) produces sub-batch-sized
/// chunks on demand, up to EngineOptions::InFlight sub-batches are
/// staged at once (double-buffering that emulates GPU stream overlap in
/// the timing model), and each integrated sub-batch is handed to an
/// OutcomeSink before its trajectory storage is released. The
/// materializing run() entry points are sinks over the same pipeline, so
/// both paths are bit-identical.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_CORE_BATCHENGINE_H
#define PSG_CORE_BATCHENGINE_H

#include "core/ParameterSpace.h"
#include "core/PointGenerator.h"
#include "fabric/FabricOptions.h"
#include "sched/SchedOptions.h"
#include "sim/Simulator.h"
#include "support/Metrics.h"

#include <functional>
#include <memory>

namespace psg {

class ShardedExecutor;
class NodeCoordinator;

/// Engine configuration.
struct EngineOptions {
  /// Simulator personality ("psg-engine", "cpu-lsoda", ...).
  std::string SimulatorName = "psg-engine";
  /// Device runtime executing the personality's kernels: "host" (the
  /// eager modeled device, always available), "host-async" (worker-
  /// thread-backed streams with real cross-stream events and a pooled
  /// allocator — the CUDA asynchrony semantics on host memory), or
  /// "cuda" (the real-GPU seam; needs a PSG_WITH_CUDA build and a
  /// working device). Parsed by parseRuntimeKind; engine construction
  /// fails on a runtime that is not available in this build. Sharded
  /// runs give each logical device its own runtime instance of this
  /// kind.
  std::string Runtime = "host";
  /// Ceiling on bytes the runtime's buffer pool keeps cached between
  /// allocations (host-async and cuda runtimes; the eager host runtime
  /// has no pool). 0 disables caching — every acquire misses.
  size_t PoolMaxCachedBytes = 64ull << 20;
  /// Sub-batch size; 512 maximizes modeled throughput on the Titan X.
  uint64_t SubBatchSize = 512;
  /// Sub-batches in flight in streaming runs. 1 serializes generation
  /// and integration; 2 (the default) double-buffers, so sub-batch N+1's
  /// host-side preparation is modeled as overlapped with sub-batch N's
  /// device execution (CostModel::hiddenPrepareSeconds). Engine-resident
  /// simulations are bounded by InFlight * SubBatchSize.
  uint64_t InFlight = 2;
  /// Trajectory samples per simulation (0 = endpoints only, no record).
  size_t OutputSamples = 0;
  /// Integration window.
  double StartTime = 0.0;
  double EndTime = 1.0;
  /// Solver tolerances and limits.
  SolverOptions Solver;
  /// Multi-device sharding: when Sched.enabled(), streaming runs are
  /// partitioned across Sched.Devices logical devices by the
  /// sched::ShardedExecutor (per-device work queues, cost-model chunk
  /// sizing, work-stealing, bounded re-queue) instead of the
  /// single-device pipeline; SimulatorName is then unused. Results stay
  /// bit-exact versus a single-device run whose SubBatchSize equals the
  /// shard chunk.
  SchedOptions Sched;
  /// Cross-node distribution: when Fabric.enabled(), streaming runs are
  /// partitioned across remote worker nodes by a fabric::NodeCoordinator
  /// over Fabric.Endpoint (shard grants, heartbeat-timeout re-queue,
  /// epoch-deduplicated return path) instead of running locally; it
  /// takes precedence over Sched (workers run their own local sharded
  /// executors). Results stay bit-exact versus a single-process run
  /// whose SubBatchSize equals the shard chunk.
  FabricOptions Fabric;
};

/// Per-sub-batch consumer of a streaming engine run.
class OutcomeSink {
public:
  /// Defined inline so sink implementations outside psg_core (the sched
  /// layer's reorder buffer, analysis reducers) need no core symbols.
  virtual ~OutcomeSink() = default;

  /// Consumes the outcomes of one integrated sub-batch. \p FirstIndex is
  /// the global simulation index of Outcomes.front() within the run (the
  /// generator's emission order). The sink may move individual outcomes
  /// out of the vector; the engine releases and recycles the storage
  /// right after this returns either way.
  virtual void consumeSubBatch(size_t FirstIndex,
                               std::vector<SimulationOutcome> &Outcomes) = 0;
};

/// Pull-source of explicit parameterizations for
/// BatchEngine::streamParameterizations: appends up to \p MaxCount
/// entries to \p Out and returns the number appended (0 = exhausted).
using ParameterizationSource =
    std::function<size_t(size_t MaxCount, std::vector<Parameterization> &Out)>;

/// Aggregated outcome of a streaming run. Unlike EngineReport it carries
/// no outcomes: the sink consumed each sub-batch as it finished, so at
/// no point were more than InFlight * SubBatchSize simulations resident.
struct StreamReport {
  size_t Simulations = 0; ///< Total simulations streamed, in order.
  IntegrationStats TotalStats;
  ModeledTime IntegrationTime; ///< Summed over sub-batches.
  ModeledTime SimulationTime;
  double HostWallSeconds = 0.0;
  size_t Failures = 0;
  uint64_t SubBatches = 0;
  /// Peak engine-resident simulations (staged parameterizations plus
  /// live outcomes); <= InFlight * SubBatchSize by construction. Also
  /// exported as the gauge `psg.engine.peak_resident_outcomes`.
  size_t PeakResidentOutcomes = 0;
  /// Host-side sub-batch preparation wall time (generation, point
  /// application, spec assembly) and the part of it hidden beneath
  /// device execution through double-buffering. On the eager host
  /// runtime the hidden share is modeled by the cost model; on an
  /// asynchronous runtime it is measured — the real intersection of
  /// prepare intervals with the compute stream's execution windows.
  double PrepareWallSeconds = 0.0;
  double HiddenPrepareSeconds = 0.0;
  /// HiddenPrepareSeconds / PrepareWallSeconds; 0 when InFlight == 1.
  /// Also exported as the gauge `psg.engine.pipeline.overlap_ratio`.
  double OverlapRatio = 0.0;
  /// Frozen process-wide metrics taken when the run finished.
  MetricsSnapshot Metrics;

  /// Modeled simulations per hour on the target architecture.
  double modeledThroughputPerHour() const {
    const double T = SimulationTime.total();
    return T > 0 ? 3600.0 * static_cast<double>(Simulations) / T : 0.0;
  }
};

/// Aggregated outcome of a materializing engine run.
struct EngineReport {
  std::vector<SimulationOutcome> Outcomes; ///< One per point, in order.
  IntegrationStats TotalStats;
  ModeledTime IntegrationTime; ///< Summed over sub-batches.
  ModeledTime SimulationTime;
  double HostWallSeconds = 0.0;
  size_t Failures = 0;
  uint64_t SubBatches = 0;
  /// Frozen process-wide metrics taken when the run finished: solver
  /// step counters, per-sub-batch timings, vgpu launch counts, pool
  /// utilization. Serialized by io/ResultsIo and `psg-cli
  /// --metrics-json`.
  MetricsSnapshot Metrics;

  /// Modeled simulations per hour on the target architecture.
  double modeledThroughputPerHour() const {
    const double T = SimulationTime.total();
    return T > 0 ? 3600.0 * static_cast<double>(Outcomes.size()) / T : 0.0;
  }
};

/// Runs point sets through a simulator personality in sub-batches.
class BatchEngine {
public:
  BatchEngine(const CostModel &Model, EngineOptions Opts);
  ~BatchEngine(); ///< Out of line: ShardedExecutor is incomplete here.

  const EngineOptions &options() const { return Opts; }
  Simulator &simulator() { return *Sim; }

  /// Streams \p Gen through the simulator: chunks of points are pulled
  /// and parameterized on demand, at most InFlight sub-batches are
  /// staged, and every integrated sub-batch is handed to \p Sink before
  /// its trajectory storage is released.
  StreamReport stream(const ParameterSpace &Space, PointGenerator &Gen,
                      OutcomeSink &Sink);

  /// Streaming run over explicit parameterizations pulled from
  /// \p Source.
  StreamReport streamParameterizations(const ReactionNetwork &Net,
                                       const ParameterizationSource &Source,
                                       OutcomeSink &Sink);

  /// Runs one simulation per parameter-space point, materializing every
  /// outcome (a materializing sink over stream()).
  EngineReport run(const ParameterSpace &Space,
                   const std::vector<std::vector<double>> &Points);

  /// Runs explicit parameterizations against \p Net, materializing every
  /// outcome.
  EngineReport runParameterizations(const ReactionNetwork &Net,
                                    std::vector<Parameterization> Params);

private:
  EngineOptions Opts;
  CostModel Model;
  /// The device runtime behind Sim's kernel launches; shared with the
  /// simulator so stream() can pipeline sub-batches on it directly when
  /// it is asynchronous.
  std::shared_ptr<DeviceRuntime> Runtime;
  std::unique_ptr<Simulator> Sim;
  /// The multi-device scheduler, created lazily on the first sharded
  /// stream (Opts.Sched.enabled()) and kept warm across runs so device
  /// worker pools and solver workspaces persist like Sim's do.
  std::unique_ptr<ShardedExecutor> Sharded;
  /// The cross-node coordinator, created lazily on the first fabric
  /// stream (Opts.Fabric.enabled()).
  std::unique_ptr<NodeCoordinator> Coordinator;

  /// Compilation cache: the last network's compiled model, keyed by its
  /// structural fingerprint. Every sub-batch of a run — and every later
  /// run over the same network — shares this one compilation, so an
  /// engine performs exactly one compile per distinct network.
  std::shared_ptr<const CompiledModel> CachedModel;
  uint64_t CachedFingerprint = 0;

  /// Returns the compiled form of \p Net, reusing the cache on a
  /// fingerprint match.
  std::shared_ptr<const CompiledModel> compiled(const ReactionNetwork &Net);
};

} // namespace psg

#endif // PSG_CORE_BATCHENGINE_H
