//===- core/BatchEngine.h - Batched parameter-space execution ---*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The engine that turns parameter-space points into batched simulations:
/// it splits large point sets into device-sized sub-batches (512 by
/// default, the throughput-maximizing value of the evaluation), runs each
/// through a Simulator personality, and aggregates numerical results,
/// operation counts and modeled device times.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_CORE_BATCHENGINE_H
#define PSG_CORE_BATCHENGINE_H

#include "core/ParameterSpace.h"
#include "sim/Simulator.h"
#include "support/Metrics.h"

#include <memory>

namespace psg {

/// Engine configuration.
struct EngineOptions {
  /// Simulator personality ("psg-engine", "cpu-lsoda", ...).
  std::string SimulatorName = "psg-engine";
  /// Sub-batch size; 512 maximizes modeled throughput on the Titan X.
  uint64_t SubBatchSize = 512;
  /// Trajectory samples per simulation (0 = endpoints only, no record).
  size_t OutputSamples = 0;
  /// Integration window.
  double StartTime = 0.0;
  double EndTime = 1.0;
  /// Solver tolerances and limits.
  SolverOptions Solver;
};

/// Aggregated outcome of an engine run.
struct EngineReport {
  std::vector<SimulationOutcome> Outcomes; ///< One per point, in order.
  IntegrationStats TotalStats;
  ModeledTime IntegrationTime; ///< Summed over sub-batches.
  ModeledTime SimulationTime;
  double HostWallSeconds = 0.0;
  size_t Failures = 0;
  uint64_t SubBatches = 0;
  /// Frozen process-wide metrics taken when the run finished: solver
  /// step counters, per-sub-batch timings, vgpu launch counts, pool
  /// utilization. Serialized by io/ResultsIo and `psg-cli
  /// --metrics-json`.
  MetricsSnapshot Metrics;

  /// Modeled simulations per hour on the target architecture.
  double modeledThroughputPerHour() const {
    const double T = SimulationTime.total();
    return T > 0 ? 3600.0 * static_cast<double>(Outcomes.size()) / T : 0.0;
  }
};

/// Runs point sets through a simulator personality in sub-batches.
class BatchEngine {
public:
  BatchEngine(const CostModel &Model, EngineOptions Opts);

  const EngineOptions &options() const { return Opts; }
  Simulator &simulator() { return *Sim; }

  /// Runs one simulation per parameter-space point.
  EngineReport run(const ParameterSpace &Space,
                   const std::vector<std::vector<double>> &Points);

  /// Runs explicit parameterizations against \p Net.
  EngineReport runParameterizations(const ReactionNetwork &Net,
                                    std::vector<Parameterization> Params);

private:
  EngineOptions Opts;
  std::unique_ptr<Simulator> Sim;

  /// Compilation cache: the last network's compiled model, keyed by its
  /// structural fingerprint. Every sub-batch of a run — and every later
  /// run over the same network — shares this one compilation, so an
  /// engine performs exactly one compile per distinct network.
  std::shared_ptr<const CompiledModel> CachedModel;
  uint64_t CachedFingerprint = 0;

  /// Returns the compiled form of \p Net, reusing the cache on a
  /// fingerprint match.
  std::shared_ptr<const CompiledModel> compiled(const ReactionNetwork &Net);
};

} // namespace psg

#endif // PSG_CORE_BATCHENGINE_H
