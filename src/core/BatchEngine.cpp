//===- core/BatchEngine.cpp -----------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "core/BatchEngine.h"

#include "support/Error.h"
#include "support/Logging.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace psg;

BatchEngine::BatchEngine(const CostModel &Model, EngineOptions Options)
    : Opts(std::move(Options)) {
  auto SimOrErr = createSimulator(Opts.SimulatorName, Model);
  if (!SimOrErr)
    fatalError(SimOrErr.message());
  Sim = std::move(*SimOrErr);
}

std::shared_ptr<const CompiledModel>
BatchEngine::compiled(const ReactionNetwork &Net) {
  const uint64_t Fingerprint = networkFingerprint(Net);
  if (!CachedModel || CachedFingerprint != Fingerprint) {
    CachedModel = compileModel(Net);
    CachedFingerprint = Fingerprint;
  }
  return CachedModel;
}

EngineReport
BatchEngine::run(const ParameterSpace &Space,
                 const std::vector<std::vector<double>> &Points) {
  std::vector<Parameterization> Params;
  Params.reserve(Points.size());
  for (const std::vector<double> &Point : Points)
    Params.push_back(Space.applyPoint(Point));
  return runParameterizations(Space.network(), std::move(Params));
}

EngineReport
BatchEngine::runParameterizations(const ReactionNetwork &Net,
                                  std::vector<Parameterization> Params) {
  assert(!Params.empty() && "engine run without parameterizations");
  TraceSpan RunSpan("engine.run", "engine");
  MetricsRegistry &M = metrics();
  Counter &SubBatchCount = M.counter("psg.engine.sub_batches");
  Counter &Simulations = M.counter("psg.engine.simulations");
  Counter &FailureCount = M.counter("psg.engine.failures");
  Histogram &PrepareSeconds = M.histogram("psg.engine.sub_batch.prepare_s");
  Histogram &DispatchSeconds = M.histogram("psg.engine.sub_batch.dispatch_s");
  Histogram &SubBatchSims = M.histogram("psg.engine.sub_batch.simulations");
  Gauge &ModeledSimSeconds = M.gauge("psg.engine.modeled_simulation_s");
  Gauge &ModeledIntSeconds = M.gauge("psg.engine.modeled_integration_s");

  EngineReport Report;
  Report.Outcomes.reserve(Params.size());

  // One compile per distinct network: every sub-batch below dispatches
  // against this shared compilation.
  std::shared_ptr<const CompiledModel> Compiled = compiled(Net);

  const uint64_t SubBatch = Opts.SubBatchSize ? Opts.SubBatchSize : 512;
  for (size_t Offset = 0; Offset < Params.size(); Offset += SubBatch) {
    const uint64_t Count =
        std::min<uint64_t>(SubBatch, Params.size() - Offset);
    // Queue phase: assemble the sub-batch spec from the point queue.
    WallTimer PrepareTimer;
    BatchSpec Spec;
    Spec.Model = &Net;
    Spec.Compiled = Compiled;
    Spec.Batch = Count;
    Spec.StartTime = Opts.StartTime;
    Spec.EndTime = Opts.EndTime;
    Spec.OutputSamples = Opts.OutputSamples;
    Spec.Options = Opts.Solver;
    Spec.RateConstantSets.reserve(Count);
    Spec.InitialStates.reserve(Count);
    for (uint64_t I = 0; I < Count; ++I) {
      Spec.RateConstantSets.push_back(
          std::move(Params[Offset + I].RateConstants));
      Spec.InitialStates.push_back(
          std::move(Params[Offset + I].InitialState));
    }
    PrepareSeconds.record(PrepareTimer.seconds());

    // Dispatch phase: run the sub-batch through the simulator.
    BatchResult Result;
    {
      TraceSpan SubBatchSpan("engine.sub_batch", "engine");
      WallTimer DispatchTimer;
      Result = Sim->run(Spec);
      DispatchSeconds.record(DispatchTimer.seconds());
      SubBatchSpan.setModeledSeconds(Result.SimulationTime.total());
    }
    SubBatchCount.add();
    Simulations.add(Count);
    FailureCount.add(Result.Failures);
    SubBatchSims.record(static_cast<double>(Count));

    logMessage(LogLevel::Info,
               "engine sub-batch %llu/%zu: %llu sims, %zu failures, "
               "modeled %.3gs",
               (unsigned long long)(Report.SubBatches + 1),
               (Params.size() + SubBatch - 1) / SubBatch,
               (unsigned long long)Count, Result.Failures,
               Result.SimulationTime.total());

    for (SimulationOutcome &O : Result.Outcomes)
      Report.Outcomes.push_back(std::move(O));
    Report.TotalStats.merge(Result.TotalStats);
    Report.Failures += Result.Failures;
    Report.HostWallSeconds += Result.HostWallSeconds;
    ++Report.SubBatches;

    auto accumulate = [](ModeledTime &Into, const ModeledTime &From) {
      Into.ComputeSeconds += From.ComputeSeconds;
      Into.MemorySeconds += From.MemorySeconds;
      Into.LaunchSeconds += From.LaunchSeconds;
      Into.HostSeconds += From.HostSeconds;
    };
    accumulate(Report.IntegrationTime, Result.IntegrationTime);
    accumulate(Report.SimulationTime, Result.SimulationTime);
  }
  ModeledSimSeconds.add(Report.SimulationTime.total());
  ModeledIntSeconds.add(Report.IntegrationTime.total());
  RunSpan.setModeledSeconds(Report.SimulationTime.total());
  Report.Metrics = M.snapshot();
  return Report;
}
