//===- core/BatchEngine.cpp -----------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "core/BatchEngine.h"

#include "device/DeviceRuntime.h"
#include "device/StreamTimeline.h"
#include "fabric/NodeCoordinator.h"
#include "sched/ShardedExecutor.h"
#include "support/Error.h"
#include "support/Logging.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <deque>

using namespace psg;

namespace {

void accumulateModeled(ModeledTime &Into, const ModeledTime &From) {
  Into.ComputeSeconds += From.ComputeSeconds;
  Into.MemorySeconds += From.MemorySeconds;
  Into.LaunchSeconds += From.LaunchSeconds;
  Into.HostSeconds += From.HostSeconds;
}

/// The sink behind run()/runParameterizations: re-materializes every
/// streamed outcome into a caller-owned vector at its global index, so
/// it tolerates the out-of-order delivery a completion-ordered sharded
/// run produces as well as the in-order single-device stream.
class MaterializingSink final : public OutcomeSink {
public:
  explicit MaterializingSink(std::vector<SimulationOutcome> &Into)
      : Into(Into) {}

  void consumeSubBatch(size_t FirstIndex,
                       std::vector<SimulationOutcome> &Outcomes) override {
    if (Into.size() < FirstIndex + Outcomes.size())
      Into.resize(FirstIndex + Outcomes.size());
    for (size_t I = 0; I < Outcomes.size(); ++I)
      Into[FirstIndex + I] = std::move(Outcomes[I]);
  }

private:
  std::vector<SimulationOutcome> &Into;
};

/// Copies the aggregate (non-outcome) fields of a stream report into a
/// materializing report.
void fillFromStream(EngineReport &Report, StreamReport &&Streamed) {
  Report.TotalStats = Streamed.TotalStats;
  Report.IntegrationTime = Streamed.IntegrationTime;
  Report.SimulationTime = Streamed.SimulationTime;
  Report.HostWallSeconds = Streamed.HostWallSeconds;
  Report.Failures = Streamed.Failures;
  Report.SubBatches = Streamed.SubBatches;
  Report.Metrics = std::move(Streamed.Metrics);
}

} // namespace

BatchEngine::BatchEngine(const CostModel &Model, EngineOptions Options)
    : Opts(std::move(Options)), Model(Model) {
  auto KindOrErr = parseRuntimeKind(Opts.Runtime);
  if (!KindOrErr)
    fatalError(KindOrErr.message());
  RuntimeOptions RtOpts;
  RtOpts.PoolMaxCachedBytes = Opts.PoolMaxCachedBytes;
  auto RuntimeOrErr =
      createDeviceRuntime(*KindOrErr, Model.gpu(), /*HostWorkers=*/0, RtOpts);
  if (!RuntimeOrErr)
    fatalError(RuntimeOrErr.message());
  Runtime = std::shared_ptr<DeviceRuntime>(std::move(*RuntimeOrErr));
  auto SimOrErr = createSimulator(Opts.SimulatorName, Model, /*HostWorkers=*/0,
                                  Runtime);
  if (!SimOrErr)
    fatalError(SimOrErr.message());
  Sim = std::move(*SimOrErr);
}

BatchEngine::~BatchEngine() = default;

std::shared_ptr<const CompiledModel>
BatchEngine::compiled(const ReactionNetwork &Net) {
  const uint64_t Fingerprint = networkFingerprint(Net);
  if (!CachedModel || CachedFingerprint != Fingerprint) {
    CachedModel = compileModel(Net);
    CachedFingerprint = Fingerprint;
  }
  return CachedModel;
}

StreamReport BatchEngine::stream(const ParameterSpace &Space,
                                 PointGenerator &Gen, OutcomeSink &Sink) {
  std::vector<std::vector<double>> Chunk;
  ParameterizationSource Source =
      [&](size_t MaxCount, std::vector<Parameterization> &Out) -> size_t {
    Chunk.clear();
    const size_t Count = Gen.next(MaxCount, Chunk);
    for (const std::vector<double> &Point : Chunk)
      Out.push_back(Space.applyPoint(Point));
    return Count;
  };
  return streamParameterizations(Space.network(), Source, Sink);
}

StreamReport
BatchEngine::streamParameterizations(const ReactionNetwork &Net,
                                     const ParameterizationSource &Source,
                                     OutcomeSink &Sink) {
  if (Opts.Fabric.enabled()) {
    // Cross-node path: the coordinator feeds shard grants to remote
    // workers over the configured fabric endpoint; each worker runs its
    // own local sharded executor.
    if (!Coordinator)
      Coordinator = std::make_unique<NodeCoordinator>(Opts, Opts.Fabric);
    return Coordinator->streamParameterizations(Net, Source, Sink).Stream;
  }
  if (Opts.Sched.enabled()) {
    // Multi-device sharded path: the executor owns the device fleet and
    // is kept warm across runs like Sim is.
    if (!Sharded)
      Sharded = std::make_unique<ShardedExecutor>(Model, Opts, Opts.Sched);
    return Sharded->streamParameterizations(Net, compiled(Net), Source, Sink)
        .Stream;
  }
  TraceSpan RunSpan("engine.run", "engine");
  MetricsRegistry &M = metrics();
  Counter &SubBatchCount = M.counter("psg.engine.sub_batches");
  Counter &Simulations = M.counter("psg.engine.simulations");
  Counter &FailureCount = M.counter("psg.engine.failures");
  Histogram &PrepareSeconds = M.histogram("psg.engine.sub_batch.prepare_s");
  Histogram &DispatchSeconds = M.histogram("psg.engine.sub_batch.dispatch_s");
  Histogram &SinkSeconds = M.histogram("psg.engine.sub_batch.sink_s");
  Histogram &SubBatchSims = M.histogram("psg.engine.sub_batch.simulations");
  Gauge &ModeledSimSeconds = M.gauge("psg.engine.modeled_simulation_s");
  Gauge &ModeledIntSeconds = M.gauge("psg.engine.modeled_integration_s");
  Gauge &PeakResident = M.gauge("psg.engine.peak_resident_outcomes");
  Gauge &PipelineOverlap = M.gauge("psg.engine.pipeline.overlap_ratio");

  StreamReport Report;

  // One compile per distinct network: every sub-batch below dispatches
  // against this shared compilation.
  std::shared_ptr<const CompiledModel> Compiled = compiled(Net);

  const uint64_t SubBatch = Opts.SubBatchSize ? Opts.SubBatchSize : 512;
  const uint64_t InFlight = Opts.InFlight ? Opts.InFlight : 1;

  /// One staged sub-batch: parameterizations assembled, not dispatched.
  struct PreparedBatch {
    BatchSpec Spec;
    size_t First = 0;
  };
  std::deque<PreparedBatch> Staged;
  size_t NextIndex = 0;
  // Engine-resident simulations: staged parameterizations plus the
  // outcomes of the sub-batch currently integrating or being consumed.
  size_t Resident = 0;
  bool SourceDry = false;
  // Recycled outcome storage, threaded to the simulator through
  // Spec.OutcomeBuffer so the outer vector is allocated once per run.
  std::vector<SimulationOutcome> Recycled;

  // Pulls and stages the next sub-batch; returns its host prepare
  // seconds, or a negative value when the source is exhausted.
  auto prepareNext = [&]() -> double {
    if (SourceDry)
      return -1.0;
    TraceSpan GenerateSpan("engine.stream.generate", "engine");
    WallTimer PrepareTimer;
    std::vector<Parameterization> Params;
    Params.reserve(SubBatch);
    const size_t Count = Source(SubBatch, Params);
    if (Count == 0) {
      SourceDry = true;
      return -1.0;
    }
    PreparedBatch P;
    P.First = NextIndex;
    P.Spec.Model = &Net;
    P.Spec.Compiled = Compiled;
    P.Spec.Batch = Count;
    P.Spec.StartTime = Opts.StartTime;
    P.Spec.EndTime = Opts.EndTime;
    P.Spec.OutputSamples = Opts.OutputSamples;
    P.Spec.Options = Opts.Solver;
    P.Spec.RateConstantSets.reserve(Count);
    P.Spec.InitialStates.reserve(Count);
    for (Parameterization &Param : Params) {
      P.Spec.RateConstantSets.push_back(std::move(Param.RateConstants));
      P.Spec.InitialStates.push_back(std::move(Param.InitialState));
    }
    NextIndex += Count;
    Resident += Count;
    Report.PeakResidentOutcomes =
        std::max(Report.PeakResidentOutcomes, Resident);
    Staged.push_back(std::move(P));
    const double Seconds = PrepareTimer.seconds();
    PrepareSeconds.record(Seconds);
    Report.PrepareWallSeconds += Seconds;
    return Seconds;
  };

  // On an asynchronous runtime the dispatch runs as a host task on a
  // dedicated compute stream, so the overlap phase below prepares the
  // next sub-batches genuinely concurrently with the integration and
  // the hidden-prepare accounting is measured (real stage intervals)
  // rather than modeled. The eager host runtime keeps the modeled path:
  // its streams complete inline, so dispatch-then-prepare serializes
  // exactly as before and results stay bit-identical either way (the
  // simulator call itself is untouched).
  const bool Async = Runtime && Runtime->asynchronous();
  std::unique_ptr<Stream> Compute;
  if (Async)
    Compute = Runtime->createStream("engine:compute");
  StreamTimeline Timeline;

  // The first sub-batch has no device execution to hide beneath, so its
  // preparation is always exposed.
  prepareNext();
  assert(!Staged.empty() && "engine stream without parameterizations");

  while (!Staged.empty()) {
    PreparedBatch P = std::move(Staged.front());
    Staged.pop_front();
    P.Spec.OutcomeBuffer = &Recycled;
    const uint64_t Count = P.Spec.Batch;

    // Dispatch phase: run the sub-batch through the simulator — inline
    // on the eager runtime, as a compute-stream task on an async one.
    // The task owns Result/Spec/Recycled until the fence below; the
    // caller thread only touches the staging state meanwhile.
    BatchResult Result;
    StageInterval ComputeSpan;
    std::exception_ptr DispatchError;
    StreamFence Fence;
    if (Async) {
      Compute->hostTask("engine.sub_batch", [&] {
        TraceSpan SubBatchSpan("engine.sub_batch", "engine");
        ComputeSpan.begin();
        try {
          Result = Sim->run(P.Spec);
        } catch (...) {
          DispatchError = std::current_exception();
        }
        ComputeSpan.end();
        if (!DispatchError)
          SubBatchSpan.setModeledSeconds(Result.SimulationTime.total());
        Fence.signal();
      });
    } else {
      TraceSpan SubBatchSpan("engine.sub_batch", "engine");
      ComputeSpan.begin();
      Result = Sim->run(P.Spec);
      ComputeSpan.end();
      SubBatchSpan.setModeledSeconds(Result.SimulationTime.total());
    }

    // Overlap phase: while this sub-batch's device execution runs,
    // build the following sub-batches up to the in-flight window. On
    // the async runtime these prepare intervals really execute under
    // the compute task; on the eager one the cost model bounds how much
    // of the host time the second stream would have hidden.
    double PreparedDuring = 0.0;
    while (Staged.size() + 1 < InFlight) {
      StageInterval PrepareSpan;
      PrepareSpan.begin();
      const double Seconds = prepareNext();
      PrepareSpan.end();
      if (Seconds < 0.0)
        break;
      Timeline.addTransfer(PrepareSpan);
      PreparedDuring += Seconds;
    }
    if (Async) {
      Fence.wait();
      if (DispatchError)
        std::rethrow_exception(DispatchError);
    }
    Timeline.addCompute(ComputeSpan);
    DispatchSeconds.record(ComputeSpan.seconds());
    SubBatchCount.add();
    Simulations.add(Count);
    FailureCount.add(Result.Failures);
    SubBatchSims.record(static_cast<double>(Count));
    if (!Async)
      Report.HiddenPrepareSeconds += Model.hiddenPrepareSeconds(
          PreparedDuring, Result.SimulationTime.total());

    logMessage(LogLevel::Info,
               "engine sub-batch %llu: %llu sims, %zu failures, "
               "modeled %.3gs",
               (unsigned long long)(Report.SubBatches + 1),
               (unsigned long long)Count, Result.Failures,
               Result.SimulationTime.total());

    // Reduce phase: hand the outcomes to the sink, then release the
    // trajectory storage (the outer vector is recycled into the next
    // sub-batch's outcome buffer).
    {
      TraceSpan SinkSpan("engine.stream.sink", "engine");
      WallTimer SinkTimer;
      Sink.consumeSubBatch(P.First, Result.Outcomes);
      SinkSeconds.record(SinkTimer.seconds());
    }
    Recycled = std::move(Result.Outcomes);
    Recycled.clear();
    assert(Resident >= Count && "resident accounting underflow");
    Resident -= Count;

    Report.TotalStats.merge(Result.TotalStats);
    Report.Simulations += Count;
    Report.Failures += Result.Failures;
    Report.HostWallSeconds += Result.HostWallSeconds;
    ++Report.SubBatches;
    accumulateModeled(Report.IntegrationTime, Result.IntegrationTime);
    accumulateModeled(Report.SimulationTime, Result.SimulationTime);

    // With InFlight == 1 the window above never stages ahead, so the
    // next sub-batch is prepared only now — fully exposed.
    if (Staged.empty())
      prepareNext();
  }

  // Async runtimes get the measured figure: the prepare intervals that
  // actually overlapped the compute-stream task, straight off the
  // timeline. Eager runtimes keep the modeled per-sub-batch sum.
  if (Async)
    Report.HiddenPrepareSeconds = Timeline.hiddenTransferSeconds();
  Report.OverlapRatio =
      Report.PrepareWallSeconds > 0.0
          ? Report.HiddenPrepareSeconds / Report.PrepareWallSeconds
          : 0.0;
  ModeledSimSeconds.add(Report.SimulationTime.total());
  ModeledIntSeconds.add(Report.IntegrationTime.total());
  PeakResident.set(static_cast<double>(Report.PeakResidentOutcomes));
  PipelineOverlap.set(Report.OverlapRatio);
  RunSpan.setModeledSeconds(Report.SimulationTime.total());
  Report.Metrics = M.snapshot();
  return Report;
}

EngineReport
BatchEngine::run(const ParameterSpace &Space,
                 const std::vector<std::vector<double>> &Points) {
  assert(!Points.empty() && "engine run without points");
  std::unique_ptr<PointGenerator> Gen = makeMaterializedGenerator(Points);
  EngineReport Report;
  Report.Outcomes.reserve(Points.size());
  MaterializingSink Sink(Report.Outcomes);
  fillFromStream(Report, stream(Space, *Gen, Sink));
  return Report;
}

EngineReport
BatchEngine::runParameterizations(const ReactionNetwork &Net,
                                  std::vector<Parameterization> Params) {
  assert(!Params.empty() && "engine run without parameterizations");
  size_t Next = 0;
  ParameterizationSource Source =
      [&](size_t MaxCount, std::vector<Parameterization> &Out) -> size_t {
    const size_t Count = std::min(MaxCount, Params.size() - Next);
    for (size_t I = 0; I < Count; ++I)
      Out.push_back(std::move(Params[Next + I]));
    Next += Count;
    return Count;
  };
  EngineReport Report;
  Report.Outcomes.reserve(Params.size());
  MaterializingSink Sink(Report.Outcomes);
  fillFromStream(Report, streamParameterizations(Net, Source, Sink));
  return Report;
}
