//===- check/OrderProbe.cpp -----------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "check/OrderProbe.h"

#include "ode/SolverRegistry.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace psg;

namespace {

/// One refinement point: mean accepted step vs end-time error.
struct RefinementPoint {
  double MeanStep = 0.0;
  double Error = 0.0;
};

/// Errors below this are treated as roundoff-dominated and discarded:
/// slopes flatten there and would drag the estimate down.
constexpr double ErrorFloor = 5e-13;

/// Integrates \p G once with the step pinned to Span/Steps and reports
/// the realized mean step and the mixed-relative end-time error against
/// the closed form. Pinning (InitialStep + MinScale = MaxScale = 1 +
/// tolerances loose enough that no step is ever rejected) freezes the
/// controller, so the measured error is the pure fixed-step global
/// error of the underlying formula — no ramp-up or PI-gain artifacts.
bool probeOnce(OdeSolver &Solver, const GoldenProblem &G, uint64_t Steps,
               RefinementPoint &Point) {
  const double Span = std::abs(G.Problem.EndTime - G.Problem.StartTime);
  SolverOptions Opts;
  Opts.RelTol = 0.5;
  Opts.AbsTol = 1.0;
  Opts.InitialStep = Span / static_cast<double>(Steps);
  Opts.MinScale = 1.0;
  Opts.MaxScale = 1.0;
  Opts.MaxSteps = Steps + 16;
  Opts.EnableStiffnessDetection = false; // Probe the pure method.
  std::vector<double> Y = G.Problem.InitialState;
  IntegrationResult Result = Solver.integrate(
      *G.Problem.System, G.Problem.StartTime, G.Problem.EndTime, Y, Opts);
  if (!Result.ok() || Result.Stats.AcceptedSteps == 0)
    return false;
  Point.MeanStep =
      Span / static_cast<double>(Result.Stats.AcceptedSteps);
  Point.Error = mixedRelativeError(Y, G.Problem.Exact(G.Problem.EndTime));
  return std::isfinite(Point.Error);
}

/// Median of pairwise slopes log(err_i/err_j) / log(h_i/h_j) over
/// consecutive refinement points. Points whose error sits at the
/// roundoff floor or whose step barely changed are skipped.
ErrorOr<OrderEstimate> fitOrder(std::vector<RefinementPoint> Points,
                                const std::string &SolverName,
                                const GoldenProblem &G) {
  std::vector<double> Slopes;
  for (size_t I = 0; I + 1 < Points.size(); ++I) {
    const RefinementPoint &A = Points[I], &B = Points[I + 1];
    if (A.Error < ErrorFloor || B.Error < ErrorFloor)
      continue;
    const double StepRatio = A.MeanStep / B.MeanStep;
    if (!(StepRatio > 1.2)) // Step barely changed: slope is noise.
      continue;
    Slopes.push_back(std::log(A.Error / B.Error) / std::log(StepRatio));
  }
  if (Slopes.size() < 2)
    return Status::failure(formatString(
        "order probe for %s on %s: only %zu usable refinement slopes",
        SolverName.c_str(), G.Name.c_str(), Slopes.size()));
  std::sort(Slopes.begin(), Slopes.end());
  OrderEstimate Estimate;
  Estimate.Solver = SolverName;
  Estimate.Problem = G.Name;
  Estimate.Measured = Slopes.size() % 2 == 1
                          ? Slopes[Slopes.size() / 2]
                          : 0.5 * (Slopes[Slopes.size() / 2 - 1] +
                                   Slopes[Slopes.size() / 2]);
  Estimate.Theoretical = theoreticalOrder(SolverName);
  Estimate.PointsUsed = Slopes.size() + 1;
  return Estimate;
}

} // namespace

double psg::theoreticalOrder(const std::string &SolverName) {
  if (SolverName == "rk4")
    return 4.0;
  if (SolverName == "rkf45") // Propagates the 5th-order B weights.
    return 5.0;
  if (SolverName == "dopri5")
    return 5.0;
  if (SolverName == "radau5")
    return 5.0;
  return 0.0; // Variable-order multistep methods: no single order.
}

ErrorOr<OrderEstimate>
psg::measureConvergenceOrder(const std::string &SolverName,
                             const GoldenProblem &G) {
  if (!G.Problem.Exact)
    return Status::failure("problem '" + G.Name +
                           "' has no closed form; cannot probe order");
  if (theoreticalOrder(SolverName) == 0.0)
    return Status::failure("solver '" + SolverName +
                           "' is variable-order; nothing to probe");
  auto SolverOr = createSolver(SolverName);
  if (!SolverOr)
    return SolverOr.status();
  OdeSolver &Solver = **SolverOr;

  // Halve the pinned step from Span/16 down to Span/512. The coarse end
  // stays out of the pre-asymptotic regime on the library's smooth
  // problems; the fine end stops before 5th-order errors sink into
  // roundoff (the ErrorFloor filter in fitOrder drops any that do).
  std::vector<RefinementPoint> Points;
  for (uint64_t Steps = 16; Steps <= 512; Steps *= 2) {
    RefinementPoint Point;
    if (probeOnce(Solver, G, Steps, Point))
      Points.push_back(Point);
  }
  return fitOrder(std::move(Points), SolverName, G);
}

ErrorOr<std::vector<OrderEstimate>>
psg::measureConvergenceOrders(const std::string &SolverName) {
  std::vector<OrderEstimate> Estimates;
  std::string FirstFailure;
  for (const GoldenProblem &G : goldenLibrary()) {
    if (!G.UsableForOrderProbe)
      continue;
    auto EstimateOr = measureConvergenceOrder(SolverName, G);
    if (EstimateOr)
      Estimates.push_back(*EstimateOr);
    else if (FirstFailure.empty())
      FirstFailure = EstimateOr.status().message();
  }
  if (Estimates.empty())
    return Status::failure("order probe produced no estimates for '" +
                           SolverName + "': " + FirstFailure);
  return Estimates;
}

double psg::medianMeasuredOrder(const std::vector<OrderEstimate> &Estimates) {
  if (Estimates.empty())
    return 0.0;
  std::vector<double> Orders;
  Orders.reserve(Estimates.size());
  for (const OrderEstimate &E : Estimates)
    Orders.push_back(E.Measured);
  std::sort(Orders.begin(), Orders.end());
  return Orders.size() % 2 == 1
             ? Orders[Orders.size() / 2]
             : 0.5 * (Orders[Orders.size() / 2 - 1] +
                      Orders[Orders.size() / 2]);
}
