//===- check/Golden.cpp ---------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "check/Golden.h"

#include "ode/Richardson.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace psg;

std::vector<GoldenProblem> psg::goldenLibrary() {
  std::vector<GoldenProblem> Library;
  auto add = [&](TestProblem P, bool OrderProbe) {
    GoldenProblem G;
    G.Name = P.System->name();
    G.Problem = std::move(P);
    G.UsableForOrderProbe = OrderProbe;
    Library.push_back(std::move(G));
  };
  // Smooth closed-form problems anchor the order probes; the stiff and
  // limit-cycle entries exercise accuracy only. The harmonic oscillator
  // is deliberately NOT an order probe: on the imaginary axis the
  // leading (h^6) error coefficient of every 5th-order method here is
  // anomalously small, so measured slopes sit near 6 throughout the
  // attainable precision range — a property of the methods, not a bug.
  add(makeExponentialDecay(), /*OrderProbe=*/true);
  add(makeLogistic(), /*OrderProbe=*/true);
  add(makeReversibleIsomerization(), /*OrderProbe=*/true);
  add(makeHarmonicOscillator(), /*OrderProbe=*/false);
  add(makeRobertson(), /*OrderProbe=*/false);
  add(makeBrusselatorOde(), /*OrderProbe=*/false);
  add(makeLinearStiff(), /*OrderProbe=*/false);
  return Library;
}

ErrorOr<GoldenProblem> psg::goldenProblem(const std::string &Name) {
  std::string Known;
  for (GoldenProblem &G : goldenLibrary()) {
    if (G.Name == Name)
      return std::move(G);
    if (!Known.empty())
      Known += ", ";
    Known += G.Name;
  }
  return Status::failure("unknown golden problem '" + Name +
                         "' (known: " + Known + ")");
}

std::vector<double> psg::goldenEndReference(const GoldenProblem &G) {
  if (G.Problem.Exact)
    return G.Problem.Exact(G.Problem.EndTime);
  if (!G.Problem.Reference.empty())
    return G.Problem.Reference;
  RichardsonOptions Opts;
  return richardsonReference(*G.Problem.System, G.Problem.StartTime,
                             G.Problem.EndTime, G.Problem.InitialState, Opts)
      .FinalState;
}

double psg::mixedRelativeError(const std::vector<double> &Got,
                               const std::vector<double> &Want) {
  if (Got.size() != Want.size())
    return std::numeric_limits<double>::infinity();
  double Norm = 0.0;
  for (double W : Want)
    Norm = std::max(Norm, std::abs(W));
  double Worst = 0.0;
  for (size_t I = 0; I < Want.size(); ++I) {
    if (!std::isfinite(Got[I]))
      return std::numeric_limits<double>::infinity();
    const double Scale = std::max(std::abs(Want[I]), 1e-3 * Norm);
    if (Scale == 0.0)
      continue;
    Worst = std::max(Worst, std::abs(Got[I] - Want[I]) / Scale);
  }
  return Worst;
}
