//===- check/Properties.cpp -----------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "check/Properties.h"

#include "ode/SolverRegistry.h"
#include "rbm/CuratedModels.h"
#include "rbm/MassAction.h"
#include "sim/Oracle.h"
#include "sim/Simulators.h"
#include "support/Random.h"
#include "support/StringUtils.h"

#include <cmath>

using namespace psg;

namespace {

/// Below this error the ladder sits on roundoff and tightening cannot
/// be expected to help further.
constexpr double RoundoffFloor = 1e-11;

/// A fully parameterized batch over \p Net: every simulation perturbs
/// the rate constants, so warm reruns exercise the view-rebinding and
/// constant-rewriting paths.
BatchSpec makeWarmColdSpec(const ReactionNetwork &Net,
                           std::vector<std::vector<double>> &Rates,
                           std::vector<std::vector<double>> &States,
                           uint64_t Batch, double EndTime) {
  BatchSpec Spec;
  Spec.Model = &Net;
  Spec.Batch = Batch;
  Spec.EndTime = EndTime;
  Spec.OutputSamples = 4;
  Spec.Options.RelTol = 1e-5;
  Spec.Options.AbsTol = 1e-8;

  const std::vector<double> Defaults = compileModel(Net)->DefaultConstants;
  const std::vector<double> Y0 = Net.initialState();
  Rng Generator(0xC0FFEEull);
  for (uint64_t I = 0; I < Batch; ++I) {
    std::vector<double> K = Defaults;
    for (double &V : K)
      V *= Generator.uniform(0.95, 1.05);
    Rates.push_back(std::move(K));
    States.push_back(Y0);
  }
  Spec.RateConstantSets = Rates;
  Spec.InitialStates = States;
  return Spec;
}

} // namespace

ErrorOr<ToleranceScalingResult>
psg::checkToleranceScaling(const std::string &SolverName,
                           const GoldenProblem &G, double Slack) {
  auto SolverOr = createSolver(SolverName);
  if (!SolverOr)
    return SolverOr.status();
  OdeSolver &Solver = **SolverOr;
  const std::vector<double> Reference = goldenEndReference(G);
  if (Reference.empty())
    return Status::failure("problem '" + G.Name + "' has no reference");

  ToleranceScalingResult Ladder;
  for (double RelTol = 1e-3; RelTol >= 0.99e-9; RelTol *= 1e-2) {
    SolverOptions Opts;
    Opts.RelTol = RelTol;
    Opts.AbsTol = RelTol * 1e-4;
    Opts.MaxSteps = 500000;
    std::vector<double> Y = G.Problem.InitialState;
    IntegrationResult Result = Solver.integrate(
        *G.Problem.System, G.Problem.StartTime, G.Problem.EndTime, Y, Opts);
    if (!Result.ok())
      return Status::failure(formatString(
          "%s on %s at rtol %.0e: integration failed: %s",
          SolverName.c_str(), G.Name.c_str(), RelTol,
          integrationStatusName(Result.Status)));
    Ladder.RelTols.push_back(RelTol);
    Ladder.Errors.push_back(mixedRelativeError(Y, Reference));
  }
  for (size_t I = 0; I + 1 < Ladder.Errors.size(); ++I) {
    const double Loose = Ladder.Errors[I], Tight = Ladder.Errors[I + 1];
    if (Tight <= RoundoffFloor)
      continue; // Both sit on roundoff; ordering is noise.
    if (Tight > Loose * Slack)
      return Status::failure(formatString(
          "%s on %s: tightening rtol %.0e -> %.0e grew the error "
          "%.3g -> %.3g",
          SolverName.c_str(), G.Name.c_str(), Ladder.RelTols[I],
          Ladder.RelTols[I + 1], Loose, Tight));
  }
  return Ladder;
}

Status psg::checkWarmColdInvariance(const std::string &SimulatorName,
                                    const ReactionNetwork &Model,
                                    const ReactionNetwork &RebindModel,
                                    uint64_t Batch, double EndTime) {
  auto SimOr = createSimulator(SimulatorName, CostModel::paperSetup());
  if (!SimOr)
    return SimOr.status();
  Simulator &Sim = **SimOr;

  std::vector<std::vector<double>> Rates, States;
  const BatchSpec Spec =
      makeWarmColdSpec(Model, Rates, States, Batch, EndTime);
  std::vector<std::vector<double>> OtherRates, OtherStates;
  const BatchSpec RebindSpec = makeWarmColdSpec(
      RebindModel, OtherRates, OtherStates, /*Batch=*/2, /*EndTime=*/0.5);

  const BatchResult Cold = Sim.run(Spec);
  const BatchResult Warm = Sim.run(Spec);
  if (Status S = compareBatchesBitExact(Cold, Warm); !S)
    return Status::failure(SimulatorName + " warm rerun: " + S.message());

  Sim.run(RebindSpec); // Forces every per-worker view to rebind.
  const BatchResult Rebound = Sim.run(Spec);
  if (Status S = compareBatchesBitExact(Cold, Rebound); !S)
    return Status::failure(SimulatorName + " after rebind: " + S.message());
  return Status::success();
}

Status psg::checkWarmColdInvarianceAllPersonalities() {
  const ReactionNetwork Model = makeLotkaVolterraNetwork();
  const ReactionNetwork Rebind = makeBrusselatorNetwork();
  for (auto &Sim : createAllSimulators(CostModel::paperSetup()))
    if (Status S = checkWarmColdInvariance(Sim->name(), Model, Rebind); !S)
      return S;
  return Status::success();
}
