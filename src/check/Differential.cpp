//===- check/Differential.cpp ---------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "check/Differential.h"

#include "check/Golden.h"
#include "ode/Richardson.h"
#include "rbm/MassAction.h"
#include "sim/Simulators.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace psg;

namespace {

/// Worst mixed-relative deviation of one simulator trajectory against
/// the reference trajectory (shared grid, compared by sample index).
/// Each component is scaled by max(|ref|, 1e-3 * its own trajectory
/// peak): a species that decays from O(1) to 1e-10 is compared on the
/// scale it actually lived at, not at its vanishing tail, where the
/// solvers only promise absolute (not relative) accuracy.
double worstSampleError(const Trajectory &Got, const Trajectory &Ref) {
  if (Got.numSamples() != Ref.numSamples() ||
      Got.dimension() != Ref.dimension())
    return std::numeric_limits<double>::infinity();
  std::vector<double> Peak(Ref.dimension(), 0.0);
  for (size_t S = 0; S < Ref.numSamples(); ++S)
    for (size_t V = 0; V < Ref.dimension(); ++V)
      Peak[V] = std::max(Peak[V], std::abs(Ref.value(S, V)));
  double Worst = 0.0;
  for (size_t S = 0; S < Ref.numSamples(); ++S) {
    for (size_t V = 0; V < Ref.dimension(); ++V) {
      const double Val = Got.value(S, V);
      if (!std::isfinite(Val))
        return std::numeric_limits<double>::infinity();
      const double Want = Ref.value(S, V);
      const double Scale = std::max(std::abs(Want), 1e-3 * Peak[V]);
      if (Scale == 0.0)
        continue;
      Worst = std::max(Worst, std::abs(Val - Want) / Scale);
    }
  }
  return Worst;
}

/// Computes the Richardson reference of \p Case on the simulators'
/// output grid. Fails when the extrapolant does not stabilize.
ErrorOr<RichardsonReference> referenceFor(const CheckCase &Case) {
  CompiledOdeSystem Sys(Case.Model);
  const std::vector<double> Grid =
      uniformGrid(Case.StartTime, Case.EndTime,
                  std::max<size_t>(2, Case.OutputSamples));
  RichardsonOptions Opts;
  RichardsonReference Ref =
      richardsonReference(Sys, Case.StartTime, Case.EndTime,
                          Case.Model.initialState(), Opts, &Grid);
  if (!Ref.Converged)
    return Status::failure(formatString(
        "reference did not converge within %llu steps (estimate %.3g)",
        (unsigned long long)Ref.StepsPerPass, Ref.ErrorEstimate));
  return Ref;
}

} // namespace

Status psg::checkCaseAgainstReference(const CheckCase &Case,
                                      double CompareTol,
                                      std::string *OutSimulator) {
  auto RefOr = referenceFor(Case);
  if (!RefOr) {
    if (OutSimulator)
      *OutSimulator = "reference";
    return RefOr.status();
  }
  const RichardsonReference &Ref = *RefOr;

  BatchSpec Spec;
  Spec.Model = &Case.Model;
  Spec.Batch = 1;
  Spec.StartTime = Case.StartTime;
  Spec.EndTime = Case.EndTime;
  Spec.OutputSamples = std::max<size_t>(2, Case.OutputSamples);
  Spec.Options = Case.Options;

  for (auto &Sim : createAllSimulators(CostModel::paperSetup())) {
    if (!Case.Simulator.empty() && Sim->name() != Case.Simulator)
      continue;
    BatchResult Result = Sim->run(Spec);
    if (OutSimulator)
      *OutSimulator = Sim->name();
    if (Result.Outcomes.size() != 1)
      return Status::failure(Sim->name() + ": batch produced " +
                             formatString("%zu", Result.Outcomes.size()) +
                             " outcomes for 1 simulation");
    const SimulationOutcome &Outcome = Result.Outcomes[0];
    if (!Outcome.Result.ok())
      return Status::failure(formatString(
          "%s (%s): integration failed: %s", Sim->name().c_str(),
          Outcome.SolverUsed.c_str(),
          integrationStatusName(Outcome.Result.Status)));
    const double Worst = worstSampleError(Outcome.Dynamics, Ref.Dynamics);
    if (Worst > CompareTol)
      return Status::failure(formatString(
          "%s (%s): worst mixed-relative sample error %.3g exceeds %.3g",
          Sim->name().c_str(), Outcome.SolverUsed.c_str(), Worst,
          CompareTol));
  }
  if (OutSimulator)
    OutSimulator->clear();
  return Status::success();
}

FuzzReport psg::runDifferentialFuzz(const FuzzOptions &Opts) {
  static Counter &CasesCounter = metrics().counter("psg.check.fuzz.cases");
  static Counter &DivergenceCounter =
      metrics().counter("psg.check.fuzz.divergences");
  static Counter &SkippedCounter =
      metrics().counter("psg.check.fuzz.skipped");

  FuzzReport Report;
  Rng Master(Opts.Seed);
  WallTimer Timer;
  for (size_t I = 0; I < Opts.Cases; ++I) {
    if (Opts.TimeBudgetSeconds > 0.0 &&
        Timer.seconds() > Opts.TimeBudgetSeconds) {
      Report.TimeBudgetExhausted = true;
      break;
    }
    CheckCase Case;
    RandomRbmOptions Gen = Opts.Generator;
    Gen.Seed = Master.nextU64();
    Case.Model = generateRandomRbm(Gen);
    Case.Seed = Gen.Seed;
    Case.StartTime = 0.0;
    Case.EndTime = Opts.EndTime;
    Case.OutputSamples = Opts.OutputSamples;
    Case.Options.AbsTol = Opts.SolverAbsTol;
    Case.Options.RelTol = Opts.SolverRelTol;
    // Generous budget: random stiff networks can legitimately cost the
    // multistep solvers several hundred thousand steps over the window,
    // and a spurious max-steps failure would read as a divergence.
    Case.Options.MaxSteps = 1000000;

    std::string Simulator;
    Status Verdict =
        checkCaseAgainstReference(Case, Opts.CompareTol, &Simulator);
    ++Report.CasesRun;
    CasesCounter.add();
    if (Verdict.ok())
      continue;
    if (Simulator == "reference") {
      // No trustworthy oracle for this model: not a solver divergence.
      ++Report.CasesSkipped;
      SkippedCounter.add();
      continue;
    }

    // Minimize: isolate the diverging personality, then halve the
    // horizon while the divergence persists.
    Case.Simulator = Simulator;
    while (true) {
      CheckCase Shorter = Case;
      Shorter.EndTime = 0.5 * (Case.StartTime + Case.EndTime);
      if (Shorter.EndTime - Shorter.StartTime < 1e-3)
        break;
      // Keep halving only while the same personality still diverges
      // (the reference may also stop converging on the shorter window).
      std::string ShortSim;
      Status S =
          checkCaseAgainstReference(Shorter, Opts.CompareTol, &ShortSim);
      if (S.ok() || ShortSim != Simulator)
        break;
      Case = Shorter;
      Case.Detail = S.message();
    }
    if (Case.Detail.empty())
      Case.Detail = Verdict.message();

    FuzzDivergence Divergence;
    Divergence.Case = Case;
    const std::string Dir = Opts.ReproDir.empty() ? "." : Opts.ReproDir;
    const std::string Path =
        Dir + formatString("/fuzz-case-seed%llu.psg",
                           (unsigned long long)Case.Seed);
    if (saveCaseFile(Case, Path).ok())
      Divergence.ReproPath = Path;
    Report.Divergences.push_back(std::move(Divergence));
    DivergenceCounter.add();
  }
  return Report;
}

Status psg::replayCase(const CheckCase &Case, double CompareTol) {
  return checkCaseAgainstReference(Case, CompareTol);
}
