//===- check/CaseFile.h - Fuzz repro case files -----------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Self-contained `.psg` repro case files emitted by the differential
/// fuzzer when a divergence survives minimization. A case file is the
/// standard model text format (rbm/ModelIo.h) prefixed with
/// `check <key> <values...>` metadata lines carrying the seed, time
/// window, tolerances, and (on failure) the diverging simulator and a
/// one-line diagnosis. Replaying a case file re-runs exactly the
/// comparison that failed: `psg-check replay <file.psg>`.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_CHECK_CASEFILE_H
#define PSG_CHECK_CASEFILE_H

#include "ode/SolverOptions.h"
#include "rbm/ReactionNetwork.h"

namespace psg {

/// One differential-testing case: a model plus the simulation window and
/// tolerances it is integrated under.
struct CheckCase {
  ReactionNetwork Model;
  uint64_t Seed = 0;        ///< Fuzz seed that generated the case.
  double StartTime = 0.0;
  double EndTime = 1.0;
  size_t OutputSamples = 0; ///< Trajectory grid points (>= 2 when sampled).
  SolverOptions Options;    ///< AbsTol/RelTol/MaxSteps used by every sim.
  std::string Simulator;    ///< Diverging simulator ("" before divergence).
  std::string Detail;       ///< One-line diagnosis ("" before divergence).
};

/// Serializes \p Case to the `.psg` case-file text (round-trips with
/// parseCaseText).
std::string writeCaseText(const CheckCase &Case);

/// Parses a case file; fails with a line-numbered message.
ErrorOr<CheckCase> parseCaseText(const std::string &Text);

/// Saves \p Case to \p Path.
Status saveCaseFile(const CheckCase &Case, const std::string &Path);

/// Loads a case from \p Path.
ErrorOr<CheckCase> loadCaseFile(const std::string &Path);

} // namespace psg

#endif // PSG_CHECK_CASEFILE_H
