//===- check/CaseFile.cpp -------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "check/CaseFile.h"

#include "rbm/ModelIo.h"
#include "support/StringUtils.h"

#include <cinttypes>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace psg;

std::string psg::writeCaseText(const CheckCase &Case) {
  std::string Text = "# psg-check differential-testing case\n";
  Text += formatString("check seed %llu\n", (unsigned long long)Case.Seed);
  Text += formatString("check window %.17g %.17g\n", Case.StartTime,
                       Case.EndTime);
  Text += formatString("check samples %zu\n", Case.OutputSamples);
  Text += formatString("check tolerances %.17g %.17g\n", Case.Options.AbsTol,
                       Case.Options.RelTol);
  Text += formatString("check maxsteps %llu\n",
                       (unsigned long long)Case.Options.MaxSteps);
  if (!Case.Simulator.empty())
    Text += "check simulator " + Case.Simulator + "\n";
  if (!Case.Detail.empty()) {
    // The diagnosis must stay one line to keep the grammar line-based.
    std::string Detail = Case.Detail;
    for (char &C : Detail)
      if (C == '\n' || C == '\r')
        C = ' ';
    Text += "check detail " + Detail + "\n";
  }
  Text += writeModelText(Case.Model);
  return Text;
}

ErrorOr<CheckCase> psg::parseCaseText(const std::string &Text) {
  CheckCase Case;
  std::string ModelText;
  std::istringstream Stream(Text);
  std::string Line;
  unsigned LineNo = 0;
  auto fail = [&](const std::string &Msg) {
    return Status::failure(formatString("case line %u: ", LineNo) + Msg);
  };
  bool SawSeed = false;
  while (std::getline(Stream, Line)) {
    ++LineNo;
    const std::string_view Trimmed = trim(Line);
    if (!startsWith(Trimmed, "check ")) {
      // Everything that is not check metadata belongs to the model text
      // (preserve line numbers for the model parser's own diagnostics).
      ModelText += Line;
      ModelText += '\n';
      continue;
    }
    const std::vector<std::string> Fields = splitWhitespace(Trimmed);
    if (Fields.size() < 2)
      return fail("missing check key");
    const std::string &Key = Fields[1];
    if (Key == "seed") {
      if (Fields.size() != 3)
        return fail("expected 'check seed <n>'");
      Case.Seed = std::strtoull(Fields[2].c_str(), nullptr, 10);
      SawSeed = true;
    } else if (Key == "window") {
      if (Fields.size() != 4 || !parseDouble(Fields[2], Case.StartTime) ||
          !parseDouble(Fields[3], Case.EndTime))
        return fail("expected 'check window <t0> <tend>'");
    } else if (Key == "samples") {
      unsigned Samples = 0;
      if (Fields.size() != 3 || !parseUnsigned(Fields[2], Samples))
        return fail("expected 'check samples <n>'");
      Case.OutputSamples = Samples;
    } else if (Key == "tolerances") {
      if (Fields.size() != 4 ||
          !parseDouble(Fields[2], Case.Options.AbsTol) ||
          !parseDouble(Fields[3], Case.Options.RelTol))
        return fail("expected 'check tolerances <abs> <rel>'");
    } else if (Key == "maxsteps") {
      if (Fields.size() != 3)
        return fail("expected 'check maxsteps <n>'");
      Case.Options.MaxSteps = std::strtoull(Fields[2].c_str(), nullptr, 10);
    } else if (Key == "simulator") {
      if (Fields.size() != 3)
        return fail("expected 'check simulator <name>'");
      Case.Simulator = Fields[2];
    } else if (Key == "detail") {
      // The detail is free-form: everything after the key verbatim.
      const size_t Pos = Trimmed.find("detail");
      Case.Detail = std::string(trim(Trimmed.substr(Pos + 6)));
    } else {
      return fail("unknown check key '" + Key + "'");
    }
  }
  if (!SawSeed)
    return Status::failure("case file has no 'check seed' line");
  auto ModelOr = parseModelText(ModelText);
  if (!ModelOr)
    return ModelOr.status();
  Case.Model = std::move(*ModelOr);
  return Case;
}

Status psg::saveCaseFile(const CheckCase &Case, const std::string &Path) {
  std::ofstream Out(Path);
  if (!Out)
    return Status::failure("cannot open '" + Path + "' for writing");
  Out << writeCaseText(Case);
  Out.close();
  if (!Out)
    return Status::failure("error writing '" + Path + "'");
  return Status::success();
}

ErrorOr<CheckCase> psg::loadCaseFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Status::failure("cannot open '" + Path + "'");
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  auto CaseOr = parseCaseText(Buffer.str());
  if (!CaseOr)
    return Status::failure("'" + Path + "': " + CaseOr.status().message());
  return CaseOr;
}
