//===- check/OrderProbe.h - Empirical convergence orders --------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Empirical convergence-order measurement. Every fixed-order solver —
/// adaptive or not — is probed with its step PINNED (initial step set,
/// growth/shrink scale clamped to 1, tolerances loosened so no step is
/// rejected), then the step is halved and the global end-time error
/// against the closed form is regressed on log-log axes. Pinning
/// removes every controller artifact (ramp-up, PI gains, tolerance-to-
/// step mapping), so the slope is the order of the propagated formula
/// itself. A solver conforms when the median slope on the golden
/// library's order-probe problems lands within a window of its
/// theoretical order.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_CHECK_ORDERPROBE_H
#define PSG_CHECK_ORDERPROBE_H

#include "check/Golden.h"

namespace psg {

/// One (solver, problem) order measurement.
struct OrderEstimate {
  std::string Solver;
  std::string Problem;
  double Measured = 0.0;    ///< Median pairwise slope of log err vs log h.
  double Theoretical = 0.0; ///< Expected order (theoreticalOrder()).
  size_t PointsUsed = 0;    ///< Refinement points that survived filtering.
};

/// The theoretical convergence order of the method registered under
/// \p SolverName, or 0 for variable-order methods (adams, bdf, lsoda,
/// vode) that have no single order to verify.
double theoreticalOrder(const std::string &SolverName);

/// Measures the empirical order of \p SolverName on \p G, which must be
/// an order-probe golden problem (smooth, closed form). Fails when the
/// solver is unknown, the problem lacks an exact solution, or too few
/// refinement points produce a measurable error.
ErrorOr<OrderEstimate> measureConvergenceOrder(const std::string &SolverName,
                                               const GoldenProblem &G);

/// Measures \p SolverName on every order-probe golden problem and
/// returns the per-problem estimates (problems where the probe fails
/// are skipped; fails only when every problem fails).
ErrorOr<std::vector<OrderEstimate>>
measureConvergenceOrders(const std::string &SolverName);

/// Median of the measured orders in \p Estimates (0 when empty).
double medianMeasuredOrder(const std::vector<OrderEstimate> &Estimates);

} // namespace psg

#endif // PSG_CHECK_ORDERPROBE_H
