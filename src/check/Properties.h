//===- check/Properties.h - Solver/dispatch invariants ----------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cross-cutting properties of the numerical stack, checked as
/// executable invariants rather than pointwise regressions:
///
///  - Tolerance scaling: tightening the relative tolerance must
///    (monotonically, up to a small slack and a roundoff floor) reduce
///    the error against a golden problem's reference solution.
///  - Warm/cold invariance: rerunning a batch on a warm simulator
///    (pooled solver workspaces, bound per-worker views, reused
///    compilations) must reproduce the cold run bit-for-bit, including
///    after an interleaved batch on a different network forces every
///    view to rebind (the PR 2 zero-recompile dispatch contract).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_CHECK_PROPERTIES_H
#define PSG_CHECK_PROPERTIES_H

#include "check/Golden.h"
#include "rbm/ReactionNetwork.h"

namespace psg {

/// The measured tolerance-error ladder of one solver on one problem.
struct ToleranceScalingResult {
  std::vector<double> RelTols; ///< The swept tolerances, loosest first.
  std::vector<double> Errors;  ///< Mixed-relative end-state errors.
};

/// Sweeps \p SolverName over a tolerance ladder (1e-3 .. 1e-9, two
/// decades apart) on \p G and verifies each tightening reduces the
/// error against the problem's reference: Errors[k+1] <= Slack *
/// Errors[k], waived below a roundoff floor. Fails on a violated step
/// or a failed integration; returns the measured ladder otherwise.
ErrorOr<ToleranceScalingResult>
checkToleranceScaling(const std::string &SolverName, const GoldenProblem &G,
                      double Slack = 1.2);

/// Cold-vs-warm bit-exactness of \p SimulatorName on \p Model: a batch
/// of \p Batch perturbed parameterizations is run on a fresh simulator,
/// rerun warm, then rerun again after an interleaved batch on
/// \p RebindModel. Both reruns must match the cold run bit-for-bit
/// (sim/Oracle.h).
Status checkWarmColdInvariance(const std::string &SimulatorName,
                               const ReactionNetwork &Model,
                               const ReactionNetwork &RebindModel,
                               uint64_t Batch = 4, double EndTime = 1.0);

/// Runs checkWarmColdInvariance for every personality on the curated
/// Lotka-Volterra / Brusselator pair; fails on the first violation.
Status checkWarmColdInvarianceAllPersonalities();

} // namespace psg

#endif // PSG_CHECK_PROPERTIES_H
