//===- check/Differential.h - Randomized differential fuzzing ---*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential fuzzer: seeded random reaction networks
/// (rbm/SyntheticGenerator.h) are integrated by every registered
/// simulator personality and compared — on a shared uniform output grid —
/// against a Richardson-extrapolated fixed-step reference that shares no
/// adaptive-stepping code with the production solvers. A personality
/// counts as diverged when its worst mixed-relative sample error exceeds
/// the comparison tolerance or its integration fails outright. Diverging
/// cases are minimized (the failing simulator is isolated and the time
/// horizon repeatedly halved while the divergence persists) and dumped
/// as replayable `.psg` case files (check/CaseFile.h).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_CHECK_DIFFERENTIAL_H
#define PSG_CHECK_DIFFERENTIAL_H

#include "check/CaseFile.h"
#include "rbm/SyntheticGenerator.h"

namespace psg {

/// Controls for a fuzz run.
struct FuzzOptions {
  uint64_t Seed = 1;   ///< Master seed; per-case seeds derive from it.
  size_t Cases = 50;   ///< Random models to generate and compare.
  /// Model-shape knobs (species/reaction bounds, Hill fraction,
  /// stiffness spread). The Seed field is overridden per case.
  RandomRbmOptions Generator;
  double EndTime = 5.0;      ///< Simulation horizon of every case.
  size_t OutputSamples = 17; ///< Shared comparison grid (both endpoints).
  double SolverAbsTol = 1e-9; ///< Absolute tolerance given to every sim.
  double SolverRelTol = 1e-6; ///< Relative tolerance given to every sim.
  /// Divergence threshold on the worst mixed-relative sample error. The
  /// slack over SolverRelTol absorbs dense-output interpolation error
  /// and tolerance-proportional global error growth.
  double CompareTol = 5e-3;
  double TimeBudgetSeconds = 0.0; ///< Stop generating after this (0: off).
  std::string ReproDir;           ///< Where minimized cases go ("": cwd).
};

/// One minimized divergence.
struct FuzzDivergence {
  CheckCase Case;        ///< Minimized repro (Simulator/Detail filled in).
  std::string ReproPath; ///< Written case file ("" when saving failed).
};

/// Outcome of a fuzz run.
struct FuzzReport {
  size_t CasesRun = 0;
  size_t CasesSkipped = 0; ///< Reference did not converge; not compared.
  std::vector<FuzzDivergence> Divergences;
  bool TimeBudgetExhausted = false;

  bool ok() const { return Divergences.empty(); }
};

/// Integrates \p Case with every personality (or only Case.Simulator
/// when set) and compares against the Richardson reference. Success
/// means agreement within \p CompareTol; a divergence is reported as a
/// failure Status naming the personality in \p OutSimulator (may be
/// null). A non-converging reference fails with OutSimulator set to
/// "reference".
Status checkCaseAgainstReference(const CheckCase &Case, double CompareTol,
                                 std::string *OutSimulator = nullptr);

/// Runs \p Opts.Cases seeded random cases; minimizes and dumps every
/// divergence. Records `psg.check.fuzz.{cases,divergences,skipped}`.
FuzzReport runDifferentialFuzz(const FuzzOptions &Opts);

/// Replays a loaded case file exactly as the fuzzer compared it.
Status replayCase(const CheckCase &Case, double CompareTol = 5e-3);

} // namespace psg

#endif // PSG_CHECK_DIFFERENTIAL_H
