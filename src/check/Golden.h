//===- check/Golden.h - Analytic golden-problem library ---------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conformance harness's golden library: a fixed set of reference
/// problems (linear decay, harmonic oscillator, 2-species mass action,
/// Robertson, Brusselator, split-eigenvalue linear system) each paired
/// with the most trustworthy reference available — the closed form when
/// one exists, a literature end-state or a Richardson-extrapolated
/// solution otherwise. Every registered solver is expected to reproduce
/// these references; the smooth closed-form entries additionally anchor
/// the empirical convergence-order probes (check/OrderProbe.h).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_CHECK_GOLDEN_H
#define PSG_CHECK_GOLDEN_H

#include "ode/TestProblems.h"
#include "support/Error.h"

namespace psg {

/// One golden-library entry.
struct GoldenProblem {
  std::string Name;
  TestProblem Problem;
  /// True for smooth problems with a closed form, where the global error
  /// at EndTime can be measured exactly — the order-probe anchors.
  bool UsableForOrderProbe = false;
};

/// The golden library, in a stable order.
std::vector<GoldenProblem> goldenLibrary();

/// Returns the entry named \p Name, or fails listing the known names.
ErrorOr<GoldenProblem> goldenProblem(const std::string &Name);

/// The reference end state of \p G: the closed form when available, the
/// stored literature reference otherwise, and a Richardson-extrapolated
/// solution as the last resort (computed on demand).
std::vector<double> goldenEndReference(const GoldenProblem &G);

/// Mixed relative error of \p Got against \p Want: per-component error
/// scaled by max(|want_i|, 1e-3 * ||want||_inf), the comparison norm
/// used throughout the conformance harness so near-zero components do
/// not explode the measure.
double mixedRelativeError(const std::vector<double> &Got,
                          const std::vector<double> &Want);

} // namespace psg

#endif // PSG_CHECK_GOLDEN_H
