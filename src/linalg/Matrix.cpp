//===- linalg/Matrix.cpp --------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "linalg/Matrix.h"

#include <cmath>

using namespace psg;

double psg::infinityNorm(const Matrix &M) {
  double Max = 0.0;
  for (size_t R = 0; R < M.rows(); ++R) {
    double RowSum = 0.0;
    const double *Row = M.rowData(R);
    for (size_t C = 0; C < M.cols(); ++C)
      RowSum += std::abs(Row[C]);
    Max = std::max(Max, RowSum);
  }
  return Max;
}

double psg::frobeniusNorm(const Matrix &M) {
  double Sum = 0.0;
  for (size_t R = 0; R < M.rows(); ++R) {
    const double *Row = M.rowData(R);
    for (size_t C = 0; C < M.cols(); ++C)
      Sum += Row[C] * Row[C];
  }
  return std::sqrt(Sum);
}
