//===- linalg/VectorOps.cpp -----------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "linalg/VectorOps.h"

#include <cassert>
#include <cmath>

using namespace psg;

double psg::weightedRmsNorm(const double *V, const double *Scale, size_t N,
                            double AbsTol, double RelTol) {
  assert(N > 0 && "norm of empty vector");
  double Sum = 0.0;
  for (size_t I = 0; I < N; ++I) {
    double W = AbsTol + RelTol * std::abs(Scale[I]);
    double E = V[I] / W;
    Sum += E * E;
  }
  return std::sqrt(Sum / static_cast<double>(N));
}

double psg::weightedRmsNorm2(const double *V, const double *ScaleA,
                             const double *ScaleB, size_t N, double AbsTol,
                             double RelTol) {
  assert(N > 0 && "norm of empty vector");
  double Sum = 0.0;
  for (size_t I = 0; I < N; ++I) {
    double S = std::max(std::abs(ScaleA[I]), std::abs(ScaleB[I]));
    double W = AbsTol + RelTol * S;
    double E = V[I] / W;
    Sum += E * E;
  }
  return std::sqrt(Sum / static_cast<double>(N));
}

void psg::axpy(double Alpha, const double *X, double *Y, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Y[I] += Alpha * X[I];
}

double psg::norm2(const double *V, size_t N) {
  double Sum = 0.0;
  for (size_t I = 0; I < N; ++I)
    Sum += V[I] * V[I];
  return std::sqrt(Sum);
}

double psg::normInf(const double *V, size_t N) {
  double Max = 0.0;
  for (size_t I = 0; I < N; ++I)
    Max = std::max(Max, std::abs(V[I]));
  return Max;
}

double psg::dot(const double *A, const double *B, size_t N) {
  double Sum = 0.0;
  for (size_t I = 0; I < N; ++I)
    Sum += A[I] * B[I];
  return Sum;
}

bool psg::allFinite(const double *V, size_t N) {
  for (size_t I = 0; I < N; ++I)
    if (!std::isfinite(V[I]))
      return false;
  return true;
}

bool psg::allFinite(const std::vector<double> &V) {
  return allFinite(V.data(), V.size());
}
