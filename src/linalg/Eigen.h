//===- linalg/Eigen.h - Spectral estimates ----------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cheap spectral-radius estimates for the engine's stiffness heuristic
/// (phase P2): a simulation whose Jacobian has a large dominant eigenvalue
/// magnitude is routed to the implicit Radau IIA solver.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_LINALG_EIGEN_H
#define PSG_LINALG_EIGEN_H

#include "linalg/Matrix.h"

namespace psg {

/// Upper bound on the spectral radius from Gershgorin discs
/// (max over rows of sum_j |a_ij|); exact enough for routing decisions.
double gershgorinSpectralBound(const Matrix &A);

/// Power-iteration estimate of |lambda_max|. \p MaxIters bounds the work;
/// returns the best estimate reached (0 for the zero matrix).
double powerIterationSpectralRadius(const Matrix &A, unsigned MaxIters = 50,
                                    double Tolerance = 1e-3);

} // namespace psg

#endif // PSG_LINALG_EIGEN_H
