//===- linalg/VectorOps.h - Vector helpers ----------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Vector kernels shared by the ODE solvers: the tolerance-weighted RMS norm
/// used for step-error control, plus basic BLAS-1 style operations.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_LINALG_VECTOROPS_H
#define PSG_LINALG_VECTOROPS_H

#include <cstddef>
#include <vector>

namespace psg {

/// Weighted RMS norm: sqrt(mean((V[i] / (AbsTol + RelTol*|Scale[i]|))^2)).
/// This is the classic error norm of Hairer & Wanner / ODEPACK.
double weightedRmsNorm(const double *V, const double *Scale, size_t N,
                       double AbsTol, double RelTol);

/// Same with two scale vectors, weighting by max(|A[i]|, |B[i]|).
double weightedRmsNorm2(const double *V, const double *ScaleA,
                        const double *ScaleB, size_t N, double AbsTol,
                        double RelTol);

/// Y += Alpha * X.
void axpy(double Alpha, const double *X, double *Y, size_t N);

/// Euclidean norm.
double norm2(const double *V, size_t N);

/// Max-abs norm.
double normInf(const double *V, size_t N);

/// Dot product.
double dot(const double *A, const double *B, size_t N);

/// Returns true if every element is finite.
bool allFinite(const double *V, size_t N);
bool allFinite(const std::vector<double> &V);

} // namespace psg

#endif // PSG_LINALG_VECTOROPS_H
