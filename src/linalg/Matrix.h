//===- linalg/Matrix.h - Dense matrices -------------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Row-major dense matrices over double or complex<double>. Sized for the
/// Jacobians of reaction networks (tens to a few thousand rows); no attempt
/// is made at blocking or SIMD beyond what the compiler autovectorizes.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_LINALG_MATRIX_H
#define PSG_LINALG_MATRIX_H

#include <cassert>
#include <complex>
#include <cstddef>
#include <vector>

namespace psg {

/// Row-major dense matrix of element type \p T.
template <typename T> class DenseMatrix {
public:
  DenseMatrix() = default;

  /// Creates a RowsxCols matrix of zeros.
  DenseMatrix(size_t Rows, size_t Cols)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, T{}) {}

  /// Returns the identity matrix of order \p N.
  static DenseMatrix identity(size_t N) {
    DenseMatrix M(N, N);
    for (size_t I = 0; I < N; ++I)
      M(I, I) = T{1};
    return M;
  }

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  bool isSquare() const { return NumRows == NumCols; }
  bool empty() const { return Data.empty(); }

  /// Element access (row-major). Asserted bounds.
  T &operator()(size_t Row, size_t Col) {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[Row * NumCols + Col];
  }
  const T &operator()(size_t Row, size_t Col) const {
    assert(Row < NumRows && Col < NumCols && "matrix index out of range");
    return Data[Row * NumCols + Col];
  }

  /// Raw pointer to row \p Row.
  T *rowData(size_t Row) {
    assert(Row < NumRows && "row out of range");
    return Data.data() + Row * NumCols;
  }
  const T *rowData(size_t Row) const {
    assert(Row < NumRows && "row out of range");
    return Data.data() + Row * NumCols;
  }

  /// Resizes and zero-fills the matrix. Drops any pattern claim.
  void resize(size_t Rows, size_t Cols) {
    NumRows = Rows;
    NumCols = Cols;
    Data.assign(Rows * Cols, T{});
    PatternOwner = nullptr;
    PatternEpoch = 0;
  }

  /// Resizes without the zero-fill when the shape already matches (the
  /// existing contents are kept); otherwise falls back to resize(). For
  /// fillers that overwrite every element anyway — they pay the O(N^2)
  /// clear only on a real shape change. Drops any pattern claim, since
  /// the caller is about to replace the contents wholesale.
  void ensureShape(size_t Rows, size_t Cols) {
    if (NumRows != Rows || NumCols != Cols) {
      resize(Rows, Cols);
      return;
    }
    PatternOwner = nullptr;
    PatternEpoch = 0;
  }

  /// Sets every element to zero. Drops any pattern claim.
  void setZero() {
    Data.assign(Data.size(), T{});
    PatternOwner = nullptr;
    PatternEpoch = 0;
  }

  /// Claims this matrix as a sparsity-patterned workspace for \p Owner at
  /// \p Epoch. Returns true when the previous claim matches (same owner,
  /// same epoch, same shape): every element the owner did not fill last
  /// time is still zero, so a pattern-only writer may skip the dense
  /// clear. Otherwise resizes to Rows x Cols (zero-filling), records the
  /// claim, and returns false. Owners must bump their epoch whenever the
  /// meaning of their pattern changes (e.g. a view rebinds to a new
  /// model) — the epoch is what defeats address-reuse (ABA) collisions
  /// when an owner is destroyed and a new one allocates at the same
  /// address. Any resize()/ensureShape()/setZero() drops the claim.
  bool claimPattern(const void *Owner, uint64_t Epoch, size_t Rows,
                    size_t Cols) {
    if (PatternOwner == Owner && PatternEpoch == Epoch && NumRows == Rows &&
        NumCols == Cols)
      return true;
    resize(Rows, Cols);
    PatternOwner = Owner;
    PatternEpoch = Epoch;
    return false;
  }

  /// Drops any pattern claim: the next claimPattern() will zero-fill.
  /// Fillers that write every element (e.g. the finite-difference
  /// Jacobian) call this so a later pattern-only writer does not mistake
  /// their dense fill for its own sparse one.
  void releasePatternClaim() {
    PatternOwner = nullptr;
    PatternEpoch = 0;
  }

  /// In-place scaled add: *this += Alpha * Other (same shape).
  void addScaled(const DenseMatrix &Other, T Alpha) {
    assert(NumRows == Other.NumRows && NumCols == Other.NumCols &&
           "shape mismatch in addScaled");
    for (size_t I = 0; I < Data.size(); ++I)
      Data[I] += Alpha * Other.Data[I];
  }

  /// Matrix-vector product: Out = (*this) * X. Out must not alias X.
  void multiply(const T *X, T *Out) const {
    for (size_t R = 0; R < NumRows; ++R) {
      T Sum{};
      const T *Row = rowData(R);
      for (size_t C = 0; C < NumCols; ++C)
        Sum += Row[C] * X[C];
      Out[R] = Sum;
    }
  }

  bool operator==(const DenseMatrix &Other) const {
    return NumRows == Other.NumRows && NumCols == Other.NumCols &&
           Data == Other.Data;
  }

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<T> Data;
  // Pattern-claim bookkeeping (see claimPattern). Not part of the value:
  // operator== ignores it, and a copied matrix keeps the claim only
  // because its contents are identical — which is exactly the claim's
  // guarantee, so copies remain sound.
  const void *PatternOwner = nullptr;
  uint64_t PatternEpoch = 0;
};

using Matrix = DenseMatrix<double>;
using ComplexMatrix = DenseMatrix<std::complex<double>>;

/// Returns the max-row-sum (infinity) norm of \p M.
double infinityNorm(const Matrix &M);

/// Returns the Frobenius norm of \p M.
double frobeniusNorm(const Matrix &M);

} // namespace psg

#endif // PSG_LINALG_MATRIX_H
