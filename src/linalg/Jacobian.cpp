//===- linalg/Jacobian.cpp ------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "linalg/Jacobian.h"

#include <cmath>
#include <vector>

using namespace psg;

size_t psg::numericJacobian(const RhsFunction &Rhs, double T, const double *Y,
                            const double *F0, size_t N, Matrix &J) {
  // Every entry below is overwritten, so a matching shape needs no
  // zero-fill — only the pattern claim must go (a later pattern-scoped
  // filler cannot assume anything about this dense fill).
  J.ensureShape(N, N);
  std::vector<double> YPerturbed(Y, Y + N);
  std::vector<double> FPerturbed(N);

  const double SqrtEps = std::sqrt(2.220446049250313e-16);
  for (size_t Col = 0; Col < N; ++Col) {
    // Step scaled to the state magnitude; floor keeps it nonzero at Y=0.
    double H = SqrtEps * std::max(std::abs(Y[Col]), 1e-5);
    YPerturbed[Col] = Y[Col] + H;
    H = YPerturbed[Col] - Y[Col]; // Exactly representable step.
    Rhs(T, YPerturbed.data(), FPerturbed.data());
    for (size_t Row = 0; Row < N; ++Row)
      J(Row, Col) = (FPerturbed[Row] - F0[Row]) / H;
    YPerturbed[Col] = Y[Col];
  }
  return N;
}
