//===- linalg/Eigen.cpp ---------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "linalg/Eigen.h"

#include "linalg/VectorOps.h"

#include <cmath>
#include <vector>

using namespace psg;

double psg::gershgorinSpectralBound(const Matrix &A) {
  assert(A.isSquare() && "Gershgorin bound of a non-square matrix");
  double Bound = 0.0;
  for (size_t R = 0; R < A.rows(); ++R) {
    double RowSum = 0.0;
    const double *Row = A.rowData(R);
    for (size_t C = 0; C < A.cols(); ++C)
      RowSum += std::abs(Row[C]);
    Bound = std::max(Bound, RowSum);
  }
  return Bound;
}

double psg::powerIterationSpectralRadius(const Matrix &A, unsigned MaxIters,
                                         double Tolerance) {
  assert(A.isSquare() && "power iteration on a non-square matrix");
  const size_t N = A.rows();
  if (N == 0)
    return 0.0;

  // Deterministic, non-degenerate start vector.
  std::vector<double> V(N), W(N);
  for (size_t I = 0; I < N; ++I)
    V[I] = 1.0 + 0.001 * static_cast<double>(I % 17);
  double Norm = norm2(V.data(), N);
  for (double &X : V)
    X /= Norm;

  double Estimate = 0.0;
  for (unsigned Iter = 0; Iter < MaxIters; ++Iter) {
    A.multiply(V.data(), W.data());
    double WNorm = norm2(W.data(), N);
    if (WNorm == 0.0 || !std::isfinite(WNorm))
      return WNorm == 0.0 ? 0.0 : Estimate;
    double Next = WNorm;
    for (size_t I = 0; I < N; ++I)
      V[I] = W[I] / WNorm;
    if (Iter > 0 && std::abs(Next - Estimate) <= Tolerance * Next)
      return Next;
    Estimate = Next;
  }
  return Estimate;
}
