//===- linalg/Lu.cpp ------------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "linalg/Lu.h"

#include <cmath>

using namespace psg;

namespace {
/// Pivot magnitude for real and complex elements.
double magnitude(double V) { return std::abs(V); }
double magnitude(const std::complex<double> &V) { return std::abs(V); }
} // namespace

template <typename T> bool LuDecomposition<T>::factor(const DenseMatrix<T> &A) {
  assert(A.isSquare() && "LU of a non-square matrix");
  Lu = A;
  const size_t N = Lu.rows();
  Pivot.resize(N);
  PivotSign = 1;
  Valid = false;

  for (size_t K = 0; K < N; ++K) {
    // Partial pivoting: pick the largest magnitude in column K.
    size_t Best = K;
    double BestMag = magnitude(Lu(K, K));
    for (size_t R = K + 1; R < N; ++R) {
      double Mag = magnitude(Lu(R, K));
      if (Mag > BestMag) {
        BestMag = Mag;
        Best = R;
      }
    }
    Pivot[K] = Best;
    if (Best != K) {
      PivotSign = -PivotSign;
      T *RowK = Lu.rowData(K);
      T *RowB = Lu.rowData(Best);
      for (size_t C = 0; C < N; ++C)
        std::swap(RowK[C], RowB[C]);
    }
    if (BestMag == 0.0)
      return false;

    const T PivotValue = Lu(K, K);
    for (size_t R = K + 1; R < N; ++R) {
      T Factor = Lu(R, K) / PivotValue;
      Lu(R, K) = Factor;
      if (Factor == T{})
        continue;
      T *RowR = Lu.rowData(R);
      const T *RowK = Lu.rowData(K);
      for (size_t C = K + 1; C < N; ++C)
        RowR[C] -= Factor * RowK[C];
    }
  }
  Valid = true;
  return true;
}

template <typename T> void LuDecomposition<T>::solve(T *B) const {
  assert(Valid && "solve() on an invalid factorization");
  const size_t N = Lu.rows();

  // Apply row permutation.
  for (size_t K = 0; K < N; ++K)
    if (Pivot[K] != K)
      std::swap(B[K], B[Pivot[K]]);

  // Forward substitution with unit lower-triangular L.
  for (size_t R = 1; R < N; ++R) {
    T Sum = B[R];
    const T *Row = Lu.rowData(R);
    for (size_t C = 0; C < R; ++C)
      Sum -= Row[C] * B[C];
    B[R] = Sum;
  }

  // Back substitution with U.
  for (size_t RI = N; RI-- > 0;) {
    T Sum = B[RI];
    const T *Row = Lu.rowData(RI);
    for (size_t C = RI + 1; C < N; ++C)
      Sum -= Row[C] * B[C];
    B[RI] = Sum / Row[RI];
  }
}

template <typename T> T LuDecomposition<T>::determinant() const {
  assert(Valid && "determinant() on an invalid factorization");
  T Det = static_cast<T>(PivotSign);
  for (size_t K = 0; K < Lu.rows(); ++K)
    Det *= Lu(K, K);
  return Det;
}

namespace psg {
template class LuDecomposition<double>;
template class LuDecomposition<std::complex<double>>;
} // namespace psg
