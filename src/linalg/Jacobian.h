//===- linalg/Jacobian.h - Finite-difference Jacobian -----------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Forward-difference Jacobian approximation for a generic right-hand side
/// callback. Used as the fallback when a model cannot provide its analytic
/// Jacobian (mass-action models can, and do).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_LINALG_JACOBIAN_H
#define PSG_LINALG_JACOBIAN_H

#include "linalg/Matrix.h"

#include <functional>

namespace psg {

/// Right-hand side callback: F(T, Y, DyDt) with N-element arrays.
using RhsFunction =
    std::function<void(double T, const double *Y, double *DyDt)>;

/// Fills \p J (resized to NxN) with the forward-difference Jacobian of
/// \p Rhs at (T, Y). \p F0 is the already-computed Rhs(T, Y); passing it
/// saves one evaluation. Returns the number of Rhs evaluations performed.
size_t numericJacobian(const RhsFunction &Rhs, double T, const double *Y,
                       const double *F0, size_t N, Matrix &J);

} // namespace psg

#endif // PSG_LINALG_JACOBIAN_H
