//===- linalg/Lu.h - LU factorization with partial pivoting -----*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense LU factorization with partial pivoting over double and
/// complex<double>. RADAU5 factors one real and one complex Newton matrix
/// per Jacobian refresh; BDF factors a real one. The factorization count is
/// part of the operation statistics fed to the vgpu cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_LINALG_LU_H
#define PSG_LINALG_LU_H

#include "linalg/Matrix.h"

namespace psg {

/// LU factorization P*A = L*U of a square matrix, with in-place storage.
template <typename T> class LuDecomposition {
public:
  LuDecomposition() = default;

  /// Factors \p A. Returns false if a zero (or subnormal) pivot makes the
  /// matrix numerically singular; the factorization is then unusable.
  bool factor(const DenseMatrix<T> &A);

  /// Solves (in place) the system A*X = B for one right-hand side.
  /// factor() must have succeeded.
  void solve(T *B) const;

  /// Returns true if factor() succeeded.
  bool valid() const { return Valid; }

  /// Order of the factored system.
  size_t order() const { return Lu.rows(); }

  /// Returns the determinant of A (product of pivots with sign).
  T determinant() const;

private:
  DenseMatrix<T> Lu;
  std::vector<size_t> Pivot;
  int PivotSign = 1;
  bool Valid = false;
};

extern template class LuDecomposition<double>;
extern template class LuDecomposition<std::complex<double>>;

using RealLu = LuDecomposition<double>;
using ComplexLu = LuDecomposition<std::complex<double>>;

} // namespace psg

#endif // PSG_LINALG_LU_H
