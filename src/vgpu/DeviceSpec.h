//===- vgpu/DeviceSpec.h - Execution architecture descriptions --*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architecture descriptions for the virtual GPU substrate. No physical
/// GPU is present in the reproduction environment, so hardware timing is
/// *modeled*: real integrations produce exact operation counts, and a
/// DeviceSpec turns those counts into modeled seconds through the cost
/// model in vgpu/CostModel.h. The default GPU spec matches the paper-era
/// Nvidia GTX Titan X; the CPU spec matches the Intel i7-2600 baseline.
/// Calibration constants (IPC, divergence, launch overheads) are chosen
/// to reproduce the published crossovers and are documented in
/// EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_VGPU_DEVICESPEC_H
#define PSG_VGPU_DEVICESPEC_H

#include <cstddef>
#include <string>

namespace psg {

/// Describes one execution architecture for the cost model.
struct DeviceSpec {
  std::string Name = "device";

  // Compute resources.
  unsigned Sms = 24;            ///< Streaming multiprocessors.
  unsigned CoresPerSm = 128;    ///< Scalar cores per SM.
  double ClockGhz = 1.0;        ///< Core clock.
  double IssueRate = 1.0;       ///< Useful flops per core per cycle.
  unsigned WarpSize = 32;       ///< Lanes executing in lockstep.
  unsigned MaxThreadsPerSm = 2048;

  // Memory system.
  double GlobalBandwidthGBs = 300.0;  ///< Device-memory bandwidth.
  double GlobalLatencyNs = 350.0;     ///< Uncontended global latency.
  double SharedLatencyNs = 15.0;      ///< Shared/constant memory latency.
  size_t SharedMemPerSmBytes = 96 * 1024;
  size_t ConstantMemBytes = 64 * 1024;

  // Launch overheads.
  double KernelLaunchUs = 6.0;      ///< Host-side kernel launch.
  double ChildLaunchUs = 1.6;       ///< Dynamic-parallelism child launch.
  double SyncPointUs = 1.0;         ///< Grid-wide synchronization.

  /// Total scalar cores.
  unsigned totalCores() const { return Sms * CoresPerSm; }

  /// Peak modeled throughput in flops/second.
  double peakFlops() const {
    return static_cast<double>(totalCores()) * ClockGhz * 1e9 * IssueRate;
  }

  /// The paper's GPU: Nvidia GeForce GTX Titan X (Maxwell, 3072 cores,
  /// 1.075 GHz, 12 GB, ~336 GB/s).
  static DeviceSpec titanX();

  /// One core of the paper's CPU: Intel Core i7-2600 at 3.4 GHz, with an
  /// effective IPC folding in superscalar issue and SSE/AVX use by the
  /// Fortran solvers.
  static DeviceSpec cpuCore();
};

} // namespace psg

#endif // PSG_VGPU_DEVICESPEC_H
