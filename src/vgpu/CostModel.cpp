//===- vgpu/CostModel.cpp -------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "vgpu/CostModel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace psg;

const char *psg::backendName(Backend B) {
  // Exhaustive, no default: adding a Backend member without a name here
  // is a compile error (-Wswitch under -Werror), not a misreported
  // "unknown" string in metrics JSON.
  switch (B) {
  case Backend::CpuSerial:
    return "cpu-serial";
  case Backend::CpuSimdLanes:
    return "cpu-simd-lanes";
  case Backend::GpuCoarse:
    return "gpu-coarse";
  case Backend::GpuFine:
    return "gpu-fine";
  case Backend::GpuFineCoarse:
    return "gpu-fine-coarse";
  }
  __builtin_unreachable();
}

namespace {
/// Rounds a thread count up to whole warps.
uint64_t warpAligned(uint64_t Threads, unsigned WarpSize) {
  if (Threads == 0)
    return 0;
  const uint64_t Warps = (Threads + WarpSize - 1) / WarpSize;
  return Warps * WarpSize;
}
} // namespace

double CostModel::dpPenalty(uint64_t ConcurrentChildren) const {
  if (ConcurrentChildren <= Knobs.DpSoftLimit)
    return 1.0;
  if (ConcurrentChildren <= Knobs.DpHardLimit) {
    const double Frac =
        static_cast<double>(ConcurrentChildren - Knobs.DpSoftLimit) /
        static_cast<double>(Knobs.DpHardLimit - Knobs.DpSoftLimit);
    return 1.0 + Knobs.DpSoftSlope * Frac;
  }
  const double Over =
      static_cast<double>(ConcurrentChildren - Knobs.DpHardLimit) /
      static_cast<double>(Knobs.DpHardLimit);
  return 1.0 + Knobs.DpSoftSlope + Knobs.DpHardCoeff * Over * Over;
}

double CostModel::hiddenPrepareSeconds(double HostPrepareSeconds,
                                       double DeviceSeconds) const {
  if (HostPrepareSeconds <= 0.0 || DeviceSeconds <= 0.0)
    return 0.0;
  return std::min(Knobs.StreamOverlapEfficiency * HostPrepareSeconds,
                  DeviceSeconds);
}

ModeledTime CostModel::cpuSerial(const SimulationWork &Work,
                                 uint64_t Batch) const {
  ModeledTime T;
  const double B = static_cast<double>(Batch);
  T.ComputeSeconds = B * Work.TotalFlops / Cpu.peakFlops();
  // The working set is cache-resident on the CPU for the model sizes of
  // the evaluation; memory time is folded into the effective issue rate.
  T.MemorySeconds = 0.0;
  T.HostSeconds = B * Knobs.CpuPerSimOverheadSec;
  return T;
}

ModeledTime CostModel::cpuSimdLanes(const SimulationWork &Work,
                                    uint64_t Batch) const {
  ModeledTime T;
  const double B = static_cast<double>(Batch);
  // The lane loops advance SimdLaneWidth parameterizations per
  // instruction; efficiency discounts lockstep replays, ragged final
  // groups, and the scalar step-control scaffolding.
  const double Width =
      std::max(1.0, Knobs.SimdLaneWidth * Knobs.SimdEfficiency);
  T.ComputeSeconds = B * Work.TotalFlops / (Cpu.peakFlops() * Width);
  // Cache-resident like the serial CPU path (the SoA working set is a
  // lane-width multiple but still tiny for the evaluation's models).
  T.MemorySeconds = 0.0;
  // Dispatch is per lane-group, not per simulation.
  T.HostSeconds =
      B * Knobs.CpuPerSimOverheadSec / std::max(1.0, Knobs.SimdLaneWidth);
  return T;
}

ModeledTime CostModel::gpuCoarse(const SimulationWork &Work,
                                 uint64_t Batch) const {
  ModeledTime T;
  const double B = static_cast<double>(Batch);
  const uint64_t Lanes =
      std::min<uint64_t>(warpAligned(Batch, Gpu.WarpSize), Gpu.totalCores());
  const double CoreFlops = Gpu.ClockGhz * 1e9 * Gpu.IssueRate;
  T.ComputeSeconds = B * Work.TotalFlops /
                     (static_cast<double>(Lanes) * CoreFlops) *
                     Knobs.CoarseDivergence;

  // Each thread streams its private state from memory. Small models whose
  // encoding fits constant memory and whose state fits shared memory get
  // cupSODA's fast-memory bonus.
  const bool FitsFastMemory =
      Work.ConstantBytes <= static_cast<double>(Gpu.ConstantMemBytes) &&
      Work.StateBytes * static_cast<double>(std::min<uint64_t>(
                            Batch, Gpu.MaxThreadsPerSm)) <=
          static_cast<double>(Gpu.SharedMemPerSmBytes) *
              static_cast<double>(Gpu.Sms);
  const double Efficiency =
      FitsFastMemory ? 1.0 : Knobs.CoarseCoalescing;
  double MemSeconds =
      B * Work.MemTrafficBytes / (Gpu.GlobalBandwidthGBs * 1e9 * Efficiency);
  if (FitsFastMemory)
    MemSeconds *= Knobs.SharedMemoryBonus;
  T.MemorySeconds = MemSeconds;

  T.LaunchSeconds = Gpu.KernelLaunchUs * 1e-6;
  return T;
}

ModeledTime CostModel::gpuFine(const SimulationWork &Work,
                               uint64_t Batch) const {
  ModeledTime T;
  const double B = static_cast<double>(Batch);
  // One simulation at a time: parallel width is the ODE count, capped by
  // the device and discounted by the fine kernels' register pressure.
  const double Width = std::min<double>(
      static_cast<double>(warpAligned(Work.NumSpecies, Gpu.WarpSize)),
      static_cast<double>(Gpu.totalCores()) * Knobs.FineOccupancy);
  const double CoreFlops = Gpu.ClockGhz * 1e9 * Gpu.IssueRate;
  T.ComputeSeconds = B * Work.TotalFlops / (Width * CoreFlops);
  T.MemorySeconds = B * Work.MemTrafficBytes /
                    (Gpu.GlobalBandwidthGBs * 1e9 * Knobs.FineCoalescing);
  // Every integration step issues a pipeline of host-launched kernels.
  T.LaunchSeconds = B * static_cast<double>(Work.Steps) *
                    static_cast<double>(Work.KernelPhasesPerStep) *
                    (Gpu.KernelLaunchUs + Gpu.SyncPointUs) * 1e-6;
  return T;
}

ModeledTime CostModel::gpuFineCoarse(const SimulationWork &Work,
                                     uint64_t Batch) const {
  ModeledTime T;
  const double B = static_cast<double>(Batch);
  const double CoreFlops = Gpu.ClockGhz * 1e9 * Gpu.IssueRate;
  // Both levels at once: batch x species threads, capped by the device.
  const uint64_t Requested =
      warpAligned(Work.NumSpecies, Gpu.WarpSize) * Batch;
  const double Width = std::min<double>(
      static_cast<double>(Requested),
      static_cast<double>(Gpu.totalCores()) * Knobs.FineOccupancy);
  T.ComputeSeconds = B * Work.TotalFlops / (Width * CoreFlops) *
                     Knobs.FineCoarseDivergence;
  T.MemorySeconds = B * Work.MemTrafficBytes /
                    (Gpu.GlobalBandwidthGBs * 1e9 * Knobs.FineCoalescing);
  if (Knobs.FineCoarseFastMemory &&
      Work.ConstantBytes <= static_cast<double>(Gpu.ConstantMemBytes) &&
      Work.StateBytes * static_cast<double>(std::min<uint64_t>(
                            Batch, Gpu.MaxThreadsPerSm)) <=
          static_cast<double>(Gpu.SharedMemPerSmBytes) *
              static_cast<double>(Gpu.Sms)) {
    // Future-work variant: small models live in constant/shared memory.
    T.MemorySeconds *= Knobs.SharedMemoryBonus;
  }

  // Dynamic parallelism: each simulation's step chain issues its child
  // grids serially (a latency bound independent of the batch), and the
  // device can only retire a bounded number of concurrent child launches
  // (a throughput bound that the saturation penalty inflates -- the
  // paper's >512 / >2048 launch-time cliff).
  const double Penalty = dpPenalty(Batch);
  const double ChainLaunches =
      static_cast<double>(Work.Steps) *
      static_cast<double>(Work.KernelPhasesPerStep);
  const double ChainLatency = ChainLaunches * Gpu.ChildLaunchUs * 1e-6;
  const double QueueTime = B * ChainLaunches * Gpu.ChildLaunchUs * 1e-6 *
                           Penalty / Knobs.DpLaunchSlots;
  T.LaunchSeconds =
      std::max(ChainLatency, QueueTime) + Gpu.KernelLaunchUs * 1e-6;
  return T;
}

ModeledTime CostModel::integrationTime(Backend B, const SimulationWork &Work,
                                       uint64_t Batch) const {
  assert(Batch > 0 && "empty batch");
  switch (B) {
  case Backend::CpuSerial:
    return cpuSerial(Work, Batch);
  case Backend::CpuSimdLanes:
    return cpuSimdLanes(Work, Batch);
  case Backend::GpuCoarse:
    return gpuCoarse(Work, Batch);
  case Backend::GpuFine:
    return gpuFine(Work, Batch);
  case Backend::GpuFineCoarse:
    return gpuFineCoarse(Work, Batch);
  }
  return ModeledTime();
}

ModeledTime CostModel::simulationTime(Backend B, const SimulationWork &Work,
                                      uint64_t Batch) const {
  ModeledTime T = integrationTime(B, Work, Batch);
  const double BatchD = static_cast<double>(Batch);
  const double SampleBytes =
      static_cast<double>(Work.OutputSamples) *
      static_cast<double>(Work.NumSpecies) * sizeof(double);
  if (B == Backend::CpuSerial || B == Backend::CpuSimdLanes) {
    // Results are already in host memory; charge a stream-to-disk cost at
    // the CPU copy bandwidth.
    T.HostSeconds += BatchD * SampleBytes / (Cpu.GlobalBandwidthGBs * 1e9);
    return T;
  }
  // GPU paths: one-time model encoding plus PCIe write-back of dynamics.
  T.HostSeconds += Knobs.BatchSetupSec +
                   BatchD * SampleBytes / (Knobs.PcieBandwidthGBs * 1e9);
  return T;
}
