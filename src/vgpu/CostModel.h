//===- vgpu/CostModel.h - Modeled execution time ----------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns exact operation counts (measured by really running the
/// integrations) into modeled wall-clock time on a target architecture,
/// for each of the four execution strategies of the evaluation:
///
/// - CpuSerial:      the LSODA/VODE baseline, one simulation at a time;
/// - GpuCoarse:      cupSODA-style, one GPU thread per simulation;
/// - GpuFine:        LASSIE-style, one simulation at a time with its ODE
///                   work spread across threads;
/// - GpuFineCoarse:  the paper's contribution, both levels at once via
///                   dynamic parallelism.
///
/// The model is analytic and intentionally simple: a roofline of compute
/// and memory time plus explicit launch/synchronization overheads, with
/// warp divergence, coalescing quality, cupSODA's shared/constant-memory
/// bonus for small models, and the dynamic-parallelism saturation beyond
/// ~2048 concurrent simulations. Every knob is a documented field of
/// CostModel::Tunables; calibration notes live in EXPERIMENTS.md.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_VGPU_COSTMODEL_H
#define PSG_VGPU_COSTMODEL_H

#include "vgpu/DeviceSpec.h"

#include <cstdint>

namespace psg {

/// Execution strategy being modeled.
enum class Backend {
  CpuSerial,
  /// Lane-batched CPU: SIMD lanes carry neighbouring parameterizations in
  /// lockstep (the host analogue of GpuCoarse's warp-per-simulation).
  CpuSimdLanes,
  GpuCoarse,
  GpuFine,
  GpuFineCoarse
};

/// Stable display name ("cpu-serial", "cpu-simd-lanes", "gpu-coarse", ...).
const char *backendName(Backend B);

/// Average per-simulation work of a batch, measured from real runs.
struct SimulationWork {
  size_t NumSpecies = 0;   ///< N: ODEs (the fine-grained width).
  size_t NumReactions = 0; ///< M: terms per ODE scale with M/N.
  double TotalFlops = 0;   ///< All arithmetic of one integration.
  double MemTrafficBytes = 0; ///< Global-memory traffic of one run.
  double StateBytes = 0;      ///< Resident per-simulation working set.
  double ConstantBytes = 0;   ///< Immutable model encoding (A, B, K).
  uint64_t Steps = 0;         ///< Serial step chain (accepted+rejected).
  uint64_t KernelPhasesPerStep = 6; ///< Fine-grained launches per step.
  uint64_t OutputSamples = 0;       ///< Trajectory samples written back.
};

/// Modeled wall time, split by bottleneck.
struct ModeledTime {
  double ComputeSeconds = 0;
  double MemorySeconds = 0;
  double LaunchSeconds = 0;
  double HostSeconds = 0; ///< Setup, transfers, per-simulation dispatch.

  /// Roofline combination: compute and memory overlap, overheads add.
  double total() const {
    const double Roof =
        ComputeSeconds > MemorySeconds ? ComputeSeconds : MemorySeconds;
    return Roof + LaunchSeconds + HostSeconds;
  }
};

/// Analytic timing model over a GPU spec and a CPU spec.
class CostModel {
public:
  /// Calibration constants (see EXPERIMENTS.md for the fitting notes).
  struct Tunables {
    /// Warp-divergence inflation for independent per-thread integrations.
    double CoarseDivergence = 1.35;
    /// Divergence when per-step synchronization re-converges warps.
    double FineCoarseDivergence = 1.15;
    /// Fraction of peak bandwidth reached by per-thread strided state.
    double CoarseCoalescing = 0.25;
    /// Fraction of peak bandwidth for species-contiguous fine access.
    double FineCoalescing = 0.6;
    /// Shared/constant-memory speedup for models that fit (cupSODA).
    double SharedMemoryBonus = 0.12;
    /// Per-simulation dispatch overhead of the CPU driver (the SciPy
    /// wrapper loop of the baseline).
    double CpuPerSimOverheadSec = 8e-4;
    /// Host-side batch setup (phase P1 encoding) per launch.
    double BatchSetupSec = 4e-3;
    /// PCIe transfer bandwidth for result write-back.
    double PcieBandwidthGBs = 10.0;
    /// Concurrent child grids where DP launch cost starts climbing.
    uint64_t DpSoftLimit = 512;
    /// Concurrent child grids where DP launch cost climbs steeply.
    uint64_t DpHardLimit = 2048;
    /// DP penalty slope between the soft and hard limits.
    double DpSoftSlope = 0.3;
    /// Quadratic DP penalty coefficient beyond the hard limit.
    double DpHardCoeff = 4.0;
    /// Concurrent child-launch slots of the device's launch queues.
    double DpLaunchSlots = 2048.0;
    /// Register pressure: fraction of cores usable by the fine kernels.
    double FineOccupancy = 0.75;
    /// Future-work variant (the paper line's planned improvement): let
    /// the fine+coarse kernels keep small models in constant/shared
    /// memory like the coarse-grained simulator does. Off by default to
    /// match the published system (which relies on global memory only).
    bool FineCoarseFastMemory = false;
    /// Fraction of host-side sub-batch preparation (point generation,
    /// parameterization, P1 encoding) that a second CUDA stream hides
    /// beneath the device's kernel execution when sub-batches are
    /// double-buffered. Below 1.0 because the copy engine contends with
    /// kernel global-memory traffic and the final H2D chunk of batch
    /// N+1 must still serialize before its launch.
    double StreamOverlapEfficiency = 0.85;
    /// SIMD lanes of the CpuSimdLanes backend (AVX2 doubles x 2 ports).
    double SimdLaneWidth = 8.0;
    /// Fraction of the ideal lane speedup the lockstep integration keeps
    /// after divergence replays, ragged groups, and scalar control flow.
    double SimdEfficiency = 0.55;
  };

  CostModel(DeviceSpec Gpu, DeviceSpec Cpu)
      : Gpu(std::move(Gpu)), Cpu(std::move(Cpu)) {}
  CostModel(DeviceSpec Gpu, DeviceSpec Cpu, Tunables Knobs)
      : Gpu(std::move(Gpu)), Cpu(std::move(Cpu)), Knobs(Knobs) {}

  /// Default model: Titan X GPU + i7-2600 CPU core.
  static CostModel paperSetup() {
    return CostModel(DeviceSpec::titanX(), DeviceSpec::cpuCore());
  }

  /// Models the *integration* time of \p Batch simulations whose average
  /// per-simulation work is \p Work.
  ModeledTime integrationTime(Backend B, const SimulationWork &Work,
                              uint64_t Batch) const;

  /// Models the full *simulation* time: integration plus model setup and
  /// result write-back (the "I/O" the papers distinguish).
  ModeledTime simulationTime(Backend B, const SimulationWork &Work,
                             uint64_t Batch) const;

  /// The dynamic-parallelism saturation factor at \p ConcurrentChildren.
  double dpPenalty(uint64_t ConcurrentChildren) const;

  /// Seconds of host-side sub-batch preparation hidden beneath device
  /// execution when the pipeline is double-buffered: bounded both by the
  /// modeled device time of the in-flight sub-batch and by the stream
  /// overlap efficiency.
  double hiddenPrepareSeconds(double HostPrepareSeconds,
                              double DeviceSeconds) const;

  const DeviceSpec &gpu() const { return Gpu; }
  const DeviceSpec &cpu() const { return Cpu; }
  const Tunables &tunables() const { return Knobs; }

private:
  DeviceSpec Gpu;
  DeviceSpec Cpu;
  Tunables Knobs;

  ModeledTime cpuSerial(const SimulationWork &Work, uint64_t Batch) const;
  ModeledTime cpuSimdLanes(const SimulationWork &Work, uint64_t Batch) const;
  ModeledTime gpuCoarse(const SimulationWork &Work, uint64_t Batch) const;
  ModeledTime gpuFine(const SimulationWork &Work, uint64_t Batch) const;
  ModeledTime gpuFineCoarse(const SimulationWork &Work,
                            uint64_t Batch) const;
};

} // namespace psg

#endif // PSG_VGPU_COSTMODEL_H
