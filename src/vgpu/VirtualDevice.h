//===- vgpu/VirtualDevice.h - Virtual GPU executor --------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual GPU: executes "kernels" (C++ callables over a logical
/// thread index space) on the host pool while accounting for grids,
/// blocks, warps and dynamic-parallelism child launches exactly as the
/// CUDA implementation would issue them. The numerical results are the
/// real results; the accounting feeds the cost model that provides the
/// modeled device timing.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_VGPU_VIRTUALDEVICE_H
#define PSG_VGPU_VIRTUALDEVICE_H

#include "support/FunctionRef.h"
#include "vgpu/DeviceSpec.h"
#include "vgpu/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace psg {

/// Per-launch accounting mirror of the CUDA execution configuration.
struct LaunchRecord {
  std::string KernelName;
  uint64_t LogicalThreads = 0;
  uint64_t Blocks = 0;
  uint64_t Warps = 0;
  uint64_t ChildGrids = 0; ///< Dynamic-parallelism launches from this grid.
};

/// Cumulative device counters.
struct DeviceCounters {
  uint64_t KernelLaunches = 0;
  uint64_t ChildGridLaunches = 0;
  uint64_t LogicalThreadsRun = 0;
  uint64_t MaxConcurrentChildren = 0;
};

/// Handed to each logical thread of a kernel.
class KernelContext {
public:
  KernelContext(uint64_t ThreadIdx, uint64_t GridSize, unsigned BlockDim,
                unsigned WorkerIdx, std::atomic<uint64_t> &ChildCounter)
      : ThreadIdx(ThreadIdx), GridSize(GridSize), BlockDim(BlockDim),
        WorkerIdx(WorkerIdx), ChildCounter(ChildCounter) {}

  /// Global logical thread index in [0, gridSize()).
  uint64_t threadIndex() const { return ThreadIdx; }
  uint64_t gridSize() const { return GridSize; }
  unsigned blockDim() const { return BlockDim; }
  /// Host worker executing this logical thread, < hostParallelism().
  /// Stable for the duration of one logical thread; kernel bodies use it
  /// to index per-worker scratch (solver workspaces, model views).
  unsigned workerIndex() const { return WorkerIdx; }
  uint64_t blockIndex() const { return ThreadIdx / BlockDim; }
  unsigned laneInBlock() const {
    return static_cast<unsigned>(ThreadIdx % BlockDim);
  }

  /// Records a dynamic-parallelism child grid of \p Threads logical
  /// threads and runs \p Body for each (synchronously, as after a CUDA
  /// child-grid sync). Returns the number of child threads run. Body is
  /// a non-owning FunctionRef: child-grid launches sit on the per-step
  /// hot path of the fine-grained simulators, and the previous
  /// std::function parameter could allocate per launch.
  uint64_t launchChildGrid(uint64_t Threads, FunctionRef<void(uint64_t)> Body) {
    ChildCounter.fetch_add(1, std::memory_order_relaxed);
    for (uint64_t I = 0; I < Threads; ++I)
      Body(I);
    return Threads;
  }

private:
  uint64_t ThreadIdx;
  uint64_t GridSize;
  unsigned BlockDim;
  unsigned WorkerIdx;
  std::atomic<uint64_t> &ChildCounter;
};

/// The device: a spec, a host pool, and launch accounting.
class VirtualDevice {
public:
  /// \p HostWorkers = 0 uses the hardware concurrency.
  explicit VirtualDevice(DeviceSpec Spec, unsigned HostWorkers = 0)
      : Spec(std::move(Spec)), Pool(HostWorkers) {}

  const DeviceSpec &spec() const { return Spec; }
  const DeviceCounters &counters() const { return Counters; }
  unsigned hostWorkers() const { return Pool.numWorkers(); }
  /// Distinct worker indices kernel bodies may observe (pool workers plus
  /// the participating caller). Simulators size per-worker state to this.
  unsigned hostParallelism() const { return Pool.parallelism(); }

  /// Launches a kernel over \p Threads logical threads with block size
  /// \p BlockDim; Body receives a KernelContext per logical thread.
  /// Returns the launch record. Body must be thread-safe across indices
  /// and is taken by non-owning FunctionRef (no per-launch allocation);
  /// launchKernel blocks until every logical thread has run.
  LaunchRecord launchKernel(const std::string &Name, uint64_t Threads,
                            unsigned BlockDim,
                            FunctionRef<void(KernelContext &)> Body);

private:
  DeviceSpec Spec;
  ThreadPool Pool;
  DeviceCounters Counters;
};

} // namespace psg

#endif // PSG_VGPU_VIRTUALDEVICE_H
