//===- vgpu/ThreadPool.cpp ------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "vgpu/ThreadPool.h"

#include "support/Metrics.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>

using namespace psg;

ThreadPool::ThreadPool(unsigned WorkerCount) {
  if (WorkerCount == 0) {
    WorkerCount = std::thread::hardware_concurrency();
    if (WorkerCount == 0)
      WorkerCount = 1;
  }
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I < WorkerCount; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runChunks(std::unique_lock<std::mutex> &Lock) {
  while (Current.Next < Current.Count) {
    const size_t Index = Current.Next++;
    Lock.unlock();
    WallTimer BodyTimer;
    (*Current.Body)(Index);
    const double Busy = BodyTimer.seconds();
    Lock.lock();
    ++Current.Done;
    Current.BusySeconds += Busy;
  }
}

void ThreadPool::workerLoop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait(Lock, [this] {
      return Stopping || (HasJob && Current.Next < Current.Count);
    });
    if (Stopping)
      return;
    runChunks(Lock);
    if (Current.Done == Current.Count)
      JobDone.notify_all();
  }
}

void ThreadPool::parallelFor(size_t Count,
                             const std::function<void(size_t)> &Body) {
  if (Count == 0)
    return;
  WallTimer JobTimer;
  double BusySeconds = 0.0;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    assert(!HasJob && "nested parallelFor is not supported");
    Current = Job{&Body, Count, 0, 0, 0.0};
    HasJob = true;
    WorkReady.notify_all();
    // The caller participates too, then waits for stragglers.
    runChunks(Lock);
    JobDone.wait(Lock, [this] { return Current.Done == Current.Count; });
    HasJob = false;
    BusySeconds = Current.BusySeconds;
  }
  // Worker-utilization accounting, recorded outside the pool lock.
  const double WallSeconds = JobTimer.seconds();
  MetricsRegistry &M = metrics();
  M.counter("psg.vgpu.pool.jobs").add();
  M.counter("psg.vgpu.pool.tasks").add(Count);
  M.gauge("psg.vgpu.pool.busy_s").add(BusySeconds);
  M.gauge("psg.vgpu.pool.wall_s").add(WallSeconds);
  if (WallSeconds > 0.0) {
    const double Capacity = WallSeconds * numWorkers();
    M.gauge("psg.vgpu.pool.utilization")
        .set(std::min(1.0, BusySeconds / Capacity));
  }
}
