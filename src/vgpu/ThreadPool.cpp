//===- vgpu/ThreadPool.cpp ------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "vgpu/ThreadPool.h"

#include "support/Metrics.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>

using namespace psg;

ThreadPool::ThreadPool(unsigned WorkerCount) {
  if (WorkerCount == 0) {
    WorkerCount = std::thread::hardware_concurrency();
    if (WorkerCount == 0)
      WorkerCount = 1;
  }
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I < WorkerCount; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    Stopping = true;
  }
  WorkReady.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::runChunks(unsigned Worker, size_t &DoneOut, double &BusyOut) {
  DoneOut = 0;
  BusyOut = 0.0;
  const FunctionRef<void(size_t, unsigned)> Body = Current.Body;
  const size_t Count = Current.Count;
  const size_t ChunkSize = Current.ChunkSize;
  const size_t NumChunks = Current.NumChunks;
  for (;;) {
    const size_t Chunk =
        Current.NextChunk.fetch_add(1, std::memory_order_relaxed);
    if (Chunk >= NumChunks)
      return;
    const size_t Begin = Chunk * ChunkSize;
    const size_t End = std::min(Count, Begin + ChunkSize);
    WallTimer BodyTimer;
    for (size_t I = Begin; I < End; ++I)
      Body(I, Worker);
    BusyOut += BodyTimer.seconds();
    DoneOut += End - Begin;
  }
}

void ThreadPool::workerLoop(unsigned Worker) {
  std::unique_lock<std::mutex> Lock(Mutex);
  for (;;) {
    WorkReady.wait(Lock, [this] {
      return Stopping ||
             (HasJob && Current.NextChunk.load(std::memory_order_relaxed) <
                            Current.NumChunks);
    });
    if (Stopping)
      return;
    ++ActiveClaimers;
    Lock.unlock();
    size_t Done = 0;
    double Busy = 0.0;
    runChunks(Worker, Done, Busy);
    Lock.lock();
    --ActiveClaimers;
    Current.Done += Done;
    Current.BusySeconds += Busy;
    if (Current.Done == Current.Count && ActiveClaimers == 0)
      JobDone.notify_all();
  }
}

void ThreadPool::parallelFor(size_t Count,
                             FunctionRef<void(size_t, unsigned)> Body) {
  if (Count == 0)
    return;
  WallTimer JobTimer;
  double BusySeconds = 0.0;
  {
    std::unique_lock<std::mutex> Lock(Mutex);
    assert(!HasJob && "nested parallelFor is not supported");
    // Static chunking: a few chunks per participant amortizes the atomic
    // claim while still balancing uneven per-index costs.
    Current.Body = Body;
    Current.Count = Count;
    Current.ChunkSize = std::max<size_t>(1, Count / (4 * parallelism()));
    Current.NumChunks = (Count + Current.ChunkSize - 1) / Current.ChunkSize;
    Current.NextChunk.store(0, std::memory_order_relaxed);
    Current.Done = 0;
    Current.BusySeconds = 0.0;
    HasJob = true;
    WorkReady.notify_all();
    Lock.unlock();
    // The caller participates as the last worker index, then waits for
    // stragglers. The job may not be torn down until every participant
    // has left runChunks (ActiveClaimers drains to zero).
    size_t CallerDone = 0;
    double CallerBusy = 0.0;
    runChunks(numWorkers(), CallerDone, CallerBusy);
    Lock.lock();
    Current.Done += CallerDone;
    Current.BusySeconds += CallerBusy;
    JobDone.wait(Lock, [this] {
      return Current.Done == Current.Count && ActiveClaimers == 0;
    });
    HasJob = false;
    BusySeconds = Current.BusySeconds;
  }
  // Worker-utilization accounting, recorded outside the pool lock.
  const double WallSeconds = JobTimer.seconds();
  MetricsRegistry &M = metrics();
  M.counter("psg.vgpu.pool.jobs").add();
  M.counter("psg.vgpu.pool.tasks").add(Count);
  M.gauge("psg.vgpu.pool.busy_s").add(BusySeconds);
  M.gauge("psg.vgpu.pool.wall_s").add(WallSeconds);
  if (WallSeconds > 0.0) {
    const double Capacity = WallSeconds * numWorkers();
    M.gauge("psg.vgpu.pool.utilization")
        .set(std::min(1.0, BusySeconds / Capacity));
  }
}

void ThreadPool::parallelFor(size_t Count, FunctionRef<void(size_t)> Body) {
  parallelFor(Count, [&Body](size_t Index, unsigned) { Body(Index); });
}
