//===- vgpu/ThreadPool.h - Host worker pool ---------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool backing the virtual device. The GPU's
/// logical threads are multiplexed onto these host workers; on a
/// single-core host it degenerates to serial execution while preserving
/// the batch semantics and determinism of the results.
///
/// Indices are claimed in statically sized chunks off an atomic cursor
/// (one fetch_add per chunk) instead of one mutex round-trip per index,
/// and each participant is handed a stable worker index so callers can
/// keep per-worker scratch (solver workspaces, compiled-model views)
/// without thread-local lookups.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_VGPU_THREADPOOL_H
#define PSG_VGPU_THREADPOOL_H

#include "support/FunctionRef.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

namespace psg {

/// Fixed pool executing index-space loops.
class ThreadPool {
public:
  /// Creates \p Workers threads (0 selects the hardware concurrency).
  explicit ThreadPool(unsigned Workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Number of distinct worker indices parallelFor bodies may observe:
  /// the pool threads (0 .. numWorkers()-1) plus the calling thread,
  /// which participates as worker numWorkers().
  unsigned parallelism() const { return numWorkers() + 1; }

  /// Runs Body(0..Count-1, Worker), distributing indices over the workers,
  /// and blocks until all indices completed. Body must be thread-safe.
  /// Each invocation's Worker argument is < parallelism() and identifies
  /// the participant executing it, so Body may index per-worker state
  /// without synchronization. Body is a non-owning FunctionRef — no
  /// allocation per job — which is safe because parallelFor blocks until
  /// every participant has left the body.
  void parallelFor(size_t Count, FunctionRef<void(size_t, unsigned)> Body);

  /// Worker-index-oblivious convenience overload.
  void parallelFor(size_t Count, FunctionRef<void(size_t)> Body);

private:
  struct Job {
    FunctionRef<void(size_t, unsigned)> Body;
    size_t Count = 0;
    size_t ChunkSize = 1;
    size_t NumChunks = 0;
    std::atomic<size_t> NextChunk{0};
    size_t Done = 0;          ///< Guarded by Mutex.
    double BusySeconds = 0.0; ///< Summed body execution time (all workers).
  };

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable JobDone;
  Job Current;
  bool HasJob = false;
  bool Stopping = false;
  /// Participants currently claiming chunks outside the lock; a new job
  /// may only be installed once this drops to zero.
  unsigned ActiveClaimers = 0;

  void workerLoop(unsigned Worker);
  /// Claims and runs chunks of the current job without holding the pool
  /// lock; returns the indices completed and the body execution time.
  void runChunks(unsigned Worker, size_t &DoneOut, double &BusyOut);
};

} // namespace psg

#endif // PSG_VGPU_THREADPOOL_H
