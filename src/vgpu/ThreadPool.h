//===- vgpu/ThreadPool.h - Host worker pool ---------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size worker pool backing the virtual device. The GPU's
/// logical threads are multiplexed onto these host workers; on a
/// single-core host it degenerates to serial execution while preserving
/// the batch semantics and determinism of the results.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_VGPU_THREADPOOL_H
#define PSG_VGPU_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace psg {

/// Fixed pool executing index-space loops.
class ThreadPool {
public:
  /// Creates \p Workers threads (0 selects the hardware concurrency).
  explicit ThreadPool(unsigned Workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Runs Body(0..Count-1), distributing indices over the workers, and
  /// blocks until all indices completed. Body must be thread-safe.
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body);

private:
  struct Job {
    const std::function<void(size_t)> *Body = nullptr;
    size_t Count = 0;
    size_t Next = 0;
    size_t Done = 0;
    double BusySeconds = 0.0; ///< Summed body execution time (all workers).
  };

  std::vector<std::thread> Workers;
  std::mutex Mutex;
  std::condition_variable WorkReady;
  std::condition_variable JobDone;
  Job Current;
  bool HasJob = false;
  bool Stopping = false;

  void workerLoop();
  /// Claims and runs chunks of the current job; returns when exhausted.
  void runChunks(std::unique_lock<std::mutex> &Lock);
};

} // namespace psg

#endif // PSG_VGPU_THREADPOOL_H
