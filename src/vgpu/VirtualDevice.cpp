//===- vgpu/VirtualDevice.cpp ---------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "vgpu/VirtualDevice.h"

#include <cassert>

using namespace psg;

LaunchRecord
VirtualDevice::launchKernel(const std::string &Name, uint64_t Threads,
                            unsigned BlockDim,
                            const std::function<void(KernelContext &)> &Body) {
  assert(Threads > 0 && BlockDim > 0 && "empty kernel launch");
  std::atomic<uint64_t> ChildGrids{0};

  Pool.parallelFor(Threads, [&](size_t Index) {
    KernelContext Ctx(Index, Threads, BlockDim, ChildGrids);
    Body(Ctx);
  });

  LaunchRecord Record;
  Record.KernelName = Name;
  Record.LogicalThreads = Threads;
  Record.Blocks = (Threads + BlockDim - 1) / BlockDim;
  Record.Warps = (Threads + Spec.WarpSize - 1) / Spec.WarpSize;
  Record.ChildGrids = ChildGrids.load();

  ++Counters.KernelLaunches;
  Counters.ChildGridLaunches += Record.ChildGrids;
  Counters.LogicalThreadsRun += Threads;
  if (Record.ChildGrids > Counters.MaxConcurrentChildren)
    Counters.MaxConcurrentChildren = Record.ChildGrids;
  return Record;
}
