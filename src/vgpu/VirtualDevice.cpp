//===- vgpu/VirtualDevice.cpp ---------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "vgpu/VirtualDevice.h"

#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cassert>

using namespace psg;

LaunchRecord
VirtualDevice::launchKernel(const std::string &Name, uint64_t Threads,
                            unsigned BlockDim,
                            FunctionRef<void(KernelContext &)> Body) {
  assert(Threads > 0 && BlockDim > 0 && "empty kernel launch");
  MetricsRegistry &M = metrics();
  TraceSpan Span("vgpu.kernel." + Name, "vgpu");
  WallTimer Timer;
  std::atomic<uint64_t> ChildGrids{0};

  Pool.parallelFor(Threads, [&](size_t Index, unsigned Worker) {
    KernelContext Ctx(Index, Threads, BlockDim, Worker, ChildGrids);
    Body(Ctx);
  });

  LaunchRecord Record;
  Record.KernelName = Name;
  Record.LogicalThreads = Threads;
  Record.Blocks = (Threads + BlockDim - 1) / BlockDim;
  Record.Warps = (Threads + Spec.WarpSize - 1) / Spec.WarpSize;
  Record.ChildGrids = ChildGrids.load();

  ++Counters.KernelLaunches;
  Counters.ChildGridLaunches += Record.ChildGrids;
  Counters.LogicalThreadsRun += Threads;
  if (Record.ChildGrids > Counters.MaxConcurrentChildren)
    Counters.MaxConcurrentChildren = Record.ChildGrids;

  M.counter("psg.vgpu.kernel_launches").add();
  M.counter("psg.vgpu.child_grid_launches").add(Record.ChildGrids);
  M.counter("psg.vgpu.logical_threads").add(Threads);
  M.histogram("psg.vgpu.kernel_wall_s").record(Timer.seconds());
  return Record;
}
