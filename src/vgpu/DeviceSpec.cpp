//===- vgpu/DeviceSpec.cpp ------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "vgpu/DeviceSpec.h"

using namespace psg;

DeviceSpec DeviceSpec::titanX() {
  DeviceSpec D;
  D.Name = "gtx-titan-x";
  D.Sms = 24;
  D.CoresPerSm = 128;
  D.ClockGhz = 1.075;
  // Double-precision work on Maxwell runs far below the single-precision
  // peak (1/32 DP ratio); biochemical simulators mix DP arithmetic with
  // latency-bound memory access, so the effective per-core issue rate is
  // modeled well below 1.
  D.IssueRate = 0.12;
  D.WarpSize = 32;
  D.MaxThreadsPerSm = 2048;
  D.GlobalBandwidthGBs = 336.0;
  D.GlobalLatencyNs = 350.0;
  D.SharedLatencyNs = 15.0;
  D.SharedMemPerSmBytes = 96 * 1024;
  D.ConstantMemBytes = 64 * 1024;
  D.KernelLaunchUs = 6.0;
  D.ChildLaunchUs = 1.6;
  D.SyncPointUs = 1.0;
  return D;
}

DeviceSpec DeviceSpec::cpuCore() {
  DeviceSpec D;
  D.Name = "i7-2600-core";
  D.Sms = 1;
  D.CoresPerSm = 1;
  D.ClockGhz = 3.4;
  // Effective scalar IPC of compiled Fortran/C solvers (superscalar issue,
  // partial SIMD): ~2 useful flops per cycle.
  D.IssueRate = 2.0;
  D.WarpSize = 1;
  D.MaxThreadsPerSm = 1;
  D.GlobalBandwidthGBs = 21.0;
  D.GlobalLatencyNs = 60.0;
  D.SharedLatencyNs = 1.0; // L1-resident working set.
  D.KernelLaunchUs = 0.0;
  D.ChildLaunchUs = 0.0;
  D.SyncPointUs = 0.0;
  return D;
}
