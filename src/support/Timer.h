//===- support/Timer.h - Wall-clock timing ----------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal wall-clock timer used by benches and the engine report.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_SUPPORT_TIMER_H
#define PSG_SUPPORT_TIMER_H

#include <chrono>

namespace psg {

/// Monotonic wall-clock timer. Starts on construction or restart().
class WallTimer {
public:
  WallTimer() : Start(Clock::now()) {}

  /// Restarts the timer.
  void restart() { Start = Clock::now(); }

  /// Returns seconds elapsed since construction or the last restart().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace psg

#endif // PSG_SUPPORT_TIMER_H
