//===- support/Csv.cpp ----------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "support/Csv.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace psg;

std::string psg::csvEscape(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Escaped = "\"";
  for (char C : Cell) {
    if (C == '"')
      Escaped += '"';
    Escaped += C;
  }
  Escaped += '"';
  return Escaped;
}

CsvWriter::CsvWriter(std::vector<std::string> Header)
    : Columns(Header.size()) {
  assert(Columns > 0 && "CSV document needs at least one column");
  appendCells(Header);
  Rows = 0;
}

void CsvWriter::appendCells(const std::vector<std::string> &Cells) {
  assert(Cells.size() == Columns && "row width does not match header");
  for (size_t I = 0; I < Cells.size(); ++I) {
    if (I != 0)
      Buffer += ',';
    Buffer += csvEscape(Cells[I]);
  }
  Buffer += '\n';
  ++Rows;
}

void CsvWriter::addRow(const std::vector<std::string> &Cells) {
  appendCells(Cells);
}

void CsvWriter::addRow(const std::vector<double> &Cells) {
  std::vector<std::string> Text;
  Text.reserve(Cells.size());
  for (double V : Cells)
    Text.push_back(formatString("%.10g", V));
  appendCells(Text);
}

std::string CsvWriter::toString() const { return Buffer; }

Status CsvWriter::saveToFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return Status::failure("cannot open '" + Path + "' for writing");
  size_t Written = std::fwrite(Buffer.data(), 1, Buffer.size(), File);
  std::fclose(File);
  if (Written != Buffer.size())
    return Status::failure("short write to '" + Path + "'");
  return Status::success();
}
