//===- support/Timer.cpp --------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "support/Timer.h"

// WallTimer is header-only; this file anchors the translation unit.
