//===- support/Csv.h - CSV emission -----------------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small CSV writer. Results and bench tables are emitted as CSV so the
/// plots in EXPERIMENTS.md can be regenerated from raw data.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_SUPPORT_CSV_H
#define PSG_SUPPORT_CSV_H

#include "support/Error.h"

#include <string>
#include <vector>

namespace psg {

/// Accumulates CSV rows in memory; write with toString() or saveToFile().
class CsvWriter {
public:
  /// Starts a document with the given column headers.
  explicit CsvWriter(std::vector<std::string> Header);

  /// Appends a row of preformatted cells; must match the header width.
  void addRow(const std::vector<std::string> &Cells);

  /// Appends a row of doubles formatted with %.10g.
  void addRow(const std::vector<double> &Cells);

  /// Number of data rows added so far.
  size_t numRows() const { return Rows; }

  /// Renders the document.
  std::string toString() const;

  /// Writes the document to \p Path; fails if the file cannot be opened.
  Status saveToFile(const std::string &Path) const;

private:
  size_t Columns;
  size_t Rows = 0;
  std::string Buffer;

  void appendCells(const std::vector<std::string> &Cells);
};

/// Escapes a cell for CSV (quotes fields containing separators/quotes).
std::string csvEscape(const std::string &Cell);

} // namespace psg

#endif // PSG_SUPPORT_CSV_H
