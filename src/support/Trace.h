//===- support/Trace.h - Lightweight tracing spans --------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight tracing: RAII scoped spans recording begin/end wall times
/// (plus optional modeled-device seconds) into a process-wide collector,
/// exported in the Chrome chrome://tracing event format. Collection is
/// off by default; when disabled a span costs one relaxed atomic load
/// and no clock reads, so instrumentation can stay in hot paths.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_SUPPORT_TRACE_H
#define PSG_SUPPORT_TRACE_H

#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace psg {

/// One recorded event, timestamped in microseconds since the collector
/// epoch (process start).
struct TraceEvent {
  std::string Name;
  std::string Category;
  double TimestampUs = 0.0;
  double DurationUs = -1.0;     ///< < 0 marks an instant event.
  uint32_t ThreadId = 0;        ///< Small stable per-thread id.
  double ModeledSeconds = -1.0; ///< Modeled device time; < 0 = absent.
};

/// The process-wide event sink. Access through trace().
class TraceCollector {
public:
  /// Hard cap on buffered events; later events are counted as dropped.
  static constexpr size_t MaxEvents = 1u << 20;

  void enable() { Enabled.store(true, std::memory_order_relaxed); }
  void disable() { Enabled.store(false, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Discards all buffered events (and the dropped count).
  void clear();

  /// Appends \p Event if enabled and under the cap.
  void record(TraceEvent Event);

  /// Copies out the buffered events.
  std::vector<TraceEvent> events() const;

  size_t numEvents() const;
  size_t droppedEvents() const;

  /// Microseconds since the collector epoch.
  double nowUs() const;

  /// Small stable id of the calling thread (assigned on first use).
  static uint32_t currentThreadId();

  /// Renders the buffer as a chrome://tracing-compatible JSON document.
  std::string toChromeJson() const;

  /// Writes toChromeJson() to \p Path.
  Status saveToFile(const std::string &Path) const;

private:
  friend TraceCollector &trace();
  TraceCollector();

  std::atomic<bool> Enabled{false};
  mutable std::mutex Mutex;
  std::vector<TraceEvent> Events;
  size_t Dropped = 0;
  uint64_t EpochNs = 0;
};

/// The process-wide collector instance.
TraceCollector &trace();

/// RAII span: records one complete ("X") event from construction to
/// destruction when the collector is enabled at construction time.
class TraceSpan {
public:
  explicit TraceSpan(std::string Name, std::string Category = "psg");
  ~TraceSpan();

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches modeled device seconds to the emitted event.
  void setModeledSeconds(double Seconds) { Modeled = Seconds; }

  /// True when this span will emit an event on destruction.
  bool active() const { return Active; }

  /// Nesting depth of active spans on the calling thread (this span
  /// included while alive).
  static unsigned currentDepth();

private:
  std::string Name;
  std::string Category;
  double StartUs = 0.0;
  double Modeled = -1.0;
  bool Active = false;
};

/// Records an instant event (a point-in-time marker) when enabled.
void traceInstant(const std::string &Name,
                  const std::string &Category = "psg");

} // namespace psg

#endif // PSG_SUPPORT_TRACE_H
