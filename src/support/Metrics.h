//===- support/Metrics.h - Process-wide metrics registry --------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide metrics registry: named counters, gauges, and
/// histograms with thread-safe (relaxed-atomic) updates. The hot layers
/// (engine dispatch, solvers, virtual device, thread pool, analysis
/// drivers) record into the registry; a MetricsSnapshot freezes all
/// values for reports and JSON serialization.
///
/// Registration is mutex-protected and returns references that stay
/// valid for the lifetime of the process (reset() zeroes values but
/// never unregisters), so hot paths can look a metric up once and then
/// update it lock-free.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_SUPPORT_METRICS_H
#define PSG_SUPPORT_METRICS_H

#include "support/Error.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace psg {

/// Monotonic event counter.
class Counter {
public:
  /// Adds \p N; safe to call concurrently.
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Last-value gauge that also supports accumulation (e.g. busy seconds).
class Gauge {
public:
  /// Replaces the value; safe to call concurrently.
  void set(double V) { Value.store(V, std::memory_order_relaxed); }

  /// Adds \p Delta atomically (CAS loop; no fetch_add on doubles pre-C++20
  /// library support).
  void add(double Delta) {
    double Old = Value.load(std::memory_order_relaxed);
    while (!Value.compare_exchange_weak(Old, Old + Delta,
                                        std::memory_order_relaxed)) {
    }
  }

  double value() const { return Value.load(std::memory_order_relaxed); }

  void reset() { Value.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> Value{0.0};
};

/// Exponentially-bucketed histogram over positive samples (timings,
/// sizes). Bucket I covers (2^(I-1-Offset), 2^(I-Offset)] seconds/units
/// with Offset = 30, spanning ~1 ns to ~2^33; out-of-range samples clamp
/// to the end buckets. Also tracks count/sum/min/max.
class Histogram {
public:
  static constexpr size_t NumBuckets = 64;
  /// Exponent offset: bucket 0's upper bound is 2^-30 (~1 ns).
  static constexpr int ExponentOffset = 30;

  /// Upper (inclusive) bound of bucket \p Index.
  static double bucketUpperBound(size_t Index);

  /// Bucket index receiving \p Sample.
  static size_t bucketIndex(double Sample);

  /// Records one sample; safe to call concurrently.
  void record(double Sample);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }

  void reset();

private:
  friend class MetricsRegistry;
  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0.0};
  std::atomic<double> Min{0.0};
  std::atomic<double> Max{0.0};
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
};

/// Frozen value of one counter.
struct CounterSample {
  std::string Name;
  uint64_t Value = 0;
};

/// Frozen value of one gauge.
struct GaugeSample {
  std::string Name;
  double Value = 0.0;
};

/// Frozen state of one histogram. Buckets are sparse (index, count)
/// pairs in increasing index order; bounds follow
/// Histogram::bucketUpperBound.
struct HistogramSample {
  std::string Name;
  uint64_t Count = 0;
  double Sum = 0.0;
  double Min = 0.0;
  double Max = 0.0;
  std::vector<std::pair<uint32_t, uint64_t>> Buckets;

  /// Mean sample, 0 when empty.
  double mean() const {
    return Count ? Sum / static_cast<double>(Count) : 0.0;
  }
};

/// A frozen view of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> Counters;
  std::vector<GaugeSample> Gauges;
  std::vector<HistogramSample> Histograms;

  /// Value of the named counter, 0 when absent.
  uint64_t counterValue(const std::string &Name) const;
  /// Value of the named gauge, 0 when absent.
  double gaugeValue(const std::string &Name) const;
  /// The named histogram, or nullptr when absent.
  const HistogramSample *histogram(const std::string &Name) const;
};

/// The process-wide registry. Access through metrics().
class MetricsRegistry {
public:
  /// Returns (creating on first use) the named counter.
  Counter &counter(const std::string &Name);
  /// Returns (creating on first use) the named gauge.
  Gauge &gauge(const std::string &Name);
  /// Returns (creating on first use) the named histogram.
  Histogram &histogram(const std::string &Name);

  /// Freezes all current values.
  MetricsSnapshot snapshot() const;

  /// Zeroes every metric; registrations (and references) stay valid.
  void reset();

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// The process-wide registry instance.
MetricsRegistry &metrics();

/// Renders \p Snapshot as the psg-metrics-v1 JSON document.
std::string metricsSnapshotToJson(const MetricsSnapshot &Snapshot);

/// Parses a psg-metrics-v1 JSON document back into a snapshot.
ErrorOr<MetricsSnapshot> metricsSnapshotFromJson(const std::string &Json);

} // namespace psg

#endif // PSG_SUPPORT_METRICS_H
