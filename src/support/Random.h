//===- support/Random.h - Deterministic random number generation -*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable random number generation used by the synthetic
/// model generator, the sampling schemes, and the swarm optimizers. The
/// generator is xoshiro256** seeded through SplitMix64, which gives
/// reproducible streams across platforms (unlike std::mt19937 distributions,
/// whose outputs are implementation-defined).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_SUPPORT_RANDOM_H
#define PSG_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace psg {

/// SplitMix64 stream; used to seed Xoshiro256 and for cheap hashing.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value in the stream.
  uint64_t next();

private:
  uint64_t State;
};

/// xoshiro256** generator with utility floating-point draws.
class Rng {
public:
  /// Seeds the generator deterministically from \p Seed.
  explicit Rng(uint64_t Seed = 0x9E3779B97F4A7C15ull);

  /// Returns the next raw 64-bit output.
  uint64_t nextU64();

  /// Returns a double uniformly distributed in [0, 1).
  double uniform();

  /// Returns a double uniformly distributed in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Returns a draw from the log-uniform distribution on [Lo, Hi);
  /// both bounds must be positive.
  double logUniform(double Lo, double Hi);

  /// Returns an integer uniformly distributed in [0, N).
  uint64_t uniformInt(uint64_t N);

  /// Returns a standard normal draw (Box-Muller, one value per call).
  double normal();

  /// Splits off an independent generator for a sub-task; deterministic in
  /// (this stream state, StreamId).
  Rng split(uint64_t StreamId);

private:
  uint64_t State[4];
  double CachedNormal = 0.0;
  bool HasCachedNormal = false;
};

} // namespace psg

#endif // PSG_SUPPORT_RANDOM_H
