//===- support/Logging.h - Leveled logging ----------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Minimal leveled logger writing to stderr. Library code logs sparingly;
/// the engine logs phase transitions at Info and dispatch detail at Debug.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_SUPPORT_LOGGING_H
#define PSG_SUPPORT_LOGGING_H

namespace psg {

/// Log severity, ordered by verbosity.
enum class LogLevel { Error = 0, Warning = 1, Info = 2, Debug = 3 };

/// Sets the global log threshold; messages above it are dropped.
void setLogLevel(LogLevel Level);

/// Returns the current global log threshold.
LogLevel logLevel();

/// Emits a printf-formatted message at \p Level if enabled.
void logMessage(LogLevel Level, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

} // namespace psg

#endif // PSG_SUPPORT_LOGGING_H
