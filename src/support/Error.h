//===- support/Error.h - Error handling primitives --------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight, exception-free error handling. Library code reports
/// recoverable errors through \c ErrorOr<T> or \c Status; programmatic errors
/// abort through \c fatalError / asserts.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_SUPPORT_ERROR_H
#define PSG_SUPPORT_ERROR_H

#include <cassert>
#include <string>
#include <utility>

namespace psg {

/// Prints \p Message to stderr and aborts. Used for unrecoverable
/// programmatic errors in tool code.
[[noreturn]] void fatalError(const std::string &Message);

/// Result of a fallible operation that produces no value.
///
/// A default-constructed Status is success; failures carry a message.
class Status {
public:
  Status() = default;

  /// Creates a failure status carrying \p Message.
  static Status failure(std::string Message) {
    Status S;
    S.Failed = true;
    S.Text = std::move(Message);
    return S;
  }

  /// Creates a success status.
  static Status success() { return Status(); }

  /// Returns true if the operation succeeded.
  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }

  /// Returns the failure message (empty on success).
  const std::string &message() const { return Text; }

private:
  bool Failed = false;
  std::string Text;
};

/// A value-or-error discriminated union for fallible functions that return a
/// result. Accessing the value of a failed ErrorOr is a programmatic error.
template <typename T> class ErrorOr {
public:
  /// Constructs a success value.
  ErrorOr(T V) : Value(std::move(V)), Failed(false) {}

  /// Constructs a failure from \p S (which must be a failure status).
  ErrorOr(Status S) : Err(std::move(S)), Failed(true) {
    assert(!Err.ok() && "ErrorOr built from a success Status");
  }

  /// Creates a failure carrying \p Message.
  static ErrorOr<T> failure(std::string Message) {
    return ErrorOr<T>(Status::failure(std::move(Message)));
  }

  /// Returns true if a value is present.
  bool ok() const { return !Failed; }
  explicit operator bool() const { return ok(); }

  /// Returns the contained value; must only be called when ok().
  T &value() {
    assert(ok() && "value() on failed ErrorOr");
    return Value;
  }
  const T &value() const {
    assert(ok() && "value() on failed ErrorOr");
    return Value;
  }
  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  /// Returns the failure message; must only be called when !ok().
  const std::string &message() const {
    assert(!ok() && "message() on successful ErrorOr");
    return Err.message();
  }

  /// Returns the failure as a Status; must only be called when !ok().
  const Status &status() const {
    assert(!ok() && "status() on successful ErrorOr");
    return Err;
  }

private:
  T Value{};
  Status Err;
  bool Failed;
};

} // namespace psg

#endif // PSG_SUPPORT_ERROR_H
