//===- support/StringUtils.cpp --------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace psg;

static bool isSpace(char C) {
  return std::isspace(static_cast<unsigned char>(C)) != 0;
}

std::string_view psg::trim(std::string_view S) {
  size_t Begin = 0;
  while (Begin < S.size() && isSpace(S[Begin]))
    ++Begin;
  size_t End = S.size();
  while (End > Begin && isSpace(S[End - 1]))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string> psg::split(std::string_view S, char Sep) {
  std::vector<std::string> Fields;
  size_t Pos = 0;
  for (;;) {
    size_t Next = S.find(Sep, Pos);
    if (Next == std::string_view::npos) {
      Fields.emplace_back(trim(S.substr(Pos)));
      return Fields;
    }
    Fields.emplace_back(trim(S.substr(Pos, Next - Pos)));
    Pos = Next + 1;
  }
}

std::vector<std::string> psg::splitWhitespace(std::string_view S) {
  std::vector<std::string> Fields;
  size_t I = 0;
  while (I < S.size()) {
    while (I < S.size() && isSpace(S[I]))
      ++I;
    size_t Begin = I;
    while (I < S.size() && !isSpace(S[I]))
      ++I;
    if (I > Begin)
      Fields.emplace_back(S.substr(Begin, I - Begin));
  }
  return Fields;
}

bool psg::startsWith(std::string_view S, std::string_view Prefix) {
  return S.substr(0, Prefix.size()) == Prefix;
}

bool psg::parseDouble(std::string_view S, double &Out) {
  S = trim(S);
  if (S.empty())
    return false;
  std::string Buffer(S);
  char *End = nullptr;
  Out = std::strtod(Buffer.c_str(), &End);
  return End == Buffer.c_str() + Buffer.size();
}

bool psg::parseUnsigned(std::string_view S, unsigned &Out) {
  S = trim(S);
  if (S.empty() || S[0] == '-' || S[0] == '+')
    return false; // strtoul would silently wrap negative inputs.
  std::string Buffer(S);
  char *End = nullptr;
  unsigned long V = std::strtoul(Buffer.c_str(), &End, 10);
  if (End != Buffer.c_str() + Buffer.size())
    return false;
  Out = static_cast<unsigned>(V);
  return true;
}

std::string psg::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Size < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Size), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}
