//===- support/FunctionRef.h - Non-owning callable reference ----*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A non-owning, non-allocating reference to a callable, in the style of
/// llvm::function_ref / C++26 std::function_ref. Two words wide (object
/// pointer + trampoline), trivially copyable, and free of the type-erased
/// heap allocation std::function may perform — the right parameter type
/// for hot-path callbacks (kernel bodies, child-grid launches, pool
/// loops) that are invoked inside the call they are passed to.
///
/// Like llvm::function_ref, a FunctionRef does not extend the lifetime of
/// the referenced callable: it must not be stored beyond the duration of
/// the call it was passed to unless the caller guarantees the callee
/// outlives it (the thread pool relies on this by joining every job
/// before parallelFor returns).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_SUPPORT_FUNCTIONREF_H
#define PSG_SUPPORT_FUNCTIONREF_H

#include <cstdint>
#include <type_traits>
#include <utility>

namespace psg {

template <typename Fn> class FunctionRef;

/// Non-owning reference to a callable invocable as Ret(Params...).
template <typename Ret, typename... Params> class FunctionRef<Ret(Params...)> {
public:
  FunctionRef() = default;

  /// Binds to any callable except another FunctionRef of the same type
  /// (which copies instead, preserving the original referent).
  template <typename Callable,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cv_t<std::remove_reference_t<Callable>>,
                                FunctionRef> &&
                std::is_invocable_r_v<Ret, Callable &, Params...>>>
  FunctionRef(Callable &&Fn)
      : Object(reinterpret_cast<void *>(&Fn)),
        Trampoline(&invoke<std::remove_reference_t<Callable>>) {}

  Ret operator()(Params... Args) const {
    return Trampoline(Object, std::forward<Params>(Args)...);
  }

  /// True when bound to a callable.
  explicit operator bool() const { return Trampoline != nullptr; }

private:
  template <typename Callable>
  static Ret invoke(void *Object, Params... Args) {
    return (*reinterpret_cast<Callable *>(Object))(
        std::forward<Params>(Args)...);
  }

  void *Object = nullptr;
  Ret (*Trampoline)(void *, Params...) = nullptr;
};

} // namespace psg

#endif // PSG_SUPPORT_FUNCTIONREF_H
