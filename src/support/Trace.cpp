//===- support/Trace.cpp --------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "support/Trace.h"

#include "support/StringUtils.h"

#include <chrono>
#include <cstdio>
#include <mutex>

using namespace psg;

namespace {
uint64_t monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Thread ids are assigned densely on first use so traces stay readable.
std::atomic<uint32_t> NextThreadId{1};
thread_local uint32_t CachedThreadId = 0;

thread_local unsigned ActiveSpanDepth = 0;
} // namespace

TraceCollector::TraceCollector() : EpochNs(monotonicNowNs()) {}

void TraceCollector::clear() {
  std::lock_guard<std::mutex> Guard(Mutex);
  Events.clear();
  Dropped = 0;
}

void TraceCollector::record(TraceEvent Event) {
  if (!enabled())
    return;
  std::lock_guard<std::mutex> Guard(Mutex);
  if (Events.size() >= MaxEvents) {
    ++Dropped;
    return;
  }
  Events.push_back(std::move(Event));
}

std::vector<TraceEvent> TraceCollector::events() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Events;
}

size_t TraceCollector::numEvents() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Events.size();
}

size_t TraceCollector::droppedEvents() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Dropped;
}

double TraceCollector::nowUs() const {
  return static_cast<double>(monotonicNowNs() - EpochNs) / 1000.0;
}

uint32_t TraceCollector::currentThreadId() {
  if (CachedThreadId == 0)
    CachedThreadId = NextThreadId.fetch_add(1, std::memory_order_relaxed);
  return CachedThreadId;
}

namespace {
std::string chromeEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      Out += formatString("\\u%04x", C);
      continue;
    }
    Out += C;
  }
  return Out;
}
} // namespace

std::string TraceCollector::toChromeJson() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  std::string Out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (size_t I = 0; I < Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    Out += I ? ",\n" : "\n";
    const bool Complete = E.DurationUs >= 0.0;
    Out += formatString(
        "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", "
        "\"ts\": %.3f, %s\"pid\": 1, \"tid\": %u",
        chromeEscape(E.Name).c_str(), chromeEscape(E.Category).c_str(),
        Complete ? "X" : "i", E.TimestampUs,
        Complete ? formatString("\"dur\": %.3f, ", E.DurationUs).c_str()
                 : "\"s\": \"t\", ",
        E.ThreadId);
    if (E.ModeledSeconds >= 0.0)
      Out += formatString(", \"args\": {\"modeled_s\": %.9g}",
                          E.ModeledSeconds);
    Out += "}";
  }
  Out += "\n]}\n";
  return Out;
}

Status TraceCollector::saveToFile(const std::string &Path) const {
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return Status::failure("cannot open '" + Path + "' for writing");
  const std::string Body = toChromeJson();
  const size_t Written = std::fwrite(Body.data(), 1, Body.size(), File);
  std::fclose(File);
  if (Written != Body.size())
    return Status::failure("short write to '" + Path + "'");
  return Status::success();
}

TraceCollector &psg::trace() {
  static TraceCollector Collector;
  return Collector;
}

//===----------------------------------------------------------------------===//
// Spans.
//===----------------------------------------------------------------------===//

TraceSpan::TraceSpan(std::string SpanName, std::string SpanCategory) {
  TraceCollector &Collector = trace();
  if (!Collector.enabled())
    return;
  Active = true;
  Name = std::move(SpanName);
  Category = std::move(SpanCategory);
  StartUs = Collector.nowUs();
  ++ActiveSpanDepth;
}

TraceSpan::~TraceSpan() {
  if (!Active)
    return;
  --ActiveSpanDepth;
  TraceCollector &Collector = trace();
  TraceEvent Event;
  Event.Name = std::move(Name);
  Event.Category = std::move(Category);
  Event.TimestampUs = StartUs;
  Event.DurationUs = Collector.nowUs() - StartUs;
  Event.ThreadId = TraceCollector::currentThreadId();
  Event.ModeledSeconds = Modeled;
  Collector.record(std::move(Event));
}

unsigned TraceSpan::currentDepth() { return ActiveSpanDepth; }

void psg::traceInstant(const std::string &Name,
                       const std::string &Category) {
  TraceCollector &Collector = trace();
  if (!Collector.enabled())
    return;
  TraceEvent Event;
  Event.Name = Name;
  Event.Category = Category;
  Event.TimestampUs = Collector.nowUs();
  Event.ThreadId = TraceCollector::currentThreadId();
  Collector.record(std::move(Event));
}
