//===- support/Random.cpp -------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"

#include <cmath>

using namespace psg;

uint64_t SplitMix64::next() {
  State += 0x9E3779B97F4A7C15ull;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

Rng::Rng(uint64_t Seed) {
  SplitMix64 Seeder(Seed);
  for (uint64_t &S : State)
    S = Seeder.next();
}

static uint64_t rotl64(uint64_t X, int K) {
  return (X << K) | (X >> (64 - K));
}

uint64_t Rng::nextU64() {
  const uint64_t Result = rotl64(State[1] * 5, 7) * 9;
  const uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl64(State[3], 45);
  return Result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "empty uniform range");
  return Lo + (Hi - Lo) * uniform();
}

double Rng::logUniform(double Lo, double Hi) {
  assert(Lo > 0.0 && Hi > 0.0 && Lo <= Hi && "invalid log-uniform range");
  return std::exp(uniform(std::log(Lo), std::log(Hi)));
}

uint64_t Rng::uniformInt(uint64_t N) {
  assert(N > 0 && "uniformInt over empty range");
  // Rejection sampling to avoid modulo bias.
  const uint64_t Threshold = (0ull - N) % N;
  for (;;) {
    uint64_t R = nextU64();
    if (R >= Threshold)
      return R % N;
  }
}

double Rng::normal() {
  if (HasCachedNormal) {
    HasCachedNormal = false;
    return CachedNormal;
  }
  double U1 = 0.0;
  do {
    U1 = uniform();
  } while (U1 <= 0.0);
  const double U2 = uniform();
  const double R = std::sqrt(-2.0 * std::log(U1));
  const double Theta = 2.0 * M_PI * U2;
  CachedNormal = R * std::sin(Theta);
  HasCachedNormal = true;
  return R * std::cos(Theta);
}

Rng Rng::split(uint64_t StreamId) {
  SplitMix64 Mixer(State[0] ^ rotl64(StreamId, 32) ^ 0xA5A5A5A55A5A5A5Aull);
  return Rng(Mixer.next());
}
