//===- support/Error.cpp --------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void psg::fatalError(const std::string &Message) {
  std::fprintf(stderr, "psg fatal error: %s\n", Message.c_str());
  std::abort();
}
