//===- support/Logging.cpp ------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "support/Logging.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

using namespace psg;

static std::atomic<LogLevel> GlobalLevel{LogLevel::Warning};

void psg::setLogLevel(LogLevel Level) { GlobalLevel.store(Level); }

LogLevel psg::logLevel() { return GlobalLevel.load(); }

static const char *levelName(LogLevel Level) {
  switch (Level) {
  case LogLevel::Error:
    return "error";
  case LogLevel::Warning:
    return "warning";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  }
  return "?";
}

void psg::logMessage(LogLevel Level, const char *Fmt, ...) {
  if (static_cast<int>(Level) > static_cast<int>(GlobalLevel.load()))
    return;
  std::fprintf(stderr, "psg %s: ", levelName(Level));
  va_list Args;
  va_start(Args, Fmt);
  std::vfprintf(stderr, Fmt, Args);
  va_end(Args);
  std::fputc('\n', stderr);
}
