//===- support/Metrics.cpp ------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "support/Metrics.h"

#include "support/StringUtils.h"

#include <cmath>
#include <cstdlib>

using namespace psg;

//===----------------------------------------------------------------------===//
// Histogram.
//===----------------------------------------------------------------------===//

double Histogram::bucketUpperBound(size_t Index) {
  return std::ldexp(1.0, static_cast<int>(Index) - ExponentOffset);
}

size_t Histogram::bucketIndex(double Sample) {
  if (!(Sample > 0.0) || !std::isfinite(Sample))
    return 0;
  int Exponent = 0;
  const double Mantissa = std::frexp(Sample, &Exponent);
  // frexp: Sample = Mantissa * 2^Exponent with Mantissa in [0.5, 1), so
  // the inclusive upper bound is 2^Exponent unless Sample is an exact
  // power of two (Mantissa == 0.5), which belongs one bucket lower.
  if (Mantissa == 0.5)
    --Exponent;
  const int Index = Exponent + ExponentOffset;
  if (Index < 0)
    return 0;
  if (Index >= static_cast<int>(NumBuckets))
    return NumBuckets - 1;
  return static_cast<size_t>(Index);
}

void Histogram::record(double Sample) {
  const uint64_t Seen = Count.fetch_add(1, std::memory_order_relaxed);
  Buckets[bucketIndex(Sample)].fetch_add(1, std::memory_order_relaxed);

  double OldSum = Sum.load(std::memory_order_relaxed);
  while (!Sum.compare_exchange_weak(OldSum, OldSum + Sample,
                                    std::memory_order_relaxed)) {
  }
  // First sample seeds min and max; later samples CAS them monotonically.
  if (Seen == 0) {
    Min.store(Sample, std::memory_order_relaxed);
    Max.store(Sample, std::memory_order_relaxed);
    return;
  }
  double OldMin = Min.load(std::memory_order_relaxed);
  while (Sample < OldMin &&
         !Min.compare_exchange_weak(OldMin, Sample,
                                    std::memory_order_relaxed)) {
  }
  double OldMax = Max.load(std::memory_order_relaxed);
  while (Sample > OldMax &&
         !Max.compare_exchange_weak(OldMax, Sample,
                                    std::memory_order_relaxed)) {
  }
}

void Histogram::reset() {
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0.0, std::memory_order_relaxed);
  Min.store(0.0, std::memory_order_relaxed);
  Max.store(0.0, std::memory_order_relaxed);
  for (std::atomic<uint64_t> &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Snapshot lookups.
//===----------------------------------------------------------------------===//

uint64_t MetricsSnapshot::counterValue(const std::string &Name) const {
  for (const CounterSample &C : Counters)
    if (C.Name == Name)
      return C.Value;
  return 0;
}

double MetricsSnapshot::gaugeValue(const std::string &Name) const {
  for (const GaugeSample &G : Gauges)
    if (G.Name == Name)
      return G.Value;
  return 0.0;
}

const HistogramSample *
MetricsSnapshot::histogram(const std::string &Name) const {
  for (const HistogramSample &H : Histograms)
    if (H.Name == Name)
      return &H;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Registry.
//===----------------------------------------------------------------------===//

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Guard(Mutex);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot = std::make_unique<Counter>();
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Guard(Mutex);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Guard(Mutex);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  MetricsSnapshot S;
  S.Counters.reserve(Counters.size());
  for (const auto &[Name, C] : Counters)
    S.Counters.push_back({Name, C->value()});
  S.Gauges.reserve(Gauges.size());
  for (const auto &[Name, G] : Gauges)
    S.Gauges.push_back({Name, G->value()});
  S.Histograms.reserve(Histograms.size());
  for (const auto &[Name, H] : Histograms) {
    HistogramSample Sample;
    Sample.Name = Name;
    Sample.Count = H->Count.load(std::memory_order_relaxed);
    Sample.Sum = H->Sum.load(std::memory_order_relaxed);
    Sample.Min = H->Min.load(std::memory_order_relaxed);
    Sample.Max = H->Max.load(std::memory_order_relaxed);
    for (size_t I = 0; I < Histogram::NumBuckets; ++I) {
      const uint64_t N = H->Buckets[I].load(std::memory_order_relaxed);
      if (N > 0)
        Sample.Buckets.push_back({static_cast<uint32_t>(I), N});
    }
    S.Histograms.push_back(std::move(Sample));
  }
  return S;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Guard(Mutex);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

MetricsRegistry &psg::metrics() {
  static MetricsRegistry Registry;
  return Registry;
}

//===----------------------------------------------------------------------===//
// JSON serialization (psg-metrics-v1).
//===----------------------------------------------------------------------===//

namespace {
/// Escapes \p S for a JSON string literal (metric names are plain
/// identifiers, but be safe).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

/// Formats a double so it parses back bit-exactly.
std::string jsonNumber(double V) {
  if (!std::isfinite(V))
    return "0";
  return formatString("%.17g", V);
}
} // namespace

std::string psg::metricsSnapshotToJson(const MetricsSnapshot &Snapshot) {
  std::string Out = "{\n  \"schema\": \"psg-metrics-v1\",\n  \"counters\": {";
  bool First = true;
  for (const CounterSample &C : Snapshot.Counters) {
    Out += formatString("%s\n    \"%s\": %llu", First ? "" : ",",
                        jsonEscape(C.Name).c_str(),
                        (unsigned long long)C.Value);
    First = false;
  }
  Out += Snapshot.Counters.empty() ? "},\n" : "\n  },\n";
  Out += "  \"gauges\": {";
  First = true;
  for (const GaugeSample &G : Snapshot.Gauges) {
    Out += formatString("%s\n    \"%s\": %s", First ? "" : ",",
                        jsonEscape(G.Name).c_str(),
                        jsonNumber(G.Value).c_str());
    First = false;
  }
  Out += Snapshot.Gauges.empty() ? "},\n" : "\n  },\n";
  Out += "  \"histograms\": {";
  First = true;
  for (const HistogramSample &H : Snapshot.Histograms) {
    Out += formatString(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %s, \"min\": %s, "
        "\"max\": %s, \"buckets\": [",
        First ? "" : ",", jsonEscape(H.Name).c_str(),
        (unsigned long long)H.Count, jsonNumber(H.Sum).c_str(),
        jsonNumber(H.Min).c_str(), jsonNumber(H.Max).c_str());
    for (size_t I = 0; I < H.Buckets.size(); ++I)
      Out += formatString("%s[%u, %llu]", I ? ", " : "", H.Buckets[I].first,
                          (unsigned long long)H.Buckets[I].second);
    Out += "]}";
    First = false;
  }
  Out += Snapshot.Histograms.empty() ? "}\n}\n" : "\n  }\n}\n";
  return Out;
}

namespace {
/// Minimal recursive-descent reader for the psg-metrics-v1 schema.
class JsonCursor {
public:
  explicit JsonCursor(const std::string &Text) : Text(Text) {}

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    skipWs();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool peek(char C) {
    skipWs();
    return Pos < Text.size() && Text[Pos] == C;
  }

  bool parseString(std::string &Out) {
    if (!consume('"'))
      return false;
    Out.clear();
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\' && Pos < Text.size()) {
        const char Esc = Text[Pos++];
        switch (Esc) {
        case 'n':
          C = '\n';
          break;
        case 't':
          C = '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return false;
          C = static_cast<char>(
              std::strtoul(Text.substr(Pos, 4).c_str(), nullptr, 16));
          Pos += 4;
          break;
        }
        default:
          C = Esc;
        }
      }
      Out += C;
    }
    return Pos < Text.size() && Text[Pos++] == '"';
  }

  bool parseNumber(double &Out) {
    skipWs();
    const char *Begin = Text.c_str() + Pos;
    char *End = nullptr;
    Out = std::strtod(Begin, &End);
    if (End == Begin)
      return false;
    Pos += static_cast<size_t>(End - Begin);
    return true;
  }

  bool atEnd() {
    skipWs();
    return Pos >= Text.size();
  }

private:
  const std::string &Text;
  size_t Pos = 0;
};

using ParseError = ErrorOr<MetricsSnapshot>;

ParseError malformed(const char *What) {
  return ParseError::failure(formatString("malformed metrics JSON: %s", What));
}
} // namespace

ErrorOr<MetricsSnapshot> psg::metricsSnapshotFromJson(const std::string &Json) {
  JsonCursor Cursor(Json);
  MetricsSnapshot Snapshot;
  if (!Cursor.consume('{'))
    return malformed("expected top-level object");

  bool FirstKey = true;
  while (!Cursor.peek('}')) {
    if (!FirstKey && !Cursor.consume(','))
      return malformed("expected ',' between sections");
    FirstKey = false;
    std::string Section;
    if (!Cursor.parseString(Section) || !Cursor.consume(':'))
      return malformed("expected section name");

    if (Section == "schema") {
      std::string Schema;
      if (!Cursor.parseString(Schema))
        return malformed("expected schema string");
      if (Schema != "psg-metrics-v1")
        return ParseError::failure("unsupported metrics schema '" + Schema +
                                   "'");
      continue;
    }

    if (!Cursor.consume('{'))
      return malformed("expected section object");
    bool FirstEntry = true;
    while (!Cursor.peek('}')) {
      if (!FirstEntry && !Cursor.consume(','))
        return malformed("expected ',' between entries");
      FirstEntry = false;
      std::string Name;
      if (!Cursor.parseString(Name) || !Cursor.consume(':'))
        return malformed("expected metric name");

      if (Section == "counters") {
        double Value = 0;
        if (!Cursor.parseNumber(Value))
          return malformed("expected counter value");
        Snapshot.Counters.push_back({Name, static_cast<uint64_t>(Value)});
      } else if (Section == "gauges") {
        double Value = 0;
        if (!Cursor.parseNumber(Value))
          return malformed("expected gauge value");
        Snapshot.Gauges.push_back({Name, Value});
      } else if (Section == "histograms") {
        HistogramSample H;
        H.Name = Name;
        if (!Cursor.consume('{'))
          return malformed("expected histogram object");
        bool FirstField = true;
        while (!Cursor.peek('}')) {
          if (!FirstField && !Cursor.consume(','))
            return malformed("expected ',' between histogram fields");
          FirstField = false;
          std::string Field;
          if (!Cursor.parseString(Field) || !Cursor.consume(':'))
            return malformed("expected histogram field");
          if (Field == "buckets") {
            if (!Cursor.consume('['))
              return malformed("expected bucket array");
            bool FirstBucket = true;
            while (!Cursor.peek(']')) {
              if (!FirstBucket && !Cursor.consume(','))
                return malformed("expected ',' between buckets");
              FirstBucket = false;
              double Index = 0, BucketCount = 0;
              if (!Cursor.consume('[') || !Cursor.parseNumber(Index) ||
                  !Cursor.consume(',') || !Cursor.parseNumber(BucketCount) ||
                  !Cursor.consume(']'))
                return malformed("expected [index, count] bucket");
              H.Buckets.push_back({static_cast<uint32_t>(Index),
                                   static_cast<uint64_t>(BucketCount)});
            }
            Cursor.consume(']');
          } else {
            double Value = 0;
            if (!Cursor.parseNumber(Value))
              return malformed("expected histogram field value");
            if (Field == "count")
              H.Count = static_cast<uint64_t>(Value);
            else if (Field == "sum")
              H.Sum = Value;
            else if (Field == "min")
              H.Min = Value;
            else if (Field == "max")
              H.Max = Value;
          }
        }
        Cursor.consume('}');
        Snapshot.Histograms.push_back(std::move(H));
      } else {
        return ParseError::failure("unknown metrics section '" + Section +
                                   "'");
      }
    }
    Cursor.consume('}');
  }
  if (!Cursor.consume('}'))
    return malformed("unterminated top-level object");
  return Snapshot;
}
