//===- support/StringUtils.h - String helpers -------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities used by the model-file parser and CSV emitters.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_SUPPORT_STRINGUTILS_H
#define PSG_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace psg {

/// Returns \p S without leading/trailing ASCII whitespace.
std::string_view trim(std::string_view S);

/// Splits \p S on \p Sep, trimming each field; empty fields are kept.
std::vector<std::string> split(std::string_view S, char Sep);

/// Splits \p S on runs of ASCII whitespace; empty fields are dropped.
std::vector<std::string> splitWhitespace(std::string_view S);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Parses a double; returns false on malformed or trailing garbage.
bool parseDouble(std::string_view S, double &Out);

/// Parses a non-negative integer; returns false on malformed input.
bool parseUnsigned(std::string_view S, unsigned &Out);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace psg

#endif // PSG_SUPPORT_STRINGUTILS_H
