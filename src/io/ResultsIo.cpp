//===- io/ResultsIo.cpp ---------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "io/ResultsIo.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace psg;

CsvWriter psg::trajectoryToCsv(const Trajectory &Traj,
                               const ReactionNetwork *Net) {
  std::vector<std::string> Header = {"time"};
  for (size_t Var = 0; Var < Traj.dimension(); ++Var)
    Header.push_back(Net ? Net->species(Var).Name
                         : formatString("y%zu", Var));
  CsvWriter Csv(std::move(Header));
  for (size_t S = 0; S < Traj.numSamples(); ++S) {
    std::vector<double> Row;
    Row.reserve(Traj.dimension() + 1);
    Row.push_back(Traj.time(S));
    const double *State = Traj.state(S);
    Row.insert(Row.end(), State, State + Traj.dimension());
    Csv.addRow(Row);
  }
  return Csv;
}

CsvWriter psg::psa2dToCsv(const Psa2dResult &Result, const std::string &Axis0,
                          const std::string &Axis1,
                          const std::string &MetricName) {
  CsvWriter Csv({Axis0, Axis1, MetricName});
  for (size_t I0 = 0; I0 < Result.Axis0Values.size(); ++I0)
    for (size_t I1 = 0; I1 < Result.Axis1Values.size(); ++I1)
      Csv.addRow({Result.Axis0Values[I0], Result.Axis1Values[I1],
                  Result.at(I0, I1)});
  return Csv;
}

CsvWriter psg::sobolToCsv(const SobolResult &Result) {
  CsvWriter Csv({"factor", "S1", "S1_conf", "ST", "ST_conf"});
  for (const SobolIndex &Index : Result.Indices)
    Csv.addRow({Index.Factor, formatString("%.6f", Index.S1),
                formatString("%.6f", Index.S1Conf),
                formatString("%.6f", Index.ST),
                formatString("%.6f", Index.STConf)});
  return Csv;
}

CsvWriter psg::engineReportToCsv(const EngineReport &Report) {
  CsvWriter Csv({"simulations", "failures", "sub_batches", "steps",
                 "rhs_evaluations", "modeled_integration_s",
                 "modeled_simulation_s", "host_wall_s"});
  Csv.addRow({formatString("%zu", Report.Outcomes.size()),
              formatString("%zu", Report.Failures),
              formatString("%llu", (unsigned long long)Report.SubBatches),
              formatString("%llu", (unsigned long long)Report.TotalStats.Steps),
              formatString("%llu",
                           (unsigned long long)Report.TotalStats.RhsEvaluations),
              formatString("%.6g", Report.IntegrationTime.total()),
              formatString("%.6g", Report.SimulationTime.total()),
              formatString("%.6g", Report.HostWallSeconds)});
  return Csv;
}

CsvWriter psg::streamReportToCsv(const StreamReport &Report) {
  CsvWriter Csv({"simulations", "failures", "sub_batches", "steps",
                 "rhs_evaluations", "modeled_integration_s",
                 "modeled_simulation_s", "host_wall_s",
                 "peak_resident_outcomes", "overlap_ratio"});
  Csv.addRow({formatString("%zu", Report.Simulations),
              formatString("%zu", Report.Failures),
              formatString("%llu", (unsigned long long)Report.SubBatches),
              formatString("%llu", (unsigned long long)Report.TotalStats.Steps),
              formatString("%llu",
                           (unsigned long long)Report.TotalStats.RhsEvaluations),
              formatString("%.6g", Report.IntegrationTime.total()),
              formatString("%.6g", Report.SimulationTime.total()),
              formatString("%.6g", Report.HostWallSeconds),
              formatString("%zu", Report.PeakResidentOutcomes),
              formatString("%.6g", Report.OverlapRatio)});
  return Csv;
}

StreamingCsvWriter::~StreamingCsvWriter() {
  if (File)
    std::fclose(File);
}

Status StreamingCsvWriter::open(const std::string &Path,
                                const std::vector<std::string> &Header) {
  assert(!File && "writer already open");
  assert(!Header.empty() && "CSV needs at least one column");
  File = std::fopen(Path.c_str(), "w");
  if (!File)
    return Status::failure("cannot open '" + Path + "' for writing");
  Columns = Header.size();
  Rows = 0;
  appendRow(Header);
  Rows = 0; // The header is not a data row.
  return Status::success();
}

void StreamingCsvWriter::appendRow(const std::vector<std::string> &Cells) {
  assert(File && "writer not open");
  assert(Cells.size() == Columns && "row width mismatch");
  std::string Line;
  for (size_t I = 0; I < Cells.size(); ++I) {
    if (I > 0)
      Line += ',';
    Line += csvEscape(Cells[I]);
  }
  Line += '\n';
  std::fwrite(Line.data(), 1, Line.size(), File);
  ++Rows;
}

void StreamingCsvWriter::appendRow(const std::vector<double> &Cells) {
  std::vector<std::string> Formatted;
  Formatted.reserve(Cells.size());
  for (double Value : Cells)
    Formatted.push_back(formatString("%.10g", Value));
  appendRow(Formatted);
}

Status StreamingCsvWriter::close() {
  assert(File && "writer not open");
  const bool ShortWrite = std::ferror(File) != 0;
  const bool CloseFailed = std::fclose(File) != 0;
  File = nullptr;
  if (ShortWrite || CloseFailed)
    return Status::failure("short write to streaming CSV");
  return Status::success();
}

GridMapCsvSink::GridMapCsvSink(StreamingCsvWriter &Writer,
                               const ParameterSpace &Space,
                               std::vector<size_t> PointsPerAxis,
                               TrajectoryReducer Reduce)
    : Writer(Writer), Reduce(std::move(Reduce)) {
  assert(PointsPerAxis.size() == Space.numAxes() &&
         "one resolution per axis");
  AxisValues.reserve(PointsPerAxis.size());
  for (size_t Axis = 0; Axis < PointsPerAxis.size(); ++Axis)
    AxisValues.push_back(Space.gridAxisValues(Axis, PointsPerAxis[Axis]));
}

void GridMapCsvSink::consumeSubBatch(size_t FirstIndex,
                                     std::vector<SimulationOutcome> &Outcomes) {
  std::vector<double> Row(AxisValues.size() + 1);
  for (size_t I = 0; I < Outcomes.size(); ++I) {
    // Decompose the global index row-major, last axis fastest, mirroring
    // GridGenerator's emission order.
    size_t Rest = FirstIndex + I;
    for (size_t Axis = AxisValues.size(); Axis-- > 0;) {
      Row[Axis] = AxisValues[Axis][Rest % AxisValues[Axis].size()];
      Rest /= AxisValues[Axis].size();
    }
    Row.back() = Reduce(Outcomes[I]);
    Writer.appendRow(Row);
  }
}

CsvWriter psg::metricsSnapshotToCsv(const MetricsSnapshot &Snapshot) {
  CsvWriter Csv({"kind", "name", "value", "count", "sum", "min", "max"});
  for (const CounterSample &C : Snapshot.Counters)
    Csv.addRow({std::string("counter"), C.Name,
                formatString("%llu", (unsigned long long)C.Value), "", "",
                "", ""});
  for (const GaugeSample &G : Snapshot.Gauges)
    Csv.addRow({std::string("gauge"), G.Name,
                formatString("%.10g", G.Value), "", "", "", ""});
  for (const HistogramSample &H : Snapshot.Histograms)
    Csv.addRow({std::string("histogram"), H.Name,
                formatString("%.10g", H.mean()),
                formatString("%llu", (unsigned long long)H.Count),
                formatString("%.10g", H.Sum), formatString("%.10g", H.Min),
                formatString("%.10g", H.Max)});
  return Csv;
}

Status psg::saveMetricsJson(const MetricsSnapshot &Snapshot,
                            const std::string &Path) {
  const std::string Body = metricsSnapshotToJson(Snapshot);
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return Status::failure("cannot open '" + Path + "' for writing");
  const size_t Written = std::fwrite(Body.data(), 1, Body.size(), File);
  std::fclose(File);
  if (Written != Body.size())
    return Status::failure("short write to '" + Path + "'");
  return Status::success();
}
