//===- io/WireIo.h - Binary wire serialization ------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary serialization of simulation payloads for the
/// cross-node fabric: a bounds-checked writer/reader pair plus codecs
/// for the types that cross the wire (SimulationOutcome with its
/// trajectory, solver options, integration statistics, modeled times,
/// and per-simulation parameterization sets). Doubles travel as their
/// IEEE-754 bit patterns, so a round trip reproduces every value
/// bit-for-bit — the property the distributed bit-exactness oracle
/// rests on. Every decode is bounds-checked against the payload and
/// against explicit size caps, so truncated or corrupted frames are
/// rejected instead of over-allocating.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_IO_WIREIO_H
#define PSG_IO_WIREIO_H

#include "ode/SolverOptions.h"
#include "sim/Simulator.h"
#include "support/Error.h"
#include "vgpu/CostModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace psg {

/// Sanity caps applied by every decoder: a corrupted length field must
/// fail fast instead of driving a multi-gigabyte allocation.
struct WireLimits {
  size_t MaxStringBytes = 1 << 16;       ///< Detail / name strings.
  size_t MaxVectorDoubles = 1 << 24;     ///< Any one double array.
  size_t MaxBatchSimulations = 1 << 22;  ///< Outcomes / param sets per batch.
};

/// Append-only little-endian byte writer.
class WireWriter {
public:
  void writeU8(uint8_t V);
  void writeU16(uint16_t V);
  void writeU32(uint32_t V);
  void writeU64(uint64_t V);
  /// The double's IEEE-754 bit pattern as a u64 (bit-exact round trip).
  void writeF64(double V);
  /// u32 byte count + raw bytes.
  void writeString(const std::string &S);
  /// u64 element count + one f64 per element.
  void writeDoubles(const std::vector<double> &V);

  const std::vector<uint8_t> &bytes() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }
  size_t size() const { return Buf.size(); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked little-endian reader over a borrowed byte range.
/// Every read returns false (without advancing) when the remaining
/// payload is too short — the truncation guard.
class WireReader {
public:
  WireReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}

  bool readU8(uint8_t &V);
  bool readU16(uint16_t &V);
  bool readU32(uint32_t &V);
  bool readU64(uint64_t &V);
  bool readF64(double &V);
  bool readString(std::string &S, size_t MaxBytes);
  bool readDoubles(std::vector<double> &V, size_t MaxCount);

  size_t remaining() const { return Size - Pos; }
  bool atEnd() const { return Pos == Size; }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
};

/// CRC-32 (IEEE 802.3 polynomial) over \p Size bytes; the per-frame
/// corruption check of the fabric framing layer.
uint32_t crc32(const uint8_t *Data, size_t Size);

//===----------------------------------------------------------------------===//
// Payload codecs. Encoders never fail; decoders return false on
// truncation or cap violations and may leave the output partially
// written (callers discard it on failure).
//===----------------------------------------------------------------------===//

void encodeStats(WireWriter &W, const IntegrationStats &S);
bool decodeStats(WireReader &R, IntegrationStats &S);

void encodeModeledTime(WireWriter &W, const ModeledTime &T);
bool decodeModeledTime(WireReader &R, ModeledTime &T);

void encodeSolverOptions(WireWriter &W, const SolverOptions &O);
bool decodeSolverOptions(WireReader &R, SolverOptions &O);

void encodeTrajectory(WireWriter &W, const Trajectory &T);
bool decodeTrajectory(WireReader &R, Trajectory &T, const WireLimits &Limits);

void encodeOutcome(WireWriter &W, const SimulationOutcome &O);
bool decodeOutcome(WireReader &R, SimulationOutcome &O,
                   const WireLimits &Limits);

/// Per-simulation parameter sets (rate-constant sets or initial states):
/// u64 set count, then one doubles vector per set. Ragged sets are
/// preserved (a short or empty set means "use the model defaults", the
/// BatchSpec contract).
void encodeParamSets(WireWriter &W,
                     const std::vector<std::vector<double>> &Sets);
bool decodeParamSets(WireReader &R, std::vector<std::vector<double>> &Sets,
                     const WireLimits &Limits);

} // namespace psg

#endif // PSG_IO_WIREIO_H
