//===- io/ResultsIo.h - Result serialization --------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV serialization of analysis products: trajectories, PSA maps, Sobol
/// tables, and engine reports. All benches write their raw data through
/// these helpers so EXPERIMENTS.md plots can be regenerated.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_IO_RESULTSIO_H
#define PSG_IO_RESULTSIO_H

#include "analysis/Psa.h"
#include "analysis/Sobol.h"
#include "ode/Trajectory.h"
#include "rbm/ReactionNetwork.h"
#include "support/Csv.h"
#include "support/Metrics.h"

namespace psg {

/// Renders a trajectory as CSV (time plus one column per species; species
/// names come from \p Net when given).
CsvWriter trajectoryToCsv(const Trajectory &Traj,
                          const ReactionNetwork *Net = nullptr);

/// Renders a PSA-2D map as CSV rows (axis0, axis1, metric).
CsvWriter psa2dToCsv(const Psa2dResult &Result, const std::string &Axis0,
                     const std::string &Axis1,
                     const std::string &MetricName);

/// Renders a Sobol table as CSV (factor, S1, S1conf, ST, STconf).
CsvWriter sobolToCsv(const SobolResult &Result);

/// Renders an engine report summary as a one-row CSV.
CsvWriter engineReportToCsv(const EngineReport &Report);

/// Renders a metrics snapshot as CSV rows
/// (kind, name, value, count, sum, min, max); counters and gauges leave
/// the histogram columns empty.
CsvWriter metricsSnapshotToCsv(const MetricsSnapshot &Snapshot);

/// Writes \p Snapshot to \p Path as the psg-metrics-v1 JSON document.
Status saveMetricsJson(const MetricsSnapshot &Snapshot,
                       const std::string &Path);

} // namespace psg

#endif // PSG_IO_RESULTSIO_H
