//===- io/ResultsIo.h - Result serialization --------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CSV serialization of analysis products: trajectories, PSA maps, Sobol
/// tables, and engine reports. All benches write their raw data through
/// these helpers so EXPERIMENTS.md plots can be regenerated.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_IO_RESULTSIO_H
#define PSG_IO_RESULTSIO_H

#include "analysis/Psa.h"
#include "analysis/Sobol.h"
#include "ode/Trajectory.h"
#include "rbm/ReactionNetwork.h"
#include "support/Csv.h"
#include "support/Metrics.h"

namespace psg {

/// Renders a trajectory as CSV (time plus one column per species; species
/// names come from \p Net when given).
CsvWriter trajectoryToCsv(const Trajectory &Traj,
                          const ReactionNetwork *Net = nullptr);

/// Renders a PSA-2D map as CSV rows (axis0, axis1, metric).
CsvWriter psa2dToCsv(const Psa2dResult &Result, const std::string &Axis0,
                     const std::string &Axis1,
                     const std::string &MetricName);

/// Renders a Sobol table as CSV (factor, S1, S1conf, ST, STconf).
CsvWriter sobolToCsv(const SobolResult &Result);

/// Renders an engine report summary as a one-row CSV.
CsvWriter engineReportToCsv(const EngineReport &Report);

/// Renders a stream report summary as a one-row CSV (adds the pipeline
/// columns: peak resident outcomes, overlap ratio).
CsvWriter streamReportToCsv(const StreamReport &Report);

/// Writes CSV rows straight to a file as they arrive, holding only the
/// current row in memory — the incremental counterpart of CsvWriter for
/// streaming engine runs whose products don't fit (or shouldn't sit) in
/// memory.
class StreamingCsvWriter {
public:
  StreamingCsvWriter() = default;
  StreamingCsvWriter(const StreamingCsvWriter &) = delete;
  StreamingCsvWriter &operator=(const StreamingCsvWriter &) = delete;
  ~StreamingCsvWriter();

  /// Opens \p Path and writes the header row.
  Status open(const std::string &Path,
              const std::vector<std::string> &Header);

  /// Appends one row of preformatted cells (csvEscape applied).
  void appendRow(const std::vector<std::string> &Cells);

  /// Appends one row of doubles formatted with %.10g (the CsvWriter
  /// format, so incremental and in-memory documents are byte-identical).
  void appendRow(const std::vector<double> &Cells);

  /// Flushes and closes the file; reports short writes.
  Status close();

  bool isOpen() const { return File != nullptr; }
  size_t numRows() const { return Rows; }

private:
  std::FILE *File = nullptr;
  size_t Columns = 0;
  size_t Rows = 0;
};

/// OutcomeSink that renders a streamed grid sweep as map CSV rows
/// (axis coordinates, then the reduced metric), one row per simulation
/// in stream order. Coordinates are derived from the ParameterSpace and
/// the per-axis resolutions via the global simulation index (row-major,
/// last axis fastest — the grid generator's order), so the sink never
/// needs the materialized design.
class GridMapCsvSink : public OutcomeSink {
public:
  GridMapCsvSink(StreamingCsvWriter &Writer, const ParameterSpace &Space,
                 std::vector<size_t> PointsPerAxis,
                 TrajectoryReducer Reduce);

  void consumeSubBatch(size_t FirstIndex,
                       std::vector<SimulationOutcome> &Outcomes) override;

private:
  StreamingCsvWriter &Writer;
  std::vector<std::vector<double>> AxisValues; ///< Per-axis grid values.
  TrajectoryReducer Reduce;
};

/// Renders a metrics snapshot as CSV rows
/// (kind, name, value, count, sum, min, max); counters and gauges leave
/// the histogram columns empty.
CsvWriter metricsSnapshotToCsv(const MetricsSnapshot &Snapshot);

/// Writes \p Snapshot to \p Path as the psg-metrics-v1 JSON document.
Status saveMetricsJson(const MetricsSnapshot &Snapshot,
                       const std::string &Path);

} // namespace psg

#endif // PSG_IO_RESULTSIO_H
