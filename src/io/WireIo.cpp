//===- io/WireIo.cpp - Binary wire serialization --------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "io/WireIo.h"

#include <cstring>

namespace psg {

//===----------------------------------------------------------------------===//
// WireWriter
//===----------------------------------------------------------------------===//

void WireWriter::writeU8(uint8_t V) { Buf.push_back(V); }

void WireWriter::writeU16(uint16_t V) {
  Buf.push_back(static_cast<uint8_t>(V));
  Buf.push_back(static_cast<uint8_t>(V >> 8));
}

void WireWriter::writeU32(uint32_t V) {
  for (int Shift = 0; Shift < 32; Shift += 8)
    Buf.push_back(static_cast<uint8_t>(V >> Shift));
}

void WireWriter::writeU64(uint64_t V) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Buf.push_back(static_cast<uint8_t>(V >> Shift));
}

void WireWriter::writeF64(double V) {
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double is not 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  writeU64(Bits);
}

void WireWriter::writeString(const std::string &S) {
  writeU32(static_cast<uint32_t>(S.size()));
  Buf.insert(Buf.end(), S.begin(), S.end());
}

void WireWriter::writeDoubles(const std::vector<double> &V) {
  writeU64(V.size());
  for (double D : V)
    writeF64(D);
}

//===----------------------------------------------------------------------===//
// WireReader
//===----------------------------------------------------------------------===//

bool WireReader::readU8(uint8_t &V) {
  if (remaining() < 1)
    return false;
  V = Data[Pos++];
  return true;
}

bool WireReader::readU16(uint16_t &V) {
  if (remaining() < 2)
    return false;
  V = static_cast<uint16_t>(Data[Pos] | (Data[Pos + 1] << 8));
  Pos += 2;
  return true;
}

bool WireReader::readU32(uint32_t &V) {
  if (remaining() < 4)
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(Data[Pos + I]) << (8 * I);
  Pos += 4;
  return true;
}

bool WireReader::readU64(uint64_t &V) {
  if (remaining() < 8)
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(Data[Pos + I]) << (8 * I);
  Pos += 8;
  return true;
}

bool WireReader::readF64(double &V) {
  uint64_t Bits;
  if (!readU64(Bits))
    return false;
  std::memcpy(&V, &Bits, sizeof(V));
  return true;
}

bool WireReader::readString(std::string &S, size_t MaxBytes) {
  uint32_t Len;
  if (!readU32(Len))
    return false;
  if (Len > MaxBytes || remaining() < Len)
    return false;
  S.assign(reinterpret_cast<const char *>(Data + Pos), Len);
  Pos += Len;
  return true;
}

bool WireReader::readDoubles(std::vector<double> &V, size_t MaxCount) {
  uint64_t Count;
  if (!readU64(Count))
    return false;
  if (Count > MaxCount || remaining() < Count * 8)
    return false;
  V.resize(static_cast<size_t>(Count));
  for (size_t I = 0; I < Count; ++I)
    readF64(V[I]); // Cannot fail: remaining() was checked above.
  return true;
}

//===----------------------------------------------------------------------===//
// CRC-32
//===----------------------------------------------------------------------===//

uint32_t crc32(const uint8_t *Data, size_t Size) {
  // Reflected IEEE 802.3 polynomial, bitwise formulation. Frames are
  // small control messages or amortized over large payloads, so the
  // table-free variant is plenty fast and keeps the code dependency-free.
  uint32_t Crc = 0xffffffffu;
  for (size_t I = 0; I < Size; ++I) {
    Crc ^= Data[I];
    for (int Bit = 0; Bit < 8; ++Bit)
      Crc = (Crc >> 1) ^ (0xedb88320u & (0u - (Crc & 1u)));
  }
  return Crc ^ 0xffffffffu;
}

//===----------------------------------------------------------------------===//
// Payload codecs
//===----------------------------------------------------------------------===//

void encodeStats(WireWriter &W, const IntegrationStats &S) {
  W.writeU64(S.Steps);
  W.writeU64(S.AcceptedSteps);
  W.writeU64(S.RejectedSteps);
  W.writeU64(S.RhsEvaluations);
  W.writeU64(S.JacobianEvaluations);
  W.writeU64(S.LuFactorizations);
  W.writeU64(S.ComplexLuFactorizations);
  W.writeU64(S.LuSolves);
  W.writeU64(S.NewtonIterations);
  W.writeU64(S.SolverSwitches);
}

bool decodeStats(WireReader &R, IntegrationStats &S) {
  return R.readU64(S.Steps) && R.readU64(S.AcceptedSteps) &&
         R.readU64(S.RejectedSteps) && R.readU64(S.RhsEvaluations) &&
         R.readU64(S.JacobianEvaluations) && R.readU64(S.LuFactorizations) &&
         R.readU64(S.ComplexLuFactorizations) && R.readU64(S.LuSolves) &&
         R.readU64(S.NewtonIterations) && R.readU64(S.SolverSwitches);
}

void encodeModeledTime(WireWriter &W, const ModeledTime &T) {
  W.writeF64(T.ComputeSeconds);
  W.writeF64(T.MemorySeconds);
  W.writeF64(T.LaunchSeconds);
  W.writeF64(T.HostSeconds);
}

bool decodeModeledTime(WireReader &R, ModeledTime &T) {
  return R.readF64(T.ComputeSeconds) && R.readF64(T.MemorySeconds) &&
         R.readF64(T.LaunchSeconds) && R.readF64(T.HostSeconds);
}

void encodeSolverOptions(WireWriter &W, const SolverOptions &O) {
  W.writeF64(O.AbsTol);
  W.writeF64(O.RelTol);
  W.writeF64(O.InitialStep);
  W.writeF64(O.MaxStep);
  W.writeU64(O.MaxSteps);
  W.writeF64(O.Safety);
  W.writeF64(O.MinScale);
  W.writeF64(O.MaxScale);
  W.writeU32(O.MaxNewtonIters);
  W.writeU8(O.EnableStiffnessDetection ? 1 : 0);
  W.writeU8(O.AdaptiveJacobianReuse ? 1 : 0);
}

bool decodeSolverOptions(WireReader &R, SolverOptions &O) {
  uint8_t Stiff = 0, Adaptive = 0;
  if (!(R.readF64(O.AbsTol) && R.readF64(O.RelTol) &&
        R.readF64(O.InitialStep) && R.readF64(O.MaxStep) &&
        R.readU64(O.MaxSteps) && R.readF64(O.Safety) &&
        R.readF64(O.MinScale) && R.readF64(O.MaxScale) &&
        R.readU32(O.MaxNewtonIters) && R.readU8(Stiff) && R.readU8(Adaptive)))
    return false;
  O.EnableStiffnessDetection = Stiff != 0;
  O.AdaptiveJacobianReuse = Adaptive != 0;
  return true;
}

void encodeTrajectory(WireWriter &W, const Trajectory &T) {
  const size_t Dim = T.dimension();
  const size_t Samples = T.numSamples();
  W.writeU64(Dim);
  W.writeU64(Samples);
  for (size_t S = 0; S < Samples; ++S)
    W.writeF64(T.time(S));
  for (size_t S = 0; S < Samples; ++S) {
    const double *Row = T.state(S);
    for (size_t V = 0; V < Dim; ++V)
      W.writeF64(Row[V]);
  }
}

bool decodeTrajectory(WireReader &R, Trajectory &T, const WireLimits &Limits) {
  uint64_t Dim, Samples;
  if (!R.readU64(Dim) || !R.readU64(Samples))
    return false;
  if (Dim > Limits.MaxVectorDoubles || Samples > Limits.MaxVectorDoubles)
    return false;
  // Total payload must fit in what remains (8 bytes per double); this
  // bounds the allocation below by the actual frame size.
  const uint64_t Doubles = Samples + Samples * Dim;
  if (Dim != 0 && Doubles / Dim < Samples) // Overflow guard.
    return false;
  if (R.remaining() < Doubles * 8)
    return false;
  std::vector<double> Times(static_cast<size_t>(Samples));
  for (double &V : Times)
    R.readF64(V);
  T = Trajectory(static_cast<size_t>(Dim));
  std::vector<double> Row(static_cast<size_t>(Dim));
  for (size_t S = 0; S < Samples; ++S) {
    for (double &V : Row)
      R.readF64(V);
    T.addSample(Times[S], Row.data());
  }
  return true;
}

void encodeOutcome(WireWriter &W, const SimulationOutcome &O) {
  W.writeU8(static_cast<uint8_t>(O.Result.Status));
  encodeStats(W, O.Result.Stats);
  W.writeF64(O.Result.FinalTime);
  W.writeF64(O.Result.LastStepSize);
  W.writeString(O.Result.Detail);
  W.writeString(O.SolverUsed);
  encodeTrajectory(W, O.Dynamics);
}

bool decodeOutcome(WireReader &R, SimulationOutcome &O,
                   const WireLimits &Limits) {
  uint8_t Status;
  if (!R.readU8(Status))
    return false;
  if (Status > static_cast<uint8_t>(IntegrationStatus::Aborted))
    return false;
  O.Result.Status = static_cast<IntegrationStatus>(Status);
  return decodeStats(R, O.Result.Stats) && R.readF64(O.Result.FinalTime) &&
         R.readF64(O.Result.LastStepSize) &&
         R.readString(O.Result.Detail, Limits.MaxStringBytes) &&
         R.readString(O.SolverUsed, Limits.MaxStringBytes) &&
         decodeTrajectory(R, O.Dynamics, Limits);
}

void encodeParamSets(WireWriter &W,
                     const std::vector<std::vector<double>> &Sets) {
  W.writeU64(Sets.size());
  for (const std::vector<double> &S : Sets)
    W.writeDoubles(S);
}

bool decodeParamSets(WireReader &R, std::vector<std::vector<double>> &Sets,
                     const WireLimits &Limits) {
  uint64_t Count;
  if (!R.readU64(Count))
    return false;
  if (Count > Limits.MaxBatchSimulations)
    return false;
  Sets.resize(static_cast<size_t>(Count));
  for (std::vector<double> &S : Sets)
    if (!R.readDoubles(S, Limits.MaxVectorDoubles))
      return false;
  return true;
}

} // namespace psg
