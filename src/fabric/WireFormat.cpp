//===- fabric/WireFormat.cpp - Versioned fabric message schema ------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "fabric/WireFormat.h"

#include "support/Logging.h"
#include "support/StringUtils.h"

#include <cstdlib>

namespace psg {

const char *messageTypeName(MessageType Type) {
  switch (Type) {
  case MessageType::Hello:
    return "Hello";
  case MessageType::ShardGrant:
    return "ShardGrant";
  case MessageType::ShardAck:
    return "ShardAck";
  case MessageType::OutcomeBatch:
    return "OutcomeBatch";
  case MessageType::Heartbeat:
    return "Heartbeat";
  case MessageType::NodeGoodbye:
    return "NodeGoodbye";
  }
  return "Unknown";
}

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

std::vector<uint8_t> encodeFrame(MessageType Type,
                                 const std::vector<uint8_t> &Payload) {
  // The length field is a u32 and receivers cap it at
  // MaxFramePayloadBytes; silently truncating here would emit a frame
  // the peer rejects forever (the shard never resolves), so fail loudly
  // at the producer instead.
  if (Payload.size() > MaxFramePayloadBytes) {
    logMessage(LogLevel::Error,
               "fabric: %s payload of %zu bytes exceeds the %zu-byte frame "
               "cap; shrink the grant (GrantSize / OutputSamples)",
               messageTypeName(Type), Payload.size(), MaxFramePayloadBytes);
    std::abort();
  }
  WireWriter W;
  W.writeU32(FabricMagic);
  W.writeU16(FabricVersion);
  W.writeU8(static_cast<uint8_t>(Type));
  W.writeU8(0); // Reserved.
  W.writeU32(static_cast<uint32_t>(Payload.size()));
  W.writeU32(crc32(Payload.data(), Payload.size()));
  std::vector<uint8_t> Frame = W.take();
  Frame.insert(Frame.end(), Payload.begin(), Payload.end());
  return Frame;
}

ErrorOr<FrameView> parseFrame(const std::vector<uint8_t> &Frame,
                              size_t MaxPayloadBytes) {
  WireReader R(Frame.data(), Frame.size());
  uint32_t Magic, Length, Crc;
  uint16_t Version;
  uint8_t Type, Reserved;
  if (!R.readU32(Magic) || !R.readU16(Version) || !R.readU8(Type) ||
      !R.readU8(Reserved) || !R.readU32(Length) || !R.readU32(Crc))
    return Status::failure(formatString(
        "fabric: truncated frame header (%zu bytes)", Frame.size()));
  if (Magic != FabricMagic)
    return Status::failure(
        formatString("fabric: bad frame magic 0x%08x", Magic));
  if (Version != FabricVersion)
    return Status::failure(formatString(
        "fabric: unsupported protocol version %u (want %u)",
        unsigned(Version), unsigned(FabricVersion)));
  if (Type < static_cast<uint8_t>(MessageType::Hello) ||
      Type > static_cast<uint8_t>(MessageType::NodeGoodbye))
    return Status::failure(
        formatString("fabric: unknown message type %u", unsigned(Type)));
  if (Length > MaxPayloadBytes)
    return Status::failure(formatString(
        "fabric: payload length %u exceeds cap %zu", Length, MaxPayloadBytes));
  if (Frame.size() != FrameHeaderBytes + Length)
    return Status::failure(formatString(
        "fabric: frame size %zu does not match header (%zu expected)",
        Frame.size(), FrameHeaderBytes + size_t(Length)));
  const uint8_t *Payload = Frame.data() + FrameHeaderBytes;
  if (crc32(Payload, Length) != Crc)
    return Status::failure(
        formatString("fabric: payload CRC mismatch on %s frame",
                     messageTypeName(static_cast<MessageType>(Type))));
  FrameView V;
  V.Type = static_cast<MessageType>(Type);
  V.Payload = Payload;
  V.Size = Length;
  return V;
}

size_t framedSize(const uint8_t *Data, size_t Size) {
  if (Size < FrameHeaderBytes)
    return 0;
  WireReader R(Data, Size);
  uint32_t Magic, Length;
  uint16_t Version;
  uint8_t Type, Reserved;
  R.readU32(Magic);
  R.readU16(Version);
  R.readU8(Type);
  R.readU8(Reserved);
  R.readU32(Length);
  if (Magic != FabricMagic)
    return 0;
  // A declared payload past the protocol cap is indistinguishable from
  // garbage: report "unframeable" rather than ask the caller to buffer
  // up to 4 GiB before parseFrame gets a chance to reject it.
  if (Length > MaxFramePayloadBytes)
    return 0;
  return FrameHeaderBytes + Length;
}

//===----------------------------------------------------------------------===//
// Encoders
//===----------------------------------------------------------------------===//

std::vector<uint8_t> encodeHello(const HelloMsg &M) {
  WireWriter W;
  W.writeU32(M.Node);
  W.writeU64(M.ModelFingerprint);
  W.writeU32(M.Devices);
  W.writeU16(M.Protocol);
  return encodeFrame(MessageType::Hello, W.bytes());
}

std::vector<uint8_t> encodeShardGrant(const ShardGrantMsg &M) {
  WireWriter W;
  W.writeU64(M.ShardId);
  W.writeU64(M.Epoch);
  W.writeU64(M.First);
  W.writeU32(M.Attempt);
  W.writeU64(M.ChunkSize);
  W.writeF64(M.StartTime);
  W.writeF64(M.EndTime);
  W.writeU64(M.OutputSamples);
  encodeSolverOptions(W, M.Solver);
  W.writeU64(M.ModelFingerprint);
  encodeParamSets(W, M.RateConstantSets);
  encodeParamSets(W, M.InitialStates);
  return encodeFrame(MessageType::ShardGrant, W.bytes());
}

std::vector<uint8_t> encodeShardAck(const ShardAckMsg &M) {
  WireWriter W;
  W.writeU64(M.ShardId);
  W.writeU64(M.Epoch);
  W.writeU32(M.Node);
  return encodeFrame(MessageType::ShardAck, W.bytes());
}

std::vector<uint8_t> encodeOutcomeBatch(const OutcomeBatchMsg &M) {
  WireWriter W;
  W.writeU64(M.ShardId);
  W.writeU64(M.Epoch);
  W.writeU64(M.First);
  W.writeU32(M.Node);
  W.writeU64(M.Failures);
  encodeStats(W, M.Stats);
  encodeModeledTime(W, M.IntegrationTime);
  encodeModeledTime(W, M.SimulationTime);
  W.writeF64(M.HostWallSeconds);
  W.writeU64(M.Outcomes.size());
  for (const SimulationOutcome &O : M.Outcomes)
    encodeOutcome(W, O);
  return encodeFrame(MessageType::OutcomeBatch, W.bytes());
}

std::vector<uint8_t> encodeHeartbeat(const HeartbeatMsg &M) {
  WireWriter W;
  W.writeU32(M.Node);
  W.writeU64(M.Epoch);
  W.writeU32(M.QueuedShards);
  return encodeFrame(MessageType::Heartbeat, W.bytes());
}

std::vector<uint8_t> encodeNodeGoodbye(const NodeGoodbyeMsg &M) {
  WireWriter W;
  W.writeU32(M.Node);
  W.writeString(M.Reason);
  return encodeFrame(MessageType::NodeGoodbye, W.bytes());
}

//===----------------------------------------------------------------------===//
// Decoders
//===----------------------------------------------------------------------===//

static Status truncated(MessageType Type) {
  return Status::failure(
      formatString("fabric: truncated %s payload", messageTypeName(Type)));
}

static Status wrongType(MessageType Want, MessageType Got) {
  return Status::failure(formatString("fabric: expected %s frame, got %s",
                                      messageTypeName(Want),
                                      messageTypeName(Got)));
}

ErrorOr<HelloMsg> decodeHello(const FrameView &F) {
  if (F.Type != MessageType::Hello)
    return wrongType(MessageType::Hello, F.Type);
  WireReader R(F.Payload, F.Size);
  HelloMsg M;
  if (!(R.readU32(M.Node) && R.readU64(M.ModelFingerprint) &&
        R.readU32(M.Devices) && R.readU16(M.Protocol)))
    return truncated(F.Type);
  return M;
}

ErrorOr<ShardGrantMsg> decodeShardGrant(const FrameView &F,
                                        const WireLimits &Limits) {
  if (F.Type != MessageType::ShardGrant)
    return wrongType(MessageType::ShardGrant, F.Type);
  WireReader R(F.Payload, F.Size);
  ShardGrantMsg M;
  if (!(R.readU64(M.ShardId) && R.readU64(M.Epoch) && R.readU64(M.First) &&
        R.readU32(M.Attempt) && R.readU64(M.ChunkSize) &&
        R.readF64(M.StartTime) && R.readF64(M.EndTime) &&
        R.readU64(M.OutputSamples) && decodeSolverOptions(R, M.Solver) &&
        R.readU64(M.ModelFingerprint) &&
        decodeParamSets(R, M.RateConstantSets, Limits) &&
        decodeParamSets(R, M.InitialStates, Limits)))
    return truncated(F.Type);
  return M;
}

ErrorOr<ShardAckMsg> decodeShardAck(const FrameView &F) {
  if (F.Type != MessageType::ShardAck)
    return wrongType(MessageType::ShardAck, F.Type);
  WireReader R(F.Payload, F.Size);
  ShardAckMsg M;
  if (!(R.readU64(M.ShardId) && R.readU64(M.Epoch) && R.readU32(M.Node)))
    return truncated(F.Type);
  return M;
}

ErrorOr<OutcomeBatchMsg> decodeOutcomeBatch(const FrameView &F,
                                            const WireLimits &Limits) {
  if (F.Type != MessageType::OutcomeBatch)
    return wrongType(MessageType::OutcomeBatch, F.Type);
  WireReader R(F.Payload, F.Size);
  OutcomeBatchMsg M;
  uint64_t Count = 0;
  if (!(R.readU64(M.ShardId) && R.readU64(M.Epoch) && R.readU64(M.First) &&
        R.readU32(M.Node) && R.readU64(M.Failures) &&
        decodeStats(R, M.Stats) && decodeModeledTime(R, M.IntegrationTime) &&
        decodeModeledTime(R, M.SimulationTime) &&
        R.readF64(M.HostWallSeconds) && R.readU64(Count)))
    return truncated(F.Type);
  if (Count > Limits.MaxBatchSimulations)
    return Status::failure(formatString(
        "fabric: OutcomeBatch count %llu exceeds cap %zu",
        static_cast<unsigned long long>(Count), Limits.MaxBatchSimulations));
  M.Outcomes.resize(static_cast<size_t>(Count));
  for (SimulationOutcome &O : M.Outcomes)
    if (!decodeOutcome(R, O, Limits))
      return truncated(F.Type);
  return M;
}

ErrorOr<HeartbeatMsg> decodeHeartbeat(const FrameView &F) {
  if (F.Type != MessageType::Heartbeat)
    return wrongType(MessageType::Heartbeat, F.Type);
  WireReader R(F.Payload, F.Size);
  HeartbeatMsg M;
  if (!(R.readU32(M.Node) && R.readU64(M.Epoch) && R.readU32(M.QueuedShards)))
    return truncated(F.Type);
  return M;
}

ErrorOr<NodeGoodbyeMsg> decodeNodeGoodbye(const FrameView &F) {
  if (F.Type != MessageType::NodeGoodbye)
    return wrongType(MessageType::NodeGoodbye, F.Type);
  WireReader R(F.Payload, F.Size);
  NodeGoodbyeMsg M;
  WireLimits Limits;
  if (!(R.readU32(M.Node) && R.readString(M.Reason, Limits.MaxStringBytes)))
    return truncated(F.Type);
  return M;
}

//===----------------------------------------------------------------------===//
// Inspection
//===----------------------------------------------------------------------===//

FrameInspection inspectFrame(const std::vector<uint8_t> &Frame) {
  FrameInspection Info;
  ErrorOr<FrameView> Parsed = parseFrame(Frame);
  if (!Parsed.ok())
    return Info;
  const FrameView &F = Parsed.value();
  WireReader R(F.Payload, F.Size);
  Info.Type = F.Type;
  switch (F.Type) {
  case MessageType::ShardGrant: {
    uint64_t First;
    Info.Valid = R.readU64(Info.ShardId) && R.readU64(Info.Epoch) &&
                 R.readU64(First) && R.readU32(Info.Attempt);
    break;
  }
  case MessageType::ShardAck:
  case MessageType::OutcomeBatch:
    Info.Valid = R.readU64(Info.ShardId) && R.readU64(Info.Epoch);
    break;
  case MessageType::Heartbeat:
    Info.Valid = R.readU32(Info.Node) && R.readU64(Info.Epoch);
    break;
  case MessageType::Hello:
  case MessageType::NodeGoodbye:
    Info.Valid = R.readU32(Info.Node);
    break;
  }
  return Info;
}

} // namespace psg
