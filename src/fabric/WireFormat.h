//===- fabric/WireFormat.h - Versioned fabric message schema ----*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The versioned message schema of the cross-node shard protocol and
/// its framing. Every frame is:
///
///   magic 'PSGF' (u32) | version (u16) | type (u8) | reserved (u8) |
///   payload length (u32) | payload CRC-32 (u32) | payload bytes
///
/// Payloads are encoded with the io/WireIo codecs (little-endian,
/// doubles as bit patterns). parseFrame rejects bad magic, unknown
/// versions, truncated frames, and CRC mismatches with a descriptive
/// Status — a corrupted or short frame can never be half-decoded.
///
/// Shard-carrying payloads open with a common prefix
/// (ShardId u64, Epoch u64) so fault-injection scripts and the dedup
/// ledger can key on shard identity without a full decode
/// (see inspectFrame).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_FABRIC_WIREFORMAT_H
#define PSG_FABRIC_WIREFORMAT_H

#include "fabric/Fabric.h"
#include "io/WireIo.h"
#include "ode/SolverOptions.h"
#include "sim/Simulator.h"
#include "support/Error.h"
#include "vgpu/CostModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace psg {

constexpr uint32_t FabricMagic = 0x46475350u; // "PSGF" little-endian.
constexpr uint16_t FabricVersion = 1;

enum class MessageType : uint8_t {
  Hello = 1,        ///< Worker announces itself / handshake reply.
  ShardGrant = 2,   ///< Coordinator hands a shard to a worker.
  ShardAck = 3,     ///< Worker confirms it adopted a grant.
  OutcomeBatch = 4, ///< Worker returns a completed shard's outcomes.
  Heartbeat = 5,    ///< Worker liveness signal.
  NodeGoodbye = 6,  ///< Orderly departure (either direction).
};

const char *messageTypeName(MessageType Type);

//===----------------------------------------------------------------------===//
// Message bodies
//===----------------------------------------------------------------------===//

/// Worker -> coordinator on attach; coordinator -> worker as the
/// handshake reply carrying the assigned node id.
struct HelloMsg {
  NodeId Node = 0;             ///< 0 from a worker that has no id yet.
  uint64_t ModelFingerprint = 0;
  uint32_t Devices = 1;        ///< Worker's local device count.
  uint16_t Protocol = FabricVersion;
};

/// Coordinator -> worker: one shard of the sweep with everything needed
/// to run it remotely. ShardId doubles as the shard's first global
/// simulation index (shards are contiguous cuts of the stream).
struct ShardGrantMsg {
  uint64_t ShardId = 0;
  uint64_t Epoch = 0;   ///< Owner-node incarnation this grant targets.
  uint64_t First = 0;   ///< First global simulation index (== ShardId).
  uint32_t Attempt = 0; ///< 0-based re-queue attempt.
  uint64_t ChunkSize = 0; ///< Sub-batch cut width the worker must use.
  double StartTime = 0.0;
  double EndTime = 0.0;
  uint64_t OutputSamples = 0;
  SolverOptions Solver;
  uint64_t ModelFingerprint = 0;
  std::vector<std::vector<double>> RateConstantSets;
  std::vector<std::vector<double>> InitialStates;
};

/// Worker -> coordinator: grant adopted (liveness + flow control aid).
struct ShardAckMsg {
  uint64_t ShardId = 0;
  uint64_t Epoch = 0;
  NodeId Node = 0;
};

/// Worker -> coordinator: a completed shard's serialized outcomes plus
/// the modeled-time telemetry the virtual-finish scheduler feeds on.
struct OutcomeBatchMsg {
  uint64_t ShardId = 0;
  uint64_t Epoch = 0;
  uint64_t First = 0;
  NodeId Node = 0;
  uint64_t Failures = 0;
  IntegrationStats Stats;
  ModeledTime IntegrationTime;
  ModeledTime SimulationTime;
  double HostWallSeconds = 0.0;
  std::vector<SimulationOutcome> Outcomes;
};

/// Worker -> coordinator liveness signal.
struct HeartbeatMsg {
  NodeId Node = 0;
  uint64_t Epoch = 0;
  uint32_t QueuedShards = 0; ///< Grants accepted but not yet returned.
};

/// Orderly shutdown notice.
struct NodeGoodbyeMsg {
  NodeId Node = 0;
  std::string Reason;
};

//===----------------------------------------------------------------------===//
// Framing
//===----------------------------------------------------------------------===//

constexpr size_t FrameHeaderBytes = 16;

/// Hard cap on a frame's payload. Encoders refuse to produce a larger
/// frame and the receive paths refuse to buffer one, so a corrupt or
/// hostile length field can never drive multi-GiB allocations.
constexpr size_t MaxFramePayloadBytes = size_t(1) << 30;

/// A parsed frame: type plus a view into the payload bytes (borrowed
/// from the buffer handed to parseFrame).
struct FrameView {
  MessageType Type = MessageType::Hello;
  const uint8_t *Payload = nullptr;
  size_t Size = 0;
};

/// Wraps \p Payload in a framed message of \p Type.
std::vector<uint8_t> encodeFrame(MessageType Type,
                                 const std::vector<uint8_t> &Payload);

/// Validates magic/version/length/CRC and returns a payload view, or a
/// failure Status naming what was wrong (truncation, corruption, ...).
ErrorOr<FrameView> parseFrame(const std::vector<uint8_t> &Frame,
                              size_t MaxPayloadBytes = MaxFramePayloadBytes);

/// If \p Frame holds at least a complete header, returns the total
/// frame size (header + payload length field) without validating the
/// payload — the TCP receive path uses this to find frame boundaries.
/// Returns 0 when the header is incomplete, the magic is wrong, or the
/// declared payload exceeds MaxFramePayloadBytes (the stream can never
/// be trusted past such a header, so callers treat 0-with-a-full-header
/// as a poisoned peer).
size_t framedSize(const uint8_t *Data, size_t Size);

//===----------------------------------------------------------------------===//
// Per-type encode/decode (encode returns a complete frame)
//===----------------------------------------------------------------------===//

std::vector<uint8_t> encodeHello(const HelloMsg &M);
std::vector<uint8_t> encodeShardGrant(const ShardGrantMsg &M);
std::vector<uint8_t> encodeShardAck(const ShardAckMsg &M);
std::vector<uint8_t> encodeOutcomeBatch(const OutcomeBatchMsg &M);
std::vector<uint8_t> encodeHeartbeat(const HeartbeatMsg &M);
std::vector<uint8_t> encodeNodeGoodbye(const NodeGoodbyeMsg &M);

ErrorOr<HelloMsg> decodeHello(const FrameView &F);
ErrorOr<ShardGrantMsg> decodeShardGrant(const FrameView &F,
                                        const WireLimits &Limits = {});
ErrorOr<ShardAckMsg> decodeShardAck(const FrameView &F);
ErrorOr<OutcomeBatchMsg> decodeOutcomeBatch(const FrameView &F,
                                            const WireLimits &Limits = {});
ErrorOr<HeartbeatMsg> decodeHeartbeat(const FrameView &F);
ErrorOr<NodeGoodbyeMsg> decodeNodeGoodbye(const FrameView &F);

//===----------------------------------------------------------------------===//
// Cheap inspection for fault scripts
//===----------------------------------------------------------------------===//

/// Identity of a frame without a full payload decode: enough for a
/// deterministic fault script to key on message content (shard id,
/// attempt, type) rather than on wall-clock or thread interleaving.
struct FrameInspection {
  bool Valid = false;
  MessageType Type = MessageType::Hello;
  uint64_t ShardId = 0; ///< 0 unless a shard-carrying type.
  uint64_t Epoch = 0;   ///< 0 unless a shard-carrying type or Heartbeat.
  uint32_t Attempt = 0; ///< ShardGrant only.
  NodeId Node = 0;      ///< Hello/ShardAck/Heartbeat/Goodbye sender field.
};

FrameInspection inspectFrame(const std::vector<uint8_t> &Frame);

} // namespace psg

#endif // PSG_FABRIC_WIREFORMAT_H
