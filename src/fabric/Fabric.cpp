//===- fabric/Fabric.cpp - Message fabric endpoint abstraction ------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "fabric/Fabric.h"

namespace psg {

FabricEndpoint::~FabricEndpoint() = default;

} // namespace psg
