//===- fabric/FabricOptions.h - Cross-node run options ----------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Options for distributing a streaming sweep across worker nodes over
/// a message fabric. Kept free of core/sim includes so core's
/// EngineOptions can embed it without a dependency cycle (the same
/// contract SchedOptions follows): psg_core links psg_fabric, never the
/// reverse.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_FABRIC_FABRICOPTIONS_H
#define PSG_FABRIC_FABRICOPTIONS_H

#include <cstdint>
#include <vector>

namespace psg {

class FabricEndpoint;

/// Cross-node distribution controls. Engine code treats a default
/// FabricOptions as "single node": the fabric path activates only when
/// an endpoint and at least one worker are configured.
struct FabricOptions {
  /// The coordinator's attachment to the fabric (non-owning; the
  /// caller keeps the endpoint alive for the whole run).
  FabricEndpoint *Endpoint = nullptr;

  /// Worker node ids expected to join (coordinator is node 0).
  std::vector<uint32_t> Workers;

  /// Simulations per shard grant. 0 derives a grant of
  /// SubBatchSize x (worker device count), which preserves the
  /// single-process sub-batch boundaries and with them bit-exactness.
  size_t GrantSize = 0;

  /// Grants a node may hold unreturned before the coordinator stops
  /// feeding it (per-node pipelining depth, mirroring SchedOptions'
  /// QueueDepth).
  unsigned GrantQueueDepth = 2;

  /// Re-queue budget per shard: a shard abandoned by dead nodes this
  /// many times is delivered as Aborted outcomes instead of retrying
  /// forever (the ShardedExecutor MaxShardAttempts contract).
  unsigned MaxShardAttempts = 3;

  /// Seconds between worker heartbeats (also the coordinator's poll
  /// granularity).
  double HeartbeatIntervalSeconds = 0.05;

  /// Silence longer than this declares a node dead: its epoch is
  /// bumped and its in-flight shards re-queue. A later message from
  /// the node rejoins it at the new epoch.
  double HeartbeatTimeoutSeconds = 2.0;

  /// How long the coordinator waits for workers' Hello at start.
  double HelloTimeoutSeconds = 10.0;

  /// With every node dead and work outstanding, how long to wait for a
  /// rejoin before aborting the remaining shards.
  double StallTimeoutSeconds = 10.0;

  /// Deliver outcome batches to the sink in ascending simulation-index
  /// order (buffering out-of-order returns), like SchedOptions.
  bool OrderedDelivery = true;

  /// Accept a result for an in-flight shard from a node declared dead
  /// (stale epoch) when the shard has not been re-delivered yet. Saves
  /// the re-run after a false death; the dedup ledger still guarantees
  /// exactly-once delivery either way.
  bool AcceptStaleResults = true;

  /// True when this run should go through the fabric.
  bool enabled() const { return Endpoint != nullptr && !Workers.empty(); }
};

} // namespace psg

#endif // PSG_FABRIC_FABRICOPTIONS_H
