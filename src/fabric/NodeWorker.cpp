//===- fabric/NodeWorker.cpp - Cross-node sweep worker --------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "fabric/NodeWorker.h"

#include "fabric/WireFormat.h"
#include "rbm/MassAction.h"
#include "sched/ShardedExecutor.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

using namespace psg;

namespace {

/// Materializes a local executor run into a pre-sized vector. The
/// executor delivers in ascending contiguous order (OrderedDelivery),
/// so writes are a straight offset copy.
class MaterializeSink final : public OutcomeSink {
public:
  explicit MaterializeSink(std::vector<SimulationOutcome> &Out) : Out(Out) {}

  void consumeSubBatch(size_t FirstIndex,
                       std::vector<SimulationOutcome> &Outcomes) override {
    assert(FirstIndex + Outcomes.size() <= Out.size() &&
           "executor delivered outside the grant");
    for (size_t I = 0; I < Outcomes.size(); ++I)
      Out[FirstIndex + I] = std::move(Outcomes[I]);
  }

private:
  std::vector<SimulationOutcome> &Out;
};

/// The grant fields that parameterize the local executor; a change
/// forces a rebuild (in practice one sweep keeps them constant, so the
/// executor — and its device worker pools — stay warm across grants).
struct ExecutorKey {
  uint64_t ChunkSize = 0;
  double StartTime = 0.0;
  double EndTime = 0.0;
  uint64_t OutputSamples = 0;
  SolverOptions Solver;

  bool operator==(const ExecutorKey &O) const {
    return ChunkSize == O.ChunkSize && StartTime == O.StartTime &&
           EndTime == O.EndTime && OutputSamples == O.OutputSamples &&
           Solver.AbsTol == O.Solver.AbsTol &&
           Solver.RelTol == O.Solver.RelTol &&
           Solver.InitialStep == O.Solver.InitialStep &&
           Solver.MaxStep == O.Solver.MaxStep &&
           Solver.MaxSteps == O.Solver.MaxSteps &&
           Solver.Safety == O.Solver.Safety &&
           Solver.MinScale == O.Solver.MinScale &&
           Solver.MaxScale == O.Solver.MaxScale &&
           Solver.MaxNewtonIters == O.Solver.MaxNewtonIters &&
           Solver.EnableStiffnessDetection ==
               O.Solver.EnableStiffnessDetection &&
           Solver.AdaptiveJacobianReuse == O.Solver.AdaptiveJacobianReuse;
  }
};

} // namespace

NodeWorker::NodeWorker(const CostModel &Model, FabricEndpoint &Endpoint,
                       SchedOptions Local, double HeartbeatIntervalSeconds,
                       std::string Runtime)
    : Model(Model), Endpoint(Endpoint), Local(std::move(Local)),
      HeartbeatIntervalSeconds(HeartbeatIntervalSeconds),
      Runtime(std::move(Runtime)) {
  assert(this->Local.enabled() && "worker needs at least one local device");
}

WorkerReport NodeWorker::serve(const ReactionNetwork &Net) {
  WorkerReport Rep;
  MetricsRegistry &M = metrics();
  Counter &GrantsC = M.counter("psg.fabric.worker.grants");
  Counter &SimsC = M.counter("psg.fabric.worker.simulations");
  Counter &HeartbeatsC = M.counter("psg.fabric.worker.heartbeats");

  const uint64_t Fingerprint = networkFingerprint(Net);
  std::shared_ptr<const CompiledModel> Compiled = compileModel(Net);
  const NodeId Self = Endpoint.id();

  std::unique_ptr<ShardedExecutor> Executor;
  ExecutorKey Key;

  auto sendHeartbeat = [&](uint32_t Queued) {
    HeartbeatMsg Hb;
    Hb.Node = Self;
    Hb.QueuedShards = Queued;
    Endpoint.send(CoordinatorNode, encodeHeartbeat(Hb));
    ++Rep.Heartbeats;
    HeartbeatsC.add();
  };

  HelloMsg Hello;
  Hello.Node = Self;
  Hello.ModelFingerprint = Fingerprint;
  Hello.Devices = static_cast<uint32_t>(Local.Devices.size());
  if (!Endpoint.send(CoordinatorNode, encodeHello(Hello))) {
    Rep.ExitReason = "hello send failed";
    return Rep;
  }

  for (;;) {
    ReceivedFrame RF;
    const PollStatus Ps = Endpoint.poll(RF, HeartbeatIntervalSeconds);
    if (Ps == PollStatus::Closed) {
      Rep.ExitReason = "transport closed";
      return Rep;
    }
    if (Ps == PollStatus::Timeout) {
      sendHeartbeat(0);
      continue;
    }
    ErrorOr<FrameView> ViewOr = parseFrame(RF.Bytes);
    if (!ViewOr.ok()) {
      logMessage(LogLevel::Warning, "fabric: worker %u dropping frame: %s",
                 Self, ViewOr.message().c_str());
      continue;
    }
    if (ViewOr->Type == MessageType::NodeGoodbye) {
      Rep.ExitReason = "coordinator goodbye";
      return Rep;
    }
    if (ViewOr->Type != MessageType::ShardGrant)
      continue; // Hello replies / stray frames carry nothing for us.

    ErrorOr<ShardGrantMsg> GrantOr = decodeShardGrant(ViewOr.value());
    if (!GrantOr.ok()) {
      logMessage(LogLevel::Warning, "fabric: worker %u bad grant: %s", Self,
                 GrantOr.message().c_str());
      continue;
    }
    ShardGrantMsg &G = *GrantOr;
    if (G.ModelFingerprint != 0 && G.ModelFingerprint != Fingerprint) {
      NodeGoodbyeMsg Bye;
      Bye.Node = Self;
      Bye.Reason = "model fingerprint mismatch";
      Endpoint.send(CoordinatorNode, encodeNodeGoodbye(Bye));
      Rep.ExitReason = "model fingerprint mismatch";
      return Rep;
    }

    ShardAckMsg Ack;
    Ack.ShardId = G.ShardId;
    Ack.Epoch = G.Epoch;
    Ack.Node = Self;
    Endpoint.send(CoordinatorNode, encodeShardAck(Ack));

    // (Re)build the warm local executor when the grant's engine
    // contract changes — in practice once per sweep.
    ExecutorKey Wanted;
    Wanted.ChunkSize = G.ChunkSize;
    Wanted.StartTime = G.StartTime;
    Wanted.EndTime = G.EndTime;
    Wanted.OutputSamples = G.OutputSamples;
    Wanted.Solver = G.Solver;
    if (!Executor || !(Key == Wanted)) {
      EngineOptions E;
      E.Runtime = Runtime;
      E.SubBatchSize = G.ChunkSize ? G.ChunkSize : 512;
      E.StartTime = G.StartTime;
      E.EndTime = G.EndTime;
      E.OutputSamples = static_cast<size_t>(G.OutputSamples);
      E.Solver = G.Solver;
      SchedOptions S = Local;
      S.ChunkSize = E.SubBatchSize;
      S.OrderedDelivery = true; // The grant must materialize in order.
      Executor = std::make_unique<ShardedExecutor>(Model, std::move(E),
                                                   std::move(S));
      Key = Wanted;
    }

    const size_t Count = G.RateConstantSets.size();
    std::vector<SimulationOutcome> Outcomes(Count);
    MaterializeSink Sink(Outcomes);
    size_t Cursor = 0;
    auto Src = [&](size_t MaxCount,
                   std::vector<Parameterization> &Out) -> size_t {
      const size_t N = std::min(MaxCount, Count - Cursor);
      for (size_t I = 0; I < N; ++I) {
        Parameterization P;
        P.RateConstants = std::move(G.RateConstantSets[Cursor + I]);
        if (Cursor + I < G.InitialStates.size())
          P.InitialState = std::move(G.InitialStates[Cursor + I]);
        Out.push_back(std::move(P));
      }
      Cursor += N;
      return N;
    };
    // The local run blocks this thread for as long as the grant takes —
    // routinely far past HeartbeatTimeoutSeconds for real ODE sweeps —
    // so liveness must keep flowing from a pump thread, or the
    // coordinator falsely declares this node dead mid-grant, re-queues
    // the shard, and (with every node computing) can abort the whole
    // sweep. The pump is the endpoint's only user while the executor
    // runs; joining it before the OutcomeBatch send restores single-
    // threaded access.
    ShardScheduleReport R;
    {
      std::mutex PumpMutex;
      std::condition_variable PumpCv;
      bool PumpDone = false;
      std::thread Pump([&] {
        std::unique_lock<std::mutex> Lock(PumpMutex);
        for (;;) {
          PumpCv.wait_for(
              Lock, std::chrono::duration<double>(HeartbeatIntervalSeconds));
          if (PumpDone)
            return;
          Lock.unlock();
          sendHeartbeat(1); // One grant adopted and in progress.
          Lock.lock();
        }
      });
      R = Executor->streamParameterizations(Net, Compiled, Src, Sink);
      {
        std::lock_guard<std::mutex> Lock(PumpMutex);
        PumpDone = true;
      }
      PumpCv.notify_all();
      Pump.join();
    }

    OutcomeBatchMsg B;
    B.ShardId = G.ShardId;
    B.Epoch = G.Epoch;
    B.First = G.First;
    B.Node = Self;
    B.Failures = R.Stream.Failures;
    B.Stats = R.Stream.TotalStats;
    B.IntegrationTime = R.Stream.IntegrationTime;
    B.SimulationTime = R.Stream.SimulationTime;
    B.HostWallSeconds = R.Stream.HostWallSeconds;
    B.Outcomes = std::move(Outcomes);
    ++Rep.Grants;
    Rep.Simulations += Count;
    Rep.ModeledBusySeconds += R.Stream.SimulationTime.total();
    GrantsC.add();
    SimsC.add(Count);
    if (!Endpoint.send(CoordinatorNode, encodeOutcomeBatch(B))) {
      Rep.ExitReason = "outcome send failed";
      return Rep;
    }
    sendHeartbeat(0); // Prompt liveness refresh after a long compute.
  }
}
