//===- fabric/LoopbackFabric.cpp - In-process fault-injectable fabric -----===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "fabric/LoopbackFabric.h"

#include <chrono>

namespace psg {

namespace {
using Clock = std::chrono::steady_clock;
} // namespace

struct LoopbackFabric::State {
  mutable std::mutex Mutex;
  std::condition_variable Cv;
  Clock::time_point Start = Clock::now();
  bool Closed = false;
  FaultScript Script;
  uint64_t NextSequence = 0;
  uint64_t Sent = 0, Dropped = 0, Duplicated = 0, Delayed = 0;
  // Per-node mailbox ordered by (due time, send sequence): delayed
  // frames overtake nothing sent before their due time, and same-due
  // frames deliver in send order — fully deterministic given a script.
  std::map<NodeId, std::map<std::pair<double, uint64_t>, ReceivedFrame>>
      Mailboxes;

  double nowLocked() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }
};

class LoopbackFabric::Endpoint final : public FabricEndpoint {
public:
  Endpoint(std::shared_ptr<State> Shared, NodeId Node)
      : Shared(std::move(Shared)), Node(Node) {}

  NodeId id() const override { return Node; }

  bool send(NodeId To, std::vector<uint8_t> Frame) override {
    std::lock_guard<std::mutex> Lock(Shared->Mutex);
    if (Shared->Closed)
      return false;
    const double Now = Shared->nowLocked();
    FaultContext Ctx;
    Ctx.From = Node;
    Ctx.To = To;
    Ctx.Frame = inspectFrame(Frame);
    Ctx.Now = Now;
    Ctx.Sequence = Shared->NextSequence++;
    FaultAction Action;
    if (Shared->Script)
      Action = Shared->Script(Ctx);
    ++Shared->Sent;
    if (Action.Drop) {
      ++Shared->Dropped;
      return true; // The transport accepted it; the wire lost it.
    }
    const double Due = Now + (Action.DelaySeconds > 0 ? Action.DelaySeconds : 0);
    if (Action.DelaySeconds > 0)
      ++Shared->Delayed;
    const unsigned Copies = Action.Duplicate ? 2 : 1;
    if (Action.Duplicate)
      ++Shared->Duplicated;
    for (unsigned I = 0; I < Copies; ++I) {
      ReceivedFrame R;
      R.From = Node;
      R.Bytes = (I + 1 == Copies) ? std::move(Frame) : Frame;
      Shared->Mailboxes[To].emplace(
          std::make_pair(Due, Shared->NextSequence++), std::move(R));
    }
    Shared->Cv.notify_all();
    return true;
  }

  PollStatus poll(ReceivedFrame &Out, double TimeoutSeconds) override {
    std::unique_lock<std::mutex> Lock(Shared->Mutex);
    const double Deadline = Shared->nowLocked() + TimeoutSeconds;
    for (;;) {
      auto &Box = Shared->Mailboxes[Node];
      const double Now = Shared->nowLocked();
      if (!Box.empty()) {
        auto First = Box.begin();
        // Mature frames are delivered even after shutdown — a closed
        // fabric drains like a FIN'd socket, so a worker still reads
        // the goodbye the coordinator sent just before closing. Only
        // frames whose delay has not matured are lost with the wire.
        if (First->first.first <= Now) {
          Out = std::move(First->second);
          Box.erase(First);
          return PollStatus::Message;
        }
        if (Shared->Closed)
          return PollStatus::Closed;
        if (First->first.first < Deadline) {
          // Sleep until the earliest delayed frame matures (or an
          // earlier frame arrives and notifies us).
          Shared->Cv.wait_for(Lock, std::chrono::duration<double>(
                                        First->first.first - Now));
          continue;
        }
      }
      if (Shared->Closed)
        return PollStatus::Closed;
      if (Now >= Deadline)
        return PollStatus::Timeout;
      Shared->Cv.wait_for(Lock,
                          std::chrono::duration<double>(Deadline - Now));
    }
  }

  double now() const override {
    std::lock_guard<std::mutex> Lock(Shared->Mutex);
    return Shared->nowLocked();
  }

private:
  std::shared_ptr<State> Shared;
  NodeId Node;
};

LoopbackFabric::LoopbackFabric() : Shared(std::make_shared<State>()) {}

LoopbackFabric::~LoopbackFabric() { shutdown(); }

std::unique_ptr<FabricEndpoint> LoopbackFabric::createEndpoint(NodeId Node) {
  return std::make_unique<Endpoint>(Shared, Node);
}

void LoopbackFabric::setFaultScript(FaultScript Script) {
  std::lock_guard<std::mutex> Lock(Shared->Mutex);
  Shared->Script = std::move(Script);
}

void LoopbackFabric::shutdown() {
  std::lock_guard<std::mutex> Lock(Shared->Mutex);
  Shared->Closed = true;
  Shared->Cv.notify_all();
}

double LoopbackFabric::now() const {
  std::lock_guard<std::mutex> Lock(Shared->Mutex);
  return Shared->nowLocked();
}

uint64_t LoopbackFabric::framesSent() const {
  std::lock_guard<std::mutex> Lock(Shared->Mutex);
  return Shared->Sent;
}

uint64_t LoopbackFabric::framesDropped() const {
  std::lock_guard<std::mutex> Lock(Shared->Mutex);
  return Shared->Dropped;
}

uint64_t LoopbackFabric::framesDuplicated() const {
  std::lock_guard<std::mutex> Lock(Shared->Mutex);
  return Shared->Duplicated;
}

uint64_t LoopbackFabric::framesDelayed() const {
  std::lock_guard<std::mutex> Lock(Shared->Mutex);
  return Shared->Delayed;
}

} // namespace psg
