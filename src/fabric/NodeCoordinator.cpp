//===- fabric/NodeCoordinator.cpp - Cross-node sweep coordinator ----------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
//
// Protocol invariants (tested by tests/fabric_test.cpp):
//
//  * Shard grants are cut by the single coordinator in emission order
//    at multiples of the reference chunk, so the global sub-batch
//    boundaries — and with them bit-exactness against a single-process
//    run — are independent of node count, grant interleaving, and
//    failures.
//  * Every simulation reaches the sink exactly once: the DeliveryLedger
//    deduplicates repeated OutcomeBatches by shard identity, a late
//    batch from a node declared dead either rescues its shard (if it is
//    still undelivered) or is suppressed, and a shard abandoned
//    MaxShardAttempts times is delivered as Aborted outcomes.
//  * Placement is modeled-time-driven: grants go to the alive node with
//    the earliest modeled virtual finish (Assigned accumulator fed by
//    reported modeled seconds), never to whichever node's messages
//    happen to arrive first.
//
//===----------------------------------------------------------------------===//

#include "fabric/NodeCoordinator.h"

#include "fabric/WireFormat.h"
#include "rbm/MassAction.h"
#include "sched/DeliveryLedger.h"
#include "support/Logging.h"
#include "support/Metrics.h"
#include "support/StringUtils.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>

using namespace psg;

namespace {

void accumulateModeled(ModeledTime &Into, const ModeledTime &From) {
  Into.ComputeSeconds += From.ComputeSeconds;
  Into.MemorySeconds += From.MemorySeconds;
  Into.LaunchSeconds += From.LaunchSeconds;
  Into.HostSeconds += From.HostSeconds;
}

/// One shard waiting to be (re-)granted.
struct QueuedShard {
  uint64_t First = 0;
  uint64_t Count = 0;
  uint32_t Attempt = 0;
  std::vector<std::vector<double>> RateConstantSets;
  std::vector<std::vector<double>> InitialStates;
};

/// One shard granted to a node and not yet resolved. The
/// parameterizations are retained so a re-grant after the owner dies
/// carries bit-identical inputs.
struct InFlightShard {
  uint64_t Count = 0;
  uint32_t Attempt = 0;
  NodeId Owner = 0;
  uint64_t Epoch = 0; ///< Owner incarnation the grant was issued to.
  double EstimateSeconds = 0.0;
  std::vector<std::vector<double>> RateConstantSets;
  std::vector<std::vector<double>> InitialStates;
};

struct NodeState {
  NodeId Id = 0;
  uint64_t Epoch = 1;
  bool Alive = false;
  bool EverAlive = false;
  double LastHeard = 0.0;
  uint32_t Devices = 1;
  /// Node-concurrent modeled seconds per simulation, EMA-updated from
  /// returned batches; seeds grant estimates.
  double EstSecondsPerSim = 0.0;
  /// Modeled virtual finish time (completed actuals + in-flight
  /// estimates) — the node-level Assigned accumulator.
  double Assigned = 0.0;
  double ModeledBusy = 0.0;
  unsigned InFlightGrants = 0;
  NodeScheduleReport Report;
};

} // namespace

NodeCoordinator::NodeCoordinator(EngineOptions EngineOpts,
                                 FabricOptions FabricOpts)
    : Engine(std::move(EngineOpts)), Fabric(std::move(FabricOpts)) {
  assert(Fabric.enabled() && "coordinator without an enabled fabric");
}

FabricScheduleReport NodeCoordinator::streamParameterizations(
    const ReactionNetwork &Net, const ParameterizationSource &Source,
    OutcomeSink &Sink) {
  FabricEndpoint &Ep = *Fabric.Endpoint;
  const unsigned MaxAttempts = std::max(1u, Fabric.MaxShardAttempts);
  const unsigned Depth = std::max(1u, Fabric.GrantQueueDepth);
  const uint64_t Chunk = Engine.Sched.ChunkSize ? Engine.Sched.ChunkSize
                         : Engine.SubBatchSize  ? Engine.SubBatchSize
                                                : 512;
  const uint64_t Fingerprint = networkFingerprint(Net);

  TraceSpan RunSpan("fabric.run", "fabric");
  MetricsRegistry &M = metrics();
  Counter &ShardsC = M.counter("psg.fabric.shards");
  Counter &SimsC = M.counter("psg.fabric.simulations");
  Counter &RequeuesC = M.counter("psg.fabric.requeues");
  Counter &LostC = M.counter("psg.fabric.lost_simulations");
  Counter &SchedLostC = M.counter("psg.sched.lost_simulations");
  Counter &DeathsC = M.counter("psg.fabric.node_deaths");
  Counter &RejoinsC = M.counter("psg.fabric.node_rejoins");
  Counter &DupC = M.counter("psg.fabric.duplicates_suppressed");
  Counter &StaleC = M.counter("psg.fabric.stale_batches");
  Counter &FramesOutC = M.counter("psg.fabric.frames_sent");
  Counter &FramesInC = M.counter("psg.fabric.frames_received");
  Counter &BytesOutC = M.counter("psg.fabric.bytes_sent");
  Counter &BytesInC = M.counter("psg.fabric.bytes_received");

  FabricScheduleReport Rep;
  std::map<NodeId, NodeState> Nodes;
  for (uint32_t W : Fabric.Workers) {
    NodeState N;
    N.Id = W;
    N.LastHeard = Ep.now();
    Nodes.emplace(W, std::move(N));
  }
  std::map<uint64_t, InFlightShard> InFlights;
  std::deque<QueuedShard> Requeue;
  DeliveryLedger Ledger(Fabric.OrderedDelivery);
  bool Dry = false;
  size_t NextIndex = 0;
  size_t Resident = 0;

  auto sendFrame = [&](NodeId To, std::vector<uint8_t> Frame) {
    FramesOutC.add();
    BytesOutC.add(Frame.size());
    return Ep.send(To, std::move(Frame));
  };

  auto estimateFor = [&](const NodeState &N, uint64_t Count) {
    return N.EstSecondsPerSim * static_cast<double>(Count);
  };

  // Delivers Count Aborted outcomes for a shard whose attempt budget is
  // exhausted (or that can never run again) — the exactly-once "gap
  // filler" of the re-queue path.
  auto abortShard = [&](uint64_t First, uint64_t Count) {
    std::vector<SimulationOutcome> Lost(static_cast<size_t>(Count));
    for (SimulationOutcome &O : Lost) {
      O.Result.Status = IntegrationStatus::Aborted;
      O.Result.Detail = formatString(
          "fabric: shard dropped after %u attempts", MaxAttempts);
    }
    Rep.LostSimulations += Count;
    LostC.add(Count);
    SchedLostC.add(Count);
    Rep.Stream.Failures += Count;
    Rep.Stream.Simulations += Count;
    ++Rep.Stream.SubBatches;
    DeliveryLedger::Acceptance A = Ledger.accept(First, std::move(Lost), Sink);
    assert(!A.Duplicate && "aborted a shard that was already delivered");
    assert(Resident >= A.FlushedSimulations && "resident underflow");
    Resident -= A.FlushedSimulations;
  };

  // Re-queues (or aborts) one abandoned shard.
  auto requeueShard = [&](uint64_t First, InFlightShard &&F) {
    if (F.Attempt + 1 < MaxAttempts) {
      QueuedShard Q;
      Q.First = First;
      Q.Count = F.Count;
      Q.Attempt = F.Attempt + 1;
      Q.RateConstantSets = std::move(F.RateConstantSets);
      Q.InitialStates = std::move(F.InitialStates);
      Requeue.push_front(std::move(Q));
      ++Rep.Requeues;
      RequeuesC.add();
    } else {
      abortShard(First, F.Count);
    }
  };

  // Declares \p N dead: bump its epoch (so anything it sends later is
  // recognizably stale) and move its in-flight shards back to the
  // grant queue.
  auto killNode = [&](NodeState &N, const char *Why) {
    if (!N.Alive)
      return;
    N.Alive = false;
    ++N.Epoch;
    ++N.Report.Deaths;
    ++Rep.NodeDeaths;
    DeathsC.add();
    logMessage(LogLevel::Warning, "fabric: node %u declared dead (%s)", N.Id,
               Why);
    for (auto It = InFlights.begin(); It != InFlights.end();) {
      if (It->second.Owner != N.Id) {
        ++It;
        continue;
      }
      N.Assigned = std::max(0.0, N.Assigned - It->second.EstimateSeconds);
      ++N.Report.Requeues;
      requeueShard(It->first, std::move(It->second));
      It = InFlights.erase(It);
    }
    N.InFlightGrants = 0;
  };

  // Feeds grants to the alive node with the earliest modeled virtual
  // finish until queues are full or there is nothing to grant.
  auto pump = [&]() {
    for (;;) {
      NodeState *Best = nullptr;
      for (auto &E : Nodes) {
        NodeState &N = E.second;
        if (N.Alive && N.InFlightGrants < Depth &&
            (!Best || N.Assigned < Best->Assigned))
          Best = &N;
      }
      if (!Best)
        return;
      QueuedShard Q;
      if (!Requeue.empty()) {
        Q = std::move(Requeue.front());
        Requeue.pop_front();
      } else if (!Dry) {
        // Cut a fresh grant: device-count many reference chunks, so the
        // worker's local executor re-cuts it on exactly the boundaries
        // a single-process run would have used.
        uint64_t Want =
            Fabric.GrantSize
                ? std::max<uint64_t>(Chunk, Fabric.GrantSize / Chunk * Chunk)
                : Chunk * std::max(1u, Best->Devices);
        TraceSpan GenSpan("fabric.generate", "fabric");
        WallTimer PrepareTimer;
        std::vector<Parameterization> Params;
        Params.reserve(static_cast<size_t>(Want));
        const size_t Count = Source(static_cast<size_t>(Want), Params);
        Rep.Stream.PrepareWallSeconds += PrepareTimer.seconds();
        if (Count == 0) {
          Dry = true;
          continue;
        }
        Q.First = NextIndex;
        NextIndex += Count;
        Q.Count = Count;
        Q.Attempt = 0;
        Q.RateConstantSets.reserve(Count);
        Q.InitialStates.reserve(Count);
        for (Parameterization &P : Params) {
          Q.RateConstantSets.push_back(std::move(P.RateConstants));
          Q.InitialStates.push_back(std::move(P.InitialState));
        }
        Resident += Count;
        Rep.Stream.PeakResidentOutcomes =
            std::max(Rep.Stream.PeakResidentOutcomes, Resident);
      } else {
        return;
      }

      ShardGrantMsg G;
      G.ShardId = Q.First;
      G.Epoch = Best->Epoch;
      G.First = Q.First;
      G.Attempt = Q.Attempt;
      G.ChunkSize = Chunk;
      G.StartTime = Engine.StartTime;
      G.EndTime = Engine.EndTime;
      G.OutputSamples = Engine.OutputSamples;
      G.Solver = Engine.Solver;
      G.ModelFingerprint = Fingerprint;
      G.RateConstantSets = std::move(Q.RateConstantSets);
      G.InitialStates = std::move(Q.InitialStates);
      std::vector<uint8_t> Frame = encodeShardGrant(G);

      const double Est = estimateFor(*Best, Q.Count);
      InFlightShard F;
      F.Count = Q.Count;
      F.Attempt = Q.Attempt;
      F.Owner = Best->Id;
      F.Epoch = Best->Epoch;
      F.EstimateSeconds = Est;
      F.RateConstantSets = std::move(G.RateConstantSets);
      F.InitialStates = std::move(G.InitialStates);
      InFlights.emplace(Q.First, std::move(F));
      Best->Assigned += Est;
      ++Best->InFlightGrants;
      ++Rep.Shards;
      ShardsC.add();
      if (!sendFrame(Best->Id, std::move(Frame)))
        killNode(*Best, "send failed");
    }
  };

  // Accepts one OutcomeBatch through the ledger; returns false when it
  // was a duplicate.
  auto deliverBatch = [&](OutcomeBatchMsg &&B, NodeState &Producer) {
    const size_t Count = B.Outcomes.size();
    DeliveryLedger::Acceptance A =
        Ledger.accept(B.First, std::move(B.Outcomes), Sink);
    if (A.Duplicate) {
      ++Rep.DuplicateBatches;
      DupC.add();
      return false;
    }
    assert(Resident >= A.FlushedSimulations && "resident underflow");
    Resident -= A.FlushedSimulations;
    Rep.Stream.TotalStats.merge(B.Stats);
    accumulateModeled(Rep.Stream.IntegrationTime, B.IntegrationTime);
    accumulateModeled(Rep.Stream.SimulationTime, B.SimulationTime);
    Rep.Stream.HostWallSeconds += B.HostWallSeconds;
    Rep.Stream.Failures += B.Failures;
    Rep.Stream.Simulations += Count;
    ++Rep.Stream.SubBatches;
    SimsC.add(Count);
    // Node-concurrent modeled time: the batch's summed device seconds
    // spread over the node's local fleet.
    const double NodeSeconds =
        B.SimulationTime.total() / std::max(1u, Producer.Devices);
    Producer.ModeledBusy += NodeSeconds;
    const double PerSim = NodeSeconds / static_cast<double>(Count);
    Producer.EstSecondsPerSim =
        Producer.EstSecondsPerSim > 0.0
            ? 0.5 * Producer.EstSecondsPerSim + 0.5 * PerSim
            : PerSim;
    ++Producer.Report.Shards;
    Producer.Report.Simulations += Count;
    return true;
  };

  auto handleFrame = [&](ReceivedFrame &&RF) {
    FramesInC.add();
    BytesInC.add(RF.Bytes.size());
    ErrorOr<FrameView> ViewOr = parseFrame(RF.Bytes);
    if (!ViewOr.ok()) {
      logMessage(LogLevel::Warning, "fabric: dropping frame from node %u: %s",
                 RF.From, ViewOr.message().c_str());
      return;
    }
    auto NodeIt = Nodes.find(RF.From);
    if (NodeIt == Nodes.end())
      return; // Not a configured worker.
    NodeState &N = NodeIt->second;
    N.LastHeard = Ep.now();
    if (!N.Alive && ViewOr->Type != MessageType::NodeGoodbye) {
      N.Alive = true;
      if (N.EverAlive) {
        ++N.Report.Rejoins;
        ++Rep.NodeRejoins;
        RejoinsC.add();
        logMessage(LogLevel::Info, "fabric: node %u rejoined (epoch %llu)",
                   N.Id, (unsigned long long)N.Epoch);
      }
      N.EverAlive = true;
    }

    switch (ViewOr->Type) {
    case MessageType::Hello: {
      ErrorOr<HelloMsg> H = decodeHello(ViewOr.value());
      if (!H.ok())
        return;
      N.Devices = std::max(1u, H->Devices);
      if (H->ModelFingerprint != 0 && H->ModelFingerprint != Fingerprint)
        logMessage(LogLevel::Warning,
                   "fabric: node %u announced a different model fingerprint",
                   N.Id);
      break;
    }
    case MessageType::Heartbeat:
    case MessageType::ShardAck:
      break; // Liveness refresh above is all these carry.
    case MessageType::NodeGoodbye:
      killNode(N, "goodbye");
      break;
    case MessageType::OutcomeBatch: {
      ErrorOr<OutcomeBatchMsg> BOr = decodeOutcomeBatch(ViewOr.value());
      if (!BOr.ok()) {
        logMessage(LogLevel::Warning,
                   "fabric: dropping OutcomeBatch from node %u: %s", RF.From,
                   BOr.message().c_str());
        return;
      }
      OutcomeBatchMsg &B = *BOr;
      auto It = InFlights.find(B.First);
      if (It == InFlights.end()) {
        // Maybe the shard is sitting in the re-grant queue after its
        // owner was declared dead: the late result rescues it.
        for (auto QIt = Requeue.begin(); QIt != Requeue.end(); ++QIt)
          if (QIt->First == B.First) {
            if (B.Outcomes.size() != QIt->Count) {
              logMessage(LogLevel::Warning,
                         "fabric: dropping OutcomeBatch for shard %llu from "
                         "node %u: %zu outcomes for a %llu-simulation shard",
                         (unsigned long long)B.First, N.Id, B.Outcomes.size(),
                         (unsigned long long)QIt->Count);
              return;
            }
            ++Rep.StaleEpochBatches;
            StaleC.add();
            if (!Fabric.AcceptStaleResults)
              return;
            if (deliverBatch(std::move(B), N))
              Requeue.erase(QIt);
            return;
          }
        // Already resolved: a duplicate (late retransmit, duplicated
        // frame, or a rescued shard's second arrival).
        ++Rep.DuplicateBatches;
        DupC.add();
        return;
      }
      InFlightShard &F = It->second;
      // A batch whose outcome count disagrees with the shard's cut
      // would corrupt the ledger's ordered-flush cursor and the
      // exactly-once accounting (the asserts guarding contiguity
      // compile out in release builds) — drop it and let the re-queue
      // ladder resolve the shard.
      if (B.Outcomes.size() != F.Count) {
        logMessage(LogLevel::Warning,
                   "fabric: dropping OutcomeBatch for shard %llu from node "
                   "%u: %zu outcomes for a %llu-simulation shard",
                   (unsigned long long)B.First, N.Id, B.Outcomes.size(),
                   (unsigned long long)F.Count);
        return;
      }
      const bool Stale = B.Epoch != F.Epoch || N.Id != F.Owner;
      if (Stale) {
        ++Rep.StaleEpochBatches;
        StaleC.add();
        if (!Fabric.AcceptStaleResults)
          return;
        // Accept the stale result; the current owner's eventual answer
        // will be suppressed as a duplicate. The owner will never
        // resolve this grant through the normal completion path, so
        // retire both its queue slot and the grant's estimate from its
        // virtual finish — leaving the estimate in Assigned would skew
        // placement away from that node for the rest of the run.
        if (deliverBatch(std::move(B), N)) {
          auto OwnerIt = Nodes.find(F.Owner);
          if (OwnerIt != Nodes.end()) {
            OwnerIt->second.Assigned =
                std::max(0.0, OwnerIt->second.Assigned - F.EstimateSeconds);
            if (OwnerIt->second.InFlightGrants > 0)
              --OwnerIt->second.InFlightGrants;
          }
          InFlights.erase(It);
        }
        return;
      }
      const double Estimate = F.EstimateSeconds;
      const double ActualNodeSeconds =
          B.SimulationTime.total() / std::max(1u, N.Devices);
      if (deliverBatch(std::move(B), N)) {
        // Replace the grant's estimate with the actual modeled seconds
        // so the virtual finish converges on the node's true makespan.
        N.Assigned =
            std::max(0.0, N.Assigned - Estimate) + ActualNodeSeconds;
        if (N.InFlightGrants > 0)
          --N.InFlightGrants;
        InFlights.erase(It);
      }
      break;
    }
    case MessageType::ShardGrant:
      break; // Workers never send grants; ignore.
    }
  };

  // Main loop: pump grants, poll, sweep heartbeats, detect stalls.
  WallTimer RunTimer;
  double StallStart = -1.0;
  bool Aborting = false;
  auto abortEverything = [&](const char *Why) {
    logMessage(LogLevel::Warning,
               "fabric: aborting remaining work (%s): %zu in flight, %zu "
               "queued",
               Why, InFlights.size(), Requeue.size());
    for (auto &E : Requeue)
      abortShard(E.First, E.Count);
    Requeue.clear();
    for (auto &E : InFlights)
      abortShard(E.first, E.second.Count);
    InFlights.clear();
    while (!Dry) {
      std::vector<Parameterization> Params;
      const size_t Count = Source(static_cast<size_t>(Chunk * 4), Params);
      if (Count == 0) {
        Dry = true;
        break;
      }
      Resident += Count;
      abortShard(NextIndex, Count);
      NextIndex += Count;
    }
    Aborting = true;
  };

  for (;;) {
    if (!Aborting)
      pump();
    if (Dry && InFlights.empty() && Requeue.empty())
      break;
    ReceivedFrame RF;
    const PollStatus Ps = Ep.poll(RF, Fabric.HeartbeatIntervalSeconds);
    if (Ps == PollStatus::Message) {
      handleFrame(std::move(RF));
    } else if (Ps == PollStatus::Closed) {
      // No peer can ever answer again: fail whatever is left, once.
      for (auto &E : Nodes)
        killNode(E.second, "transport closed");
      abortEverything("transport closed");
      continue;
    }
    const double Now = Ep.now();
    for (auto &E : Nodes)
      if (E.second.Alive &&
          Now - E.second.LastHeard > Fabric.HeartbeatTimeoutSeconds)
        killNode(E.second, "heartbeat timeout");

    bool AnyAlive = false, AnyEverAlive = false;
    for (auto &E : Nodes) {
      AnyAlive |= E.second.Alive;
      AnyEverAlive |= E.second.EverAlive;
    }
    if (!AnyAlive && !Aborting) {
      if (StallStart < 0)
        StallStart = Now;
      const double Limit =
          AnyEverAlive
              ? Fabric.StallTimeoutSeconds
              : std::max(Fabric.HelloTimeoutSeconds,
                         Fabric.StallTimeoutSeconds);
      if (Now - StallStart > Limit)
        abortEverything(AnyEverAlive ? "all nodes dead" : "no node joined");
    } else {
      StallStart = -1.0;
    }
  }

  // Drain mature leftovers (late duplicates or stale retransmits of the
  // final shards) so the duplicate/stale telemetry is complete before
  // teardown — they would be suppressed anyway, but uncounted.
  {
    ReceivedFrame RF;
    while (Ep.poll(RF, 0.0) == PollStatus::Message)
      handleFrame(std::move(RF));
  }

  // Orderly teardown: surviving workers go home.
  for (auto &E : Nodes)
    if (E.second.Alive) {
      NodeGoodbyeMsg Bye;
      Bye.Node = CoordinatorNode;
      Bye.Reason = "sweep complete";
      sendFrame(E.first, encodeNodeGoodbye(Bye));
    }

  // Exactly-once oracle, enforced structurally: every cut simulation
  // was delivered (as real or Aborted outcomes), none twice.
  assert(Ledger.deliveredSimulations() == NextIndex &&
         "fabric: delivered simulations != generated simulations");
  assert(Ledger.pendingBatches() == 0 && "fabric: undelivered buffered work");
  assert(Rep.Stream.Simulations == NextIndex &&
         "fabric: stream accounting mismatch");

  const double RunWallSeconds = RunTimer.seconds();
  double MaxBusy = 0.0, MinBusy = 0.0, SumUtil = 0.0;
  bool FirstNode = true;
  for (auto &E : Nodes) {
    const double Busy = E.second.ModeledBusy;
    MaxBusy = std::max(MaxBusy, Busy);
    MinBusy = FirstNode ? Busy : std::min(MinBusy, Busy);
    FirstNode = false;
  }
  Rep.ModeledMakespanSeconds = MaxBusy;
  Rep.ShardImbalance = MaxBusy > 0.0 ? (MaxBusy - MinBusy) / MaxBusy : 0.0;
  Rep.Nodes.reserve(Nodes.size());
  for (auto &E : Nodes) {
    NodeState &N = E.second;
    N.Report.Node = N.Id;
    N.Report.Devices = N.Devices;
    N.Report.Epoch = N.Epoch;
    N.Report.Alive = N.Alive;
    N.Report.ModeledBusySeconds = N.ModeledBusy;
    N.Report.Utilization = MaxBusy > 0.0 ? N.ModeledBusy / MaxBusy : 0.0;
    SumUtil += N.Report.Utilization;
    M.gauge(formatString("psg.fabric.node.%u.utilization", N.Id))
        .set(N.Report.Utilization);
    Rep.Nodes.push_back(N.Report);
  }
  M.gauge("psg.fabric.node_utilization")
      .set(Nodes.empty() ? 0.0 : SumUtil / Nodes.size());
  M.gauge("psg.fabric.shard_imbalance").set(Rep.ShardImbalance);
  M.gauge("psg.fabric.modeled_makespan_s").set(Rep.ModeledMakespanSeconds);
  RunSpan.setModeledSeconds(Rep.ModeledMakespanSeconds);
  logMessage(LogLevel::Info,
             "fabric: %zu sims over %zu nodes in %llu grants, modeled "
             "makespan %.3gs (%llu requeues, %llu deaths, %llu dup "
             "suppressed, host %.3gs)",
             Rep.Stream.Simulations, Nodes.size(),
             (unsigned long long)Rep.Shards, Rep.ModeledMakespanSeconds,
             (unsigned long long)Rep.Requeues,
             (unsigned long long)Rep.NodeDeaths,
             (unsigned long long)Rep.DuplicateBatches, RunWallSeconds);
  Rep.Stream.Metrics = M.snapshot();
  return Rep;
}
