//===- fabric/Fabric.h - Message fabric endpoint abstraction ----*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport abstraction the cross-node scheduler is written
/// against. An endpoint sends length-prefixed binary frames to peers by
/// node id and polls for inbound frames with a timeout. Two
/// implementations exist: LoopbackFabric (in-process, deterministic,
/// fault-injectable — what the distributed test harness drives) and
/// TcpFabric (POSIX sockets over localhost or a real network). The
/// coordinator/worker protocol layered on top never touches sockets or
/// queues directly, so every failure mode provable on the loopback
/// fabric holds for TCP modulo the OS transport itself.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_FABRIC_FABRIC_H
#define PSG_FABRIC_FABRIC_H

#include <cstdint>
#include <vector>

namespace psg {

/// Node address on a fabric. The coordinator is always node 0; workers
/// are 1..N in the order the coordinator admitted them.
using NodeId = uint32_t;

constexpr NodeId CoordinatorNode = 0;

/// One inbound frame with its sender.
struct ReceivedFrame {
  NodeId From = 0;
  std::vector<uint8_t> Bytes;
};

/// Outcome of one poll() call.
enum class PollStatus {
  Message, ///< A frame was received.
  Timeout, ///< Nothing arrived within the timeout.
  Closed,  ///< The fabric was shut down or every peer disconnected.
};

/// One node's attachment to a message fabric.
///
/// Thread contract: a node drives its endpoint from one thread (the
/// coordinator/worker event loops are single-threaded); implementations
/// must tolerate concurrent send() from peers' threads on the far side
/// but need not support concurrent calls on one endpoint.
class FabricEndpoint {
public:
  virtual ~FabricEndpoint();

  /// This endpoint's node id.
  virtual NodeId id() const = 0;

  /// Queues one frame for delivery to \p To. Returns false when the
  /// peer is unknown or the transport to it has failed; a best-effort
  /// transport may also drop frames silently after returning true (the
  /// protocol layer owns retries, not the fabric).
  virtual bool send(NodeId To, std::vector<uint8_t> Frame) = 0;

  /// Waits up to \p TimeoutSeconds for one inbound frame.
  virtual PollStatus poll(ReceivedFrame &Out, double TimeoutSeconds) = 0;

  /// Monotonic clock in seconds. Heartbeat/death decisions use this so
  /// a fabric implementation can (in tests) present a compressed view
  /// of time alongside its delivery schedule.
  virtual double now() const = 0;
};

} // namespace psg

#endif // PSG_FABRIC_FABRIC_H
