//===- fabric/NodeWorker.h - Cross-node sweep worker ------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The worker side of cross-node sweep distribution: an event loop that
/// announces itself (Hello), heartbeats while idle AND while computing
/// (a pump thread keeps liveness flowing through the blocking local
/// run, so a grant that outlasts the coordinator's heartbeat timeout is
/// not a false death), runs each ShardGrant through a local warm
/// multi-device ShardedExecutor, and streams the serialized outcomes
/// back as OutcomeBatch frames. The worker re-cuts
/// each grant at the reference chunk the grant prescribes, so the global
/// sub-batch boundaries — and bit-exactness — survive distribution.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_FABRIC_NODEWORKER_H
#define PSG_FABRIC_NODEWORKER_H

#include "fabric/Fabric.h"
#include "rbm/ReactionNetwork.h"
#include "sched/SchedOptions.h"
#include "vgpu/CostModel.h"

#include <cstdint>
#include <string>

namespace psg {

/// Outcome of one worker's service life.
struct WorkerReport {
  uint64_t Grants = 0;        ///< Shard grants executed.
  uint64_t Simulations = 0;   ///< Simulations integrated locally.
  uint64_t Heartbeats = 0;    ///< Idle heartbeats sent.
  double ModeledBusySeconds = 0.0; ///< Summed modeled device seconds.
  std::string ExitReason;     ///< Why serve() returned.
};

/// Serves shard grants arriving on a fabric endpoint until the
/// coordinator says goodbye or the transport closes.
class NodeWorker {
public:
  /// \p Local configures the worker's device fleet (personality names;
  /// must be non-empty). \p Endpoint must outlive the worker.
  /// \p Runtime names the device runtime each local device executes on
  /// ("host", "host-async", "cuda"); validated by engine construction.
  NodeWorker(const CostModel &Model, FabricEndpoint &Endpoint,
             SchedOptions Local, double HeartbeatIntervalSeconds = 0.05,
             std::string Runtime = "host");

  /// Blocks serving grants against \p Net. Returns when the coordinator
  /// sends NodeGoodbye, the transport closes, or a grant is
  /// irreconcilable (model fingerprint mismatch).
  WorkerReport serve(const ReactionNetwork &Net);

private:
  CostModel Model;
  FabricEndpoint &Endpoint;
  SchedOptions Local;
  double HeartbeatIntervalSeconds;
  std::string Runtime;
};

} // namespace psg

#endif // PSG_FABRIC_NODEWORKER_H
