//===- fabric/LoopbackFabric.h - In-process fault-injectable fabric -------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-process message fabric: every node's endpoint is a mailbox on
/// one shared switch, and delivery is a queue move — no sockets, no OS
/// scheduling in the transport itself. Its purpose is the distributed
/// test harness: a FaultScript observes every frame at send time (with
/// its decoded identity: type, shard id, attempt, epoch) and rules on
/// it — deliver, drop, duplicate, or delay — so every distributed
/// failure mode (node kill, partition, late duplicate, reorder,
/// heartbeat delay) is reproducible from message content alone,
/// independent of thread interleaving. The same technique the
/// single-process ShardFaultInjector uses, lifted to the wire.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_FABRIC_LOOPBACKFABRIC_H
#define PSG_FABRIC_LOOPBACKFABRIC_H

#include "fabric/Fabric.h"
#include "fabric/WireFormat.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

namespace psg {

/// Everything a fault script knows about one frame in flight.
struct FaultContext {
  NodeId From = 0;
  NodeId To = 0;
  FrameInspection Frame;  ///< Type, shard id, attempt, epoch, sender.
  double Now = 0.0;       ///< Fabric clock at send time.
  uint64_t Sequence = 0;  ///< Global send ordinal (deterministic tiebreak).
};

/// A fault script's ruling on one frame. Default: deliver untouched.
struct FaultAction {
  bool Drop = false;          ///< Lose the frame entirely.
  bool Duplicate = false;     ///< Deliver it twice.
  double DelaySeconds = 0.0;  ///< Hold delivery back (reorders vs later
                              ///< frames sent on the same edge).
};

using FaultScript = std::function<FaultAction(const FaultContext &)>;

/// The shared in-process switch. Create one, then one endpoint per
/// node; endpoints stay valid until the fabric is destroyed and their
/// polls return Closed after shutdown().
class LoopbackFabric {
public:
  LoopbackFabric();
  ~LoopbackFabric();

  LoopbackFabric(const LoopbackFabric &) = delete;
  LoopbackFabric &operator=(const LoopbackFabric &) = delete;

  /// Creates the endpoint for \p Node. One endpoint per node id.
  std::unique_ptr<FabricEndpoint> createEndpoint(NodeId Node);

  /// Installs the fault script applied to every subsequent send.
  /// Scripts run under the fabric lock: they see frames in a total
  /// order (FaultContext::Sequence) and must not call back into the
  /// fabric.
  void setFaultScript(FaultScript Script);

  /// Wakes every poll with Closed and refuses further sends. Idempotent.
  void shutdown();

  /// Seconds since fabric construction (monotonic).
  double now() const;

  /// Transport counters (for test assertions).
  uint64_t framesSent() const;
  uint64_t framesDropped() const;
  uint64_t framesDuplicated() const;
  uint64_t framesDelayed() const;

private:
  class Endpoint;
  struct QueuedFrame {
    double DueTime = 0.0;
    uint64_t Sequence = 0; ///< Stable order among same-due frames.
    ReceivedFrame Frame;
  };
  struct State;
  std::shared_ptr<State> Shared;
};

} // namespace psg

#endif // PSG_FABRIC_LOOPBACKFABRIC_H
