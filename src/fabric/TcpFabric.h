//===- fabric/TcpFabric.h - TCP socket fabric -------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The real-network FabricEndpoint: length-prefixed binary frames over
/// POSIX TCP sockets. The coordinator binds a listener, admits the
/// expected number of workers (a Hello handshake assigns node ids in
/// admission order), and then both sides speak exactly the same framed
/// protocol the loopback fabric carries in-process — NodeCoordinator
/// and NodeWorker cannot tell the transports apart.
///
/// Transport semantics: send() blocks until the frame is written or
/// the connection fails (then returns false and the peer is marked
/// dead); poll() multiplexes every live connection with poll(2) and
/// reassembles frames from the byte stream. A peer disconnect is
/// surfaced by dropping the connection; when no peers remain, poll()
/// returns Closed.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_FABRIC_TCPFABRIC_H
#define PSG_FABRIC_TCPFABRIC_H

#include "fabric/Fabric.h"
#include "support/Error.h"

#include <cstdint>
#include <memory>
#include <string>

namespace psg {

/// Coordinator-side listener. Two-phase so tests can bind port 0 and
/// learn the kernel-assigned port before spawning workers.
class TcpListener {
public:
  /// Binds and listens on \p Port (0 picks an ephemeral port).
  static ErrorOr<std::unique_ptr<TcpListener>> create(uint16_t Port);

  ~TcpListener();
  TcpListener(const TcpListener &) = delete;
  TcpListener &operator=(const TcpListener &) = delete;

  /// The bound port (useful after binding port 0).
  uint16_t port() const { return BoundPort; }

  /// Admits \p NumWorkers connections, handshaking each (the worker
  /// sends Hello, we reply with its assigned node id 1..N), and
  /// returns the coordinator endpoint (node 0). Fails if the workers
  /// do not all arrive within \p TimeoutSeconds.
  ErrorOr<std::unique_ptr<FabricEndpoint>> acceptWorkers(unsigned NumWorkers,
                                                         double TimeoutSeconds);

private:
  TcpListener(int Fd, uint16_t Port) : ListenFd(Fd), BoundPort(Port) {}
  int ListenFd;
  uint16_t BoundPort;
};

/// Worker side: connects to the coordinator (retrying until the
/// deadline, so workers may start before the coordinator listens),
/// handshakes, and returns an endpoint carrying the assigned node id.
ErrorOr<std::unique_ptr<FabricEndpoint>>
connectTcpWorker(const std::string &Host, uint16_t Port,
                 double TimeoutSeconds);

} // namespace psg

#endif // PSG_FABRIC_TCPFABRIC_H
