//===- fabric/TcpFabric.cpp - TCP socket fabric ---------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "fabric/TcpFabric.h"

#include "fabric/WireFormat.h"
#include "support/StringUtils.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <map>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#include <vector>

namespace psg {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

void configureSocket(int Fd) {
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
}

/// Writes the whole buffer or fails. MSG_NOSIGNAL: a dead peer yields
/// EPIPE instead of killing the process.
bool sendAll(int Fd, const uint8_t *Data, size_t Size) {
  size_t Off = 0;
  while (Off < Size) {
    ssize_t N = ::send(Fd, Data + Off, Size - Off, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    if (N == 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Blocks (bounded by \p Deadline on the shared clock) until one
/// complete frame has been read from \p Fd into \p Out, consuming
/// leftover bytes from/into \p Buf.
bool recvFrame(int Fd, std::vector<uint8_t> &Buf, std::vector<uint8_t> &Out,
               Clock::time_point Start, double Deadline) {
  for (;;) {
    size_t Need = framedSize(Buf.data(), Buf.size());
    if (Need != 0 && Buf.size() >= Need) {
      Out.assign(Buf.begin(), Buf.begin() + Need);
      Buf.erase(Buf.begin(), Buf.begin() + Need);
      return true;
    }
    if (Buf.size() >= FrameHeaderBytes && Need == 0)
      return false; // Bad magic or oversize length: the stream is garbage.
    const double Left = Deadline - secondsSince(Start);
    if (Left <= 0)
      return false;
    struct pollfd P = {Fd, POLLIN, 0};
    int Rc = ::poll(&P, 1, static_cast<int>(Left * 1000) + 1);
    if (Rc < 0 && errno != EINTR)
      return false;
    if (Rc <= 0)
      continue;
    uint8_t Chunk[4096];
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      return false;
    Buf.insert(Buf.end(), Chunk, Chunk + N);
  }
}

/// Shared endpoint over one or more connected sockets.
class TcpEndpoint final : public FabricEndpoint {
public:
  TcpEndpoint(NodeId Self) : Self(Self), Start(Clock::now()) {}

  ~TcpEndpoint() override {
    for (auto &Entry : Conns)
      if (Entry.second.Fd >= 0)
        ::close(Entry.second.Fd);
  }

  void addPeer(NodeId Peer, int Fd, std::vector<uint8_t> Leftover) {
    Connection C;
    C.Fd = Fd;
    C.RecvBuf = std::move(Leftover);
    Conns.emplace(Peer, std::move(C));
  }

  NodeId id() const override { return Self; }

  bool send(NodeId To, std::vector<uint8_t> Frame) override {
    auto It = Conns.find(To);
    if (It == Conns.end() || It->second.Fd < 0)
      return false;
    if (!sendAll(It->second.Fd, Frame.data(), Frame.size())) {
      dropPeer(It->second);
      return false;
    }
    return true;
  }

  PollStatus poll(ReceivedFrame &Out, double TimeoutSeconds) override {
    const double Deadline = secondsSince(Start) + TimeoutSeconds;
    for (;;) {
      if (!Ready.empty()) {
        Out = std::move(Ready.front());
        Ready.pop_front();
        return PollStatus::Message;
      }
      std::vector<struct pollfd> Fds;
      std::vector<NodeId> Peers;
      for (auto &Entry : Conns)
        if (Entry.second.Fd >= 0) {
          Fds.push_back({Entry.second.Fd, POLLIN, 0});
          Peers.push_back(Entry.first);
        }
      if (Fds.empty())
        return PollStatus::Closed;
      const double Left = Deadline - secondsSince(Start);
      if (Left <= 0)
        return PollStatus::Timeout;
      int Rc = ::poll(Fds.data(), Fds.size(),
                      static_cast<int>(Left * 1000) + 1);
      if (Rc < 0 && errno != EINTR)
        return PollStatus::Closed;
      if (Rc <= 0)
        continue;
      for (size_t I = 0; I < Fds.size(); ++I) {
        if (!(Fds[I].revents & (POLLIN | POLLHUP | POLLERR)))
          continue;
        Connection &C = Conns[Peers[I]];
        uint8_t Chunk[65536];
        ssize_t N = ::recv(C.Fd, Chunk, sizeof(Chunk), 0);
        if (N <= 0) {
          if (N < 0 && (errno == EINTR || errno == EAGAIN))
            continue;
          dropPeer(C);
          continue;
        }
        C.RecvBuf.insert(C.RecvBuf.end(), Chunk, Chunk + N);
        extractFrames(Peers[I], C);
      }
    }
  }

  double now() const override { return secondsSince(Start); }

private:
  struct Connection {
    int Fd = -1;
    std::vector<uint8_t> RecvBuf;
  };

  void dropPeer(Connection &C) {
    if (C.Fd >= 0)
      ::close(C.Fd);
    C.Fd = -1;
    C.RecvBuf.clear();
  }

  void extractFrames(NodeId Peer, Connection &C) {
    for (;;) {
      size_t Need = framedSize(C.RecvBuf.data(), C.RecvBuf.size());
      if (Need == 0) {
        // Bad magic (or a payload length past the protocol cap) with a
        // full header present: the stream can never resynchronize, so
        // drop the peer before buffering anything it declared.
        if (C.RecvBuf.size() >= FrameHeaderBytes)
          dropPeer(C);
        return;
      }
      if (C.RecvBuf.size() < Need)
        return;
      ReceivedFrame R;
      R.From = Peer;
      R.Bytes.assign(C.RecvBuf.begin(), C.RecvBuf.begin() + Need);
      C.RecvBuf.erase(C.RecvBuf.begin(), C.RecvBuf.begin() + Need);
      Ready.push_back(std::move(R));
    }
  }

  NodeId Self;
  Clock::time_point Start;
  std::map<NodeId, Connection> Conns;
  std::deque<ReceivedFrame> Ready;
};

} // namespace

//===----------------------------------------------------------------------===//
// TcpListener
//===----------------------------------------------------------------------===//

ErrorOr<std::unique_ptr<TcpListener>> TcpListener::create(uint16_t Port) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Status::failure(
        formatString("fabric: socket() failed: %s", std::strerror(errno)));
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_ANY);
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<struct sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    ::close(Fd);
    return Status::failure(formatString("fabric: bind(%u) failed: %s",
                                        unsigned(Port), std::strerror(errno)));
  }
  if (::listen(Fd, 16) < 0) {
    ::close(Fd);
    return Status::failure(
        formatString("fabric: listen() failed: %s", std::strerror(errno)));
  }
  socklen_t Len = sizeof(Addr);
  ::getsockname(Fd, reinterpret_cast<struct sockaddr *>(&Addr), &Len);
  return std::unique_ptr<TcpListener>(
      new TcpListener(Fd, ntohs(Addr.sin_port)));
}

TcpListener::~TcpListener() {
  if (ListenFd >= 0)
    ::close(ListenFd);
}

ErrorOr<std::unique_ptr<FabricEndpoint>>
TcpListener::acceptWorkers(unsigned NumWorkers, double TimeoutSeconds) {
  auto Ep = std::make_unique<TcpEndpoint>(CoordinatorNode);
  const Clock::time_point Start = Clock::now();
  for (unsigned Admitted = 0; Admitted < NumWorkers;) {
    const double Left = TimeoutSeconds - secondsSince(Start);
    if (Left <= 0)
      return Status::failure(formatString(
          "fabric: only %u of %u workers connected within %.1fs", Admitted,
          NumWorkers, TimeoutSeconds));
    struct pollfd P = {ListenFd, POLLIN, 0};
    int Rc = ::poll(&P, 1, static_cast<int>(Left * 1000) + 1);
    if (Rc < 0 && errno != EINTR)
      return Status::failure(
          formatString("fabric: poll() failed: %s", std::strerror(errno)));
    if (Rc <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    configureSocket(Fd);
    // Handshake: the worker opens with Hello; we reply with its
    // assigned node id. Ids are 1..N in admission order.
    std::vector<uint8_t> Buf, Frame;
    if (!recvFrame(Fd, Buf, Frame, Start, TimeoutSeconds)) {
      ::close(Fd);
      continue;
    }
    ErrorOr<FrameView> View = parseFrame(Frame);
    if (!View.ok() || View->Type != MessageType::Hello) {
      ::close(Fd);
      continue;
    }
    const NodeId Assigned = Admitted + 1;
    HelloMsg Reply;
    Reply.Node = Assigned;
    std::vector<uint8_t> ReplyFrame = encodeHello(Reply);
    if (!sendAll(Fd, ReplyFrame.data(), ReplyFrame.size())) {
      ::close(Fd);
      continue;
    }
    Ep->addPeer(Assigned, Fd, std::move(Buf));
    ++Admitted;
  }
  return std::unique_ptr<FabricEndpoint>(std::move(Ep));
}

//===----------------------------------------------------------------------===//
// Worker connect
//===----------------------------------------------------------------------===//

ErrorOr<std::unique_ptr<FabricEndpoint>>
connectTcpWorker(const std::string &Host, uint16_t Port,
                 double TimeoutSeconds) {
  const Clock::time_point Start = Clock::now();
  struct sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1)
    return Status::failure(
        formatString("fabric: bad coordinator address '%s' (use an IPv4 "
                     "literal, e.g. 127.0.0.1)",
                     Host.c_str()));
  // Retry the connect until the deadline: workers are routinely started
  // before the coordinator is listening.
  int Fd = -1;
  for (;;) {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0)
      return Status::failure(
          formatString("fabric: socket() failed: %s", std::strerror(errno)));
    if (::connect(Fd, reinterpret_cast<struct sockaddr *>(&Addr),
                  sizeof(Addr)) == 0)
      break;
    ::close(Fd);
    Fd = -1;
    if (secondsSince(Start) >= TimeoutSeconds)
      return Status::failure(formatString(
          "fabric: could not reach coordinator %s:%u within %.1fs",
          Host.c_str(), unsigned(Port), TimeoutSeconds));
    struct timespec Nap = {0, 50 * 1000 * 1000}; // 50ms between attempts.
    ::nanosleep(&Nap, nullptr);
  }
  configureSocket(Fd);
  HelloMsg Hello; // Node = 0: "assign me an id".
  std::vector<uint8_t> HelloFrame = encodeHello(Hello);
  if (!sendAll(Fd, HelloFrame.data(), HelloFrame.size())) {
    ::close(Fd);
    return Status::failure("fabric: handshake send failed");
  }
  std::vector<uint8_t> Buf, Frame;
  if (!recvFrame(Fd, Buf, Frame, Start, TimeoutSeconds)) {
    ::close(Fd);
    return Status::failure("fabric: handshake reply never arrived");
  }
  ErrorOr<FrameView> View = parseFrame(Frame);
  if (!View.ok()) {
    ::close(Fd);
    return View.status();
  }
  ErrorOr<HelloMsg> Reply = decodeHello(View.value());
  if (!Reply.ok() || Reply->Node == CoordinatorNode) {
    ::close(Fd);
    return Status::failure("fabric: handshake reply malformed");
  }
  auto Ep = std::make_unique<TcpEndpoint>(Reply->Node);
  Ep->addPeer(CoordinatorNode, Fd, std::move(Buf));
  return std::unique_ptr<FabricEndpoint>(std::move(Ep));
}

} // namespace psg
