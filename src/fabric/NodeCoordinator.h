//===- fabric/NodeCoordinator.h - Cross-node sweep coordinator --*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coordinator side of cross-node sweep distribution. One
/// NodeCoordinator partitions a streaming sweep into shard grants and
/// feeds them over a message fabric to worker nodes, each of which runs
/// its local multi-device ShardedExecutor and streams OutcomeBatch
/// frames back. Scheduling is the modeled virtual-finish policy of the
/// in-process executor lifted to nodes: each node carries an Assigned
/// accumulator fed by its reported modeled seconds, and every grant
/// goes to the alive node with the earliest modeled finish that has
/// queue capacity.
///
/// Fault handling:
///  * Heartbeat silence beyond the timeout declares a node dead: its
///    epoch is bumped and its in-flight shards re-enter the grant queue
///    (front, next attempt). A later message from the node rejoins it
///    at the new epoch.
///  * A shard that dies MaxShardAttempts times is delivered exactly
///    once as Aborted outcomes (the ShardedExecutor contract), counted
///    in `psg.fabric.lost_simulations` and `psg.sched.lost_simulations`.
///  * The return path funnels through the shared DeliveryLedger: a late
///    OutcomeBatch from a "dead" node either rescues the shard (stale
///    epoch accepted while undelivered, when AcceptStaleResults) or is
///    suppressed as a duplicate — the sink sees every simulation
///    exactly once in every interleaving.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_FABRIC_NODECOORDINATOR_H
#define PSG_FABRIC_NODECOORDINATOR_H

#include "core/BatchEngine.h"
#include "fabric/Fabric.h"
#include "fabric/FabricOptions.h"
#include "rbm/ReactionNetwork.h"

#include <cstdint>
#include <string>
#include <vector>

namespace psg {

/// Per-node outcome of one distributed sweep.
struct NodeScheduleReport {
  NodeId Node = 0;
  uint32_t Devices = 0;   ///< Local device count the node announced.
  uint64_t Epoch = 0;     ///< Final incarnation (1 + times declared dead).
  bool Alive = false;     ///< Still alive when the sweep ended.
  uint64_t Shards = 0;       ///< Shards it returned (accepted batches).
  uint64_t Simulations = 0;  ///< Simulations in those batches.
  uint64_t Requeues = 0;     ///< Its in-flight shards re-queued on death.
  uint64_t Deaths = 0;       ///< Times it was declared dead.
  uint64_t Rejoins = 0;      ///< Times it came back after a death.
  double ModeledBusySeconds = 0.0; ///< Node-concurrent modeled seconds.
  double Utilization = 0.0; ///< Busy / fleet makespan.
};

/// Outcome of one distributed streaming sweep.
struct FabricScheduleReport {
  StreamReport Stream;
  std::vector<NodeScheduleReport> Nodes;
  uint64_t Shards = 0;           ///< Grants sent (incl. re-grants).
  uint64_t Requeues = 0;         ///< Shards re-queued off dead nodes.
  uint64_t LostSimulations = 0;  ///< Delivered as Aborted.
  uint64_t NodeDeaths = 0;
  uint64_t NodeRejoins = 0;
  uint64_t DuplicateBatches = 0;  ///< Suppressed by the dedup ledger.
  uint64_t StaleEpochBatches = 0; ///< Batches bearing a pre-death epoch.
  /// Max over nodes of node-concurrent modeled busy seconds: the
  /// modeled sweep time of the distributed fleet.
  double ModeledMakespanSeconds = 0.0;
  /// (max - min) node busy time over max; 0 = perfectly balanced.
  double ShardImbalance = 0.0;

  double modeledThroughputPerSecond() const {
    return ModeledMakespanSeconds > 0.0
               ? static_cast<double>(Stream.Simulations) /
                     ModeledMakespanSeconds
               : 0.0;
  }
};

/// Drives one or more distributed sweeps over a connected fabric.
class NodeCoordinator {
public:
  /// \p Engine supplies the integration window/solver/sub-batch
  /// contract every grant carries; \p Fabric must be enabled() and its
  /// endpoint outlive the coordinator.
  NodeCoordinator(EngineOptions Engine, FabricOptions Fabric);

  /// Streams \p Source across the worker fleet and hands outcome
  /// batches to \p Sink (ascending contiguous order by default).
  /// Blocks until every simulation is delivered — as real outcomes or
  /// Aborted — then sends NodeGoodbye to surviving workers.
  FabricScheduleReport
  streamParameterizations(const ReactionNetwork &Net,
                          const ParameterizationSource &Source,
                          OutcomeSink &Sink);

private:
  EngineOptions Engine;
  FabricOptions Fabric;
};

} // namespace psg

#endif // PSG_FABRIC_NODECOORDINATOR_H
