//===- analysis/Fitness.cpp -----------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Fitness.h"

#include "analysis/StreamReducers.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cmath>

using namespace psg;

double psg::relativeTrajectoryDistance(const Trajectory &Simulated,
                                       const Trajectory &Target,
                                       const std::vector<size_t> &Species) {
  assert(Simulated.numSamples() == Target.numSamples() &&
         "trajectories must share the sampling grid");
  assert(!Species.empty() && "no species to compare");
  double Sum = 0.0;
  size_t Terms = 0;
  for (size_t S = 1; S < Target.numSamples(); ++S)
    for (size_t Var : Species) {
      const double Ref = Target.value(S, Var);
      const double Got = Simulated.value(S, Var);
      Sum += std::abs(Got - Ref) / (1e-12 + std::abs(Ref));
      ++Terms;
    }
  return Terms > 0 ? Sum / static_cast<double>(Terms) : 0.0;
}

BatchObjective psg::makeTrajectoryFitObjective(BatchEngine &Engine,
                                               const ParameterSpace &Space,
                                               Trajectory Target,
                                               std::vector<size_t> Species,
                                               double FailurePenalty) {
  assert(Engine.options().OutputSamples == Target.numSamples() &&
         "engine output grid must match the target trajectory");
  return [&Engine, &Space, Target = std::move(Target),
          Species = std::move(Species),
          FailurePenalty](const std::vector<std::vector<double>> &Positions)
             -> std::vector<double> {
    TraceSpan Span("analysis.fitness.evaluate", "analysis");
    WallTimer Timer;
    // Stream the swarm: each particle's trajectory is scored against the
    // target as its sub-batch finishes, then released.
    std::vector<double> Fitness(Positions.size(), FailurePenalty);
    std::unique_ptr<PointGenerator> Gen = makeMaterializedGenerator(Positions);
    ForEachOutcomeSink Sink([&](size_t I, const SimulationOutcome &O) {
      if (!O.Result.ok() || O.Dynamics.numSamples() != Target.numSamples())
        return;
      Fitness[I] = relativeTrajectoryDistance(O.Dynamics, Target, Species);
    });
    Engine.stream(Space, *Gen, Sink);
    metrics().counter("psg.analysis.fitness.evaluations").add(Positions.size());
    metrics().histogram("psg.analysis.fitness.eval_wall_s")
        .record(Timer.seconds());
    return Fitness;
  };
}
