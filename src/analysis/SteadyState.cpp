//===- analysis/SteadyState.cpp -------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "analysis/SteadyState.h"

#include "linalg/VectorOps.h"
#include "ode/Radau5.h"
#include "rbm/MassAction.h"

#include <cmath>
#include <limits>

using namespace psg;

SteadyStateResult psg::findSteadyState(const OdeSystem &Sys,
                                       const std::vector<double> &Y0,
                                       OdeSolver &Solver,
                                       const SteadyStateOptions &Opts) {
  const size_t N = Sys.dimension();
  assert(Y0.size() == N && "state size mismatch");
  SteadyStateResult Result;
  Result.State = Y0;

  std::vector<double> F(N);
  double T = 0.0;
  double Window = Opts.InitialWindow;
  auto residual = [&]() {
    Sys.rhs(T, Result.State.data(), F.data());
    ++Result.Stats.RhsEvaluations;
    for (double &V : F)
      V *= Opts.TimeScale;
    return weightedRmsNorm(F.data(), Result.State.data(), N,
                           Opts.Solver.AbsTol, Opts.Solver.RelTol);
  };

  Result.ResidualNorm = residual();
  while (T < Opts.MaxTime) {
    if (Result.ResidualNorm < 1.0) {
      Result.Reached = true;
      Result.Time = T;
      return Result;
    }
    const double TEnd = std::min(T + Window, Opts.MaxTime);
    IntegrationResult R =
        Solver.integrate(Sys, T, TEnd, Result.State, Opts.Solver);
    Result.Stats.merge(R.Stats);
    Result.Time = R.FinalTime;
    if (!R.ok()) {
      Result.ResidualNorm = residual();
      return Result; // Solver failure: report where we stopped.
    }
    T = TEnd;
    Window *= 2.0;
    Result.ResidualNorm = residual();
  }
  Result.Reached = Result.ResidualNorm < 1.0;
  Result.Time = T;
  return Result;
}

DoseResponse psg::computeDoseResponse(const ParameterSpace &Space,
                                      size_t Resolution, size_t Reporter,
                                      const SteadyStateOptions &Opts) {
  assert(Space.numAxes() == 1 && "dose-response needs exactly one axis");
  DoseResponse Curve;
  Radau5Solver Solver;
  const std::vector<std::vector<double>> Points =
      Space.gridSample({Resolution});
  for (const std::vector<double> &Point : Points) {
    Parameterization P = Space.applyPoint(Point);
    CompiledOdeSystem Sys(Space.network());
    Sys.setRateConstants(P.RateConstants);
    SteadyStateResult R =
        findSteadyState(Sys, P.InitialState, Solver, Opts);
    Curve.Dose.push_back(Point[0]);
    if (R.Reached) {
      Curve.Response.push_back(R.State[Reporter]);
    } else {
      Curve.Response.push_back(std::numeric_limits<double>::quiet_NaN());
      ++Curve.Unconverged;
    }
  }
  return Curve;
}
