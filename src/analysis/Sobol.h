//===- analysis/Sobol.h - Variance-based sensitivity analysis ---*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sobol global sensitivity analysis with the Saltelli sampling scheme:
/// first-order and total-order indices with bootstrap confidence
/// intervals, evaluated over batched engine runs (n*(k+2) simulations for
/// k factors and n base points -- the metabolic case study's 12288 runs
/// are 512 base points over 11 factors... n*(k+2) with radial reuse; see
/// the bench for the exact accounting). The base design uses a Halton
/// low-discrepancy sequence (documented simplification of the Sobol
/// sequence used upstream).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ANALYSIS_SOBOL_H
#define PSG_ANALYSIS_SOBOL_H

#include "analysis/Psa.h"
#include "core/BatchEngine.h"

namespace psg {

/// Tunables for the sensitivity analysis.
struct SobolOptions {
  size_t BaseSamples = 512;    ///< n: rows of each Saltelli matrix.
  size_t BootstrapRounds = 100; ///< Resamples for the confidence bounds.
  double ConfidenceZ = 1.96;   ///< 95% normal quantile.
  uint64_t Seed = 1;
  /// Also estimate pairwise (second-order) interaction indices using the
  /// full Saltelli 2002 design; raises the cost from n(k+2) to n(2k+2)
  /// simulations.
  bool ComputeSecondOrder = false;
};

/// A pairwise interaction index.
struct SobolPairIndex {
  size_t FactorA = 0;
  size_t FactorB = 0;
  double S2 = 0.0; ///< Pure second-order effect (closed minus firsts).
};

/// Indices of one factor.
struct SobolIndex {
  std::string Factor;
  double S1 = 0.0;     ///< First-order index.
  double S1Conf = 0.0; ///< Half-width of its confidence interval.
  double ST = 0.0;     ///< Total-order index.
  double STConf = 0.0;
};

/// Full analysis outcome.
struct SobolResult {
  std::vector<SobolIndex> Indices; ///< One per parameter-space axis.
  /// Pairwise interactions (all k(k-1)/2 pairs), filled only when
  /// SobolOptions::ComputeSecondOrder is set.
  std::vector<SobolPairIndex> PairIndices;
  double OutputVariance = 0.0;
  size_t TotalSimulations = 0;
  /// Streaming aggregate: outcomes were reduced into the Saltelli blocks
  /// sub-batch by sub-batch, never all resident at once.
  StreamReport Report;
};

/// Runs the analysis over the axes of \p Space; every model evaluation is
/// \p Output applied to the finished simulation.
SobolResult runSobolSa(BatchEngine &Engine, const ParameterSpace &Space,
                       const TrajectoryReducer &Output,
                       const SobolOptions &Opts);

// haltonPoint — the base design's low-discrepancy sequence — lives in
// core/PointGenerator.h (included transitively) beside the lazy Saltelli
// generator this analysis streams from.

} // namespace psg

#endif // PSG_ANALYSIS_SOBOL_H
