//===- analysis/Oscillation.cpp -------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Oscillation.h"

#include <cassert>
#include <cmath>

using namespace psg;

OscillationMetrics
psg::analyzeOscillation(const std::vector<double> &Times,
                        const std::vector<double> &Values,
                        double TransientFraction, double RelativeThreshold) {
  assert(Times.size() == Values.size() && "ragged series");
  OscillationMetrics M;
  if (Times.size() < 8)
    return M;
  const size_t Begin =
      static_cast<size_t>(TransientFraction * static_cast<double>(Times.size()));
  if (Times.size() - Begin < 6)
    return M;

  double Sum = 0.0;
  double Lo = Values[Begin], Hi = Values[Begin];
  for (size_t I = Begin; I < Values.size(); ++I) {
    Sum += Values[I];
    Lo = std::min(Lo, Values[I]);
    Hi = std::max(Hi, Values[I]);
  }
  M.Mean = Sum / static_cast<double>(Values.size() - Begin);

  // Interior peaks of the post-transient window.
  std::vector<double> PeakTimes;
  for (size_t I = Begin + 1; I + 1 < Values.size(); ++I)
    if (Values[I] > Values[I - 1] && Values[I] >= Values[I + 1])
      PeakTimes.push_back(Times[I]);

  const double Range = Hi - Lo;
  const double Floor = 1e-9 + RelativeThreshold * std::abs(M.Mean);
  if (PeakTimes.size() >= 2 && Range > Floor) {
    M.Oscillating = true;
    M.Amplitude = 0.5 * Range;
    M.Period = (PeakTimes.back() - PeakTimes.front()) /
               static_cast<double>(PeakTimes.size() - 1);
  }
  return M;
}

OscillationMetrics psg::analyzeOscillation(const Trajectory &Traj, size_t Var,
                                           double TransientFraction,
                                           double RelativeThreshold) {
  return analyzeOscillation(Traj.times(), Traj.series(Var),
                            TransientFraction, RelativeThreshold);
}
