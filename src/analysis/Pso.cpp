//===- analysis/Pso.cpp ---------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
// The fuzzy self-tuning rules are a compact rendition of Nobile et al.,
// "Fuzzy Self-Tuning PSO" (2018): triangular memberships over the
// particle's distance-from-best and recent improvement drive a Sugeno-
// style weighted blend of exploration and exploitation coefficient sets.
//
//===----------------------------------------------------------------------===//

#include "analysis/Pso.h"

#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace psg;

namespace {
/// Triangular membership with center \p C and half-width \p W.
double triangle(double X, double C, double W) {
  return std::max(0.0, 1.0 - std::abs(X - C) / W);
}
} // namespace

fstpso::Coefficients psg::fstpso::tuneCoefficients(double NormDistance,
                                                   double Improvement) {
  NormDistance = std::clamp(NormDistance, 0.0, 1.0);
  Improvement = std::clamp(Improvement, -1.0, 1.0);

  // Memberships: distance {near, mid, far}, improvement {worse, same,
  // better}.
  const double Near = triangle(NormDistance, 0.0, 0.4);
  const double Mid = triangle(NormDistance, 0.4, 0.4);
  const double Far = triangle(NormDistance, 1.0, 0.6);
  const double Worse = triangle(Improvement, -1.0, 1.0);
  const double Same = triangle(Improvement, 0.0, 0.5);
  const double Better = triangle(Improvement, 1.0, 1.0);

  // Rule consequents (inertia, cognitive, social):
  //   far or worsening  -> explore: high inertia, high cognitive;
  //   near and improving-> exploit: low inertia, high social;
  //   otherwise         -> balanced classic coefficients.
  struct Rule {
    double Weight;
    double W, C, S;
  };
  const Rule Rules[] = {
      {Far, 1.1, 2.4, 0.8},    {Worse, 0.9, 2.0, 1.0},
      {Near, 0.4, 0.8, 2.4},   {Better, 0.5, 1.0, 2.2},
      {Mid, 0.729, 1.494, 1.494}, {Same, 0.729, 1.494, 1.494},
  };
  double WSum = 0, W = 0, C = 0, S = 0;
  for (const Rule &R : Rules) {
    WSum += R.Weight;
    W += R.Weight * R.W;
    C += R.Weight * R.C;
    S += R.Weight * R.S;
  }
  if (WSum <= 0)
    return {0.729, 1.494, 1.494};
  return {W / WSum, C / WSum, S / WSum};
}

PsoResult psg::runPso(const std::vector<std::pair<double, double>> &Bounds,
                      const BatchObjective &Objective,
                      const PsoOptions &Opts) {
  const size_t Dims = Bounds.size();
  assert(Dims > 0 && Opts.SwarmSize > 1 && "degenerate swarm setup");
  TraceSpan RunSpan("analysis.pso.run", "analysis");
  MetricsRegistry &M = metrics();
  Counter &Iterations = M.counter("psg.analysis.pso.iterations");
  Counter &Evaluations = M.counter("psg.analysis.pso.evaluations");
  Histogram &EvalSeconds = M.histogram("psg.analysis.pso.eval_wall_s");
  // Every swarm evaluation (one engine batch per PSO iteration) is timed
  // and traced so per-iteration fitness cost shows up in the snapshot.
  auto evaluateSwarm =
      [&](const std::vector<std::vector<double>> &Positions) {
        TraceSpan EvalSpan("analysis.pso.evaluate", "analysis");
        WallTimer EvalTimer;
        std::vector<double> F = Objective(Positions);
        EvalSeconds.record(EvalTimer.seconds());
        Evaluations.add(Positions.size());
        return F;
      };
  Rng Generator(Opts.Seed);

  double Diagonal = 0.0;
  for (const auto &[Lo, Hi] : Bounds) {
    assert(Lo < Hi && "empty bound");
    Diagonal += (Hi - Lo) * (Hi - Lo);
  }
  Diagonal = std::sqrt(Diagonal);

  // Swarm state.
  std::vector<std::vector<double>> Position(Opts.SwarmSize,
                                            std::vector<double>(Dims));
  std::vector<std::vector<double>> Velocity(Opts.SwarmSize,
                                            std::vector<double>(Dims, 0.0));
  std::vector<std::vector<double>> BestSeen(Opts.SwarmSize);
  std::vector<double> BestSeenFitness(Opts.SwarmSize);
  std::vector<double> PreviousFitness(Opts.SwarmSize);

  for (size_t P = 0; P < Opts.SwarmSize; ++P)
    for (size_t D = 0; D < Dims; ++D) {
      Position[P][D] =
          Generator.uniform(Bounds[D].first, Bounds[D].second);
      const double Span = Bounds[D].second - Bounds[D].first;
      Velocity[P][D] = Generator.uniform(-Span, Span) * 0.1;
    }

  PsoResult Result;
  std::vector<double> Fitness = evaluateSwarm(Position);
  assert(Fitness.size() == Opts.SwarmSize && "objective size mismatch");
  Result.Evaluations = Opts.SwarmSize;

  size_t GlobalBest = 0;
  for (size_t P = 0; P < Opts.SwarmSize; ++P) {
    BestSeen[P] = Position[P];
    BestSeenFitness[P] = Fitness[P];
    PreviousFitness[P] = Fitness[P];
    if (Fitness[P] < Fitness[GlobalBest])
      GlobalBest = P;
  }
  Result.BestPosition = BestSeen[GlobalBest];
  Result.BestFitness = BestSeenFitness[GlobalBest];
  Result.ConvergenceHistory.push_back(Result.BestFitness);

  for (size_t Iter = 0; Iter < Opts.Iterations; ++Iter) {
    Iterations.add();
    for (size_t P = 0; P < Opts.SwarmSize; ++P) {
      double W = Opts.Inertia, C = Opts.Cognitive, S = Opts.Social;
      if (Opts.FuzzySelfTuning) {
        double Dist = 0.0;
        for (size_t D = 0; D < Dims; ++D) {
          const double Delta = Position[P][D] - Result.BestPosition[D];
          Dist += Delta * Delta;
        }
        const double Scale =
            std::max(std::abs(PreviousFitness[P]), 1e-12);
        const double Improvement =
            (PreviousFitness[P] - Fitness[P]) / Scale;
        const fstpso::Coefficients Coef = fstpso::tuneCoefficients(
            std::sqrt(Dist) / std::max(Diagonal, 1e-12), Improvement);
        W = Coef.Inertia;
        C = Coef.Cognitive;
        S = Coef.Social;
      }
      PreviousFitness[P] = Fitness[P];
      for (size_t D = 0; D < Dims; ++D) {
        const double R1 = Generator.uniform();
        const double R2 = Generator.uniform();
        Velocity[P][D] =
            W * Velocity[P][D] +
            C * R1 * (BestSeen[P][D] - Position[P][D]) +
            S * R2 * (Result.BestPosition[D] - Position[P][D]);
        // Velocity clamp to the box span keeps particles searchable.
        const double Span = Bounds[D].second - Bounds[D].first;
        Velocity[P][D] = std::clamp(Velocity[P][D], -Span, Span);
        Position[P][D] += Velocity[P][D];
        // Reflective bounds.
        if (Position[P][D] < Bounds[D].first) {
          Position[P][D] =
              std::min(2.0 * Bounds[D].first - Position[P][D],
                       Bounds[D].second);
          Velocity[P][D] = -0.5 * Velocity[P][D];
        } else if (Position[P][D] > Bounds[D].second) {
          Position[P][D] =
              std::max(2.0 * Bounds[D].second - Position[P][D],
                       Bounds[D].first);
          Velocity[P][D] = -0.5 * Velocity[P][D];
        }
      }
    }

    Fitness = evaluateSwarm(Position);
    assert(Fitness.size() == Opts.SwarmSize && "objective size mismatch");
    Result.Evaluations += Opts.SwarmSize;
    for (size_t P = 0; P < Opts.SwarmSize; ++P) {
      if (Fitness[P] < BestSeenFitness[P]) {
        BestSeenFitness[P] = Fitness[P];
        BestSeen[P] = Position[P];
      }
      if (Fitness[P] < Result.BestFitness) {
        Result.BestFitness = Fitness[P];
        Result.BestPosition = Position[P];
      }
    }
    Result.ConvergenceHistory.push_back(Result.BestFitness);
  }
  return Result;
}
