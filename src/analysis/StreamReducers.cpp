//===- analysis/StreamReducers.cpp ----------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "analysis/StreamReducers.h"

#include "support/Timer.h"

using namespace psg;

void ReducingSink::consumeSubBatch(size_t FirstIndex,
                                   std::vector<SimulationOutcome> &Outcomes) {
  (void)FirstIndex;
  WallTimer Timer;
  for (const SimulationOutcome &O : Outcomes)
    Into.push_back(Reduce(O));
  ReduceWallSeconds += Timer.seconds();
}

void ForEachOutcomeSink::consumeSubBatch(
    size_t FirstIndex, std::vector<SimulationOutcome> &Outcomes) {
  for (size_t I = 0; I < Outcomes.size(); ++I)
    Fn(FirstIndex + I, Outcomes[I]);
}
