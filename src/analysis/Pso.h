//===- analysis/Pso.h - Particle swarm optimization -------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Particle Swarm Optimization for parameter estimation, in two flavors:
/// classic PSO with fixed coefficients, and a Fuzzy Self-Tuning variant
/// (FST-PSO-style) where each particle adapts its inertia and cognitive/
/// social factors from fuzzy rules over its normalized distance to the
/// global best and its recent fitness improvement. The objective is
/// batched: the whole swarm is evaluated in one call, so the engine can
/// run all candidate parameterizations as one GPU batch per iteration.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ANALYSIS_PSO_H
#define PSG_ANALYSIS_PSO_H

#include "support/Random.h"

#include <functional>
#include <utility>
#include <vector>

namespace psg {

/// Evaluates a set of candidate positions; returns one fitness each
/// (lower is better).
using BatchObjective = std::function<std::vector<double>(
    const std::vector<std::vector<double>> &Positions)>;

/// Swarm configuration.
struct PsoOptions {
  size_t SwarmSize = 32;
  size_t Iterations = 50;
  uint64_t Seed = 1;
  bool FuzzySelfTuning = true; ///< false = classic fixed coefficients.
  double Inertia = 0.729;      ///< Classic-mode coefficients.
  double Cognitive = 1.49445;
  double Social = 1.49445;
};

/// Optimization outcome.
struct PsoResult {
  std::vector<double> BestPosition;
  double BestFitness = 0.0;
  std::vector<double> ConvergenceHistory; ///< Best fitness per iteration.
  size_t Evaluations = 0;
};

/// Minimizes \p Objective over the box \p Bounds (one (lo, hi) pair per
/// dimension).
PsoResult runPso(const std::vector<std::pair<double, double>> &Bounds,
                 const BatchObjective &Objective, const PsoOptions &Opts);

namespace fstpso {
/// Fuzzy-rule outputs for one particle (exposed for unit tests).
struct Coefficients {
  double Inertia;
  double Cognitive;
  double Social;
};

/// Evaluates the fuzzy self-tuning rules. \p NormDistance is the
/// particle's distance to the global best normalized by the search-box
/// diagonal; \p Improvement is the normalized fitness gain of its last
/// move in [-1, 1] (positive = improved).
Coefficients tuneCoefficients(double NormDistance, double Improvement);
} // namespace fstpso

} // namespace psg

#endif // PSG_ANALYSIS_PSO_H
