//===- analysis/StreamReducers.h - Streaming outcome sinks ------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reducer side of the streaming pipeline: OutcomeSink adapters the
/// analyses plug into BatchEngine::stream so a sweep of any size keeps
/// only its scalar products — one reduced double per simulation — while
/// trajectories die with their sub-batch.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ANALYSIS_STREAMREDUCERS_H
#define PSG_ANALYSIS_STREAMREDUCERS_H

#include "analysis/Psa.h"

namespace psg {

/// Reduces every streamed outcome to a scalar with a TrajectoryReducer,
/// appending to a caller-owned vector in stream order.
class ReducingSink : public OutcomeSink {
public:
  ReducingSink(TrajectoryReducer Reduce, std::vector<double> &Into)
      : Reduce(std::move(Reduce)), Into(Into) {}

  void consumeSubBatch(size_t FirstIndex,
                       std::vector<SimulationOutcome> &Outcomes) override;

  /// Wall time spent inside the reducer, summed over sub-batches.
  double reduceSeconds() const { return ReduceWallSeconds; }

private:
  TrajectoryReducer Reduce;
  std::vector<double> &Into;
  double ReduceWallSeconds = 0.0;
};

/// Invokes a callback for every streamed outcome with its global
/// simulation index; the outcome is only valid during the call.
class ForEachOutcomeSink : public OutcomeSink {
public:
  using Callback =
      std::function<void(size_t Index, const SimulationOutcome &Outcome)>;

  explicit ForEachOutcomeSink(Callback Fn) : Fn(std::move(Fn)) {}

  void consumeSubBatch(size_t FirstIndex,
                       std::vector<SimulationOutcome> &Outcomes) override;

private:
  Callback Fn;
};

/// Fans one stream out to two sinks, in order (e.g. an in-memory reducer
/// plus an incremental CSV writer). Neither sink may move outcomes out.
class TeeSink : public OutcomeSink {
public:
  TeeSink(OutcomeSink &First, OutcomeSink &Second)
      : First(First), Second(Second) {}

  void consumeSubBatch(size_t FirstIndex,
                       std::vector<SimulationOutcome> &Outcomes) override {
    First.consumeSubBatch(FirstIndex, Outcomes);
    Second.consumeSubBatch(FirstIndex, Outcomes);
  }

private:
  OutcomeSink &First;
  OutcomeSink &Second;
};

} // namespace psg

#endif // PSG_ANALYSIS_STREAMREDUCERS_H
