//===- analysis/Sobol.cpp -------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
// Estimators follow Saltelli et al., "Variance based sensitivity analysis
// of model output" (2010): Jansen's formulas for S1 and ST.
//
//===----------------------------------------------------------------------===//

#include "analysis/Sobol.h"

#include "analysis/StreamReducers.h"
#include "support/Metrics.h"
#include "support/Random.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cmath>

using namespace psg;

SobolResult psg::runSobolSa(BatchEngine &Engine, const ParameterSpace &Space,
                            const TrajectoryReducer &Output,
                            const SobolOptions &Opts) {
  const size_t K = Space.numAxes();
  const size_t N = Opts.BaseSamples;
  assert(K >= 1 && N >= 8 && "degenerate Saltelli design");
  TraceSpan RunSpan("analysis.sobol.run", "analysis");
  MetricsRegistry &M = metrics();
  M.counter("psg.analysis.sobol.runs").add();
  WallTimer DesignTimer;

  // Saltelli design: one 2K-dimensional low-discrepancy stream split into
  // the independent unit-cube matrices A (first K coordinates) and B
  // (last K), Cranley-Patterson rotated, plus the K radial matrices AB_i.
  // The generator recomputes rows on demand, so the design is never
  // materialized; the rotation is drawn here, before streaming, to keep
  // this generator's stream position (and the bootstrap draws below)
  // identical to the materializing implementation.
  Rng Generator(Opts.Seed);
  std::vector<double> Shift(2 * K);
  for (double &S : Shift)
    S = Generator.uniform();
  std::unique_ptr<PointGenerator> Gen =
      makeSaltelliGenerator(Space, N, Shift, Opts.ComputeSecondOrder);

  M.histogram("psg.analysis.sobol.design_wall_s").record(DesignTimer.seconds());
  M.counter("psg.analysis.sobol.simulations").add(Gen->totalPoints());

  SobolResult Result;
  Result.TotalSimulations = Gen->totalPoints();

  // Streaming evaluation: every outcome is reduced to its scalar model
  // output and scattered into the Saltelli block it belongs to (A, B,
  // AB_i, then BA_i), so no trajectory outlives its sub-batch.
  std::vector<double> FA(N), FB(N);
  std::vector<std::vector<double>> FAB(K, std::vector<double>(N));
  std::vector<std::vector<double>> FBA(Opts.ComputeSecondOrder ? K : 0,
                                       std::vector<double>(N));
  ForEachOutcomeSink Sink([&](size_t Global, const SimulationOutcome &O) {
    const double Value = Output(O);
    const size_t Block = Global / N;
    const size_t I = Global % N;
    if (Block == 0)
      FA[I] = Value;
    else if (Block == 1)
      FB[I] = Value;
    else if (Block < K + 2)
      FAB[Block - 2][I] = Value;
    else
      FBA[Block - K - 2][I] = Value;
  });
  Result.Report = Engine.stream(Space, *Gen, Sink);

  // Variance over the A and B samples.
  auto computeIndices = [&](const std::vector<size_t> &Rows, size_t D,
                            double &S1, double &ST) {
    double Mean = 0.0;
    for (size_t I : Rows)
      Mean += FA[I] + FB[I];
    Mean /= static_cast<double>(2 * Rows.size());
    double Var = 0.0;
    for (size_t I : Rows) {
      Var += (FA[I] - Mean) * (FA[I] - Mean);
      Var += (FB[I] - Mean) * (FB[I] - Mean);
    }
    Var /= static_cast<double>(2 * Rows.size() - 1);
    if (Var <= 0.0) {
      S1 = 0.0;
      ST = 0.0;
      return;
    }
    double NumS1 = 0.0, NumST = 0.0;
    for (size_t I : Rows) {
      NumS1 += FB[I] * (FAB[D][I] - FA[I]);
      NumST += (FA[I] - FAB[D][I]) * (FA[I] - FAB[D][I]);
    }
    S1 = NumS1 / static_cast<double>(Rows.size()) / Var;
    ST = 0.5 * NumST / static_cast<double>(Rows.size()) / Var;
  };

  std::vector<size_t> AllRows(N);
  for (size_t I = 0; I < N; ++I)
    AllRows[I] = I;
  {
    double Mean = 0.0;
    for (size_t I = 0; I < N; ++I)
      Mean += FA[I] + FB[I];
    Mean /= static_cast<double>(2 * N);
    double Var = 0.0;
    for (size_t I = 0; I < N; ++I)
      Var += (FA[I] - Mean) * (FA[I] - Mean) +
             (FB[I] - Mean) * (FB[I] - Mean);
    Result.OutputVariance = Var / static_cast<double>(2 * N - 1);
  }

  Result.Indices.resize(K);
  std::vector<size_t> Boot(N);
  for (size_t D = 0; D < K; ++D) {
    SobolIndex &Index = Result.Indices[D];
    Index.Factor = Space.axis(D).Name;
    computeIndices(AllRows, D, Index.S1, Index.ST);

    // Bootstrap confidence half-widths.
    double SumS1 = 0, SumS1Sq = 0, SumST = 0, SumSTSq = 0;
    for (size_t Round = 0; Round < Opts.BootstrapRounds; ++Round) {
      for (size_t I = 0; I < N; ++I)
        Boot[I] = Generator.uniformInt(N);
      double S1 = 0, ST = 0;
      computeIndices(Boot, D, S1, ST);
      SumS1 += S1;
      SumS1Sq += S1 * S1;
      SumST += ST;
      SumSTSq += ST * ST;
    }
    const double Rounds = static_cast<double>(Opts.BootstrapRounds);
    const double S1Var = SumS1Sq / Rounds - (SumS1 / Rounds) * (SumS1 / Rounds);
    const double STVar = SumSTSq / Rounds - (SumST / Rounds) * (SumST / Rounds);
    Index.S1Conf = Opts.ConfidenceZ * std::sqrt(std::max(S1Var, 0.0));
    Index.STConf = Opts.ConfidenceZ * std::sqrt(std::max(STVar, 0.0));
  }

  // Second-order interactions (Saltelli 2002): the closed pair variance
  // V_ij^c = (1/n) sum f(BA_i) f(AB_j) - f0^2, from which the pure
  // interaction is S_ij = V_ij^c / V - S1_i - S1_j. FBA was filled by
  // the streaming sink above.
  if (Opts.ComputeSecondOrder && Result.OutputVariance > 0.0) {
    double F0 = 0.0;
    for (size_t I = 0; I < N; ++I)
      F0 += FA[I] + FB[I];
    F0 /= static_cast<double>(2 * N);
    for (size_t DA = 0; DA < K; ++DA)
      for (size_t DB = DA + 1; DB < K; ++DB) {
        double Closed = 0.0;
        for (size_t I = 0; I < N; ++I)
          Closed += FBA[DA][I] * FAB[DB][I];
        Closed = Closed / static_cast<double>(N) - F0 * F0;
        SobolPairIndex Pair;
        Pair.FactorA = DA;
        Pair.FactorB = DB;
        Pair.S2 = Closed / Result.OutputVariance -
                  Result.Indices[DA].S1 - Result.Indices[DB].S1;
        Result.PairIndices.push_back(Pair);
      }
  }
  return Result;
}
