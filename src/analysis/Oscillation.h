//===- analysis/Oscillation.h - Oscillation metrics -------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Amplitude/period extraction from sampled trajectories, used by the
/// PSA-2D experiment to color the oscillation maps (zero amplitude means
/// a non-oscillating regime, as in the paper's black map regions).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ANALYSIS_OSCILLATION_H
#define PSG_ANALYSIS_OSCILLATION_H

#include "ode/Trajectory.h"

namespace psg {

/// Summary of a (possibly) oscillating series.
struct OscillationMetrics {
  bool Oscillating = false;
  double Amplitude = 0.0; ///< Mean peak-to-trough half-range, post-transient.
  double Period = 0.0;    ///< Mean peak-to-peak distance (0 if unknown).
  double Mean = 0.0;      ///< Post-transient mean level.
};

/// Analyzes one variable of \p Traj, discarding the first
/// \p TransientFraction of the samples. A series counts as oscillating
/// when at least two interior peaks exist and the peak-to-trough range
/// exceeds \p RelativeThreshold times the mean level (plus an absolute
/// floor to reject numerical noise).
OscillationMetrics analyzeOscillation(const Trajectory &Traj, size_t Var,
                                      double TransientFraction = 0.5,
                                      double RelativeThreshold = 0.05);

/// Same on a raw (time, value) series.
OscillationMetrics analyzeOscillation(const std::vector<double> &Times,
                                      const std::vector<double> &Values,
                                      double TransientFraction = 0.5,
                                      double RelativeThreshold = 0.05);

} // namespace psg

#endif // PSG_ANALYSIS_OSCILLATION_H
