//===- analysis/Fitness.h - Parameter-estimation fitness --------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fitness functions for parameter estimation: the relative distance
/// between a simulated and a target dynamics over selected species (the
/// standard PE objective of this research line), plus an engine-backed
/// batch objective factory for PSO.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ANALYSIS_FITNESS_H
#define PSG_ANALYSIS_FITNESS_H

#include "analysis/Pso.h"
#include "core/BatchEngine.h"

namespace psg {

/// Mean relative L1 distance between \p Simulated and \p Target over
/// \p Species, skipping the shared initial sample. Both trajectories
/// must share the sampling grid. A failed/short simulation should be
/// scored by the caller with a penalty instead.
double relativeTrajectoryDistance(const Trajectory &Simulated,
                                  const Trajectory &Target,
                                  const std::vector<size_t> &Species);

/// Builds a PSO batch objective that (1) maps each candidate position to
/// the parameter space, (2) runs the whole swarm through \p Engine as one
/// batch, and (3) scores each simulation against \p Target. Failed
/// simulations receive \p FailurePenalty.
BatchObjective makeTrajectoryFitObjective(BatchEngine &Engine,
                                          const ParameterSpace &Space,
                                          Trajectory Target,
                                          std::vector<size_t> Species,
                                          double FailurePenalty = 1e6);

} // namespace psg

#endif // PSG_ANALYSIS_FITNESS_H
