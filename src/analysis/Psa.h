//===- analysis/Psa.h - Parameter sweep analysis ----------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One- and two-dimensional parameter sweep analysis (PSA-1D / PSA-2D):
/// sweep one or two axes, simulate every point through the engine, and
/// reduce each trajectory to a scalar (final value, or oscillation
/// amplitude of a reporter species, as in the autophagy case study).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ANALYSIS_PSA_H
#define PSG_ANALYSIS_PSA_H

#include "core/BatchEngine.h"

#include <functional>

namespace psg {

/// Reduces one finished simulation to the swept scalar.
using TrajectoryReducer =
    std::function<double(const SimulationOutcome &Outcome)>;

/// Reducer: final concentration of \p Species.
TrajectoryReducer finalValueReducer(size_t Species);

/// Reducer: post-transient oscillation amplitude of \p Species (0 when
/// the dynamics do not oscillate).
TrajectoryReducer oscillationAmplitudeReducer(size_t Species);

/// Result of a 1D sweep. Simulations stream through the engine one
/// sub-batch at a time, so only the reduced metric survives — the report
/// carries aggregates, not trajectories.
struct Psa1dResult {
  std::vector<double> AxisValues;
  std::vector<double> Metric; ///< One reduced value per axis value.
  StreamReport Report;
};

/// Result of a 2D sweep (row-major over axis0 x axis1).
struct Psa2dResult {
  std::vector<double> Axis0Values;
  std::vector<double> Axis1Values;
  std::vector<double> Metric; ///< Axis0Values.size() * Axis1Values.size().
  StreamReport Report;

  double at(size_t I0, size_t I1) const {
    return Metric[I0 * Axis1Values.size() + I1];
  }
};

/// Sweeps the single axis of \p Space at \p Resolution points.
Psa1dResult runPsa1d(BatchEngine &Engine, const ParameterSpace &Space,
                     size_t Resolution, const TrajectoryReducer &Reduce);

/// Sweeps the two axes of \p Space on a Res0 x Res1 grid.
Psa2dResult runPsa2d(BatchEngine &Engine, const ParameterSpace &Space,
                     size_t Res0, size_t Res1,
                     const TrajectoryReducer &Reduce);

} // namespace psg

#endif // PSG_ANALYSIS_PSA_H
