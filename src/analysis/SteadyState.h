//===- analysis/SteadyState.h - Steady-state search -------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Steady-state search by integration: advance the system in doubling
/// time windows until the tolerance-scaled norm of dy/dt drops below a
/// threshold (or a time/step budget runs out). Dose-response analyses
/// build on this (sweep a parameter, record the steady level of a
/// reporter).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ANALYSIS_STEADYSTATE_H
#define PSG_ANALYSIS_STEADYSTATE_H

#include "core/BatchEngine.h"
#include "ode/OdeSolver.h"

namespace psg {

/// Steady-state search configuration.
struct SteadyStateOptions {
  double InitialWindow = 1.0; ///< First integration window length.
  double MaxTime = 1e6;       ///< Give up beyond this time.
  /// Steady when the tolerance-weighted RMS norm of dy/dt times
  /// TimeScale drops below 1 (i.e. the state would drift by less than
  /// one tolerance unit over TimeScale time units).
  double TimeScale = 100.0;
  SolverOptions Solver;
};

/// Outcome of a steady-state search.
struct SteadyStateResult {
  bool Reached = false;
  double Time = 0.0;          ///< Where the search stopped.
  std::vector<double> State;  ///< y at that time.
  double ResidualNorm = 0.0;  ///< Final scaled ||f|| (< 1 when Reached).
  IntegrationStats Stats;
};

/// Searches for a steady state of \p Sys from \p Y0 using \p Solver (an
/// implicit solver is recommended; steady approaches are stiff).
SteadyStateResult findSteadyState(const OdeSystem &Sys,
                                  const std::vector<double> &Y0,
                                  OdeSolver &Solver,
                                  const SteadyStateOptions &Opts);

/// Dose-response curve: for each value of the (single) axis of
/// \p Space, the steady level of \p Reporter. Points that do not reach
/// steady state get NaN.
struct DoseResponse {
  std::vector<double> Dose;
  std::vector<double> Response;
  size_t Unconverged = 0;
};

DoseResponse computeDoseResponse(const ParameterSpace &Space,
                                 size_t Resolution, size_t Reporter,
                                 const SteadyStateOptions &Opts);

} // namespace psg

#endif // PSG_ANALYSIS_STEADYSTATE_H
