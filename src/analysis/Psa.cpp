//===- analysis/Psa.cpp ---------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Psa.h"

#include "analysis/Oscillation.h"
#include "analysis/StreamReducers.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace psg;

namespace {
/// Failure gate shared by the reducers: a failed integration must not
/// leak NaN/garbage end-states into sweep maps, so it reduces to 0 and
/// is counted (`psg.analysis.reduce_failures`) to keep map-level zeros
/// attributable.
bool reducibleOutcome(const SimulationOutcome &Outcome) {
  if (!Outcome.Result.ok()) {
    static Counter &ReduceFailures =
        metrics().counter("psg.analysis.reduce_failures");
    ReduceFailures.add();
    return false;
  }
  return !Outcome.Dynamics.empty();
}
} // namespace

TrajectoryReducer psg::finalValueReducer(size_t Species) {
  return [Species](const SimulationOutcome &Outcome) {
    if (!reducibleOutcome(Outcome))
      return 0.0;
    return Outcome.Dynamics.value(Outcome.Dynamics.numSamples() - 1, Species);
  };
}

TrajectoryReducer psg::oscillationAmplitudeReducer(size_t Species) {
  return [Species](const SimulationOutcome &Outcome) {
    if (!reducibleOutcome(Outcome))
      return 0.0;
    return analyzeOscillation(Outcome.Dynamics, Species).Amplitude;
  };
}

Psa1dResult psg::runPsa1d(BatchEngine &Engine, const ParameterSpace &Space,
                          size_t Resolution,
                          const TrajectoryReducer &Reduce) {
  assert(Space.numAxes() == 1 && "PSA-1D needs exactly one axis");
  TraceSpan Span("analysis.psa1d", "analysis");
  MetricsRegistry &M = metrics();
  M.counter("psg.analysis.psa1d.runs").add();
  Psa1dResult Result;
  Result.AxisValues = Space.gridAxisValues(0, Resolution);
  std::unique_ptr<PointGenerator> Gen =
      makeGridGenerator(Space, {Resolution});
  M.counter("psg.analysis.psa.points").add(Gen->totalPoints());
  Result.Metric.reserve(Resolution);
  ReducingSink Sink(Reduce, Result.Metric);
  Result.Report = Engine.stream(Space, *Gen, Sink);
  M.histogram("psg.analysis.psa.reduce_wall_s").record(Sink.reduceSeconds());
  return Result;
}

Psa2dResult psg::runPsa2d(BatchEngine &Engine, const ParameterSpace &Space,
                          size_t Res0, size_t Res1,
                          const TrajectoryReducer &Reduce) {
  assert(Space.numAxes() == 2 && "PSA-2D needs exactly two axes");
  TraceSpan Span("analysis.psa2d", "analysis");
  MetricsRegistry &M = metrics();
  M.counter("psg.analysis.psa2d.runs").add();
  Psa2dResult Result;
  // Axis labels come straight from the space; the grid generator emits
  // the cartesian product with axis1 fastest, which matches the
  // row-major layout of Psa2dResult.
  Result.Axis0Values = Space.gridAxisValues(0, Res0);
  Result.Axis1Values = Space.gridAxisValues(1, Res1);
  std::unique_ptr<PointGenerator> Gen =
      makeGridGenerator(Space, {Res0, Res1});
  M.counter("psg.analysis.psa.points").add(Gen->totalPoints());
  Result.Metric.reserve(Gen->totalPoints());
  ReducingSink Sink(Reduce, Result.Metric);
  Result.Report = Engine.stream(Space, *Gen, Sink);
  M.histogram("psg.analysis.psa.reduce_wall_s").record(Sink.reduceSeconds());
  return Result;
}
