//===- analysis/Psa.cpp ---------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "analysis/Psa.h"

#include "analysis/Oscillation.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace psg;

TrajectoryReducer psg::finalValueReducer(size_t Species) {
  return [Species](const SimulationOutcome &Outcome) {
    if (Outcome.Dynamics.empty())
      return 0.0;
    return Outcome.Dynamics.value(Outcome.Dynamics.numSamples() - 1, Species);
  };
}

TrajectoryReducer psg::oscillationAmplitudeReducer(size_t Species) {
  return [Species](const SimulationOutcome &Outcome) {
    if (!Outcome.Result.ok() || Outcome.Dynamics.empty())
      return 0.0;
    return analyzeOscillation(Outcome.Dynamics, Species).Amplitude;
  };
}

Psa1dResult psg::runPsa1d(BatchEngine &Engine, const ParameterSpace &Space,
                          size_t Resolution,
                          const TrajectoryReducer &Reduce) {
  assert(Space.numAxes() == 1 && "PSA-1D needs exactly one axis");
  TraceSpan Span("analysis.psa1d", "analysis");
  MetricsRegistry &M = metrics();
  M.counter("psg.analysis.psa1d.runs").add();
  Psa1dResult Result;
  std::vector<std::vector<double>> Points = Space.gridSample({Resolution});
  M.counter("psg.analysis.psa.points").add(Points.size());
  Result.AxisValues.reserve(Resolution);
  for (const auto &Point : Points)
    Result.AxisValues.push_back(Point[0]);
  Result.Report = Engine.run(Space, Points);
  WallTimer ReduceTimer;
  Result.Metric.reserve(Points.size());
  for (const SimulationOutcome &O : Result.Report.Outcomes)
    Result.Metric.push_back(Reduce(O));
  M.histogram("psg.analysis.psa.reduce_wall_s").record(ReduceTimer.seconds());
  return Result;
}

Psa2dResult psg::runPsa2d(BatchEngine &Engine, const ParameterSpace &Space,
                          size_t Res0, size_t Res1,
                          const TrajectoryReducer &Reduce) {
  assert(Space.numAxes() == 2 && "PSA-2D needs exactly two axes");
  TraceSpan Span("analysis.psa2d", "analysis");
  MetricsRegistry &M = metrics();
  M.counter("psg.analysis.psa2d.runs").add();
  Psa2dResult Result;
  // gridSample produces the cartesian product with axis1 fastest, which
  // matches the row-major layout of Psa2dResult.
  std::vector<std::vector<double>> Points = Space.gridSample({Res0, Res1});
  M.counter("psg.analysis.psa.points").add(Points.size());
  Result.Axis0Values.reserve(Res0);
  Result.Axis1Values.reserve(Res1);
  for (size_t I = 0; I < Res0; ++I)
    Result.Axis0Values.push_back(Points[I * Res1][0]);
  for (size_t J = 0; J < Res1; ++J)
    Result.Axis1Values.push_back(Points[J][1]);
  Result.Report = Engine.run(Space, Points);
  WallTimer ReduceTimer;
  Result.Metric.reserve(Points.size());
  for (const SimulationOutcome &O : Result.Report.Outcomes)
    Result.Metric.push_back(Reduce(O));
  M.histogram("psg.analysis.psa.reduce_wall_s").record(ReduceTimer.seconds());
  return Result;
}
