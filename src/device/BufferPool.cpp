//===- device/BufferPool.cpp ----------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "device/BufferPool.h"

#include "support/Metrics.h"

#include <cstring>

using namespace psg;

size_t BufferPool::binBytes(size_t Bytes) {
  size_t Bin = MinBinBytes;
  while (Bin < Bytes)
    Bin <<= 1;
  return Bin;
}

static size_t binIndex(size_t BinSize) {
  size_t Index = 0;
  for (size_t Bin = BufferPool::MinBinBytes; Bin < BinSize; Bin <<= 1)
    ++Index;
  return Index;
}

std::vector<unsigned char> BufferPool::acquire(size_t Bytes) {
  const size_t Bin = binBytes(Bytes);
  const size_t Index = binIndex(Bin);
  {
    std::lock_guard<std::mutex> Lock(Mx);
    if (Index < Bins.size() && !Bins[Index].empty()) {
      std::vector<unsigned char> Storage = std::move(Bins[Index].back());
      Bins[Index].pop_back();
      CachedBytes -= Storage.size();
      Counters.PoolBytesCached.store(CachedBytes, std::memory_order_relaxed);
      Counters.PoolHits.fetch_add(1, std::memory_order_relaxed);
      metrics().counter("psg.device.pool_hits").add();
      metrics().gauge("psg.device.pool_bytes_cached").set(
          static_cast<double>(CachedBytes));
      // Reused storage carries the previous tenant's bytes; the
      // allocate() contract promises zero fill.
      std::memset(Storage.data(), 0, Storage.size());
      return Storage;
    }
  }
  Counters.PoolMisses.fetch_add(1, std::memory_order_relaxed);
  metrics().counter("psg.device.pool_misses").add();
  return std::vector<unsigned char>(Bin, 0);
}

void BufferPool::release(std::vector<unsigned char> Storage) {
  if (Storage.empty())
    return;
  const size_t Index = binIndex(Storage.size());
  std::lock_guard<std::mutex> Lock(Mx);
  if (CachedBytes + Storage.size() > MaxCachedBytes)
    return; // Over the ceiling (or pooling disabled): free to the system.
  if (Bins.size() <= Index)
    Bins.resize(Index + 1);
  CachedBytes += Storage.size();
  Counters.PoolBytesCached.store(CachedBytes, std::memory_order_relaxed);
  metrics().gauge("psg.device.pool_bytes_cached").set(
      static_cast<double>(CachedBytes));
  Bins[Index].push_back(std::move(Storage));
}

void BufferPool::drain() {
  std::lock_guard<std::mutex> Lock(Mx);
  Bins.clear();
  CachedBytes = 0;
  Counters.PoolBytesCached.store(0, std::memory_order_relaxed);
  metrics().gauge("psg.device.pool_bytes_cached").set(0.0);
}
