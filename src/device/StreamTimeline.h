//===- device/StreamTimeline.h - Measured stream overlap --------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measuring real (not modeled) overlap between pipeline stages. Stream
/// ops are bracketed with host timestamps taken on the stream's own
/// execution thread — FIFO order guarantees the brackets enclose the op
/// — and the resulting wall-clock intervals are intersected afterwards:
/// the seconds a transfer interval spends inside any compute interval
/// are the seconds that transfer was actually hidden. The sharded
/// executor, the single-device engine window and bench_micro_device all
/// report overlap through this helper, so the number means the same
/// thing everywhere.
///
/// Also provides StreamFence, the host-side completion primitive the
/// double-buffered pipelines retire shards with: a final hostTask on
/// the download stream signals it, and the staging thread waits without
/// needing a host-blocking event API on Stream.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_DEVICE_STREAMTIMELINE_H
#define PSG_DEVICE_STREAMTIMELINE_H

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace psg {

/// One half-open wall-clock span [Begin, End) on the steady clock.
struct StageInterval {
  std::chrono::steady_clock::time_point Begin{};
  std::chrono::steady_clock::time_point End{};

  void begin() { Begin = std::chrono::steady_clock::now(); }
  void end() { End = std::chrono::steady_clock::now(); }

  double seconds() const {
    return End > Begin ? std::chrono::duration<double>(End - Begin).count()
                       : 0.0;
  }
};

/// Collects transfer and compute intervals over a pipelined run and
/// computes, at the end, how many transfer seconds were genuinely
/// hidden under compute. Not thread-safe: record from one thread at a
/// time (each retire happens on the owning device thread), or merge
/// per-thread instances.
class StreamTimeline {
public:
  void addTransfer(const StageInterval &I) { maybePush(Transfers, I); }
  void addCompute(const StageInterval &I) { maybePush(Computes, I); }

  /// Total wall seconds of all transfer intervals.
  double transferSeconds() const;

  /// Transfer seconds overlapped by at least one compute interval.
  double hiddenTransferSeconds() const;

  /// hidden / transfer, 0 when nothing transferred.
  double overlapRatio() const;

  size_t transferCount() const { return Transfers.size(); }

private:
  static void maybePush(std::vector<StageInterval> &Out,
                        const StageInterval &I) {
    if (I.End > I.Begin)
      Out.push_back(I);
  }

  std::vector<StageInterval> Transfers;
  std::vector<StageInterval> Computes;
};

/// Host-side completion flag signaled from a stream op. wait() gives
/// the waiter a happens-before edge over everything the signaling op
/// observed.
class StreamFence {
public:
  void signal() {
    {
      std::lock_guard<std::mutex> Lock(Mx);
      Signaled = true;
    }
    Cv.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> Lock(Mx);
    Cv.wait(Lock, [this] { return Signaled; });
  }

  bool signaled() {
    std::lock_guard<std::mutex> Lock(Mx);
    return Signaled;
  }

private:
  std::mutex Mx;
  std::condition_variable Cv;
  bool Signaled = false;
};

} // namespace psg

#endif // PSG_DEVICE_STREAMTIMELINE_H
