//===- device/DeviceRuntime.cpp -------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "device/DeviceRuntime.h"

#include "device/AsyncHostRuntime.h"
#include "device/HostRuntime.h"
#ifdef PSG_WITH_CUDA
#include "device/CudaRuntime.h"
#endif

using namespace psg;

// Anchor the vtables of the interface classes in this translation unit.
DeviceBuffer::~DeviceBuffer() = default;
Event::~Event() = default;
Stream::~Stream() = default;
DeviceRuntime::~DeviceRuntime() = default;

const char *psg::runtimeKindName(RuntimeKind Kind) {
  switch (Kind) {
  case RuntimeKind::Host:
    return "host";
  case RuntimeKind::HostAsync:
    return "host-async";
  case RuntimeKind::Cuda:
    return "cuda";
  }
  return "unknown";
}

ErrorOr<RuntimeKind> psg::parseRuntimeKind(const std::string &Name) {
  if (Name == "host")
    return RuntimeKind::Host;
  if (Name == "host-async")
    return RuntimeKind::HostAsync;
  if (Name == "cuda")
    return RuntimeKind::Cuda;
  return ErrorOr<RuntimeKind>::failure(
      "unknown runtime '" + Name + "' (known: host, host-async, cuda)");
}

bool psg::cudaRuntimeCompiledIn() {
#ifdef PSG_WITH_CUDA
  return true;
#else
  return false;
#endif
}

ErrorOr<std::unique_ptr<DeviceRuntime>>
psg::createDeviceRuntime(RuntimeKind Kind, DeviceSpec Spec,
                         unsigned HostWorkers, const RuntimeOptions &Options) {
  switch (Kind) {
  case RuntimeKind::Host:
    return std::unique_ptr<DeviceRuntime>(
        std::make_unique<HostRuntime>(std::move(Spec), HostWorkers));
  case RuntimeKind::HostAsync:
    return std::unique_ptr<DeviceRuntime>(std::make_unique<AsyncHostRuntime>(
        std::move(Spec), HostWorkers, Options));
  case RuntimeKind::Cuda:
#ifdef PSG_WITH_CUDA
    return createCudaRuntime(std::move(Spec));
#else
    return ErrorOr<std::unique_ptr<DeviceRuntime>>::failure(
        "cuda runtime not compiled in (rebuild with -DPSG_WITH_CUDA=ON)");
#endif
  }
  return ErrorOr<std::unique_ptr<DeviceRuntime>>::failure(
      "unknown runtime kind");
}
