//===- device/AsyncHostRuntime.cpp ----------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "device/AsyncHostRuntime.h"

#include "support/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstring>

using namespace psg;

//===----------------------------------------------------------------------===//
// AsyncHostRuntime
//===----------------------------------------------------------------------===//

AsyncHostRuntime::AsyncHostRuntime(DeviceSpec Spec, unsigned HostWorkers,
                                   const RuntimeOptions &Options)
    : Device(std::move(Spec), HostWorkers),
      Pool(Counters, Options.PoolMaxCachedBytes) {}

AsyncHostRuntime::~AsyncHostRuntime() {
  // Streams must already be destroyed (they reference this runtime),
  // but a drain here is harmless and the pool must not outlive us.
  synchronize();
  Pool.drain();
}

std::unique_ptr<Stream> AsyncHostRuntime::createStream(std::string Name) {
  Counters.StreamsCreated.fetch_add(1, std::memory_order_relaxed);
  metrics().counter("psg.device.streams").add();
  auto S = std::make_unique<AsyncStream>(*this, std::move(Name));
  std::lock_guard<std::mutex> Lock(StreamsMx);
  LiveStreams.push_back(S.get());
  return S;
}

std::unique_ptr<Event> AsyncHostRuntime::createEvent() {
  return std::make_unique<AsyncEvent>();
}

std::unique_ptr<DeviceBuffer> AsyncHostRuntime::allocate(size_t Bytes) {
  Counters.recordAllocation(Bytes);
  MetricsRegistry &M = metrics();
  M.counter("psg.device.buffers").add();
  M.counter("psg.device.alloc_bytes").add(Bytes);
  return std::make_unique<AsyncPooledBuffer>(*this, Bytes);
}

LaunchRecord
AsyncHostRuntime::launchKernel(const LaunchConfig &Config,
                               FunctionRef<void(KernelContext &)> Body) {
  return runGrid(Config, Body);
}

LaunchRecord
AsyncHostRuntime::runGrid(const LaunchConfig &Config,
                          FunctionRef<void(KernelContext &)> Body) {
  Counters.KernelLaunches.fetch_add(1, std::memory_order_relaxed);
  metrics().counter("psg.device.kernel_launches").add();
  std::lock_guard<std::mutex> Lock(LaunchMx);
  return Device.launchKernel(Config.KernelName, Config.GridThreads,
                             Config.BlockDim, Body);
}

void AsyncHostRuntime::synchronize() {
  std::vector<AsyncStream *> Snapshot;
  {
    std::lock_guard<std::mutex> Lock(StreamsMx);
    Snapshot = LiveStreams;
  }
  for (AsyncStream *S : Snapshot)
    S->synchronize();
}

void AsyncHostRuntime::unregisterStream(AsyncStream *S) {
  std::lock_guard<std::mutex> Lock(StreamsMx);
  LiveStreams.erase(std::remove(LiveStreams.begin(), LiveStreams.end(), S),
                    LiveStreams.end());
}

AsyncPooledBuffer::~AsyncPooledBuffer() {
  Parent.Counters.recordFree(Requested);
  Parent.Pool.release(std::move(Storage));
}

//===----------------------------------------------------------------------===//
// AsyncStream
//===----------------------------------------------------------------------===//

AsyncStream::AsyncStream(AsyncHostRuntime &Parent, std::string Name)
    : Parent(Parent), StreamName(std::move(Name)),
      Worker([this] { workerLoop(); }) {}

AsyncStream::~AsyncStream() {
  synchronize();
  {
    std::lock_guard<std::mutex> Lock(Mx);
    ShuttingDown = true;
  }
  HasWork.notify_all();
  Worker.join();
  Parent.unregisterStream(this);
}

void AsyncStream::workerLoop() {
  for (;;) {
    std::function<void()> Op;
    {
      std::unique_lock<std::mutex> Lock(Mx);
      HasWork.wait(Lock, [this] { return ShuttingDown || !Ops.empty(); });
      if (Ops.empty())
        return; // Shutting down with a drained queue.
      Op = std::move(Ops.front());
      Ops.pop_front();
      Busy = true;
    }
    // Run outside the lock so enqueues keep flowing. Ops must not
    // throw: a pipeline stage that can fail catches internally and
    // reports through its own channel (the executor's Failed flag, the
    // engine's exception slot).
    Op();
    {
      std::lock_guard<std::mutex> Lock(Mx);
      Busy = false;
      if (Ops.empty())
        Idle.notify_all();
    }
  }
}

void AsyncStream::enqueue(std::function<void()> Op) {
  {
    std::lock_guard<std::mutex> Lock(Mx);
    assert(!ShuttingDown && "enqueue on a destroyed stream");
    Ops.push_back(std::move(Op));
  }
  HasWork.notify_one();
}

void AsyncStream::synchronize() {
  std::unique_lock<std::mutex> Lock(Mx);
  Idle.wait(Lock, [this] { return Ops.empty() && !Busy; });
}

void AsyncStream::upload(DeviceBuffer &Dst, const void *Src, size_t Bytes,
                         size_t DstOffsetBytes) {
  assert(DstOffsetBytes + Bytes <= Dst.sizeBytes() &&
         "upload outside the buffer");
  DeviceBuffer *DstP = &Dst;
  enqueue([this, DstP, Src, Bytes, DstOffsetBytes] {
    if (Bytes != 0)
      std::memcpy(static_cast<unsigned char *>(DstP->deviceData()) +
                      DstOffsetBytes,
                  Src, Bytes);
    Parent.Counters.Uploads.fetch_add(1, std::memory_order_relaxed);
    Parent.Counters.UploadBytes.fetch_add(Bytes, std::memory_order_relaxed);
    metrics().counter("psg.device.upload_bytes").add(Bytes);
  });
}

void AsyncStream::download(const DeviceBuffer &Src, void *Dst, size_t Bytes,
                           size_t SrcOffsetBytes) {
  assert(SrcOffsetBytes + Bytes <= Src.sizeBytes() &&
         "download outside the buffer");
  const DeviceBuffer *SrcP = &Src;
  enqueue([this, SrcP, Dst, Bytes, SrcOffsetBytes] {
    if (Bytes != 0)
      std::memcpy(Dst,
                  static_cast<const unsigned char *>(SrcP->deviceData()) +
                      SrcOffsetBytes,
                  Bytes);
    Parent.Counters.Downloads.fetch_add(1, std::memory_order_relaxed);
    Parent.Counters.DownloadBytes.fetch_add(Bytes, std::memory_order_relaxed);
    metrics().counter("psg.device.download_bytes").add(Bytes);
  });
}

LaunchRecord AsyncStream::launch(const LaunchConfig &Config,
                                 std::function<void(KernelContext &)> Body) {
  enqueue([this, Config, Body = std::move(Body)] {
    Parent.runGrid(Config, [&Body](KernelContext &Ctx) { Body(Ctx); });
  });
  // The caller gets the geometry predicted from the configuration —
  // identical to what the executed grid reports except for child-grid
  // counts, which land in deviceCounters() once the grid retires.
  LaunchRecord Record;
  Record.KernelName = Config.KernelName;
  Record.LogicalThreads = Config.GridThreads;
  Record.Blocks =
      Config.BlockDim ? (Config.GridThreads + Config.BlockDim - 1) /
                            Config.BlockDim
                      : 0;
  unsigned WarpSize = Parent.spec().WarpSize ? Parent.spec().WarpSize : 32;
  Record.Warps = (Config.GridThreads + WarpSize - 1) / WarpSize;
  return Record;
}

void AsyncStream::hostTask(const std::string &Name,
                           std::function<void()> Task) {
  (void)Name;
  enqueue([this, Task = std::move(Task)] {
    Task();
    Parent.Counters.HostTasks.fetch_add(1, std::memory_order_relaxed);
    metrics().counter("psg.device.host_tasks").add();
  });
}

void AsyncStream::record(Event &E) {
  auto &AE = static_cast<AsyncEvent &>(E);
  // Issue the ticket at enqueue time: recorded() flips immediately and
  // a wait enqueued after this call — on any stream — targets at least
  // this position (CUDA's record/query/wait ordering). The op shares
  // ownership of the tag state so it stays valid even if the event
  // object is destroyed before the op executes, and notifies under the
  // lock so no waiter can observe completion and free the state while
  // the broadcast is still touching it.
  uint64_t Ticket = AE.St->Tickets.fetch_add(1, std::memory_order_acq_rel) + 1;
  Parent.Counters.EventsRecorded.fetch_add(1, std::memory_order_relaxed);
  metrics().counter("psg.device.events_recorded").add();
  enqueue([St = AE.St, Ticket] {
    std::lock_guard<std::mutex> Lock(St->Mx);
    if (Ticket > St->Completed)
      St->Completed = Ticket;
    St->Cv.notify_all();
  });
}

void AsyncStream::wait(const Event &E) {
  const auto &AE = static_cast<const AsyncEvent &>(E);
  Parent.Counters.EventWaits.fetch_add(1, std::memory_order_relaxed);
  metrics().counter("psg.device.event_waits").add();
  // Capture the event position visible now; a never-recorded event is
  // a defined no-op (CUDA semantics).
  uint64_t Target = AE.St->Tickets.load(std::memory_order_acquire);
  if (Target == 0)
    return;
  enqueue([St = AE.St, Target] {
    std::unique_lock<std::mutex> Lock(St->Mx);
    St->Cv.wait(Lock, [&St, Target] { return St->Completed >= Target; });
  });
}
