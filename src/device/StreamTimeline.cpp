//===- device/StreamTimeline.cpp ------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "device/StreamTimeline.h"

#include <algorithm>

using namespace psg;

double StreamTimeline::transferSeconds() const {
  double Total = 0.0;
  for (const StageInterval &T : Transfers)
    Total += T.seconds();
  return Total;
}

double StreamTimeline::hiddenTransferSeconds() const {
  if (Transfers.empty() || Computes.empty())
    return 0.0;

  // Merge compute intervals into a disjoint, sorted cover so a transfer
  // overlapped by several compute spans is not double counted.
  std::vector<StageInterval> Cover = Computes;
  std::sort(Cover.begin(), Cover.end(),
            [](const StageInterval &A, const StageInterval &B) {
              return A.Begin < B.Begin;
            });
  std::vector<StageInterval> Merged;
  for (const StageInterval &C : Cover) {
    if (!Merged.empty() && C.Begin <= Merged.back().End)
      Merged.back().End = std::max(Merged.back().End, C.End);
    else
      Merged.push_back(C);
  }

  double Hidden = 0.0;
  for (const StageInterval &T : Transfers)
    for (const StageInterval &C : Merged) {
      if (C.Begin >= T.End)
        break;
      if (C.End <= T.Begin)
        continue;
      auto Lo = std::max(T.Begin, C.Begin);
      auto Hi = std::min(T.End, C.End);
      if (Hi > Lo)
        Hidden += std::chrono::duration<double>(Hi - Lo).count();
    }
  return Hidden;
}

double StreamTimeline::overlapRatio() const {
  double Total = transferSeconds();
  if (Total <= 0.0)
    return 0.0;
  return hiddenTransferSeconds() / Total;
}
