//===- device/HostRuntime.cpp ---------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "device/HostRuntime.h"

#include "support/Metrics.h"

#include <cassert>
#include <cstring>

using namespace psg;

HostBuffer::~HostBuffer() { Parent.Counters.recordFree(Storage.size()); }

std::unique_ptr<Stream> HostRuntime::createStream(std::string Name) {
  Counters.StreamsCreated.fetch_add(1, std::memory_order_relaxed);
  metrics().counter("psg.device.streams").add();
  return std::make_unique<HostStream>(*this, std::move(Name));
}

std::unique_ptr<Event> HostRuntime::createEvent() {
  return std::make_unique<HostEvent>();
}

std::unique_ptr<DeviceBuffer> HostRuntime::allocate(size_t Bytes) {
  Counters.recordAllocation(Bytes);
  MetricsRegistry &M = metrics();
  M.counter("psg.device.buffers").add();
  M.counter("psg.device.alloc_bytes").add(Bytes);
  return std::make_unique<HostBuffer>(*this, Bytes);
}

LaunchRecord
HostRuntime::launchKernel(const LaunchConfig &Config,
                          FunctionRef<void(KernelContext &)> Body) {
  Counters.KernelLaunches.fetch_add(1, std::memory_order_relaxed);
  metrics().counter("psg.device.kernel_launches").add();
  return Device.launchKernel(Config.KernelName, Config.GridThreads,
                             Config.BlockDim, Body);
}

void HostStream::upload(DeviceBuffer &Dst, const void *Src, size_t Bytes,
                        size_t DstOffsetBytes) {
  assert(DstOffsetBytes + Bytes <= Dst.sizeBytes() &&
         "upload outside the buffer");
  if (Bytes != 0)
    std::memcpy(static_cast<unsigned char *>(Dst.deviceData()) +
                    DstOffsetBytes,
                Src, Bytes);
  Parent.Counters.Uploads.fetch_add(1, std::memory_order_relaxed);
  Parent.Counters.UploadBytes.fetch_add(Bytes, std::memory_order_relaxed);
  metrics().counter("psg.device.upload_bytes").add(Bytes);
}

void HostStream::download(const DeviceBuffer &Src, void *Dst, size_t Bytes,
                          size_t SrcOffsetBytes) {
  assert(SrcOffsetBytes + Bytes <= Src.sizeBytes() &&
         "download outside the buffer");
  if (Bytes != 0)
    std::memcpy(Dst,
                static_cast<const unsigned char *>(Src.deviceData()) +
                    SrcOffsetBytes,
                Bytes);
  Parent.Counters.Downloads.fetch_add(1, std::memory_order_relaxed);
  Parent.Counters.DownloadBytes.fetch_add(Bytes, std::memory_order_relaxed);
  metrics().counter("psg.device.download_bytes").add(Bytes);
}

LaunchRecord HostStream::launch(const LaunchConfig &Config,
                                std::function<void(KernelContext &)> Body) {
  return Parent.launchKernel(
      Config, [&Body](KernelContext &Ctx) { Body(Ctx); });
}

void HostStream::hostTask(const std::string &Name,
                          std::function<void()> Task) {
  (void)Name;
  Task();
  Parent.Counters.HostTasks.fetch_add(1, std::memory_order_relaxed);
  metrics().counter("psg.device.host_tasks").add();
}

void HostStream::record(Event &E) {
  static_cast<HostEvent &>(E).Recorded.store(true, std::memory_order_release);
  Parent.Counters.EventsRecorded.fetch_add(1, std::memory_order_relaxed);
  metrics().counter("psg.device.events_recorded").add();
}

void HostStream::wait(const Event &E) {
  // Eager streams have already completed everything a recorded event
  // covers; waiting on a never-recorded event is a defined no-op (CUDA
  // semantics). Only the accounting remains.
  (void)E;
  Parent.Counters.EventWaits.fetch_add(1, std::memory_order_relaxed);
  metrics().counter("psg.device.event_waits").add();
}
