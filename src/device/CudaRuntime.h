//===- device/CudaRuntime.h - Real-GPU runtime seam -------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CUDA implementation seam of the device runtime. Memory, streams
/// and events map directly onto the CUDA runtime API; kernel launch is
/// the one part that cannot be generic — the C++ kernel bodies the
/// simulators pass today are host callables, so until the native kernel
/// port lands, launch() falls back to host execution after the data
/// lives in device memory and would be wrong. CudaRuntime therefore
/// refuses to construct unless a working device is present AND refuses
/// launch() with a fatal error, making the seam impossible to ship
/// half-working by accident.
///
/// Built only under PSG_WITH_CUDA. Without a CUDA toolkit the stub
/// declarations in device/CudaStubs.h stand in for <cuda_runtime.h> so
/// the configuration still compiles (the CI stub leg); construction
/// then fails with the stub's "no device" error.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_DEVICE_CUDARUNTIME_H
#define PSG_DEVICE_CUDARUNTIME_H

#include "device/DeviceRuntime.h"

namespace psg {

/// Creates the CUDA runtime over \p Spec, or fails with the CUDA error
/// string when no usable device exists (always, under the stubs). The
/// definition lives in CudaRuntime.cpp so CUDA types stay out of every
/// other translation unit.
ErrorOr<std::unique_ptr<DeviceRuntime>> createCudaRuntime(DeviceSpec Spec);

} // namespace psg

#endif // PSG_DEVICE_CUDARUNTIME_H
