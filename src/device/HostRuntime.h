//===- device/HostRuntime.h - Modeled-device runtime ------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The host implementation of the device runtime: the modeled device of
/// the paper reproduction. Kernel launches execute on the owned
/// vgpu::VirtualDevice (real host integration, modeled device timing),
/// device buffers are zero-initialized host allocations, and stream
/// operations complete eagerly — each op finishes before the enqueue
/// call returns, which is a legal scheduling of an ordered FIFO queue
/// and keeps results bit-exact with the pre-runtime code while adding
/// no threads.
///
/// Transfer and launch volumes are mirrored into the metrics registry
/// as `psg.device.*` so sweep reports can show per-run upload/download
/// traffic next to the modeled PCIe/overlap numbers of the cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_DEVICE_HOSTRUNTIME_H
#define PSG_DEVICE_HOSTRUNTIME_H

#include "device/DeviceRuntime.h"

#include <vector>

namespace psg {

/// DeviceRuntime over the virtual device. Externally synchronized, like
/// the VirtualDevice it wraps.
class HostRuntime final : public DeviceRuntime {
public:
  /// \p HostWorkers = 0 uses the hardware concurrency.
  explicit HostRuntime(DeviceSpec Spec, unsigned HostWorkers = 0)
      : Device(std::move(Spec), HostWorkers) {}

  const char *name() const override { return "host"; }
  const DeviceSpec &spec() const override { return Device.spec(); }
  unsigned hostParallelism() const override {
    return Device.hostParallelism();
  }

  std::unique_ptr<Stream> createStream(std::string Name) override;
  std::unique_ptr<Event> createEvent() override;
  std::unique_ptr<DeviceBuffer> allocate(size_t Bytes) override;

  LaunchRecord launchKernel(const LaunchConfig &Config,
                            FunctionRef<void(KernelContext &)> Body) override;

  /// All host streams are eager, so the runtime is always drained.
  void synchronize() override {}

  const DeviceCounters &deviceCounters() const override {
    return Device.counters();
  }
  RuntimeCounters counters() const override { return Counters.snapshot(); }

  /// The wrapped virtual device (for cost-model calibration paths that
  /// need the raw launch accounting).
  VirtualDevice &virtualDevice() { return Device; }

private:
  friend class HostStream;
  friend class HostBuffer;

  VirtualDevice Device;
  AtomicRuntimeCounters Counters;
};

/// Host "device memory": a zero-initialized byte vector. deviceData()
/// is the storage itself, so host-runtime kernels read and write it in
/// place and downloads are plain memcpy.
class HostBuffer final : public DeviceBuffer {
public:
  HostBuffer(HostRuntime &Parent, size_t Bytes)
      : Parent(Parent), Storage(Bytes, 0) {}
  ~HostBuffer() override;

  size_t sizeBytes() const override { return Storage.size(); }
  void *deviceData() override { return Storage.data(); }

private:
  HostRuntime &Parent;
  std::vector<unsigned char> Storage;
};

/// Host event: a completion flag. Because host streams are eager, a
/// recorded event is always already "reached"; wait() only validates
/// ordering (recorded-before-waited is checked by the conformance
/// suite through the counters).
class HostEvent final : public Event {
public:
  bool recorded() const override {
    return Recorded.load(std::memory_order_acquire);
  }

private:
  friend class HostStream;
  std::atomic<bool> Recorded{false};
};

/// Host stream: eager FIFO. Every enqueue runs the operation to
/// completion in program order on the calling thread — kernels still
/// spread over the virtual device's pool — so FIFO order, synchronize()
/// and event semantics hold trivially and bit-exactness with direct
/// VirtualDevice use is preserved.
class HostStream final : public Stream {
public:
  HostStream(HostRuntime &Parent, std::string Name)
      : Parent(Parent), StreamName(std::move(Name)) {}

  const std::string &name() const override { return StreamName; }

  void upload(DeviceBuffer &Dst, const void *Src, size_t Bytes,
              size_t DstOffsetBytes = 0) override;
  void download(const DeviceBuffer &Src, void *Dst, size_t Bytes,
                size_t SrcOffsetBytes = 0) override;
  LaunchRecord launch(const LaunchConfig &Config,
                      std::function<void(KernelContext &)> Body) override;
  void hostTask(const std::string &Name, std::function<void()> Task) override;
  void record(Event &E) override;
  void wait(const Event &E) override;
  void synchronize() override {}

private:
  HostRuntime &Parent;
  std::string StreamName;
};

} // namespace psg

#endif // PSG_DEVICE_HOSTRUNTIME_H
