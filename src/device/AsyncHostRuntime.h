//===- device/AsyncHostRuntime.h - Truly async host runtime -----*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The asynchronous implementation of the device runtime over the same
/// modeled vgpu::VirtualDevice as HostRuntime. Where HostRuntime's
/// streams complete every op at enqueue, AsyncHostRuntime streams are
/// worker-thread-backed FIFO queues: enqueue returns immediately and
/// the op runs later on the stream's own thread, so uploads, kernel
/// stages and downloads on different streams genuinely overlap in wall
/// clock. Events are epoch-tagged condition waits — record() stamps the
/// event with a fresh ticket at enqueue and the executed op publishes
/// completion; wait() captures the newest ticket at enqueue (zero
/// tickets = never recorded = no-op, CUDA semantics) and blocks the
/// waiting stream's worker until that ticket completes, which also
/// carries the happens-before edge TSan checks.
///
/// Device buffers come from a size-classed BufferPool so the
/// per-shard allocate/free of the double-buffered pipelines stops
/// churning the system allocator; the pool drains when the runtime is
/// destroyed.
///
/// Kernel grids — stream launches and the blocking default-stream
/// path — are serialized on one mutex: the modeled device has a single
/// host pool, exactly as a real GPU serializes grids that saturate it.
/// Numerical results stay bit-exact with HostRuntime because the same
/// kernels run on the same VirtualDevice; only the host-side schedule
/// changes.
///
/// This runtime is the semantics template for the real CUDA backend:
/// CudaRuntime must be observably indistinguishable from it under the
/// conformance suite in tests/device_runtime_test.cpp.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_DEVICE_ASYNCHOSTRUNTIME_H
#define PSG_DEVICE_ASYNCHOSTRUNTIME_H

#include "device/BufferPool.h"
#include "device/DeviceRuntime.h"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace psg {

class AsyncStream;

/// DeviceRuntime with worker-thread streams and pooled buffers.
class AsyncHostRuntime final : public DeviceRuntime {
public:
  /// \p HostWorkers = 0 uses the hardware concurrency.
  explicit AsyncHostRuntime(DeviceSpec Spec, unsigned HostWorkers = 0,
                            const RuntimeOptions &Options = RuntimeOptions());
  ~AsyncHostRuntime() override;

  const char *name() const override { return "host-async"; }
  bool asynchronous() const override { return true; }
  const DeviceSpec &spec() const override { return Device.spec(); }
  unsigned hostParallelism() const override {
    return Device.hostParallelism();
  }

  std::unique_ptr<Stream> createStream(std::string Name) override;
  std::unique_ptr<Event> createEvent() override;
  std::unique_ptr<DeviceBuffer> allocate(size_t Bytes) override;

  LaunchRecord launchKernel(const LaunchConfig &Config,
                            FunctionRef<void(KernelContext &)> Body) override;

  /// Drains every live stream's queue.
  void synchronize() override;

  const DeviceCounters &deviceCounters() const override {
    return Device.counters();
  }
  RuntimeCounters counters() const override { return Counters.snapshot(); }

  /// The wrapped virtual device (cost-model calibration paths).
  VirtualDevice &virtualDevice() { return Device; }

private:
  friend class AsyncStream;
  friend class AsyncPooledBuffer;

  /// All grids funnel through here: one grid at a time on the shared
  /// host pool.
  LaunchRecord runGrid(const LaunchConfig &Config,
                       FunctionRef<void(KernelContext &)> Body);

  void unregisterStream(AsyncStream *S);

  VirtualDevice Device;
  AtomicRuntimeCounters Counters;
  BufferPool Pool;

  std::mutex LaunchMx; ///< Serializes kernel grids.
  std::mutex StreamsMx;
  std::vector<AsyncStream *> LiveStreams; ///< Guarded by StreamsMx.
};

/// Pool-backed "device memory". sizeBytes() is the requested size; the
/// underlying storage is the covering power-of-two bin and returns to
/// the pool on destruction.
class AsyncPooledBuffer final : public DeviceBuffer {
public:
  AsyncPooledBuffer(AsyncHostRuntime &Parent, size_t Bytes)
      : Parent(Parent), Requested(Bytes),
        Storage(Parent.Pool.acquire(Bytes)) {}
  ~AsyncPooledBuffer() override;

  size_t sizeBytes() const override { return Requested; }
  void *deviceData() override { return Storage.data(); }

private:
  AsyncHostRuntime &Parent;
  size_t Requested;
  std::vector<unsigned char> Storage;
};

/// Epoch-tagged event. Tickets are issued at record-enqueue time and
/// completed when the recording op executes; recorded() is true from
/// the moment a record was enqueued (the cudaEventRecord analogy).
///
/// The tag state is shared-owned: stream ops capture it by value, so
/// destroying the event while a record/wait op is still in flight is
/// defined (the CUDA contract — cudaEventDestroy with pending work
/// releases resources only once the work retires).
class AsyncEvent final : public Event {
public:
  bool recorded() const override {
    return St->Tickets.load(std::memory_order_acquire) > 0;
  }

private:
  friend class AsyncStream;
  struct State {
    std::atomic<uint64_t> Tickets{0}; ///< Newest issued ticket.
    std::mutex Mx;
    std::condition_variable Cv;
    uint64_t Completed = 0; ///< Newest completed ticket; guarded by Mx.
  };
  std::shared_ptr<State> St = std::make_shared<State>();
};

/// Worker-thread FIFO stream. Enqueue never blocks (unbounded queue);
/// synchronize() blocks the caller until the queue drained and the
/// in-flight op finished.
class AsyncStream final : public Stream {
public:
  AsyncStream(AsyncHostRuntime &Parent, std::string Name);
  ~AsyncStream() override;

  const std::string &name() const override { return StreamName; }

  void upload(DeviceBuffer &Dst, const void *Src, size_t Bytes,
              size_t DstOffsetBytes = 0) override;
  void download(const DeviceBuffer &Src, void *Dst, size_t Bytes,
                size_t SrcOffsetBytes = 0) override;
  LaunchRecord launch(const LaunchConfig &Config,
                      std::function<void(KernelContext &)> Body) override;
  void hostTask(const std::string &Name, std::function<void()> Task) override;
  void record(Event &E) override;
  void wait(const Event &E) override;
  void synchronize() override;

private:
  void enqueue(std::function<void()> Op);
  void workerLoop();

  AsyncHostRuntime &Parent;
  std::string StreamName;

  std::mutex Mx;
  std::condition_variable HasWork; ///< Signals the worker.
  std::condition_variable Idle;    ///< Signals synchronize() callers.
  std::deque<std::function<void()>> Ops; ///< Guarded by Mx.
  bool Busy = false;     ///< An op is executing; guarded by Mx.
  bool ShuttingDown = false; ///< Guarded by Mx.
  std::thread Worker;
};

} // namespace psg

#endif // PSG_DEVICE_ASYNCHOSTRUNTIME_H
