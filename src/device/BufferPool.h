//===- device/BufferPool.h - Size-classed buffer pool -----------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A size-classed pooled allocator for device buffers, in the style of
/// CUB's CachingDeviceAllocator: freed storage is parked in power-of-two
/// bins and handed back to later allocations of the same class instead
/// of round-tripping through the system allocator. The sharded
/// executor's double-buffered pipeline allocates and frees two buffers
/// per shard; without the pool that churn serializes on malloc and, on
/// a real device, on cudaMalloc's implicit device synchronize.
///
/// Thread-safe: the async runtime's stream workers allocate and free
/// concurrently. Accounting (hits, misses, cached bytes) feeds the
/// owning runtime's counters and the `psg.device.pool_*` metrics. The
/// pool is drained on destruction — no storage outlives the runtime.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_DEVICE_BUFFERPOOL_H
#define PSG_DEVICE_BUFFERPOOL_H

#include "device/DeviceRuntime.h"

#include <cstddef>
#include <mutex>
#include <vector>

namespace psg {

/// Power-of-two-binned cache of byte vectors. acquire() returns storage
/// whose capacity is the bin size covering the request (zeroed over the
/// requested length, preserving the allocate() zero-fill contract);
/// release() parks storage back into its bin unless the cache ceiling
/// would be exceeded, in which case it is freed to the system.
class BufferPool {
public:
  /// \p MaxCachedBytes caps the bytes parked across all bins; 0
  /// disables caching (every acquire misses, every release frees).
  explicit BufferPool(AtomicRuntimeCounters &Counters,
                      size_t MaxCachedBytes = 64ull << 20)
      : Counters(Counters), MaxCachedBytes(MaxCachedBytes) {}
  ~BufferPool() { drain(); }

  BufferPool(const BufferPool &) = delete;
  BufferPool &operator=(const BufferPool &) = delete;

  /// Smallest storage class handed out; sub-256-byte requests share one
  /// bin so tiny result buffers still pool.
  static constexpr size_t MinBinBytes = 256;

  /// The bin (storage) size covering \p Bytes: the smallest power of
  /// two >= max(Bytes, MinBinBytes).
  static size_t binBytes(size_t Bytes);

  /// Returns zero-filled storage of exactly binBytes(Bytes) length.
  std::vector<unsigned char> acquire(size_t Bytes);

  /// Returns \p Storage (a former acquire() result) to its bin, or
  /// frees it when the cache is full or pooling is disabled.
  void release(std::vector<unsigned char> Storage);

  /// Frees every cached byte (runtime destruction, explicit trim).
  void drain();

  size_t maxCachedBytes() const { return MaxCachedBytes; }

private:
  AtomicRuntimeCounters &Counters;
  size_t MaxCachedBytes;

  std::mutex Mx;
  size_t CachedBytes = 0; ///< Guarded by Mx; mirrored to the counters.
  /// Bins[I] caches storage of size MinBinBytes << I.
  std::vector<std::vector<std::vector<unsigned char>>> Bins;
};

} // namespace psg

#endif // PSG_DEVICE_BUFFERPOOL_H
