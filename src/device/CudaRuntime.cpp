//===- device/CudaRuntime.cpp ---------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "device/CudaRuntime.h"

#if __has_include(<cuda_runtime.h>)
#include <cuda_runtime.h>
#else
#include "device/CudaStubs.h"
#endif

#include <string>

using namespace psg;

namespace {

/// Formats a CUDA failure for ErrorOr / fatalError messages.
std::string cudaMessage(const char *What, cudaError_t Error) {
  return std::string(What) + ": " + cudaGetErrorString(Error);
}

class CudaRuntimeImpl;

class CudaBuffer final : public DeviceBuffer {
public:
  CudaBuffer(CudaRuntimeImpl &Parent, void *Ptr, size_t Bytes)
      : Parent(Parent), Ptr(Ptr), Bytes(Bytes) {}
  ~CudaBuffer() override;

  size_t sizeBytes() const override { return Bytes; }
  void *deviceData() override { return Ptr; }

private:
  CudaRuntimeImpl &Parent;
  void *Ptr;
  size_t Bytes;
};

class CudaEvent final : public Event {
public:
  explicit CudaEvent(cudaEvent_t Handle) : Handle(Handle) {}
  ~CudaEvent() override { cudaEventDestroy(Handle); }

  bool recorded() const override { return Recorded; }
  cudaEvent_t handle() const { return Handle; }
  void markRecorded() { Recorded = true; }

private:
  cudaEvent_t Handle;
  bool Recorded = false;
};

class CudaStream final : public Stream {
public:
  CudaStream(CudaRuntimeImpl &Parent, std::string Name, cudaStream_t Handle)
      : Parent(Parent), StreamName(std::move(Name)), Handle(Handle) {}
  ~CudaStream() override { cudaStreamDestroy(Handle); }

  const std::string &name() const override { return StreamName; }
  void upload(DeviceBuffer &Dst, const void *Src, size_t Bytes,
              size_t DstOffsetBytes = 0) override;
  void download(const DeviceBuffer &Src, void *Dst, size_t Bytes,
                size_t SrcOffsetBytes = 0) override;
  LaunchRecord launch(const LaunchConfig &Config,
                      std::function<void(KernelContext &)> Body) override;
  void hostTask(const std::string &Name, std::function<void()> Task) override;
  void record(Event &E) override;
  void wait(const Event &E) override;
  void synchronize() override;

private:
  CudaRuntimeImpl &Parent;
  std::string StreamName;
  cudaStream_t Handle;
};

/// The real-GPU runtime. Memory/stream/event paths are complete over
/// the CUDA runtime API; launch() is the open seam (see CudaRuntime.h)
/// and aborts until the native kernels exist.
class CudaRuntimeImpl final : public DeviceRuntime {
public:
  explicit CudaRuntimeImpl(DeviceSpec Spec) : Spec(std::move(Spec)) {}

  const char *name() const override { return "cuda"; }
  const DeviceSpec &spec() const override { return Spec; }
  unsigned hostParallelism() const override { return 1; }

  std::unique_ptr<Stream> createStream(std::string Name) override {
    cudaStream_t Handle = nullptr;
    if (cudaError_t Err = cudaStreamCreate(&Handle))
      fatalError(cudaMessage("cudaStreamCreate", Err));
    Counters.StreamsCreated.fetch_add(1, std::memory_order_relaxed);
    return std::make_unique<CudaStream>(*this, std::move(Name), Handle);
  }

  std::unique_ptr<Event> createEvent() override {
    cudaEvent_t Handle = nullptr;
    if (cudaError_t Err = cudaEventCreate(&Handle))
      fatalError(cudaMessage("cudaEventCreate", Err));
    return std::make_unique<CudaEvent>(Handle);
  }

  std::unique_ptr<DeviceBuffer> allocate(size_t Bytes) override {
    void *Ptr = nullptr;
    if (cudaError_t Err = cudaMalloc(&Ptr, Bytes))
      fatalError(cudaMessage("cudaMalloc", Err));
    if (cudaError_t Err = cudaMemset(Ptr, 0, Bytes))
      fatalError(cudaMessage("cudaMemset", Err));
    Counters.recordAllocation(Bytes);
    return std::make_unique<CudaBuffer>(*this, Ptr, Bytes);
  }

  LaunchRecord launchKernel(const LaunchConfig &Config,
                            FunctionRef<void(KernelContext &)> Body) override {
    (void)Body;
    fatalError("cuda runtime: kernel '" + Config.KernelName +
               "' has no native CUDA implementation yet; run with "
               "--runtime host (see ROADMAP.md: native kernel port)");
  }

  void synchronize() override {
    if (cudaError_t Err = cudaDeviceSynchronize())
      fatalError(cudaMessage("cudaDeviceSynchronize", Err));
  }

  const DeviceCounters &deviceCounters() const override { return Kernel; }
  RuntimeCounters counters() const override { return Counters.snapshot(); }

private:
  friend class CudaBuffer;
  friend class CudaStream;

  DeviceSpec Spec;
  DeviceCounters Kernel;
  AtomicRuntimeCounters Counters;
};

CudaBuffer::~CudaBuffer() {
  cudaFree(Ptr);
  Parent.Counters.recordFree(Bytes);
}

void CudaStream::upload(DeviceBuffer &Dst, const void *Src, size_t Bytes,
                        size_t DstOffsetBytes) {
  void *Target = static_cast<char *>(Dst.deviceData()) + DstOffsetBytes;
  if (cudaError_t Err = cudaMemcpyAsync(Target, Src, Bytes,
                                        cudaMemcpyHostToDevice, Handle))
    fatalError(cudaMessage("cudaMemcpyAsync(H2D)", Err));
  Parent.Counters.Uploads.fetch_add(1, std::memory_order_relaxed);
  Parent.Counters.UploadBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

void CudaStream::download(const DeviceBuffer &Src, void *Dst, size_t Bytes,
                          size_t SrcOffsetBytes) {
  const void *Source =
      static_cast<const char *>(Src.deviceData()) + SrcOffsetBytes;
  if (cudaError_t Err =
          cudaMemcpyAsync(Dst, const_cast<void *>(Source), Bytes,
                          cudaMemcpyDeviceToHost, Handle))
    fatalError(cudaMessage("cudaMemcpyAsync(D2H)", Err));
  Parent.Counters.Downloads.fetch_add(1, std::memory_order_relaxed);
  Parent.Counters.DownloadBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

LaunchRecord CudaStream::launch(const LaunchConfig &Config,
                                std::function<void(KernelContext &)> Body) {
  return Parent.launchKernel(Config,
                             [&Body](KernelContext &Ctx) { Body(Ctx); });
}

void CudaStream::hostTask(const std::string &Name,
                          std::function<void()> Task) {
  // A faithful port would use cudaLaunchHostFunc; until the native
  // kernels exist, draining the stream before the host stage gives the
  // same ordering.
  (void)Name;
  synchronize();
  Task();
  Parent.Counters.HostTasks.fetch_add(1, std::memory_order_relaxed);
}

void CudaStream::record(Event &E) {
  auto &CE = static_cast<CudaEvent &>(E);
  if (cudaError_t Err = cudaEventRecord(CE.handle(), Handle))
    fatalError(cudaMessage("cudaEventRecord", Err));
  CE.markRecorded();
  Parent.Counters.EventsRecorded.fetch_add(1, std::memory_order_relaxed);
}

void CudaStream::wait(const Event &E) {
  const auto &CE = static_cast<const CudaEvent &>(E);
  if (!CE.recorded()) // CUDA semantics: wait on an unrecorded event is
    return;           // a no-op.
  if (cudaError_t Err = cudaStreamWaitEvent(Handle, CE.handle(), 0))
    fatalError(cudaMessage("cudaStreamWaitEvent", Err));
  Parent.Counters.EventWaits.fetch_add(1, std::memory_order_relaxed);
}

void CudaStream::synchronize() {
  if (cudaError_t Err = cudaStreamSynchronize(Handle))
    fatalError(cudaMessage("cudaStreamSynchronize", Err));
}

} // namespace

ErrorOr<std::unique_ptr<DeviceRuntime>>
psg::createCudaRuntime(DeviceSpec Spec) {
  int DeviceCount = 0;
  if (cudaError_t Err = cudaGetDeviceCount(&DeviceCount))
    return ErrorOr<std::unique_ptr<DeviceRuntime>>::failure(
        cudaMessage("cuda runtime unavailable (cudaGetDeviceCount)", Err));
  if (DeviceCount == 0)
    return ErrorOr<std::unique_ptr<DeviceRuntime>>::failure(
        "cuda runtime unavailable: no CUDA devices present");
  if (cudaError_t Err = cudaSetDevice(0))
    return ErrorOr<std::unique_ptr<DeviceRuntime>>::failure(
        cudaMessage("cuda runtime unavailable (cudaSetDevice)", Err));
  return std::unique_ptr<DeviceRuntime>(
      std::make_unique<CudaRuntimeImpl>(std::move(Spec)));
}
