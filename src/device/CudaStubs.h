//===- device/CudaStubs.h - CUDA runtime API stubs --------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stub declarations of the slice of the CUDA runtime API that
/// device/CudaRuntime.cpp uses, for building the PSG_WITH_CUDA=ON
/// configuration on machines without a CUDA toolkit (the CI stub leg,
/// the reproduction container). Every entry point reports "no device",
/// so CudaRuntime compiles and links everywhere but construction fails
/// loudly until a real toolkit and GPU are present — then
/// <cuda_runtime.h> is picked up instead and these stubs are never
/// seen.
///
/// Only included from CudaRuntime.cpp, and only when
/// __has_include(<cuda_runtime.h>) is false; the signatures match the
/// CUDA runtime so the .cpp compiles unchanged against either.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_DEVICE_CUDASTUBS_H
#define PSG_DEVICE_CUDASTUBS_H

#include <cstddef>

// Matches the CUDA runtime's enum values for the errors we produce.
enum cudaError_t {
  cudaSuccess = 0,
  cudaErrorNoDevice = 100,
};

enum cudaMemcpyKind {
  cudaMemcpyHostToDevice = 1,
  cudaMemcpyDeviceToHost = 2,
};

using cudaStream_t = struct CUstream_st *;
using cudaEvent_t = struct CUevent_st *;

inline cudaError_t cudaGetDeviceCount(int *Count) {
  if (Count)
    *Count = 0;
  return cudaErrorNoDevice;
}
inline cudaError_t cudaSetDevice(int) { return cudaErrorNoDevice; }
inline cudaError_t cudaMalloc(void **Ptr, size_t) {
  if (Ptr)
    *Ptr = nullptr;
  return cudaErrorNoDevice;
}
inline cudaError_t cudaFree(void *) { return cudaErrorNoDevice; }
inline cudaError_t cudaMemset(void *, int, size_t) {
  return cudaErrorNoDevice;
}
inline cudaError_t cudaMemcpyAsync(void *, const void *, size_t,
                                   cudaMemcpyKind, cudaStream_t) {
  return cudaErrorNoDevice;
}
inline cudaError_t cudaStreamCreate(cudaStream_t *Stream) {
  if (Stream)
    *Stream = nullptr;
  return cudaErrorNoDevice;
}
inline cudaError_t cudaStreamDestroy(cudaStream_t) {
  return cudaErrorNoDevice;
}
inline cudaError_t cudaStreamSynchronize(cudaStream_t) {
  return cudaErrorNoDevice;
}
inline cudaError_t cudaEventCreate(cudaEvent_t *Event) {
  if (Event)
    *Event = nullptr;
  return cudaErrorNoDevice;
}
inline cudaError_t cudaEventDestroy(cudaEvent_t) { return cudaErrorNoDevice; }
inline cudaError_t cudaEventRecord(cudaEvent_t, cudaStream_t) {
  return cudaErrorNoDevice;
}
inline cudaError_t cudaStreamWaitEvent(cudaStream_t, cudaEvent_t,
                                       unsigned int) {
  return cudaErrorNoDevice;
}
inline cudaError_t cudaDeviceSynchronize() { return cudaErrorNoDevice; }
inline const char *cudaGetErrorString(cudaError_t Error) {
  return Error == cudaSuccess ? "no error"
                              : "no CUDA-capable device is detected "
                                "(psg stub CUDA runtime)";
}

#endif // PSG_DEVICE_CUDASTUBS_H
