//===- device/DeviceRuntime.h - Device execution runtime --------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The device-runtime abstraction every execution backend implements:
/// streams (ordered asynchronous work queues), device buffers (typed
/// allocate/upload/download with byte accounting), events (record/wait
/// for cross-stream dependencies) and kernel launch through an execution
/// configuration record — the CUDA vocabulary (stream / cudaMalloc /
/// cudaMemcpyAsync / event / <<<grid, block>>>) expressed backend-
/// neutrally.
///
/// Two implementations exist:
///
///  * HostRuntime (device/HostRuntime.h): the modeled device. Kernels
///    really run on the host thread pool through vgpu::VirtualDevice,
///    "device memory" is host memory, and every operation feeds the same
///    launch/cost accounting as before — results are bit-exact with the
///    pre-runtime code.
///  * CudaRuntime (device/CudaRuntime.h, behind PSG_WITH_CUDA): the seam
///    for a real GPU. It compiles against stub declarations when no
///    toolkit is present and fails loudly at construction until the
///    native kernel port lands.
///
/// Semantics contract (pinned by the runtime-conformance suite in
/// tests/device_runtime_test.cpp; any future backend must pass it):
///
///  * Operations enqueued on one stream execute in FIFO order.
///  * Stream::synchronize returns only after every enqueued op finished.
///  * Event::record marks the point a stream has reached; a wait on a
///    recorded event orders the waiting stream after that point. Waiting
///    on a never-recorded event completes immediately (CUDA semantics).
///  * upload/download move exact bytes: a download after an upload of
///    the same range returns a bit-identical image (including NaN
///    payloads and -0.0).
///  * Kernel launches through a runtime observe the same KernelContext
///    semantics as vgpu::VirtualDevice::launchKernel (thread/block
///    indices, worker indices, child-grid accounting).
///
/// A runtime and its streams are externally synchronized: one logical
/// device owner drives them (the sharded executor's device thread, a
/// simulator's batch loop). The byte/launch counters are therefore plain
/// fields, like vgpu::DeviceCounters.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_DEVICE_DEVICERUNTIME_H
#define PSG_DEVICE_DEVICERUNTIME_H

#include "support/Error.h"
#include "support/FunctionRef.h"
#include "vgpu/DeviceSpec.h"
#include "vgpu/VirtualDevice.h"

#include <cstdint>
#include <memory>
#include <string>

namespace psg {

/// The execution configuration of one kernel launch — the runtime-
/// neutral mirror of CUDA's <<<grid, block, sharedMem, stream>>> plus
/// the kernel identity used for accounting and tracing.
struct LaunchConfig {
  std::string KernelName;
  uint64_t GridThreads = 0;  ///< Logical threads across the whole grid.
  unsigned BlockDim = 32;    ///< Threads per block.
  size_t SharedMemBytes = 0; ///< Modeled dynamic shared memory per block.
};

/// A typed device allocation. sizeBytes() is exact; deviceData() is the
/// address kernels dereference — host memory for the host runtime, a
/// device pointer (which host code must not touch) for a real backend.
class DeviceBuffer {
public:
  virtual ~DeviceBuffer();
  virtual size_t sizeBytes() const = 0;
  virtual void *deviceData() = 0;
  const void *deviceData() const {
    return const_cast<DeviceBuffer *>(this)->deviceData();
  }

  /// Elements of \p T the buffer holds (rounding down).
  template <typename T> size_t sizeAs() const { return sizeBytes() / sizeof(T); }
};

/// A cross-stream ordering point (cudaEvent_t).
class Event {
public:
  virtual ~Event();
  /// True once some stream recorded this event.
  virtual bool recorded() const = 0;
};

/// An ordered asynchronous work queue (cudaStream_t). Ops may complete
/// eagerly (the host runtime) or truly asynchronously (a real backend);
/// either way FIFO order within the stream and the synchronize/event
/// contracts hold.
class Stream {
public:
  virtual ~Stream();

  virtual const std::string &name() const = 0;

  /// Copies \p Bytes from host \p Src into \p Dst at \p DstOffsetBytes
  /// (H2D, cudaMemcpyAsync). The range must lie inside the buffer.
  virtual void upload(DeviceBuffer &Dst, const void *Src, size_t Bytes,
                      size_t DstOffsetBytes = 0) = 0;

  /// Copies \p Bytes from \p Src at \p SrcOffsetBytes to host \p Dst
  /// (D2H). Completion is only guaranteed after synchronize().
  virtual void download(const DeviceBuffer &Src, void *Dst, size_t Bytes,
                        size_t SrcOffsetBytes = 0) = 0;

  /// Launches a kernel in stream order. Body must be thread-safe across
  /// logical threads; the call's completion semantics follow the stream
  /// (the host runtime runs it eagerly and returns the real record).
  virtual LaunchRecord launch(const LaunchConfig &Config,
                              FunctionRef<void(KernelContext &)> Body) = 0;

  /// Enqueues a host-side stage in stream order (cudaLaunchHostFunc):
  /// the glue the sharded executor uses for work that is host code today
  /// but sits between device transfers.
  virtual void hostTask(const std::string &Name,
                        FunctionRef<void()> Task) = 0;

  /// Records \p E at the stream's current position.
  virtual void record(Event &E) = 0;

  /// Orders subsequent work on this stream after \p E's recorded
  /// position. Waiting on a never-recorded event is a no-op.
  virtual void wait(const Event &E) = 0;

  /// Blocks the host until every enqueued operation completed.
  virtual void synchronize() = 0;
};

/// Cumulative transfer/allocation accounting of one runtime. Mirrors
/// vgpu::DeviceCounters for the memory system; exported by the host
/// runtime as `psg.device.*` metrics.
struct RuntimeCounters {
  uint64_t BuffersAllocated = 0;
  uint64_t BytesAllocated = 0;     ///< Cumulative allocation volume.
  uint64_t BytesResident = 0;      ///< Currently allocated bytes.
  uint64_t PeakBytesResident = 0;  ///< High-water mark of BytesResident.
  uint64_t Uploads = 0;
  uint64_t UploadBytes = 0;
  uint64_t Downloads = 0;
  uint64_t DownloadBytes = 0;
  uint64_t StreamsCreated = 0;
  uint64_t EventsRecorded = 0;
  uint64_t EventWaits = 0;
  uint64_t HostTasks = 0;
  uint64_t KernelLaunches = 0; ///< Through streams and the default path.
};

/// One execution backend: a device spec, streams, buffers, events, and
/// kernel launch. Owned per logical device (each sharded-executor device
/// and each single-device engine holds its own runtime instance).
class DeviceRuntime {
public:
  virtual ~DeviceRuntime();

  /// Stable backend identifier ("host", "cuda").
  virtual const char *name() const = 0;

  virtual const DeviceSpec &spec() const = 0;

  /// Distinct host worker indices kernel bodies may observe (see
  /// ThreadPool::parallelism); simulators size per-worker scratch to it.
  virtual unsigned hostParallelism() const = 0;

  virtual std::unique_ptr<Stream> createStream(std::string Name) = 0;
  virtual std::unique_ptr<Event> createEvent() = 0;

  /// Allocates \p Bytes of device memory (cudaMalloc). Zero-filled, so
  /// a download before any upload reads defined bytes.
  virtual std::unique_ptr<DeviceBuffer> allocate(size_t Bytes) = 0;

  /// Launches on the default stream (the CUDA null stream), blocking
  /// until the grid completed.
  virtual LaunchRecord launchKernel(const LaunchConfig &Config,
                                    FunctionRef<void(KernelContext &)> Body) = 0;

  /// Blocks until every stream of this runtime drained
  /// (cudaDeviceSynchronize).
  virtual void synchronize() = 0;

  /// Kernel-side accounting (launches, logical threads, child grids).
  virtual const DeviceCounters &deviceCounters() const = 0;

  /// Memory/stream-side accounting.
  virtual const RuntimeCounters &counters() const = 0;

  /// Typed allocation helper: \p Count elements of \p T.
  template <typename T> std::unique_ptr<DeviceBuffer> allocateArray(size_t Count) {
    return allocate(Count * sizeof(T));
  }
};

/// Typed transfer helpers over the byte interface.
template <typename T>
void uploadArray(Stream &S, DeviceBuffer &Dst, const T *Src, size_t Count,
                 size_t DstOffsetElems = 0) {
  S.upload(Dst, Src, Count * sizeof(T), DstOffsetElems * sizeof(T));
}
template <typename T>
void downloadArray(Stream &S, const DeviceBuffer &Src, T *Dst, size_t Count,
                   size_t SrcOffsetElems = 0) {
  S.download(Src, Dst, Count * sizeof(T), SrcOffsetElems * sizeof(T));
}

/// The selectable backends. Host is always available; Cuda requires a
/// PSG_WITH_CUDA build and a working device at construction time.
enum class RuntimeKind { Host, Cuda };

/// Stable display name ("host", "cuda").
const char *runtimeKindName(RuntimeKind Kind);

/// Parses a runtime name; fails with the known-name list on anything
/// else (the psg-cli --runtime grammar).
ErrorOr<RuntimeKind> parseRuntimeKind(const std::string &Name);

/// True when this build carries the CUDA backend (PSG_WITH_CUDA=ON).
bool cudaRuntimeCompiledIn();

/// Creates a runtime of \p Kind over \p Spec. \p HostWorkers caps the
/// host pool backing the host runtime (0 = hardware concurrency).
/// Fails — loudly, with an actionable message — when the backend is not
/// compiled in or its device cannot be initialized; it never returns a
/// half-constructed runtime.
ErrorOr<std::unique_ptr<DeviceRuntime>>
createDeviceRuntime(RuntimeKind Kind, DeviceSpec Spec,
                    unsigned HostWorkers = 0);

} // namespace psg

#endif // PSG_DEVICE_DEVICERUNTIME_H
