//===- device/DeviceRuntime.h - Device execution runtime --------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The device-runtime abstraction every execution backend implements:
/// streams (ordered asynchronous work queues), device buffers (typed
/// allocate/upload/download with byte accounting), events (record/wait
/// for cross-stream dependencies) and kernel launch through an execution
/// configuration record — the CUDA vocabulary (stream / cudaMalloc /
/// cudaMemcpyAsync / event / <<<grid, block>>>) expressed backend-
/// neutrally.
///
/// Three implementations exist:
///
///  * HostRuntime (device/HostRuntime.h): the modeled device. Kernels
///    really run on the host thread pool through vgpu::VirtualDevice,
///    "device memory" is host memory, and every operation feeds the same
///    launch/cost accounting as before — results are bit-exact with the
///    pre-runtime code. Streams complete eagerly at enqueue.
///  * AsyncHostRuntime (device/AsyncHostRuntime.h): the same modeled
///    device behind truly asynchronous streams — each stream is a
///    worker-thread-backed FIFO queue, events are epoch-tagged condition
///    waits, and buffers come from a size-classed pool
///    (device/BufferPool.h). This is the concurrency template the real
///    CUDA backend implements verbatim.
///  * CudaRuntime (device/CudaRuntime.h, behind PSG_WITH_CUDA): the seam
///    for a real GPU. It compiles against stub declarations when no
///    toolkit is present and fails loudly at construction until the
///    native kernel port lands.
///
/// Semantics contract (pinned by the runtime-conformance suite in
/// tests/device_runtime_test.cpp, parameterized over eager and async
/// runtimes; any future backend must pass it):
///
///  * Operations enqueued on one stream execute in FIFO order.
///  * Stream::synchronize returns only after every enqueued op finished.
///  * Event::record marks the point a stream has reached; a wait on a
///    recorded event orders the waiting stream after that point. Waiting
///    on a never-recorded event completes immediately (CUDA semantics).
///  * upload/download move exact bytes: a download after an upload of
///    the same range returns a bit-identical image (including NaN
///    payloads and -0.0). On an asynchronous runtime the host memory an
///    upload reads (or a download writes) must stay valid and untouched
///    until the op is known complete (stream/event/runtime synchronize)
///    — exactly cudaMemcpyAsync's rule.
///  * Kernel launches through a runtime observe the same KernelContext
///    semantics as vgpu::VirtualDevice::launchKernel (thread/block
///    indices, worker indices, child-grid accounting).
///
/// Streams of an asynchronous runtime run ops on their own worker
/// threads, so runtime counters are accumulated atomically and
/// allocate/free is thread-safe; counters() returns a coherent
/// snapshot. Creating/destroying streams and events remains the
/// responsibility of one owner per runtime.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_DEVICE_DEVICERUNTIME_H
#define PSG_DEVICE_DEVICERUNTIME_H

#include "support/Error.h"
#include "support/FunctionRef.h"
#include "vgpu/DeviceSpec.h"
#include "vgpu/VirtualDevice.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

namespace psg {

/// The execution configuration of one kernel launch — the runtime-
/// neutral mirror of CUDA's <<<grid, block, sharedMem, stream>>> plus
/// the kernel identity used for accounting and tracing.
struct LaunchConfig {
  std::string KernelName;
  uint64_t GridThreads = 0;  ///< Logical threads across the whole grid.
  unsigned BlockDim = 32;    ///< Threads per block.
  size_t SharedMemBytes = 0; ///< Modeled dynamic shared memory per block.
};

/// A typed device allocation. sizeBytes() is exact; deviceData() is the
/// address kernels dereference — host memory for the host runtime, a
/// device pointer (which host code must not touch) for a real backend.
class DeviceBuffer {
public:
  virtual ~DeviceBuffer();
  virtual size_t sizeBytes() const = 0;
  virtual void *deviceData() = 0;
  const void *deviceData() const {
    return const_cast<DeviceBuffer *>(this)->deviceData();
  }

  /// Elements of \p T the buffer holds (rounding down).
  template <typename T> size_t sizeAs() const { return sizeBytes() / sizeof(T); }
};

/// A cross-stream ordering point (cudaEvent_t).
class Event {
public:
  virtual ~Event();
  /// True once some stream recorded this event.
  virtual bool recorded() const = 0;
};

/// An ordered asynchronous work queue (cudaStream_t). Ops may complete
/// eagerly (the host runtime) or truly asynchronously (a real backend);
/// either way FIFO order within the stream and the synchronize/event
/// contracts hold.
class Stream {
public:
  virtual ~Stream();

  virtual const std::string &name() const = 0;

  /// Copies \p Bytes from host \p Src into \p Dst at \p DstOffsetBytes
  /// (H2D, cudaMemcpyAsync). The range must lie inside the buffer.
  virtual void upload(DeviceBuffer &Dst, const void *Src, size_t Bytes,
                      size_t DstOffsetBytes = 0) = 0;

  /// Copies \p Bytes from \p Src at \p SrcOffsetBytes to host \p Dst
  /// (D2H). Completion is only guaranteed after synchronize().
  virtual void download(const DeviceBuffer &Src, void *Dst, size_t Bytes,
                        size_t SrcOffsetBytes = 0) = 0;

  /// Launches a kernel in stream order. Body must be thread-safe across
  /// logical threads and is owned by the stream until it ran (async
  /// streams execute it later on their worker). The returned record is
  /// the real one on an eager stream; an asynchronous stream returns the
  /// geometry predicted from \p Config (child-grid counts land in the
  /// device counters once the grid retires).
  virtual LaunchRecord launch(const LaunchConfig &Config,
                              std::function<void(KernelContext &)> Body) = 0;

  /// Enqueues a host-side stage in stream order (cudaLaunchHostFunc):
  /// the glue the sharded executor uses for work that is host code today
  /// but sits between device transfers. The stream owns \p Task until it
  /// ran.
  virtual void hostTask(const std::string &Name,
                        std::function<void()> Task) = 0;

  /// Records \p E at the stream's current position.
  virtual void record(Event &E) = 0;

  /// Orders subsequent work on this stream after \p E's recorded
  /// position. Waiting on a never-recorded event is a no-op.
  virtual void wait(const Event &E) = 0;

  /// Blocks the host until every enqueued operation completed.
  virtual void synchronize() = 0;
};

/// Cumulative transfer/allocation accounting of one runtime. Mirrors
/// vgpu::DeviceCounters for the memory system; exported by the host
/// runtimes as `psg.device.*` metrics. A plain-field snapshot — live
/// accumulation happens in AtomicRuntimeCounters because stream workers
/// update concurrently.
struct RuntimeCounters {
  uint64_t BuffersAllocated = 0;
  uint64_t BytesAllocated = 0;     ///< Cumulative allocation volume.
  uint64_t BytesResident = 0;      ///< Currently allocated bytes.
  uint64_t PeakBytesResident = 0;  ///< High-water mark of BytesResident.
  uint64_t Uploads = 0;
  uint64_t UploadBytes = 0;
  uint64_t Downloads = 0;
  uint64_t DownloadBytes = 0;
  uint64_t StreamsCreated = 0;
  uint64_t EventsRecorded = 0;
  uint64_t EventWaits = 0;
  uint64_t HostTasks = 0;
  uint64_t KernelLaunches = 0; ///< Through streams and the default path.
  uint64_t PoolHits = 0;       ///< Allocations served from the buffer pool.
  uint64_t PoolMisses = 0;     ///< Allocations that went to the system.
  uint64_t PoolBytesCached = 0; ///< Bytes currently parked in the pool.
};

/// Thread-safe accumulator behind RuntimeCounters. Every runtime owns
/// one and snapshots it in counters(); stream worker threads update it
/// concurrently with the owner, so each field is a relaxed atomic and
/// the residency high-water mark is maintained with a CAS loop (the
/// read-modify-write would otherwise race).
struct AtomicRuntimeCounters {
  std::atomic<uint64_t> BuffersAllocated{0};
  std::atomic<uint64_t> BytesAllocated{0};
  std::atomic<uint64_t> BytesResident{0};
  std::atomic<uint64_t> PeakBytesResident{0};
  std::atomic<uint64_t> Uploads{0};
  std::atomic<uint64_t> UploadBytes{0};
  std::atomic<uint64_t> Downloads{0};
  std::atomic<uint64_t> DownloadBytes{0};
  std::atomic<uint64_t> StreamsCreated{0};
  std::atomic<uint64_t> EventsRecorded{0};
  std::atomic<uint64_t> EventWaits{0};
  std::atomic<uint64_t> HostTasks{0};
  std::atomic<uint64_t> KernelLaunches{0};
  std::atomic<uint64_t> PoolHits{0};
  std::atomic<uint64_t> PoolMisses{0};
  std::atomic<uint64_t> PoolBytesCached{0};

  /// Accounts one allocation of \p Bytes and advances the resident
  /// high-water mark.
  void recordAllocation(uint64_t Bytes) {
    BuffersAllocated.fetch_add(1, std::memory_order_relaxed);
    BytesAllocated.fetch_add(Bytes, std::memory_order_relaxed);
    uint64_t Now = BytesResident.fetch_add(Bytes, std::memory_order_relaxed) +
                   Bytes;
    uint64_t Peak = PeakBytesResident.load(std::memory_order_relaxed);
    while (Now > Peak && !PeakBytesResident.compare_exchange_weak(
                             Peak, Now, std::memory_order_relaxed))
      ;
  }

  /// Accounts one free of \p Bytes.
  void recordFree(uint64_t Bytes) {
    BytesResident.fetch_sub(Bytes, std::memory_order_relaxed);
  }

  RuntimeCounters snapshot() const {
    RuntimeCounters C;
    C.BuffersAllocated = BuffersAllocated.load(std::memory_order_relaxed);
    C.BytesAllocated = BytesAllocated.load(std::memory_order_relaxed);
    C.BytesResident = BytesResident.load(std::memory_order_relaxed);
    C.PeakBytesResident = PeakBytesResident.load(std::memory_order_relaxed);
    C.Uploads = Uploads.load(std::memory_order_relaxed);
    C.UploadBytes = UploadBytes.load(std::memory_order_relaxed);
    C.Downloads = Downloads.load(std::memory_order_relaxed);
    C.DownloadBytes = DownloadBytes.load(std::memory_order_relaxed);
    C.StreamsCreated = StreamsCreated.load(std::memory_order_relaxed);
    C.EventsRecorded = EventsRecorded.load(std::memory_order_relaxed);
    C.EventWaits = EventWaits.load(std::memory_order_relaxed);
    C.HostTasks = HostTasks.load(std::memory_order_relaxed);
    C.KernelLaunches = KernelLaunches.load(std::memory_order_relaxed);
    C.PoolHits = PoolHits.load(std::memory_order_relaxed);
    C.PoolMisses = PoolMisses.load(std::memory_order_relaxed);
    C.PoolBytesCached = PoolBytesCached.load(std::memory_order_relaxed);
    return C;
  }
};

/// One execution backend: a device spec, streams, buffers, events, and
/// kernel launch. Owned per logical device (each sharded-executor device
/// and each single-device engine holds its own runtime instance).
class DeviceRuntime {
public:
  virtual ~DeviceRuntime();

  /// Stable backend identifier ("host", "host-async", "cuda").
  virtual const char *name() const = 0;

  /// True when stream operations really overlap with the enqueueing
  /// thread (worker-backed streams, real device queues). Eager runtimes
  /// return false; callers use this to pick measured vs modeled overlap
  /// reporting.
  virtual bool asynchronous() const { return false; }

  virtual const DeviceSpec &spec() const = 0;

  /// Distinct host worker indices kernel bodies may observe (see
  /// ThreadPool::parallelism); simulators size per-worker scratch to it.
  virtual unsigned hostParallelism() const = 0;

  virtual std::unique_ptr<Stream> createStream(std::string Name) = 0;
  virtual std::unique_ptr<Event> createEvent() = 0;

  /// Allocates \p Bytes of device memory (cudaMalloc). Zero-filled, so
  /// a download before any upload reads defined bytes.
  virtual std::unique_ptr<DeviceBuffer> allocate(size_t Bytes) = 0;

  /// Launches on the default stream (the CUDA null stream), blocking
  /// until the grid completed. Not ordered against explicit streams;
  /// callers that need ordering enqueue through Stream::launch.
  virtual LaunchRecord launchKernel(const LaunchConfig &Config,
                                    FunctionRef<void(KernelContext &)> Body) = 0;

  /// Blocks until every stream of this runtime drained
  /// (cudaDeviceSynchronize).
  virtual void synchronize() = 0;

  /// Kernel-side accounting (launches, logical threads, child grids).
  virtual const DeviceCounters &deviceCounters() const = 0;

  /// Memory/stream-side accounting: a coherent snapshot of the atomic
  /// accumulators (safe to call while stream workers run).
  virtual RuntimeCounters counters() const = 0;

  /// Typed allocation helper: \p Count elements of \p T.
  template <typename T> std::unique_ptr<DeviceBuffer> allocateArray(size_t Count) {
    return allocate(Count * sizeof(T));
  }
};

/// Typed transfer helpers over the byte interface.
template <typename T>
void uploadArray(Stream &S, DeviceBuffer &Dst, const T *Src, size_t Count,
                 size_t DstOffsetElems = 0) {
  S.upload(Dst, Src, Count * sizeof(T), DstOffsetElems * sizeof(T));
}
template <typename T>
void downloadArray(Stream &S, const DeviceBuffer &Src, T *Dst, size_t Count,
                   size_t SrcOffsetElems = 0) {
  S.download(Src, Dst, Count * sizeof(T), SrcOffsetElems * sizeof(T));
}

/// The selectable backends. Host and HostAsync are always available;
/// Cuda requires a PSG_WITH_CUDA build and a working device at
/// construction time.
enum class RuntimeKind { Host, HostAsync, Cuda };

/// Stable display name ("host", "host-async", "cuda").
const char *runtimeKindName(RuntimeKind Kind);

/// Parses a runtime name; fails with the known-name list on anything
/// else (the psg-cli --runtime grammar).
ErrorOr<RuntimeKind> parseRuntimeKind(const std::string &Name);

/// True when this build carries the CUDA backend (PSG_WITH_CUDA=ON).
bool cudaRuntimeCompiledIn();

/// Backend knobs beyond the device spec. Only the asynchronous runtimes
/// consult the pool settings today; the eager host runtime allocates
/// directly.
struct RuntimeOptions {
  /// Ceiling on bytes the buffer pool may keep cached across frees.
  /// 0 disables pooling entirely (every free returns to the system).
  size_t PoolMaxCachedBytes = 64ull << 20;
};

/// Creates a runtime of \p Kind over \p Spec. \p HostWorkers caps the
/// host pool backing the host runtimes (0 = hardware concurrency).
/// Fails — loudly, with an actionable message — when the backend is not
/// compiled in or its device cannot be initialized; it never returns a
/// half-constructed runtime.
ErrorOr<std::unique_ptr<DeviceRuntime>>
createDeviceRuntime(RuntimeKind Kind, DeviceSpec Spec,
                    unsigned HostWorkers = 0,
                    const RuntimeOptions &Options = RuntimeOptions());

} // namespace psg

#endif // PSG_DEVICE_DEVICERUNTIME_H
