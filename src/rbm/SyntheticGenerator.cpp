//===- rbm/SyntheticGenerator.cpp -----------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "rbm/SyntheticGenerator.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace psg;

ReactionNetwork
psg::generateSyntheticModel(const SyntheticModelOptions &Opts) {
  assert(Opts.NumSpecies > 0 && Opts.NumReactions > 0 &&
         "empty synthetic model requested");
  Rng Generator(Opts.Seed);
  ReactionNetwork Net(formatString("synthetic-%zux%zu-seed%llu",
                                   Opts.NumSpecies, Opts.NumReactions,
                                   (unsigned long long)Opts.Seed));

  for (size_t I = 0; I < Opts.NumSpecies; ++I)
    Net.addSpecies(formatString("S%zu", I),
                   Generator.logUniform(Opts.MinInitialConcentration,
                                        Opts.MaxInitialConcentration));

  const double W0 = Opts.OrderWeights[0];
  const double W1 = Opts.OrderWeights[1];
  const double WSum = W0 + W1 + Opts.OrderWeights[2];

  auto pickSpecies = [&](size_t ReactionIdx, bool Cycle) -> unsigned {
    // Cycle through species for the first N reactions so every species
    // participates; randomize afterwards.
    if (Cycle && ReactionIdx < Opts.NumSpecies)
      return static_cast<unsigned>(ReactionIdx);
    return static_cast<unsigned>(Generator.uniformInt(Opts.NumSpecies));
  };

  for (size_t R = 0; R < Opts.NumReactions; ++R) {
    Reaction Rx;
    Rx.RateConstant =
        Generator.logUniform(Opts.MinRateConstant, Opts.MaxRateConstant);

    const double Draw = Generator.uniform() * WSum;
    const unsigned Order = Draw < W0 ? 0 : (Draw < W0 + W1 ? 1 : 2);
    if (Order >= 1)
      Rx.Reactants.emplace_back(pickSpecies(R, /*Cycle=*/true), 1);
    if (Order == 2) {
      const unsigned Other = pickSpecies(R, /*Cycle=*/false);
      if (!Rx.Reactants.empty() && Rx.Reactants[0].first == Other)
        Rx.Reactants[0].second = 2; // Homodimerization: 2 A -> ...
      else
        Rx.Reactants.emplace_back(Other, 1);
    }

    const unsigned NumProducts = 1 + (Generator.uniform() < 0.5 ? 1 : 0);
    for (unsigned P = 0; P < NumProducts; ++P) {
      const unsigned Prod = pickSpecies(R, /*Cycle=*/false);
      bool Merged = false;
      for (auto &[Idx, Coef] : Rx.Products)
        if (Idx == Prod) {
          ++Coef;
          Merged = true;
          break;
        }
      if (!Merged)
        Rx.Products.emplace_back(Prod, 1);
    }
    Net.addReaction(std::move(Rx));
  }
  return Net;
}

void psg::perturbRateConstants(std::vector<double> &Constants,
                               Rng &Generator) {
  for (double &K : Constants) {
    if (K <= 0.0)
      continue;
    const double Lo = std::log(K * 0.75);
    const double Hi = std::log(K * 1.25);
    K = std::exp(Lo + (Hi - Lo) * Generator.uniform());
  }
}
