//===- rbm/SyntheticGenerator.cpp -----------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "rbm/SyntheticGenerator.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>

using namespace psg;

ReactionNetwork
psg::generateSyntheticModel(const SyntheticModelOptions &Opts) {
  assert(Opts.NumSpecies > 0 && Opts.NumReactions > 0 &&
         "empty synthetic model requested");
  Rng Generator(Opts.Seed);
  ReactionNetwork Net(formatString("synthetic-%zux%zu-seed%llu",
                                   Opts.NumSpecies, Opts.NumReactions,
                                   (unsigned long long)Opts.Seed));

  for (size_t I = 0; I < Opts.NumSpecies; ++I)
    Net.addSpecies(formatString("S%zu", I),
                   Generator.logUniform(Opts.MinInitialConcentration,
                                        Opts.MaxInitialConcentration));

  const double W0 = Opts.OrderWeights[0];
  const double W1 = Opts.OrderWeights[1];
  const double WSum = W0 + W1 + Opts.OrderWeights[2];

  auto pickSpecies = [&](size_t ReactionIdx, bool Cycle) -> unsigned {
    // Cycle through species for the first N reactions so every species
    // participates; randomize afterwards.
    if (Cycle && ReactionIdx < Opts.NumSpecies)
      return static_cast<unsigned>(ReactionIdx);
    return static_cast<unsigned>(Generator.uniformInt(Opts.NumSpecies));
  };

  for (size_t R = 0; R < Opts.NumReactions; ++R) {
    Reaction Rx;
    Rx.RateConstant =
        Generator.logUniform(Opts.MinRateConstant, Opts.MaxRateConstant);

    const double Draw = Generator.uniform() * WSum;
    const unsigned Order = Draw < W0 ? 0 : (Draw < W0 + W1 ? 1 : 2);
    if (Order >= 1)
      Rx.Reactants.emplace_back(pickSpecies(R, /*Cycle=*/true), 1);
    if (Order == 2) {
      const unsigned Other = pickSpecies(R, /*Cycle=*/false);
      if (!Rx.Reactants.empty() && Rx.Reactants[0].first == Other)
        Rx.Reactants[0].second = 2; // Homodimerization: 2 A -> ...
      else
        Rx.Reactants.emplace_back(Other, 1);
    }

    const unsigned NumProducts = 1 + (Generator.uniform() < 0.5 ? 1 : 0);
    for (unsigned P = 0; P < NumProducts; ++P) {
      const unsigned Prod = pickSpecies(R, /*Cycle=*/false);
      bool Merged = false;
      for (auto &[Idx, Coef] : Rx.Products)
        if (Idx == Prod) {
          ++Coef;
          Merged = true;
          break;
        }
      if (!Merged)
        Rx.Products.emplace_back(Prod, 1);
    }
    Net.addReaction(std::move(Rx));
  }
  return Net;
}

ReactionNetwork psg::generateRandomRbm(const RandomRbmOptions &Opts) {
  assert(Opts.MinSpecies >= 1 && Opts.MaxSpecies >= Opts.MinSpecies &&
         Opts.MinReactions >= 1 && Opts.MaxReactions >= Opts.MinReactions &&
         "degenerate random-RBM size bounds");
  assert(Opts.StiffnessSpread >= 1.0 && Opts.MidRate > 0.0 &&
         "rate spread must be a factor >= 1 around a positive midpoint");
  Rng Generator(Opts.Seed);
  const size_t NumSpecies =
      Opts.MinSpecies +
      Generator.uniformInt(Opts.MaxSpecies - Opts.MinSpecies + 1);
  const size_t NumReactions =
      Opts.MinReactions +
      Generator.uniformInt(Opts.MaxReactions - Opts.MinReactions + 1);
  ReactionNetwork Net(formatString("random-rbm-seed%llu",
                                   (unsigned long long)Opts.Seed));

  for (size_t I = 0; I < NumSpecies; ++I)
    Net.addSpecies(formatString("S%zu", I),
                   Generator.uniform(Opts.MinInitialConcentration,
                                     Opts.MaxInitialConcentration));

  const double LoRate = Opts.MidRate / Opts.StiffnessSpread;
  const double HiRate = Opts.MidRate * Opts.StiffnessSpread;
  auto pickSpecies = [&](size_t ReactionIdx, bool Cycle) -> unsigned {
    if (Cycle && ReactionIdx < NumSpecies)
      return static_cast<unsigned>(ReactionIdx);
    return static_cast<unsigned>(Generator.uniformInt(NumSpecies));
  };

  for (size_t R = 0; R < NumReactions; ++R) {
    Reaction Rx;
    Rx.RateConstant = Generator.logUniform(LoRate, HiRate);

    const bool Hill = Generator.uniform() < Opts.HillFraction;
    const bool Repress = Hill && Generator.uniform() < Opts.RepressionFraction;
    // Short-circuit keeps the RNG stream untouched when the fraction is
    // zero (the default), preserving historical seed -> model mappings.
    const bool Menten = !Hill && Opts.MichaelisMentenFraction > 0.0 &&
                        Generator.uniform() < Opts.MichaelisMentenFraction;
    // Saturating rate laws need a substrate, so their order is at least
    // one; mass action draws order 0/1/2 with weights 0.1/0.5/0.4.
    const double Draw = Generator.uniform();
    const unsigned Order = Hill || Menten
                               ? 1 + (Draw < 0.3 ? 1 : 0)
                               : (Draw < 0.1 ? 0 : Draw < 0.6 ? 1 : 2);
    if (Order >= 1)
      Rx.Reactants.emplace_back(pickSpecies(R, /*Cycle=*/true), 1);
    if (Order == 2) {
      const unsigned Other = pickSpecies(R, /*Cycle=*/false);
      if (Rx.Reactants[0].first == Other) {
        // A repressor must keep coefficient one (it is restored as a
        // product below); for plain kinetics fold into `2 S`.
        if (!Repress)
          Rx.Reactants[0].second = 2;
      } else {
        Rx.Reactants.emplace_back(Other, 1);
      }
    }

    if (Hill) {
      Rx.Kind = Repress ? KineticsKind::HillRepression : KineticsKind::Hill;
      Rx.HillK = Generator.logUniform(0.1, 2.0);
      Rx.HillN = 1.0 + static_cast<double>(Generator.uniformInt(4));
    } else if (Menten) {
      // The MM factor vanishes with its substrate like first-order mass
      // action does, so no catalytic-product guard is needed.
      Rx.Kind = KineticsKind::MichaelisMenten;
      Rx.Km = Generator.logUniform(0.05, 2.0);
    }

    // At most two product molecules, so a second-order reaction never
    // creates net molecules (no superlinear autocatalysis, hence no
    // finite-time blow-up); one reaction in four is a pure sink. A
    // repressed reaction's rate does NOT vanish as its first substrate
    // (the repressor) is depleted, so the repressor must be catalytic:
    // it is re-emitted as a product (net stoichiometry zero), which is
    // also the physical motif — repression gates the synthesis or
    // conversion of OTHER species. Without this the repressor is driven
    // below zero and a bimolecular sink involving it turns into an
    // exponential amplifier, producing hypersensitive dynamics no two
    // solvers agree on.
    const unsigned MaxDrawn = Repress ? 1 : 2;
    const unsigned NumProducts =
        Generator.uniform() < 0.25
            ? 0
            : 1 + static_cast<unsigned>(Generator.uniformInt(MaxDrawn));
    if (Repress)
      Rx.Products.emplace_back(Rx.Reactants[0].first, 1);
    for (unsigned P = 0; P < NumProducts; ++P) {
      const unsigned Prod = pickSpecies(R, /*Cycle=*/false);
      bool Merged = false;
      for (auto &[Idx, Coef] : Rx.Products)
        if (Idx == Prod) {
          ++Coef;
          Merged = true;
          break;
        }
      if (!Merged)
        Rx.Products.emplace_back(Prod, 1);
    }

    // Autocatalysis (a reactant with positive net gain, e.g. S -> 2 S)
    // grows exponentially at the reaction's rate constant; drawn from
    // the top of the stiffness spread that means e^(rate * horizon)
    // magnitudes no integrator resolves sensibly. Clamp such rates to
    // the spread's midpoint so growth stays moderate.
    for (const auto &[Reactant, RCoef] : Rx.Reactants) {
      for (const auto &[Product, PCoef] : Rx.Products)
        if (Product == Reactant && PCoef > RCoef)
          Rx.RateConstant = std::min(Rx.RateConstant, Opts.MidRate);
    }

    Net.addReaction(std::move(Rx));
  }
  assert(Net.validate().ok() && "random RBM must validate");
  return Net;
}

void psg::perturbRateConstants(std::vector<double> &Constants,
                               Rng &Generator) {
  for (double &K : Constants) {
    if (K <= 0.0)
      continue;
    const double Lo = std::log(K * 0.75);
    const double Hi = std::log(K * 1.25);
    K = std::exp(Lo + (Hi - Lo) * Generator.uniform());
  }
}
