//===- rbm/ReactionNetwork.cpp --------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "rbm/ReactionNetwork.h"

#include "support/StringUtils.h"

using namespace psg;

unsigned ReactionNetwork::addSpecies(const std::string &Name,
                                     double Initial) {
  assert(!SpeciesIndex.count(Name) && "duplicate species name");
  const unsigned Index = static_cast<unsigned>(SpeciesList.size());
  SpeciesList.push_back({Name, Initial});
  SpeciesIndex.emplace(Name, Index);
  return Index;
}

ErrorOr<unsigned> ReactionNetwork::findSpecies(const std::string &Name) const {
  auto It = SpeciesIndex.find(Name);
  if (It == SpeciesIndex.end())
    return ErrorOr<unsigned>::failure("unknown species '" + Name + "'");
  return It->second;
}

void ReactionNetwork::addReaction(Reaction R) {
#ifndef NDEBUG
  for (const auto &[Idx, Coef] : R.Reactants)
    assert(Idx < SpeciesList.size() && Coef > 0 && "bad reactant entry");
  for (const auto &[Idx, Coef] : R.Products)
    assert(Idx < SpeciesList.size() && Coef > 0 && "bad product entry");
#endif
  Reactions.push_back(std::move(R));
}

std::vector<double> ReactionNetwork::initialState() const {
  std::vector<double> State(SpeciesList.size());
  for (size_t I = 0; I < SpeciesList.size(); ++I)
    State[I] = SpeciesList[I].InitialConcentration;
  return State;
}

Matrix ReactionNetwork::reactantMatrix() const {
  Matrix A(numReactions(), numSpecies());
  for (size_t R = 0; R < numReactions(); ++R)
    for (const auto &[Idx, Coef] : Reactions[R].Reactants)
      A(R, Idx) += Coef;
  return A;
}

Matrix ReactionNetwork::productMatrix() const {
  Matrix B(numReactions(), numSpecies());
  for (size_t R = 0; R < numReactions(); ++R)
    for (const auto &[Idx, Coef] : Reactions[R].Products)
      B(R, Idx) += Coef;
  return B;
}

Status ReactionNetwork::validate() const {
  if (SpeciesList.empty())
    return Status::failure("model has no species");
  if (Reactions.empty())
    return Status::failure("model has no reactions");
  for (size_t I = 0; I < SpeciesList.size(); ++I) {
    if (SpeciesList[I].InitialConcentration < 0)
      return Status::failure(
          formatString("species '%s' has negative initial concentration",
                       SpeciesList[I].Name.c_str()));
  }
  for (size_t R = 0; R < Reactions.size(); ++R) {
    const Reaction &Rx = Reactions[R];
    if (Rx.RateConstant < 0)
      return Status::failure(
          formatString("reaction %zu has negative rate constant", R));
    for (const auto &[Idx, Coef] : Rx.Reactants)
      if (Idx >= SpeciesList.size() || Coef == 0)
        return Status::failure(
            formatString("reaction %zu has a bad reactant entry", R));
    for (const auto &[Idx, Coef] : Rx.Products)
      if (Idx >= SpeciesList.size() || Coef == 0)
        return Status::failure(
            formatString("reaction %zu has a bad product entry", R));
    if (Rx.Kind == KineticsKind::MichaelisMenten) {
      if (Rx.Reactants.empty())
        return Status::failure(formatString(
            "Michaelis-Menten reaction %zu needs a substrate", R));
      if (Rx.Km <= 0)
        return Status::failure(
            formatString("reaction %zu needs a positive Km", R));
    }
    if (Rx.Kind == KineticsKind::Hill ||
        Rx.Kind == KineticsKind::HillRepression) {
      if (Rx.Reactants.empty())
        return Status::failure(
            formatString("Hill reaction %zu needs a substrate", R));
      if (Rx.HillK <= 0 || Rx.HillN <= 0)
        return Status::failure(
            formatString("reaction %zu needs positive Hill K and n", R));
    }
  }
  return Status::success();
}
