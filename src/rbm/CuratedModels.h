//===- rbm/CuratedModels.h - Built-in reaction networks ---------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Built-in RBMs: small classics used in tests/examples, plus the two
/// paper-scale surrogate networks documented in DESIGN.md:
///
/// - the autophagy/translation-switch surrogate: a lattice of coupled
///   Brusselator oscillator units with dense cross-inhibition, sized to
///   173 species and 6581 reactions, with a stress-input species (the
///   AMPK*-analogue) and a group of 5476 kinetic constants scaled by a
///   single inhibition-strength parameter (the P9-analogue);
/// - the human-metabolism surrogate: an enzyme-isoform carbohydrate
///   pathway with Michaelis-Menten kinetics, sized to 114 species and
///   226 reactions, with an 11-species hexokinase-isoform cluster, an
///   R5P-analogue reporter, and 78 rate constants flagged unknown for
///   parameter estimation.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_RBM_CURATEDMODELS_H
#define PSG_RBM_CURATEDMODELS_H

#include "rbm/ReactionNetwork.h"

namespace psg {

/// Robertson's stiff kinetics problem as a mass-action RBM
/// (X -> Y, Y + Z -> X + Z, 2Y -> Y + Z).
ReactionNetwork makeRobertsonNetwork();

/// The Brusselator limit-cycle oscillator as a mass-action RBM with a
/// constant feed species F; oscillates when B > 1 + (A*[F])^2.
ReactionNetwork makeBrusselatorNetwork(double FeedRate = 1.0,
                                       double ConversionRate = 2.5);

/// Lotka-Volterra predator-prey as a mass-action RBM.
ReactionNetwork makeLotkaVolterraNetwork();

/// Linear decay chain S1 -> S2 -> ... -> Sn with rate constants spread
/// log-uniformly over \p RateSpread decades (stiff for large spreads).
ReactionNetwork makeDecayChainNetwork(size_t Length = 10,
                                      double RateSpread = 4.0);

/// A minimal Michaelis-Menten + Hill showcase network.
ReactionNetwork makeSaturatingToyNetwork();

/// The protein-only repressilator (Elowitz & Leibler): a three-gene ring
/// where each protein represses the next one's production through a
/// Hill-repression rate law. Oscillates for the default parameters
/// (production \p Alpha = 10, HillN = 3, unit degradation).
ReactionNetwork makeRepressilatorNetwork(double Alpha = 10.0,
                                         double HillN = 3.0);

/// The autophagy/translation-switch surrogate with its sweep handles.
struct AutophagySurrogate {
  ReactionNetwork Net;
  unsigned StressSpecies = 0;     ///< AMPK*-analogue (feed) species index.
  std::vector<size_t> P9Reactions; ///< Reactions scaled by the P9-analogue.
  unsigned ReporterEif4ebp = 0;   ///< Oscillating reporter #1 (X of unit 0).
  unsigned ReporterAmbra = 0;     ///< Oscillating reporter #2 (Y of unit 0).
  double BaselineCrossRate = 0.0; ///< Baseline constant of P9Reactions.
};

/// Builds the autophagy surrogate. The defaults give the paper-matched
/// size (74 units -> 173 species, 6581 reactions, 74^2 = 5476 P9-scaled
/// constants); smaller \p Units produce a scaled-down network with the
/// same structure for fast tests.
AutophagySurrogate makeAutophagySurrogate(unsigned Units = 74,
                                          unsigned ChainLength = 24);

/// The metabolic-pathway surrogate with its analysis handles.
struct MetabolicSurrogate {
  ReactionNetwork Net;
  std::vector<unsigned> IsoformSpecies; ///< The 11 HK-isoform species.
  unsigned ReporterR5P = 0;             ///< Pentose-phosphate reporter.
  std::vector<size_t> UnknownParameters; ///< 78 reactions to estimate.
};

/// Builds the metabolic surrogate (114 species, 226 reactions).
MetabolicSurrogate makeMetabolicSurrogate();

} // namespace psg

#endif // PSG_RBM_CURATEDMODELS_H
