//===- rbm/Kinetics.h - Shared kinetics kernel primitives -------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The arithmetic primitives shared by every compiled kinetics kernel:
/// the scalar and lane-batched integer power, and the saturating-factor
/// evaluations (Michaelis-Menten, Hill activation, Hill repression) with
/// their derivatives. Scalar kernels (rbm/MassAction.cpp), lane-batched
/// kernels (rbm/LaneBatchOdeSystem.cpp), and the reference evaluators all
/// include this header so a rate factor is computed by exactly one
/// definition — the bit-exactness contracts between them reduce to "same
/// inputs through the same inline function".
///
//===----------------------------------------------------------------------===//

#ifndef PSG_RBM_KINETICS_H
#define PSG_RBM_KINETICS_H

#include <algorithm>
#include <cmath>

namespace psg {

/// Largest exponent evaluated as a plain sequential product. Up to this
/// bound ipow() is pinned bit-exact to the historical left-to-right
/// multiplication loop (R = ((1*X)*X)*X...), which is what keeps
/// compiled-kernel trajectories bit-identical across refactors: nearly
/// every stoichiometric coefficient and Hill exponent in practice is
/// <= 3. Above the bound exponentiation-by-squaring takes over; it
/// performs O(log E) multiplications but associates them differently, so
/// raising this constant is a bit-pattern-breaking change (pinned by
/// IpowTest in tests/rhs_kernels_test.cpp).
constexpr unsigned IpowLinearMax = 3;

/// Integer power. Sequential product for E <= IpowLinearMax (bit-exact
/// contract), exponentiation by squaring above.
inline double ipow(double X, unsigned E) {
  if (E <= IpowLinearMax) {
    double R = 1.0;
    for (unsigned I = 0; I < E; ++I)
      R *= X;
    return R;
  }
  double R = 1.0;
  double B = X;
  for (;;) {
    if (E & 1u)
      R *= B;
    E >>= 1u;
    if (E == 0)
      return R;
    B *= B;
  }
}

/// Lane-batched ipow: Out[l] = ipow(X[l], E) for Width lanes, with the
/// exact arithmetic of the scalar ipow per lane (the exponent is shared
/// model structure, so every lane takes the same path and the loops
/// autovectorize).
template <unsigned Width>
inline void ipowLanes(const double *__restrict X, unsigned E,
                      double *__restrict Out) {
  if (E <= IpowLinearMax) {
    for (unsigned Ln = 0; Ln < Width; ++Ln) {
      double R = 1.0;
      for (unsigned I = 0; I < E; ++I)
        R *= X[Ln];
      Out[Ln] = R;
    }
    return;
  }
  for (unsigned Ln = 0; Ln < Width; ++Ln)
    Out[Ln] = ipow(X[Ln], E);
}

/// S^n for the Hill factors: the integer fast path when the exponent is a
/// small whole number (HillNInt >= 0), std::pow otherwise. \p S must
/// already be clamped non-negative.
inline double hillPower(double S, double HillN, int HillNInt) {
  return HillNInt >= 0 ? ipow(S, static_cast<unsigned>(HillNInt))
                       : std::pow(S, HillN);
}

/// Michaelis-Menten factor S/(Km + S), with the substrate clamped to
/// non-negative values as every saturating evaluation does.
inline double mmFactor(double Km, double S) {
  S = std::max(S, 0.0);
  return S / (Km + S);
}

/// d/dS of the Michaelis-Menten factor: Km/(Km + S)^2.
inline double mmFactorDerivative(double Km, double S) {
  S = std::max(S, 0.0);
  const double Denom = Km + S;
  return Km / (Denom * Denom);
}

/// Hill factor from a precomputed S^n: activation Sn/(Kn + Sn) or
/// repression Kn/(Kn + Sn).
inline double hillFactor(double KnPow, double Sn, bool Repress) {
  return Repress ? KnPow / (KnPow + Sn) : Sn / (KnPow + Sn);
}

/// d/dS of the Hill factor at S (>= 0, pre-clamped), from the
/// precomputed S^n: +/- n*Kn*Sn / (S*(Kn+Sn)^2), with the S == 0 limit
/// of the n == 1 case handled explicitly.
inline double hillFactorDerivative(double KnPow, double HillN, double HillK,
                                   double S, double Sn, bool Repress) {
  const double Sign = Repress ? -1.0 : 1.0;
  if (S == 0.0)
    return HillN == 1.0 ? Sign / HillK : 0.0;
  const double Denom = KnPow + Sn;
  return Sign * HillN * KnPow * Sn / (S * Denom * Denom);
}

} // namespace psg

#endif // PSG_RBM_KINETICS_H
