//===- rbm/SbmlIo.h - SBML-subset import/export -----------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Import/export of an SBML subset, mirroring the upstream tool's
/// SBML <-> BioSimWare conversion companion. The supported subset is the
/// one mass-action RBMs need:
///
/// - <listOfSpecies> with id and initialConcentration (or initialAmount);
/// - <listOfReactions> with <listOfReactants>/<listOfProducts>
///   (speciesReference with stoichiometry) and a kinetic constant taken
///   from <listOfLocalParameters>/<listOfParameters> (id "k") or a
///   psg:rate attribute;
/// - reversible reactions are rejected (split them upstream), as are
///   rules, events, compartments with size != 1, and function
///   definitions.
///
/// The writer emits SBML L3V1 that this reader round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_RBM_SBMLIO_H
#define PSG_RBM_SBMLIO_H

#include "rbm/ReactionNetwork.h"

namespace psg {

/// Parses the supported SBML subset from \p Xml.
ErrorOr<ReactionNetwork> parseSbml(const std::string &Xml);

/// Loads an SBML file.
ErrorOr<ReactionNetwork> loadSbmlFile(const std::string &Path);

/// Serializes \p Net as SBML (mass-action reactions only; saturating
/// kinetics are rejected with a failure).
ErrorOr<std::string> writeSbml(const ReactionNetwork &Net);

/// Saves \p Net as an SBML file.
Status saveSbmlFile(const ReactionNetwork &Net, const std::string &Path);

namespace xml {
/// A minimal DOM for the SBML subset (exposed for unit tests).
struct Element {
  std::string Name;
  std::vector<std::pair<std::string, std::string>> Attributes;
  std::vector<Element> Children;
  std::string Text;

  /// Returns the attribute value or nullptr.
  const std::string *findAttribute(const std::string &Key) const;

  /// Returns the first child with \p ChildName or nullptr.
  const Element *findChild(const std::string &ChildName) const;

  /// Collects all children with \p ChildName.
  std::vector<const Element *> children(const std::string &ChildName) const;
};

/// Parses one XML document (elements, attributes, text; entities for
/// &amp; &lt; &gt; &quot; &apos;; comments and declarations skipped).
ErrorOr<Element> parseDocument(const std::string &Xml);
} // namespace xml

} // namespace psg

#endif // PSG_RBM_SBMLIO_H
