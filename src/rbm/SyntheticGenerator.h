//===- rbm/SyntheticGenerator.h - Random RBM generation ---------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SBGen-style generation of synthetic reaction networks of prescribed
/// size, used by the scaling experiments (benches F1-F3). Initial
/// concentrations are log-uniform in [1e-4, 1), kinetic constants
/// log-uniform in [1e-6, 10], reactions have at most two reactant and two
/// product molecules, matching the construction in this research line.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_RBM_SYNTHETICGENERATOR_H
#define PSG_RBM_SYNTHETICGENERATOR_H

#include "rbm/ReactionNetwork.h"
#include "support/Random.h"

namespace psg {

/// Tunables for synthetic model generation.
struct SyntheticModelOptions {
  size_t NumSpecies = 32;
  size_t NumReactions = 32;
  double MinInitialConcentration = 1e-4;
  double MaxInitialConcentration = 1.0;
  double MinRateConstant = 1e-6;
  double MaxRateConstant = 10.0;
  /// Sampling weights for zero-, first- and second-order reactions.
  double OrderWeights[3] = {0.05, 0.45, 0.50};
  uint64_t Seed = 1;
};

/// Generates a random mass-action RBM. Every species is guaranteed to
/// appear in at least one reaction when NumReactions >= NumSpecies
/// (reactant/product slots cycle through the species before randomizing).
ReactionNetwork generateSyntheticModel(const SyntheticModelOptions &Opts);

/// Tunables for the conformance fuzzer's randomized models (psg::check).
/// Unlike the scaling generator above, sizes are drawn per model, rate
/// constants carry an explicit stiffness knob, and a fraction of the
/// reactions use saturating Hill kinetics (activating or repressive).
struct RandomRbmOptions {
  size_t MinSpecies = 3, MaxSpecies = 8;
  size_t MinReactions = 4, MaxReactions = 12;
  /// Fraction of reactions given Hill kinetics (the rest is mass action);
  /// of those, RepressionFraction become HillRepression.
  double HillFraction = 0.25;
  double RepressionFraction = 0.5;
  /// Fraction of non-Hill reactions given Michaelis-Menten kinetics.
  /// Defaults to zero, and a zero fraction consumes no RNG draws, so
  /// models generated with the historical defaults stay byte-identical
  /// seed-for-seed (the fuzz corpora depend on that).
  double MichaelisMentenFraction = 0.0;
  /// Rate constants are log-uniform in [MidRate/Spread, MidRate*Spread]:
  /// the spread is the stiffness knob (time-scale separation ~ Spread^2).
  double MidRate = 1.0;
  double StiffnessSpread = 10.0;
  double MinInitialConcentration = 0.1;
  double MaxInitialConcentration = 2.0;
  uint64_t Seed = 1;
};

/// Generates a random RBM for differential testing. The construction is
/// fully deterministic in Opts (same options -> byte-identical model) and
/// always validates. Second-order reactions never create net molecules,
/// so trajectories cannot blow up in finite time (growth is at most
/// exponential at the fastest first-order rate).
ReactionNetwork generateRandomRbm(const RandomRbmOptions &Opts);

/// Applies the +/-25% log-uniform kinetic perturbation of the evaluation
/// protocol to every rate constant of \p Constants, in place:
/// k <- exp(ln(0.75 k) + (ln(1.25 k) - ln(0.75 k)) * U[0,1)).
void perturbRateConstants(std::vector<double> &Constants, Rng &Generator);

} // namespace psg

#endif // PSG_RBM_SYNTHETICGENERATOR_H
