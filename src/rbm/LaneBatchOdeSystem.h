//===- rbm/LaneBatchOdeSystem.h - SIMD lane-batched kinetics ----*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lane-batched view of a CompiledModel: one immutable compilation
/// evaluated for L parameterizations per rhs call, with every mutable
/// array — rate constants, rate scratch — transposed to SoA so the
/// per-reaction inner loops run over L contiguous lanes and
/// autovectorize. This is the CPU mirror of the paper's coarse-grained
/// GPU strategy: where a warp assigns neighbouring threads to
/// neighbouring parameterizations of the same model, here neighbouring
/// SIMD lanes carry them, and one instruction advances all L at once.
///
/// Buffers are 64-byte aligned and padded to the lane width; lane counts
/// 1/2/4/8 get fully unrolled inner loops (compile-time L), anything else
/// a generic runtime-width path.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_RBM_LANEBATCHODESYSTEM_H
#define PSG_RBM_LANEBATCHODESYSTEM_H

#include "ode/LaneSystem.h"
#include "rbm/MassAction.h"

#include <new>
#include <vector>

namespace psg {

/// Minimal aligned allocator for the SoA lane buffers (the compiler can
/// then use aligned vector loads over lane columns).
template <typename T, size_t Alignment> struct AlignedAllocator {
  using value_type = T;
  /// Explicit rebind: the non-type Alignment parameter defeats the
  /// default rebinding of allocator_traits.
  template <typename U> struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment> &) {}
  T *allocate(size_t N) {
    return static_cast<T *>(
        ::operator new(N * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T *P, size_t) noexcept {
    ::operator delete(P, std::align_val_t(Alignment));
  }
  bool operator==(const AlignedAllocator &) const { return true; }
  bool operator!=(const AlignedAllocator &) const { return false; }
};

/// A 64-byte-aligned double buffer, the natural unit of SoA lane state.
using LaneBuffer = std::vector<double, AlignedAllocator<double, 64>>;

/// Evaluates one CompiledModel for lanes() parameterizations per call.
/// Each lane has its own rate-constant vector (stored SoA:
/// constant of reaction r, lane l at index r * lanes() + l); the model
/// structure — stoichiometry, kinetics shapes — is shared, exactly like
/// the constant-memory image of a coarse-grained GPU batch.
class LaneBatchOdeSystem : public LaneOdeSystem {
public:
  /// Wraps \p Model with \p Lanes lanes, all initialized to the model's
  /// default rate constants.
  LaneBatchOdeSystem(std::shared_ptr<const CompiledModel> Model,
                     unsigned Lanes);

  size_t dimension() const override { return Shared->NumSpecies; }
  unsigned lanes() const override { return L; }
  void rhsLanes(double T, const double *Y, double *DyDt) const override;
  std::string name() const override { return Shared->SystemName; }

  /// The shared immutable compilation backing every lane.
  const CompiledModel &model() const { return *Shared; }

  /// Re-points all lanes at a different compilation (rate constants reset
  /// to the new defaults); the lane width is preserved. Reused per-worker
  /// instances rebind once per sub-batch, like CompiledOdeSystem.
  void rebind(std::shared_ptr<const CompiledModel> Model);

  /// Replaces lane \p Lane's rate constants from a raw span of
  /// numReactions() doubles, scattering into the SoA store in place.
  void setLaneRateConstants(unsigned Lane, const double *K, size_t Count);

  /// Restores lane \p Lane to the model's default constants.
  void resetLaneRateConstants(unsigned Lane);

  /// Reads the constant of reaction \p R on lane \p Lane (tests).
  double laneRateConstant(unsigned Lane, size_t R) const {
    return RateK[R * L + Lane];
  }

private:
  std::shared_ptr<const CompiledModel> Shared;
  unsigned L;
  /// SoA rate constants: reaction-major, lane-minor.
  LaneBuffer RateK;
  /// SoA per-reaction rates, written by every rhsLanes call.
  mutable LaneBuffer RateScratch;

  template <unsigned Width>
  void rhsImpl(const double *Y, double *DyDt) const;
  void rhsGeneric(const double *Y, double *DyDt) const;
};

} // namespace psg

#endif // PSG_RBM_LANEBATCHODESYSTEM_H
