//===- rbm/LaneBatchOdeSystem.cpp -----------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
// The lane loops below are written to autovectorize: fixed trip count
// (template Width), contiguous unit-stride accesses, no lane-dependent
// control flow. Control flow depends only on shared model structure, and
// with the kind-partitioned kernel runs of CompiledModel v2 even the
// per-reaction kinetics branch is gone: each KernelRun executes one
// branch-free loop over its contiguous positions — the same property that
// keeps a GPU warp divergence-free when its threads run different
// parameterizations of one model.
//
// Per-lane arithmetic is kept bit-identical to the scalar
// CompiledOdeSystem kernels (pinned by LaneBatchTest): every factor goes
// through the shared rbm/Kinetics.h primitives.
//
//===----------------------------------------------------------------------===//

#include "rbm/LaneBatchOdeSystem.h"

#include "rbm/Kinetics.h"

#include <algorithm>
#include <cmath>

using namespace psg;

LaneBatchOdeSystem::LaneBatchOdeSystem(
    std::shared_ptr<const CompiledModel> Model, unsigned Lanes)
    : Shared(std::move(Model)), L(Lanes) {
  assert(L >= 1 && "need at least one lane");
  RateK.resize(Shared->NumReactions * L);
  RateScratch.resize(Shared->NumReactions * L);
  for (unsigned Ln = 0; Ln < L; ++Ln)
    resetLaneRateConstants(Ln);
}

void LaneBatchOdeSystem::rebind(std::shared_ptr<const CompiledModel> Model) {
  Shared = std::move(Model);
  RateK.resize(Shared->NumReactions * L);
  RateScratch.resize(Shared->NumReactions * L);
  for (unsigned Ln = 0; Ln < L; ++Ln)
    resetLaneRateConstants(Ln);
}

void LaneBatchOdeSystem::setLaneRateConstants(unsigned Lane, const double *K,
                                              size_t Count) {
  assert(Lane < L && "lane index out of range");
  assert(Count == Shared->NumReactions && "rate constant span size mismatch");
  for (size_t R = 0; R < Count; ++R)
    RateK[R * L + Lane] = K[R];
}

void LaneBatchOdeSystem::resetLaneRateConstants(unsigned Lane) {
  assert(Lane < L && "lane index out of range");
  const std::vector<double> &Defaults = Shared->DefaultConstants;
  for (size_t R = 0; R < Defaults.size(); ++R)
    RateK[R * L + Lane] = Defaults[R];
}

namespace {

/// Rate[Ln] *= ipow(X[Ln], C) for Width lanes, with the scalar kernels'
/// exact arithmetic (C == 1 multiplies straight through, matching
/// ipow(x, 1) == x bit-for-bit).
template <unsigned Width>
inline void tailMultiplyLanes(const double *__restrict X, uint32_t C,
                              double *__restrict Rate) {
  if (C == 1) {
    for (unsigned Ln = 0; Ln < Width; ++Ln)
      Rate[Ln] *= X[Ln];
    return;
  }
  double P[Width];
  ipowLanes<Width>(X, C, P);
  for (unsigned Ln = 0; Ln < Width; ++Ln)
    Rate[Ln] *= P[Ln];
}

/// The mass-action tail of a saturating or general-product reaction:
/// multiplies terms [T, End) into the Width rate lanes.
template <unsigned Width>
inline void tailLanes(const CompiledModel &M, const double *__restrict Yv,
                      uint32_t T, uint32_t End, double *__restrict Rate) {
  for (; T < End; ++T)
    tailMultiplyLanes<Width>(Yv + M.TermSpecies[T] * Width, M.TermCoef[T],
                             Rate);
}

/// Hill-kernel rate run over positions [PBegin, PEnd), lane-batched,
/// activation/repression resolved at compile time.
template <unsigned Width, bool Repress>
void hillRateLanes(const CompiledModel &M, const double *__restrict Kc,
                   const double *__restrict Yv, uint32_t PBegin, uint32_t PEnd,
                   double *__restrict Rates) {
  const uint32_t *__restrict Ord = M.RunOrder.data();
  for (uint32_t P = PBegin; P < PEnd; ++P) {
    const size_t R = Ord[P];
    const double *__restrict K = Kc + R * Width;
    const double *__restrict X = Yv + M.PosA[P] * Width;
    double *__restrict Rate = Rates + R * Width;
    const double HillN = M.PosHillN[P];
    const int HillNInt = M.PosHillNInt[P];
    const double Kn = M.PosKnPow[P];
    double Sn[Width];
    if (HillNInt >= 0) {
      double S[Width];
      for (unsigned Ln = 0; Ln < Width; ++Ln)
        S[Ln] = std::max(X[Ln], 0.0);
      ipowLanes<Width>(S, static_cast<unsigned>(HillNInt), Sn);
    } else {
      for (unsigned Ln = 0; Ln < Width; ++Ln)
        Sn[Ln] = std::pow(std::max(X[Ln], 0.0), HillN);
    }
    for (unsigned Ln = 0; Ln < Width; ++Ln)
      Rate[Ln] = K[Ln] * hillFactor(Kn, Sn[Ln], Repress);
    tailLanes<Width>(M, Yv, M.PosTailBegin[P], M.PosTailEnd[P], Rate);
  }
}

} // namespace

template <unsigned Width>
void LaneBatchOdeSystem::rhsImpl(const double *Y, double *DyDt) const {
  const CompiledModel &M = *Shared;
  const double *__restrict Yv = Y;
  double *__restrict Out = DyDt;
  double *__restrict Rates = RateScratch.data();
  const double *__restrict Kc = RateK.data();
  const uint32_t *__restrict Ord = M.RunOrder.data();

  for (const CompiledModel::KernelRun &Run : M.Runs) {
    switch (Run.Class) {
    case KernelClass::MassAction1:
      for (uint32_t P = Run.Begin; P < Run.End; ++P) {
        const size_t R = Ord[P];
        const double *__restrict K = Kc + R * Width;
        const double *__restrict A = Yv + M.PosA[P] * Width;
        double *__restrict Rate = Rates + R * Width;
        for (unsigned Ln = 0; Ln < Width; ++Ln)
          Rate[Ln] = K[Ln] * A[Ln];
      }
      break;
    case KernelClass::MassAction2:
      for (uint32_t P = Run.Begin; P < Run.End; ++P) {
        const size_t R = Ord[P];
        const double *__restrict K = Kc + R * Width;
        const double *__restrict A = Yv + M.PosA[P] * Width;
        const double *__restrict B = Yv + M.PosB[P] * Width;
        double *__restrict Rate = Rates + R * Width;
        for (unsigned Ln = 0; Ln < Width; ++Ln)
          Rate[Ln] = K[Ln] * A[Ln] * B[Ln];
      }
      break;
    case KernelClass::MassActionN:
      for (uint32_t P = Run.Begin; P < Run.End; ++P) {
        const size_t R = Ord[P];
        const double *__restrict K = Kc + R * Width;
        double *__restrict Rate = Rates + R * Width;
        for (unsigned Ln = 0; Ln < Width; ++Ln)
          Rate[Ln] = K[Ln];
        tailLanes<Width>(M, Yv, M.PosTailBegin[P], M.PosTailEnd[P], Rate);
      }
      break;
    case KernelClass::MichaelisMenten:
      for (uint32_t P = Run.Begin; P < Run.End; ++P) {
        const size_t R = Ord[P];
        const double *__restrict K = Kc + R * Width;
        const double *__restrict X = Yv + M.PosA[P] * Width;
        double *__restrict Rate = Rates + R * Width;
        const double Km = M.PosKm[P];
        for (unsigned Ln = 0; Ln < Width; ++Ln)
          Rate[Ln] = K[Ln] * mmFactor(Km, X[Ln]);
        tailLanes<Width>(M, Yv, M.PosTailBegin[P], M.PosTailEnd[P], Rate);
      }
      break;
    case KernelClass::Hill:
      hillRateLanes<Width, false>(M, Kc, Yv, Run.Begin, Run.End, Rates);
      break;
    case KernelClass::HillRepression:
      hillRateLanes<Width, true>(M, Kc, Yv, Run.Begin, Run.End, Rates);
      break;
    }
  }

  const size_t NL = M.NumSpecies * Width;
  for (size_t I = 0; I < NL; ++I)
    Out[I] = 0.0;
  // Accumulation stays in original reaction order, mirroring the scalar
  // kernels' bit-exactness argument.
  for (size_t R = 0; R < M.NumReactions; ++R) {
    const double *__restrict Rate = Rates + R * Width;
    for (uint32_t E = M.NetBegin[R]; E < M.NetBegin[R + 1]; ++E) {
      double *__restrict Acc = Out + M.NetSpecies[E] * Width;
      const double C = M.NetCoef[E];
      for (unsigned Ln = 0; Ln < Width; ++Ln)
        Acc[Ln] += C * Rate[Ln];
    }
  }
}

void LaneBatchOdeSystem::rhsGeneric(const double *Y, double *DyDt) const {
  const CompiledModel &M = *Shared;
  double *Rates = RateScratch.data();
  const uint32_t *Ord = M.RunOrder.data();
  for (const CompiledModel::KernelRun &Run : M.Runs) {
    for (uint32_t P = Run.Begin; P < Run.End; ++P) {
      const size_t R = Ord[P];
      double *Rate = Rates + R * L;
      const double *K = RateK.data() + R * L;
      uint32_t T = M.PosTailBegin[P];
      const uint32_t End = M.PosTailEnd[P];
      switch (Run.Class) {
      case KernelClass::MassAction1:
      case KernelClass::MassAction2:
      case KernelClass::MassActionN:
        for (unsigned Ln = 0; Ln < L; ++Ln)
          Rate[Ln] = K[Ln];
        break;
      case KernelClass::MichaelisMenten: {
        const double Km = M.PosKm[P];
        const double *X = Y + M.PosA[P] * L;
        for (unsigned Ln = 0; Ln < L; ++Ln)
          Rate[Ln] = K[Ln] * mmFactor(Km, X[Ln]);
        break;
      }
      case KernelClass::Hill:
      case KernelClass::HillRepression: {
        const bool Repress = Run.Class == KernelClass::HillRepression;
        const double *X = Y + M.PosA[P] * L;
        for (unsigned Ln = 0; Ln < L; ++Ln) {
          const double S = std::max(X[Ln], 0.0);
          const double Sn = hillPower(S, M.PosHillN[P], M.PosHillNInt[P]);
          Rate[Ln] = K[Ln] * hillFactor(M.PosKnPow[P], Sn, Repress);
        }
        break;
      }
      }
      for (; T < End; ++T) {
        const double *X = Y + M.TermSpecies[T] * L;
        const uint32_t C = M.TermCoef[T];
        if (C == 1) {
          for (unsigned Ln = 0; Ln < L; ++Ln)
            Rate[Ln] *= X[Ln];
        } else {
          for (unsigned Ln = 0; Ln < L; ++Ln)
            Rate[Ln] *= ipow(X[Ln], C);
        }
      }
    }
  }
  std::fill(DyDt, DyDt + M.NumSpecies * L, 0.0);
  for (size_t R = 0; R < M.NumReactions; ++R) {
    const double *Rate = Rates + R * L;
    for (uint32_t E = M.NetBegin[R]; E < M.NetBegin[R + 1]; ++E) {
      double *Acc = DyDt + M.NetSpecies[E] * L;
      const double C = M.NetCoef[E];
      for (unsigned Ln = 0; Ln < L; ++Ln)
        Acc[Ln] += C * Rate[Ln];
    }
  }
}

void LaneBatchOdeSystem::rhsLanes(double, const double *Y,
                                  double *DyDt) const {
  switch (L) {
  case 1:
    return rhsImpl<1>(Y, DyDt);
  case 2:
    return rhsImpl<2>(Y, DyDt);
  case 4:
    return rhsImpl<4>(Y, DyDt);
  case 8:
    return rhsImpl<8>(Y, DyDt);
  default:
    return rhsGeneric(Y, DyDt);
  }
}
