//===- rbm/LaneBatchOdeSystem.cpp -----------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
// The lane loops below are written to autovectorize: fixed trip count
// (template Width), contiguous unit-stride accesses, no lane-dependent
// control flow. Branches depend only on shared model structure, so every
// lane takes the same path — the same property that keeps a GPU warp
// divergence-free when its threads run different parameterizations of one
// model.
//
//===----------------------------------------------------------------------===//

#include "rbm/LaneBatchOdeSystem.h"

#include <algorithm>
#include <cmath>

using namespace psg;

LaneBatchOdeSystem::LaneBatchOdeSystem(
    std::shared_ptr<const CompiledModel> Model, unsigned Lanes)
    : Shared(std::move(Model)), L(Lanes) {
  assert(L >= 1 && "need at least one lane");
  RateK.resize(Shared->NumReactions * L);
  RateScratch.resize(Shared->NumReactions * L);
  for (unsigned Ln = 0; Ln < L; ++Ln)
    resetLaneRateConstants(Ln);
}

void LaneBatchOdeSystem::rebind(std::shared_ptr<const CompiledModel> Model) {
  Shared = std::move(Model);
  RateK.resize(Shared->NumReactions * L);
  RateScratch.resize(Shared->NumReactions * L);
  for (unsigned Ln = 0; Ln < L; ++Ln)
    resetLaneRateConstants(Ln);
}

void LaneBatchOdeSystem::setLaneRateConstants(unsigned Lane, const double *K,
                                              size_t Count) {
  assert(Lane < L && "lane index out of range");
  assert(Count == Shared->NumReactions && "rate constant span size mismatch");
  for (size_t R = 0; R < Count; ++R)
    RateK[R * L + Lane] = K[R];
}

void LaneBatchOdeSystem::resetLaneRateConstants(unsigned Lane) {
  assert(Lane < L && "lane index out of range");
  const std::vector<double> &Defaults = Shared->DefaultConstants;
  for (size_t R = 0; R < Defaults.size(); ++R)
    RateK[R * L + Lane] = Defaults[R];
}

namespace {

/// Lane-batched saturating factor (MM / Hill / Hill repression) for the
/// Width lanes of species values \p X, into \p Out. Mirrors
/// CompiledOdeSystem::saturatingFactor per lane; the HillNInt fast path
/// keeps the Hill case free of lane-serializing libm calls.
template <unsigned Width>
inline void saturatingLanes(const CompiledModel::KineticsParams &P,
                            const double *__restrict X,
                            double *__restrict Out) {
  if (P.Kind == KineticsKind::MichaelisMenten) {
    for (unsigned Ln = 0; Ln < Width; ++Ln) {
      const double S = std::max(X[Ln], 0.0);
      Out[Ln] = S / (P.Km + S);
    }
    return;
  }
  const double Kn = P.KnPow;
  double Sn[Width];
  if (P.HillNInt >= 0) {
    const unsigned E = static_cast<unsigned>(P.HillNInt);
    for (unsigned Ln = 0; Ln < Width; ++Ln) {
      const double S = std::max(X[Ln], 0.0);
      double R = 1.0;
      for (unsigned I = 0; I < E; ++I)
        R *= S;
      Sn[Ln] = R;
    }
  } else {
    for (unsigned Ln = 0; Ln < Width; ++Ln)
      Sn[Ln] = std::pow(std::max(X[Ln], 0.0), P.HillN);
  }
  if (P.Kind == KineticsKind::HillRepression) {
    for (unsigned Ln = 0; Ln < Width; ++Ln)
      Out[Ln] = Kn / (Kn + Sn[Ln]);
  } else {
    for (unsigned Ln = 0; Ln < Width; ++Ln)
      Out[Ln] = Sn[Ln] / (Kn + Sn[Ln]);
  }
}

} // namespace

template <unsigned Width>
void LaneBatchOdeSystem::rhsImpl(const double *Y, double *DyDt) const {
  const CompiledModel &M = *Shared;
  const double *__restrict Yv = Y;
  double *__restrict Out = DyDt;
  double *__restrict Rates = RateScratch.data();
  const double *__restrict Kc = RateK.data();

  for (size_t R = 0; R < M.NumReactions; ++R) {
    double Rate[Width];
    for (unsigned Ln = 0; Ln < Width; ++Ln)
      Rate[Ln] = Kc[R * Width + Ln];
    uint32_t T = M.TermBegin[R];
    const uint32_t End = M.TermBegin[R + 1];
    // Saturating factor applies to the first term only (peeled, as in the
    // scalar computeRates).
    if (T < End && M.Kinetics[R].Kind != KineticsKind::MassAction) {
      double Fac[Width];
      saturatingLanes<Width>(M.Kinetics[R], Yv + M.TermSpecies[T] * Width,
                             Fac);
      for (unsigned Ln = 0; Ln < Width; ++Ln)
        Rate[Ln] *= Fac[Ln];
      ++T;
    }
    for (; T < End; ++T) {
      const double *__restrict X = Yv + M.TermSpecies[T] * Width;
      const uint32_t C = M.TermCoef[T];
      if (C == 1) {
        for (unsigned Ln = 0; Ln < Width; ++Ln)
          Rate[Ln] *= X[Ln];
      } else {
        for (unsigned Ln = 0; Ln < Width; ++Ln) {
          double P = 1.0;
          for (uint32_t I = 0; I < C; ++I)
            P *= X[Ln];
          Rate[Ln] *= P;
        }
      }
    }
    for (unsigned Ln = 0; Ln < Width; ++Ln)
      Rates[R * Width + Ln] = Rate[Ln];
  }

  const size_t NL = M.NumSpecies * Width;
  for (size_t I = 0; I < NL; ++I)
    Out[I] = 0.0;
  for (size_t R = 0; R < M.NumReactions; ++R) {
    const double *__restrict Rate = Rates + R * Width;
    for (uint32_t E = M.NetBegin[R]; E < M.NetBegin[R + 1]; ++E) {
      double *__restrict Acc = Out + M.NetSpecies[E] * Width;
      const double C = M.NetCoef[E];
      for (unsigned Ln = 0; Ln < Width; ++Ln)
        Acc[Ln] += C * Rate[Ln];
    }
  }
}

void LaneBatchOdeSystem::rhsGeneric(const double *Y, double *DyDt) const {
  const CompiledModel &M = *Shared;
  double *Rates = RateScratch.data();
  for (size_t R = 0; R < M.NumReactions; ++R) {
    double *Rate = Rates + R * L;
    for (unsigned Ln = 0; Ln < L; ++Ln)
      Rate[Ln] = RateK[R * L + Ln];
    uint32_t T = M.TermBegin[R];
    const uint32_t End = M.TermBegin[R + 1];
    if (T < End && M.Kinetics[R].Kind != KineticsKind::MassAction) {
      const CompiledModel::KineticsParams &P = M.Kinetics[R];
      const double *X = Y + M.TermSpecies[T] * L;
      for (unsigned Ln = 0; Ln < L; ++Ln) {
        const double S = std::max(X[Ln], 0.0);
        double Fac;
        if (P.Kind == KineticsKind::MichaelisMenten) {
          Fac = S / (P.Km + S);
        } else {
          double Sn;
          if (P.HillNInt >= 0) {
            Sn = 1.0;
            for (int I = 0; I < P.HillNInt; ++I)
              Sn *= S;
          } else {
            Sn = std::pow(S, P.HillN);
          }
          Fac = P.Kind == KineticsKind::HillRepression
                    ? P.KnPow / (P.KnPow + Sn)
                    : Sn / (P.KnPow + Sn);
        }
        Rate[Ln] *= Fac;
      }
      ++T;
    }
    for (; T < End; ++T) {
      const double *X = Y + M.TermSpecies[T] * L;
      const uint32_t C = M.TermCoef[T];
      for (unsigned Ln = 0; Ln < L; ++Ln) {
        double P = 1.0;
        for (uint32_t I = 0; I < C; ++I)
          P *= X[Ln];
        Rate[Ln] *= P;
      }
    }
  }
  std::fill(DyDt, DyDt + M.NumSpecies * L, 0.0);
  for (size_t R = 0; R < M.NumReactions; ++R) {
    const double *Rate = Rates + R * L;
    for (uint32_t E = M.NetBegin[R]; E < M.NetBegin[R + 1]; ++E) {
      double *Acc = DyDt + M.NetSpecies[E] * L;
      const double C = M.NetCoef[E];
      for (unsigned Ln = 0; Ln < L; ++Ln)
        Acc[Ln] += C * Rate[Ln];
    }
  }
}

void LaneBatchOdeSystem::rhsLanes(double, const double *Y,
                                  double *DyDt) const {
  switch (L) {
  case 1:
    return rhsImpl<1>(Y, DyDt);
  case 2:
    return rhsImpl<2>(Y, DyDt);
  case 4:
    return rhsImpl<4>(Y, DyDt);
  case 8:
    return rhsImpl<8>(Y, DyDt);
  default:
    return rhsGeneric(Y, DyDt);
  }
}
