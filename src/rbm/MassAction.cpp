//===- rbm/MassAction.cpp -------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "rbm/MassAction.h"

#include "rbm/Kinetics.h"
#include "support/Error.h"
#include "support/Metrics.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstring>

using namespace psg;

namespace {
/// FNV-1a over mixed words; doubles hash by bit pattern.
class Fnv {
public:
  void mix(uint64_t V) {
    for (unsigned B = 0; B < 8; ++B) {
      H ^= (V >> (8 * B)) & 0xFF;
      H *= 0x100000001B3ull;
    }
  }
  void mix(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    mix(Bits);
  }
  void mix(const std::string &S) {
    mix(static_cast<uint64_t>(S.size()));
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 0x100000001B3ull;
    }
  }
  uint64_t value() const { return H; }

private:
  uint64_t H = 0xCBF29CE484222325ull;
};

/// Process-wide source of pattern epochs (see CompiledOdeSystem::
/// PatternEpoch): never reused, so a workspace claimed under an old epoch
/// can never collide with a new view allocated at the same address.
std::atomic<uint64_t> PatternEpochCounter{0};

uint64_t nextPatternEpoch() {
  return PatternEpochCounter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Process-wide kernel-path switch (see setUseReferenceKernelsForTesting).
std::atomic<bool> UseReferenceKernelsFlag{false};
} // namespace

uint64_t psg::networkFingerprint(const ReactionNetwork &Net) {
  Fnv H;
  H.mix(Net.name());
  H.mix(static_cast<uint64_t>(Net.numSpecies()));
  H.mix(static_cast<uint64_t>(Net.numReactions()));
  for (const Reaction &Rx : Net.allReactions()) {
    H.mix(static_cast<uint64_t>(Rx.Reactants.size()));
    for (const auto &[Idx, Coef] : Rx.Reactants) {
      H.mix(static_cast<uint64_t>(Idx));
      H.mix(static_cast<uint64_t>(Coef));
    }
    H.mix(static_cast<uint64_t>(Rx.Products.size()));
    for (const auto &[Idx, Coef] : Rx.Products) {
      H.mix(static_cast<uint64_t>(Idx));
      H.mix(static_cast<uint64_t>(Coef));
    }
    H.mix(static_cast<uint64_t>(Rx.Kind));
    H.mix(Rx.RateConstant);
    H.mix(Rx.Km);
    H.mix(Rx.HillK);
    H.mix(Rx.HillN);
  }
  return H.value();
}

/// The kernel class of reaction \p R: saturating kinds map to their
/// dedicated class when they have a substrate term (a saturating reaction
/// with no reactants degenerates to rate = k, i.e. mass action), mass
/// action splits by the two dominant shapes.
static KernelClass classifyReaction(const CompiledModel &M, size_t R) {
  const uint32_t Begin = M.TermBegin[R], End = M.TermBegin[R + 1];
  const uint32_t NumTerms = End - Begin;
  if (NumTerms > 0) {
    switch (M.Kinetics[R].Kind) {
    case KineticsKind::MichaelisMenten:
      return KernelClass::MichaelisMenten;
    case KineticsKind::Hill:
      return KernelClass::Hill;
    case KineticsKind::HillRepression:
      return KernelClass::HillRepression;
    case KineticsKind::MassAction:
      break;
    }
  }
  if (NumTerms == 1 && M.TermCoef[Begin] == 1)
    return KernelClass::MassAction1;
  if (NumTerms == 2 && M.TermCoef[Begin] == 1 && M.TermCoef[Begin + 1] == 1)
    return KernelClass::MassAction2;
  return KernelClass::MassActionN;
}

CompiledModel::CompiledModel(const ReactionNetwork &Net)
    : SystemName(Net.name()), NumSpecies(Net.numSpecies()),
      NumReactions(Net.numReactions()) {
  if (Status S = Net.validate(); !S)
    fatalError("cannot compile invalid network: " + S.message());

  TermBegin.reserve(NumReactions + 1);
  NetBegin.reserve(NumReactions + 1);
  DefaultConstants.reserve(NumReactions);
  Kinetics.reserve(NumReactions);

  std::vector<std::pair<uint32_t, double>> Net0;
  for (size_t R = 0; R < NumReactions; ++R) {
    const Reaction &Rx = Net.reaction(R);
    TermBegin.push_back(static_cast<uint32_t>(TermSpecies.size()));
    for (const auto &[Idx, Coef] : Rx.Reactants) {
      TermSpecies.push_back(Idx);
      TermCoef.push_back(Coef);
    }
    // Net stoichiometry B - A, merged per species.
    NetBegin.push_back(static_cast<uint32_t>(NetSpecies.size()));
    Net0.clear();
    for (const auto &[Idx, Coef] : Rx.Reactants)
      Net0.emplace_back(Idx, -static_cast<double>(Coef));
    for (const auto &[Idx, Coef] : Rx.Products) {
      bool Merged = false;
      for (auto &[I0, C0] : Net0)
        if (I0 == Idx) {
          C0 += Coef;
          Merged = true;
          break;
        }
      if (!Merged)
        Net0.emplace_back(Idx, static_cast<double>(Coef));
    }
    for (const auto &[Idx, Coef] : Net0)
      if (Coef != 0.0) {
        NetSpecies.push_back(Idx);
        NetCoef.push_back(Coef);
      }
    DefaultConstants.push_back(Rx.RateConstant);
    const double KnPow = Rx.Kind == KineticsKind::Hill ||
                                 Rx.Kind == KineticsKind::HillRepression
                             ? std::pow(Rx.HillK, Rx.HillN)
                             : 0.0;
    int HillNInt = -1;
    if (Rx.HillN >= 0.0 && Rx.HillN <= 16.0 &&
        Rx.HillN == std::floor(Rx.HillN))
      HillNInt = static_cast<int>(Rx.HillN);
    Kinetics.push_back({Rx.Kind, Rx.Km, Rx.HillK, Rx.HillN, KnPow, HillNInt});
  }
  TermBegin.push_back(static_cast<uint32_t>(TermSpecies.size()));
  NetBegin.push_back(static_cast<uint32_t>(NetSpecies.size()));

  // --- Kind partition: stable bucket sort of reactions by kernel class.
  std::vector<KernelClass> ClassOf(NumReactions);
  std::array<uint32_t, NumKernelClasses> ClassCount{};
  for (size_t R = 0; R < NumReactions; ++R) {
    ClassOf[R] = classifyReaction(*this, R);
    ++ClassCount[static_cast<size_t>(ClassOf[R])];
  }
  std::array<uint32_t, NumKernelClasses> ClassNext{};
  uint32_t Offset = 0;
  for (size_t C = 0; C < NumKernelClasses; ++C) {
    ClassNext[C] = Offset;
    if (ClassCount[C] > 0)
      Runs.push_back({static_cast<KernelClass>(C), Offset,
                      Offset + ClassCount[C]});
    Offset += ClassCount[C];
  }
  RunOrder.resize(NumReactions);
  PositionOf.resize(NumReactions);
  for (size_t R = 0; R < NumReactions; ++R) {
    const uint32_t P = ClassNext[static_cast<size_t>(ClassOf[R])]++;
    RunOrder[P] = static_cast<uint32_t>(R);
    PositionOf[R] = P;
  }

  // Position-indexed operands and saturating parameters.
  PosA.assign(NumReactions, 0);
  PosB.assign(NumReactions, 0);
  PosKm.assign(NumReactions, 0.0);
  PosKnPow.assign(NumReactions, 0.0);
  PosHillN.assign(NumReactions, 0.0);
  PosHillK.assign(NumReactions, 0.0);
  PosHillNInt.assign(NumReactions, -1);
  PosTerm0.assign(NumReactions, 0);
  PosTailBegin.assign(NumReactions, 0);
  PosTailEnd.assign(NumReactions, 0);
  for (uint32_t P = 0; P < NumReactions; ++P) {
    const uint32_t R = RunOrder[P];
    const uint32_t Begin = TermBegin[R];
    const bool Saturating = ClassOf[R] == KernelClass::MichaelisMenten ||
                            ClassOf[R] == KernelClass::Hill ||
                            ClassOf[R] == KernelClass::HillRepression;
    PosTerm0[P] = Begin;
    PosTailBegin[P] = Saturating ? Begin + 1 : Begin;
    PosTailEnd[P] = TermBegin[R + 1];
    switch (ClassOf[R]) {
    case KernelClass::MassAction2:
      PosB[P] = TermSpecies[Begin + 1];
      [[fallthrough]];
    case KernelClass::MassAction1:
      PosA[P] = TermSpecies[Begin];
      break;
    case KernelClass::MassActionN:
      break;
    case KernelClass::MichaelisMenten:
      PosA[P] = TermSpecies[Begin];
      PosKm[P] = Kinetics[R].Km;
      break;
    case KernelClass::Hill:
    case KernelClass::HillRepression:
      PosA[P] = TermSpecies[Begin];
      PosKnPow[P] = Kinetics[R].KnPow;
      PosHillN[P] = Kinetics[R].HillN;
      PosHillK[P] = Kinetics[R].HillK;
      PosHillNInt[P] = Kinetics[R].HillNInt;
      break;
    }
  }

  // --- Species-major rhs accumulation lists: walking reactions in
  // ascending order per species reproduces the reference's per-component
  // addition sequence exactly (additions into different components are
  // independent, so regrouping by species preserves each one's order).
  {
    std::vector<std::vector<std::pair<uint32_t, double>>> PerSpecies(
        NumSpecies); // (reaction, net coef), ascending reaction order
    for (size_t R = 0; R < NumReactions; ++R)
      for (uint32_t E = NetBegin[R]; E < NetBegin[R + 1]; ++E)
        PerSpecies[NetSpecies[E]].emplace_back(static_cast<uint32_t>(R),
                                               NetCoef[E]);
    RhsRowBegin.reserve(NumSpecies + 1);
    RhsReaction.reserve(NetSpecies.size());
    RhsCoef.reserve(NetSpecies.size());
    for (size_t I = 0; I < NumSpecies; ++I) {
      RhsRowBegin.push_back(static_cast<uint32_t>(RhsReaction.size()));
      for (const auto &[R, Coef] : PerSpecies[I]) {
        RhsReaction.push_back(R);
        RhsCoef.push_back(Coef);
      }
    }
    RhsRowBegin.push_back(static_cast<uint32_t>(RhsReaction.size()));
    for (const KernelRun &Run : Runs)
      SpeciesMajorRhs |= Run.Class == KernelClass::MichaelisMenten ||
                         Run.Class == KernelClass::Hill ||
                         Run.Class == KernelClass::HillRepression;
  }

  // --- Jacobian sparsity pattern: discover the structurally nonzero
  // (i, j) entries and record, per entry, its contributions in the
  // original (reaction, term, net-entry) traversal order — the order the
  // unpartitioned dense evaluation accumulated them in, which is what
  // keeps the patterned fill bit-exact (see DESIGN.md).
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> RowEntries(
      NumSpecies); // (col, entry id), insertion order
  std::vector<std::vector<std::pair<uint32_t, double>>> Entry; // (term, coef)
  for (size_t R = 0; R < NumReactions; ++R) {
    for (uint32_t T = TermBegin[R]; T < TermBegin[R + 1]; ++T) {
      const uint32_t Col = TermSpecies[T];
      for (uint32_t E = NetBegin[R]; E < NetBegin[R + 1]; ++E) {
        const uint32_t Row = NetSpecies[E];
        uint32_t Id = UINT32_MAX;
        for (const auto &[C0, Id0] : RowEntries[Row])
          if (C0 == Col) {
            Id = Id0;
            break;
          }
        if (Id == UINT32_MAX) {
          Id = static_cast<uint32_t>(Entry.size());
          RowEntries[Row].emplace_back(Col, Id);
          Entry.emplace_back();
        }
        Entry[Id].emplace_back(T, NetCoef[E]);
      }
    }
  }
  JacRowBegin.reserve(NumSpecies + 1);
  JacCol.reserve(Entry.size());
  JacContribBegin.reserve(Entry.size() + 1);
  for (size_t I = 0; I < NumSpecies; ++I) {
    JacRowBegin.push_back(static_cast<uint32_t>(JacCol.size()));
    std::sort(RowEntries[I].begin(), RowEntries[I].end());
    for (const auto &[Col, Id] : RowEntries[I]) {
      JacCol.push_back(Col);
      JacContribBegin.push_back(static_cast<uint32_t>(JacContribTerm.size()));
      for (const auto &[Term, Coef] : Entry[Id]) {
        JacContribTerm.push_back(Term);
        JacContribCoef.push_back(Coef);
      }
    }
  }
  JacRowBegin.push_back(static_cast<uint32_t>(JacCol.size()));
  JacContribBegin.push_back(static_cast<uint32_t>(JacContribTerm.size()));

  Profile.RhsMultiplies = TermSpecies.size() + NumReactions;
  Profile.RhsAccumulates = NetSpecies.size();
  // One structural Jacobian update per (reactant term, net entry) pair.
  for (size_t R = 0; R < NumReactions; ++R)
    Profile.JacobianEntries +=
        (TermBegin[R + 1] - TermBegin[R]) * (NetBegin[R + 1] - NetBegin[R]);

  Fingerprint = networkFingerprint(Net);
}

std::shared_ptr<const CompiledModel>
psg::compileModel(const ReactionNetwork &Net) {
  auto Model = std::make_shared<const CompiledModel>(Net);
  static Counter &Compilations = metrics().counter("psg.rbm.compilations");
  Compilations.add();
  return Model;
}

void CompiledOdeSystem::setUseReferenceKernelsForTesting(bool Enable) {
  UseReferenceKernelsFlag.store(Enable, std::memory_order_relaxed);
}

bool CompiledOdeSystem::useReferenceKernelsForTesting() {
  return UseReferenceKernelsFlag.load(std::memory_order_relaxed);
}

CompiledOdeSystem::CompiledOdeSystem(const ReactionNetwork &Net)
    : CompiledOdeSystem(compileModel(Net)) {}

CompiledOdeSystem::CompiledOdeSystem(std::shared_ptr<const CompiledModel> Model)
    : Shared(std::move(Model)), RateConstants(Shared->DefaultConstants),
      RatePermuted(Shared->NumReactions),
      RateScratch(Shared->NumReactions),
      PartialScratch(Shared->TermSpecies.size()),
      PatternEpoch(nextPatternEpoch()) {
  for (uint32_t P = 0; P < Shared->NumReactions; ++P)
    RatePermuted[P] = RateConstants[Shared->RunOrder[P]];
}

void CompiledOdeSystem::rebind(std::shared_ptr<const CompiledModel> Model) {
  Shared = std::move(Model);
  RateConstants = Shared->DefaultConstants;
  RatePermuted.resize(Shared->NumReactions);
  RateScratch.resize(Shared->NumReactions);
  PartialScratch.resize(Shared->TermSpecies.size());
  for (uint32_t P = 0; P < Shared->NumReactions; ++P)
    RatePermuted[P] = RateConstants[Shared->RunOrder[P]];
  // The Jacobian pattern (and thus the meaning of a claimed workspace)
  // may have changed with the model; retire the old epoch.
  PatternEpoch = nextPatternEpoch();
}

void CompiledOdeSystem::setRateConstants(const std::vector<double> &K) {
  assert(K.size() == Shared->NumReactions &&
         "rate constant vector size mismatch");
  RateConstants = K;
  for (uint32_t P = 0; P < Shared->NumReactions; ++P)
    RatePermuted[P] = RateConstants[Shared->RunOrder[P]];
}

void CompiledOdeSystem::setRateConstants(const double *K, size_t Count) {
  assert(Count == Shared->NumReactions &&
         "rate constant span size mismatch");
  std::copy(K, K + Count, RateConstants.begin());
  for (uint32_t P = 0; P < Shared->NumReactions; ++P)
    RatePermuted[P] = RateConstants[Shared->RunOrder[P]];
}

void CompiledOdeSystem::resetRateConstants() {
  RateConstants = Shared->DefaultConstants;
  for (uint32_t P = 0; P < Shared->NumReactions; ++P)
    RatePermuted[P] = RateConstants[Shared->RunOrder[P]];
}

double CompiledOdeSystem::saturatingFactor(size_t R, double S) const {
  const CompiledModel::KineticsParams &P = Shared->Kinetics[R];
  S = std::max(S, 0.0);
  if (P.Kind == KineticsKind::MichaelisMenten)
    return S / (P.Km + S);
  const double Sn = hillPower(S, P.HillN, P.HillNInt);
  const double Kn = P.KnPow;
  if (P.Kind == KineticsKind::HillRepression)
    return Kn / (Kn + Sn);
  return Sn / (Kn + Sn);
}

double CompiledOdeSystem::saturatingFactorDerivative(size_t R,
                                                     double S) const {
  const CompiledModel::KineticsParams &P = Shared->Kinetics[R];
  S = std::max(S, 0.0);
  if (P.Kind == KineticsKind::MichaelisMenten)
    return mmFactorDerivative(P.Km, S);
  const double Sn = hillPower(S, P.HillN, P.HillNInt);
  return hillFactorDerivative(P.KnPow, P.HillN, P.HillK, S, Sn,
                              P.Kind == KineticsKind::HillRepression);
}

namespace {
/// Hill-kernel rate run, activation/repression resolved at compile time.
template <bool Repress>
void hillRates(const CompiledModel &M, const double *__restrict Kp,
               const double *__restrict Y, uint32_t PBegin, uint32_t PEnd,
               double *__restrict Out) {
  const uint32_t *__restrict Ord = M.RunOrder.data();
  for (uint32_t P = PBegin; P < PEnd; ++P) {
    const double S = std::max(Y[M.PosA[P]], 0.0);
    const double Sn = hillPower(S, M.PosHillN[P], M.PosHillNInt[P]);
    double Rate = Kp[P] * hillFactor(M.PosKnPow[P], Sn, Repress);
    for (uint32_t T = M.PosTailBegin[P]; T < M.PosTailEnd[P]; ++T)
      Rate *= ipow(Y[M.TermSpecies[T]], M.TermCoef[T]);
    Out[Ord[P]] = Rate;
  }
}

/// Generic mass-action Jacobian partials of one reaction's terms — the
/// differentiated-product loop shared by the MassActionN kernel. Writes
/// PartialScratch[T] for T in [Begin, End), starting each product at
/// \p Head (the rate constant, times the saturating factor when the
/// caller peeled one).
void productPartials(const CompiledModel &M, const double *__restrict Y,
                     double Head, uint32_t Begin, uint32_t End,
                     double *__restrict PS) {
  for (uint32_t T = Begin; T < End; ++T) {
    double Partial = Head;
    for (uint32_t O = Begin; O < End; ++O) {
      const double X = Y[M.TermSpecies[O]];
      if (O == T) {
        if (M.TermCoef[O] != 1)
          Partial *= static_cast<double>(M.TermCoef[O]) *
                     ipow(X, M.TermCoef[O] - 1);
      } else {
        Partial *= ipow(X, M.TermCoef[O]);
      }
    }
    PS[T] = Partial;
  }
}

/// Saturating-kernel Jacobian partials of one reaction: the substrate
/// term takes K * Fac' * tail-product; each tail term takes the
/// differentiated product headed by K * Fac.
void saturatingPartials(const CompiledModel &M, const double *__restrict Y,
                        double K, double Fac, double Deriv, uint32_t Begin,
                        uint32_t End, double *__restrict PS) {
  double DPart = K * Deriv;
  for (uint32_t O = Begin + 1; O < End; ++O)
    DPart *= ipow(Y[M.TermSpecies[O]], M.TermCoef[O]);
  PS[Begin] = DPart;
  productPartials(M, Y, K * Fac, Begin + 1, End, PS);
}

/// Hill-kernel Jacobian partial run.
template <bool Repress>
void hillPartials(const CompiledModel &M, const double *__restrict Kp,
                  const double *__restrict Y, uint32_t PBegin, uint32_t PEnd,
                  double *__restrict PS) {
  for (uint32_t P = PBegin; P < PEnd; ++P) {
    const double S = std::max(Y[M.PosA[P]], 0.0);
    const double Sn = hillPower(S, M.PosHillN[P], M.PosHillNInt[P]);
    const double Fac = hillFactor(M.PosKnPow[P], Sn, Repress);
    const double Deriv = hillFactorDerivative(
        M.PosKnPow[P], M.PosHillN[P], M.PosHillK[P], S, Sn, Repress);
    saturatingPartials(M, Y, Kp[P], Fac, Deriv, M.PosTerm0[P],
                       M.PosTailEnd[P], PS);
  }
}
} // namespace

void CompiledOdeSystem::computeRates(const double *Y) const {
  const CompiledModel &M = *Shared;
  const double *__restrict Kp = RatePermuted.data();
  const uint32_t *__restrict Ord = M.RunOrder.data();
  double *__restrict Out = RateScratch.data();
  for (const CompiledModel::KernelRun &Run : M.Runs) {
    switch (Run.Class) {
    case KernelClass::MassAction1:
      for (uint32_t P = Run.Begin; P < Run.End; ++P)
        Out[Ord[P]] = Kp[P] * Y[M.PosA[P]];
      break;
    case KernelClass::MassAction2:
      for (uint32_t P = Run.Begin; P < Run.End; ++P)
        Out[Ord[P]] = Kp[P] * Y[M.PosA[P]] * Y[M.PosB[P]];
      break;
    case KernelClass::MassActionN:
      for (uint32_t P = Run.Begin; P < Run.End; ++P) {
        double Rate = Kp[P];
        for (uint32_t T = M.PosTailBegin[P]; T < M.PosTailEnd[P]; ++T)
          Rate *= ipow(Y[M.TermSpecies[T]], M.TermCoef[T]);
        Out[Ord[P]] = Rate;
      }
      break;
    case KernelClass::MichaelisMenten:
      for (uint32_t P = Run.Begin; P < Run.End; ++P) {
        double Rate = Kp[P] * mmFactor(M.PosKm[P], Y[M.PosA[P]]);
        for (uint32_t T = M.PosTailBegin[P]; T < M.PosTailEnd[P]; ++T)
          Rate *= ipow(Y[M.TermSpecies[T]], M.TermCoef[T]);
        Out[Ord[P]] = Rate;
      }
      break;
    case KernelClass::Hill:
      hillRates<false>(M, Kp, Y, Run.Begin, Run.End, Out);
      break;
    case KernelClass::HillRepression:
      hillRates<true>(M, Kp, Y, Run.Begin, Run.End, Out);
      break;
    }
  }
}

void CompiledOdeSystem::rhs(double T, const double *Y, double *DyDt) const {
  if (useReferenceKernelsForTesting())
    return rhsReference(T, Y, DyDt);
  const CompiledModel &M = *Shared;
  computeRates(Y);
  const double *__restrict Rates = RateScratch.data();
  if (M.SpeciesMajorRhs) {
    // Species-major gather in ascending reaction order: per component
    // this performs the reference's additions in the reference's order
    // (and skips zero rates exactly as the reference skips whole
    // reactions), so the partitioned path stays bit-exact.
    for (size_t I = 0; I < M.NumSpecies; ++I) {
      double Sum = 0.0;
      for (uint32_t C = M.RhsRowBegin[I]; C < M.RhsRowBegin[I + 1]; ++C) {
        const double Rate = Rates[M.RhsReaction[C]];
        if (Rate != 0.0)
          Sum += M.RhsCoef[C] * Rate;
      }
      DyDt[I] = Sum;
    }
    return;
  }
  // Reaction-major scatter, identical to the reference's accumulation.
  for (size_t I = 0; I < M.NumSpecies; ++I)
    DyDt[I] = 0.0;
  for (size_t R = 0; R < M.NumReactions; ++R) {
    const double Rate = Rates[R];
    if (Rate == 0.0)
      continue;
    for (uint32_t E = M.NetBegin[R]; E < M.NetBegin[R + 1]; ++E)
      DyDt[M.NetSpecies[E]] += M.NetCoef[E] * Rate;
  }
}

void CompiledOdeSystem::analyticJacobian(double T, const double *Y,
                                         Matrix &J) const {
  if (useReferenceKernelsForTesting())
    return analyticJacobianReference(T, Y, J);
  const CompiledModel &M = *Shared;
  // On a matching claim the dense zero-fill is skipped entirely: phase 2
  // writes every pattern entry, and non-pattern entries still hold the
  // zeros of the claiming fill.
  J.claimPattern(this, PatternEpoch, M.NumSpecies, M.NumSpecies);

  // Phase 1: d(rate_r)/d(X_t) per reactant term t, kind-partitioned.
  // Partials are independent across terms, so evaluation order here is
  // free; only the phase-2 sums must follow the reference order.
  const double *__restrict Kp = RatePermuted.data();
  double *__restrict PS = PartialScratch.data();
  for (const CompiledModel::KernelRun &Run : M.Runs) {
    switch (Run.Class) {
    case KernelClass::MassAction1:
      for (uint32_t P = Run.Begin; P < Run.End; ++P)
        PS[M.PosTerm0[P]] = Kp[P];
      break;
    case KernelClass::MassAction2:
      for (uint32_t P = Run.Begin; P < Run.End; ++P) {
        const uint32_t T0 = M.PosTerm0[P];
        const double K = Kp[P];
        PS[T0] = K * Y[M.PosB[P]];
        PS[T0 + 1] = K * Y[M.PosA[P]];
      }
      break;
    case KernelClass::MassActionN:
      for (uint32_t P = Run.Begin; P < Run.End; ++P)
        productPartials(M, Y, Kp[P], M.PosTerm0[P], M.PosTailEnd[P], PS);
      break;
    case KernelClass::MichaelisMenten:
      for (uint32_t P = Run.Begin; P < Run.End; ++P) {
        const double S = Y[M.PosA[P]];
        saturatingPartials(M, Y, Kp[P], mmFactor(M.PosKm[P], S),
                           mmFactorDerivative(M.PosKm[P], S), M.PosTerm0[P],
                           M.PosTailEnd[P], PS);
      }
      break;
    case KernelClass::Hill:
      hillPartials<false>(M, Kp, Y, Run.Begin, Run.End, PS);
      break;
    case KernelClass::HillRepression:
      hillPartials<true>(M, Kp, Y, Run.Begin, Run.End, PS);
      break;
    }
  }

  // Phase 2: gather each structural nonzero from its contribution list,
  // in the reference accumulation order, skipping zero partials exactly
  // as the reference does (so signed-zero bit patterns match too).
  for (size_t I = 0; I < M.NumSpecies; ++I) {
    double *__restrict Row = J.rowData(I);
    for (uint32_t E = M.JacRowBegin[I]; E < M.JacRowBegin[I + 1]; ++E) {
      double Sum = 0.0;
      for (uint32_t C = M.JacContribBegin[E]; C < M.JacContribBegin[E + 1];
           ++C) {
        const double Partial = PS[M.JacContribTerm[C]];
        if (Partial != 0.0)
          Sum += M.JacContribCoef[C] * Partial;
      }
      Row[M.JacCol[E]] = Sum;
    }
  }
  (void)T;
}

void CompiledOdeSystem::rhsReference(double, const double *Y,
                                     double *DyDt) const {
  const CompiledModel &M = *Shared;
  for (size_t R = 0; R < M.NumReactions; ++R) {
    double Rate = RateConstants[R];
    uint32_t T = M.TermBegin[R];
    const uint32_t End = M.TermBegin[R + 1];
    // The saturating factor can only apply to the first term; peel it so
    // the remaining loop is pure mass action.
    if (T < End && M.Kinetics[R].Kind != KineticsKind::MassAction) {
      Rate *= saturatingFactor(R, Y[M.TermSpecies[T]]);
      ++T;
    }
    for (; T < End; ++T)
      Rate *= ipow(Y[M.TermSpecies[T]], M.TermCoef[T]);
    RateScratch[R] = Rate;
  }
  for (size_t I = 0; I < M.NumSpecies; ++I)
    DyDt[I] = 0.0;
  for (size_t R = 0; R < M.NumReactions; ++R) {
    const double Rate = RateScratch[R];
    if (Rate == 0.0)
      continue;
    for (uint32_t E = M.NetBegin[R]; E < M.NetBegin[R + 1]; ++E)
      DyDt[M.NetSpecies[E]] += M.NetCoef[E] * Rate;
  }
}

void CompiledOdeSystem::analyticJacobianReference(double, const double *Y,
                                                  Matrix &J) const {
  const CompiledModel &M = *Shared;
  J.resize(M.NumSpecies, M.NumSpecies);
  for (size_t R = 0; R < M.NumReactions; ++R) {
    const uint32_t Begin = M.TermBegin[R], End = M.TermBegin[R + 1];
    const bool Saturating = M.Kinetics[R].Kind != KineticsKind::MassAction;
    // d(rate)/d(X_j) for each reactant term j: the term's own factor is
    // differentiated, all other factors multiply through.
    for (uint32_t T = Begin; T < End; ++T) {
      const uint32_t SpeciesJ = M.TermSpecies[T];
      double Partial = RateConstants[R];
      for (uint32_t O = Begin; O < End; ++O) {
        const double X = Y[M.TermSpecies[O]];
        if (O == T) {
          if (Saturating && O == Begin)
            Partial *= saturatingFactorDerivative(R, X);
          else if (M.TermCoef[O] == 1)
            ; // d(X)/dX = 1.
          else
            Partial *= static_cast<double>(M.TermCoef[O]) *
                       ipow(X, M.TermCoef[O] - 1);
        } else {
          if (Saturating && O == Begin)
            Partial *= saturatingFactor(R, X);
          else
            Partial *= ipow(X, M.TermCoef[O]);
        }
      }
      if (Partial == 0.0)
        continue;
      for (uint32_t E = M.NetBegin[R]; E < M.NetBegin[R + 1]; ++E)
        J(M.NetSpecies[E], SpeciesJ) += M.NetCoef[E] * Partial;
    }
  }
}
