//===- rbm/MassAction.cpp -------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "rbm/MassAction.h"

#include "support/Error.h"

#include <cmath>

using namespace psg;

namespace {
/// Integer power by repeated multiplication (stoichiometries are tiny).
double ipow(double X, unsigned E) {
  double R = 1.0;
  for (unsigned I = 0; I < E; ++I)
    R *= X;
  return R;
}
} // namespace

CompiledOdeSystem::CompiledOdeSystem(const ReactionNetwork &Net)
    : SystemName(Net.name()), NumSpecies(Net.numSpecies()),
      NumReactions(Net.numReactions()) {
  if (Status S = Net.validate(); !S)
    fatalError("cannot compile invalid network: " + S.message());

  TermBegin.reserve(NumReactions + 1);
  NetBegin.reserve(NumReactions + 1);
  RateConstants.reserve(NumReactions);
  Kinetics.reserve(NumReactions);

  for (size_t R = 0; R < NumReactions; ++R) {
    const Reaction &Rx = Net.reaction(R);
    TermBegin.push_back(static_cast<uint32_t>(TermSpecies.size()));
    for (const auto &[Idx, Coef] : Rx.Reactants) {
      TermSpecies.push_back(Idx);
      TermCoef.push_back(Coef);
    }
    // Net stoichiometry B - A, merged per species.
    NetBegin.push_back(static_cast<uint32_t>(NetSpecies.size()));
    std::vector<std::pair<uint32_t, double>> Net0;
    for (const auto &[Idx, Coef] : Rx.Reactants)
      Net0.emplace_back(Idx, -static_cast<double>(Coef));
    for (const auto &[Idx, Coef] : Rx.Products) {
      bool Merged = false;
      for (auto &[I0, C0] : Net0)
        if (I0 == Idx) {
          C0 += Coef;
          Merged = true;
          break;
        }
      if (!Merged)
        Net0.emplace_back(Idx, static_cast<double>(Coef));
    }
    for (const auto &[Idx, Coef] : Net0)
      if (Coef != 0.0) {
        NetSpecies.push_back(Idx);
        NetCoef.push_back(Coef);
      }
    RateConstants.push_back(Rx.RateConstant);
    Kinetics.push_back({Rx.Kind, Rx.Km, Rx.HillK, Rx.HillN});
  }
  TermBegin.push_back(static_cast<uint32_t>(TermSpecies.size()));
  NetBegin.push_back(static_cast<uint32_t>(NetSpecies.size()));
  OriginalConstants = RateConstants;
  RateScratch.resize(NumReactions);

  Profile.RhsMultiplies = TermSpecies.size() + NumReactions;
  Profile.RhsAccumulates = NetSpecies.size();
  // One structural Jacobian update per (reactant term, net entry) pair.
  for (size_t R = 0; R < NumReactions; ++R)
    Profile.JacobianEntries +=
        (TermBegin[R + 1] - TermBegin[R]) * (NetBegin[R + 1] - NetBegin[R]);
}

void CompiledOdeSystem::setRateConstants(const std::vector<double> &K) {
  assert(K.size() == NumReactions && "rate constant vector size mismatch");
  RateConstants = K;
}

double CompiledOdeSystem::saturatingFactor(size_t R, double S) const {
  const KineticsParams &P = Kinetics[R];
  S = std::max(S, 0.0);
  if (P.Kind == KineticsKind::MichaelisMenten)
    return S / (P.Km + S);
  const double Sn = std::pow(S, P.HillN);
  const double Kn = std::pow(P.HillK, P.HillN);
  if (P.Kind == KineticsKind::HillRepression)
    return Kn / (Kn + Sn);
  return Sn / (Kn + Sn);
}

double CompiledOdeSystem::saturatingFactorDerivative(size_t R,
                                                     double S) const {
  const KineticsParams &P = Kinetics[R];
  S = std::max(S, 0.0);
  if (P.Kind == KineticsKind::MichaelisMenten) {
    const double Denom = P.Km + S;
    return P.Km / (Denom * Denom);
  }
  const double Sign =
      P.Kind == KineticsKind::HillRepression ? -1.0 : 1.0;
  if (S == 0.0)
    return P.HillN == 1.0 ? Sign / P.HillK : 0.0;
  const double Sn = std::pow(S, P.HillN);
  const double Kn = std::pow(P.HillK, P.HillN);
  const double Denom = Kn + Sn;
  return Sign * P.HillN * Kn * Sn / (S * Denom * Denom);
}

void CompiledOdeSystem::computeRates(const double *Y) const {
  for (size_t R = 0; R < NumReactions; ++R) {
    double Rate = RateConstants[R];
    const uint32_t Begin = TermBegin[R], End = TermBegin[R + 1];
    const bool Saturating = Kinetics[R].Kind != KineticsKind::MassAction;
    for (uint32_t T = Begin; T < End; ++T) {
      const double X = Y[TermSpecies[T]];
      if (Saturating && T == Begin)
        Rate *= saturatingFactor(R, X);
      else
        Rate *= ipow(X, TermCoef[T]);
    }
    RateScratch[R] = Rate;
  }
}

void CompiledOdeSystem::rhs(double, const double *Y, double *DyDt) const {
  computeRates(Y);
  for (size_t I = 0; I < NumSpecies; ++I)
    DyDt[I] = 0.0;
  for (size_t R = 0; R < NumReactions; ++R) {
    const double Rate = RateScratch[R];
    if (Rate == 0.0)
      continue;
    for (uint32_t E = NetBegin[R]; E < NetBegin[R + 1]; ++E)
      DyDt[NetSpecies[E]] += NetCoef[E] * Rate;
  }
}

void CompiledOdeSystem::analyticJacobian(double, const double *Y,
                                         Matrix &J) const {
  J.resize(NumSpecies, NumSpecies);
  for (size_t R = 0; R < NumReactions; ++R) {
    const uint32_t Begin = TermBegin[R], End = TermBegin[R + 1];
    const bool Saturating = Kinetics[R].Kind != KineticsKind::MassAction;
    // d(rate)/d(X_j) for each reactant term j: the term's own factor is
    // differentiated, all other factors multiply through.
    for (uint32_t T = Begin; T < End; ++T) {
      const uint32_t SpeciesJ = TermSpecies[T];
      double Partial = RateConstants[R];
      for (uint32_t O = Begin; O < End; ++O) {
        const double X = Y[TermSpecies[O]];
        if (O == T) {
          if (Saturating && O == Begin)
            Partial *= saturatingFactorDerivative(R, X);
          else if (TermCoef[O] == 1)
            ; // d(X)/dX = 1.
          else
            Partial *= static_cast<double>(TermCoef[O]) *
                       ipow(X, TermCoef[O] - 1);
        } else {
          if (Saturating && O == Begin)
            Partial *= saturatingFactor(R, X);
          else
            Partial *= ipow(X, TermCoef[O]);
        }
      }
      if (Partial == 0.0)
        continue;
      for (uint32_t E = NetBegin[R]; E < NetBegin[R + 1]; ++E)
        J(NetSpecies[E], SpeciesJ) += NetCoef[E] * Partial;
    }
  }
}
