//===- rbm/MassAction.cpp -------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "rbm/MassAction.h"

#include "support/Error.h"
#include "support/Metrics.h"

#include <cmath>
#include <cstring>

using namespace psg;

namespace {
/// Integer power by repeated multiplication (stoichiometries are tiny).
double ipow(double X, unsigned E) {
  double R = 1.0;
  for (unsigned I = 0; I < E; ++I)
    R *= X;
  return R;
}

/// FNV-1a over mixed words; doubles hash by bit pattern.
class Fnv {
public:
  void mix(uint64_t V) {
    for (unsigned B = 0; B < 8; ++B) {
      H ^= (V >> (8 * B)) & 0xFF;
      H *= 0x100000001B3ull;
    }
  }
  void mix(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    mix(Bits);
  }
  void mix(const std::string &S) {
    mix(static_cast<uint64_t>(S.size()));
    for (char C : S) {
      H ^= static_cast<unsigned char>(C);
      H *= 0x100000001B3ull;
    }
  }
  uint64_t value() const { return H; }

private:
  uint64_t H = 0xCBF29CE484222325ull;
};
} // namespace

uint64_t psg::networkFingerprint(const ReactionNetwork &Net) {
  Fnv H;
  H.mix(Net.name());
  H.mix(static_cast<uint64_t>(Net.numSpecies()));
  H.mix(static_cast<uint64_t>(Net.numReactions()));
  for (const Reaction &Rx : Net.allReactions()) {
    H.mix(static_cast<uint64_t>(Rx.Reactants.size()));
    for (const auto &[Idx, Coef] : Rx.Reactants) {
      H.mix(static_cast<uint64_t>(Idx));
      H.mix(static_cast<uint64_t>(Coef));
    }
    H.mix(static_cast<uint64_t>(Rx.Products.size()));
    for (const auto &[Idx, Coef] : Rx.Products) {
      H.mix(static_cast<uint64_t>(Idx));
      H.mix(static_cast<uint64_t>(Coef));
    }
    H.mix(static_cast<uint64_t>(Rx.Kind));
    H.mix(Rx.RateConstant);
    H.mix(Rx.Km);
    H.mix(Rx.HillK);
    H.mix(Rx.HillN);
  }
  return H.value();
}

CompiledModel::CompiledModel(const ReactionNetwork &Net)
    : SystemName(Net.name()), NumSpecies(Net.numSpecies()),
      NumReactions(Net.numReactions()) {
  if (Status S = Net.validate(); !S)
    fatalError("cannot compile invalid network: " + S.message());

  TermBegin.reserve(NumReactions + 1);
  NetBegin.reserve(NumReactions + 1);
  DefaultConstants.reserve(NumReactions);
  Kinetics.reserve(NumReactions);

  std::vector<std::pair<uint32_t, double>> Net0;
  for (size_t R = 0; R < NumReactions; ++R) {
    const Reaction &Rx = Net.reaction(R);
    TermBegin.push_back(static_cast<uint32_t>(TermSpecies.size()));
    for (const auto &[Idx, Coef] : Rx.Reactants) {
      TermSpecies.push_back(Idx);
      TermCoef.push_back(Coef);
    }
    // Net stoichiometry B - A, merged per species.
    NetBegin.push_back(static_cast<uint32_t>(NetSpecies.size()));
    Net0.clear();
    for (const auto &[Idx, Coef] : Rx.Reactants)
      Net0.emplace_back(Idx, -static_cast<double>(Coef));
    for (const auto &[Idx, Coef] : Rx.Products) {
      bool Merged = false;
      for (auto &[I0, C0] : Net0)
        if (I0 == Idx) {
          C0 += Coef;
          Merged = true;
          break;
        }
      if (!Merged)
        Net0.emplace_back(Idx, static_cast<double>(Coef));
    }
    for (const auto &[Idx, Coef] : Net0)
      if (Coef != 0.0) {
        NetSpecies.push_back(Idx);
        NetCoef.push_back(Coef);
      }
    DefaultConstants.push_back(Rx.RateConstant);
    const double KnPow = Rx.Kind == KineticsKind::Hill ||
                                 Rx.Kind == KineticsKind::HillRepression
                             ? std::pow(Rx.HillK, Rx.HillN)
                             : 0.0;
    int HillNInt = -1;
    if (Rx.HillN >= 0.0 && Rx.HillN <= 16.0 &&
        Rx.HillN == std::floor(Rx.HillN))
      HillNInt = static_cast<int>(Rx.HillN);
    Kinetics.push_back({Rx.Kind, Rx.Km, Rx.HillK, Rx.HillN, KnPow, HillNInt});
  }
  TermBegin.push_back(static_cast<uint32_t>(TermSpecies.size()));
  NetBegin.push_back(static_cast<uint32_t>(NetSpecies.size()));

  Profile.RhsMultiplies = TermSpecies.size() + NumReactions;
  Profile.RhsAccumulates = NetSpecies.size();
  // One structural Jacobian update per (reactant term, net entry) pair.
  for (size_t R = 0; R < NumReactions; ++R)
    Profile.JacobianEntries +=
        (TermBegin[R + 1] - TermBegin[R]) * (NetBegin[R + 1] - NetBegin[R]);

  Fingerprint = networkFingerprint(Net);
}

std::shared_ptr<const CompiledModel>
psg::compileModel(const ReactionNetwork &Net) {
  auto Model = std::make_shared<const CompiledModel>(Net);
  static Counter &Compilations = metrics().counter("psg.rbm.compilations");
  Compilations.add();
  return Model;
}

CompiledOdeSystem::CompiledOdeSystem(const ReactionNetwork &Net)
    : CompiledOdeSystem(compileModel(Net)) {}

CompiledOdeSystem::CompiledOdeSystem(std::shared_ptr<const CompiledModel> Model)
    : Shared(std::move(Model)), RateConstants(Shared->DefaultConstants),
      RateScratch(Shared->NumReactions) {}

void CompiledOdeSystem::rebind(std::shared_ptr<const CompiledModel> Model) {
  Shared = std::move(Model);
  RateConstants = Shared->DefaultConstants;
  RateScratch.resize(Shared->NumReactions);
}

void CompiledOdeSystem::setRateConstants(const std::vector<double> &K) {
  assert(K.size() == Shared->NumReactions &&
         "rate constant vector size mismatch");
  RateConstants = K;
}

void CompiledOdeSystem::setRateConstants(const double *K, size_t Count) {
  assert(Count == Shared->NumReactions &&
         "rate constant span size mismatch");
  std::copy(K, K + Count, RateConstants.begin());
}

double CompiledOdeSystem::saturatingFactor(size_t R, double S) const {
  const CompiledModel::KineticsParams &P = Shared->Kinetics[R];
  S = std::max(S, 0.0);
  if (P.Kind == KineticsKind::MichaelisMenten)
    return S / (P.Km + S);
  const double Sn = P.HillNInt >= 0
                        ? ipow(S, static_cast<unsigned>(P.HillNInt))
                        : std::pow(S, P.HillN);
  const double Kn = P.KnPow;
  if (P.Kind == KineticsKind::HillRepression)
    return Kn / (Kn + Sn);
  return Sn / (Kn + Sn);
}

double CompiledOdeSystem::saturatingFactorDerivative(size_t R,
                                                     double S) const {
  const CompiledModel::KineticsParams &P = Shared->Kinetics[R];
  S = std::max(S, 0.0);
  if (P.Kind == KineticsKind::MichaelisMenten) {
    const double Denom = P.Km + S;
    return P.Km / (Denom * Denom);
  }
  const double Sign =
      P.Kind == KineticsKind::HillRepression ? -1.0 : 1.0;
  if (S == 0.0)
    return P.HillN == 1.0 ? Sign / P.HillK : 0.0;
  const double Sn = P.HillNInt >= 0
                        ? ipow(S, static_cast<unsigned>(P.HillNInt))
                        : std::pow(S, P.HillN);
  const double Kn = P.KnPow;
  const double Denom = Kn + Sn;
  return Sign * P.HillN * Kn * Sn / (S * Denom * Denom);
}

void CompiledOdeSystem::computeRates(const double *Y) const {
  const CompiledModel &M = *Shared;
  for (size_t R = 0; R < M.NumReactions; ++R) {
    double Rate = RateConstants[R];
    uint32_t T = M.TermBegin[R];
    const uint32_t End = M.TermBegin[R + 1];
    // The saturating factor can only apply to the first term; peel it so
    // the remaining loop is pure mass action.
    if (T < End && M.Kinetics[R].Kind != KineticsKind::MassAction) {
      Rate *= saturatingFactor(R, Y[M.TermSpecies[T]]);
      ++T;
    }
    for (; T < End; ++T)
      Rate *= ipow(Y[M.TermSpecies[T]], M.TermCoef[T]);
    RateScratch[R] = Rate;
  }
}

void CompiledOdeSystem::rhs(double, const double *Y, double *DyDt) const {
  const CompiledModel &M = *Shared;
  computeRates(Y);
  for (size_t I = 0; I < M.NumSpecies; ++I)
    DyDt[I] = 0.0;
  for (size_t R = 0; R < M.NumReactions; ++R) {
    const double Rate = RateScratch[R];
    if (Rate == 0.0)
      continue;
    for (uint32_t E = M.NetBegin[R]; E < M.NetBegin[R + 1]; ++E)
      DyDt[M.NetSpecies[E]] += M.NetCoef[E] * Rate;
  }
}

void CompiledOdeSystem::analyticJacobian(double, const double *Y,
                                         Matrix &J) const {
  const CompiledModel &M = *Shared;
  J.resize(M.NumSpecies, M.NumSpecies);
  for (size_t R = 0; R < M.NumReactions; ++R) {
    const uint32_t Begin = M.TermBegin[R], End = M.TermBegin[R + 1];
    const bool Saturating = M.Kinetics[R].Kind != KineticsKind::MassAction;
    // d(rate)/d(X_j) for each reactant term j: the term's own factor is
    // differentiated, all other factors multiply through.
    for (uint32_t T = Begin; T < End; ++T) {
      const uint32_t SpeciesJ = M.TermSpecies[T];
      double Partial = RateConstants[R];
      for (uint32_t O = Begin; O < End; ++O) {
        const double X = Y[M.TermSpecies[O]];
        if (O == T) {
          if (Saturating && O == Begin)
            Partial *= saturatingFactorDerivative(R, X);
          else if (M.TermCoef[O] == 1)
            ; // d(X)/dX = 1.
          else
            Partial *= static_cast<double>(M.TermCoef[O]) *
                       ipow(X, M.TermCoef[O] - 1);
        } else {
          if (Saturating && O == Begin)
            Partial *= saturatingFactor(R, X);
          else
            Partial *= ipow(X, M.TermCoef[O]);
        }
      }
      if (Partial == 0.0)
        continue;
      for (uint32_t E = M.NetBegin[R]; E < M.NetBegin[R + 1]; ++E)
        J(M.NetSpecies[E], SpeciesJ) += M.NetCoef[E] * Partial;
    }
  }
}
