//===- rbm/CuratedModels.cpp ----------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "rbm/CuratedModels.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace psg;

namespace {
/// Convenience: unimolecular mass-action reaction A -> B (or A -> 0).
Reaction firstOrder(unsigned From, double K, int To = -1) {
  Reaction Rx;
  Rx.RateConstant = K;
  Rx.Reactants.emplace_back(From, 1);
  if (To >= 0)
    Rx.Products.emplace_back(static_cast<unsigned>(To), 1);
  return Rx;
}

/// Convenience: bimolecular mass-action A + B -> products.
Reaction secondOrder(unsigned A, unsigned B, double K,
                     std::initializer_list<unsigned> Products) {
  Reaction Rx;
  Rx.RateConstant = K;
  if (A == B) {
    Rx.Reactants.emplace_back(A, 2);
  } else {
    Rx.Reactants.emplace_back(A, 1);
    Rx.Reactants.emplace_back(B, 1);
  }
  for (unsigned P : Products) {
    bool Merged = false;
    for (auto &[Idx, Coef] : Rx.Products)
      if (Idx == P) {
        ++Coef;
        Merged = true;
        break;
      }
    if (!Merged)
      Rx.Products.emplace_back(P, 1);
  }
  return Rx;
}

/// Michaelis-Menten reaction S (+ helpers) -> products.
Reaction michaelisMenten(unsigned Substrate, double Vmax, double Km,
                         std::initializer_list<unsigned> Products) {
  Reaction Rx;
  Rx.Kind = KineticsKind::MichaelisMenten;
  Rx.RateConstant = Vmax;
  Rx.Km = Km;
  Rx.Reactants.emplace_back(Substrate, 1);
  for (unsigned P : Products)
    Rx.Products.emplace_back(P, 1);
  return Rx;
}
} // namespace

ReactionNetwork psg::makeRobertsonNetwork() {
  ReactionNetwork Net("robertson-rbm");
  const unsigned X = Net.addSpecies("X", 1.0);
  const unsigned Y = Net.addSpecies("Y", 0.0);
  const unsigned Z = Net.addSpecies("Z", 0.0);
  Net.addReaction(firstOrder(X, 0.04, Y));
  Net.addReaction(secondOrder(Y, Z, 1e4, {X, Z}));
  // 2Y -> Y + Z gives the -3e7 y^2 / +3e7 y^2 pair.
  Net.addReaction(secondOrder(Y, Y, 3e7, {Y, Z}));
  return Net;
}

ReactionNetwork psg::makeBrusselatorNetwork(double FeedRate,
                                            double ConversionRate) {
  ReactionNetwork Net("brusselator");
  const unsigned F = Net.addSpecies("F", 1.0);
  const unsigned X = Net.addSpecies("X", 1.0);
  const unsigned Y = Net.addSpecies("Y", 1.0);
  // F -> F + X: inflow driven by the constant feed species.
  Reaction Inflow;
  Inflow.RateConstant = FeedRate;
  Inflow.Reactants.emplace_back(F, 1);
  Inflow.Products.emplace_back(F, 1);
  Inflow.Products.emplace_back(X, 1);
  Net.addReaction(std::move(Inflow));
  Net.addReaction(firstOrder(X, ConversionRate, static_cast<int>(Y)));
  // 2X + Y -> 3X autocatalysis.
  Reaction Auto;
  Auto.RateConstant = 1.0;
  Auto.Reactants.emplace_back(X, 2);
  Auto.Reactants.emplace_back(Y, 1);
  Auto.Products.emplace_back(X, 3);
  Net.addReaction(std::move(Auto));
  Net.addReaction(firstOrder(X, 1.0));
  return Net;
}

ReactionNetwork psg::makeLotkaVolterraNetwork() {
  ReactionNetwork Net("lotka-volterra");
  const unsigned Prey = Net.addSpecies("prey", 1.0);
  const unsigned Predator = Net.addSpecies("predator", 0.5);
  Reaction Birth;
  Birth.RateConstant = 1.0;
  Birth.Reactants.emplace_back(Prey, 1);
  Birth.Products.emplace_back(Prey, 2);
  Net.addReaction(std::move(Birth));
  Net.addReaction(secondOrder(Prey, Predator, 1.0, {Predator, Predator}));
  Net.addReaction(firstOrder(Predator, 1.0));
  return Net;
}

ReactionNetwork psg::makeDecayChainNetwork(size_t Length,
                                           double RateSpread) {
  assert(Length >= 2 && "decay chain needs at least two species");
  ReactionNetwork Net(formatString("decay-chain-%zu", Length));
  std::vector<unsigned> Ids;
  for (size_t I = 0; I < Length; ++I)
    Ids.push_back(Net.addSpecies(formatString("S%zu", I), I == 0 ? 1.0 : 0.0));
  for (size_t I = 0; I + 1 < Length; ++I) {
    // Rates spread over RateSpread decades: fast early, slow late.
    const double Frac =
        static_cast<double>(I) / static_cast<double>(Length - 1);
    const double K = std::pow(10.0, RateSpread * (1.0 - Frac) - 1.0);
    Net.addReaction(firstOrder(Ids[I], K, static_cast<int>(Ids[I + 1])));
  }
  return Net;
}

ReactionNetwork psg::makeSaturatingToyNetwork() {
  ReactionNetwork Net("saturating-toy");
  const unsigned S = Net.addSpecies("S", 2.0);
  const unsigned P = Net.addSpecies("P", 0.0);
  const unsigned G = Net.addSpecies("G", 0.1);
  Net.addReaction(michaelisMenten(S, 1.0, 0.5, {P}));
  Reaction Induction;
  Induction.Kind = KineticsKind::Hill;
  Induction.RateConstant = 0.8;
  Induction.HillK = 0.3;
  Induction.HillN = 4.0;
  Induction.Reactants.emplace_back(P, 1);
  Induction.Products.emplace_back(P, 1);
  Induction.Products.emplace_back(G, 1);
  Net.addReaction(std::move(Induction));
  Net.addReaction(firstOrder(G, 0.2));
  return Net;
}

ReactionNetwork psg::makeRepressilatorNetwork(double Alpha, double HillN) {
  ReactionNetwork Net("repressilator");
  unsigned P[3];
  // Staggered initial conditions break the symmetric fixed point.
  P[0] = Net.addSpecies("P0", 2.0);
  P[1] = Net.addSpecies("P1", 1.0);
  P[2] = Net.addSpecies("P2", 0.5);
  for (unsigned I = 0; I < 3; ++I) {
    // Production of P_i repressed by P_{i-1}: the repressor is a
    // catalyst-style reactant (returned as a product, net zero).
    const unsigned Repressor = P[(I + 2) % 3];
    Reaction Production;
    Production.Kind = KineticsKind::HillRepression;
    Production.RateConstant = Alpha;
    Production.HillK = 1.0;
    Production.HillN = HillN;
    Production.Reactants.emplace_back(Repressor, 1);
    Production.Products.emplace_back(Repressor, 1);
    Production.Products.emplace_back(P[I], 1);
    Net.addReaction(std::move(Production));
    Net.addReaction(firstOrder(P[I], 1.0)); // Degradation.
  }
  return Net;
}

AutophagySurrogate psg::makeAutophagySurrogate(unsigned Units,
                                               unsigned ChainLength) {
  assert(Units >= 2 && ChainLength >= 2 && "surrogate too small");
  AutophagySurrogate S;
  ReactionNetwork &Net = S.Net;
  Net.setName(formatString("autophagy-surrogate-%u", Units));
  S.BaselineCrossRate = 1e-5;

  // Species: stress feed F, oscillator pairs (X_u, Y_u), waste chain C_i.
  S.StressSpecies = Net.addSpecies("AMPKstar", 1.0);
  std::vector<unsigned> X(Units), Y(Units);
  for (unsigned U = 0; U < Units; ++U) {
    X[U] = Net.addSpecies(formatString("X%u", U), 1.0);
    Y[U] = Net.addSpecies(formatString("Y%u", U), 1.0);
  }
  std::vector<unsigned> Chain(ChainLength);
  for (unsigned I = 0; I < ChainLength; ++I)
    Chain[I] = Net.addSpecies(formatString("C%u", I), 0.0);
  S.ReporterEif4ebp = X[0];
  S.ReporterAmbra = Y[0];

  // Per-unit Brusselator dynamics (oscillates for conversion > 1 + a^2).
  for (unsigned U = 0; U < Units; ++U) {
    Reaction Inflow; // AMPK* -> AMPK* + X_u: stress-driven production.
    Inflow.RateConstant = 1.0;
    Inflow.Reactants.emplace_back(S.StressSpecies, 1);
    Inflow.Products.emplace_back(S.StressSpecies, 1);
    Inflow.Products.emplace_back(X[U], 1);
    Net.addReaction(std::move(Inflow));
    Net.addReaction(firstOrder(X[U], 2.5, static_cast<int>(Y[U])));
    Reaction Auto; // 2X + Y -> 3X.
    Auto.RateConstant = 1.0;
    Auto.Reactants.emplace_back(X[U], 2);
    Auto.Reactants.emplace_back(Y[U], 1);
    Auto.Products.emplace_back(X[U], 3);
    Net.addReaction(std::move(Auto));
    Net.addReaction(firstOrder(X[U], 1.0));        // X decay.
    Net.addReaction(firstOrder(Y[U], 0.01));       // Y leak.
  }
  // Nearest-neighbour diffusion of X.
  for (unsigned U = 0; U + 1 < Units; ++U) {
    Net.addReaction(firstOrder(X[U], 0.01, static_cast<int>(X[U + 1])));
    Net.addReaction(firstOrder(X[U + 1], 0.01, static_cast<int>(X[U])));
  }
  // Dense cross-inhibition: Y_u catalyzes the removal of X_v. These
  // Units^2 constants are the group scaled by the P9-analogue parameter.
  for (unsigned U = 0; U < Units; ++U)
    for (unsigned V = 0; V < Units; ++V) {
      S.P9Reactions.push_back(Net.numReactions());
      Net.addReaction(secondOrder(Y[U], X[V], S.BaselineCrossRate, {Y[U]}));
    }
  // Waste chain with a log-spread of decay rates (adds stiffness).
  Net.addReaction(firstOrder(X[0], 0.1, static_cast<int>(Chain[0])));
  for (unsigned I = 0; I + 1 < ChainLength; ++I) {
    const double K = std::pow(
        10.0, 3.0 * (1.0 - static_cast<double>(I) /
                               static_cast<double>(ChainLength - 1)) -
                  1.0);
    Net.addReaction(firstOrder(Chain[I], K, static_cast<int>(Chain[I + 1])));
  }
  Net.addReaction(firstOrder(Chain[ChainLength - 1], 0.05));

  // Pad with weak leak reactions to the paper-matched reaction count when
  // building the full-size network (74 units -> 6581 reactions).
  if (Units == 74 && ChainLength == 24) {
    const size_t Target = 6581;
    assert(Net.numReactions() <= Target && "surrogate overshot its size");
    unsigned Tag = 0;
    while (Net.numReactions() < Target) {
      const unsigned A = Tag % Units;
      const unsigned B = (Tag * 7 + 3) % Units;
      Net.addReaction(firstOrder(X[A], 1e-4, static_cast<int>(X[B])));
      ++Tag;
    }
    assert(Net.numSpecies() == 173 && "surrogate species count drifted");
  }
  return S;
}

MetabolicSurrogate psg::makeMetabolicSurrogate() {
  MetabolicSurrogate M;
  ReactionNetwork &Net = M.Net;
  Net.setName("metabolic-surrogate");

  // Core metabolites of the carbohydrate pathway (glycolysis + PPP).
  const char *CoreNames[] = {
      "GLC", "G6P", "F6P",   "FBP",   "DHAP", "G3P", "BPG13",
      "PG3", "PG2", "PEP",   "PYR",   "LAC",  "DPG23", "Phosi",
      "GSH", "R5P", "Ru5P",  "X5P",   "S7P",  "E4P"};
  std::vector<unsigned> Core;
  for (const char *Name : CoreNames)
    Core.push_back(Net.addSpecies(Name, 0.1));
  const unsigned GLC = Core[0], G6P = Core[1], F6P = Core[2], FBP = Core[3],
                 DHAP = Core[4], G3P = Core[5], BPG13 = Core[6],
                 PG3 = Core[7], PG2 = Core[8], PEP = Core[9], PYR = Core[10],
                 LAC = Core[11], DPG23 = Core[12], Phosi = Core[13],
                 GSH = Core[14], R5P = Core[15], Ru5P = Core[16],
                 X5P = Core[17], S7P = Core[18], E4P = Core[19];
  M.ReporterR5P = R5P;
  Net.species(GLC).InitialConcentration = 5.0;

  // Cofactors.
  const unsigned ATP = Net.addSpecies("ATP", 1.5);
  const unsigned ADP = Net.addSpecies("ADP", 0.2);
  const unsigned MgATP = Net.addSpecies("MgATP", 1.0);
  const unsigned MgADP = Net.addSpecies("MgADP", 0.1);
  const unsigned NAD = Net.addSpecies("NAD", 0.06);
  const unsigned NADH = Net.addSpecies("NADH", 0.03);

  // Two hexokinase isoform clusters with the Table-1 state names.
  const char *IsoStates[] = {"hkE",         "hkEMgATP",   "hkEMgATPGLC",
                             "hkEGLC",      "hkEMgADPG6P", "hkEG6P",
                             "hkEMgADP",    "hkEGLCGSH",  "hkEGLCDPG23",
                             "hkEPhosi",    "hkEGLCG6P"};
  auto addIsoformCluster = [&](unsigned ClusterId, double Abundance,
                               bool Track) {
    std::vector<unsigned> States;
    for (const char *Name : IsoStates)
      States.push_back(Net.addSpecies(
          formatString("%s%u", Name, ClusterId),
          Name == std::string("hkE") ? Abundance : Abundance * 0.1));
    if (Track)
      M.IsoformSpecies = States;
    const unsigned E = States[0], EMgATP = States[1], EMgATPGLC = States[2],
                   EGLC = States[3], EMgADPG6P = States[4], EG6P = States[5],
                   EMgADP = States[6], EGLCGSH = States[7],
                   EGLCDPG = States[8], EPhosi = States[9],
                   EGLCG6P = States[10];
    auto track = [&](Reaction Rx) {
      M.UnknownParameters.push_back(Net.numReactions());
      Net.addReaction(std::move(Rx));
    };
    // Catalytic cycle.
    track(secondOrder(E, MgATP, 2.0, {EMgATP}));
    track(firstOrder(EMgATP, 0.5, static_cast<int>(E))); // + MgATP implicit loss.
    track(secondOrder(EMgATP, GLC, 3.0, {EMgATPGLC}));
    track(firstOrder(EMgATPGLC, 4.0, static_cast<int>(EMgADPG6P)));
    track(secondOrder(E, GLC, 1.0, {EGLC}));
    track(firstOrder(EGLC, 0.8, static_cast<int>(E)));
    track(secondOrder(EGLC, MgATP, 2.5, {EMgATPGLC}));
    // Product release.
    {
      Reaction Release;
      Release.RateConstant = 5.0;
      Release.Reactants.emplace_back(EMgADPG6P, 1);
      Release.Products.emplace_back(EMgADP, 1);
      Release.Products.emplace_back(G6P, 1);
      track(std::move(Release));
    }
    {
      Reaction Release;
      Release.RateConstant = 6.0;
      Release.Reactants.emplace_back(EMgADP, 1);
      Release.Products.emplace_back(E, 1);
      Release.Products.emplace_back(MgADP, 1);
      track(std::move(Release));
    }
    track(secondOrder(E, G6P, 0.4, {EG6P}));          // Product inhibition.
    track(firstOrder(EG6P, 0.6, static_cast<int>(E)));
    // Regulator-bound dead-end states (the high-sensitivity group).
    track(secondOrder(EGLC, GSH, 1.2, {EGLCGSH}));
    track(firstOrder(EGLCGSH, 0.3, static_cast<int>(EGLC)));
    track(secondOrder(EGLC, DPG23, 1.1, {EGLCDPG}));
    track(firstOrder(EGLCDPG, 0.25, static_cast<int>(EGLC)));
    track(secondOrder(EGLC, Phosi, 0.9, {EPhosi}));
    track(firstOrder(EPhosi, 0.35, static_cast<int>(EGLC)));
    track(secondOrder(EGLC, G6P, 0.7, {EGLCG6P}));
    track(firstOrder(EGLCG6P, 0.45, static_cast<int>(EGLC)));
    return States;
  };
  addIsoformCluster(2, 1e-3, /*Track=*/true); // The abundant isoform.
  addIsoformCluster(1, 2e-4, /*Track=*/false);

  // Downstream glycolysis as Michaelis-Menten conversions.
  auto mm = [&](unsigned Sub, double Vmax, double Km,
                std::initializer_list<unsigned> Products, bool Unknown) {
    if (Unknown)
      M.UnknownParameters.push_back(Net.numReactions());
    Net.addReaction(michaelisMenten(Sub, Vmax, Km, Products));
  };
  mm(G6P, 1.2, 0.3, {F6P}, true);
  mm(F6P, 0.9, 0.25, {G6P}, true);
  mm(F6P, 1.5, 0.2, {FBP}, true);
  mm(FBP, 2.0, 0.15, {DHAP, G3P}, true);
  mm(DHAP, 3.0, 0.4, {G3P}, true);
  mm(G3P, 2.5, 0.35, {BPG13}, true);
  mm(BPG13, 2.2, 0.3, {PG3}, true);
  mm(BPG13, 0.4, 0.5, {DPG23}, true);
  mm(DPG23, 0.3, 0.6, {PG3, Phosi}, true);
  mm(PG3, 1.8, 0.25, {PG2}, true);
  mm(PG2, 1.6, 0.2, {PEP}, true);
  mm(PEP, 2.4, 0.3, {PYR}, true);
  mm(PYR, 1.4, 0.5, {LAC}, true);
  mm(LAC, 0.2, 0.8, {PYR}, true);

  // Pentose-phosphate branch feeding the reporter.
  mm(G6P, 0.8, 0.4, {Ru5P}, true);
  mm(Ru5P, 1.0, 0.3, {R5P}, true);
  mm(R5P, 0.5, 0.4, {Ru5P}, true);
  mm(Ru5P, 0.9, 0.3, {X5P}, true);
  mm(X5P, 0.6, 0.35, {Ru5P}, true);
  {
    M.UnknownParameters.push_back(Net.numReactions());
    Net.addReaction(secondOrder(R5P, X5P, 0.7, {S7P, G3P}));
    M.UnknownParameters.push_back(Net.numReactions());
    Net.addReaction(secondOrder(S7P, G3P, 0.5, {E4P, F6P}));
    M.UnknownParameters.push_back(Net.numReactions());
    Net.addReaction(secondOrder(E4P, X5P, 0.6, {F6P, G3P}));
  }

  // Cofactor cycling (kept known).
  Net.addReaction(secondOrder(ATP, ADP, 0.1, {MgATP, MgADP}));
  Net.addReaction(firstOrder(MgATP, 0.05, static_cast<int>(ATP)));
  Net.addReaction(firstOrder(MgADP, 0.07, static_cast<int>(ADP)));
  Net.addReaction(firstOrder(ADP, 0.4, static_cast<int>(ATP)));
  Net.addReaction(secondOrder(NAD, G3P, 0.3, {NADH, BPG13}));
  Net.addReaction(firstOrder(NADH, 0.25, static_cast<int>(NAD)));
  Net.addReaction(secondOrder(GSH, PYR, 0.02, {GSH, LAC}));
  Net.addReaction(firstOrder(GSH, 0.01, static_cast<int>(GSH)));

  // Auxiliary intermediates padding the network to the paper-matched
  // species count (114); their slow interconversion chain pads the
  // reaction count, with the residual flagged unknown for the PE task.
  std::vector<unsigned> Pads;
  while (Net.numSpecies() < 114)
    Pads.push_back(Net.addSpecies(
        formatString("met%zu", Net.numSpecies()), 0.05));
  Net.addReaction(firstOrder(PYR, 0.05, static_cast<int>(Pads[0])));
  for (size_t I = 0; I + 1 < Pads.size(); ++I)
    Net.addReaction(
        firstOrder(Pads[I], 0.05 + 0.01 * static_cast<double>(I % 7),
                   static_cast<int>(Pads[I + 1])));
  Net.addReaction(firstOrder(Pads.back(), 0.02, static_cast<int>(LAC)));

  // Exact-count filler: weak cross-leaks among core metabolites, flagged
  // unknown until the 78-parameter budget of the PE task is reached.
  unsigned Tag = 0;
  while (Net.numReactions() < 226) {
    const unsigned A = Core[Tag % Core.size()];
    const unsigned B = Core[(Tag * 5 + 7) % Core.size()];
    if (A != B) {
      if (M.UnknownParameters.size() < 78)
        M.UnknownParameters.push_back(Net.numReactions());
      Net.addReaction(firstOrder(A, 1e-3, static_cast<int>(B)));
    }
    ++Tag;
  }
  assert(Net.numSpecies() == 114 && Net.numReactions() == 226 &&
         "metabolic surrogate size drifted");
  assert(M.UnknownParameters.size() == 78 &&
         "unknown-parameter budget drifted");
  assert(M.IsoformSpecies.size() == 11 && "isoform cluster size drifted");
  return M;
}
