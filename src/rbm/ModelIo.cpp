//===- rbm/ModelIo.cpp ----------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "rbm/ModelIo.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace psg;

namespace {
/// Parses one reaction side ("2 A + B", or "0" for empty) into (index,
/// coefficient) pairs against \p Net's species table.
Status parseSide(const ReactionNetwork &Net, std::string_view Side,
                 std::vector<std::pair<unsigned, unsigned>> &Out) {
  Side = trim(Side);
  if (Side == "0" || Side.empty())
    return Status::success();
  for (const std::string &TermText : split(Side, '+')) {
    std::vector<std::string> Tokens = splitWhitespace(TermText);
    unsigned Coef = 1;
    std::string Name;
    if (Tokens.size() == 1) {
      Name = Tokens[0];
    } else if (Tokens.size() == 2) {
      if (!parseUnsigned(Tokens[0], Coef) || Coef == 0)
        return Status::failure("bad stoichiometric coefficient '" +
                               Tokens[0] + "'");
      Name = Tokens[1];
    } else {
      return Status::failure("malformed term '" + TermText + "'");
    }
    auto Index = Net.findSpecies(Name);
    if (!Index)
      return Status::failure(Index.message());
    bool Merged = false;
    for (auto &[Idx, C] : Out)
      if (Idx == *Index) {
        C += Coef;
        Merged = true;
        break;
      }
    if (!Merged)
      Out.emplace_back(*Index, Coef);
  }
  return Status::success();
}

/// Renders one reaction side back to text.
std::string
writeSide(const ReactionNetwork &Net,
          const std::vector<std::pair<unsigned, unsigned>> &Side) {
  if (Side.empty())
    return "0";
  std::string Text;
  for (size_t I = 0; I < Side.size(); ++I) {
    if (I != 0)
      Text += " + ";
    if (Side[I].second != 1)
      Text += formatString("%u ", Side[I].second);
    Text += Net.species(Side[I].first).Name;
  }
  return Text;
}
} // namespace

ErrorOr<ReactionNetwork> psg::parseModelText(const std::string &Text) {
  ReactionNetwork Net;
  size_t LineNo = 0;
  size_t Pos = 0;
  auto fail = [&](const std::string &Message) {
    return ErrorOr<ReactionNetwork>::failure(
        formatString("line %zu: %s", LineNo, Message.c_str()));
  };

  while (Pos <= Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string_view Line(Text.data() + Pos, End - Pos);
    Pos = End + 1;
    ++LineNo;
    if (size_t Hash = Line.find('#'); Hash != std::string_view::npos)
      Line = Line.substr(0, Hash);
    Line = trim(Line);
    if (Line.empty())
      continue;

    if (startsWith(Line, "model")) {
      std::vector<std::string> Tokens = splitWhitespace(Line);
      if (Tokens.size() != 2)
        return fail("expected 'model <name>'");
      Net.setName(Tokens[1]);
      continue;
    }
    if (startsWith(Line, "species")) {
      std::vector<std::string> Tokens = splitWhitespace(Line);
      double Initial = 0.0;
      if (Tokens.size() != 3 || !parseDouble(Tokens[2], Initial))
        return fail("expected 'species <name> <initial>'");
      if (Net.findSpecies(Tokens[1]))
        return fail("duplicate species '" + Tokens[1] + "'");
      Net.addSpecies(Tokens[1], Initial);
      continue;
    }
    if (startsWith(Line, "reaction")) {
      size_t Colon = Line.find(':');
      if (Colon == std::string_view::npos)
        return fail("reaction needs a ':' before the equation");
      std::vector<std::string> Head =
          splitWhitespace(Line.substr(0, Colon));
      std::string_view Equation = Line.substr(Colon + 1);

      Reaction Rx;
      // Head: "reaction k" | "reaction mm Vmax Km" | "reaction hill k K n".
      if (Head.size() == 2) {
        if (!parseDouble(Head[1], Rx.RateConstant))
          return fail("bad rate constant '" + Head[1] + "'");
      } else if (Head.size() == 4 && Head[1] == "mm") {
        Rx.Kind = KineticsKind::MichaelisMenten;
        if (!parseDouble(Head[2], Rx.RateConstant) ||
            !parseDouble(Head[3], Rx.Km))
          return fail("expected 'reaction mm <Vmax> <Km> : ...'");
      } else if (Head.size() == 5 &&
                 (Head[1] == "hill" || Head[1] == "hillrep")) {
        Rx.Kind = Head[1] == "hill" ? KineticsKind::Hill
                                    : KineticsKind::HillRepression;
        if (!parseDouble(Head[2], Rx.RateConstant) ||
            !parseDouble(Head[3], Rx.HillK) ||
            !parseDouble(Head[4], Rx.HillN))
          return fail("expected 'reaction hill <k> <K> <n> : ...'");
      } else {
        return fail("malformed reaction header");
      }

      size_t Arrow = Equation.find("->");
      if (Arrow == std::string_view::npos)
        return fail("reaction equation needs '->'");
      if (Status S = parseSide(Net, Equation.substr(0, Arrow), Rx.Reactants);
          !S)
        return fail(S.message());
      if (Status S = parseSide(Net, Equation.substr(Arrow + 2), Rx.Products);
          !S)
        return fail(S.message());
      if (Rx.Kind != KineticsKind::MassAction && Rx.Reactants.empty())
        return fail("saturating kinetics need a substrate");
      Net.addReaction(std::move(Rx));
      continue;
    }
    return fail("unrecognized declaration");
  }

  if (Status S = Net.validate(); !S)
    return ErrorOr<ReactionNetwork>::failure(S.message());
  return Net;
}

ErrorOr<ReactionNetwork> psg::loadModelFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return ErrorOr<ReactionNetwork>::failure("cannot open '" + Path + "'");
  std::string Text;
  char Buffer[4096];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Text.append(Buffer, Read);
  std::fclose(File);
  return parseModelText(Text);
}

std::string psg::writeModelText(const ReactionNetwork &Net) {
  std::string Text = "model " + Net.name() + "\n";
  for (const Species &S : Net.allSpecies())
    Text += formatString("species %s %.17g\n", S.Name.c_str(),
                         S.InitialConcentration);
  for (const Reaction &Rx : Net.allReactions()) {
    switch (Rx.Kind) {
    case KineticsKind::MassAction:
      Text += formatString("reaction %.17g : ", Rx.RateConstant);
      break;
    case KineticsKind::MichaelisMenten:
      Text += formatString("reaction mm %.17g %.17g : ", Rx.RateConstant,
                           Rx.Km);
      break;
    case KineticsKind::Hill:
      Text += formatString("reaction hill %.17g %.17g %.17g : ",
                           Rx.RateConstant, Rx.HillK, Rx.HillN);
      break;
    case KineticsKind::HillRepression:
      Text += formatString("reaction hillrep %.17g %.17g %.17g : ",
                           Rx.RateConstant, Rx.HillK, Rx.HillN);
      break;
    }
    Text += writeSide(Net, Rx.Reactants) + " -> " +
            writeSide(Net, Rx.Products) + "\n";
  }
  return Text;
}

Status psg::saveModelFile(const ReactionNetwork &Net,
                          const std::string &Path) {
  const std::string Text = writeModelText(Net);
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return Status::failure("cannot open '" + Path + "' for writing");
  const size_t Written = std::fwrite(Text.data(), 1, Text.size(), File);
  std::fclose(File);
  if (Written != Text.size())
    return Status::failure("short write to '" + Path + "'");
  return Status::success();
}
