//===- rbm/ModelIo.h - Model text format ------------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain-text RBM exchange format in the spirit of BioSimWare. Grammar
/// (one declaration per line, '#' starts a comment):
///
/// \code
///   model <name>
///   species <name> <initial-concentration>
///   reaction <k> : 2 A + B -> C
///   reaction mm <Vmax> <Km> : S + E -> P + E
///   reaction hill <k> <K> <n> : S -> P
/// \endcode
///
/// Reaction sides are '+'-separated terms with an optional integer
/// coefficient; the empty side '0' denotes a source or sink.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_RBM_MODELIO_H
#define PSG_RBM_MODELIO_H

#include "rbm/ReactionNetwork.h"

namespace psg {

/// Parses a model from text; fails with a line-numbered message.
ErrorOr<ReactionNetwork> parseModelText(const std::string &Text);

/// Loads a model from \p Path.
ErrorOr<ReactionNetwork> loadModelFile(const std::string &Path);

/// Serializes \p Net to the text format (round-trips with parseModelText).
std::string writeModelText(const ReactionNetwork &Net);

/// Saves \p Net to \p Path.
Status saveModelFile(const ReactionNetwork &Net, const std::string &Path);

} // namespace psg

#endif // PSG_RBM_MODELIO_H
