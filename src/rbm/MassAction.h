//===- rbm/MassAction.h - RBM-to-ODE compilation ----------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a ReactionNetwork into an OdeSystem following the law of
/// mass action: dX/dt = (B - A)^T [K (.) X^A], extended with saturating
/// Michaelis-Menten and Hill factors. The compiled form mirrors the data
/// structures a GPU kernel would parse (flattened term and contribution
/// arrays), provides the analytic Jacobian, and exposes the per-evaluation
/// operation profile consumed by the vgpu cost model.
///
/// Compilation is split in two, mirroring the GPU memory model: an
/// immutable CompiledModel holds everything derived from the network
/// alone (CSR stoichiometry, kinetics, work profile — the constant-memory
/// image cupSODA-style codes upload once per batch) and is shared across
/// every simulation of a batch; a CompiledOdeSystem is the cheap
/// per-simulation view carrying only the rate constants and the rate
/// scratch vector (the per-thread state).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_RBM_MASSACTION_H
#define PSG_RBM_MASSACTION_H

#include "ode/OdeSystem.h"
#include "rbm/ReactionNetwork.h"

#include <memory>

namespace psg {

/// Operation counts of one compiled rhs / Jacobian evaluation; the vgpu
/// cost model converts these to modeled cycles.
struct EvaluationProfile {
  size_t RhsMultiplies = 0;  ///< Products in the rate computations.
  size_t RhsAccumulates = 0; ///< Additions into the derivative vector.
  size_t JacobianEntries = 0; ///< Nonzero structural Jacobian updates.
};

/// The immutable, shareable compilation of a ReactionNetwork: flat
/// evaluation arrays plus the per-reaction kinetics parameters. Compiled
/// once per network (counted by `psg.rbm.compilations`) and shared by
/// every per-simulation CompiledOdeSystem view of a batch.
class CompiledModel {
public:
  /// Compiles \p Net; the network must validate().
  explicit CompiledModel(const ReactionNetwork &Net);

  struct KineticsParams {
    KineticsKind Kind;
    double Km, HillK, HillN;
    /// pow(HillK, HillN), precomputed at compile time so the saturating
    /// factor evaluations avoid one pow() per call.
    double KnPow;
    /// HillN when it is a small whole number (the overwhelmingly common
    /// case for Hill coefficients), else -1. Lets the saturating-factor
    /// evaluations replace std::pow with repeated multiplication — which
    /// also keeps the lane-batched inner loops vectorizable.
    int HillNInt;
  };

  std::string SystemName;
  size_t NumSpecies = 0;
  size_t NumReactions = 0;

  // Reaction terms: for reaction r, terms [TermBegin[r], TermBegin[r+1]).
  std::vector<uint32_t> TermBegin;
  std::vector<uint32_t> TermSpecies;
  std::vector<uint32_t> TermCoef;

  // Net stoichiometry per reaction: entries [NetBegin[r], NetBegin[r+1]).
  std::vector<uint32_t> NetBegin;
  std::vector<uint32_t> NetSpecies;
  std::vector<double> NetCoef;

  /// The constants the network was compiled with (per-simulation values
  /// live in the CompiledOdeSystem views).
  std::vector<double> DefaultConstants;
  std::vector<KineticsParams> Kinetics;

  EvaluationProfile Profile;

  /// Structural + kinetic fingerprint of the source network (see
  /// networkFingerprint); cache keys compare this instead of recompiling.
  uint64_t Fingerprint = 0;
};

/// Compiles \p Net into a shareable immutable model. Increments
/// `psg.rbm.compilations`.
std::shared_ptr<const CompiledModel> compileModel(const ReactionNetwork &Net);

/// Deterministic fingerprint of a network's compiled-relevant content:
/// species/reaction structure, kinetics parameters, and baseline rate
/// constants. Two networks with equal fingerprints compile to equal
/// models, so batch engines use it to reuse cached compilations.
uint64_t networkFingerprint(const ReactionNetwork &Net);

/// A per-simulation view of a CompiledModel: the OdeSystem the solvers
/// integrate.
///
/// Rate constants are mutable (setRateConstant) so one compiled model can
/// be re-parameterized across the thousands of simulations of a sweep
/// without re-deriving the ODEs; the species order matches the network.
/// Views are cheap to construct from a shared model (two vectors of
/// NumReactions doubles) and reusable across simulations via rebind().
class CompiledOdeSystem : public OdeSystem {
public:
  /// Compiles \p Net and wraps the result; the network must validate().
  /// Convenience for single-simulation call sites — batch dispatch paths
  /// share one compileModel() result across views instead.
  explicit CompiledOdeSystem(const ReactionNetwork &Net);

  /// Wraps an existing compilation; no per-reaction work besides copying
  /// the default constants.
  explicit CompiledOdeSystem(std::shared_ptr<const CompiledModel> Model);

  size_t dimension() const override { return Shared->NumSpecies; }
  void rhs(double T, const double *Y, double *DyDt) const override;
  bool hasAnalyticJacobian() const override { return true; }
  void analyticJacobian(double T, const double *Y, Matrix &J) const override;
  std::string name() const override { return Shared->SystemName; }

  size_t numReactions() const { return Shared->NumReactions; }

  /// The shared immutable compilation backing this view.
  const CompiledModel &model() const { return *Shared; }
  const std::shared_ptr<const CompiledModel> &sharedModel() const {
    return Shared;
  }

  /// Re-points this view at a different compilation (resetting the rate
  /// constants to the new model's defaults), or resets it onto the same
  /// one. Reused per-worker views rebind once per sub-batch.
  void rebind(std::shared_ptr<const CompiledModel> Model);

  /// Reads/writes the kinetic constant of reaction \p R.
  double rateConstant(size_t R) const { return RateConstants[R]; }
  void setRateConstant(size_t R, double K) {
    assert(R < Shared->NumReactions && "reaction index out of range");
    RateConstants[R] = K;
  }

  /// Replaces all rate constants (size must match numReactions()).
  void setRateConstants(const std::vector<double> &K);

  /// Same, assigning in place from a raw span — the batch dispatch loops
  /// re-parameterize one reused view per simulation, and this overload
  /// does it without touching the allocator.
  void setRateConstants(const double *K, size_t Count);

  /// All current rate constants, in reaction order.
  const std::vector<double> &rateConstants() const { return RateConstants; }

  /// Restores the constants the network was compiled with.
  void resetRateConstants() { RateConstants = Shared->DefaultConstants; }

  /// Static operation profile of one evaluation.
  const EvaluationProfile &profile() const { return Shared->Profile; }

private:
  std::shared_ptr<const CompiledModel> Shared;
  std::vector<double> RateConstants;
  mutable std::vector<double> RateScratch;

  void computeRates(const double *Y) const;
  double saturatingFactor(size_t R, double S) const;
  double saturatingFactorDerivative(size_t R, double S) const;
};

} // namespace psg

#endif // PSG_RBM_MASSACTION_H
