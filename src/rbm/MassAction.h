//===- rbm/MassAction.h - RBM-to-ODE compilation ----------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a ReactionNetwork into an OdeSystem following the law of
/// mass action: dX/dt = (B - A)^T [K (.) X^A], extended with saturating
/// Michaelis-Menten and Hill factors. The compiled form mirrors the data
/// structures a GPU kernel would parse (flattened term and contribution
/// arrays), provides the analytic Jacobian, and exposes the per-evaluation
/// operation profile consumed by the vgpu cost model.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_RBM_MASSACTION_H
#define PSG_RBM_MASSACTION_H

#include "ode/OdeSystem.h"
#include "rbm/ReactionNetwork.h"

namespace psg {

/// Operation counts of one compiled rhs / Jacobian evaluation; the vgpu
/// cost model converts these to modeled cycles.
struct EvaluationProfile {
  size_t RhsMultiplies = 0;  ///< Products in the rate computations.
  size_t RhsAccumulates = 0; ///< Additions into the derivative vector.
  size_t JacobianEntries = 0; ///< Nonzero structural Jacobian updates.
};

/// A ReactionNetwork compiled to flat evaluation arrays.
///
/// Rate constants are mutable (setRateConstant) so one compiled system can
/// be re-parameterized across the thousands of simulations of a sweep
/// without re-deriving the ODEs; the species order matches the network.
class CompiledOdeSystem : public OdeSystem {
public:
  /// Compiles \p Net; the network must validate().
  explicit CompiledOdeSystem(const ReactionNetwork &Net);

  size_t dimension() const override { return NumSpecies; }
  void rhs(double T, const double *Y, double *DyDt) const override;
  bool hasAnalyticJacobian() const override { return true; }
  void analyticJacobian(double T, const double *Y, Matrix &J) const override;
  std::string name() const override { return SystemName; }

  size_t numReactions() const { return NumReactions; }

  /// Reads/writes the kinetic constant of reaction \p R.
  double rateConstant(size_t R) const { return RateConstants[R]; }
  void setRateConstant(size_t R, double K) {
    assert(R < NumReactions && "reaction index out of range");
    RateConstants[R] = K;
  }

  /// Replaces all rate constants (size must match numReactions()).
  void setRateConstants(const std::vector<double> &K);

  /// All current rate constants, in reaction order.
  const std::vector<double> &rateConstants() const { return RateConstants; }

  /// Restores the constants the network was compiled with.
  void resetRateConstants() { RateConstants = OriginalConstants; }

  /// Static operation profile of one evaluation.
  const EvaluationProfile &profile() const { return Profile; }

private:
  struct KineticsParams {
    KineticsKind Kind;
    double Km, HillK, HillN;
  };

  std::string SystemName;
  size_t NumSpecies;
  size_t NumReactions;

  // Reaction terms: for reaction r, terms [TermBegin[r], TermBegin[r+1]).
  std::vector<uint32_t> TermBegin;
  std::vector<uint32_t> TermSpecies;
  std::vector<uint32_t> TermCoef;

  // Net stoichiometry per reaction: entries [NetBegin[r], NetBegin[r+1]).
  std::vector<uint32_t> NetBegin;
  std::vector<uint32_t> NetSpecies;
  std::vector<double> NetCoef;

  std::vector<double> RateConstants;
  std::vector<double> OriginalConstants;
  std::vector<KineticsParams> Kinetics;

  EvaluationProfile Profile;
  mutable std::vector<double> RateScratch;

  void computeRates(const double *Y) const;
  double saturatingFactor(size_t R, double S) const;
  double saturatingFactorDerivative(size_t R, double S) const;
};

} // namespace psg

#endif // PSG_RBM_MASSACTION_H
