//===- rbm/MassAction.h - RBM-to-ODE compilation ----------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a ReactionNetwork into an OdeSystem following the law of
/// mass action: dX/dt = (B - A)^T [K (.) X^A], extended with saturating
/// Michaelis-Menten and Hill factors. The compiled form mirrors the data
/// structures a GPU kernel would parse (flattened term and contribution
/// arrays), provides the analytic Jacobian, and exposes the per-evaluation
/// operation profile consumed by the vgpu cost model.
///
/// Compilation is split in two, mirroring the GPU memory model: an
/// immutable CompiledModel holds everything derived from the network
/// alone (CSR stoichiometry, kinetics, work profile — the constant-memory
/// image cupSODA-style codes upload once per batch) and is shared across
/// every simulation of a batch; a CompiledOdeSystem is the cheap
/// per-simulation view carrying only the rate constants and the rate
/// scratch vector (the per-thread state).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_RBM_MASSACTION_H
#define PSG_RBM_MASSACTION_H

#include "ode/OdeSystem.h"
#include "rbm/ReactionNetwork.h"

#include <memory>

namespace psg {

/// Operation counts of one compiled rhs / Jacobian evaluation; the vgpu
/// cost model converts these to modeled cycles.
struct EvaluationProfile {
  size_t RhsMultiplies = 0;  ///< Products in the rate computations.
  size_t RhsAccumulates = 0; ///< Additions into the derivative vector.
  size_t JacobianEntries = 0; ///< Nonzero structural Jacobian updates.
};

/// The shape-specialized kernel classes the compiler partitions reactions
/// into. Each class executes one branch-free loop over its contiguous run
/// of positions (cupSODA-style mechanism compilation, applied to the CPU
/// kernels): the two dominant mass-action shapes get dedicated loops with
/// no inner term loop at all.
enum class KernelClass : uint8_t {
  MassAction1 = 0, ///< One reactant term with coefficient 1: k * Xa.
  MassAction2,     ///< Two terms, both coefficient 1: k * Xa * Xb.
  MassActionN,     ///< Any other pure product form (incl. zero-order).
  MichaelisMenten, ///< MM factor on the first term, mass-action tail.
  Hill,            ///< Hill activation factor, mass-action tail.
  HillRepression,  ///< Hill repression factor, mass-action tail.
};

/// Number of KernelClass values (run partition bound).
constexpr size_t NumKernelClasses = 6;

/// The immutable, shareable compilation of a ReactionNetwork: flat
/// evaluation arrays plus the per-reaction kinetics parameters, the
/// kind-partitioned kernel layout, and the Jacobian sparsity pattern.
/// Compiled once per network (counted by `psg.rbm.compilations`) and
/// shared by every per-simulation CompiledOdeSystem view of a batch.
class CompiledModel {
public:
  /// Compiles \p Net; the network must validate().
  explicit CompiledModel(const ReactionNetwork &Net);

  struct KineticsParams {
    KineticsKind Kind;
    double Km, HillK, HillN;
    /// pow(HillK, HillN), precomputed at compile time so the saturating
    /// factor evaluations avoid one pow() per call.
    double KnPow;
    /// HillN when it is a small whole number (the overwhelmingly common
    /// case for Hill coefficients), else -1. Lets the saturating-factor
    /// evaluations replace std::pow with repeated multiplication — which
    /// also keeps the lane-batched inner loops vectorizable.
    int HillNInt;
  };

  /// One contiguous run of same-class reactions in the permuted order:
  /// positions [Begin, End) of RunOrder, all of class Class.
  struct KernelRun {
    KernelClass Class;
    uint32_t Begin;
    uint32_t End;
  };

  std::string SystemName;
  size_t NumSpecies = 0;
  size_t NumReactions = 0;

  // Reaction terms: for reaction r, terms [TermBegin[r], TermBegin[r+1]).
  std::vector<uint32_t> TermBegin;
  std::vector<uint32_t> TermSpecies;
  std::vector<uint32_t> TermCoef;

  // Net stoichiometry per reaction: entries [NetBegin[r], NetBegin[r+1]).
  std::vector<uint32_t> NetBegin;
  std::vector<uint32_t> NetSpecies;
  std::vector<double> NetCoef;

  /// The constants the network was compiled with (per-simulation values
  /// live in the CompiledOdeSystem views).
  std::vector<double> DefaultConstants;
  std::vector<KineticsParams> Kinetics;

  // --- Kind-partitioned kernel layout -----------------------------------
  //
  // Reactions are stably partitioned by KernelClass into at most
  // NumKernelClasses contiguous runs. "Position" indexes the permuted
  // order; RunOrder maps it back to the original reaction index, which is
  // where rates are written — the stoichiometry accumulation still walks
  // reactions in original order, so trajectories are bit-exact with the
  // unpartitioned evaluation (see DESIGN.md "Kinetics kernel layout").

  std::vector<KernelRun> Runs;      ///< At most NumKernelClasses entries.
  std::vector<uint32_t> RunOrder;   ///< Position -> original reaction.
  std::vector<uint32_t> PositionOf; ///< Original reaction -> position.
  /// First (only) species of MassAction1/MassAction2 reactions, and the
  /// saturating substrate of MichaelisMenten/Hill/HillRepression ones,
  /// indexed by position. Zero for positions where it does not apply.
  std::vector<uint32_t> PosA;
  /// Second species of MassAction2 reactions, indexed by position.
  std::vector<uint32_t> PosB;
  /// Saturating-kernel parameters, indexed by position (zero outside
  /// their class): gathering them positionally makes the per-run loops
  /// walk dense arrays instead of striding through KineticsParams.
  std::vector<double> PosKm;
  std::vector<double> PosKnPow;
  std::vector<double> PosHillN;
  std::vector<double> PosHillK;
  std::vector<int32_t> PosHillNInt;
  /// First term index of the reaction at each position (TermBegin[RunOrder
  /// [P]], hoisted so the kernel loops read it contiguously instead of
  /// gathering through the permutation).
  std::vector<uint32_t> PosTerm0;
  /// Mass-action tail term range at each position: the full term range
  /// for MassActionN, the terms after the saturating substrate for
  /// MichaelisMenten/Hill/HillRepression. Empty (Begin == End) tails are
  /// the common case for order-one saturating reactions.
  std::vector<uint32_t> PosTailBegin;
  std::vector<uint32_t> PosTailEnd;

  /// Species-major transpose of the net stoichiometry: species i sums
  /// RhsCoef[c] * rate(RhsReaction[c]) over c in [RhsRowBegin[i],
  /// RhsRowBegin[i+1]). Contributions are stored in ascending reaction
  /// order, so each per-species sum performs the same additions in the
  /// same order as the reference's reaction-major accumulation — keeping
  /// the gather bit-exact while replacing the zero-fill pass and random
  /// read-modify-writes of DyDt with one sequential write per species.
  std::vector<uint32_t> RhsRowBegin;
  std::vector<uint32_t> RhsReaction;
  std::vector<double> RhsCoef;
  /// Whether rhs() uses the species-major gather above instead of the
  /// reaction-major scatter. Both are bit-exact; measurement picks the
  /// winner structurally: models with saturating kinetics profit from the
  /// gather, while pure mass-action models (vectorizable rate loops,
  /// chain-structured stoichiometry) keep the sequential reaction walk.
  bool SpeciesMajorRhs = false;

  // --- Jacobian sparsity pattern ----------------------------------------
  //
  // CSR over the structurally nonzero (i, j) entries of d(rhs_i)/d(X_j),
  // with a per-entry contribution list: entry e sums, over contributions
  // c in [JacContribBegin[e], JacContribBegin[e+1]), the products
  // JacContribCoef[c] * partial(JacContribTerm[c]), where partial(t) is
  // the derivative of term t's reaction rate w.r.t. the term's species.
  // Contributions are stored in the original (reaction, term, net-entry)
  // traversal order so the per-entry sums reproduce the accumulation
  // order — and bit patterns — of the unpartitioned dense evaluation.

  std::vector<uint32_t> JacRowBegin;     ///< Size NumSpecies + 1.
  std::vector<uint32_t> JacCol;          ///< Column per nonzero entry.
  std::vector<uint32_t> JacContribBegin; ///< Size jacNonZeros() + 1.
  std::vector<uint32_t> JacContribTerm;  ///< Global term index per contrib.
  std::vector<double> JacContribCoef;    ///< Net stoichiometry per contrib.

  /// Number of structurally nonzero Jacobian entries.
  size_t jacNonZeros() const { return JacCol.size(); }

  EvaluationProfile Profile;

  /// Structural + kinetic fingerprint of the source network (see
  /// networkFingerprint); cache keys compare this instead of recompiling.
  uint64_t Fingerprint = 0;
};

/// Compiles \p Net into a shareable immutable model. Increments
/// `psg.rbm.compilations`.
std::shared_ptr<const CompiledModel> compileModel(const ReactionNetwork &Net);

/// Deterministic fingerprint of a network's compiled-relevant content:
/// species/reaction structure, kinetics parameters, and baseline rate
/// constants. Two networks with equal fingerprints compile to equal
/// models, so batch engines use it to reuse cached compilations.
uint64_t networkFingerprint(const ReactionNetwork &Net);

/// A per-simulation view of a CompiledModel: the OdeSystem the solvers
/// integrate.
///
/// Rate constants are mutable (setRateConstant) so one compiled model can
/// be re-parameterized across the thousands of simulations of a sweep
/// without re-deriving the ODEs; the species order matches the network.
/// Views are cheap to construct from a shared model (two vectors of
/// NumReactions doubles) and reusable across simulations via rebind().
class CompiledOdeSystem : public OdeSystem {
public:
  /// Compiles \p Net and wraps the result; the network must validate().
  /// Convenience for single-simulation call sites — batch dispatch paths
  /// share one compileModel() result across views instead.
  explicit CompiledOdeSystem(const ReactionNetwork &Net);

  /// Wraps an existing compilation; no per-reaction work besides copying
  /// the default constants.
  explicit CompiledOdeSystem(std::shared_ptr<const CompiledModel> Model);

  size_t dimension() const override { return Shared->NumSpecies; }
  void rhs(double T, const double *Y, double *DyDt) const override;
  bool hasAnalyticJacobian() const override { return true; }
  void analyticJacobian(double T, const double *Y, Matrix &J) const override;
  std::string name() const override { return Shared->SystemName; }

  /// The pre-partition evaluation kernels: one loop over reactions in
  /// original order, branching on kinetics kind per reaction, dense
  /// Jacobian resize per call. Kept callable as the differential oracle
  /// for the kind-partitioned kernels (tests/rhs_kernels_test.cpp pins
  /// rhs() bit-exact against rhsReference()) and as the benchmark
  /// reference variant (bench_micro_rhs).
  void rhsReference(double T, const double *Y, double *DyDt) const;
  void analyticJacobianReference(double T, const double *Y, Matrix &J) const;

  /// Routes rhs()/analyticJacobian() through the reference kernels
  /// process-wide. Test/benchmark hook only: it is how the oracle suite
  /// drives entire simulator personalities through both evaluation paths
  /// without a parallel plumbing of the choice through every engine.
  static void setUseReferenceKernelsForTesting(bool Enable);
  static bool useReferenceKernelsForTesting();

  size_t numReactions() const { return Shared->NumReactions; }

  /// The shared immutable compilation backing this view.
  const CompiledModel &model() const { return *Shared; }
  const std::shared_ptr<const CompiledModel> &sharedModel() const {
    return Shared;
  }

  /// Re-points this view at a different compilation (resetting the rate
  /// constants to the new model's defaults), or resets it onto the same
  /// one. Reused per-worker views rebind once per sub-batch.
  void rebind(std::shared_ptr<const CompiledModel> Model);

  /// Reads/writes the kinetic constant of reaction \p R.
  double rateConstant(size_t R) const { return RateConstants[R]; }
  void setRateConstant(size_t R, double K) {
    assert(R < Shared->NumReactions && "reaction index out of range");
    RateConstants[R] = K;
    RatePermuted[Shared->PositionOf[R]] = K;
  }

  /// Replaces all rate constants (size must match numReactions()).
  void setRateConstants(const std::vector<double> &K);

  /// Same, assigning in place from a raw span — the batch dispatch loops
  /// re-parameterize one reused view per simulation, and this overload
  /// does it without touching the allocator.
  void setRateConstants(const double *K, size_t Count);

  /// All current rate constants, in reaction order.
  const std::vector<double> &rateConstants() const { return RateConstants; }

  /// Restores the constants the network was compiled with.
  void resetRateConstants();

  /// Static operation profile of one evaluation.
  const EvaluationProfile &profile() const { return Shared->Profile; }

private:
  std::shared_ptr<const CompiledModel> Shared;
  /// Rate constants in original reaction order (the public API order).
  std::vector<double> RateConstants;
  /// The same constants permuted to kernel-position order; maintained by
  /// every setter so the partitioned rate loops read them contiguously.
  std::vector<double> RatePermuted;
  mutable std::vector<double> RateScratch;
  /// Per-term rate partials d(rate_r)/d(X_{term t}), indexed by global
  /// term index — phase 1 of the sparsity-patterned Jacobian fill.
  mutable std::vector<double> PartialScratch;
  /// Identity of this view's Jacobian pattern for Matrix::claimPattern:
  /// bumped from a process-wide counter on every construct/rebind so a
  /// workspace claimed by a dead view (or by this view against an old
  /// model) is never mistaken for current.
  uint64_t PatternEpoch = 0;

  void computeRates(const double *Y) const;
  double saturatingFactor(size_t R, double S) const;
  double saturatingFactorDerivative(size_t R, double S) const;
};

} // namespace psg

#endif // PSG_RBM_MASSACTION_H
