//===- rbm/SbmlIo.cpp -----------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "rbm/SbmlIo.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cstdio>
#include <cstring>

using namespace psg;
using psg::xml::Element;

//===----------------------------------------------------------------------===//
// Minimal XML parser.
//===----------------------------------------------------------------------===//

namespace {
class XmlParser {
public:
  explicit XmlParser(const std::string &Text) : Text(Text) {}

  ErrorOr<Element> parse() {
    skipProlog();
    Element Root;
    if (Status S = parseElement(Root); !S)
      return ErrorOr<Element>::failure(S.message());
    skipMisc();
    if (Pos != Text.size())
      return ErrorOr<Element>::failure("trailing content after root");
    return Root;
  }

private:
  const std::string &Text;
  size_t Pos = 0;

  [[nodiscard]] Status fail(const std::string &Message) const {
    return Status::failure(
        formatString("XML error at offset %zu: %s", Pos, Message.c_str()));
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Pos < Text.size() ? Text[Pos] : '\0'; }

  void skipWhitespace() {
    while (!atEnd() && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(const char *Token) {
    const size_t Len = std::strlen(Token);
    if (Text.compare(Pos, Len, Token) != 0)
      return false;
    Pos += Len;
    return true;
  }

  void skipUntil(const char *Token) {
    const size_t Found = Text.find(Token, Pos);
    Pos = Found == std::string::npos ? Text.size()
                                     : Found + std::strlen(Token);
  }

  void skipMisc() {
    for (;;) {
      skipWhitespace();
      if (consume("<?"))
        skipUntil("?>");
      else if (consume("<!--"))
        skipUntil("-->");
      else if (consume("<!"))
        skipUntil(">");
      else
        return;
    }
  }

  void skipProlog() { skipMisc(); }

  static std::string decodeEntities(std::string_view S) {
    std::string Out;
    Out.reserve(S.size());
    for (size_t I = 0; I < S.size();) {
      if (S[I] != '&') {
        Out += S[I++];
        continue;
      }
      auto tryEntity = [&](const char *Entity, char Value) {
        const size_t Len = std::strlen(Entity);
        if (S.compare(I, Len, Entity) == 0) {
          Out += Value;
          I += Len;
          return true;
        }
        return false;
      };
      if (!tryEntity("&amp;", '&') && !tryEntity("&lt;", '<') &&
          !tryEntity("&gt;", '>') && !tryEntity("&quot;", '"') &&
          !tryEntity("&apos;", '\''))
        Out += S[I++];
    }
    return Out;
  }

  bool isNameChar(char C) const {
    return std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
           C == '-' || C == ':' || C == '.';
  }

  Status parseName(std::string &Name) {
    const size_t Begin = Pos;
    while (!atEnd() && isNameChar(Text[Pos]))
      ++Pos;
    if (Pos == Begin)
      return fail("expected a name");
    Name = Text.substr(Begin, Pos - Begin);
    return Status::success();
  }

  Status parseAttributes(Element &E) {
    for (;;) {
      skipWhitespace();
      if (atEnd())
        return fail("unterminated tag");
      if (peek() == '>' || peek() == '/' || peek() == '?')
        return Status::success();
      std::string Key;
      if (Status S = parseName(Key); !S)
        return S;
      skipWhitespace();
      if (!consume("="))
        return fail("expected '=' after attribute name");
      skipWhitespace();
      const char Quote = peek();
      if (Quote != '"' && Quote != '\'')
        return fail("expected a quoted attribute value");
      ++Pos;
      const size_t End = Text.find(Quote, Pos);
      if (End == std::string::npos)
        return fail("unterminated attribute value");
      E.Attributes.emplace_back(
          Key, decodeEntities(std::string_view(Text).substr(Pos, End - Pos)));
      Pos = End + 1;
    }
  }

  Status parseElement(Element &E) {
    skipMisc();
    if (!consume("<"))
      return fail("expected '<'");
    if (Status S = parseName(E.Name); !S)
      return S;
    if (Status S = parseAttributes(E); !S)
      return S;
    skipWhitespace();
    if (consume("/>"))
      return Status::success();
    if (!consume(">"))
      return fail("expected '>'");

    // Content: text and child elements until the matching close tag.
    for (;;) {
      const size_t TextBegin = Pos;
      const size_t Lt = Text.find('<', Pos);
      if (Lt == std::string::npos)
        return fail("unterminated element '" + E.Name + "'");
      if (Lt > TextBegin)
        E.Text += decodeEntities(
            std::string_view(Text).substr(TextBegin, Lt - TextBegin));
      Pos = Lt;
      if (Text.compare(Pos, 2, "</") == 0) {
        Pos += 2;
        std::string Close;
        if (Status S = parseName(Close); !S)
          return S;
        if (Close != E.Name)
          return fail("mismatched close tag '" + Close + "' for '" +
                      E.Name + "'");
        skipWhitespace();
        if (!consume(">"))
          return fail("expected '>' after close tag");
        E.Text = std::string(trim(E.Text));
        return Status::success();
      }
      if (Text.compare(Pos, 4, "<!--") == 0) {
        skipUntil("-->");
        continue;
      }
      if (Text.compare(Pos, 2, "<?") == 0) {
        skipUntil("?>");
        continue;
      }
      Element Child;
      if (Status S = parseElement(Child); !S)
        return S;
      E.Children.push_back(std::move(Child));
    }
  }
};
} // namespace

const std::string *Element::findAttribute(const std::string &Key) const {
  for (const auto &[K, V] : Attributes)
    if (K == Key)
      return &V;
  return nullptr;
}

const Element *Element::findChild(const std::string &ChildName) const {
  for (const Element &C : Children)
    if (C.Name == ChildName)
      return &C;
  return nullptr;
}

std::vector<const Element *>
Element::children(const std::string &ChildName) const {
  std::vector<const Element *> Out;
  for (const Element &C : Children)
    if (C.Name == ChildName)
      Out.push_back(&C);
  return Out;
}

ErrorOr<Element> psg::xml::parseDocument(const std::string &Xml) {
  return XmlParser(Xml).parse();
}

//===----------------------------------------------------------------------===//
// SBML import.
//===----------------------------------------------------------------------===//

namespace {
/// Extracts the kinetic constant of a reaction element: a local (or
/// global-style) parameter named "k", or a psg:rate attribute.
ErrorOr<double> kineticConstantOf(const Element &ReactionEl) {
  if (const std::string *Rate = ReactionEl.findAttribute("psg:rate")) {
    double K = 0;
    if (!parseDouble(*Rate, K))
      return ErrorOr<double>::failure("bad psg:rate value '" + *Rate + "'");
    return K;
  }
  const Element *Law = ReactionEl.findChild("kineticLaw");
  if (!Law)
    return ErrorOr<double>::failure("reaction without kineticLaw");
  for (const char *ListName : {"listOfLocalParameters", "listOfParameters"})
    if (const Element *List = Law->findChild(ListName))
      for (const char *ParamName : {"localParameter", "parameter"})
        for (const Element *P : List->children(ParamName))
          if (const std::string *Id = P->findAttribute("id");
              Id && *Id == "k") {
            const std::string *Value = P->findAttribute("value");
            double K = 0;
            if (!Value || !parseDouble(*Value, K))
              return ErrorOr<double>::failure(
                  "parameter 'k' without a numeric value");
            return K;
          }
  return ErrorOr<double>::failure(
      "kineticLaw without a parameter named 'k'");
}

Status addSide(const ReactionNetwork &Net, const Element *List,
               const char *RefName,
               std::vector<std::pair<unsigned, unsigned>> &Side) {
  if (!List)
    return Status::success();
  for (const Element *Ref : List->children(RefName)) {
    const std::string *SpeciesId = Ref->findAttribute("species");
    if (!SpeciesId)
      return Status::failure("speciesReference without species attribute");
    auto Index = Net.findSpecies(*SpeciesId);
    if (!Index)
      return Status::failure(Index.message());
    unsigned Stoich = 1;
    if (const std::string *S = Ref->findAttribute("stoichiometry")) {
      double Value = 0;
      if (!parseDouble(*S, Value) || Value <= 0 ||
          Value != static_cast<double>(static_cast<unsigned>(Value)))
        return Status::failure("non-positive-integer stoichiometry '" + *S +
                               "'");
      Stoich = static_cast<unsigned>(Value);
    }
    bool Merged = false;
    for (auto &[Idx, Coef] : Side)
      if (Idx == *Index) {
        Coef += Stoich;
        Merged = true;
        break;
      }
    if (!Merged)
      Side.emplace_back(*Index, Stoich);
  }
  return Status::success();
}
} // namespace

ErrorOr<ReactionNetwork> psg::parseSbml(const std::string &Xml) {
  ErrorOr<Element> Doc = xml::parseDocument(Xml);
  if (!Doc)
    return ErrorOr<ReactionNetwork>::failure(Doc.message());
  if (Doc->Name != "sbml")
    return ErrorOr<ReactionNetwork>::failure("root element is not <sbml>");
  const Element *ModelEl = Doc->findChild("model");
  if (!ModelEl)
    return ErrorOr<ReactionNetwork>::failure("missing <model>");

  ReactionNetwork Net;
  if (const std::string *Id = ModelEl->findAttribute("id"))
    Net.setName(*Id);

  if (const Element *SpeciesList = ModelEl->findChild("listOfSpecies"))
    for (const Element *S : SpeciesList->children("species")) {
      const std::string *Id = S->findAttribute("id");
      if (!Id)
        return ErrorOr<ReactionNetwork>::failure("species without id");
      double Initial = 0.0;
      for (const char *Attr : {"initialConcentration", "initialAmount"})
        if (const std::string *V = S->findAttribute(Attr)) {
          if (!parseDouble(*V, Initial))
            return ErrorOr<ReactionNetwork>::failure(
                "bad initial value for species '" + *Id + "'");
          break;
        }
      if (Net.findSpecies(*Id))
        return ErrorOr<ReactionNetwork>::failure("duplicate species '" +
                                                 *Id + "'");
      Net.addSpecies(*Id, Initial);
    }

  if (const Element *ReactionList = ModelEl->findChild("listOfReactions"))
    for (const Element *R : ReactionList->children("reaction")) {
      if (const std::string *Rev = R->findAttribute("reversible");
          Rev && *Rev == "true")
        return ErrorOr<ReactionNetwork>::failure(
            "reversible reactions are not supported; split them");
      Reaction Rx;
      ErrorOr<double> K = kineticConstantOf(*R);
      if (!K)
        return ErrorOr<ReactionNetwork>::failure(K.message());
      Rx.RateConstant = *K;
      if (Status S = addSide(Net, R->findChild("listOfReactants"),
                             "speciesReference", Rx.Reactants);
          !S)
        return ErrorOr<ReactionNetwork>::failure(S.message());
      if (Status S = addSide(Net, R->findChild("listOfProducts"),
                             "speciesReference", Rx.Products);
          !S)
        return ErrorOr<ReactionNetwork>::failure(S.message());
      Net.addReaction(std::move(Rx));
    }

  if (Status S = Net.validate(); !S)
    return ErrorOr<ReactionNetwork>::failure(S.message());
  return Net;
}

ErrorOr<ReactionNetwork> psg::loadSbmlFile(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File)
    return ErrorOr<ReactionNetwork>::failure("cannot open '" + Path + "'");
  std::string Xml;
  char Buffer[4096];
  size_t Read;
  while ((Read = std::fread(Buffer, 1, sizeof(Buffer), File)) > 0)
    Xml.append(Buffer, Read);
  std::fclose(File);
  return parseSbml(Xml);
}

//===----------------------------------------------------------------------===//
// SBML export.
//===----------------------------------------------------------------------===//

namespace {
std::string escapeXml(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out += C;
    }
  }
  return Out;
}

void writeSide(std::string &Xml, const ReactionNetwork &Net,
               const std::vector<std::pair<unsigned, unsigned>> &Side,
               const char *ListName) {
  if (Side.empty())
    return;
  Xml += formatString("        <%s>\n", ListName);
  for (const auto &[Idx, Coef] : Side)
    Xml += formatString(
        "          <speciesReference species=\"%s\" stoichiometry=\"%u\" "
        "constant=\"true\"/>\n",
        escapeXml(Net.species(Idx).Name).c_str(), Coef);
  Xml += formatString("        </%s>\n", ListName);
}
} // namespace

ErrorOr<std::string> psg::writeSbml(const ReactionNetwork &Net) {
  for (const Reaction &Rx : Net.allReactions())
    if (Rx.Kind != KineticsKind::MassAction)
      return ErrorOr<std::string>::failure(
          "SBML export supports mass-action reactions only");

  std::string Xml;
  Xml += "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  Xml += "<sbml xmlns=\"http://www.sbml.org/sbml/level3/version1/core\" "
         "level=\"3\" version=\"1\">\n";
  Xml += formatString("  <model id=\"%s\">\n",
                      escapeXml(Net.name()).c_str());
  Xml += "    <listOfCompartments>\n"
         "      <compartment id=\"cell\" size=\"1\" constant=\"true\"/>\n"
         "    </listOfCompartments>\n";
  Xml += "    <listOfSpecies>\n";
  for (const Species &S : Net.allSpecies())
    Xml += formatString(
        "      <species id=\"%s\" compartment=\"cell\" "
        "initialConcentration=\"%.17g\" hasOnlySubstanceUnits=\"false\" "
        "boundaryCondition=\"false\" constant=\"false\"/>\n",
        escapeXml(S.Name).c_str(), S.InitialConcentration);
  Xml += "    </listOfSpecies>\n";
  Xml += "    <listOfReactions>\n";
  for (size_t R = 0; R < Net.numReactions(); ++R) {
    const Reaction &Rx = Net.reaction(R);
    Xml += formatString(
        "      <reaction id=\"r%zu\" reversible=\"false\">\n", R);
    writeSide(Xml, Net, Rx.Reactants, "listOfReactants");
    writeSide(Xml, Net, Rx.Products, "listOfProducts");
    Xml += "        <kineticLaw>\n"
           "          <listOfLocalParameters>\n";
    Xml += formatString(
        "            <localParameter id=\"k\" value=\"%.17g\"/>\n",
        Rx.RateConstant);
    Xml += "          </listOfLocalParameters>\n"
           "        </kineticLaw>\n"
           "      </reaction>\n";
  }
  Xml += "    </listOfReactions>\n  </model>\n</sbml>\n";
  return Xml;
}

Status psg::saveSbmlFile(const ReactionNetwork &Net,
                         const std::string &Path) {
  ErrorOr<std::string> Xml = writeSbml(Net);
  if (!Xml)
    return Xml.status();
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return Status::failure("cannot open '" + Path + "' for writing");
  const size_t Written = std::fwrite(Xml->data(), 1, Xml->size(), File);
  std::fclose(File);
  if (Written != Xml->size())
    return Status::failure("short write to '" + Path + "'");
  return Status::success();
}
