//===- rbm/Conservation.h - Conservation-law detection ----------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Detection of linear conservation laws of a reaction network: vectors
/// w with w^T (B - A)^T = 0, i.e. the left null space of the net
/// stoichiometric matrix. Every such w gives an invariant
/// sum_j w_j X_j(t) = const, which the test suite uses as a solver
/// correctness oracle and modelers use to spot conserved moieties.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_RBM_CONSERVATION_H
#define PSG_RBM_CONSERVATION_H

#include "rbm/ReactionNetwork.h"

namespace psg {

/// A basis of conservation laws; each row has one weight per species.
struct ConservationLaws {
  std::vector<std::vector<double>> Basis;

  size_t count() const { return Basis.size(); }

  /// Value of law \p Law on state \p Y.
  double evaluate(size_t Law, const double *Y) const {
    double Sum = 0.0;
    for (size_t J = 0; J < Basis[Law].size(); ++J)
      Sum += Basis[Law][J] * Y[J];
    return Sum;
  }
};

/// Computes a basis of the left null space of the net stoichiometric
/// matrix by Gaussian elimination with partial pivoting. Entries smaller
/// than \p Tolerance (relative to the largest entry of the vector) are
/// snapped to zero.
ConservationLaws findConservationLaws(const ReactionNetwork &Net,
                                      double Tolerance = 1e-9);

} // namespace psg

#endif // PSG_RBM_CONSERVATION_H
