//===- rbm/Conservation.cpp -----------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "rbm/Conservation.h"

#include <cmath>

using namespace psg;

ConservationLaws psg::findConservationLaws(const ReactionNetwork &Net,
                                           double Tolerance) {
  const size_t N = Net.numSpecies();
  const size_t M = Net.numReactions();

  // Net stoichiometry S = (B - A)^T is N x M; we reduce S^T (M x N) to
  // row echelon form while tracking which species columns are pivots;
  // the free columns span the left null space of S.
  //
  // Equivalently: find w with S^T w = 0 where S^T is M x N.
  Matrix St(M, N);
  for (size_t R = 0; R < M; ++R) {
    const Reaction &Rx = Net.reaction(R);
    for (const auto &[Idx, Coef] : Rx.Reactants)
      St(R, Idx) -= static_cast<double>(Coef);
    for (const auto &[Idx, Coef] : Rx.Products)
      St(R, Idx) += static_cast<double>(Coef);
  }

  // Gaussian elimination on St (M x N), partial pivoting by column.
  std::vector<size_t> PivotColumn;
  size_t Row = 0;
  for (size_t Col = 0; Col < N && Row < M; ++Col) {
    size_t Best = Row;
    double BestMag = std::abs(St(Row, Col));
    for (size_t R = Row + 1; R < M; ++R)
      if (std::abs(St(R, Col)) > BestMag) {
        BestMag = std::abs(St(R, Col));
        Best = R;
      }
    if (BestMag < 1e-12)
      continue; // Free column.
    if (Best != Row)
      for (size_t C = 0; C < N; ++C)
        std::swap(St(Row, C), St(Best, C));
    const double Pivot = St(Row, Col);
    for (size_t R = 0; R < M; ++R) {
      if (R == Row || St(R, Col) == 0.0)
        continue;
      const double Factor = St(R, Col) / Pivot;
      for (size_t C = 0; C < N; ++C)
        St(R, C) -= Factor * St(Row, C);
    }
    PivotColumn.push_back(Col);
    ++Row;
  }

  // Back-substitute one basis vector per free column.
  ConservationLaws Laws;
  std::vector<bool> IsPivot(N, false);
  for (size_t Col : PivotColumn)
    IsPivot[Col] = true;
  for (size_t Free = 0; Free < N; ++Free) {
    if (IsPivot[Free])
      continue;
    std::vector<double> W(N, 0.0);
    W[Free] = 1.0;
    // Solve for the pivot variables: row r gives
    // St(r, pivot_r) * w_pivot + St(r, Free) * 1 = 0.
    for (size_t R = 0; R < PivotColumn.size(); ++R) {
      const size_t PC = PivotColumn[R];
      W[PC] = -St(R, Free) / St(R, PC);
    }
    // Snap numerical noise and normalize the largest weight to 1.
    double MaxMag = 0.0;
    for (double V : W)
      MaxMag = std::max(MaxMag, std::abs(V));
    if (MaxMag == 0.0)
      continue;
    for (double &V : W) {
      V /= MaxMag;
      if (std::abs(V) < Tolerance)
        V = 0.0;
    }
    Laws.Basis.push_back(std::move(W));
  }
  return Laws;
}
