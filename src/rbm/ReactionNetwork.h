//===- rbm/ReactionNetwork.h - Reaction-based models ------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reaction-based models (RBMs): N molecular species and M reactions with
/// stoichiometry and kinetics. This is the modeling formalism the engine
/// consumes; RBMs compile to ODE systems via rbm/MassAction.h.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_RBM_REACTIONNETWORK_H
#define PSG_RBM_REACTIONNETWORK_H

#include "linalg/Matrix.h"
#include "support/Error.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace psg {

/// A molecular species with its initial concentration.
struct Species {
  std::string Name;
  double InitialConcentration = 0.0;
};

/// Rate law attached to a reaction.
enum class KineticsKind {
  MassAction,      ///< rate = k * prod_j X_j^a_ij
  MichaelisMenten, ///< rate = k * [S/(Km + S)] * (other reactant factors)
  Hill,            ///< rate = k * [S^n/(K^n + S^n)] * (other factors)
  HillRepression   ///< rate = k * [K^n/(K^n + S^n)] * (other factors)
};

/// One biochemical reaction: reactants -> products with a rate law.
///
/// Reactants/Products map species index -> stoichiometric coefficient.
/// For Michaelis-Menten and Hill kinetics the *first* reactant plays the
/// substrate role in the saturating factor.
struct Reaction {
  std::vector<std::pair<unsigned, unsigned>> Reactants;
  std::vector<std::pair<unsigned, unsigned>> Products;
  double RateConstant = 0.0; ///< k (mass action), Vmax-like for MM/Hill.
  KineticsKind Kind = KineticsKind::MassAction;
  double Km = 0.0;    ///< Michaelis constant (MM only).
  double HillK = 0.0; ///< Half-saturation constant (Hill only).
  double HillN = 1.0; ///< Hill exponent (Hill only).

  /// Total number of reactant molecules (the reaction order for mass
  /// action).
  unsigned order() const {
    unsigned Sum = 0;
    for (const auto &[Idx, Coef] : Reactants)
      Sum += Coef;
    return Sum;
  }
};

/// An RBM: species, reactions, and a name.
class ReactionNetwork {
public:
  ReactionNetwork() = default;
  explicit ReactionNetwork(std::string Name) : NetworkName(std::move(Name)) {}

  const std::string &name() const { return NetworkName; }
  void setName(std::string Name) { NetworkName = std::move(Name); }

  /// Registers a species; names must be unique. Returns its index.
  unsigned addSpecies(const std::string &Name, double Initial);

  /// Returns the index of \p Name, or fails if unknown.
  ErrorOr<unsigned> findSpecies(const std::string &Name) const;

  /// Appends a reaction (indices must be in range; asserted).
  void addReaction(Reaction R);

  size_t numSpecies() const { return SpeciesList.size(); }
  size_t numReactions() const { return Reactions.size(); }

  const Species &species(size_t I) const { return SpeciesList[I]; }
  Species &species(size_t I) { return SpeciesList[I]; }
  const Reaction &reaction(size_t I) const { return Reactions[I]; }
  Reaction &reaction(size_t I) { return Reactions[I]; }
  const std::vector<Species> &allSpecies() const { return SpeciesList; }
  const std::vector<Reaction> &allReactions() const { return Reactions; }

  /// Initial concentrations in species order.
  std::vector<double> initialState() const;

  /// Dense reactant stoichiometric matrix A (M x N).
  Matrix reactantMatrix() const;

  /// Dense product stoichiometric matrix B (M x N).
  Matrix productMatrix() const;

  /// Checks structural consistency: nonempty, indices in range,
  /// nonnegative constants, positive MM/Hill parameters.
  Status validate() const;

private:
  std::string NetworkName = "rbm";
  std::vector<Species> SpeciesList;
  std::vector<Reaction> Reactions;
  std::unordered_map<std::string, unsigned> SpeciesIndex;
};

} // namespace psg

#endif // PSG_RBM_REACTIONNETWORK_H
