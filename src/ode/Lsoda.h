//===- ode/Lsoda.h - Adams/BDF auto-switching solver ------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An LSODA-style solver: starts with Adams PECE and switches to/from BDF
/// as the problem enters and leaves stiff regimes. The switching heuristic
/// is simplified with respect to ODEPACK (see DESIGN.md): the dominant
/// eigenvalue of the Jacobian is probed periodically, and the method is
/// switched when the current step is stability- rather than accuracy-
/// limited (Adams -> BDF) or when the explicit method would no longer be
/// limited (BDF -> Adams).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_LSODA_H
#define PSG_ODE_LSODA_H

#include "ode/Multistep.h"
#include "ode/OdeSolver.h"

namespace psg {

/// LSODA-style auto-switching multistep solver ("lsoda").
class LsodaSolver : public OdeSolver {
public:
  std::string name() const override { return "lsoda"; }
  bool isImplicit() const override { return true; }

  IntegrationResult integrate(const OdeSystem &Sys, double T0, double TEnd,
                              std::vector<double> &Y,
                              const SolverOptions &Opts,
                              StepObserver *Observer = nullptr) override;

  /// Steps between stiffness probes (tunable for tests/ablations).
  unsigned ProbeInterval = 20;

private:
  MultistepDriver Driver; ///< History/scratch reused across integrations.
};

} // namespace psg

#endif // PSG_ODE_LSODA_H
