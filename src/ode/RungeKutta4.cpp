//===- ode/RungeKutta4.cpp ------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/RungeKutta4.h"

#include "linalg/VectorOps.h"
#include "ode/SolverWorkspace.h"

#include <cmath>

using namespace psg;

/// Per-solver working storage, reused across integrate() calls. Every
/// vector is fully written before it is read within a step, so stale
/// contents from a previous simulation cannot leak into the numerics.
struct RungeKutta4Solver::Workspace {
  size_t N = 0;
  std::vector<double> K1, K2, K3, K4, YStage, YPrev;

  /// Sizes the buffers for \p Dim; returns true when already sized.
  bool prepare(size_t Dim) {
    if (Dim == N)
      return true;
    N = Dim;
    for (std::vector<double> *V : {&K1, &K2, &K3, &K4, &YStage, &YPrev})
      V->assign(Dim, 0.0);
    return false;
  }
};

RungeKutta4Solver::RungeKutta4Solver() : Ws(std::make_unique<Workspace>()) {}
RungeKutta4Solver::~RungeKutta4Solver() = default;

IntegrationResult RungeKutta4Solver::integrate(const OdeSystem &Sys, double T0,
                                               double TEnd,
                                               std::vector<double> &Y,
                                               const SolverOptions &Opts,
                                               StepObserver *Observer) {
  const size_t N = Sys.dimension();
  assert(Y.size() == N && "state size mismatch");
  IntegrationResult Result;
  Result.FinalTime = T0;
  if (T0 == TEnd)
    return Result;

  const double Direction = TEnd > T0 ? 1.0 : -1.0;
  double H = Opts.InitialStep > 0
                 ? Opts.InitialStep
                 : std::abs(TEnd - T0) / static_cast<double>(Opts.MaxSteps);
  H *= Direction;

  if (Ws->prepare(N))
    noteSolverWorkspaceReuse();
  std::vector<double> &K1 = Ws->K1, &K2 = Ws->K2, &K3 = Ws->K3, &K4 = Ws->K4,
                      &YStage = Ws->YStage, &YPrev = Ws->YPrev;
  double T = T0;
  while ((TEnd - T) * Direction > 0) {
    // The automatic step divides the span into exactly MaxSteps pieces, so
    // allow one extra attempt for the final (rounding-truncated) segment.
    if (Result.Stats.Steps > Opts.MaxSteps) {
      Result.Status = IntegrationStatus::MaxStepsExceeded;
      Result.FinalTime = T;
      return Result;
    }
    double Step = H;
    if ((T + Step - TEnd) * Direction > 0)
      Step = TEnd - T;

    YPrev = Y;
    Sys.rhs(T, Y.data(), K1.data());
    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + 0.5 * Step * K1[I];
    Sys.rhs(T + 0.5 * Step, YStage.data(), K2.data());
    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + 0.5 * Step * K2[I];
    Sys.rhs(T + 0.5 * Step, YStage.data(), K3.data());
    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + Step * K3[I];
    Sys.rhs(T + Step, YStage.data(), K4.data());
    for (size_t I = 0; I < N; ++I)
      Y[I] += Step / 6.0 * (K1[I] + 2.0 * K2[I] + 2.0 * K3[I] + K4[I]);
    Result.Stats.RhsEvaluations += 4;
    ++Result.Stats.Steps;
    ++Result.Stats.AcceptedSteps;

    const double TNew = T + Step;
    if (!allFinite(Y)) {
      Result.Status = IntegrationStatus::NonFiniteState;
      Result.FinalTime = T;
      Y = YPrev;
      return Result;
    }
    if (Observer) {
      // K4 approximates f at the step end closely enough for sampling.
      HermiteInterpolant Interp(T, YPrev.data(), K1.data(), TNew, Y.data(),
                                K4.data(), N);
      Observer->onStep(Interp);
    }
    T = TNew;
    Result.LastStepSize = Step;
  }
  Result.FinalTime = TEnd;
  return Result;
}
