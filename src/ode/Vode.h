//===- ode/Vode.h - Start-time method-choice solver -------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A VODE-style solver: the method family (Adams or BDF) is chosen once at
/// the start of the integration from a stiffness heuristic on the initial
/// Jacobian, and kept for the whole run.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_VODE_H
#define PSG_ODE_VODE_H

#include "linalg/Matrix.h"
#include "ode/Multistep.h"
#include "ode/OdeSolver.h"

namespace psg {

/// VODE-style fixed-choice multistep solver ("vode").
class VodeSolver : public OdeSolver {
public:
  std::string name() const override { return "vode"; }
  bool isImplicit() const override { return true; }

  IntegrationResult integrate(const OdeSystem &Sys, double T0, double TEnd,
                              std::vector<double> &Y,
                              const SolverOptions &Opts,
                              StepObserver *Observer = nullptr) override;

  /// Stiffness threshold on rho(J) * (TEnd - T0); above it, BDF is chosen.
  double StiffnessThreshold = 500.0;

private:
  // Probe scratch and the multistep core, reused across integrations.
  std::vector<double> F0;
  Matrix J;
  MultistepDriver Driver;
};

} // namespace psg

#endif // PSG_ODE_VODE_H
