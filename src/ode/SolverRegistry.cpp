//===- ode/SolverRegistry.cpp ---------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/SolverRegistry.h"

#include "ode/Dopri5.h"
#include "ode/Lsoda.h"
#include "ode/Multistep.h"
#include "ode/Radau5.h"
#include "ode/Rkf45.h"
#include "ode/RungeKutta4.h"
#include "ode/Vode.h"

using namespace psg;

ErrorOr<std::unique_ptr<OdeSolver>>
psg::createSolver(const std::string &Name) {
  std::unique_ptr<OdeSolver> Solver;
  if (Name == "rk4")
    Solver = std::make_unique<RungeKutta4Solver>();
  else if (Name == "rkf45")
    Solver = std::make_unique<Rkf45Solver>();
  else if (Name == "dopri5")
    Solver = std::make_unique<Dopri5Solver>();
  else if (Name == "radau5")
    Solver = std::make_unique<Radau5Solver>();
  else if (Name == "adams")
    Solver = std::make_unique<AdamsSolver>();
  else if (Name == "bdf")
    Solver = std::make_unique<BdfSolver>();
  else if (Name == "lsoda")
    Solver = std::make_unique<LsodaSolver>();
  else if (Name == "vode")
    Solver = std::make_unique<VodeSolver>();
  else
    return ErrorOr<std::unique_ptr<OdeSolver>>::failure(
        "unknown solver '" + Name + "'");
  return Solver;
}

std::vector<std::string> psg::solverNames() {
  return {"rk4",    "rkf45", "dopri5", "radau5",
          "adams",  "bdf",   "lsoda",  "vode"};
}
