//===- ode/SolverRegistry.cpp ---------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/SolverRegistry.h"

#include "ode/Dopri5.h"
#include "ode/Lsoda.h"
#include "ode/Multistep.h"
#include "ode/Radau5.h"
#include "ode/Rkf45.h"
#include "ode/RungeKutta4.h"
#include "ode/Vode.h"
#include "support/Metrics.h"
#include "support/Timer.h"
#include "support/Trace.h"

using namespace psg;

namespace {
/// Transparent decorator metering every integrate() call into the
/// process-wide registry under "psg.ode.<name>.*". Registry lookups
/// happen once at construction; the per-call cost is relaxed atomics
/// plus one wall-clock read pair.
class MeteredSolver final : public OdeSolver {
public:
  explicit MeteredSolver(std::unique_ptr<OdeSolver> Wrapped)
      : Inner(std::move(Wrapped)), SpanName("ode.integrate." + Inner->name()) {
    const std::string Prefix = "psg.ode." + Inner->name();
    MetricsRegistry &M = metrics();
    Integrations = &M.counter(Prefix + ".integrations");
    AcceptedSteps = &M.counter(Prefix + ".accepted_steps");
    RejectedSteps = &M.counter(Prefix + ".rejected_steps");
    RhsEvaluations = &M.counter(Prefix + ".rhs_evaluations");
    JacobianEvaluations = &M.counter(Prefix + ".jacobian_evaluations");
    Failures = &M.counter(Prefix + ".failures");
    StiffnessDetections = &M.counter(Prefix + ".stiffness_detections");
    MethodSwitches = &M.counter(Prefix + ".method_switches");
    WallSeconds = &M.histogram(Prefix + ".integrate_wall_s");
  }

  std::string name() const override { return Inner->name(); }
  bool isImplicit() const override { return Inner->isImplicit(); }

  IntegrationResult integrate(const OdeSystem &Sys, double T0, double TEnd,
                              std::vector<double> &Y,
                              const SolverOptions &Opts,
                              StepObserver *Observer) override {
    TraceSpan Span(SpanName, "ode");
    WallTimer Timer;
    IntegrationResult Result =
        Inner->integrate(Sys, T0, TEnd, Y, Opts, Observer);
    WallSeconds->record(Timer.seconds());
    Integrations->add();
    AcceptedSteps->add(Result.Stats.AcceptedSteps);
    RejectedSteps->add(Result.Stats.RejectedSteps);
    RhsEvaluations->add(Result.Stats.RhsEvaluations);
    JacobianEvaluations->add(Result.Stats.JacobianEvaluations);
    if (Result.Stats.SolverSwitches)
      MethodSwitches->add(Result.Stats.SolverSwitches);
    if (Result.Status == IntegrationStatus::StiffnessDetected)
      StiffnessDetections->add();
    if (!Result.ok())
      Failures->add();
    return Result;
  }

private:
  std::unique_ptr<OdeSolver> Inner;
  std::string SpanName;
  Counter *Integrations = nullptr;
  Counter *AcceptedSteps = nullptr;
  Counter *RejectedSteps = nullptr;
  Counter *RhsEvaluations = nullptr;
  Counter *JacobianEvaluations = nullptr;
  Counter *Failures = nullptr;
  Counter *StiffnessDetections = nullptr;
  Counter *MethodSwitches = nullptr;
  Histogram *WallSeconds = nullptr;
};
} // namespace

ErrorOr<std::unique_ptr<OdeSolver>>
psg::createSolver(const std::string &Name) {
  std::unique_ptr<OdeSolver> Solver;
  if (Name == "rk4")
    Solver = std::make_unique<RungeKutta4Solver>();
  else if (Name == "rkf45")
    Solver = std::make_unique<Rkf45Solver>();
  else if (Name == "dopri5")
    Solver = std::make_unique<Dopri5Solver>();
  else if (Name == "radau5")
    Solver = std::make_unique<Radau5Solver>();
  else if (Name == "adams")
    Solver = std::make_unique<AdamsSolver>();
  else if (Name == "bdf")
    Solver = std::make_unique<BdfSolver>();
  else if (Name == "lsoda")
    Solver = std::make_unique<LsodaSolver>();
  else if (Name == "vode")
    Solver = std::make_unique<VodeSolver>();
  else
    return ErrorOr<std::unique_ptr<OdeSolver>>::failure(
        "unknown solver '" + Name + "'");
  return std::unique_ptr<OdeSolver>(
      std::make_unique<MeteredSolver>(std::move(Solver)));
}

std::vector<std::string> psg::solverNames() {
  return {"rk4",    "rkf45", "dopri5", "radau5",
          "adams",  "bdf",   "lsoda",  "vode"};
}
