//===- ode/Interpolant.cpp ------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/Interpolant.h"

#include <cassert>

using namespace psg;

StepInterpolant::~StepInterpolant() = default;
StepObserver::~StepObserver() = default;

void HermiteInterpolant::evaluate(double T, double *YOut) const {
  const double H = T1 - T0;
  assert(H != 0.0 && "degenerate Hermite interval");
  const double S = (T - T0) / H;
  // Hermite basis in terms of s and (1 - s).
  const double S2 = S * S;
  const double H00 = (1.0 + 2.0 * S) * (1.0 - S) * (1.0 - S);
  const double H10 = S * (1.0 - S) * (1.0 - S);
  const double H01 = S2 * (3.0 - 2.0 * S);
  const double H11 = S2 * (S - 1.0);
  for (size_t I = 0; I < N; ++I)
    YOut[I] = H00 * Y0[I] + H * H10 * F0[I] + H01 * Y1[I] + H * H11 * F1[I];
}
