//===- ode/Vode.cpp -------------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/Vode.h"

#include "linalg/Eigen.h"
#include "ode/Multistep.h"

#include <cmath>

using namespace psg;

IntegrationResult VodeSolver::integrate(const OdeSystem &Sys, double T0,
                                        double TEnd, std::vector<double> &Y,
                                        const SolverOptions &Opts,
                                        StepObserver *Observer) {
  const size_t N = Sys.dimension();
  assert(Y.size() == N && "state size mismatch");
  IntegrationResult Result;
  Result.FinalTime = T0;
  if (T0 == TEnd)
    return Result;

  // Start-time heuristic: dominant eigenvalue of J times the horizon.
  F0.assign(N, 0.0);
  Sys.rhs(T0, Y.data(), F0.data());
  ++Result.Stats.RhsEvaluations;
  Result.Stats.RhsEvaluations += Sys.jacobian(T0, Y.data(), F0.data(), J);
  ++Result.Stats.JacobianEvaluations;
  const double Rho = powerIterationSpectralRadius(J);
  const MultistepMethod Method = Rho * std::abs(TEnd - T0) >
                                         StiffnessThreshold
                                     ? MultistepMethod::Bdf
                                     : MultistepMethod::Adams;

  IntegrationResult Inner =
      runMultistep(Driver, Sys, T0, TEnd, Y, Opts, Method, Observer);
  Inner.Stats.merge(Result.Stats);
  Result = Inner;
  return Result;
}
