//===- ode/Rkf45.cpp ------------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/Rkf45.h"

#include "linalg/VectorOps.h"
#include "ode/SolverWorkspace.h"
#include "ode/StepControl.h"

#include <cmath>

using namespace psg;

namespace {
// Fehlberg 4(5) tableau.
constexpr double C2 = 1.0 / 4, C3 = 3.0 / 8, C4 = 12.0 / 13, C6 = 1.0 / 2;
constexpr double A21 = 1.0 / 4;
constexpr double A31 = 3.0 / 32, A32 = 9.0 / 32;
constexpr double A41 = 1932.0 / 2197, A42 = -7200.0 / 2197,
                 A43 = 7296.0 / 2197;
constexpr double A51 = 439.0 / 216, A52 = -8.0, A53 = 3680.0 / 513,
                 A54 = -845.0 / 4104;
constexpr double A61 = -8.0 / 27, A62 = 2.0, A63 = -3544.0 / 2565,
                 A64 = 1859.0 / 4104, A65 = -11.0 / 40;
// 5th-order weights.
constexpr double B1 = 16.0 / 135, B3 = 6656.0 / 12825, B4 = 28561.0 / 56430,
                 B5 = -9.0 / 50, B6 = 2.0 / 55;
// Error weights (5th minus 4th order).
constexpr double E1 = B1 - 25.0 / 216, E3 = B3 - 1408.0 / 2565,
                 E4 = B4 - 2197.0 / 4104, E5 = B5 + 1.0 / 5, E6 = B6;
} // namespace

/// Per-solver working storage, reused across integrate() calls. Every
/// vector is fully written before it is read within a step, so stale
/// contents from a previous simulation cannot leak into the numerics.
struct Rkf45Solver::Workspace {
  size_t N = 0;
  std::vector<double> K1, K2, K3, K4, K5, K6;
  std::vector<double> YStage, YNew, ErrVec, FNew;

  /// Sizes the buffers for \p Dim; returns true when already sized.
  bool prepare(size_t Dim) {
    if (Dim == N)
      return true;
    N = Dim;
    for (std::vector<double> *V :
         {&K1, &K2, &K3, &K4, &K5, &K6, &YStage, &YNew, &ErrVec, &FNew})
      V->assign(Dim, 0.0);
    return false;
  }
};

Rkf45Solver::Rkf45Solver() : Ws(std::make_unique<Workspace>()) {}
Rkf45Solver::~Rkf45Solver() = default;

IntegrationResult Rkf45Solver::integrate(const OdeSystem &Sys, double T0,
                                         double TEnd, std::vector<double> &Y,
                                         const SolverOptions &Opts,
                                         StepObserver *Observer) {
  const size_t N = Sys.dimension();
  assert(Y.size() == N && "state size mismatch");
  IntegrationResult Result;
  Result.FinalTime = T0;
  if (T0 == TEnd)
    return Result;
  const double Direction = TEnd > T0 ? 1.0 : -1.0;

  if (Ws->prepare(N))
    noteSolverWorkspaceReuse();
  std::vector<double> &K1 = Ws->K1, &K2 = Ws->K2, &K3 = Ws->K3, &K4 = Ws->K4,
                      &K5 = Ws->K5, &K6 = Ws->K6;
  std::vector<double> &YStage = Ws->YStage, &YNew = Ws->YNew,
                      &ErrVec = Ws->ErrVec, &FNew = Ws->FNew;

  Sys.rhs(T0, Y.data(), K1.data());
  ++Result.Stats.RhsEvaluations;
  double H = selectInitialStep(Sys, T0, Y.data(), K1.data(), TEnd, Opts,
                               /*Order=*/4, Result.Stats.RhsEvaluations);
  const double MaxStep =
      Opts.MaxStep > 0 ? Opts.MaxStep : std::abs(TEnd - T0);
  PiController Controller(/*Order=*/5, Opts.Safety, Opts.MinScale,
                          Opts.MaxScale);

  double T = T0;
  bool FreshK1 = true;
  while ((TEnd - T) * Direction > 0) {
    if (Result.Stats.Steps >= Opts.MaxSteps) {
      Result.Status = IntegrationStatus::MaxStepsExceeded;
      Result.FinalTime = T;
      Result.LastStepSize = H;
      return Result;
    }
    H = std::min(H, MaxStep);
    double Step = Direction * H;
    if ((T + Step - TEnd) * Direction > 0)
      Step = TEnd - T;
    const double MinMagnitude = 1e-14 * std::max(1.0, std::abs(T));
    if (std::abs(Step) < MinMagnitude) {
      Result.Status = IntegrationStatus::StepSizeTooSmall;
      Result.FinalTime = T;
      return Result;
    }

    if (!FreshK1) {
      Sys.rhs(T, Y.data(), K1.data());
      ++Result.Stats.RhsEvaluations;
      FreshK1 = true;
    }
    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + Step * A21 * K1[I];
    Sys.rhs(T + C2 * Step, YStage.data(), K2.data());
    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + Step * (A31 * K1[I] + A32 * K2[I]);
    Sys.rhs(T + C3 * Step, YStage.data(), K3.data());
    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + Step * (A41 * K1[I] + A42 * K2[I] + A43 * K3[I]);
    Sys.rhs(T + C4 * Step, YStage.data(), K4.data());
    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + Step * (A51 * K1[I] + A52 * K2[I] + A53 * K3[I] +
                                 A54 * K4[I]);
    Sys.rhs(T + Step, YStage.data(), K5.data());
    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + Step * (A61 * K1[I] + A62 * K2[I] + A63 * K3[I] +
                                 A64 * K4[I] + A65 * K5[I]);
    Sys.rhs(T + C6 * Step, YStage.data(), K6.data());
    Result.Stats.RhsEvaluations += 5;
    ++Result.Stats.Steps;

    for (size_t I = 0; I < N; ++I) {
      YNew[I] = Y[I] + Step * (B1 * K1[I] + B3 * K3[I] + B4 * K4[I] +
                               B5 * K5[I] + B6 * K6[I]);
      ErrVec[I] = Step * (E1 * K1[I] + E3 * K3[I] + E4 * K4[I] + E5 * K5[I] +
                          E6 * K6[I]);
    }
    if (!allFinite(YNew)) {
      // Treat as a failed step: shrink hard and retry.
      ++Result.Stats.RejectedSteps;
      Controller.notifyRejected();
      H *= 0.1;
      if (H < MinMagnitude) {
        Result.Status = IntegrationStatus::NonFiniteState;
        Result.FinalTime = T;
        return Result;
      }
      FreshK1 = true;
      continue;
    }

    const double Err = weightedRmsNorm2(ErrVec.data(), Y.data(), YNew.data(),
                                        N, Opts.AbsTol, Opts.RelTol);
    const double Scale = Controller.scaleFactor(Err);
    if (Err > 1.0) {
      ++Result.Stats.RejectedSteps;
      Controller.notifyRejected();
      H = std::abs(Step) * Scale;
      continue;
    }

    const double TNew = T + Step;
    if (Observer) {
      Sys.rhs(TNew, YNew.data(), FNew.data());
      ++Result.Stats.RhsEvaluations;
      HermiteInterpolant Interp(T, Y.data(), K1.data(), TNew, YNew.data(),
                                FNew.data(), N);
      Observer->onStep(Interp);
      K1 = FNew; // Reuse the evaluation as the next step's first stage.
      FreshK1 = true;
    } else {
      FreshK1 = false;
    }
    Y = YNew;
    T = TNew;
    ++Result.Stats.AcceptedSteps;
    Result.LastStepSize = std::abs(Step);
    H = std::abs(Step) * Scale;
  }
  Result.FinalTime = TEnd;
  return Result;
}
