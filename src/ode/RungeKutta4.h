//===- ode/RungeKutta4.h - Classic fixed-step RK4 ---------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic fourth-order Runge-Kutta with a fixed step. Present as the
/// simplest comparator (libRoadRunner ships the same method) and as a
/// reference for convergence-order tests.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_RUNGEKUTTA4_H
#define PSG_ODE_RUNGEKUTTA4_H

#include "ode/OdeSolver.h"

#include <memory>

namespace psg {

/// Fixed-step classical RK4. The step comes from Opts.InitialStep; when 0,
/// the interval is divided into Opts.MaxSteps equal steps.
class RungeKutta4Solver : public OdeSolver {
public:
  RungeKutta4Solver();
  ~RungeKutta4Solver() override;

  std::string name() const override { return "rk4"; }

  IntegrationResult integrate(const OdeSystem &Sys, double T0, double TEnd,
                              std::vector<double> &Y,
                              const SolverOptions &Opts,
                              StepObserver *Observer = nullptr) override;

private:
  /// Stage vectors, reused across integrations.
  struct Workspace;
  std::unique_ptr<Workspace> Ws;
};

} // namespace psg

#endif // PSG_ODE_RUNGEKUTTA4_H
