//===- ode/Richardson.cpp -------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/Richardson.h"

#include "linalg/VectorOps.h"

#include <cmath>

using namespace psg;

namespace {

/// One fixed-step RK4 pass: \p StepsPerSegment uniform steps inside each
/// grid segment, recording the state at every segment boundary into
/// \p Rows (segment count rows, excluding the initial state). Returns
/// false when the state stops being finite.
bool rk4Pass(const OdeSystem &Sys, const std::vector<double> &Times,
             const std::vector<double> &Y0, uint64_t StepsPerSegment,
             std::vector<std::vector<double>> &Rows, uint64_t &RhsEvals) {
  const size_t N = Sys.dimension();
  std::vector<double> Y = Y0, K1(N), K2(N), K3(N), K4(N), YStage(N);
  Rows.clear();
  for (size_t Seg = 0; Seg + 1 < Times.size(); ++Seg) {
    const double H =
        (Times[Seg + 1] - Times[Seg]) / static_cast<double>(StepsPerSegment);
    double T = Times[Seg];
    for (uint64_t S = 0; S < StepsPerSegment; ++S) {
      Sys.rhs(T, Y.data(), K1.data());
      for (size_t I = 0; I < N; ++I)
        YStage[I] = Y[I] + 0.5 * H * K1[I];
      Sys.rhs(T + 0.5 * H, YStage.data(), K2.data());
      for (size_t I = 0; I < N; ++I)
        YStage[I] = Y[I] + 0.5 * H * K2[I];
      Sys.rhs(T + 0.5 * H, YStage.data(), K3.data());
      for (size_t I = 0; I < N; ++I)
        YStage[I] = Y[I] + H * K3[I];
      Sys.rhs(T + H, YStage.data(), K4.data());
      for (size_t I = 0; I < N; ++I)
        Y[I] += H / 6.0 * (K1[I] + 2.0 * K2[I] + 2.0 * K3[I] + K4[I]);
      RhsEvals += 4;
      T = Times[Seg] + static_cast<double>(S + 1) * H;
    }
    if (!allFinite(Y))
      return false;
    Rows.push_back(Y);
  }
  return true;
}

/// Mixed absolute/relative deviation between two row sets.
double maxDeviation(const std::vector<std::vector<double>> &A,
                    const std::vector<std::vector<double>> &B, double AbsTol,
                    double RelTol) {
  double Max = 0.0;
  for (size_t R = 0; R < A.size(); ++R)
    for (size_t I = 0; I < A[R].size(); ++I) {
      const double Scale =
          AbsTol + RelTol * std::max(std::abs(A[R][I]), std::abs(B[R][I]));
      Max = std::max(Max, std::abs(A[R][I] - B[R][I]) / Scale);
    }
  return Max;
}

} // namespace

RichardsonReference psg::richardsonReference(const OdeSystem &Sys, double T0,
                                             double TEnd,
                                             const std::vector<double> &Y0,
                                             const RichardsonOptions &Opts,
                                             const std::vector<double> *Grid) {
  assert(Y0.size() == Sys.dimension() && "state size mismatch");
  RichardsonReference Ref;

  std::vector<double> Times;
  if (Grid) {
    assert(Grid->size() >= 2 && Grid->front() == T0 && Grid->back() == TEnd &&
           "grid must span [T0, TEnd]");
    Times = *Grid;
  } else {
    Times = {T0, TEnd};
  }
  const uint64_t Segments = Times.size() - 1;

  if (T0 == TEnd) {
    Ref.FinalState = Y0;
    Ref.Converged = true;
    return Ref;
  }

  uint64_t Steps = std::max<uint64_t>(1, Opts.InitialSteps / Segments);
  std::vector<std::vector<double>> Coarse, Fine, Extrapolated, Previous;
  bool CoarseOk =
      rk4Pass(Sys, Times, Y0, Steps, Coarse, Ref.RhsEvaluations);
  bool HavePrevious = false;

  while (true) {
    bool FineOk =
        rk4Pass(Sys, Times, Y0, 2 * Steps, Fine, Ref.RhsEvaluations);
    if (CoarseOk && FineOk) {
      // Y* = Y_2N + (Y_2N - Y_N) / (2^4 - 1): the RK4 error term cancels.
      Extrapolated = Fine;
      for (size_t R = 0; R < Fine.size(); ++R)
        for (size_t I = 0; I < Fine[R].size(); ++I)
          Extrapolated[R][I] += (Fine[R][I] - Coarse[R][I]) / 15.0;
      if (HavePrevious) {
        Ref.ErrorEstimate =
            maxDeviation(Extrapolated, Previous, Opts.AbsTol, Opts.RelTol);
        if (Ref.ErrorEstimate <= 1.0) {
          Ref.Converged = true;
          break;
        }
      }
      Previous = Extrapolated;
      HavePrevious = true;
    } else {
      // Unstable or overflowing pass: nothing to extrapolate yet.
      HavePrevious = false;
    }
    if (2 * Steps * Segments >= Opts.MaxSteps)
      break; // Budget exhausted; report the finest extrapolant we have.
    Coarse = Fine;
    CoarseOk = FineOk;
    Steps *= 2;
  }

  Ref.StepsPerPass = 2 * Steps * Segments;
  if (Extrapolated.empty())
    return Ref; // Never produced a finite pass pair.

  Ref.FinalState = Extrapolated.back();
  Ref.Dynamics = Trajectory(Sys.dimension());
  if (Grid) {
    Ref.Dynamics.addSample(T0, Y0.data());
    for (size_t R = 0; R < Extrapolated.size(); ++R)
      Ref.Dynamics.addSample(Times[R + 1], Extrapolated[R].data());
  }
  return Ref;
}
