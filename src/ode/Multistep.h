//===- ode/Multistep.h - Adams and BDF multistep methods --------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Variable-order (1-5) multistep integration in the two ODEPACK families:
/// Adams-Bashforth-Moulton PECE for non-stiff problems and BDF with
/// simplified Newton for stiff ones. Both share a quasi-constant step-size
/// driver: history is kept at equal spacing and resampled through its
/// interpolating polynomial whenever the step changes (mathematically
/// equivalent to Nordsieck rescaling). The driver exposes step-at-a-time
/// control so the LSODA-style solver can switch families mid-run.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_MULTISTEP_H
#define PSG_ODE_MULTISTEP_H

#include "linalg/Lu.h"
#include "ode/OdeSolver.h"

#include <optional>

namespace psg {

/// Which multistep family a driver runs.
enum class MultistepMethod { Adams, Bdf };

/// Step-at-a-time multistep integrator core.
///
/// Usage: begin(), then advance() until done() or failure. The driver owns
/// the state vector; callers read it through time()/state().
class MultistepDriver {
public:
  static constexpr unsigned MaxOrder = 5;

  /// An unbound driver; call reset() before begin().
  MultistepDriver() = default;

  MultistepDriver(const OdeSystem &Sys, const SolverOptions &Opts,
                  MultistepMethod Method);

  /// (Re)binds the driver to a system/options/method, keeping the history
  /// and scratch buffers when the dimension is unchanged so one driver
  /// serves a whole batch of simulations. Returns true when the buffers
  /// were reused (no allocation). Call begin() afterwards.
  bool reset(const OdeSystem &Sys, const SolverOptions &Opts,
             MultistepMethod Method);

  /// Initializes at (T0, Y0) heading for TEnd. Resets order to 1.
  void begin(double T0, const double *Y0, double TEnd);

  /// Advances by one accepted step (attempting rejected steps internally).
  /// Returns Success when a step was accepted, or a terminal failure
  /// status. Check done() to detect arrival at TEnd.
  IntegrationStatus advance();

  /// True once the integration has reached TEnd.
  bool done() const;

  /// Switches the method family at the current point; order restarts at 1
  /// (history beyond the current point is discarded).
  void switchMethod(MultistepMethod NewMethod);

  double time() const { return T; }
  const std::vector<double> &state() const { return Y; }
  double currentStep() const { return H; }
  unsigned currentOrder() const { return Order; }
  MultistepMethod method() const { return Method; }
  const IntegrationStats &stats() const { return Stats; }
  uint64_t acceptedSteps() const { return Stats.AcceptedSteps; }

  /// Dense output of the last accepted step (cubic Hermite); valid only
  /// immediately after a successful advance().
  const StepInterpolant &lastStepInterpolant() const {
    assert(Interp && "no accepted step yet");
    return *Interp;
  }

  /// Estimates the spectral radius of the Jacobian at the current point
  /// (shared stiffness probe for LSODA/VODE heuristics).
  double estimateSpectralRadius();

private:
  const OdeSystem *Sys = nullptr;
  SolverOptions Opts;
  MultistepMethod Method = MultistepMethod::Adams;
  size_t N = 0;

  double T = 0.0, TEnd = 0.0, Direction = 1.0;
  double H = 0.0;        ///< Magnitude of the current step.
  double Spacing = 0.0;  ///< Signed spacing of the stored history.
  unsigned Order = 1;
  unsigned ConsecutiveAccepts = 0;
  unsigned ConsecutiveRejects = 0;
  IntegrationStats Stats;

  std::vector<double> Y;
  // History rows j = 0.. at times T - j*Spacing (row 0 = current point).
  std::vector<std::vector<double>> YHist, FHist;
  size_t HistCount = 0;

  // BDF Newton workspace.
  Matrix J;
  RealLu Newton;
  bool HaveJacobian = false;
  bool HaveFactorization = false;
  double FactoredH = 0.0;
  unsigned FactoredOrder = 0;
  uint64_t StepsSinceJacobian = 0;
  /// Convergence rate of the most recent Newton solve that took more
  /// than one iteration (||d_k|| / ||d_{k-1}||); 0 while the corrector
  /// keeps converging in a single iteration. Drives the adaptive
  /// Jacobian reuse policy in solveBdfCorrector().
  double LastNewtonRate = 0.0;

  // Last accepted step endpoints for the observer interpolant.
  double PrevT = 0.0;
  std::vector<double> PrevY, PrevF, CurrF;
  std::optional<HermiteInterpolant> Interp;

  // Scratch.
  std::vector<double> YPred, FPred, YCorr, Delta, Scratch;

  void resampleHistory(double NewSpacing);
  void pushHistory(const std::vector<double> &NewY,
                   const std::vector<double> &NewF);
  bool solveBdfCorrector(double Hs, double TNew, IntegrationStatus &Failure);
  void adaptOrderAfterAccept();
};

/// Adams-Bashforth-Moulton PECE solver ("adams"), orders 1-5.
class AdamsSolver : public OdeSolver {
public:
  std::string name() const override { return "adams"; }
  IntegrationResult integrate(const OdeSystem &Sys, double T0, double TEnd,
                              std::vector<double> &Y,
                              const SolverOptions &Opts,
                              StepObserver *Observer = nullptr) override;

private:
  MultistepDriver Driver; ///< History/scratch reused across integrations.
};

/// BDF solver ("bdf"), orders 1-5 with simplified Newton.
class BdfSolver : public OdeSolver {
public:
  std::string name() const override { return "bdf"; }
  bool isImplicit() const override { return true; }
  IntegrationResult integrate(const OdeSystem &Sys, double T0, double TEnd,
                              std::vector<double> &Y,
                              const SolverOptions &Opts,
                              StepObserver *Observer = nullptr) override;

private:
  MultistepDriver Driver; ///< History/scratch reused across integrations.
};

/// Shared driver loop used by the plain Adams/BDF solvers; allocates a
/// fresh driver per call.
IntegrationResult runMultistep(const OdeSystem &Sys, double T0, double TEnd,
                               std::vector<double> &Y,
                               const SolverOptions &Opts,
                               MultistepMethod Method,
                               StepObserver *Observer);

/// Shared driver loop over a caller-owned (reusable) driver: \p Driver is
/// reset onto (Sys, Opts, Method) — counting a workspace reuse when its
/// buffers carry over — then stepped to TEnd.
IntegrationResult runMultistep(MultistepDriver &Driver, const OdeSystem &Sys,
                               double T0, double TEnd, std::vector<double> &Y,
                               const SolverOptions &Opts,
                               MultistepMethod Method,
                               StepObserver *Observer);

} // namespace psg

#endif // PSG_ODE_MULTISTEP_H
