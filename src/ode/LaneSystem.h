//===- ode/LaneSystem.h - Lane-batched system interface ---------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lane-batched system interface consumed by the lockstep driver: one
/// logical ODE system evaluated for L independent parameterizations per
/// call. State is transposed structure-of-arrays — component i of lane l
/// lives at Y[i * lanes() + l] — so the per-lane inner loops of an
/// implementation run over contiguous, vectorizable memory. This is the
/// CPU mirror of the coarse-grained GPU layout where neighbouring threads
/// of a warp integrate neighbouring parameterizations.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_LANESYSTEM_H
#define PSG_ODE_LANESYSTEM_H

#include <cstddef>
#include <string>

namespace psg {

/// A dy/dt = f(t, y) system evaluated for lanes() parameterizations at
/// once over SoA state.
class LaneOdeSystem {
public:
  virtual ~LaneOdeSystem();

  /// Number of state variables of one lane's system.
  virtual size_t dimension() const = 0;

  /// Number of parameterizations evaluated per call.
  virtual unsigned lanes() const = 0;

  /// Evaluates dy/dt for every lane. \p Y and \p DyDt hold
  /// dimension() * lanes() doubles in SoA layout (component-major,
  /// lane-minor). Lanes the caller has masked out are still computed —
  /// the lockstep analogue of predicated-off warp lanes — and simply
  /// ignored.
  virtual void rhsLanes(double T, const double *Y, double *DyDt) const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const { return "lane-system"; }
};

} // namespace psg

#endif // PSG_ODE_LANESYSTEM_H
