//===- ode/LockstepDriver.h - Lane-lockstep adaptive RK ---------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lockstep adaptive-step Runge-Kutta driver over a LaneOdeSystem: all
/// active lanes share one time point and one step size (the CPU analogue
/// of a GPU warp whose threads advance in lockstep), while error control
/// stays per-lane. Each attempted step evaluates the embedded pair for
/// every lane at once; a step is accepted only when every active lane
/// passes its tolerance test, otherwise the whole group replays it at the
/// lockstep minimum of the per-lane step proposals (the replayed work of
/// the lanes that had passed is the divergence cost, counted in
/// LaneIntegrationReport::LaneStepReplays). Lanes that fail terminally
/// (non-finite state, stiffness, vanishing step) are masked out — warp
/// lanes predicated off — and the rest keep integrating; the group drains
/// when every lane has finished or failed.
///
/// Supported tableaus: DOPRI5 (FSAL, native 4th-order dense output,
/// Hairer-style stiffness detection) and RKF45 (cubic-Hermite dense
/// output), matching the scalar Dopri5Solver / Rkf45Solver numerics
/// except for the shared step sequence — which is why lane-batched
/// results agree with the scalar personalities within the conformance
/// tolerance rather than bit-exactly.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_LOCKSTEPDRIVER_H
#define PSG_ODE_LOCKSTEPDRIVER_H

#include "ode/IntegrationResult.h"
#include "ode/Interpolant.h"
#include "ode/LaneSystem.h"
#include "ode/SolverOptions.h"

#include <memory>
#include <vector>

namespace psg {

/// Embedded pair integrated by the lockstep driver.
enum class LockstepTableau { Dopri5, Rkf45 };

/// Stable display name ("dopri5" / "rkf45").
const char *lockstepTableauName(LockstepTableau T);

/// Outcome of one lockstep group integration.
struct LaneIntegrationReport {
  /// Per-lane results, indexed by lane. Lanes inactive on entry keep a
  /// default (Success, zero-stats) result.
  std::vector<IntegrationResult> Lane;
  /// Sum over attempted group steps of the active lane count — the
  /// numerator of lane occupancy.
  uint64_t ActiveLaneSteps = 0;
  /// Attempted group steps times the lane width — the occupancy
  /// denominator (what a fully packed group would have executed).
  uint64_t LaneSlotSteps = 0;
  /// Lanes that had individually passed their error test but replayed
  /// the step because a sibling lane rejected it — the lockstep
  /// divergence cost.
  uint64_t LaneStepReplays = 0;
};

/// Lockstep integrator; keeps a reusable workspace sized to the last
/// system, like the scalar solvers. One instance per worker thread.
class LockstepDriver {
public:
  explicit LockstepDriver(LockstepTableau Tableau);
  ~LockstepDriver();

  LockstepTableau tableau() const { return Kind; }

  /// Integrates every active lane of \p Sys from \p T0 to \p TEnd,
  /// advancing the SoA state \p Y (dimension() * lanes() doubles) in
  /// place. \p Active flags the lanes to integrate (shorter-than-width
  /// groups pad with inactive lanes); inactive and terminally failed
  /// lanes keep the state they held when they stopped. \p Observers, when
  /// non-null, holds one StepObserver* per lane (entries may be null);
  /// each observed lane receives its dense-output interpolant per
  /// accepted step.
  LaneIntegrationReport integrate(const LaneOdeSystem &Sys, double T0,
                                  double TEnd, double *Y,
                                  const SolverOptions &Opts,
                                  const std::vector<bool> &Active,
                                  StepObserver *const *Observers = nullptr);

private:
  struct Workspace;
  LockstepTableau Kind;
  std::unique_ptr<Workspace> Ws;
};

} // namespace psg

#endif // PSG_ODE_LOCKSTEPDRIVER_H
