//===- ode/TestProblems.h - Classic ODE benchmark problems ------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic stiff and non-stiff reference problems used to validate solver
/// accuracy (bench T4) and in unit tests. Reference values are quoted from
/// the stiff-ODE test-set literature (Hairer & Wanner; Mazzia's test set).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_TESTPROBLEMS_H
#define PSG_ODE_TESTPROBLEMS_H

#include "ode/OdeSystem.h"

#include <functional>
#include <memory>

namespace psg {

/// Closed-form solution of a test problem at an arbitrary time.
using ExactSolution = std::function<std::vector<double>(double T)>;

/// A named problem with an initial condition, horizon, and (optionally)
/// a high-accuracy reference solution at the end time.
struct TestProblem {
  std::shared_ptr<OdeSystem> System;
  std::vector<double> InitialState;
  double StartTime = 0.0;
  double EndTime = 1.0;
  std::vector<double> Reference; ///< Empty when no reference is available.
  /// Analytic solution (null when the problem has no closed form). When
  /// set, Exact(EndTime) == Reference; the conformance harness uses it to
  /// measure global errors at arbitrary times.
  ExactSolution Exact;
  bool Stiff = false;
};

/// y' = -y, y(0)=1 on [0, 5]; exact solution exp(-t).
TestProblem makeExponentialDecay();

/// 2-variable harmonic oscillator y'' = -y on [0, 2*pi]; exact (cos, -sin).
TestProblem makeHarmonicOscillator();

/// Robertson's chemical kinetics problem (3 variables, famously stiff),
/// on [0, 40] with the classic reference solution.
TestProblem makeRobertson();

/// Van der Pol oscillator with mu = 1000 (stiff) on [0, 2000].
TestProblem makeVanDerPolStiff();

/// Van der Pol oscillator with mu = 1 (non-stiff) on [0, 20].
TestProblem makeVanDerPolMild();

/// The Oregonator (Field-Noyes BZ reaction, stiff limit cycle) on one
/// period-ish horizon [0, 30].
TestProblem makeOregonator();

/// HIRES plant-physiology problem (8 variables, stiff) on [0, 321.8122]
/// with the canonical reference solution.
TestProblem makeHires();

/// Linear 2x2 system with widely separated eigenvalues (-1, -Lambda);
/// exact solution available for any time. Stiffness grows with Lambda.
TestProblem makeLinearStiff(double Lambda = 1e4);

/// Logistic growth y' = r y (1 - y) with y(0)=0.1 on [0, 4]; closed form
/// y(t) = y0 e^{rt} / (1 + y0 (e^{rt} - 1)). Nonlinear but non-stiff, so
/// it probes the genuinely nonlinear order conditions of a method —
/// linear problems can flatter a solver whose stability polynomial has
/// accidentally small leading error coefficients.
TestProblem makeLogistic(double R = 1.5);

/// Reversible isomerization A <-> B (2-species mass action) with rates
/// kf, kr on [0, 3]; closed form: relaxation to equilibrium at rate
/// kf + kr with the total A + B conserved.
TestProblem makeReversibleIsomerization(double Kf = 1.2, double Kr = 0.4);

/// The Brusselator in its classic nondimensional ODE form
/// (x' = A + x^2 y - (B+1) x, y' = B x - x^2 y) with A=1, B=3 on one
/// limit-cycle horizon [0, 10]. No closed form; conformance runs compare
/// against a Richardson-extrapolated reference.
TestProblem makeBrusselatorOde(double A = 1.0, double B = 3.0);

/// All problems above, for parameterized sweeps.
std::vector<TestProblem> allTestProblems();

} // namespace psg

#endif // PSG_ODE_TESTPROBLEMS_H
