//===- ode/TestProblems.h - Classic ODE benchmark problems ------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic stiff and non-stiff reference problems used to validate solver
/// accuracy (bench T4) and in unit tests. Reference values are quoted from
/// the stiff-ODE test-set literature (Hairer & Wanner; Mazzia's test set).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_TESTPROBLEMS_H
#define PSG_ODE_TESTPROBLEMS_H

#include "ode/OdeSystem.h"

#include <memory>

namespace psg {

/// A named problem with an initial condition, horizon, and (optionally)
/// a high-accuracy reference solution at the end time.
struct TestProblem {
  std::shared_ptr<OdeSystem> System;
  std::vector<double> InitialState;
  double StartTime = 0.0;
  double EndTime = 1.0;
  std::vector<double> Reference; ///< Empty when no reference is available.
  bool Stiff = false;
};

/// y' = -y, y(0)=1 on [0, 5]; exact solution exp(-t).
TestProblem makeExponentialDecay();

/// 2-variable harmonic oscillator y'' = -y on [0, 2*pi]; exact (cos, -sin).
TestProblem makeHarmonicOscillator();

/// Robertson's chemical kinetics problem (3 variables, famously stiff),
/// on [0, 40] with the classic reference solution.
TestProblem makeRobertson();

/// Van der Pol oscillator with mu = 1000 (stiff) on [0, 2000].
TestProblem makeVanDerPolStiff();

/// Van der Pol oscillator with mu = 1 (non-stiff) on [0, 20].
TestProblem makeVanDerPolMild();

/// The Oregonator (Field-Noyes BZ reaction, stiff limit cycle) on one
/// period-ish horizon [0, 30].
TestProblem makeOregonator();

/// HIRES plant-physiology problem (8 variables, stiff) on [0, 321.8122]
/// with the canonical reference solution.
TestProblem makeHires();

/// Linear 2x2 system with widely separated eigenvalues (-1, -Lambda);
/// exact solution available for any time. Stiffness grows with Lambda.
TestProblem makeLinearStiff(double Lambda = 1e4);

/// All problems above, for parameterized sweeps.
std::vector<TestProblem> allTestProblems();

} // namespace psg

#endif // PSG_ODE_TESTPROBLEMS_H
