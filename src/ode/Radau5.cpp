//===- ode/Radau5.cpp -----------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
// Algorithm and constants follow Hairer & Wanner, "Solving Ordinary
// Differential Equations II" (RADAU5). A unit test validates the hardcoded
// eigen-structure constants against the exact Butcher matrix.
//
//===----------------------------------------------------------------------===//

#include "ode/Radau5.h"

#include "linalg/Lu.h"
#include "linalg/VectorOps.h"
#include "ode/SolverWorkspace.h"
#include "ode/StepControl.h"

#include <algorithm>
#include <cmath>

using namespace psg;

namespace {
const double Sq6 = std::sqrt(6.0);
const double C1 = (4.0 - Sq6) / 10.0;
const double C2 = (4.0 + Sq6) / 10.0;

// Error-estimate weights (ESTRAD).
const double DD1 = -(13.0 + 7.0 * Sq6) / 3.0;
const double DD2 = (-13.0 + 7.0 * Sq6) / 3.0;
const double DD3 = -1.0 / 3.0;

// Eigen-structure of the inverse Butcher matrix (RADAU5 normalization).
struct EigenConstants {
  double U1, Alph, Beta;
  EigenConstants() {
    const double St9 = std::cbrt(9.0);
    double U = (6.0 + St9 * (St9 - 1.0)) / 30.0;
    double A = (12.0 - St9 * (St9 - 1.0)) / 60.0;
    double B = St9 * (St9 + 1.0) * std::sqrt(3.0) / 60.0;
    const double Cno = A * A + B * B;
    U1 = 1.0 / U;
    Alph = A / Cno;
    Beta = B / Cno;
  }
};
const EigenConstants EC;

// Transformation matrices (T32 = 1, T33 = 0).
const double T11 = 9.1232394870892942792e-02;
const double T12 = -0.14125529502095420843;
const double T13 = -3.0029194105147424492e-02;
const double T21 = 0.24171793270710701896;
const double T22 = 0.20412935229379993199;
const double T23 = 0.38294211275726193779;
const double T31 = 0.96604818261509293619;
const double TI11 = 4.3255798900631553510;
const double TI12 = 0.33919925181580986954;
const double TI13 = 0.54177053993587487119;
const double TI21 = -4.1787185915519047273;
const double TI22 = -0.32768282076106238708;
const double TI23 = 0.47662355450055045196;
const double TI31 = -0.50287263494578687595;
const double TI32 = 2.5719269498556054292;
const double TI33 = -0.59603920482822492497;

/// Fills Out = A + B elementwise and returns its data pointer; used to
/// form stage states Y + Z_i without extra temporaries.
const double *addVectors(const std::vector<double> &A,
                         const std::vector<double> &B,
                         std::vector<double> &Out) {
  for (size_t I = 0; I < A.size(); ++I)
    Out[I] = A[I] + B[I];
  return Out.data();
}

} // namespace

/// Cubic collocation interpolant: the Newton divided-difference polynomial
/// through (t0, y0) and the three stage values.
class Radau5Solver::Interpolant : public StepInterpolant {
public:
  explicit Interpolant(size_t N)
      : N(N), P0(N), P1(N), P2(N), P3(N) {}

  /// Builds the polynomial for step [T0, T0 + H] with stage increments Z.
  void rebuild(double T0In, double H, const double *Y0, const double *Z1,
               const double *Z2, const double *Z3) {
    T0 = T0In;
    T1 = T0In + H;
    // Nodes (scaled to s = (t - t0)/h): 0, c1, c2, 1; values y0, y0+Z.
    // Divided differences in s.
    for (size_t I = 0; I < N; ++I) {
      const double V0 = Y0[I];
      const double V1 = Y0[I] + Z1[I];
      const double V2 = Y0[I] + Z2[I];
      const double V3 = Y0[I] + Z3[I];
      const double D01 = (V1 - V0) / (C1 - 0.0);
      const double D12 = (V2 - V1) / (C2 - C1);
      const double D23 = (V3 - V2) / (1.0 - C2);
      const double D012 = (D12 - D01) / (C2 - 0.0);
      const double D123 = (D23 - D12) / (1.0 - C1);
      const double D0123 = (D123 - D012) / (1.0 - 0.0);
      P0[I] = V0;
      P1[I] = D01;
      P2[I] = D012;
      P3[I] = D0123;
    }
  }

  /// True once rebuild() has been called.
  bool valid() const { return T1 != T0; }

  double beginTime() const override { return T0; }
  double endTime() const override { return T1; }

  void evaluate(double T, double *YOut) const override {
    const double S = (T - T0) / (T1 - T0);
    for (size_t I = 0; I < N; ++I)
      YOut[I] = P0[I] +
                S * (P1[I] + (S - C1) * (P2[I] + (S - C2) * P3[I]));
  }

private:
  size_t N;
  double T0 = 0.0, T1 = 0.0;
  std::vector<double> P0, P1, P2, P3;
};

/// Per-solver working storage, reused across integrate() calls. Stage and
/// Newton vectors are fully written before being read in every step; the
/// iteration matrices and LU factors are rebuilt before their first solve
/// of each integration (NeedJacobian/NeedFactor start true); interpolant
/// staleness is guarded by the FirstStep flag.
struct Radau5Solver::Workspace {
  size_t N = 0;
  std::vector<double> F0, F1, F2, F3;
  std::vector<double> Z1, Z2, Z3;
  std::vector<double> W1, W2, W3;
  std::vector<double> DW1, ErrVec, Scratch;
  std::vector<std::complex<double>> CRhs;
  Matrix J, E1;
  ComplexMatrix E2;
  RealLu RealDecomp;
  ComplexLu ComplexDecomp;
  Interpolant Interp{0};

  /// Sizes the buffers for \p Dim; returns true when already sized.
  bool prepare(size_t Dim) {
    if (Dim == N)
      return true;
    N = Dim;
    for (std::vector<double> *V :
         {&F0, &F1, &F2, &F3, &Z1, &Z2, &Z3, &W1, &W2, &W3, &DW1, &ErrVec,
          &Scratch})
      V->assign(Dim, 0.0);
    CRhs.assign(Dim, {});
    Interp = Interpolant(Dim);
    return false;
  }
};

Radau5Solver::Radau5Solver() : Ws(std::make_unique<Workspace>()) {}
Radau5Solver::~Radau5Solver() = default;

Matrix psg::radau5detail::butcherMatrix() {
  Matrix A(3, 3);
  A(0, 0) = (88.0 - 7.0 * Sq6) / 360.0;
  A(0, 1) = (296.0 - 169.0 * Sq6) / 1800.0;
  A(0, 2) = (-2.0 + 3.0 * Sq6) / 225.0;
  A(1, 0) = (296.0 + 169.0 * Sq6) / 1800.0;
  A(1, 1) = (88.0 + 7.0 * Sq6) / 360.0;
  A(1, 2) = (-2.0 - 3.0 * Sq6) / 225.0;
  A(2, 0) = (16.0 - Sq6) / 36.0;
  A(2, 1) = (16.0 + Sq6) / 36.0;
  A(2, 2) = 1.0 / 9.0;
  return A;
}

double psg::radau5detail::nodeC1() { return C1; }
double psg::radau5detail::nodeC2() { return C2; }
double psg::radau5detail::gammaReal() { return EC.U1; }
double psg::radau5detail::alphaComplex() { return EC.Alph; }
double psg::radau5detail::betaComplex() { return EC.Beta; }

Matrix psg::radau5detail::transformT() {
  Matrix T(3, 3);
  T(0, 0) = T11;
  T(0, 1) = T12;
  T(0, 2) = T13;
  T(1, 0) = T21;
  T(1, 1) = T22;
  T(1, 2) = T23;
  T(2, 0) = T31;
  T(2, 1) = 1.0;
  T(2, 2) = 0.0;
  return T;
}

Matrix psg::radau5detail::transformTInverse() {
  Matrix TI(3, 3);
  TI(0, 0) = TI11;
  TI(0, 1) = TI12;
  TI(0, 2) = TI13;
  TI(1, 0) = TI21;
  TI(1, 1) = TI22;
  TI(1, 2) = TI23;
  TI(2, 0) = TI31;
  TI(2, 1) = TI32;
  TI(2, 2) = TI33;
  return TI;
}

IntegrationResult Radau5Solver::integrate(const OdeSystem &Sys, double T0,
                                          double TEnd, std::vector<double> &Y,
                                          const SolverOptions &Opts,
                                          StepObserver *Observer) {
  const size_t N = Sys.dimension();
  assert(Y.size() == N && "state size mismatch");
  IntegrationResult Result;
  Result.FinalTime = T0;
  if (T0 == TEnd)
    return Result;
  const double Direction = TEnd > T0 ? 1.0 : -1.0;

  // Newton stopping tolerance (RADAU5 default FNEWT).
  const double Uround = 2.220446049250313e-16;
  const double FNewt = std::max(10.0 * Uround / Opts.RelTol,
                                std::min(0.03, std::sqrt(Opts.RelTol)));

  if (Ws->prepare(N))
    noteSolverWorkspaceReuse();
  std::vector<double> &F0 = Ws->F0, &F1 = Ws->F1, &F2 = Ws->F2, &F3 = Ws->F3;
  std::vector<double> &Z1 = Ws->Z1, &Z2 = Ws->Z2, &Z3 = Ws->Z3;
  std::vector<double> &W1 = Ws->W1, &W2 = Ws->W2, &W3 = Ws->W3;
  std::vector<double> &DW1 = Ws->DW1, &ErrVec = Ws->ErrVec,
                      &Scratch = Ws->Scratch;
  std::vector<std::complex<double>> &CRhs = Ws->CRhs;
  Matrix &J = Ws->J, &E1 = Ws->E1;
  ComplexMatrix &E2 = Ws->E2;
  RealLu &RealDecomp = Ws->RealDecomp;
  ComplexLu &ComplexDecomp = Ws->ComplexDecomp;
  auto &Interp = Ws->Interp;

  Sys.rhs(T0, Y.data(), F0.data());
  ++Result.Stats.RhsEvaluations;
  double H = selectInitialStep(Sys, T0, Y.data(), F0.data(), TEnd, Opts,
                               /*Order=*/3, Result.Stats.RhsEvaluations);
  const double MaxStep =
      Opts.MaxStep > 0 ? Opts.MaxStep : std::abs(TEnd - T0);

  double T = T0;
  bool NeedJacobian = true;
  bool NeedFactor = true;
  bool FirstStep = true;
  bool LastRejected = false;
  double FactoredH = 0.0;
  double Theta = 0.0;

  auto factorMatrices = [&](double Step) -> bool {
    const double Fac1 = EC.U1 / Step;
    const double AlphN = EC.Alph / Step;
    const double BetaN = EC.Beta / Step;
    E1.resize(N, N);
    E2.resize(N, N);
    for (size_t R = 0; R < N; ++R)
      for (size_t C = 0; C < N; ++C) {
        const double JV = J(R, C);
        E1(R, C) = (R == C ? Fac1 : 0.0) - JV;
        E2(R, C) = std::complex<double>((R == C ? AlphN : 0.0) - JV,
                                        R == C ? BetaN : 0.0);
      }
    ++Result.Stats.LuFactorizations;
    ++Result.Stats.ComplexLuFactorizations;
    if (!RealDecomp.factor(E1) || !ComplexDecomp.factor(E2))
      return false;
    FactoredH = Step;
    NeedFactor = false;
    return true;
  };

  while ((TEnd - T) * Direction > 0) {
    if (Result.Stats.Steps >= Opts.MaxSteps) {
      Result.Status = IntegrationStatus::MaxStepsExceeded;
      Result.FinalTime = T;
      Result.LastStepSize = H;
      return Result;
    }
    H = std::min(H, MaxStep);
    double Step = Direction * H;
    bool HitEnd = false;
    if ((T + Step - TEnd) * Direction > 0 ||
        std::abs(T + Step - TEnd) < 1e-12 * std::abs(TEnd - T0)) {
      Step = TEnd - T;
      HitEnd = true;
    }
    const double MinMagnitude = 1e-14 * std::max(1.0, std::abs(T));
    if (std::abs(Step) < MinMagnitude) {
      Result.Status = IntegrationStatus::StepSizeTooSmall;
      Result.FinalTime = T;
      return Result;
    }

    if (NeedJacobian) {
      Result.Stats.RhsEvaluations += Sys.jacobian(T, Y.data(), F0.data(), J);
      ++Result.Stats.JacobianEvaluations;
      NeedJacobian = false;
      NeedFactor = true;
    }
    if (NeedFactor || std::abs(FactoredH - Step) > 1e-12 * std::abs(Step)) {
      if (!factorMatrices(Step)) {
        // Singular iteration matrix: halve the step and retry.
        ++Result.Stats.RejectedSteps;
        H *= 0.5;
        NeedFactor = true;
        if (H < MinMagnitude) {
          Result.Status = IntegrationStatus::SingularMatrix;
          Result.FinalTime = T;
          return Result;
        }
        continue;
      }
    }
    ++Result.Stats.Steps;

    // Starting values for the stages: extrapolate the previous collocation
    // polynomial when available, otherwise zero.
    if (!FirstStep && !LastRejected && Interp.valid()) {
      auto extrapolate = [&](double CNode, std::vector<double> &Z) {
        Interp.evaluate(T + CNode * Step, Z.data());
        for (size_t I = 0; I < N; ++I)
          Z[I] -= Y[I];
      };
      extrapolate(C1, Z1);
      extrapolate(C2, Z2);
      extrapolate(1.0, Z3);
    } else {
      std::fill(Z1.begin(), Z1.end(), 0.0);
      std::fill(Z2.begin(), Z2.end(), 0.0);
      std::fill(Z3.begin(), Z3.end(), 0.0);
    }
    // W = (TI x I) Z.
    for (size_t I = 0; I < N; ++I) {
      W1[I] = TI11 * Z1[I] + TI12 * Z2[I] + TI13 * Z3[I];
      W2[I] = TI21 * Z1[I] + TI22 * Z2[I] + TI23 * Z3[I];
      W3[I] = TI31 * Z1[I] + TI32 * Z2[I] + TI33 * Z3[I];
    }

    // Simplified Newton iteration.
    const double Fac1 = EC.U1 / Step;
    const double AlphN = EC.Alph / Step;
    const double BetaN = EC.Beta / Step;
    bool Converged = false;
    bool Diverged = false;
    double DynOld = 0.0;
    Theta = 0.0;
    unsigned Iter = 0;
    for (; Iter < Opts.MaxNewtonIters; ++Iter) {
      Sys.rhs(T + C1 * Step, addVectors(Y, Z1, Scratch), F1.data());
      Sys.rhs(T + C2 * Step, addVectors(Y, Z2, Scratch), F2.data());
      Sys.rhs(T + Step, addVectors(Y, Z3, Scratch), F3.data());
      Result.Stats.RhsEvaluations += 3;
      ++Result.Stats.NewtonIterations;

      // Real system: (Fac1 I - J) dW1 = (TI F)_1 - Fac1 W1.
      for (size_t I = 0; I < N; ++I)
        DW1[I] = TI11 * F1[I] + TI12 * F2[I] + TI13 * F3[I] - Fac1 * W1[I];
      RealDecomp.solve(DW1.data());
      // Complex system for (dW2 + i dW3).
      for (size_t I = 0; I < N; ++I) {
        const double R2 =
            TI21 * F1[I] + TI22 * F2[I] + TI23 * F3[I] - AlphN * W2[I] +
            BetaN * W3[I];
        const double R3 =
            TI31 * F1[I] + TI32 * F2[I] + TI33 * F3[I] - BetaN * W2[I] -
            AlphN * W3[I];
        CRhs[I] = std::complex<double>(R2, R3);
      }
      ComplexDecomp.solve(CRhs.data());
      Result.Stats.LuSolves += 2;

      // Norm of the update (all three blocks share the state weights).
      double Sum = 0.0;
      for (size_t I = 0; I < N; ++I) {
        const double Weight = Opts.AbsTol + Opts.RelTol * std::abs(Y[I]);
        const double D2 = CRhs[I].real();
        const double D3 = CRhs[I].imag();
        Sum += (DW1[I] * DW1[I] + D2 * D2 + D3 * D3) / (Weight * Weight);
      }
      const double Dyno = std::sqrt(Sum / static_cast<double>(3 * N));

      for (size_t I = 0; I < N; ++I) {
        W1[I] += DW1[I];
        W2[I] += CRhs[I].real();
        W3[I] += CRhs[I].imag();
        Z1[I] = T11 * W1[I] + T12 * W2[I] + T13 * W3[I];
        Z2[I] = T21 * W1[I] + T22 * W2[I] + T23 * W3[I];
        Z3[I] = T31 * W1[I] + W2[I];
      }

      if (!allFinite(Z3.data(), N)) {
        Diverged = true;
        break;
      }
      if (Iter > 0) {
        Theta = DynOld > 0.0 ? Dyno / DynOld : 0.0;
        if (Theta >= 1.0) {
          Diverged = true;
          break;
        }
        const double Eta = Theta / (1.0 - Theta);
        if (Eta * Dyno < FNewt) {
          Converged = true;
          break;
        }
        // Predicted to miss the tolerance within the iteration budget.
        const double Remaining =
            static_cast<double>(Opts.MaxNewtonIters - 1 - Iter);
        if (std::pow(Theta, Remaining) / (1.0 - Theta) * Dyno > FNewt) {
          Diverged = true;
          break;
        }
      } else if (Dyno < 0.01 * FNewt) {
        Converged = true;
        break;
      }
      DynOld = std::max(Dyno, Uround);
    }

    if (!Converged || Diverged) {
      // Newton failure: halve the step, force a fresh Jacobian.
      ++Result.Stats.RejectedSteps;
      LastRejected = true;
      H = std::abs(Step) * 0.5;
      NeedJacobian = true;
      NeedFactor = true;
      if (H < MinMagnitude) {
        Result.Status = IntegrationStatus::NewtonFailure;
        Result.FinalTime = T;
        Result.Detail = "simplified Newton failed at the minimum step size";
        return Result;
      }
      continue;
    }

    // Error estimate (ESTRAD): solve (Fac1 I - J) v = f0 + sum(DDi Zi)/h.
    for (size_t I = 0; I < N; ++I)
      ErrVec[I] =
          F0[I] + (DD1 * Z1[I] + DD2 * Z2[I] + DD3 * Z3[I]) / Step;
    RealDecomp.solve(ErrVec.data());
    ++Result.Stats.LuSolves;
    double Err = weightedRmsNorm(ErrVec.data(), Y.data(), N, Opts.AbsTol,
                                 Opts.RelTol);
    if (Err >= 1.0 && (FirstStep || LastRejected)) {
      // Stabilized second pass.
      for (size_t I = 0; I < N; ++I)
        Scratch[I] = Y[I] + ErrVec[I];
      Sys.rhs(T, Scratch.data(), F1.data());
      ++Result.Stats.RhsEvaluations;
      for (size_t I = 0; I < N; ++I)
        ErrVec[I] =
            F1[I] + (DD1 * Z1[I] + DD2 * Z2[I] + DD3 * Z3[I]) / Step;
      RealDecomp.solve(ErrVec.data());
      ++Result.Stats.LuSolves;
      Err = weightedRmsNorm(ErrVec.data(), Y.data(), N, Opts.AbsTol,
                            Opts.RelTol);
    }

    // Step-size proposal (penalize slow Newton convergence).
    const double NitD = static_cast<double>(Opts.MaxNewtonIters);
    const double Fac = Opts.Safety * (1.0 + 2.0 * NitD) /
                       (static_cast<double>(Iter + 1) + 2.0 * NitD);
    double Scale = Fac * std::pow(std::max(Err, 1e-10), -0.25);
    Scale = std::clamp(Scale, Opts.MinScale, Opts.MaxScale);

    if (Err >= 1.0) {
      ++Result.Stats.RejectedSteps;
      LastRejected = true;
      H = std::abs(Step) * std::min(Scale, 0.9);
      NeedFactor = true;
      continue;
    }

    // Accepted.
    Interp.rebuild(T, Step, Y.data(), Z1.data(), Z2.data(), Z3.data());
    for (size_t I = 0; I < N; ++I)
      Y[I] += Z3[I];
    T += Step;
    ++Result.Stats.AcceptedSteps;
    Result.LastStepSize = std::abs(Step);
    FirstStep = false;
    LastRejected = false;
    if (Observer)
      Observer->onStep(Interp);
    if (HitEnd && (TEnd - T) * Direction <= 0)
      break;

    Sys.rhs(T, Y.data(), F0.data());
    ++Result.Stats.RhsEvaluations;

    // Jacobian/factorization reuse policy: keep everything when Newton
    // contracted fast and the proposed step is close to the current one.
    const double HNew = std::abs(Step) * Scale;
    if (Theta < 1e-3 && Scale >= 1.0 && Scale <= 1.2) {
      H = std::abs(Step); // Keep H, J and the factorizations.
    } else {
      H = HNew;
      NeedJacobian = Theta > 1e-3;
      NeedFactor = true;
    }
  }
  Result.FinalTime = TEnd;
  return Result;
}
