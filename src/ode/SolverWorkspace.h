//===- ode/SolverWorkspace.h - Workspace-reuse accounting -------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared accounting for the per-solver reusable workspaces: every solver
/// keeps its stage vectors, Newton matrices and history buffers alive
/// across integrate() calls and records a `psg.ode.workspace_reuses` tick
/// whenever an integrate() found them already sized for the system, so
/// tests and benches can prove the steady state is allocation-free.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_SOLVERWORKSPACE_H
#define PSG_ODE_SOLVERWORKSPACE_H

namespace psg {

/// Records one workspace reuse in the `psg.ode.workspace_reuses` counter.
/// Called by solvers when an integrate() begins with buffers already
/// dimensioned for the system (no allocation needed).
void noteSolverWorkspaceReuse();

} // namespace psg

#endif // PSG_ODE_SOLVERWORKSPACE_H
