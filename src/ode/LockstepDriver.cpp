//===- ode/LockstepDriver.cpp ---------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
// Tableaus follow Dormand & Prince (1980), Fehlberg, and Hairer, Norsett
// & Wanner, "Solving Ordinary Differential Equations I"; the numerics per
// lane match Dopri5.cpp / Rkf45.cpp except for the shared step sequence.
//
//===----------------------------------------------------------------------===//

#include "ode/LockstepDriver.h"

#include "ode/SolverWorkspace.h"
#include "ode/StepControl.h"

#include <algorithm>
#include <cmath>

using namespace psg;

namespace {

//===----------------------------------------------------------------------===//
// Tableaus (row-packed lower triangles, stride = stage count).
//===----------------------------------------------------------------------===//

struct TableauDef {
  unsigned Stages;   ///< Rhs stages per attempted step, including K1.
  bool Fsal;         ///< Last stage is f(T+Step, YNew) (reused as next K1).
  unsigned InitOrder; ///< Order passed to the initial-step heuristic.
  const double *C;   ///< Nodes, length Stages.
  const double *A;   ///< Row-packed: stage S reads A[(S-1)*Stages + j].
  const double *B;   ///< Solution weights (null when Fsal: YNew is the
                     ///< last stage input).
  const double *E;   ///< Error weights, length Stages.
  const double *D;   ///< Dense-output weights (DOPRI5) or null (Hermite).
};

// DOPRI5 (see Dopri5.cpp).
constexpr unsigned DP_S = 7;
constexpr double DP_C[DP_S] = {0, 1.0 / 5, 3.0 / 10, 4.0 / 5, 8.0 / 9, 1, 1};
constexpr double DP_A[(DP_S - 1) * DP_S] = {
    1.0 / 5,          0,           0,             0,            0,         0, 0,
    3.0 / 40,         9.0 / 40,    0,             0,            0,         0, 0,
    44.0 / 45,        -56.0 / 15,  32.0 / 9,      0,            0,         0, 0,
    19372.0 / 6561,   -25360.0 / 2187, 64448.0 / 6561, -212.0 / 729, 0,   0, 0,
    9017.0 / 3168,    -355.0 / 33, 46732.0 / 5247, 49.0 / 176,
    -5103.0 / 18656,  0,           0,
    35.0 / 384,       0,           500.0 / 1113,  125.0 / 192,
    -2187.0 / 6784,   11.0 / 84,   0};
constexpr double DP_E[DP_S] = {71.0 / 57600,      0,          -71.0 / 16695,
                               71.0 / 1920,       -17253.0 / 339200,
                               22.0 / 525,        -1.0 / 40};
constexpr double DP_D[DP_S] = {-12715105075.0 / 11282082432.0,
                               0,
                               87487479700.0 / 32700410799.0,
                               -10690763975.0 / 1880347072.0,
                               701980252875.0 / 199316789632.0,
                               -1453857185.0 / 822651844.0,
                               69997945.0 / 29380423.0};

// RKF45 (see Rkf45.cpp).
constexpr unsigned RF_S = 6;
constexpr double RF_C[RF_S] = {0, 1.0 / 4, 3.0 / 8, 12.0 / 13, 1, 1.0 / 2};
constexpr double RF_A[(RF_S - 1) * RF_S] = {
    1.0 / 4,        0,             0,              0,             0, 0,
    3.0 / 32,       9.0 / 32,      0,              0,             0, 0,
    1932.0 / 2197,  -7200.0 / 2197, 7296.0 / 2197, 0,             0, 0,
    439.0 / 216,    -8.0,          3680.0 / 513,   -845.0 / 4104, 0, 0,
    -8.0 / 27,      2.0,           -3544.0 / 2565, 1859.0 / 4104,
    -11.0 / 40,     0};
constexpr double RF_B[RF_S] = {16.0 / 135,       0, 6656.0 / 12825,
                               28561.0 / 56430,  -9.0 / 50, 2.0 / 55};
constexpr double RF_E[RF_S] = {
    16.0 / 135 - 25.0 / 216,      0, 6656.0 / 12825 - 1408.0 / 2565,
    28561.0 / 56430 - 2197.0 / 4104, -9.0 / 50 + 1.0 / 5, 2.0 / 55};

const TableauDef &tableauFor(LockstepTableau T) {
  static const TableauDef Dopri{DP_S, /*Fsal=*/true, /*InitOrder=*/5,
                                DP_C, DP_A, nullptr, DP_E, DP_D};
  static const TableauDef Rkf{RF_S, /*Fsal=*/false, /*InitOrder=*/4,
                              RF_C, RF_A, RF_B, RF_E, nullptr};
  return T == LockstepTableau::Dopri5 ? Dopri : Rkf;
}

//===----------------------------------------------------------------------===//
// Per-lane dense-output views over the driver's SoA buffers.
//===----------------------------------------------------------------------===//

/// One lane of the DOPRI5 continuous extension (SoA cont arrays).
class LaneDopriInterpolant : public StepInterpolant {
public:
  LaneDopriInterpolant(size_t N, unsigned Stride, const double *C1,
                       const double *C2, const double *C3, const double *C4,
                       const double *C5)
      : N(N), Stride(Stride), Cont1(C1), Cont2(C2), Cont3(C3), Cont4(C4),
        Cont5(C5) {}

  void bind(double T, double H, unsigned LaneIdx) {
    T0 = T;
    T1 = T + H;
    Lane = LaneIdx;
  }

  double beginTime() const override { return T0; }
  double endTime() const override { return T1; }

  void evaluate(double T, double *YOut) const override {
    const double S = (T - T0) / (T1 - T0);
    const double S1 = 1.0 - S;
    for (size_t I = 0; I < N; ++I) {
      const size_t Idx = I * Stride + Lane;
      YOut[I] = Cont1[Idx] +
                S * (Cont2[Idx] +
                     S1 * (Cont3[Idx] + S * (Cont4[Idx] + S1 * Cont5[Idx])));
    }
  }

private:
  size_t N;
  unsigned Stride;
  const double *Cont1, *Cont2, *Cont3, *Cont4, *Cont5;
  double T0 = 0.0, T1 = 0.0;
  unsigned Lane = 0;
};

/// One lane of a cubic Hermite step over SoA endpoints (RKF45 path;
/// mirrors HermiteInterpolant).
class LaneHermiteInterpolant : public StepInterpolant {
public:
  LaneHermiteInterpolant(size_t N, unsigned Stride, const double *Y0,
                         const double *F0, const double *Y1, const double *F1)
      : N(N), Stride(Stride), Y0(Y0), F0(F0), Y1(Y1), F1(F1) {}

  void bind(double TBegin, double TEnd, unsigned LaneIdx) {
    T0 = TBegin;
    T1 = TEnd;
    Lane = LaneIdx;
  }

  double beginTime() const override { return T0; }
  double endTime() const override { return T1; }

  void evaluate(double T, double *YOut) const override {
    const double H = T1 - T0;
    const double S = (T - T0) / H;
    const double S2 = S * S;
    const double H00 = (1.0 + 2.0 * S) * (1.0 - S) * (1.0 - S);
    const double H10 = S * (1.0 - S) * (1.0 - S);
    const double H01 = S2 * (3.0 - 2.0 * S);
    const double H11 = S2 * (S - 1.0);
    for (size_t I = 0; I < N; ++I) {
      const size_t Idx = I * Stride + Lane;
      YOut[I] = H00 * Y0[Idx] + H * H10 * F0[Idx] + H01 * Y1[Idx] +
                H * H11 * F1[Idx];
    }
  }

private:
  size_t N;
  unsigned Stride;
  const double *Y0, *F0, *Y1, *F1;
  double T0 = 0.0, T1 = 0.0;
  unsigned Lane = 0;
};

} // namespace

LaneOdeSystem::~LaneOdeSystem() = default;

const char *psg::lockstepTableauName(LockstepTableau T) {
  return T == LockstepTableau::Dopri5 ? "dopri5" : "rkf45";
}

/// SoA working storage, reused across integrate() calls; every buffer is
/// fully written before it is read within a step.
struct LockstepDriver::Workspace {
  size_t N = 0;
  unsigned L = 0;
  std::vector<double> K[7];
  std::vector<double> YNew, YStage, ErrVec, Stage6, FNew, Probe;
  std::vector<double> Cont1, Cont2, Cont3, Cont4, Cont5;

  /// Sizes the buffers for \p Dim x \p Lanes; returns true when already
  /// sized.
  bool prepare(size_t Dim, unsigned Lanes) {
    if (Dim == N && Lanes == L)
      return true;
    N = Dim;
    L = Lanes;
    const size_t NL = Dim * Lanes;
    for (auto &K1 : K)
      K1.assign(NL, 0.0);
    for (std::vector<double> *V :
         {&YNew, &YStage, &ErrVec, &Stage6, &FNew, &Probe, &Cont1, &Cont2,
          &Cont3, &Cont4, &Cont5})
      V->assign(NL, 0.0);
    return false;
  }
};

LockstepDriver::LockstepDriver(LockstepTableau Tableau)
    : Kind(Tableau), Ws(std::make_unique<Workspace>()) {}
LockstepDriver::~LockstepDriver() = default;

LaneIntegrationReport
LockstepDriver::integrate(const LaneOdeSystem &Sys, double T0, double TEnd,
                          double *Y, const SolverOptions &Opts,
                          const std::vector<bool> &Active,
                          StepObserver *const *Observers) {
  const size_t N = Sys.dimension();
  const unsigned L = Sys.lanes();
  const size_t NL = N * L;
  assert(Active.size() == L && "one activity flag per lane");
  const TableauDef &Tb = tableauFor(Kind);

  LaneIntegrationReport Report;
  Report.Lane.assign(L, IntegrationResult());
  for (IntegrationResult &R : Report.Lane)
    R.FinalTime = T0;

  std::vector<uint8_t> Act(L, 0);
  unsigned ActiveCount = 0;
  for (unsigned Ln = 0; Ln < L; ++Ln)
    if (Active[Ln]) {
      Act[Ln] = 1;
      ++ActiveCount;
    }
  if (ActiveCount == 0 || T0 == TEnd)
    return Report;
  const double Direction = TEnd > T0 ? 1.0 : -1.0;

  if (Ws->prepare(N, L))
    noteSolverWorkspaceReuse();
  std::vector<double> &K1 = Ws->K[0];
  double *const YNew = Ws->YNew.data();
  double *const YStage = Ws->YStage.data();
  double *const ErrVec = Ws->ErrVec.data();

  // Per-lane control state (lockstep h, per-lane error history).
  std::vector<PiController> Controllers(
      L, PiController(/*Order=*/5, Opts.Safety, Opts.MinScale, Opts.MaxScale,
                      /*Beta=*/0.04));
  std::vector<double> ErrNorm(L, 0.0), Scale(L, 1.0), NormAcc(L, 0.0);
  std::vector<unsigned> StiffHits(L, 0), NonStiffHits(L, 0);
  std::vector<uint8_t> NonFinite(L, 0);

  auto countRhs = [&](uint64_t PerLane = 1) {
    for (unsigned Ln = 0; Ln < L; ++Ln)
      if (Act[Ln])
        Report.Lane[Ln].Stats.RhsEvaluations += PerLane;
  };
  auto failLane = [&](unsigned Ln, IntegrationStatus St, double FinalTime,
                      std::string Detail = "") {
    Report.Lane[Ln].Status = St;
    Report.Lane[Ln].FinalTime = FinalTime;
    Report.Lane[Ln].Detail = std::move(Detail);
    Act[Ln] = 0;
    --ActiveCount;
  };
  /// Tolerance-weighted RMS norm of \p V per lane, scaled by |Scale1| (and
  /// |Scale2| when non-null), into \p Out. Mirrors weightedRmsNorm{,2}.
  auto laneNorms = [&](const double *V, const double *ScaleA,
                       const double *ScaleB, std::vector<double> &Out) {
    std::fill(NormAcc.begin(), NormAcc.end(), 0.0);
    for (size_t I = 0; I < N; ++I) {
      const double *Vi = V + I * L;
      const double *Ai = ScaleA + I * L;
      const double *Bi = ScaleB ? ScaleB + I * L : nullptr;
      for (unsigned Ln = 0; Ln < L; ++Ln) {
        double S = std::abs(Ai[Ln]);
        if (Bi)
          S = std::max(S, std::abs(Bi[Ln]));
        const double R = Vi[Ln] / (Opts.AbsTol + Opts.RelTol * S);
        NormAcc[Ln] += R * R;
      }
    }
    for (unsigned Ln = 0; Ln < L; ++Ln)
      Out[Ln] = std::sqrt(NormAcc[Ln] / static_cast<double>(N));
  };

  // f(T0, Y0) for every lane.
  Sys.rhsLanes(T0, Y, K1.data());
  countRhs();

  // Lockstep initial step: the Hairer heuristic per lane (one shared
  // Euler probe), then the minimum over active lanes.
  const double Span = std::abs(TEnd - T0);
  double H;
  if (Opts.InitialStep > 0) {
    H = std::min(Opts.InitialStep, Span);
  } else {
    std::vector<double> D0(L), D1(L), D2(L);
    laneNorms(Y, Y, nullptr, D0);
    laneNorms(K1.data(), Y, nullptr, D1);
    std::vector<double> H0(L);
    double H0Min = Span;
    for (unsigned Ln = 0; Ln < L; ++Ln) {
      H0[Ln] = (D0[Ln] < 1e-5 || D1[Ln] < 1e-5) ? 1e-6 : 0.01 * D0[Ln] / D1[Ln];
      H0[Ln] = std::min(H0[Ln], Span);
      if (Act[Ln])
        H0Min = std::min(H0Min, H0[Ln]);
    }
    double *const Probe = Ws->Probe.data();
    double *const F1 = Ws->FNew.data();
    for (size_t I = 0; I < NL; ++I)
      Probe[I] = Y[I] + Direction * H0Min * K1[I];
    Sys.rhsLanes(T0 + Direction * H0Min, Probe, F1);
    countRhs();
    for (size_t I = 0; I < NL; ++I)
      Probe[I] = F1[I] - K1[I];
    laneNorms(Probe, Y, nullptr, D2);
    H = Span;
    for (unsigned Ln = 0; Ln < L; ++Ln) {
      if (!Act[Ln])
        continue;
      const double DMax = std::max(D1[Ln], D2[Ln] / H0Min);
      const double H1 =
          DMax <= 1e-15
              ? std::max(1e-6, H0[Ln] * 1e-3)
              : std::pow(0.01 / DMax, 1.0 / (Tb.InitOrder + 1.0));
      H = std::min({H, 100.0 * H0[Ln], H1});
    }
    H = std::min(H, Span);
  }
  const double MaxStep = Opts.MaxStep > 0 ? Opts.MaxStep : Span;
  H = std::min(H, MaxStep);

  LaneDopriInterpolant DopriView(N, L, Ws->Cont1.data(), Ws->Cont2.data(),
                                 Ws->Cont3.data(), Ws->Cont4.data(),
                                 Ws->Cont5.data());
  LaneHermiteInterpolant HermiteView(N, L, Y, K1.data(), YNew,
                                     Ws->FNew.data());
  bool AnyObserver = false;
  if (Observers)
    for (unsigned Ln = 0; Ln < L; ++Ln)
      AnyObserver |= Act[Ln] && Observers[Ln] != nullptr;

  double T = T0;
  uint64_t GroupSteps = 0;
  bool FreshK1 = true; // K1 holds f(T, Y).
  while (ActiveCount > 0 && (TEnd - T) * Direction > 0) {
    if (GroupSteps >= Opts.MaxSteps) {
      for (unsigned Ln = 0; Ln < L; ++Ln)
        if (Act[Ln]) {
          Report.Lane[Ln].LastStepSize = H;
          failLane(Ln, IntegrationStatus::MaxStepsExceeded, T);
        }
      break;
    }
    H = std::min(H, MaxStep);
    double Step = Direction * H;
    if ((T + Step - TEnd) * Direction > 0)
      Step = TEnd - T;
    const double MinMagnitude = 1e-14 * std::max(1.0, std::abs(T));
    if (std::abs(Step) < MinMagnitude) {
      for (unsigned Ln = 0; Ln < L; ++Ln)
        if (Act[Ln])
          failLane(Ln, IntegrationStatus::StepSizeTooSmall, T);
      break;
    }

    if (!FreshK1) {
      Sys.rhsLanes(T, Y, K1.data());
      countRhs();
      FreshK1 = true;
    }

    // Stages 2..S; with FSAL the last stage input *is* the 5th-order
    // solution, evaluated at T + Step.
    for (unsigned S = 1; S < Tb.Stages; ++S) {
      const bool Last = S + 1 == Tb.Stages;
      double *Out = (Last && Tb.Fsal) ? YNew : YStage;
      const double *ARow = Tb.A + (S - 1) * Tb.Stages;
      std::copy(Y, Y + NL, Out);
      for (unsigned J = 0; J < S; ++J) {
        const double Coef = ARow[J];
        if (Coef == 0.0)
          continue;
        const double Sc = Step * Coef;
        const double *Kj = Ws->K[J].data();
        for (size_t I = 0; I < NL; ++I)
          Out[I] += Sc * Kj[I];
      }
      if (S == Tb.Stages - 2 && Tb.Fsal && Opts.EnableStiffnessDetection)
        std::copy(Out, Out + NL, Ws->Stage6.data());
      Sys.rhsLanes(T + Tb.C[S] * Step, Out, Ws->K[S].data());
    }
    if (!Tb.Fsal) {
      std::copy(Y, Y + NL, YNew);
      for (unsigned J = 0; J < Tb.Stages; ++J) {
        const double Coef = Tb.B[J];
        if (Coef == 0.0)
          continue;
        const double Sc = Step * Coef;
        const double *Kj = Ws->K[J].data();
        for (size_t I = 0; I < NL; ++I)
          YNew[I] += Sc * Kj[I];
      }
    }
    std::fill(ErrVec, ErrVec + NL, 0.0);
    for (unsigned J = 0; J < Tb.Stages; ++J) {
      const double Coef = Tb.E[J];
      if (Coef == 0.0)
        continue;
      const double Sc = Step * Coef;
      const double *Kj = Ws->K[J].data();
      for (size_t I = 0; I < NL; ++I)
        ErrVec[I] += Sc * Kj[I];
    }
    ++GroupSteps;
    Report.ActiveLaneSteps += ActiveCount;
    Report.LaneSlotSteps += L;
    for (unsigned Ln = 0; Ln < L; ++Ln)
      if (Act[Ln]) {
        ++Report.Lane[Ln].Stats.Steps;
        Report.Lane[Ln].Stats.RhsEvaluations += Tb.Stages - 1;
      }

    // Per-lane finiteness of the trial solution.
    std::fill(NonFinite.begin(), NonFinite.end(), 0);
    bool AnyNonFinite = false;
    for (size_t I = 0; I < N; ++I) {
      const double *Row = YNew + I * L;
      for (unsigned Ln = 0; Ln < L; ++Ln)
        if (Act[Ln] && !std::isfinite(Row[Ln])) {
          NonFinite[Ln] = 1;
          AnyNonFinite = true;
        }
    }
    if (AnyNonFinite) {
      for (unsigned Ln = 0; Ln < L; ++Ln)
        if (Act[Ln]) {
          ++Report.Lane[Ln].Stats.RejectedSteps;
          Controllers[Ln].notifyRejected();
          if (!NonFinite[Ln])
            ++Report.LaneStepReplays;
        }
      H = 0.1 * std::abs(Step);
      if (H < MinMagnitude)
        for (unsigned Ln = 0; Ln < L; ++Ln)
          if (Act[Ln] && NonFinite[Ln])
            failLane(Ln, IntegrationStatus::NonFiniteState, T);
      continue; // State unchanged; K1 is still f(T, Y).
    }

    laneNorms(ErrVec, Y, YNew, ErrNorm);
    bool GroupAccept = true;
    for (unsigned Ln = 0; Ln < L; ++Ln)
      if (Act[Ln]) {
        Scale[Ln] = Controllers[Ln].scaleFactor(ErrNorm[Ln]);
        if (ErrNorm[Ln] > 1.0)
          GroupAccept = false;
      }
    if (!GroupAccept) {
      // Lockstep rejection: every lane replays at the group minimum of
      // the per-lane proposals; the lanes that had passed are the
      // divergence cost.
      double MinScale = Opts.MaxScale;
      for (unsigned Ln = 0; Ln < L; ++Ln)
        if (Act[Ln]) {
          ++Report.Lane[Ln].Stats.RejectedSteps;
          Controllers[Ln].notifyRejected();
          MinScale = std::min(MinScale, Scale[Ln]);
          if (ErrNorm[Ln] <= 1.0)
            ++Report.LaneStepReplays;
        }
      H = std::abs(Step) * MinScale;
      continue;
    }

    // Hairer's stiffness test, per lane (DOPRI5 only): |h * lambda|
    // estimated along the step from the last two stages.
    if (Tb.Fsal && Opts.EnableStiffnessDetection) {
      const double *K6 = Ws->K[Tb.Stages - 2].data();
      const double *K7 = Ws->K[Tb.Stages - 1].data();
      const double *Stage6 = Ws->Stage6.data();
      for (unsigned Ln = 0; Ln < L; ++Ln) {
        if (!Act[Ln])
          continue;
        if (Report.Lane[Ln].Stats.AcceptedSteps % 10 != 0 &&
            StiffHits[Ln] == 0)
          continue;
        double Num = 0.0, Den = 0.0;
        for (size_t I = 0; I < N; ++I) {
          const size_t Idx = I * L + Ln;
          const double DK = K7[Idx] - K6[Idx];
          const double DY = YNew[Idx] - Stage6[Idx];
          Num += DK * DK;
          Den += DY * DY;
        }
        if (Den <= 0.0)
          continue;
        const double HLambda = std::abs(Step) * std::sqrt(Num / Den);
        if (HLambda > 3.25) {
          NonStiffHits[Ln] = 0;
          if (++StiffHits[Ln] == 15) {
            Report.Lane[Ln].LastStepSize = std::abs(Step);
            failLane(Ln, IntegrationStatus::StiffnessDetected, T,
                     "h*lambda stayed above 3.25 for 15 tests");
          }
        } else if (StiffHits[Ln] > 0 && ++NonStiffHits[Ln] == 6) {
          StiffHits[Ln] = 0;
        }
      }
      if (ActiveCount == 0)
        break;
    }

    const double TNew = T + Step;
    if (AnyObserver) {
      if (Tb.Fsal) {
        // Native DOPRI5 dense output over the SoA stage arrays.
        const double *K7 = Ws->K[Tb.Stages - 1].data();
        double *C1 = Ws->Cont1.data(), *C2 = Ws->Cont2.data(),
               *C3 = Ws->Cont3.data(), *C4 = Ws->Cont4.data(),
               *C5 = Ws->Cont5.data();
        for (size_t I = 0; I < NL; ++I) {
          const double YDiff = YNew[I] - Y[I];
          const double Bspl = Step * K1[I] - YDiff;
          C1[I] = Y[I];
          C2[I] = YDiff;
          C3[I] = Bspl;
          C4[I] = YDiff - Step * K7[I] - Bspl;
        }
        std::fill(C5, C5 + NL, 0.0);
        for (unsigned J = 0; J < Tb.Stages; ++J) {
          const double Coef = Tb.D[J];
          if (Coef == 0.0)
            continue;
          const double Sc = Step * Coef;
          const double *Kj = Ws->K[J].data();
          for (size_t I = 0; I < NL; ++I)
            C5[I] += Sc * Kj[I];
        }
        for (unsigned Ln = 0; Ln < L; ++Ln)
          if (Act[Ln] && Observers[Ln]) {
            DopriView.bind(T, Step, Ln);
            Observers[Ln]->onStep(DopriView);
          }
      } else {
        // Cubic Hermite needs f at the right end; the evaluation doubles
        // as the next step's first stage (as in the scalar RKF45).
        Sys.rhsLanes(TNew, YNew, Ws->FNew.data());
        countRhs();
        for (unsigned Ln = 0; Ln < L; ++Ln)
          if (Act[Ln] && Observers[Ln]) {
            HermiteView.bind(T, TNew, Ln);
            Observers[Ln]->onStep(HermiteView);
          }
        K1 = Ws->FNew;
        FreshK1 = true;
      }
    }

    // Commit: advance active lanes only; masked-out lanes keep the state
    // they held when they stopped.
    if (ActiveCount == L) {
      std::copy(YNew, YNew + NL, Y);
    } else {
      for (unsigned Ln = 0; Ln < L; ++Ln) {
        if (!Act[Ln])
          continue;
        for (size_t I = 0; I < N; ++I)
          Y[I * L + Ln] = YNew[I * L + Ln];
      }
    }
    if (Tb.Fsal) {
      K1 = Ws->K[Tb.Stages - 1]; // FSAL.
      FreshK1 = true;
    } else if (!AnyObserver) {
      FreshK1 = false;
    }
    T = TNew;
    double MinScale = Opts.MaxScale;
    for (unsigned Ln = 0; Ln < L; ++Ln)
      if (Act[Ln]) {
        ++Report.Lane[Ln].Stats.AcceptedSteps;
        Report.Lane[Ln].LastStepSize = std::abs(Step);
        MinScale = std::min(MinScale, Scale[Ln]);
      }
    H = std::abs(Step) * MinScale;
  }

  // Lanes still active when the loop exits reached TEnd.
  if ((TEnd - T) * Direction <= 0)
    for (unsigned Ln = 0; Ln < L; ++Ln)
      if (Act[Ln])
        Report.Lane[Ln].FinalTime = TEnd;
  return Report;
}
