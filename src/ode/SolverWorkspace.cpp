//===- ode/SolverWorkspace.cpp --------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/SolverWorkspace.h"

#include "support/Metrics.h"

using namespace psg;

void psg::noteSolverWorkspaceReuse() {
  // Registry references are stable for the process lifetime, so the
  // lookup happens once; the per-call cost is one relaxed atomic add.
  static Counter &Reuses = metrics().counter("psg.ode.workspace_reuses");
  Reuses.add();
}
