//===- ode/OdeSystem.h - ODE system interface -------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The system interface consumed by every solver: dimension, right-hand
/// side, and (optionally) an analytic Jacobian. Reaction-based models
/// compile to this interface in psg_rbm.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_ODESYSTEM_H
#define PSG_ODE_ODESYSTEM_H

#include "linalg/Jacobian.h"
#include "linalg/Matrix.h"

#include <string>
#include <vector>

namespace psg {

/// An autonomous-or-not system dy/dt = f(t, y) of fixed dimension.
class OdeSystem {
public:
  virtual ~OdeSystem();

  /// Number of state variables.
  virtual size_t dimension() const = 0;

  /// Evaluates dy/dt = f(T, Y) into \p DyDt (both length dimension()).
  virtual void rhs(double T, const double *Y, double *DyDt) const = 0;

  /// Returns true if analyticJacobian() is implemented.
  virtual bool hasAnalyticJacobian() const { return false; }

  /// Fills \p J with df/dy at (T, Y). Only called when
  /// hasAnalyticJacobian() is true; the default aborts.
  virtual void analyticJacobian(double T, const double *Y, Matrix &J) const;

  /// Human-readable name for reports.
  virtual std::string name() const { return "ode-system"; }

  /// Fills \p J with df/dy at (T, Y), using the analytic Jacobian when
  /// available and forward differences otherwise. \p F0 must hold f(T, Y).
  /// Returns the number of extra rhs evaluations performed (0 if analytic).
  size_t jacobian(double T, const double *Y, const double *F0,
                  Matrix &J) const;
};

/// Adapts a plain callback into an OdeSystem; handy in tests and examples.
class FunctionOdeSystem : public OdeSystem {
public:
  FunctionOdeSystem(size_t Dimension, RhsFunction Rhs,
                    std::string Name = "function-system")
      : Dim(Dimension), Callback(std::move(Rhs)), SystemName(std::move(Name)) {}

  size_t dimension() const override { return Dim; }
  void rhs(double T, const double *Y, double *DyDt) const override {
    Callback(T, Y, DyDt);
  }
  std::string name() const override { return SystemName; }

private:
  size_t Dim;
  RhsFunction Callback;
  std::string SystemName;
};

} // namespace psg

#endif // PSG_ODE_ODESYSTEM_H
