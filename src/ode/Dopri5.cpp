//===- ode/Dopri5.cpp -----------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
// Coefficients follow Dormand & Prince (1980) and Hairer, Norsett & Wanner,
// "Solving Ordinary Differential Equations I" (DOPRI5).
//
//===----------------------------------------------------------------------===//

#include "ode/Dopri5.h"

#include "linalg/VectorOps.h"
#include "ode/SolverWorkspace.h"
#include "ode/StepControl.h"

#include <cmath>

using namespace psg;

namespace {
constexpr double C2 = 1.0 / 5, C3 = 3.0 / 10, C4 = 4.0 / 5, C5 = 8.0 / 9;
constexpr double A21 = 1.0 / 5;
constexpr double A31 = 3.0 / 40, A32 = 9.0 / 40;
constexpr double A41 = 44.0 / 45, A42 = -56.0 / 15, A43 = 32.0 / 9;
constexpr double A51 = 19372.0 / 6561, A52 = -25360.0 / 2187,
                 A53 = 64448.0 / 6561, A54 = -212.0 / 729;
constexpr double A61 = 9017.0 / 3168, A62 = -355.0 / 33, A63 = 46732.0 / 5247,
                 A64 = 49.0 / 176, A65 = -5103.0 / 18656;
// Row 7 doubles as the 5th-order weights (FSAL).
constexpr double A71 = 35.0 / 384, A73 = 500.0 / 1113, A74 = 125.0 / 192,
                 A75 = -2187.0 / 6784, A76 = 11.0 / 84;
// Error weights (5th minus embedded 4th order).
constexpr double E1 = 71.0 / 57600, E3 = -71.0 / 16695, E4 = 71.0 / 1920,
                 E5 = -17253.0 / 339200, E6 = 22.0 / 525, E7 = -1.0 / 40;
// Dense-output weights.
constexpr double D1 = -12715105075.0 / 11282082432.0,
                 D3 = 87487479700.0 / 32700410799.0,
                 D4 = -10690763975.0 / 1880347072.0,
                 D5 = 701980252875.0 / 199316789632.0,
                 D6 = -1453857185.0 / 822651844.0,
                 D7 = 69997945.0 / 29380423.0;

} // namespace

/// 4th-order continuous extension of a DOPRI5 step.
class Dopri5Solver::Interpolant : public StepInterpolant {
public:
  explicit Interpolant(size_t N)
      : N(N), Cont1(N), Cont2(N), Cont3(N), Cont4(N), Cont5(N) {}

  /// Rebuilds the polynomial for the step [T, T + H].
  void rebuild(double T, double H, const double *Y0, const double *Y1,
               const double *K1, const double *K3, const double *K4,
               const double *K5, const double *K6, const double *K7) {
    TBegin = T;
    TEnd = T + H;
    for (size_t I = 0; I < N; ++I) {
      const double YDiff = Y1[I] - Y0[I];
      const double Bspl = H * K1[I] - YDiff;
      Cont1[I] = Y0[I];
      Cont2[I] = YDiff;
      Cont3[I] = Bspl;
      Cont4[I] = YDiff - H * K7[I] - Bspl;
      Cont5[I] = H * (D1 * K1[I] + D3 * K3[I] + D4 * K4[I] + D5 * K5[I] +
                      D6 * K6[I] + D7 * K7[I]);
    }
  }

  double beginTime() const override { return TBegin; }
  double endTime() const override { return TEnd; }

  void evaluate(double T, double *YOut) const override {
    const double S = (T - TBegin) / (TEnd - TBegin);
    const double S1 = 1.0 - S;
    for (size_t I = 0; I < N; ++I)
      YOut[I] = Cont1[I] +
                S * (Cont2[I] +
                     S1 * (Cont3[I] + S * (Cont4[I] + S1 * Cont5[I])));
  }

private:
  size_t N;
  double TBegin = 0.0, TEnd = 0.0;
  std::vector<double> Cont1, Cont2, Cont3, Cont4, Cont5;
};

/// Per-solver working storage, reused across integrate() calls. Every
/// vector is fully written before it is read within a step, so stale
/// contents from a previous simulation cannot leak into the numerics.
struct Dopri5Solver::Workspace {
  size_t N = 0;
  std::vector<double> K1, K2, K3, K4, K5, K6, K7;
  std::vector<double> YStage, YNew, ErrVec, Stage6;
  Interpolant Interp{0};

  /// Sizes the buffers for \p Dim; returns true when already sized.
  bool prepare(size_t Dim) {
    if (Dim == N)
      return true;
    N = Dim;
    for (std::vector<double> *V :
         {&K1, &K2, &K3, &K4, &K5, &K6, &K7, &YStage, &YNew, &ErrVec,
          &Stage6})
      V->assign(Dim, 0.0);
    Interp = Interpolant(Dim);
    return false;
  }
};

Dopri5Solver::Dopri5Solver() : Ws(std::make_unique<Workspace>()) {}
Dopri5Solver::~Dopri5Solver() = default;

IntegrationResult Dopri5Solver::integrate(const OdeSystem &Sys, double T0,
                                          double TEnd, std::vector<double> &Y,
                                          const SolverOptions &Opts,
                                          StepObserver *Observer) {
  const size_t N = Sys.dimension();
  assert(Y.size() == N && "state size mismatch");
  IntegrationResult Result;
  Result.FinalTime = T0;
  if (T0 == TEnd)
    return Result;
  const double Direction = TEnd > T0 ? 1.0 : -1.0;

  if (Ws->prepare(N))
    noteSolverWorkspaceReuse();
  std::vector<double> &K1 = Ws->K1, &K2 = Ws->K2, &K3 = Ws->K3, &K4 = Ws->K4,
                      &K5 = Ws->K5, &K6 = Ws->K6, &K7 = Ws->K7;
  std::vector<double> &YStage = Ws->YStage, &YNew = Ws->YNew,
                      &ErrVec = Ws->ErrVec, &Stage6 = Ws->Stage6;

  Sys.rhs(T0, Y.data(), K1.data());
  ++Result.Stats.RhsEvaluations;
  double H = selectInitialStep(Sys, T0, Y.data(), K1.data(), TEnd, Opts,
                               /*Order=*/5, Result.Stats.RhsEvaluations);
  const double MaxStep =
      Opts.MaxStep > 0 ? Opts.MaxStep : std::abs(TEnd - T0);
  PiController Controller(/*Order=*/5, Opts.Safety, Opts.MinScale,
                          Opts.MaxScale, /*Beta=*/0.04);
  auto &Interp = Ws->Interp;

  // Hairer's stiffness counters.
  unsigned StiffHits = 0, NonStiffHits = 0;

  double T = T0;
  while ((TEnd - T) * Direction > 0) {
    if (Result.Stats.Steps >= Opts.MaxSteps) {
      Result.Status = IntegrationStatus::MaxStepsExceeded;
      Result.FinalTime = T;
      Result.LastStepSize = H;
      return Result;
    }
    H = std::min(H, MaxStep);
    double Step = Direction * H;
    if ((T + Step - TEnd) * Direction > 0)
      Step = TEnd - T;
    const double MinMagnitude = 1e-14 * std::max(1.0, std::abs(T));
    if (std::abs(Step) < MinMagnitude) {
      Result.Status = IntegrationStatus::StepSizeTooSmall;
      Result.FinalTime = T;
      return Result;
    }

    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + Step * A21 * K1[I];
    Sys.rhs(T + C2 * Step, YStage.data(), K2.data());
    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + Step * (A31 * K1[I] + A32 * K2[I]);
    Sys.rhs(T + C3 * Step, YStage.data(), K3.data());
    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + Step * (A41 * K1[I] + A42 * K2[I] + A43 * K3[I]);
    Sys.rhs(T + C4 * Step, YStage.data(), K4.data());
    for (size_t I = 0; I < N; ++I)
      YStage[I] = Y[I] + Step * (A51 * K1[I] + A52 * K2[I] + A53 * K3[I] +
                                 A54 * K4[I]);
    Sys.rhs(T + C5 * Step, YStage.data(), K5.data());
    for (size_t I = 0; I < N; ++I)
      Stage6[I] = Y[I] + Step * (A61 * K1[I] + A62 * K2[I] + A63 * K3[I] +
                                 A64 * K4[I] + A65 * K5[I]);
    Sys.rhs(T + Step, Stage6.data(), K6.data());
    for (size_t I = 0; I < N; ++I)
      YNew[I] = Y[I] + Step * (A71 * K1[I] + A73 * K3[I] + A74 * K4[I] +
                               A75 * K5[I] + A76 * K6[I]);
    Sys.rhs(T + Step, YNew.data(), K7.data()); // FSAL stage.
    Result.Stats.RhsEvaluations += 6;
    ++Result.Stats.Steps;

    for (size_t I = 0; I < N; ++I)
      ErrVec[I] = Step * (E1 * K1[I] + E3 * K3[I] + E4 * K4[I] + E5 * K5[I] +
                          E6 * K6[I] + E7 * K7[I]);
    if (!allFinite(YNew)) {
      ++Result.Stats.RejectedSteps;
      Controller.notifyRejected();
      H *= 0.1;
      if (H < MinMagnitude) {
        Result.Status = IntegrationStatus::NonFiniteState;
        Result.FinalTime = T;
        return Result;
      }
      continue;
    }

    const double Err = weightedRmsNorm2(ErrVec.data(), Y.data(), YNew.data(),
                                        N, Opts.AbsTol, Opts.RelTol);
    const double Scale = Controller.scaleFactor(Err);
    if (Err > 1.0) {
      ++Result.Stats.RejectedSteps;
      Controller.notifyRejected();
      H = std::abs(Step) * Scale;
      continue;
    }

    // Stiffness detection: h * ||f(y7) - f(y6)|| / ||y7 - y6|| estimates
    // |h * lambda| along the step; persistently > 3.25 means the step size
    // is stability- rather than accuracy-limited.
    if (Opts.EnableStiffnessDetection &&
        (Result.Stats.AcceptedSteps % 10 == 0 || StiffHits > 0)) {
      double Num = 0.0, Den = 0.0;
      for (size_t I = 0; I < N; ++I) {
        const double DK = K7[I] - K6[I];
        const double DY = YNew[I] - Stage6[I];
        Num += DK * DK;
        Den += DY * DY;
      }
      if (Den > 0.0) {
        const double HLambda = std::abs(Step) * std::sqrt(Num / Den);
        if (HLambda > 3.25) {
          NonStiffHits = 0;
          if (++StiffHits == 15) {
            Result.Status = IntegrationStatus::StiffnessDetected;
            Result.FinalTime = T;
            Result.LastStepSize = std::abs(Step);
            Result.Detail = "h*lambda stayed above 3.25 for 15 tests";
            return Result;
          }
        } else if (StiffHits > 0 && ++NonStiffHits == 6) {
          StiffHits = 0;
        }
      }
    }

    const double TNew = T + Step;
    if (Observer) {
      Interp.rebuild(T, Step, Y.data(), YNew.data(), K1.data(), K3.data(),
                     K4.data(), K5.data(), K6.data(), K7.data());
      Observer->onStep(Interp);
    }
    Y = YNew;
    K1 = K7; // FSAL.
    T = TNew;
    ++Result.Stats.AcceptedSteps;
    Result.LastStepSize = std::abs(Step);
    H = std::abs(Step) * Scale;
  }
  Result.FinalTime = TEnd;
  return Result;
}
