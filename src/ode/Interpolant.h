//===- ode/Interpolant.h - Dense output interfaces --------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense-output interfaces. After every accepted step a solver exposes an
/// interpolant valid on [TBegin, TEnd]; observers use it to sample fixed
/// output grids without constraining the solver's step sequence.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_INTERPOLANT_H
#define PSG_ODE_INTERPOLANT_H

#include <cstddef>
#include <vector>

namespace psg {

/// Evaluates the solution polynomial of one accepted step.
class StepInterpolant {
public:
  virtual ~StepInterpolant();

  /// Start of the validity interval.
  virtual double beginTime() const = 0;

  /// End of the validity interval.
  virtual double endTime() const = 0;

  /// Evaluates the interpolant at \p T in [beginTime(), endTime()] into
  /// \p YOut (length = system dimension).
  virtual void evaluate(double T, double *YOut) const = 0;
};

/// Cubic Hermite interpolant over (T0, Y0, F0) .. (T1, Y1, F1); third-order
/// accurate, used by solvers without a native dense output.
class HermiteInterpolant : public StepInterpolant {
public:
  /// Binds to caller-owned arrays; they must outlive evaluate() calls.
  HermiteInterpolant(double T0, const double *Y0, const double *F0, double T1,
                     const double *Y1, const double *F1, size_t N)
      : T0(T0), T1(T1), Y0(Y0), F0(F0), Y1(Y1), F1(F1), N(N) {}

  double beginTime() const override { return T0; }
  double endTime() const override { return T1; }
  void evaluate(double T, double *YOut) const override;

private:
  double T0, T1;
  const double *Y0, *F0, *Y1, *F1;
  size_t N;
};

/// Observer of accepted steps (dense output consumer).
class StepObserver {
public:
  virtual ~StepObserver();

  /// Called once per accepted step with the step's interpolant.
  virtual void onStep(const StepInterpolant &Interp) = 0;
};

} // namespace psg

#endif // PSG_ODE_INTERPOLANT_H
