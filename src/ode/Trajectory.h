//===- ode/Trajectory.h - Sampled trajectories ------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-grid trajectory sampling. A TrajectoryRecorder observes accepted
/// steps and evaluates each step interpolant at the output times falling
/// inside it, mirroring how GPU simulators write the species dynamics of
/// every simulation at user-requested sampling instants.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_TRAJECTORY_H
#define PSG_ODE_TRAJECTORY_H

#include "ode/Interpolant.h"

#include <cassert>
#include <vector>

namespace psg {

/// A time grid with one state row per sample.
class Trajectory {
public:
  Trajectory() = default;

  /// Creates an empty trajectory over a fixed dimension.
  explicit Trajectory(size_t Dimension) : Dim(Dimension) {}

  /// Appends a sample; \p Y must have dimension() entries.
  void addSample(double T, const double *Y);

  size_t dimension() const { return Dim; }
  size_t numSamples() const { return Times.size(); }
  bool empty() const { return Times.empty(); }

  double time(size_t Sample) const { return Times[Sample]; }
  const std::vector<double> &times() const { return Times; }

  /// Row of state values for sample \p Sample.
  const double *state(size_t Sample) const {
    assert(Sample < numSamples() && "sample out of range");
    return States.data() + Sample * Dim;
  }

  /// Value of variable \p Var at sample \p Sample.
  double value(size_t Sample, size_t Var) const {
    assert(Var < Dim && "variable out of range");
    return state(Sample)[Var];
  }

  /// Extracts the time series of one variable.
  std::vector<double> series(size_t Var) const;

private:
  size_t Dim = 0;
  std::vector<double> Times;
  std::vector<double> States; // numSamples x Dim, row-major.
};

/// Builds \p Count equally spaced output times spanning [T0, TEnd]
/// inclusive of both endpoints (Count >= 2).
std::vector<double> uniformGrid(double T0, double TEnd, size_t Count);

/// StepObserver that samples a fixed output grid through step interpolants.
///
/// Grid times must be strictly increasing. The first grid point, if equal
/// to the integration start, should be recorded by the caller through
/// recordInitial() since it precedes the first step.
class TrajectoryRecorder : public StepObserver {
public:
  /// Samples \p Grid into an internal Trajectory of width \p Dimension.
  TrajectoryRecorder(std::vector<double> Grid, size_t Dimension);

  /// Records the initial condition for a grid point at the start time.
  void recordInitial(double T0, const double *Y0);

  void onStep(const StepInterpolant &Interp) override;

  /// The samples collected so far.
  const Trajectory &trajectory() const { return Result; }

  /// True if every grid point has been recorded.
  bool complete() const { return NextIndex == Grid.size(); }

private:
  std::vector<double> Grid;
  size_t NextIndex = 0;
  Trajectory Result;
  std::vector<double> Scratch;
};

} // namespace psg

#endif // PSG_ODE_TRAJECTORY_H
