//===- ode/OdeSolver.h - Solver interface -----------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver interface. Solvers carry no *numerical* state between
/// integrate() calls — each call produces the same result as a fresh
/// instance would — but they keep a reusable workspace (stage vectors,
/// Newton matrices, multistep history buffers) sized to the last system, so
/// one solver object amortizes its allocations across a batch of
/// simulations. A solver instance is therefore not safe to share between
/// concurrently running integrations: use one instance per worker thread.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_ODESOLVER_H
#define PSG_ODE_ODESOLVER_H

#include "ode/IntegrationResult.h"
#include "ode/Interpolant.h"
#include "ode/OdeSystem.h"
#include "ode/SolverOptions.h"

#include <string>
#include <vector>

namespace psg {

/// Abstract time integrator for OdeSystem instances.
class OdeSolver {
public:
  virtual ~OdeSolver();

  /// Stable identifier used in registries and reports (e.g. "dopri5").
  virtual std::string name() const = 0;

  /// Returns true if the method handles stiff systems efficiently.
  virtual bool isImplicit() const { return false; }

  /// Integrates \p Sys from \p T0 to \p TEnd, advancing \p Y in place.
  /// \p Observer (may be null) receives dense output per accepted step.
  /// On non-Success statuses, Y holds the state at Result.FinalTime.
  virtual IntegrationResult integrate(const OdeSystem &Sys, double T0,
                                      double TEnd, std::vector<double> &Y,
                                      const SolverOptions &Opts,
                                      StepObserver *Observer = nullptr) = 0;
};

} // namespace psg

#endif // PSG_ODE_ODESOLVER_H
