//===- ode/Multistep.cpp --------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/Multistep.h"

#include "linalg/Eigen.h"
#include "linalg/VectorOps.h"
#include "ode/SolverWorkspace.h"
#include "ode/StepControl.h"
#include "support/Metrics.h"

#include <algorithm>
#include <cmath>
#ifdef PSG_MS_DEBUG
#include <cstdio>
#endif

using namespace psg;

namespace {
constexpr unsigned MaxHistory = MultistepDriver::MaxOrder + 2;

// Adams-Bashforth predictor weights, AB[q][j] multiplies f_{n-j}.
const double AB[6][5] = {
    {0, 0, 0, 0, 0},
    {1.0, 0, 0, 0, 0},
    {3.0 / 2, -1.0 / 2, 0, 0, 0},
    {23.0 / 12, -16.0 / 12, 5.0 / 12, 0, 0},
    {55.0 / 24, -59.0 / 24, 37.0 / 24, -9.0 / 24, 0},
    {1901.0 / 720, -2774.0 / 720, 2616.0 / 720, -1274.0 / 720, 251.0 / 720}};

// Adams-Moulton corrector weights, AM[q][0] multiplies f_{n+1},
// AM[q][j>0] multiplies f_{n+1-j}.
const double AM[6][5] = {
    {0, 0, 0, 0, 0},
    {1.0, 0, 0, 0, 0},
    {1.0 / 2, 1.0 / 2, 0, 0, 0},
    {5.0 / 12, 8.0 / 12, -1.0 / 12, 0, 0},
    {9.0 / 24, 19.0 / 24, -5.0 / 24, 1.0 / 24, 0},
    {251.0 / 720, 646.0 / 720, -264.0 / 720, 106.0 / 720, -19.0 / 720}};

// Milne error factor |C*| / (C - C*) for the PECE pair at each order.
const double MilneFactor[6] = {0, 0.5, 1.0 / 6, 0.1, 19.0 / 270, 27.0 / 502};

// BDF formula y_{n+1} = sum_j BdfAlpha[q][j] y_{n-j} + h BdfBeta[q] f_{n+1}.
const double BdfAlpha[6][5] = {
    {0, 0, 0, 0, 0},
    {1.0, 0, 0, 0, 0},
    {4.0 / 3, -1.0 / 3, 0, 0, 0},
    {18.0 / 11, -9.0 / 11, 2.0 / 11, 0, 0},
    {48.0 / 25, -36.0 / 25, 16.0 / 25, -3.0 / 25, 0},
    {300.0 / 137, -300.0 / 137, 200.0 / 137, -75.0 / 137, 12.0 / 137}};
const double BdfBeta[6] = {0,         1.0,       2.0 / 3,
                           6.0 / 11,  12.0 / 25, 60.0 / 137};

/// Binomial coefficient for the polynomial-extrapolation predictor.
double binomial(unsigned N, unsigned K) {
  double R = 1.0;
  for (unsigned I = 1; I <= K; ++I)
    R = R * static_cast<double>(N - K + I) / static_cast<double>(I);
  return R;
}
} // namespace

MultistepDriver::MultistepDriver(const OdeSystem &System,
                                 const SolverOptions &Options,
                                 MultistepMethod InitialMethod) {
  reset(System, Options, InitialMethod);
}

bool MultistepDriver::reset(const OdeSystem &System,
                            const SolverOptions &Options,
                            MultistepMethod InitialMethod) {
  Sys = &System;
  Opts = Options;
  Method = InitialMethod;
  const size_t Dim = System.dimension();
  // All per-run state is (re)initialized by begin(); only the buffer
  // shapes matter here.
  if (Dim == N && !YHist.empty())
    return true;
  N = Dim;
  for (std::vector<double> *V :
       {&Y, &PrevY, &PrevF, &CurrF, &YPred, &FPred, &YCorr, &Delta, &Scratch})
    V->assign(N, 0.0);
  YHist.assign(MaxHistory, std::vector<double>(N));
  FHist.assign(MaxHistory, std::vector<double>(N));
  return false;
}

void MultistepDriver::begin(double T0, const double *Y0, double TEndIn) {
  T = T0;
  TEnd = TEndIn;
  Direction = TEnd >= T0 ? 1.0 : -1.0;
  std::copy(Y0, Y0 + N, Y.begin());
  Order = 1;
  ConsecutiveAccepts = 0;
  ConsecutiveRejects = 0;
  HaveJacobian = false;
  HaveFactorization = false;
  StepsSinceJacobian = 0;
  LastNewtonRate = 0.0;
  Stats = IntegrationStats();
  Interp.reset();

  Sys->rhs(T, Y.data(), CurrF.data());
  ++Stats.RhsEvaluations;
  YHist[0] = Y;
  FHist[0] = CurrF;
  HistCount = 1;
  H = selectInitialStep(*Sys, T, Y.data(), CurrF.data(), TEnd, Opts,
                        /*Order=*/1, Stats.RhsEvaluations);
  Spacing = Direction * H;
}

bool MultistepDriver::done() const {
  return (TEnd - T) * Direction <= 0.0;
}

void MultistepDriver::switchMethod(MultistepMethod NewMethod) {
  if (Method == NewMethod)
    return;
  Method = NewMethod;
  Order = 1;
  HistCount = 1;
  YHist[0] = Y;
  FHist[0] = CurrF;
  ConsecutiveAccepts = 0;
  ConsecutiveRejects = 0;
  HaveJacobian = false;
  HaveFactorization = false;
  ++Stats.SolverSwitches;
}

void MultistepDriver::resampleHistory(double NewSpacing) {
  assert(NewSpacing != 0.0 && "zero history spacing");
  if (HistCount <= 1 || NewSpacing == Spacing) {
    Spacing = NewSpacing;
    return;
  }
  // Truncate to the rows the current order needs before resampling: a
  // high-degree interpolating polynomial evaluated outside the old span
  // (step growth) oscillates wildly, while extrapolating the degree <= q+1
  // polynomial is exactly the Nordsieck rescale and stays benign.
  HistCount = std::min<size_t>(HistCount, Order + 2);
  // Per-component Newton divided differences over nodes X[j] = -j*Spacing,
  // evaluated at -j*NewSpacing. Resample both Y and F history.
  const size_t K = HistCount;
  std::vector<double> X(K), XNew(K), Diff(K);
  for (size_t JJ = 0; JJ < K; ++JJ) {
    X[JJ] = -static_cast<double>(JJ) * Spacing;
    XNew[JJ] = -static_cast<double>(JJ) * NewSpacing;
  }
  auto resample = [&](std::vector<std::vector<double>> &Rows) {
    for (size_t I = 0; I < N; ++I) {
      for (size_t JJ = 0; JJ < K; ++JJ)
        Diff[JJ] = Rows[JJ][I];
      // Build divided differences in place.
      for (size_t Level = 1; Level < K; ++Level)
        for (size_t JJ = K - 1; JJ >= Level; --JJ)
          Diff[JJ] =
              (Diff[JJ] - Diff[JJ - 1]) / (X[JJ] - X[JJ - Level]);
      // Evaluate at the new nodes (row 0 is unchanged by construction).
      for (size_t Target = 1; Target < K; ++Target) {
        double Value = Diff[K - 1];
        for (size_t Level = K - 1; Level-- > 0;)
          Value = Value * (XNew[Target] - X[Level]) + Diff[Level];
        Rows[Target][I] = Value;
      }
    }
  };
  resample(YHist);
  resample(FHist);
  Spacing = NewSpacing;
  HaveFactorization = false; // Newton matrix depends on the step.
}

void MultistepDriver::pushHistory(const std::vector<double> &NewY,
                                  const std::vector<double> &NewF) {
  // Rotate the storage so the oldest row becomes the new front.
  std::rotate(YHist.begin(), YHist.end() - 1, YHist.end());
  std::rotate(FHist.begin(), FHist.end() - 1, FHist.end());
  YHist[0] = NewY;
  FHist[0] = NewF;
  HistCount = std::min<size_t>(HistCount + 1, MaxHistory);
}

bool MultistepDriver::solveBdfCorrector(double Hs, double TNew,
                                        IntegrationStatus &Failure) {
  const unsigned Q = Order;
  const double Beta = BdfBeta[Q];

  // Jacobian refresh policy. Adaptive (default): keep the Jacobian for
  // as long as the observed corrector convergence rate stays below
  // SlowNewtonRate — on mildly nonlinear problems the same matrix serves
  // hundreds of steps — with a step-count cap as the safety net against
  // a matrix that converges adequately but drifts. Fixed: the historical
  // 25-step cadence, kept selectable for like-for-like comparisons.
  constexpr double SlowNewtonRate = 0.3;
  constexpr uint64_t AdaptiveMaxJacobianAge = 250;
  constexpr uint64_t FixedMaxJacobianAge = 25;
  const bool Stale = Opts.AdaptiveJacobianReuse
                         ? (LastNewtonRate > SlowNewtonRate ||
                            StepsSinceJacobian > AdaptiveMaxJacobianAge)
                         : StepsSinceJacobian > FixedMaxJacobianAge;
  if (!HaveJacobian || Stale) {
    Stats.RhsEvaluations += Sys->jacobian(T, Y.data(), FHist[0].data(), J);
    ++Stats.JacobianEvaluations;
    HaveJacobian = true;
    HaveFactorization = false;
    StepsSinceJacobian = 0;
    LastNewtonRate = 0.0;
  } else {
    static Counter &JacobianReuses =
        metrics().counter("psg.ode.jacobian_reuses");
    JacobianReuses.add();
  }
  if (!HaveFactorization || FactoredH != Hs || FactoredOrder != Q) {
    Matrix M(N, N);
    for (size_t R = 0; R < N; ++R)
      for (size_t C = 0; C < N; ++C)
        M(R, C) = (R == C ? 1.0 : 0.0) - Hs * Beta * J(R, C);
    ++Stats.LuFactorizations;
    if (!Newton.factor(M)) {
      Failure = IntegrationStatus::SingularMatrix;
      return false;
    }
    HaveFactorization = true;
    FactoredH = Hs;
    FactoredOrder = Q;
  }

  // Constant part: sum of alpha_j * y_{n-j}.
  std::fill(Scratch.begin(), Scratch.end(), 0.0);
  for (unsigned JJ = 0; JJ < Q; ++JJ)
    axpy(BdfAlpha[Q][JJ], YHist[JJ].data(), Scratch.data(), N);

  YCorr = YPred;
  double DeltaNormOld = 0.0;
  for (unsigned Iter = 0; Iter < 4; ++Iter) {
    Sys->rhs(TNew, YCorr.data(), FPred.data());
    ++Stats.RhsEvaluations;
    ++Stats.NewtonIterations;
    for (size_t I = 0; I < N; ++I)
      Delta[I] = -(YCorr[I] - Hs * Beta * FPred[I] - Scratch[I]);
    Newton.solve(Delta.data());
    ++Stats.LuSolves;
    for (size_t I = 0; I < N; ++I)
      YCorr[I] += Delta[I];
    if (!allFinite(YCorr)) {
      Failure = IntegrationStatus::NewtonFailure;
      HaveJacobian = false;
      return false;
    }
    const double DeltaNorm = weightedRmsNorm(Delta.data(), Y.data(), N,
                                             Opts.AbsTol, Opts.RelTol);
    if (DeltaNorm < 0.03)
      return true;
    if (Iter > 0) {
      const double Rate = DeltaNorm / std::max(DeltaNormOld, 1e-300);
      // Feed the refresh policy: a measured multi-iteration rate is the
      // direct observation of how well the current Jacobian still models
      // the system (single-iteration convergences leave it untouched —
      // they are evidence the matrix is still good).
      LastNewtonRate = Rate;
      if (Rate >= 2.0)
        break; // Diverging.
      if (Rate < 1.0 && Rate / (1.0 - Rate) * DeltaNorm < 0.03)
        return true;
    }
    DeltaNormOld = DeltaNorm;
  }
  // Did not converge: force a Jacobian refresh for the retry.
  HaveJacobian = false;
  Failure = IntegrationStatus::NewtonFailure;
  return false;
}

void MultistepDriver::adaptOrderAfterAccept() {
  ++ConsecutiveAccepts;
  ConsecutiveRejects = 0;
  if (ConsecutiveAccepts >= Order + 2 && Order < MaxOrder &&
      HistCount >= Order + 2) {
    ++Order;
    ConsecutiveAccepts = 0;
  }
}

IntegrationStatus MultistepDriver::advance() {
  const double Span = std::abs(TEnd - T);
  for (;;) {
    if (Stats.Steps >= Opts.MaxSteps)
      return IntegrationStatus::MaxStepsExceeded;
    if (Opts.MaxStep > 0)
      H = std::min(H, Opts.MaxStep);

    const double Remaining = (TEnd - T) * Direction;
    bool HitEnd = false;
    if (H >= Remaining) {
      H = Remaining;
      HitEnd = true;
    }
    const double MinMagnitude = 1e-14 * std::max(1.0, std::abs(T));
    if (H < MinMagnitude)
      return IntegrationStatus::StepSizeTooSmall;

    const double DesiredSpacing = Direction * H;
    if (DesiredSpacing != Spacing)
      resampleHistory(DesiredSpacing);
    const double Hs = Spacing;
    const double TNew = HitEnd ? TEnd : T + Hs;
    const unsigned Q = Order;
    assert(Q >= 1 && Q <= MaxOrder && HistCount >= Q &&
           "order exceeds available history");
    ++Stats.Steps;

    double Err = 0.0;
    if (Method == MultistepMethod::Adams) {
      // Predict (AB), evaluate, correct (AM), evaluate: PECE.
      YPred = Y;
      for (unsigned JJ = 0; JJ < Q; ++JJ)
        axpy(Hs * AB[Q][JJ], FHist[JJ].data(), YPred.data(), N);
      Sys->rhs(TNew, YPred.data(), FPred.data());
      ++Stats.RhsEvaluations;
      YCorr = Y;
      axpy(Hs * AM[Q][0], FPred.data(), YCorr.data(), N);
      for (unsigned JJ = 1; JJ < Q; ++JJ)
        axpy(Hs * AM[Q][JJ], FHist[JJ - 1].data(), YCorr.data(), N);
      for (size_t I = 0; I < N; ++I)
        Delta[I] = YCorr[I] - YPred[I];
      Err = MilneFactor[Q] * weightedRmsNorm2(Delta.data(), Y.data(),
                                              YCorr.data(), N, Opts.AbsTol,
                                              Opts.RelTol);
    } else {
      // Polynomial-extrapolation predictor over up to Q+1 rows.
      const unsigned Degree = std::min<unsigned>(Q, HistCount - 1);
      std::fill(YPred.begin(), YPred.end(), 0.0);
      for (unsigned JJ = 0; JJ <= Degree; ++JJ) {
        const double Coef =
            (JJ % 2 == 0 ? 1.0 : -1.0) * binomial(Degree + 1, JJ + 1);
        axpy(Coef, YHist[JJ].data(), YPred.data(), N);
      }
      IntegrationStatus Failure = IntegrationStatus::NewtonFailure;
      if (!solveBdfCorrector(Hs, TNew, Failure)) {
        ++Stats.RejectedSteps;
        ConsecutiveAccepts = 0;
        if (++ConsecutiveRejects > 20)
          return Failure;
        H *= 0.5;
        if (Order > 1 && ConsecutiveRejects >= 2)
          --Order;
        continue;
      }
      for (size_t I = 0; I < N; ++I)
        Delta[I] = YCorr[I] - YPred[I];
      Err = weightedRmsNorm2(Delta.data(), Y.data(), YCorr.data(), N,
                             Opts.AbsTol, Opts.RelTol) /
            static_cast<double>(Degree + 1);
    }

    if (!allFinite(YCorr)) {
      ++Stats.RejectedSteps;
      ConsecutiveAccepts = 0;
      if (++ConsecutiveRejects > 20)
        return IntegrationStatus::NonFiniteState;
      H *= 0.1;
      continue;
    }

    const double Exponent = 1.0 / (static_cast<double>(Q) + 1.0);
#ifdef PSG_MS_DEBUG
    std::fprintf(stderr, "attempt T=%.6e Hs=%.3e q=%u hist=%zu err=%.3e\n", T,
                 Hs, Q, HistCount, Err);
#endif
    if (Err > 1.0) {
      ++Stats.RejectedSteps;
      ConsecutiveAccepts = 0;
      ++ConsecutiveRejects;
      double Scale = Opts.Safety * std::pow(1.0 / Err, Exponent);
      Scale = std::clamp(Scale, 0.1, 0.9);
      H = std::abs(Hs) * Scale;
      if (ConsecutiveRejects >= 2 && Order > 1)
        --Order;
      if (ConsecutiveRejects >= 3)
        HaveJacobian = false;
      if (ConsecutiveRejects > 30)
        return IntegrationStatus::StepSizeTooSmall;
      continue;
    }

    // Accepted: final function value at the new point.
    Sys->rhs(TNew, YCorr.data(), FPred.data());
    ++Stats.RhsEvaluations;
    ++Stats.AcceptedSteps;
    ++StepsSinceJacobian;

    PrevT = T;
    PrevY = Y;
    PrevF = CurrF;
    Y = YCorr;
    CurrF = FPred;
    T = TNew;
    pushHistory(Y, CurrF);
    Interp.emplace(PrevT, PrevY.data(), PrevF.data(), T, Y.data(),
                   CurrF.data(), N);

    adaptOrderAfterAccept();
    double Scale = Opts.Safety * std::pow(1.0 / std::max(Err, 1e-10),
                                          Exponent);
    Scale = std::clamp(Scale, Opts.MinScale, Opts.MaxScale);
    // Dead-band: keep h (and the history spacing and Newton matrix) unless
    // the controller asks for a substantial change.
    if (Scale > 0.9 && Scale < 1.2)
      Scale = 1.0;
    H = std::abs(Hs) * Scale;
    (void)Span;
    return IntegrationStatus::Success;
  }
}

double MultistepDriver::estimateSpectralRadius() {
  Matrix Jac;
  Stats.RhsEvaluations += Sys->jacobian(T, Y.data(), CurrF.data(), Jac);
  ++Stats.JacobianEvaluations;
  return powerIterationSpectralRadius(Jac);
}

IntegrationResult psg::runMultistep(const OdeSystem &Sys, double T0,
                                    double TEnd, std::vector<double> &Y,
                                    const SolverOptions &Opts,
                                    MultistepMethod Method,
                                    StepObserver *Observer) {
  MultistepDriver Driver;
  return runMultistep(Driver, Sys, T0, TEnd, Y, Opts, Method, Observer);
}

IntegrationResult psg::runMultistep(MultistepDriver &Driver,
                                    const OdeSystem &Sys, double T0,
                                    double TEnd, std::vector<double> &Y,
                                    const SolverOptions &Opts,
                                    MultistepMethod Method,
                                    StepObserver *Observer) {
  const size_t N = Sys.dimension();
  assert(Y.size() == N && "state size mismatch");
  (void)N;
  IntegrationResult Result;
  Result.FinalTime = T0;
  if (T0 == TEnd)
    return Result;

  if (Driver.reset(Sys, Opts, Method))
    noteSolverWorkspaceReuse();
  Driver.begin(T0, Y.data(), TEnd);
  while (!Driver.done()) {
    IntegrationStatus St = Driver.advance();
    if (St != IntegrationStatus::Success) {
      Result.Status = St;
      break;
    }
    if (Observer)
      Observer->onStep(Driver.lastStepInterpolant());
  }
  Y = Driver.state();
  Result.FinalTime = Driver.time();
  Result.LastStepSize = Driver.currentStep();
  Result.Stats = Driver.stats();
  return Result;
}

IntegrationResult AdamsSolver::integrate(const OdeSystem &Sys, double T0,
                                         double TEnd, std::vector<double> &Y,
                                         const SolverOptions &Opts,
                                         StepObserver *Observer) {
  return runMultistep(Driver, Sys, T0, TEnd, Y, Opts, MultistepMethod::Adams,
                      Observer);
}

IntegrationResult BdfSolver::integrate(const OdeSystem &Sys, double T0,
                                       double TEnd, std::vector<double> &Y,
                                       const SolverOptions &Opts,
                                       StepObserver *Observer) {
  return runMultistep(Driver, Sys, T0, TEnd, Y, Opts, MultistepMethod::Bdf,
                      Observer);
}
