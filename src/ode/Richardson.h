//===- ode/Richardson.h - Extrapolated reference solutions ------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny fixed-step Richardson-extrapolated reference integrator. Two
/// classical RK4 passes with N and 2N uniform steps are combined as
/// Y* = Y_2N + (Y_2N - Y_N) / 15, cancelling the leading O(h^4) error
/// term; N doubles until the extrapolant stabilizes. The result is an
/// adaptivity-free oracle: it shares no step-control, tolerance, or
/// workspace code with the production solvers, which makes it a suitable
/// independent reference for differential testing (psg::check).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_RICHARDSON_H
#define PSG_ODE_RICHARDSON_H

#include "ode/OdeSystem.h"
#include "ode/Trajectory.h"

#include <cstdint>

namespace psg {

/// Controls for the reference driver.
struct RichardsonOptions {
  uint64_t InitialSteps = 64;   ///< Steps of the first coarse pass.
  uint64_t MaxSteps = 1 << 21;  ///< Per-pass step budget (refinement stops).
  double AbsTol = 1e-10;        ///< Absolute stabilization tolerance.
  double RelTol = 1e-9;         ///< Relative stabilization tolerance.
};

/// Outcome of one reference computation.
struct RichardsonReference {
  std::vector<double> FinalState; ///< Extrapolated state at TEnd.
  Trajectory Dynamics;     ///< Extrapolated grid samples (grid calls only).
  double ErrorEstimate = 0.0; ///< Max mixed-norm change of the last doubling.
  uint64_t StepsPerPass = 0;  ///< Steps of the finest accepted pass.
  uint64_t RhsEvaluations = 0; ///< Total rhs work across all passes.
  bool Converged = false;      ///< False when MaxSteps hit first.
};

/// Computes the reference solution of \p Sys from \p T0 to \p TEnd
/// starting at \p Y0. When \p Grid is non-null it must be strictly
/// increasing from T0 to TEnd; every grid time is hit exactly by the
/// fixed-step passes (no interpolation) and reported in Dynamics.
/// Non-finite passes (e.g. RK4 outside its stability region on a stiff
/// system) are discarded and refinement continues, so stiff systems
/// converge once the step clears the stability bound.
RichardsonReference richardsonReference(const OdeSystem &Sys, double T0,
                                        double TEnd,
                                        const std::vector<double> &Y0,
                                        const RichardsonOptions &Opts = {},
                                        const std::vector<double> *Grid =
                                            nullptr);

} // namespace psg

#endif // PSG_ODE_RICHARDSON_H
