//===- ode/TestProblems.cpp -----------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/TestProblems.h"

#include <cmath>

using namespace psg;

namespace {
/// OdeSystem from rhs + optional analytic Jacobian callbacks.
class CallbackSystem : public OdeSystem {
public:
  using JacFunction =
      std::function<void(double, const double *, Matrix &)>;

  CallbackSystem(size_t Dim, std::string Name, RhsFunction Rhs,
                 JacFunction Jac = nullptr)
      : Dim(Dim), SystemName(std::move(Name)), Callback(std::move(Rhs)),
        JacCallback(std::move(Jac)) {}

  size_t dimension() const override { return Dim; }
  void rhs(double T, const double *Y, double *DyDt) const override {
    Callback(T, Y, DyDt);
  }
  bool hasAnalyticJacobian() const override { return JacCallback != nullptr; }
  void analyticJacobian(double T, const double *Y, Matrix &J) const override {
    J.resize(Dim, Dim);
    JacCallback(T, Y, J);
  }
  std::string name() const override { return SystemName; }

private:
  size_t Dim;
  std::string SystemName;
  RhsFunction Callback;
  JacFunction JacCallback;
};
} // namespace

TestProblem psg::makeExponentialDecay() {
  TestProblem P;
  P.System = std::make_shared<CallbackSystem>(
      1, "exp-decay",
      [](double, const double *Y, double *D) { D[0] = -Y[0]; },
      [](double, const double *, Matrix &J) { J(0, 0) = -1.0; });
  P.InitialState = {1.0};
  P.EndTime = 5.0;
  P.Reference = {std::exp(-5.0)};
  P.Exact = [](double T) { return std::vector<double>{std::exp(-T)}; };
  return P;
}

TestProblem psg::makeHarmonicOscillator() {
  TestProblem P;
  P.System = std::make_shared<CallbackSystem>(
      2, "harmonic",
      [](double, const double *Y, double *D) {
        D[0] = Y[1];
        D[1] = -Y[0];
      },
      [](double, const double *, Matrix &J) {
        J(0, 0) = 0.0;
        J(0, 1) = 1.0;
        J(1, 0) = -1.0;
        J(1, 1) = 0.0;
      });
  P.InitialState = {1.0, 0.0};
  P.EndTime = 2.0 * M_PI;
  P.Reference = {1.0, 0.0};
  P.Exact = [](double T) {
    return std::vector<double>{std::cos(T), -std::sin(T)};
  };
  return P;
}

TestProblem psg::makeRobertson() {
  TestProblem P;
  P.System = std::make_shared<CallbackSystem>(
      3, "robertson",
      [](double, const double *Y, double *D) {
        D[0] = -0.04 * Y[0] + 1e4 * Y[1] * Y[2];
        D[1] = 0.04 * Y[0] - 1e4 * Y[1] * Y[2] - 3e7 * Y[1] * Y[1];
        D[2] = 3e7 * Y[1] * Y[1];
      },
      [](double, const double *Y, Matrix &J) {
        J(0, 0) = -0.04;
        J(0, 1) = 1e4 * Y[2];
        J(0, 2) = 1e4 * Y[1];
        J(1, 0) = 0.04;
        J(1, 1) = -1e4 * Y[2] - 6e7 * Y[1];
        J(1, 2) = -1e4 * Y[1];
        J(2, 0) = 0.0;
        J(2, 1) = 6e7 * Y[1];
        J(2, 2) = 0.0;
      });
  P.InitialState = {1.0, 0.0, 0.0};
  P.EndTime = 40.0;
  // Classic reference at t = 40 (e.g. MATLAB/SUNDIALS documentation).
  P.Reference = {0.7158270688, 9.185534765e-6, 0.2841637457};
  P.Stiff = true;
  return P;
}

static TestProblem makeVanDerPol(double Mu, double EndTime, bool Stiff) {
  TestProblem P;
  P.System = std::make_shared<CallbackSystem>(
      2, Stiff ? "vdp-stiff" : "vdp-mild",
      [Mu](double, const double *Y, double *D) {
        D[0] = Y[1];
        D[1] = Mu * (1.0 - Y[0] * Y[0]) * Y[1] - Y[0];
      },
      [Mu](double, const double *Y, Matrix &J) {
        J(0, 0) = 0.0;
        J(0, 1) = 1.0;
        J(1, 0) = -2.0 * Mu * Y[0] * Y[1] - 1.0;
        J(1, 1) = Mu * (1.0 - Y[0] * Y[0]);
      });
  P.InitialState = {2.0, 0.0};
  P.EndTime = EndTime;
  P.Stiff = Stiff;
  return P;
}

TestProblem psg::makeVanDerPolStiff() {
  return makeVanDerPol(1000.0, 2000.0, /*Stiff=*/true);
}

TestProblem psg::makeVanDerPolMild() {
  return makeVanDerPol(1.0, 20.0, /*Stiff=*/false);
}

TestProblem psg::makeOregonator() {
  TestProblem P;
  P.System = std::make_shared<CallbackSystem>(
      3, "oregonator",
      [](double, const double *Y, double *D) {
        D[0] = 77.27 * (Y[1] + Y[0] * (1.0 - 8.375e-6 * Y[0] - Y[1]));
        D[1] = (Y[2] - (1.0 + Y[0]) * Y[1]) / 77.27;
        D[2] = 0.161 * (Y[0] - Y[2]);
      },
      [](double, const double *Y, Matrix &J) {
        J(0, 0) = 77.27 * (1.0 - 2.0 * 8.375e-6 * Y[0] - Y[1]);
        J(0, 1) = 77.27 * (1.0 - Y[0]);
        J(0, 2) = 0.0;
        J(1, 0) = -Y[1] / 77.27;
        J(1, 1) = -(1.0 + Y[0]) / 77.27;
        J(1, 2) = 1.0 / 77.27;
        J(2, 0) = 0.161;
        J(2, 1) = 0.0;
        J(2, 2) = -0.161;
      });
  P.InitialState = {1.0, 2.0, 3.0};
  P.EndTime = 30.0;
  P.Stiff = true;
  return P;
}

TestProblem psg::makeHires() {
  TestProblem P;
  P.System = std::make_shared<CallbackSystem>(
      8, "hires",
      [](double, const double *Y, double *D) {
        D[0] = -1.71 * Y[0] + 0.43 * Y[1] + 8.32 * Y[2] + 0.0007;
        D[1] = 1.71 * Y[0] - 8.75 * Y[1];
        D[2] = -10.03 * Y[2] + 0.43 * Y[3] + 0.035 * Y[4];
        D[3] = 8.32 * Y[1] + 1.71 * Y[2] - 1.12 * Y[3];
        D[4] = -1.745 * Y[4] + 0.43 * Y[5] + 0.43 * Y[6];
        D[5] = -280.0 * Y[5] * Y[7] + 0.69 * Y[3] + 1.71 * Y[4] -
               0.43 * Y[5] + 0.69 * Y[6];
        D[6] = 280.0 * Y[5] * Y[7] - 1.81 * Y[6];
        D[7] = -280.0 * Y[5] * Y[7] + 1.81 * Y[6];
      },
      [](double, const double *Y, Matrix &J) {
        J.setZero();
        J(0, 0) = -1.71;
        J(0, 1) = 0.43;
        J(0, 2) = 8.32;
        J(1, 0) = 1.71;
        J(1, 1) = -8.75;
        J(2, 2) = -10.03;
        J(2, 3) = 0.43;
        J(2, 4) = 0.035;
        J(3, 1) = 8.32;
        J(3, 2) = 1.71;
        J(3, 3) = -1.12;
        J(4, 4) = -1.745;
        J(4, 5) = 0.43;
        J(4, 6) = 0.43;
        J(5, 3) = 0.69;
        J(5, 4) = 1.71;
        J(5, 5) = -280.0 * Y[7] - 0.43;
        J(5, 6) = 0.69;
        J(5, 7) = -280.0 * Y[5];
        J(6, 5) = 280.0 * Y[7];
        J(6, 6) = -1.81;
        J(6, 7) = 280.0 * Y[5];
        J(7, 5) = -280.0 * Y[7];
        J(7, 6) = 1.81;
        J(7, 7) = -280.0 * Y[5];
      });
  P.InitialState = {1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0057};
  P.EndTime = 321.8122;
  // Reference from the stiff test set (Mazzia & Magherini).
  P.Reference = {0.7371312573325668e-3, 0.1442485726316185e-3,
                 0.5888729740967575e-4, 0.1175651343283149e-2,
                 0.2386356198831331e-2, 0.6238968252742796e-2,
                 0.2849998395185769e-2, 0.2850001604814231e-2};
  P.Stiff = true;
  return P;
}

TestProblem psg::makeLinearStiff(double Lambda) {
  TestProblem P;
  P.System = std::make_shared<CallbackSystem>(
      2, "linear-stiff",
      [Lambda](double, const double *Y, double *D) {
        D[0] = -Y[0];
        D[1] = -Lambda * Y[1];
      },
      [Lambda](double, const double *, Matrix &J) {
        J(0, 0) = -1.0;
        J(0, 1) = 0.0;
        J(1, 0) = 0.0;
        J(1, 1) = -Lambda;
      });
  P.InitialState = {1.0, 1.0};
  P.EndTime = 2.0;
  P.Reference = {std::exp(-2.0), std::exp(-2.0 * Lambda)};
  P.Exact = [Lambda](double T) {
    return std::vector<double>{std::exp(-T), std::exp(-Lambda * T)};
  };
  P.Stiff = Lambda > 100.0;
  return P;
}

TestProblem psg::makeLogistic(double R) {
  TestProblem P;
  P.System = std::make_shared<CallbackSystem>(
      1, "logistic",
      [R](double, const double *Y, double *D) {
        D[0] = R * Y[0] * (1.0 - Y[0]);
      },
      [R](double, const double *Y, Matrix &J) {
        J(0, 0) = R * (1.0 - 2.0 * Y[0]);
      });
  const double Y0 = 0.1;
  P.InitialState = {Y0};
  P.EndTime = 4.0;
  P.Exact = [R, Y0](double T) {
    const double E = std::exp(R * T);
    return std::vector<double>{Y0 * E / (1.0 + Y0 * (E - 1.0))};
  };
  P.Reference = P.Exact(P.EndTime);
  return P;
}

TestProblem psg::makeReversibleIsomerization(double Kf, double Kr) {
  TestProblem P;
  P.System = std::make_shared<CallbackSystem>(
      2, "reversible-iso",
      [Kf, Kr](double, const double *Y, double *D) {
        const double Flux = Kf * Y[0] - Kr * Y[1];
        D[0] = -Flux;
        D[1] = Flux;
      },
      [Kf, Kr](double, const double *, Matrix &J) {
        J(0, 0) = -Kf;
        J(0, 1) = Kr;
        J(1, 0) = Kf;
        J(1, 1) = -Kr;
      });
  const double A0 = 1.0, B0 = 0.0, Total = A0 + B0;
  P.InitialState = {A0, B0};
  P.EndTime = 3.0;
  // a(t) = a_inf + (a0 - a_inf) e^{-(kf+kr)t} with a_inf = kr/(kf+kr) total.
  P.Exact = [Kf, Kr, A0, Total](double T) {
    const double AInf = Kr / (Kf + Kr) * Total;
    const double A = AInf + (A0 - AInf) * std::exp(-(Kf + Kr) * T);
    return std::vector<double>{A, Total - A};
  };
  P.Reference = P.Exact(P.EndTime);
  return P;
}

TestProblem psg::makeBrusselatorOde(double A, double B) {
  TestProblem P;
  P.System = std::make_shared<CallbackSystem>(
      2, "brusselator-ode",
      [A, B](double, const double *Y, double *D) {
        D[0] = A + Y[0] * Y[0] * Y[1] - (B + 1.0) * Y[0];
        D[1] = B * Y[0] - Y[0] * Y[0] * Y[1];
      },
      [B](double, const double *Y, Matrix &J) {
        J(0, 0) = 2.0 * Y[0] * Y[1] - (B + 1.0);
        J(0, 1) = Y[0] * Y[0];
        J(1, 0) = B - 2.0 * Y[0] * Y[1];
        J(1, 1) = -Y[0] * Y[0];
      });
  P.InitialState = {1.5, 3.0};
  P.EndTime = 10.0;
  return P;
}

std::vector<TestProblem> psg::allTestProblems() {
  return {makeExponentialDecay(),
          makeHarmonicOscillator(),
          makeRobertson(),
          makeVanDerPolMild(),
          makeVanDerPolStiff(),
          makeOregonator(),
          makeHires(),
          makeLinearStiff(),
          makeLogistic(),
          makeReversibleIsomerization(),
          makeBrusselatorOde()};
}
