//===- ode/Dopri5.h - Dormand-Prince 5(4) -----------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Dormand-Prince 5(4) embedded pair with FSAL, native 4th-order dense
/// output, a PI step controller, and Hairer's stiffness detection. This is
/// the engine's non-stiff workhorse (phase P3); when stiffness is detected
/// the engine re-dispatches the simulation to Radau IIA (phase P4).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_DOPRI5_H
#define PSG_ODE_DOPRI5_H

#include "ode/OdeSolver.h"

#include <memory>

namespace psg {

/// Adaptive DOPRI5. If Opts.EnableStiffnessDetection is set, persistent
/// stiffness aborts the run with IntegrationStatus::StiffnessDetected and
/// the state at the abort time, letting callers re-route to an implicit
/// method.
class Dopri5Solver : public OdeSolver {
public:
  Dopri5Solver();
  ~Dopri5Solver() override;

  std::string name() const override { return "dopri5"; }

  IntegrationResult integrate(const OdeSystem &Sys, double T0, double TEnd,
                              std::vector<double> &Y,
                              const SolverOptions &Opts,
                              StepObserver *Observer = nullptr) override;

private:
  /// Stage vectors and dense-output buffers, reused across integrations.
  class Interpolant;
  struct Workspace;
  std::unique_ptr<Workspace> Ws;
};

} // namespace psg

#endif // PSG_ODE_DOPRI5_H
