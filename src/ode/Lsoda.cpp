//===- ode/Lsoda.cpp ------------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/Lsoda.h"

#include "ode/SolverWorkspace.h"

using namespace psg;

IntegrationResult LsodaSolver::integrate(const OdeSystem &Sys, double T0,
                                         double TEnd, std::vector<double> &Y,
                                         const SolverOptions &Opts,
                                         StepObserver *Observer) {
  const size_t N = Sys.dimension();
  assert(Y.size() == N && "state size mismatch");
  (void)N;
  IntegrationResult Result;
  Result.FinalTime = T0;
  if (T0 == TEnd)
    return Result;

  if (Driver.reset(Sys, Opts, MultistepMethod::Adams))
    noteSolverWorkspaceReuse();
  Driver.begin(T0, Y.data(), TEnd);

  uint64_t LastProbeStep = 0;
  uint64_t LastProbeRejects = 0;
  while (!Driver.done()) {
    IntegrationStatus St = Driver.advance();
    if (St != IntegrationStatus::Success) {
      Result.Status = St;
      break;
    }
    if (Observer)
      Observer->onStep(Driver.lastStepInterpolant());

    // Periodic stiffness probe.
    if (Driver.acceptedSteps() - LastProbeStep >= ProbeInterval) {
      const uint64_t RecentRejects =
          Driver.stats().RejectedSteps - LastProbeRejects;
      const double RejectFraction =
          static_cast<double>(RecentRejects) /
          static_cast<double>(ProbeInterval + RecentRejects);
      LastProbeStep = Driver.acceptedSteps();
      LastProbeRejects = Driver.stats().RejectedSteps;
      const double Rho = Driver.estimateSpectralRadius();
      const double HRho = Driver.currentStep() * Rho;
      if (Driver.method() == MultistepMethod::Adams) {
        // The Adams PECE stability region is O(1). Switch only when the
        // step really is stability-limited: h*rho pinned at the boundary
        // *and* the controller is fighting rejections -- or h*rho is far
        // beyond any accuracy-chosen step.
        if (HRho > 1.0 && RejectFraction > 0.15)
          Driver.switchMethod(MultistepMethod::Bdf);
      } else {
        // BDF is unconditionally stable; if the accuracy-chosen step would
        // also be stable for Adams, switch back (cheaper steps).
        if (HRho < 0.5)
          Driver.switchMethod(MultistepMethod::Adams);
      }
    }
  }
  Y = Driver.state();
  Result.FinalTime = Driver.time();
  Result.LastStepSize = Driver.currentStep();
  Result.Stats = Driver.stats();
  return Result;
}
