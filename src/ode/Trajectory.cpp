//===- ode/Trajectory.cpp -------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/Trajectory.h"

using namespace psg;

void Trajectory::addSample(double T, const double *Y) {
  Times.push_back(T);
  States.insert(States.end(), Y, Y + Dim);
}

std::vector<double> Trajectory::series(size_t Var) const {
  std::vector<double> Series(numSamples());
  for (size_t S = 0; S < numSamples(); ++S)
    Series[S] = value(S, Var);
  return Series;
}

std::vector<double> psg::uniformGrid(double T0, double TEnd, size_t Count) {
  assert(Count >= 2 && "grid needs at least the two endpoints");
  std::vector<double> Grid(Count);
  const double Span = TEnd - T0;
  for (size_t I = 0; I < Count; ++I)
    Grid[I] =
        T0 + Span * static_cast<double>(I) / static_cast<double>(Count - 1);
  Grid.back() = TEnd;
  return Grid;
}

TrajectoryRecorder::TrajectoryRecorder(std::vector<double> GridTimes,
                                       size_t Dimension)
    : Grid(std::move(GridTimes)), Result(Dimension), Scratch(Dimension) {
  for (size_t I = 1; I < Grid.size(); ++I)
    assert(Grid[I] > Grid[I - 1] && "output grid must be increasing");
}

void TrajectoryRecorder::recordInitial(double T0, const double *Y0) {
  if (NextIndex < Grid.size() && Grid[NextIndex] <= T0) {
    Result.addSample(T0, Y0);
    ++NextIndex;
  }
}

void TrajectoryRecorder::onStep(const StepInterpolant &Interp) {
  const double End = Interp.endTime();
  while (NextIndex < Grid.size() && Grid[NextIndex] <= End) {
    const double T = Grid[NextIndex];
    Interp.evaluate(T, Scratch.data());
    Result.addSample(T, Scratch.data());
    ++NextIndex;
  }
}
