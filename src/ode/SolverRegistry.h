//===- ode/SolverRegistry.h - Solver factory --------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name-based solver construction for tools, tests, and parameterized
/// benchmarks.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_SOLVERREGISTRY_H
#define PSG_ODE_SOLVERREGISTRY_H

#include "ode/OdeSolver.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace psg {

/// Creates the solver registered under \p Name; fails on unknown names.
/// Known names: rk4, rkf45, dopri5, radau5, adams, bdf, lsoda, vode.
///
/// Registry-created solvers are metered: every integrate() call records
/// step/Jacobian/switch counters and wall-time histograms under
/// "psg.ode.<name>.*" in the process-wide MetricsRegistry, and emits an
/// "ode.integrate.<name>" trace span when tracing is enabled.
ErrorOr<std::unique_ptr<OdeSolver>> createSolver(const std::string &Name);

/// All registered solver names, in a stable order.
std::vector<std::string> solverNames();

} // namespace psg

#endif // PSG_ODE_SOLVERREGISTRY_H
