//===- ode/Rkf45.h - Runge-Kutta-Fehlberg 4(5) ------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The embedded Runge-Kutta-Fehlberg 4(5) pair. This is the non-stiff
/// method of the fine-grained comparator (LASSIE pairs RKF45 with BDF1).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_RKF45_H
#define PSG_ODE_RKF45_H

#include "ode/OdeSolver.h"

#include <memory>

namespace psg {

/// Adaptive RKF45 with the tolerance-weighted RMS error norm and a PI
/// controller. Dense output is cubic Hermite.
class Rkf45Solver : public OdeSolver {
public:
  Rkf45Solver();
  ~Rkf45Solver() override;

  std::string name() const override { return "rkf45"; }

  IntegrationResult integrate(const OdeSystem &Sys, double T0, double TEnd,
                              std::vector<double> &Y,
                              const SolverOptions &Opts,
                              StepObserver *Observer = nullptr) override;

private:
  /// Stage vectors, reused across integrations.
  struct Workspace;
  std::unique_ptr<Workspace> Ws;
};

} // namespace psg

#endif // PSG_ODE_RKF45_H
