//===- ode/StepControl.h - Step-size selection ------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared step-size machinery: Hairer's automatic initial-step selection
/// and a PI (proportional-integral) error controller.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_STEPCONTROL_H
#define PSG_ODE_STEPCONTROL_H

#include "ode/OdeSystem.h"
#include "ode/SolverOptions.h"

namespace psg {

/// Selects an initial step for a method of order \p Order using the
/// algorithm of Hairer, Norsett & Wanner (II.4). Performs one extra rhs
/// evaluation; \p F0 must hold f(T0, Y0). \p RhsEvals is incremented by
/// the evaluations performed. The result is positive and at most
/// |TEnd - T0|.
double selectInitialStep(const OdeSystem &Sys, double T0, const double *Y0,
                         const double *F0, double TEnd,
                         const SolverOptions &Opts, unsigned Order,
                         uint64_t &RhsEvals);

/// PI step-size controller for embedded Runge-Kutta pairs.
class PiController {
public:
  /// \p Order is the order of the error estimator plus one (i.e. the
  /// exponent denominator); Beta is the integral gain (0 = plain I).
  PiController(unsigned Order, double Safety, double MinScale,
               double MaxScale, double Beta = 0.04);

  /// Returns the factor to scale h by, given the weighted error norm of
  /// the last attempted step (accepted iff Err <= 1).
  double scaleFactor(double Err);

  /// Records a rejection (caps the next growth at 1).
  void notifyRejected() { PreviousRejected = true; }

private:
  double Exponent;
  double Safety;
  double MinScale;
  double MaxScale;
  double Beta;
  double PreviousError = 1e-4;
  bool PreviousRejected = false;
};

} // namespace psg

#endif // PSG_ODE_STEPCONTROL_H
