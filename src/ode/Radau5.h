//===- ode/Radau5.h - Radau IIA order 5 -------------------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 3-stage Radau IIA method of order 5 (RADAU5) with simplified Newton
/// iteration. The implementation follows Hairer & Wanner, "Solving Ordinary
/// Differential Equations II", chapter IV.8: the stage system is transformed
/// so each Newton iteration solves one real and one complex N x N system
/// instead of a 3N x 3N one. This is the engine's stiff solver (phase P4).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_RADAU5_H
#define PSG_ODE_RADAU5_H

#include "ode/OdeSolver.h"

#include <memory>

namespace psg {

/// Radau IIA(5): A-stable, stiffly accurate; native cubic collocation
/// dense output through the three stage values.
class Radau5Solver : public OdeSolver {
public:
  Radau5Solver();
  ~Radau5Solver() override;

  std::string name() const override { return "radau5"; }
  bool isImplicit() const override { return true; }

  IntegrationResult integrate(const OdeSystem &Sys, double T0, double TEnd,
                              std::vector<double> &Y,
                              const SolverOptions &Opts,
                              StepObserver *Observer = nullptr) override;

private:
  /// Stage/Newton vectors, iteration matrices and their LU
  /// factorizations, reused across integrations.
  class Interpolant;
  struct Workspace;
  std::unique_ptr<Workspace> Ws;
};

namespace radau5detail {
/// Radau IIA Butcher matrix (exact, for validation tests).
Matrix butcherMatrix();
/// Collocation nodes c1, c2 (c3 = 1).
double nodeC1();
double nodeC2();
/// Eigen-structure constants of A^{-1}: the real eigenvalue and the
/// complex pair alpha +/- i*beta (after RADAU5's normalization).
double gammaReal();
double alphaComplex();
double betaComplex();
/// The 3x3 transformation matrices T and T^{-1} used by the solver
/// (row-major, T32 = 1 and T33 = 0 folded in).
Matrix transformT();
Matrix transformTInverse();
} // namespace radau5detail

} // namespace psg

#endif // PSG_ODE_RADAU5_H
