//===- ode/SolverOptions.h - Shared solver options --------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tolerances and limits shared by all solvers. The defaults match the
/// evaluation settings of this research line (absolute tolerance 1e-12,
/// relative tolerance 1e-6, at most 1e4 steps).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_SOLVEROPTIONS_H
#define PSG_ODE_SOLVEROPTIONS_H

#include <cstdint>

namespace psg {

/// Integration controls shared by every solver.
struct SolverOptions {
  double AbsTol = 1e-12;   ///< Absolute error tolerance (per component).
  double RelTol = 1e-6;    ///< Relative error tolerance.
  double InitialStep = 0;  ///< Starting step; 0 selects automatically.
  double MaxStep = 0;      ///< Cap on |h|; 0 means the full interval.
  uint64_t MaxSteps = 10000; ///< Attempted-step budget.
  double Safety = 0.9;     ///< Step controller safety factor.
  double MinScale = 0.2;   ///< Max shrink factor per step.
  double MaxScale = 5.0;   ///< Max growth factor per step.
  unsigned MaxNewtonIters = 7; ///< Implicit solver iteration cap.
  bool EnableStiffnessDetection = true; ///< DOPRI5 stiffness test on/off.
  /// Multistep (BDF/LSODA/VODE) Newton Jacobian refresh policy: when
  /// true (default) the Jacobian is reused for as long as the observed
  /// corrector convergence rate stays fast, with a large step-count
  /// safety cap (ODEPACK/VODE-style); when false it is refreshed on the
  /// historical fixed 25-step cadence. The switch exists so the two
  /// policies can be compared like-for-like (bench_micro_rhs does).
  bool AdaptiveJacobianReuse = true;
};

} // namespace psg

#endif // PSG_ODE_SOLVEROPTIONS_H
