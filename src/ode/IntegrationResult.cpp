//===- ode/IntegrationResult.cpp ------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/IntegrationResult.h"

const char *psg::integrationStatusName(IntegrationStatus Status) {
  // Exhaustive, no default: a new status without a name is a compile
  // error, not an "unknown" leaking into reports.
  switch (Status) {
  case IntegrationStatus::Success:
    return "success";
  case IntegrationStatus::MaxStepsExceeded:
    return "max-steps-exceeded";
  case IntegrationStatus::StepSizeTooSmall:
    return "step-size-too-small";
  case IntegrationStatus::NewtonFailure:
    return "newton-failure";
  case IntegrationStatus::SingularMatrix:
    return "singular-matrix";
  case IntegrationStatus::NonFiniteState:
    return "non-finite-state";
  case IntegrationStatus::StiffnessDetected:
    return "stiffness-detected";
  case IntegrationStatus::Aborted:
    return "aborted";
  }
  __builtin_unreachable();
}
