//===- ode/OdeSolver.cpp --------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/OdeSolver.h"

using namespace psg;

OdeSolver::~OdeSolver() = default;
