//===- ode/IntegrationResult.h - Solver outcomes ----------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration outcome and operation statistics. The statistics are the
/// contract between the numerical layer and the vgpu cost model: every
/// countable operation a CUDA kernel would perform is tallied here.
///
//===----------------------------------------------------------------------===//

#ifndef PSG_ODE_INTEGRATIONRESULT_H
#define PSG_ODE_INTEGRATIONRESULT_H

#include <cstdint>
#include <string>

namespace psg {

/// Why an integration stopped.
enum class IntegrationStatus {
  Success,          ///< Reached the requested end time.
  MaxStepsExceeded, ///< Step budget exhausted before the end time.
  StepSizeTooSmall, ///< Controller pushed h below the representable floor.
  NewtonFailure,    ///< Implicit solve failed repeatedly.
  SingularMatrix,   ///< Newton/iteration matrix could not be factored.
  NonFiniteState,   ///< NaN/Inf appeared in the state.
  StiffnessDetected, ///< Explicit solver flagged stiffness (engine re-routes).
  Aborted           ///< Execution layer gave up (e.g. a sweep shard was
                    ///< dropped after exhausting its re-queue budget).
};

/// Short human-readable name for \p Status.
const char *integrationStatusName(IntegrationStatus Status);

/// Returns true for terminal statuses that still leave a usable state
/// (Success, MaxStepsExceeded used as a segment boundary).
inline bool isRecoverable(IntegrationStatus Status) {
  return Status == IntegrationStatus::Success ||
         Status == IntegrationStatus::MaxStepsExceeded ||
         Status == IntegrationStatus::StiffnessDetected;
}

/// Operation counts accumulated over an integration.
struct IntegrationStats {
  uint64_t Steps = 0;          ///< Attempted steps.
  uint64_t AcceptedSteps = 0;  ///< Accepted steps.
  uint64_t RejectedSteps = 0;  ///< Error- or Newton-rejected steps.
  uint64_t RhsEvaluations = 0; ///< f(t, y) evaluations.
  uint64_t JacobianEvaluations = 0; ///< Analytic or FD Jacobians formed.
  uint64_t LuFactorizations = 0;    ///< Real-valued LU factorizations.
  uint64_t ComplexLuFactorizations = 0; ///< Complex LU factorizations.
  uint64_t LuSolves = 0;                ///< Triangular solve pairs (any type).
  uint64_t NewtonIterations = 0;        ///< Simplified-Newton iterations.
  uint64_t SolverSwitches = 0;          ///< LSODA-style method switches.

  /// Accumulates \p Other into this.
  void merge(const IntegrationStats &Other) {
    Steps += Other.Steps;
    AcceptedSteps += Other.AcceptedSteps;
    RejectedSteps += Other.RejectedSteps;
    RhsEvaluations += Other.RhsEvaluations;
    JacobianEvaluations += Other.JacobianEvaluations;
    LuFactorizations += Other.LuFactorizations;
    ComplexLuFactorizations += Other.ComplexLuFactorizations;
    LuSolves += Other.LuSolves;
    NewtonIterations += Other.NewtonIterations;
    SolverSwitches += Other.SolverSwitches;
  }
};

/// Result of one integrate() call.
struct IntegrationResult {
  IntegrationStatus Status = IntegrationStatus::Success;
  IntegrationStats Stats;
  double FinalTime = 0.0;    ///< Time actually reached.
  double LastStepSize = 0.0; ///< Last accepted step size (0 if none).
  std::string Detail;        ///< Optional failure detail.

  bool ok() const { return Status == IntegrationStatus::Success; }
};

} // namespace psg

#endif // PSG_ODE_INTEGRATIONRESULT_H
