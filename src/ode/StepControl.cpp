//===- ode/StepControl.cpp ------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/StepControl.h"

#include "linalg/VectorOps.h"

#include <algorithm>
#include <cmath>
#include <vector>

using namespace psg;

double psg::selectInitialStep(const OdeSystem &Sys, double T0,
                              const double *Y0, const double *F0, double TEnd,
                              const SolverOptions &Opts, unsigned Order,
                              uint64_t &RhsEvals) {
  const size_t N = Sys.dimension();
  const double Span = std::abs(TEnd - T0);
  const double Direction = TEnd >= T0 ? 1.0 : -1.0;
  if (Opts.InitialStep > 0)
    return std::min(Opts.InitialStep, Span);

  // d0 = ||y0||, d1 = ||f0|| in the tolerance-weighted norm.
  const double D0 = weightedRmsNorm(Y0, Y0, N, Opts.AbsTol, Opts.RelTol);
  const double D1 = weightedRmsNorm(F0, Y0, N, Opts.AbsTol, Opts.RelTol);
  double H0 = (D0 < 1e-5 || D1 < 1e-5) ? 1e-6 : 0.01 * (D0 / D1);
  H0 = std::min(H0, Span);

  // One explicit Euler step to probe the second derivative.
  std::vector<double> Y1(N), F1(N);
  for (size_t I = 0; I < N; ++I)
    Y1[I] = Y0[I] + Direction * H0 * F0[I];
  Sys.rhs(T0 + Direction * H0, Y1.data(), F1.data());
  ++RhsEvals;

  std::vector<double> Diff(N);
  for (size_t I = 0; I < N; ++I)
    Diff[I] = F1[I] - F0[I];
  const double D2 =
      weightedRmsNorm(Diff.data(), Y0, N, Opts.AbsTol, Opts.RelTol) / H0;

  const double DMax = std::max(D1, D2);
  double H1 = DMax <= 1e-15
                  ? std::max(1e-6, H0 * 1e-3)
                  : std::pow(0.01 / DMax, 1.0 / (Order + 1.0));
  double H = std::min({100.0 * H0, H1, Span});
  if (Opts.MaxStep > 0)
    H = std::min(H, Opts.MaxStep);
  return H;
}

PiController::PiController(unsigned Order, double SafetyFactor,
                           double MinScaleFactor, double MaxScaleFactor,
                           double BetaGain)
    : Exponent(1.0 / static_cast<double>(Order)), Safety(SafetyFactor),
      MinScale(MinScaleFactor), MaxScale(MaxScaleFactor), Beta(BetaGain) {}

double PiController::scaleFactor(double Err) {
  const double Floor = 1e-10;
  Err = std::max(Err, Floor);
  double Scale = Safety * std::pow(Err, -(Exponent - 0.75 * Beta)) *
                 std::pow(PreviousError, Beta);
  Scale = std::clamp(Scale, MinScale, MaxScale);
  if (Err <= 1.0) {
    // Accepted: remember the error; cap growth after a rejection.
    if (PreviousRejected)
      Scale = std::min(Scale, 1.0);
    PreviousRejected = false;
    PreviousError = Err;
  }
  return Scale;
}
