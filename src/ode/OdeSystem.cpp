//===- ode/OdeSystem.cpp --------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "ode/OdeSystem.h"

#include "support/Error.h"
#include "support/Metrics.h"

using namespace psg;

OdeSystem::~OdeSystem() = default;

void OdeSystem::analyticJacobian(double, const double *, Matrix &) const {
  fatalError("analyticJacobian() called on a system without one");
}

size_t OdeSystem::jacobian(double T, const double *Y, const double *F0,
                           Matrix &J) const {
  if (hasAnalyticJacobian()) {
    analyticJacobian(T, Y, J);
    return 0;
  }
  RhsFunction Callback = [this](double Time, const double *State,
                                double *DyDt) { rhs(Time, State, DyDt); };
  const size_t Evals = numericJacobian(Callback, T, Y, F0, dimension(), J);
  // Finite-difference fallbacks cost one rhs sweep per column; the
  // counter makes systems silently missing an analytic Jacobian visible
  // in --metrics-json.
  static Counter &FdEvals = metrics().counter("psg.ode.fd_jacobian_evals");
  FdEvals.add(Evals);
  return Evals;
}
