//===- sim/Simulators.cpp -------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulators.h"

#include "device/HostRuntime.h"
#include "linalg/Eigen.h"
#include "sim/WorkProfile.h"
#include "support/Metrics.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>

using namespace psg;

namespace {
/// Resolves the shared compiled model for a batch: reuses the caller's
/// compilation when the spec carries one (the engine's zero-recompile
/// path), or compiles the network once for the whole batch.
std::shared_ptr<const CompiledModel> resolveModel(const BatchSpec &Spec) {
  if (Spec.Compiled) {
    static Counter &Reuses = metrics().counter("psg.rbm.compile_reuses");
    Reuses.add();
    return Spec.Compiled;
  }
  return compileModel(*Spec.Model);
}

/// Applies the Index-th parameterization of \p Spec to \p Sys and returns
/// the matching initial state. Views persist across simulations, so a
/// missing rate-constant set must restore the model defaults rather than
/// inherit whatever the previous simulation wrote.
std::vector<double> configureSimulation(const BatchSpec &Spec,
                                        CompiledOdeSystem &Sys,
                                        size_t Index) {
  if (Index < Spec.RateConstantSets.size())
    Sys.setRateConstants(Spec.RateConstantSets[Index].data(),
                         Spec.RateConstantSets[Index].size());
  else
    Sys.resetRateConstants();
  if (Index < Spec.InitialStates.size())
    return Spec.InitialStates[Index];
  return Spec.Model->initialState();
}

/// Runs one simulation with \p Solver, recording a trajectory when
/// requested. Returns the outcome.
SimulationOutcome runOne(const BatchSpec &Spec, CompiledOdeSystem &Sys,
                         OdeSolver &Solver, std::vector<double> Y) {
  SimulationOutcome Out;
  Out.SolverUsed = Solver.name();
  if (Spec.OutputSamples > 0) {
    TrajectoryRecorder Recorder(
        uniformGrid(Spec.StartTime, Spec.EndTime, Spec.OutputSamples),
        Sys.dimension());
    Recorder.recordInitial(Spec.StartTime, Y.data());
    Out.Result = Solver.integrate(Sys, Spec.StartTime, Spec.EndTime, Y,
                                  Spec.Options, &Recorder);
    Out.Dynamics = Recorder.trajectory();
  } else {
    Out.Result = Solver.integrate(Sys, Spec.StartTime, Spec.EndTime, Y,
                                  Spec.Options);
  }
  return Out;
}

/// Outcome storage for one batch: adopts the recycled vector from
/// Spec.OutcomeBuffer when present (streaming runs hand the previous
/// sub-batch's released storage back) before sizing it to the batch.
std::vector<SimulationOutcome> makeOutcomeStorage(const BatchSpec &Spec) {
  std::vector<SimulationOutcome> Outcomes;
  if (Spec.OutcomeBuffer) {
    static Counter &BufferReuses =
        metrics().counter("psg.sim.outcome_buffer_reuses");
    Outcomes = std::move(*Spec.OutcomeBuffer);
    Outcomes.clear();
    if (Outcomes.capacity() > 0)
      BufferReuses.add();
  }
  Outcomes.resize(Spec.Batch);
  return Outcomes;
}

/// Assembles the common parts of a BatchResult.
BatchResult finalizeBatch(const BatchSpec &Spec, const CostModel &Model,
                          Backend B, const CompiledModel &Compiled,
                          std::vector<SimulationOutcome> Outcomes,
                          double WallSeconds) {
  BatchResult R;
  R.Outcomes = std::move(Outcomes);
  for (const SimulationOutcome &O : R.Outcomes) {
    R.TotalStats.merge(O.Result.Stats);
    if (!O.Result.ok())
      ++R.Failures;
  }
  R.AverageWork = computeSimulationWork(Compiled, R.TotalStats, Spec.Batch,
                                        Spec.OutputSamples);
  R.IntegrationTime = Model.integrationTime(B, R.AverageWork, Spec.Batch);
  R.SimulationTime = Model.simulationTime(B, R.AverageWork, Spec.Batch);
  R.HostWallSeconds = WallSeconds;
  return R;
}

/// Private runtime for a personality constructed without one: the host
/// runtime over the modeled GPU spec — exactly the VirtualDevice the
/// pre-runtime simulators owned directly.
std::shared_ptr<DeviceRuntime> makeOwnRuntime(const CostModel &Model,
                                              unsigned HostWorkers) {
  return std::make_shared<HostRuntime>(Model.gpu(), HostWorkers);
}
} // namespace

Simulator::~Simulator() = default;

//===----------------------------------------------------------------------===//
// CPU baselines.
//===----------------------------------------------------------------------===//

CpuSolverSimulator::CpuSolverSimulator(std::string Solver,
                                       std::string Display, CostModel M)
    : SolverName(std::move(Solver)), DisplayName(std::move(Display)),
      Model(std::move(M)) {}

BatchResult CpuSolverSimulator::run(const BatchSpec &Spec) {
  assert(Spec.Model && Spec.Batch > 0 && "malformed batch spec");
  WallTimer Timer;
  std::vector<SimulationOutcome> Outcomes = makeOutcomeStorage(Spec);
  std::shared_ptr<const CompiledModel> Shared = resolveModel(Spec);
  Workers.ensure(1);
  SimWorkerSlot &Slot = Workers[0];
  CompiledOdeSystem &Sys = Slot.bind(Shared);
  OdeSolver &Solver = Slot.solver(SolverName);
  for (uint64_t I = 0; I < Spec.Batch; ++I) {
    std::vector<double> Y = configureSimulation(Spec, Sys, I);
    Outcomes[I] = runOne(Spec, Sys, Solver, std::move(Y));
  }
  return finalizeBatch(Spec, Model, Backend::CpuSerial, *Shared,
                       std::move(Outcomes), Timer.seconds());
}

//===----------------------------------------------------------------------===//
// Lane-batched CPU (lockstep SIMD lanes).
//===----------------------------------------------------------------------===//

SimdLaneSimulator::SimdLaneSimulator(CostModel M, unsigned LaneWidth,
                                     unsigned HostWorkers)
    : Model(std::move(M)), Runtime(makeOwnRuntime(Model, HostWorkers)),
      LaneWidth(LaneWidth) {
  assert(LaneWidth >= 1 && "need at least one lane");
}

SimdLaneSimulator::SimdLaneSimulator(CostModel M,
                                     std::shared_ptr<DeviceRuntime> R,
                                     unsigned LaneWidth)
    : Model(std::move(M)), Runtime(std::move(R)), LaneWidth(LaneWidth) {
  assert(Runtime && "runtime-handle constructor needs a runtime");
  assert(LaneWidth >= 1 && "need at least one lane");
}

BatchResult SimdLaneSimulator::run(const BatchSpec &Spec) {
  assert(Spec.Model && Spec.Batch > 0 && "malformed batch spec");
  WallTimer Timer;
  std::vector<SimulationOutcome> Outcomes = makeOutcomeStorage(Spec);
  std::shared_ptr<const CompiledModel> Shared = resolveModel(Spec);
  const unsigned L = LaneWidth;
  const uint64_t Groups = (Spec.Batch + L - 1) / L;
  const std::vector<double> DefaultY0 = Spec.Model->initialState();
  Workers.ensure(Runtime->hostParallelism());

  MetricsRegistry &M = metrics();
  Counter &Replays = M.counter("psg.sim.lane_step_replays");
  Counter &Fallbacks = M.counter("psg.sim.lane_fallbacks");
  Gauge &Occupancy = M.gauge("psg.sim.lane_occupancy");
  std::atomic<uint64_t> ActiveSteps{0}, SlotSteps{0};

  // One virtual thread per lane group: deterministic grouping (lane l of
  // group g is simulation g*L + l), so reruns and warm/cold reruns see
  // identical lockstep cohorts.
  Runtime->launchKernel({"simd-lane-batch", Groups, 32}, [&](KernelContext
                                                                 &Ctx) {
    const uint64_t G = Ctx.threadIndex();
    SimWorkerSlot &Slot = Workers[Ctx.workerIndex()];
    LaneBatchOdeSystem &Sys = Slot.laneSystem(Shared, L);
    LockstepDriver &Driver = Slot.lockstep(LockstepTableau::Dopri5);
    const size_t N = Sys.dimension();
    const uint64_t First = G * L;
    const unsigned Count =
        static_cast<unsigned>(std::min<uint64_t>(L, Spec.Batch - First));

    // Scatter each lane's parameterization and initial state into SoA.
    // Ragged final groups pad with inactive copies of lane 0 so every
    // lane computes finite arithmetic.
    LaneBuffer Y(N * L);
    std::vector<bool> Active(L, false);
    std::vector<std::optional<TrajectoryRecorder>> Recorders(L);
    std::vector<StepObserver *> Obs(L, nullptr);
    for (unsigned Ln = 0; Ln < L; ++Ln) {
      const uint64_t I = First + std::min<unsigned>(Ln, Count - 1);
      if (I < Spec.RateConstantSets.size())
        Sys.setLaneRateConstants(Ln, Spec.RateConstantSets[I].data(),
                                 Spec.RateConstantSets[I].size());
      else
        Sys.resetLaneRateConstants(Ln);
      const std::vector<double> &Y0 =
          I < Spec.InitialStates.size() ? Spec.InitialStates[I] : DefaultY0;
      for (size_t S = 0; S < N; ++S)
        Y[S * L + Ln] = Y0[S];
      if (Ln < Count) {
        Active[Ln] = true;
        if (Spec.OutputSamples > 0) {
          Recorders[Ln].emplace(
              uniformGrid(Spec.StartTime, Spec.EndTime, Spec.OutputSamples),
              N);
          Recorders[Ln]->recordInitial(Spec.StartTime, Y0.data());
          Obs[Ln] = &*Recorders[Ln];
        }
      }
    }

    LaneIntegrationReport Report = Driver.integrate(
        Sys, Spec.StartTime, Spec.EndTime, Y.data(), Spec.Options, Active,
        Spec.OutputSamples > 0 ? Obs.data() : nullptr);
    ActiveSteps.fetch_add(Report.ActiveLaneSteps,
                          std::memory_order_relaxed);
    SlotSteps.fetch_add(Report.LaneSlotSteps, std::memory_order_relaxed);
    if (Report.LaneStepReplays > 0)
      Replays.add(Report.LaneStepReplays);

    for (unsigned Ln = 0; Ln < Count; ++Ln) {
      const uint64_t I = First + Ln;
      SimulationOutcome Local;
      Local.Result = std::move(Report.Lane[Ln]);
      Local.SolverUsed = "lockstep-dopri5";
      if (Local.Result.ok()) {
        if (Recorders[Ln])
          Local.Dynamics = Recorders[Ln]->trajectory();
      } else {
        // The lockstep could not finish this lane (stiffness, vanishing
        // shared step): re-run it scalar, keeping the lockstep cost —
        // the same accounting as gpu-fine's BDF fallback.
        Fallbacks.add();
        const IntegrationStats LockstepCost = Local.Result.Stats;
        CompiledOdeSystem &Scalar = Slot.bind(Shared);
        std::vector<double> Y0 = configureSimulation(Spec, Scalar, I);
        Local = runOne(Spec, Scalar, Slot.solver("lsoda"), std::move(Y0));
        Local.Result.Stats.merge(LockstepCost);
        ++Local.Result.Stats.SolverSwitches;
      }
      Outcomes[I] = std::move(Local);
    }
  });

  const uint64_t Slots = SlotSteps.load(std::memory_order_relaxed);
  if (Slots > 0)
    Occupancy.set(static_cast<double>(
                      ActiveSteps.load(std::memory_order_relaxed)) /
                  static_cast<double>(Slots));
  return finalizeBatch(Spec, Model, Backend::CpuSimdLanes, *Shared,
                       std::move(Outcomes), Timer.seconds());
}

//===----------------------------------------------------------------------===//
// Coarse-grained GPU (cupSODA-like).
//===----------------------------------------------------------------------===//

CoarseGpuSimulator::CoarseGpuSimulator(CostModel M, unsigned HostWorkers)
    : Model(std::move(M)), Runtime(makeOwnRuntime(Model, HostWorkers)) {}

CoarseGpuSimulator::CoarseGpuSimulator(CostModel M,
                                       std::shared_ptr<DeviceRuntime> R)
    : Model(std::move(M)), Runtime(std::move(R)) {
  assert(Runtime && "runtime-handle constructor needs a runtime");
}

BatchResult CoarseGpuSimulator::run(const BatchSpec &Spec) {
  assert(Spec.Model && Spec.Batch > 0 && "malformed batch spec");
  WallTimer Timer;
  std::vector<SimulationOutcome> Outcomes = makeOutcomeStorage(Spec);
  std::shared_ptr<const CompiledModel> Shared = resolveModel(Spec);
  Workers.ensure(Runtime->hostParallelism());
  Runtime->launchKernel({"cupsoda-batch", Spec.Batch, 32},
                        [&](KernelContext &Ctx) {
                          const size_t I = Ctx.threadIndex();
                          SimWorkerSlot &Slot = Workers[Ctx.workerIndex()];
                          CompiledOdeSystem &Sys = Slot.bind(Shared);
                          std::vector<double> Y =
                              configureSimulation(Spec, Sys, I);
                          // Build the outcome locally and publish it once:
                          // neighbouring threads write adjacent Outcomes
                          // slots, and incremental writes would ping-pong
                          // the shared cache line.
                          SimulationOutcome Local = runOne(
                              Spec, Sys, Slot.solver("lsoda"), std::move(Y));
                          Outcomes[I] = std::move(Local);
                        });
  return finalizeBatch(Spec, Model, Backend::GpuCoarse, *Shared,
                       std::move(Outcomes), Timer.seconds());
}

//===----------------------------------------------------------------------===//
// Fine-grained GPU (LASSIE-like).
//===----------------------------------------------------------------------===//

FineGpuSimulator::FineGpuSimulator(CostModel M, unsigned HostWorkers)
    : Model(std::move(M)), Runtime(makeOwnRuntime(Model, HostWorkers)) {}

FineGpuSimulator::FineGpuSimulator(CostModel M,
                                   std::shared_ptr<DeviceRuntime> R)
    : Model(std::move(M)), Runtime(std::move(R)) {
  assert(Runtime && "runtime-handle constructor needs a runtime");
}

BatchResult FineGpuSimulator::run(const BatchSpec &Spec) {
  assert(Spec.Model && Spec.Batch > 0 && "malformed batch spec");
  WallTimer Timer;
  std::vector<SimulationOutcome> Outcomes = makeOutcomeStorage(Spec);
  std::shared_ptr<const CompiledModel> Shared = resolveModel(Spec);
  Workers.ensure(Runtime->hostParallelism());
  // Fine-grained tools process one simulation at a time; each simulation
  // runs as one kernel pipeline whose threads are the ODEs.
  for (uint64_t I = 0; I < Spec.Batch; ++I) {
    Runtime->launchKernel(
        {"lassie-sim", std::max<uint64_t>(Shared->NumSpecies, 1), 32},
        [&](KernelContext &Ctx) {
          if (Ctx.threadIndex() != 0)
            return; // The numerics run once; threads model ODE lanes.
          SimWorkerSlot &Slot = Workers[Ctx.workerIndex()];
          CompiledOdeSystem &Sys = Slot.bind(Shared);
          std::vector<double> Y = configureSimulation(Spec, Sys, I);
          SimulationOutcome Local =
              runOne(Spec, Sys, Slot.solver("rkf45"), Y);
          if (!Local.Result.ok()) {
            // LASSIE switches to first-order BDF under stiffness.
            const IntegrationStats ExplicitCost = Local.Result.Stats;
            metrics().counter("psg.engine.stiffness_reroutes").add();
            Local = runOne(Spec, Sys, Slot.solver("bdf"),
                           configureSimulation(Spec, Sys, I));
            Local.Result.Stats.merge(ExplicitCost);
            ++Local.Result.Stats.SolverSwitches;
          }
          Outcomes[I] = std::move(Local);
        });
  }
  return finalizeBatch(Spec, Model, Backend::GpuFine, *Shared,
                       std::move(Outcomes), Timer.seconds());
}

//===----------------------------------------------------------------------===//
// Fine+coarse engine (the paper's contribution).
//===----------------------------------------------------------------------===//

FineCoarseSimulator::FineCoarseSimulator(CostModel M, unsigned HostWorkers)
    : Model(std::move(M)), Runtime(makeOwnRuntime(Model, HostWorkers)) {}

FineCoarseSimulator::FineCoarseSimulator(CostModel M,
                                         std::shared_ptr<DeviceRuntime> R)
    : Model(std::move(M)), Runtime(std::move(R)) {
  assert(Runtime && "runtime-handle constructor needs a runtime");
}

BatchResult FineCoarseSimulator::run(const BatchSpec &Spec) {
  assert(Spec.Model && Spec.Batch > 0 && "malformed batch spec");
  WallTimer Timer;
  std::vector<SimulationOutcome> Outcomes = makeOutcomeStorage(Spec);
  MetricsRegistry &M = metrics();
  Counter &RoutedExplicit = M.counter("psg.engine.routed_explicit");
  Counter &RoutedImplicit = M.counter("psg.engine.routed_implicit");
  Counter &StiffnessReroutes = M.counter("psg.engine.stiffness_reroutes");

  // P1 happens once per batch in resolveModel (or once per network when
  // the engine passes a cached compilation down); each host worker holds
  // a persistent parameterized view of the shared model. P2-P4 run inside
  // one parent grid: the P2 routing heuristic, the explicit path, and the
  // implicit path with re-dispatch of failed explicit simulations.
  std::shared_ptr<const CompiledModel> Shared = resolveModel(Spec);
  Workers.ensure(Runtime->hostParallelism());
  Runtime->launchKernel({"psg-engine-batch", Spec.Batch, 32},
                        [&](KernelContext &Ctx) {
    const size_t I = Ctx.threadIndex();
    SimWorkerSlot &Slot = Workers[Ctx.workerIndex()];
    CompiledOdeSystem &Sys = Slot.bind(Shared);
    std::vector<double> Y = configureSimulation(Spec, Sys, I);
    SimulationOutcome Local;

    bool UseImplicit = ForcedMethod == "radau5";
    IntegrationStats RoutingCost;
    if (ForcedMethod == "auto") {
      // P2: dominant eigenvalue of the Jacobian at the initial state.
      std::vector<double> F0(Sys.dimension());
      Sys.rhs(Spec.StartTime, Y.data(), F0.data());
      ++RoutingCost.RhsEvaluations;
      Matrix J;
      RoutingCost.RhsEvaluations +=
          Sys.jacobian(Spec.StartTime, Y.data(), F0.data(), J);
      ++RoutingCost.JacobianEvaluations;
      UseImplicit = powerIterationSpectralRadius(J) >= StiffnessThreshold;
    }

    if (!UseImplicit) {
      // P3: DOPRI5 with stiffness detection enabled.
      RoutedExplicit.add();
      Local = runOne(Spec, Sys, Slot.solver("dopri5"), Y);
      if (!Local.Result.ok()) {
        // Re-dispatch to P4 from the initial state, keeping the cost of
        // the failed explicit attempt.
        RoutingCost.merge(Local.Result.Stats);
        ++RoutingCost.SolverSwitches;
        StiffnessReroutes.add();
        UseImplicit = true;
        Y = configureSimulation(Spec, Sys, I);
      }
    } else {
      RoutedImplicit.add();
    }
    if (UseImplicit) {
      // P4: Radau IIA.
      Local = runOne(Spec, Sys, Slot.solver("radau5"), std::move(Y));
    }
    Local.Result.Stats.merge(RoutingCost);
    Outcomes[I] = std::move(Local);
  });
  // P5: collection happened through the recorders.
  return finalizeBatch(Spec, Model, Backend::GpuFineCoarse, *Shared,
                       std::move(Outcomes), Timer.seconds());
}

//===----------------------------------------------------------------------===//
// Factories.
//===----------------------------------------------------------------------===//

std::vector<std::unique_ptr<Simulator>>
psg::createAllSimulators(const CostModel &Model) {
  std::vector<std::unique_ptr<Simulator>> All;
  All.push_back(
      std::make_unique<CpuSolverSimulator>("lsoda", "cpu-lsoda", Model));
  All.push_back(
      std::make_unique<CpuSolverSimulator>("vode", "cpu-vode", Model));
  All.push_back(std::make_unique<SimdLaneSimulator>(Model));
  All.push_back(std::make_unique<CoarseGpuSimulator>(Model));
  All.push_back(std::make_unique<FineGpuSimulator>(Model));
  All.push_back(std::make_unique<FineCoarseSimulator>(Model));
  return All;
}

ErrorOr<std::unique_ptr<Simulator>>
psg::createSimulator(const std::string &Name, const CostModel &Model,
                     unsigned HostWorkers,
                     std::shared_ptr<DeviceRuntime> Runtime) {
  if (Name == "cpu-lsoda")
    return std::unique_ptr<Simulator>(
        std::make_unique<CpuSolverSimulator>("lsoda", "cpu-lsoda", Model));
  if (Name == "cpu-vode")
    return std::unique_ptr<Simulator>(
        std::make_unique<CpuSolverSimulator>("vode", "cpu-vode", Model));
  if (Name == "simd-lanes") {
    if (Runtime)
      return std::unique_ptr<Simulator>(std::make_unique<SimdLaneSimulator>(
          Model, std::move(Runtime), /*LaneWidth=*/8));
    return std::unique_ptr<Simulator>(std::make_unique<SimdLaneSimulator>(
        Model, /*LaneWidth=*/8, HostWorkers));
  }
  if (Name == "gpu-coarse") {
    if (Runtime)
      return std::unique_ptr<Simulator>(
          std::make_unique<CoarseGpuSimulator>(Model, std::move(Runtime)));
    return std::unique_ptr<Simulator>(
        std::make_unique<CoarseGpuSimulator>(Model, HostWorkers));
  }
  if (Name == "gpu-fine") {
    if (Runtime)
      return std::unique_ptr<Simulator>(
          std::make_unique<FineGpuSimulator>(Model, std::move(Runtime)));
    return std::unique_ptr<Simulator>(
        std::make_unique<FineGpuSimulator>(Model, HostWorkers));
  }
  if (Name == "psg-engine") {
    if (Runtime)
      return std::unique_ptr<Simulator>(
          std::make_unique<FineCoarseSimulator>(Model, std::move(Runtime)));
    return std::unique_ptr<Simulator>(
        std::make_unique<FineCoarseSimulator>(Model, HostWorkers));
  }
  return ErrorOr<std::unique_ptr<Simulator>>::failure(
      "unknown simulator '" + Name + "'");
}
