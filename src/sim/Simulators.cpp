//===- sim/Simulators.cpp -------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "sim/Simulators.h"

#include "linalg/Eigen.h"
#include "ode/SolverRegistry.h"
#include "sim/WorkProfile.h"
#include "support/Metrics.h"
#include "support/Timer.h"

#include <mutex>

using namespace psg;

namespace {
/// Builds a metered solver from the registry; the names are built-ins,
/// so failure is programmatic.
std::unique_ptr<OdeSolver> makeSolver(const char *Name) {
  auto Solver = createSolver(Name);
  assert(Solver && "registry is missing a built-in solver");
  return std::move(*Solver);
}

/// Applies the Index-th parameterization of \p Spec to \p Sys and returns
/// the matching initial state.
std::vector<double> configureSimulation(const BatchSpec &Spec,
                                        CompiledOdeSystem &Sys,
                                        size_t Index) {
  if (Index < Spec.RateConstantSets.size())
    Sys.setRateConstants(Spec.RateConstantSets[Index]);
  if (Index < Spec.InitialStates.size())
    return Spec.InitialStates[Index];
  return Spec.Model->initialState();
}

/// Runs one simulation with \p Solver, recording a trajectory when
/// requested. Returns the outcome.
SimulationOutcome runOne(const BatchSpec &Spec, CompiledOdeSystem &Sys,
                         OdeSolver &Solver, std::vector<double> Y) {
  SimulationOutcome Out;
  Out.SolverUsed = Solver.name();
  if (Spec.OutputSamples > 0) {
    TrajectoryRecorder Recorder(
        uniformGrid(Spec.StartTime, Spec.EndTime, Spec.OutputSamples),
        Sys.dimension());
    Recorder.recordInitial(Spec.StartTime, Y.data());
    Out.Result = Solver.integrate(Sys, Spec.StartTime, Spec.EndTime, Y,
                                  Spec.Options, &Recorder);
    Out.Dynamics = Recorder.trajectory();
  } else {
    Out.Result = Solver.integrate(Sys, Spec.StartTime, Spec.EndTime, Y,
                                  Spec.Options);
  }
  return Out;
}

/// Assembles the common parts of a BatchResult.
BatchResult finalizeBatch(const BatchSpec &Spec, const CostModel &Model,
                          Backend B, std::vector<SimulationOutcome> Outcomes,
                          double WallSeconds) {
  BatchResult R;
  R.Outcomes = std::move(Outcomes);
  for (const SimulationOutcome &O : R.Outcomes) {
    R.TotalStats.merge(O.Result.Stats);
    if (!O.Result.ok())
      ++R.Failures;
  }
  CompiledOdeSystem Profile(*Spec.Model);
  R.AverageWork = computeSimulationWork(Profile, R.TotalStats, Spec.Batch,
                                        Spec.OutputSamples);
  R.IntegrationTime = Model.integrationTime(B, R.AverageWork, Spec.Batch);
  R.SimulationTime = Model.simulationTime(B, R.AverageWork, Spec.Batch);
  R.HostWallSeconds = WallSeconds;
  return R;
}
} // namespace

Simulator::~Simulator() = default;

//===----------------------------------------------------------------------===//
// CPU baselines.
//===----------------------------------------------------------------------===//

CpuSolverSimulator::CpuSolverSimulator(std::string Solver,
                                       std::string Display, CostModel M)
    : SolverName(std::move(Solver)), DisplayName(std::move(Display)),
      Model(std::move(M)) {}

BatchResult CpuSolverSimulator::run(const BatchSpec &Spec) {
  assert(Spec.Model && Spec.Batch > 0 && "malformed batch spec");
  WallTimer Timer;
  std::vector<SimulationOutcome> Outcomes(Spec.Batch);
  CompiledOdeSystem Sys(*Spec.Model);
  auto Solver = createSolver(SolverName);
  assert(Solver && "registry is missing a built-in solver");
  for (uint64_t I = 0; I < Spec.Batch; ++I) {
    std::vector<double> Y = configureSimulation(Spec, Sys, I);
    Outcomes[I] = runOne(Spec, Sys, **Solver, std::move(Y));
  }
  return finalizeBatch(Spec, Model, Backend::CpuSerial, std::move(Outcomes),
                       Timer.seconds());
}

//===----------------------------------------------------------------------===//
// Coarse-grained GPU (cupSODA-like).
//===----------------------------------------------------------------------===//

CoarseGpuSimulator::CoarseGpuSimulator(CostModel M)
    : Model(std::move(M)), Device(Model.gpu()) {}

BatchResult CoarseGpuSimulator::run(const BatchSpec &Spec) {
  assert(Spec.Model && Spec.Batch > 0 && "malformed batch spec");
  WallTimer Timer;
  std::vector<SimulationOutcome> Outcomes(Spec.Batch);
  Device.launchKernel("cupsoda-batch", Spec.Batch, 32,
                      [&](KernelContext &Ctx) {
                        const size_t I = Ctx.threadIndex();
                        CompiledOdeSystem Sys(*Spec.Model);
                        std::vector<double> Y =
                            configureSimulation(Spec, Sys, I);
                        std::unique_ptr<OdeSolver> Solver =
                            makeSolver("lsoda");
                        Outcomes[I] =
                            runOne(Spec, Sys, *Solver, std::move(Y));
                      });
  return finalizeBatch(Spec, Model, Backend::GpuCoarse, std::move(Outcomes),
                       Timer.seconds());
}

//===----------------------------------------------------------------------===//
// Fine-grained GPU (LASSIE-like).
//===----------------------------------------------------------------------===//

FineGpuSimulator::FineGpuSimulator(CostModel M)
    : Model(std::move(M)), Device(Model.gpu()) {}

BatchResult FineGpuSimulator::run(const BatchSpec &Spec) {
  assert(Spec.Model && Spec.Batch > 0 && "malformed batch spec");
  WallTimer Timer;
  std::vector<SimulationOutcome> Outcomes(Spec.Batch);
  CompiledOdeSystem Sys(*Spec.Model);
  // Fine-grained tools process one simulation at a time; each simulation
  // runs as one kernel pipeline whose threads are the ODEs.
  for (uint64_t I = 0; I < Spec.Batch; ++I) {
    Device.launchKernel(
        "lassie-sim", std::max<uint64_t>(Sys.dimension(), 1), 32,
        [&](KernelContext &Ctx) {
          if (Ctx.threadIndex() != 0)
            return; // The numerics run once; threads model ODE lanes.
          std::vector<double> Y = configureSimulation(Spec, Sys, I);
          std::unique_ptr<OdeSolver> Explicit = makeSolver("rkf45");
          Outcomes[I] = runOne(Spec, Sys, *Explicit, Y);
          if (!Outcomes[I].Result.ok()) {
            // LASSIE switches to first-order BDF under stiffness.
            const IntegrationStats ExplicitCost = Outcomes[I].Result.Stats;
            metrics().counter("psg.engine.stiffness_reroutes").add();
            std::unique_ptr<OdeSolver> Implicit = makeSolver("bdf");
            Outcomes[I] = runOne(Spec, Sys, *Implicit,
                                 configureSimulation(Spec, Sys, I));
            Outcomes[I].Result.Stats.merge(ExplicitCost);
            ++Outcomes[I].Result.Stats.SolverSwitches;
          }
        });
  }
  return finalizeBatch(Spec, Model, Backend::GpuFine, std::move(Outcomes),
                       Timer.seconds());
}

//===----------------------------------------------------------------------===//
// Fine+coarse engine (the paper's contribution).
//===----------------------------------------------------------------------===//

FineCoarseSimulator::FineCoarseSimulator(CostModel M)
    : Model(std::move(M)), Device(Model.gpu()) {}

BatchResult FineCoarseSimulator::run(const BatchSpec &Spec) {
  assert(Spec.Model && Spec.Batch > 0 && "malformed batch spec");
  WallTimer Timer;
  std::vector<SimulationOutcome> Outcomes(Spec.Batch);
  MetricsRegistry &M = metrics();
  Counter &RoutedExplicit = M.counter("psg.engine.routed_explicit");
  Counter &RoutedImplicit = M.counter("psg.engine.routed_implicit");
  Counter &StiffnessReroutes = M.counter("psg.engine.stiffness_reroutes");

  // P1 happens in CompiledOdeSystem's constructor; each logical thread
  // holds its own parameterized copy. P2-P4 run inside one parent grid:
  // the P2 routing heuristic, the explicit path, and the implicit path
  // with re-dispatch of failed explicit simulations.
  Device.launchKernel("psg-engine-batch", Spec.Batch, 32,
                      [&](KernelContext &Ctx) {
    const size_t I = Ctx.threadIndex();
    CompiledOdeSystem Sys(*Spec.Model);
    std::vector<double> Y = configureSimulation(Spec, Sys, I);

    bool UseImplicit = ForcedMethod == "radau5";
    IntegrationStats RoutingCost;
    if (ForcedMethod == "auto") {
      // P2: dominant eigenvalue of the Jacobian at the initial state.
      std::vector<double> F0(Sys.dimension());
      Sys.rhs(Spec.StartTime, Y.data(), F0.data());
      ++RoutingCost.RhsEvaluations;
      Matrix J;
      RoutingCost.RhsEvaluations +=
          Sys.jacobian(Spec.StartTime, Y.data(), F0.data(), J);
      ++RoutingCost.JacobianEvaluations;
      UseImplicit = powerIterationSpectralRadius(J) >= StiffnessThreshold;
    }

    if (!UseImplicit) {
      // P3: DOPRI5 with stiffness detection enabled.
      RoutedExplicit.add();
      std::unique_ptr<OdeSolver> Explicit = makeSolver("dopri5");
      Outcomes[I] = runOne(Spec, Sys, *Explicit, Y);
      if (!Outcomes[I].Result.ok()) {
        // Re-dispatch to P4 from the initial state, keeping the cost of
        // the failed explicit attempt.
        RoutingCost.merge(Outcomes[I].Result.Stats);
        ++RoutingCost.SolverSwitches;
        StiffnessReroutes.add();
        UseImplicit = true;
        Y = configureSimulation(Spec, Sys, I);
      }
    } else {
      RoutedImplicit.add();
    }
    if (UseImplicit) {
      // P4: Radau IIA.
      std::unique_ptr<OdeSolver> Implicit = makeSolver("radau5");
      Outcomes[I] = runOne(Spec, Sys, *Implicit, std::move(Y));
    }
    Outcomes[I].Result.Stats.merge(RoutingCost);
  });
  // P5: collection happened through the recorders.
  return finalizeBatch(Spec, Model, Backend::GpuFineCoarse,
                       std::move(Outcomes), Timer.seconds());
}

//===----------------------------------------------------------------------===//
// Factories.
//===----------------------------------------------------------------------===//

std::vector<std::unique_ptr<Simulator>>
psg::createAllSimulators(const CostModel &Model) {
  std::vector<std::unique_ptr<Simulator>> All;
  All.push_back(
      std::make_unique<CpuSolverSimulator>("lsoda", "cpu-lsoda", Model));
  All.push_back(
      std::make_unique<CpuSolverSimulator>("vode", "cpu-vode", Model));
  All.push_back(std::make_unique<CoarseGpuSimulator>(Model));
  All.push_back(std::make_unique<FineGpuSimulator>(Model));
  All.push_back(std::make_unique<FineCoarseSimulator>(Model));
  return All;
}

ErrorOr<std::unique_ptr<Simulator>>
psg::createSimulator(const std::string &Name, const CostModel &Model) {
  if (Name == "cpu-lsoda")
    return std::unique_ptr<Simulator>(
        std::make_unique<CpuSolverSimulator>("lsoda", "cpu-lsoda", Model));
  if (Name == "cpu-vode")
    return std::unique_ptr<Simulator>(
        std::make_unique<CpuSolverSimulator>("vode", "cpu-vode", Model));
  if (Name == "gpu-coarse")
    return std::unique_ptr<Simulator>(
        std::make_unique<CoarseGpuSimulator>(Model));
  if (Name == "gpu-fine")
    return std::unique_ptr<Simulator>(
        std::make_unique<FineGpuSimulator>(Model));
  if (Name == "psg-engine")
    return std::unique_ptr<Simulator>(
        std::make_unique<FineCoarseSimulator>(Model));
  return ErrorOr<std::unique_ptr<Simulator>>::failure(
      "unknown simulator '" + Name + "'");
}
