//===- sim/Oracle.cpp -----------------------------------------------------===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//

#include "sim/Oracle.h"

#include "support/StringUtils.h"

using namespace psg;

namespace {

Status counterDiff(const char *Name, uint64_t A, uint64_t B) {
  return Status::failure(formatString("%s differs: %llu vs %llu", Name,
                                      (unsigned long long)A,
                                      (unsigned long long)B));
}

Status compareStats(const IntegrationStats &A, const IntegrationStats &B) {
  const struct {
    const char *Name;
    uint64_t IntegrationStats::*Member;
  } Counters[] = {
      {"steps", &IntegrationStats::Steps},
      {"accepted steps", &IntegrationStats::AcceptedSteps},
      {"rejected steps", &IntegrationStats::RejectedSteps},
      {"rhs evaluations", &IntegrationStats::RhsEvaluations},
      {"jacobian evaluations", &IntegrationStats::JacobianEvaluations},
      {"LU factorizations", &IntegrationStats::LuFactorizations},
      {"complex LU factorizations",
       &IntegrationStats::ComplexLuFactorizations},
      {"LU solves", &IntegrationStats::LuSolves},
      {"Newton iterations", &IntegrationStats::NewtonIterations},
      {"solver switches", &IntegrationStats::SolverSwitches},
  };
  for (const auto &C : Counters)
    if (A.*(C.Member) != B.*(C.Member))
      return counterDiff(C.Name, A.*(C.Member), B.*(C.Member));
  return Status::success();
}

} // namespace

Status psg::compareOutcomesBitExact(const SimulationOutcome &A,
                                    const SimulationOutcome &B) {
  if (A.SolverUsed != B.SolverUsed)
    return Status::failure("solver differs: '" + A.SolverUsed + "' vs '" +
                           B.SolverUsed + "'");
  if (A.Result.Status != B.Result.Status)
    return Status::failure(
        formatString("status differs: %s vs %s",
                     integrationStatusName(A.Result.Status),
                     integrationStatusName(B.Result.Status)));
  // Bitwise: warm paths may not perturb a single ulp.
  if (A.Result.FinalTime != B.Result.FinalTime)
    return Status::failure(formatString("final time differs: %.17g vs %.17g",
                                        A.Result.FinalTime,
                                        B.Result.FinalTime));
  if (A.Result.LastStepSize != B.Result.LastStepSize)
    return Status::failure(
        formatString("last step size differs: %.17g vs %.17g",
                     A.Result.LastStepSize, B.Result.LastStepSize));
  if (Status S = compareStats(A.Result.Stats, B.Result.Stats); !S)
    return S;
  if (A.Dynamics.numSamples() != B.Dynamics.numSamples() ||
      A.Dynamics.dimension() != B.Dynamics.dimension())
    return Status::failure(formatString(
        "trajectory shape differs: %zux%zu vs %zux%zu",
        A.Dynamics.numSamples(), A.Dynamics.dimension(),
        B.Dynamics.numSamples(), B.Dynamics.dimension()));
  for (size_t S = 0; S < A.Dynamics.numSamples(); ++S) {
    if (A.Dynamics.time(S) != B.Dynamics.time(S))
      return Status::failure(formatString(
          "sample %zu time differs: %.17g vs %.17g", S, A.Dynamics.time(S),
          B.Dynamics.time(S)));
    for (size_t V = 0; V < A.Dynamics.dimension(); ++V)
      if (A.Dynamics.value(S, V) != B.Dynamics.value(S, V))
        return Status::failure(formatString(
            "sample %zu var %zu differs: %.17g vs %.17g", S, V,
            A.Dynamics.value(S, V), B.Dynamics.value(S, V)));
  }
  return Status::success();
}

Status psg::compareBatchesBitExact(const BatchResult &A,
                                   const BatchResult &B) {
  if (A.Outcomes.size() != B.Outcomes.size())
    return Status::failure(formatString("batch size differs: %zu vs %zu",
                                        A.Outcomes.size(),
                                        B.Outcomes.size()));
  if (A.Failures != B.Failures)
    return counterDiff("failures", A.Failures, B.Failures);
  for (size_t I = 0; I < A.Outcomes.size(); ++I)
    if (Status S = compareOutcomesBitExact(A.Outcomes[I], B.Outcomes[I]); !S)
      return Status::failure(formatString("simulation %zu: ", I) +
                             S.message());
  return Status::success();
}
