//===- sim/WorkProfile.h - Stats-to-work conversion -------------*- C++ -*-===//
//
// Part of psg, under the BSD 3-Clause License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Converts measured integration statistics plus the compiled model's
/// evaluation profile into the SimulationWork record consumed by the vgpu
/// cost model (flops, memory traffic, working-set and encoding sizes).
///
//===----------------------------------------------------------------------===//

#ifndef PSG_SIM_WORKPROFILE_H
#define PSG_SIM_WORKPROFILE_H

#include "ode/IntegrationResult.h"
#include "rbm/MassAction.h"
#include "vgpu/CostModel.h"

namespace psg {

/// Builds the per-simulation work record for \p Stats (averaged over the
/// batch by the caller) on the compiled model \p M.
SimulationWork computeSimulationWork(const CompiledModel &M,
                                     const IntegrationStats &Stats,
                                     uint64_t Batch, size_t OutputSamples);

/// Convenience overload reading the model behind a per-simulation view.
SimulationWork computeSimulationWork(const CompiledOdeSystem &Sys,
                                     const IntegrationStats &Stats,
                                     uint64_t Batch, size_t OutputSamples);

} // namespace psg

#endif // PSG_SIM_WORKPROFILE_H
